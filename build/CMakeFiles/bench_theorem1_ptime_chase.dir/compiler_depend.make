# Empty compiler generated dependencies file for bench_theorem1_ptime_chase.
# This may be replaced when dependencies are built.
