file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1_ptime_chase.dir/bench/bench_theorem1_ptime_chase.cc.o"
  "CMakeFiles/bench_theorem1_ptime_chase.dir/bench/bench_theorem1_ptime_chase.cc.o.d"
  "bench/bench_theorem1_ptime_chase"
  "bench/bench_theorem1_ptime_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_ptime_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
