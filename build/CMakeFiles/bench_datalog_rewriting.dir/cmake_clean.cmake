file(REMOVE_RECURSE
  "CMakeFiles/bench_datalog_rewriting.dir/bench/bench_datalog_rewriting.cc.o"
  "CMakeFiles/bench_datalog_rewriting.dir/bench/bench_datalog_rewriting.cc.o.d"
  "bench/bench_datalog_rewriting"
  "bench/bench_datalog_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datalog_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
