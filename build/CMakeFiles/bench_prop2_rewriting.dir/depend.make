# Empty dependencies file for bench_prop2_rewriting.
# This may be replaced when dependencies are built.
