file(REMOVE_RECURSE
  "CMakeFiles/bench_prop2_rewriting.dir/bench/bench_prop2_rewriting.cc.o"
  "CMakeFiles/bench_prop2_rewriting.dir/bench/bench_prop2_rewriting.cc.o.d"
  "bench/bench_prop2_rewriting"
  "bench/bench_prop2_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop2_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
