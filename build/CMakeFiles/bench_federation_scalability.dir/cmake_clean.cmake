file(REMOVE_RECURSE
  "CMakeFiles/bench_federation_scalability.dir/bench/bench_federation_scalability.cc.o"
  "CMakeFiles/bench_federation_scalability.dir/bench/bench_federation_scalability.cc.o.d"
  "bench/bench_federation_scalability"
  "bench/bench_federation_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_federation_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
