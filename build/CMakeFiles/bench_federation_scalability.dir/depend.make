# Empty dependencies file for bench_federation_scalability.
# This may be replaced when dependencies are built.
