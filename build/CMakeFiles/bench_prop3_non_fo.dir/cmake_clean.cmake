file(REMOVE_RECURSE
  "CMakeFiles/bench_prop3_non_fo.dir/bench/bench_prop3_non_fo.cc.o"
  "CMakeFiles/bench_prop3_non_fo.dir/bench/bench_prop3_non_fo.cc.o.d"
  "bench/bench_prop3_non_fo"
  "bench/bench_prop3_non_fo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop3_non_fo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
