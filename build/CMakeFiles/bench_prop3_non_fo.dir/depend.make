# Empty dependencies file for bench_prop3_non_fo.
# This may be replaced when dependencies are built.
