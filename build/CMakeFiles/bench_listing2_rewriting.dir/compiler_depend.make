# Empty compiler generated dependencies file for bench_listing2_rewriting.
# This may be replaced when dependencies are built.
