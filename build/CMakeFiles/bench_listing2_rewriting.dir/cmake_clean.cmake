file(REMOVE_RECURSE
  "CMakeFiles/bench_listing2_rewriting.dir/bench/bench_listing2_rewriting.cc.o"
  "CMakeFiles/bench_listing2_rewriting.dir/bench/bench_listing2_rewriting.cc.o.d"
  "bench/bench_listing2_rewriting"
  "bench/bench_listing2_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listing2_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
