file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_universal_solution.dir/bench/bench_fig2_universal_solution.cc.o"
  "CMakeFiles/bench_fig2_universal_solution.dir/bench/bench_fig2_universal_solution.cc.o.d"
  "bench/bench_fig2_universal_solution"
  "bench/bench_fig2_universal_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_universal_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
