# Empty dependencies file for bench_fig2_universal_solution.
# This may be replaced when dependencies are built.
