file(REMOVE_RECURSE
  "CMakeFiles/bench_equivalence_ablation.dir/bench/bench_equivalence_ablation.cc.o"
  "CMakeFiles/bench_equivalence_ablation.dir/bench/bench_equivalence_ablation.cc.o.d"
  "bench/bench_equivalence_ablation"
  "bench/bench_equivalence_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_equivalence_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
