# Empty compiler generated dependencies file for bench_tradeoff_chase_vs_rewrite.
# This may be replaced when dependencies are built.
