file(REMOVE_RECURSE
  "CMakeFiles/bench_tradeoff_chase_vs_rewrite.dir/bench/bench_tradeoff_chase_vs_rewrite.cc.o"
  "CMakeFiles/bench_tradeoff_chase_vs_rewrite.dir/bench/bench_tradeoff_chase_vs_rewrite.cc.o.d"
  "bench/bench_tradeoff_chase_vs_rewrite"
  "bench/bench_tradeoff_chase_vs_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tradeoff_chase_vs_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
