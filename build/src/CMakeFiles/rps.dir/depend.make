# Empty dependencies file for rps.
# This may be replaced when dependencies are built.
