file(REMOVE_RECURSE
  "librps.a"
)
