
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/relational_chase.cc" "src/CMakeFiles/rps.dir/chase/relational_chase.cc.o" "gcc" "src/CMakeFiles/rps.dir/chase/relational_chase.cc.o.d"
  "/root/repo/src/chase/rps_chase.cc" "src/CMakeFiles/rps.dir/chase/rps_chase.cc.o" "gcc" "src/CMakeFiles/rps.dir/chase/rps_chase.cc.o.d"
  "/root/repo/src/config/mapping_dsl.cc" "src/CMakeFiles/rps.dir/config/mapping_dsl.cc.o" "gcc" "src/CMakeFiles/rps.dir/config/mapping_dsl.cc.o.d"
  "/root/repo/src/datalog/engine.cc" "src/CMakeFiles/rps.dir/datalog/engine.cc.o" "gcc" "src/CMakeFiles/rps.dir/datalog/engine.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/CMakeFiles/rps.dir/datalog/program.cc.o" "gcc" "src/CMakeFiles/rps.dir/datalog/program.cc.o.d"
  "/root/repo/src/datalog/translate.cc" "src/CMakeFiles/rps.dir/datalog/translate.cc.o" "gcc" "src/CMakeFiles/rps.dir/datalog/translate.cc.o.d"
  "/root/repo/src/discovery/discovery.cc" "src/CMakeFiles/rps.dir/discovery/discovery.cc.o" "gcc" "src/CMakeFiles/rps.dir/discovery/discovery.cc.o.d"
  "/root/repo/src/federation/federator.cc" "src/CMakeFiles/rps.dir/federation/federator.cc.o" "gcc" "src/CMakeFiles/rps.dir/federation/federator.cc.o.d"
  "/root/repo/src/federation/network.cc" "src/CMakeFiles/rps.dir/federation/network.cc.o" "gcc" "src/CMakeFiles/rps.dir/federation/network.cc.o.d"
  "/root/repo/src/federation/peer_node.cc" "src/CMakeFiles/rps.dir/federation/peer_node.cc.o" "gcc" "src/CMakeFiles/rps.dir/federation/peer_node.cc.o.d"
  "/root/repo/src/gen/generators.cc" "src/CMakeFiles/rps.dir/gen/generators.cc.o" "gcc" "src/CMakeFiles/rps.dir/gen/generators.cc.o.d"
  "/root/repo/src/gen/paper_example.cc" "src/CMakeFiles/rps.dir/gen/paper_example.cc.o" "gcc" "src/CMakeFiles/rps.dir/gen/paper_example.cc.o.d"
  "/root/repo/src/parser/cursor.cc" "src/CMakeFiles/rps.dir/parser/cursor.cc.o" "gcc" "src/CMakeFiles/rps.dir/parser/cursor.cc.o.d"
  "/root/repo/src/parser/ntriples.cc" "src/CMakeFiles/rps.dir/parser/ntriples.cc.o" "gcc" "src/CMakeFiles/rps.dir/parser/ntriples.cc.o.d"
  "/root/repo/src/parser/sparql.cc" "src/CMakeFiles/rps.dir/parser/sparql.cc.o" "gcc" "src/CMakeFiles/rps.dir/parser/sparql.cc.o.d"
  "/root/repo/src/parser/turtle.cc" "src/CMakeFiles/rps.dir/parser/turtle.cc.o" "gcc" "src/CMakeFiles/rps.dir/parser/turtle.cc.o.d"
  "/root/repo/src/peer/certain_answers.cc" "src/CMakeFiles/rps.dir/peer/certain_answers.cc.o" "gcc" "src/CMakeFiles/rps.dir/peer/certain_answers.cc.o.d"
  "/root/repo/src/peer/equivalence.cc" "src/CMakeFiles/rps.dir/peer/equivalence.cc.o" "gcc" "src/CMakeFiles/rps.dir/peer/equivalence.cc.o.d"
  "/root/repo/src/peer/incremental.cc" "src/CMakeFiles/rps.dir/peer/incremental.cc.o" "gcc" "src/CMakeFiles/rps.dir/peer/incremental.cc.o.d"
  "/root/repo/src/peer/mapping.cc" "src/CMakeFiles/rps.dir/peer/mapping.cc.o" "gcc" "src/CMakeFiles/rps.dir/peer/mapping.cc.o.d"
  "/root/repo/src/peer/provenance.cc" "src/CMakeFiles/rps.dir/peer/provenance.cc.o" "gcc" "src/CMakeFiles/rps.dir/peer/provenance.cc.o.d"
  "/root/repo/src/peer/rps_system.cc" "src/CMakeFiles/rps.dir/peer/rps_system.cc.o" "gcc" "src/CMakeFiles/rps.dir/peer/rps_system.cc.o.d"
  "/root/repo/src/peer/schema.cc" "src/CMakeFiles/rps.dir/peer/schema.cc.o" "gcc" "src/CMakeFiles/rps.dir/peer/schema.cc.o.d"
  "/root/repo/src/query/algebra.cc" "src/CMakeFiles/rps.dir/query/algebra.cc.o" "gcc" "src/CMakeFiles/rps.dir/query/algebra.cc.o.d"
  "/root/repo/src/query/binding.cc" "src/CMakeFiles/rps.dir/query/binding.cc.o" "gcc" "src/CMakeFiles/rps.dir/query/binding.cc.o.d"
  "/root/repo/src/query/eval.cc" "src/CMakeFiles/rps.dir/query/eval.cc.o" "gcc" "src/CMakeFiles/rps.dir/query/eval.cc.o.d"
  "/root/repo/src/query/pattern.cc" "src/CMakeFiles/rps.dir/query/pattern.cc.o" "gcc" "src/CMakeFiles/rps.dir/query/pattern.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/rps.dir/query/query.cc.o" "gcc" "src/CMakeFiles/rps.dir/query/query.cc.o.d"
  "/root/repo/src/rdf/dataset.cc" "src/CMakeFiles/rps.dir/rdf/dataset.cc.o" "gcc" "src/CMakeFiles/rps.dir/rdf/dataset.cc.o.d"
  "/root/repo/src/rdf/dictionary.cc" "src/CMakeFiles/rps.dir/rdf/dictionary.cc.o" "gcc" "src/CMakeFiles/rps.dir/rdf/dictionary.cc.o.d"
  "/root/repo/src/rdf/graph.cc" "src/CMakeFiles/rps.dir/rdf/graph.cc.o" "gcc" "src/CMakeFiles/rps.dir/rdf/graph.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/CMakeFiles/rps.dir/rdf/term.cc.o" "gcc" "src/CMakeFiles/rps.dir/rdf/term.cc.o.d"
  "/root/repo/src/rewrite/bool_rewrite.cc" "src/CMakeFiles/rps.dir/rewrite/bool_rewrite.cc.o" "gcc" "src/CMakeFiles/rps.dir/rewrite/bool_rewrite.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/CMakeFiles/rps.dir/rewrite/rewriter.cc.o" "gcc" "src/CMakeFiles/rps.dir/rewrite/rewriter.cc.o.d"
  "/root/repo/src/tgd/atom.cc" "src/CMakeFiles/rps.dir/tgd/atom.cc.o" "gcc" "src/CMakeFiles/rps.dir/tgd/atom.cc.o.d"
  "/root/repo/src/tgd/classify.cc" "src/CMakeFiles/rps.dir/tgd/classify.cc.o" "gcc" "src/CMakeFiles/rps.dir/tgd/classify.cc.o.d"
  "/root/repo/src/tgd/tgd.cc" "src/CMakeFiles/rps.dir/tgd/tgd.cc.o" "gcc" "src/CMakeFiles/rps.dir/tgd/tgd.cc.o.d"
  "/root/repo/src/tgd/unification.cc" "src/CMakeFiles/rps.dir/tgd/unification.cc.o" "gcc" "src/CMakeFiles/rps.dir/tgd/unification.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/rps.dir/util/status.cc.o" "gcc" "src/CMakeFiles/rps.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/rps.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/rps.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/union_find.cc" "src/CMakeFiles/rps.dir/util/union_find.cc.o" "gcc" "src/CMakeFiles/rps.dir/util/union_find.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
