file(REMOVE_RECURSE
  "CMakeFiles/bool_rewrite_test.dir/bool_rewrite_test.cc.o"
  "CMakeFiles/bool_rewrite_test.dir/bool_rewrite_test.cc.o.d"
  "bool_rewrite_test"
  "bool_rewrite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bool_rewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
