# Empty dependencies file for bool_rewrite_test.
# This may be replaced when dependencies are built.
