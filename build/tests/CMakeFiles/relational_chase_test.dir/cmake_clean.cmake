file(REMOVE_RECURSE
  "CMakeFiles/relational_chase_test.dir/relational_chase_test.cc.o"
  "CMakeFiles/relational_chase_test.dir/relational_chase_test.cc.o.d"
  "relational_chase_test"
  "relational_chase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
