# Empty dependencies file for prop3_test.
# This may be replaced when dependencies are built.
