file(REMOVE_RECURSE
  "CMakeFiles/prop3_test.dir/prop3_test.cc.o"
  "CMakeFiles/prop3_test.dir/prop3_test.cc.o.d"
  "prop3_test"
  "prop3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
