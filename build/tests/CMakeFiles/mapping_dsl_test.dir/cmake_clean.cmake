file(REMOVE_RECURSE
  "CMakeFiles/mapping_dsl_test.dir/mapping_dsl_test.cc.o"
  "CMakeFiles/mapping_dsl_test.dir/mapping_dsl_test.cc.o.d"
  "mapping_dsl_test"
  "mapping_dsl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_dsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
