# Empty dependencies file for mapping_dsl_test.
# This may be replaced when dependencies are built.
