# Empty compiler generated dependencies file for rps_system_test.
# This may be replaced when dependencies are built.
