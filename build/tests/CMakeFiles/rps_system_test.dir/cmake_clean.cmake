file(REMOVE_RECURSE
  "CMakeFiles/rps_system_test.dir/rps_system_test.cc.o"
  "CMakeFiles/rps_system_test.dir/rps_system_test.cc.o.d"
  "rps_system_test"
  "rps_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
