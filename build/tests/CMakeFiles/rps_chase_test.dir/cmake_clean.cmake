file(REMOVE_RECURSE
  "CMakeFiles/rps_chase_test.dir/rps_chase_test.cc.o"
  "CMakeFiles/rps_chase_test.dir/rps_chase_test.cc.o.d"
  "rps_chase_test"
  "rps_chase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
