# Empty dependencies file for rps_chase_test.
# This may be replaced when dependencies are built.
