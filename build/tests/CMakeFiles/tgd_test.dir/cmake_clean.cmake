file(REMOVE_RECURSE
  "CMakeFiles/tgd_test.dir/tgd_test.cc.o"
  "CMakeFiles/tgd_test.dir/tgd_test.cc.o.d"
  "tgd_test"
  "tgd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
