# Empty compiler generated dependencies file for explain_demo.
# This may be replaced when dependencies are built.
