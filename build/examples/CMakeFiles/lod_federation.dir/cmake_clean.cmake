file(REMOVE_RECURSE
  "CMakeFiles/lod_federation.dir/lod_federation.cpp.o"
  "CMakeFiles/lod_federation.dir/lod_federation.cpp.o.d"
  "lod_federation"
  "lod_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
