# Empty dependencies file for lod_federation.
# This may be replaced when dependencies are built.
