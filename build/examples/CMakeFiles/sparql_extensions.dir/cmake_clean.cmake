file(REMOVE_RECURSE
  "CMakeFiles/sparql_extensions.dir/sparql_extensions.cpp.o"
  "CMakeFiles/sparql_extensions.dir/sparql_extensions.cpp.o.d"
  "sparql_extensions"
  "sparql_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
