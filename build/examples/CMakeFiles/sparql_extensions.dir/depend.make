# Empty dependencies file for sparql_extensions.
# This may be replaced when dependencies are built.
