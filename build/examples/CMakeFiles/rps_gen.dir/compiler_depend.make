# Empty compiler generated dependencies file for rps_gen.
# This may be replaced when dependencies are built.
