file(REMOVE_RECURSE
  "CMakeFiles/rps_gen.dir/rps_gen.cpp.o"
  "CMakeFiles/rps_gen.dir/rps_gen.cpp.o.d"
  "rps_gen"
  "rps_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
