# Empty dependencies file for rewriting_demo.
# This may be replaced when dependencies are built.
