file(REMOVE_RECURSE
  "CMakeFiles/rewriting_demo.dir/rewriting_demo.cpp.o"
  "CMakeFiles/rewriting_demo.dir/rewriting_demo.cpp.o.d"
  "rewriting_demo"
  "rewriting_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriting_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
