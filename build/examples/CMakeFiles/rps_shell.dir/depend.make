# Empty dependencies file for rps_shell.
# This may be replaced when dependencies are built.
