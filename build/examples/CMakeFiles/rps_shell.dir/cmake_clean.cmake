file(REMOVE_RECURSE
  "CMakeFiles/rps_shell.dir/rps_shell.cpp.o"
  "CMakeFiles/rps_shell.dir/rps_shell.cpp.o.d"
  "rps_shell"
  "rps_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rps_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
