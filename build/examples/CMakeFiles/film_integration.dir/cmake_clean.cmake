file(REMOVE_RECURSE
  "CMakeFiles/film_integration.dir/film_integration.cpp.o"
  "CMakeFiles/film_integration.dir/film_integration.cpp.o.d"
  "film_integration"
  "film_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/film_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
