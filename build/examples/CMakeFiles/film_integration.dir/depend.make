# Empty dependencies file for film_integration.
# This may be replaced when dependencies are built.
