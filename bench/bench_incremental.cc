// E13 (extension) — §5 item 1 implemented: dynamic maintenance of the
// universal solution. Inserting one stored triple into an already-chased
// J re-fires only the triggers the new triple enables; rebuilding from
// scratch re-derives everything. Measured: per-update cost of the
// incremental path vs a full rebuild as the base data grows, and the
// batch AddTriples API vs one chase round-trip per triple. Emits a
// METRICS line (tag "incremental") consolidated into BENCH_baseline.json
// by scripts/bench_baseline.sh, including the gated
// bench.incremental.batch_speedup_pct ratio counter.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rps/rps.h"

int main(int argc, char** argv) {
  size_t n = rps_bench::SizeFromArgs(argc, argv, 25);

  rps_bench::PrintHeader(
      "E13  incremental universal-solution maintenance (§5.1, implemented)",
      "\"mappings may be subject to change and we might need to compute "
      "the information inferred from the TGDs dynamically\"");

  rps::obs::MetricsSnapshot before = rps::obs::Registry::Global().Snapshot();

  std::printf("%-12s %-8s %-10s %-16s %-16s %-10s\n", "films/peer", "|D|",
              "|J|", "incr_update_ms", "full_rebuild_ms", "speedup");
  for (size_t scale : {1u, 2u, 4u, 8u}) {
    size_t films = n * scale;
    rps::LodConfig config;
    config.num_peers = 4;
    config.films_per_peer = films;
    config.seed = 411;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    rps::Dictionary& dict = *sys->dict();

    rps::IncrementalUniversalSolution inc(sys.get());
    if (!inc.Initialize().ok()) return 1;

    // Ten single-triple updates, timed individually (incremental path).
    rps::TermId actor0 = dict.InternIri("http://peer0.example.org/actor");
    rps_bench::Timer inc_timer;
    for (int i = 0; i < 10; ++i) {
      rps::TermId film = dict.InternIri(
          "http://peer0.example.org/hotfilm" + std::to_string(i));
      rps::TermId person = dict.InternIri(
          "http://peer0.example.org/hotperson" + std::to_string(i));
      rps::Result<rps::RpsChaseStats> delta =
          inc.AddTriple("peer0", rps::Triple{film, actor0, person});
      if (!delta.ok()) {
        std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
        return 1;
      }
    }
    double incr_ms = inc_timer.ElapsedMs() / 10.0;

    // Full rebuild on the grown system.
    rps_bench::Timer rebuild_timer;
    rps::Graph rebuilt(sys->dict());
    if (!rps::BuildUniversalSolution(*sys, &rebuilt).ok()) return 1;
    double rebuild_ms = rebuild_timer.ElapsedMs();

    bool consistent = rebuilt.size() == inc.universal().size();
    std::printf("%-12zu %-8zu %-10zu %-16.2f %-16.2f %-10.1fx%s\n", films,
                sys->StoredDatabase().size(), inc.universal().size(),
                incr_ms, rebuild_ms, rebuild_ms / incr_ms,
                consistent ? "" : "  <-- INCONSISTENT");
  }
  std::printf(
      "(expected shape: per-update cost grows much slower than the full "
      "rebuild; the gap widens with |D|)\n");

  // Batch churn: AddTriples closes J under a whole batch with ONE delta
  // chase; the per-triple loop pays a chase fixpoint per element. Two
  // identically generated systems keep the comparison exact.
  std::printf("\nBatch AddTriples vs per-triple AddTriple (churn path):\n");
  std::printf("%-12s %-12s %-16s %-16s %-10s\n", "batch", "rounds",
              "per_triple_ms", "batch_ms", "speedup");
  double per_triple_total = 0.0, batch_total = 0.0;
  {
    const size_t kBatch = 32, kRounds = 4;
    rps::LodConfig config;
    config.num_peers = 4;
    config.films_per_peer = std::max<size_t>(n, 8);
    config.seed = 413;
    std::unique_ptr<rps::RpsSystem> serial_sys = rps::GenerateLod(config);
    std::unique_ptr<rps::RpsSystem> batch_sys = rps::GenerateLod(config);
    rps::IncrementalUniversalSolution serial_inc(serial_sys.get());
    rps::IncrementalUniversalSolution batch_inc(batch_sys.get());
    if (!serial_inc.Initialize().ok() || !batch_inc.Initialize().ok()) {
      return 1;
    }

    auto make_batch = [&](rps::Dictionary* dict, size_t round) {
      rps::TermId actor0 =
          dict->InternIri("http://peer0.example.org/actor");
      std::vector<rps::Triple> batch;
      batch.reserve(kBatch);
      for (size_t i = 0; i < kBatch; ++i) {
        batch.push_back(rps::Triple{
            dict->InternIri("http://peer0.example.org/churn_film" +
                            std::to_string(round * kBatch + i)),
            actor0,
            dict->InternIri("http://peer0.example.org/churn_person" +
                            std::to_string(round * kBatch + i))});
      }
      return batch;
    };

    for (size_t round = 0; round < kRounds; ++round) {
      std::vector<rps::Triple> serial_batch =
          make_batch(serial_sys->dict(), round);
      rps_bench::Timer serial_timer;
      for (const rps::Triple& t : serial_batch) {
        if (!serial_inc.AddTriple("peer0", t).ok()) return 1;
      }
      per_triple_total += serial_timer.ElapsedMs();

      std::vector<rps::Triple> batch =
          make_batch(batch_sys->dict(), round);
      rps_bench::Timer batch_timer;
      if (!batch_inc.AddTriples("peer0", batch).ok()) return 1;
      batch_total += batch_timer.ElapsedMs();
    }
    bool consistent =
        serial_inc.universal().size() == batch_inc.universal().size();
    std::printf("%-12zu %-12zu %-16.2f %-16.2f %-10.1fx%s\n", kBatch,
                kRounds, per_triple_total, batch_total,
                batch_total > 0.0 ? per_triple_total / batch_total : 0.0,
                consistent ? "" : "  <-- INCONSISTENT");
    if (!consistent) return 1;

    uint64_t batch_speedup_pct =
        batch_total > 0.0 ? static_cast<uint64_t>(
                                100.0 * per_triple_total / batch_total + 0.5)
                          : 0;
    rps::obs::Registry::Global()
        .counter("bench.incremental.batch_speedup_pct")
        ->Add(batch_speedup_pct);
  }

  std::printf("\nLate-arriving mappings (paper example):\n");
  {
    rps::PaperExample ex = rps::BuildPaperExample();
    rps::Dictionary& dict = *ex.system->dict();
    rps::VarPool& vars = *ex.system->vars();
    rps::IncrementalUniversalSolution inc(ex.system.get());
    if (!inc.Initialize().ok()) return 1;
    size_t before_size = inc.universal().size();

    rps::TermId participant =
        dict.InternIri(std::string(rps::kVocNs) + "participant");
    rps::VarId x = vars.Intern("e13_x"), y = vars.Intern("e13_y");
    rps::GraphMappingAssertion gma;
    gma.label = "actor->participant";
    gma.from.head = {x, y};
    gma.from.body.Add(rps::TriplePattern{rps::PatternTerm::Var(x),
                                         rps::PatternTerm::Const(
                                             ex.prop_actor),
                                         rps::PatternTerm::Var(y)});
    gma.to.head = {x, y};
    gma.to.body.Add(rps::TriplePattern{rps::PatternTerm::Var(x),
                                       rps::PatternTerm::Const(participant),
                                       rps::PatternTerm::Var(y)});
    rps::Result<rps::RpsChaseStats> delta =
        inc.AddGraphMapping(std::move(gma));
    if (!delta.ok()) return 1;
    std::printf(
        "added mapping at runtime: J %zu -> %zu triples, %zu firing(s), "
        "no rebuild\n",
        before_size, inc.universal().size(), delta->gma_firings);
  }

  rps_bench::PrintMetricsJson("incremental", before);
  return 0;
}
