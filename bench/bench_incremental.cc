// E13 (extension) — §5 item 1 implemented: dynamic maintenance of the
// universal solution. Inserting one stored triple into an already-chased
// J re-fires only the triggers the new triple enables; rebuilding from
// scratch re-derives everything. Measured: per-update cost of the
// incremental path vs a full rebuild, as the base data grows.

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

int main() {
  rps_bench::PrintHeader(
      "E13  incremental universal-solution maintenance (§5.1, implemented)",
      "\"mappings may be subject to change and we might need to compute "
      "the information inferred from the TGDs dynamically\"");

  std::printf("%-12s %-8s %-10s %-16s %-16s %-10s\n", "films/peer", "|D|",
              "|J|", "incr_update_ms", "full_rebuild_ms", "speedup");
  for (size_t films : {25u, 50u, 100u, 200u}) {
    rps::LodConfig config;
    config.num_peers = 4;
    config.films_per_peer = films;
    config.seed = 411;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    rps::Dictionary& dict = *sys->dict();

    rps::IncrementalUniversalSolution inc(sys.get());
    if (!inc.Initialize().ok()) return 1;

    // Ten single-triple updates, timed individually (incremental path).
    rps::TermId actor0 = dict.InternIri("http://peer0.example.org/actor");
    rps_bench::Timer inc_timer;
    for (int i = 0; i < 10; ++i) {
      rps::TermId film = dict.InternIri(
          "http://peer0.example.org/hotfilm" + std::to_string(i));
      rps::TermId person = dict.InternIri(
          "http://peer0.example.org/hotperson" + std::to_string(i));
      rps::Result<rps::RpsChaseStats> delta =
          inc.AddTriple("peer0", rps::Triple{film, actor0, person});
      if (!delta.ok()) {
        std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
        return 1;
      }
    }
    double incr_ms = inc_timer.ElapsedMs() / 10.0;

    // Full rebuild on the grown system.
    rps_bench::Timer rebuild_timer;
    rps::Graph rebuilt(sys->dict());
    if (!rps::BuildUniversalSolution(*sys, &rebuilt).ok()) return 1;
    double rebuild_ms = rebuild_timer.ElapsedMs();

    bool consistent = rebuilt.size() == inc.universal().size();
    std::printf("%-12zu %-8zu %-10zu %-16.2f %-16.2f %-10.1fx%s\n", films,
                sys->StoredDatabase().size(), inc.universal().size(),
                incr_ms, rebuild_ms, rebuild_ms / incr_ms,
                consistent ? "" : "  <-- INCONSISTENT");
  }
  std::printf(
      "(expected shape: per-update cost grows much slower than the full "
      "rebuild; the gap widens with |D|)\n");

  std::printf("\nLate-arriving mappings (paper example):\n");
  {
    rps::PaperExample ex = rps::BuildPaperExample();
    rps::Dictionary& dict = *ex.system->dict();
    rps::VarPool& vars = *ex.system->vars();
    rps::IncrementalUniversalSolution inc(ex.system.get());
    if (!inc.Initialize().ok()) return 1;
    size_t before = inc.universal().size();

    rps::TermId participant =
        dict.InternIri(std::string(rps::kVocNs) + "participant");
    rps::VarId x = vars.Intern("e13_x"), y = vars.Intern("e13_y");
    rps::GraphMappingAssertion gma;
    gma.label = "actor->participant";
    gma.from.head = {x, y};
    gma.from.body.Add(rps::TriplePattern{rps::PatternTerm::Var(x),
                                         rps::PatternTerm::Const(
                                             ex.prop_actor),
                                         rps::PatternTerm::Var(y)});
    gma.to.head = {x, y};
    gma.to.body.Add(rps::TriplePattern{rps::PatternTerm::Var(x),
                                       rps::PatternTerm::Const(participant),
                                       rps::PatternTerm::Var(y)});
    rps::Result<rps::RpsChaseStats> delta =
        inc.AddGraphMapping(std::move(gma));
    if (!delta.ok()) return 1;
    std::printf(
        "added mapping at runtime: J %zu -> %zu triples, %zu firing(s), "
        "no rebuild\n",
        before, inc.universal().size(), delta->gma_firings);
  }
  return 0;
}
