// E3 — Listing 2 / Example 3: Boolean query rewriting. Substituting the
// candidate tuple (DB1:Toby_Maguire, "39") yields an ASK that is false on
// the sources; rewriting it under the RPS mappings (literal §4
// equivalence-TGD resolution) yields a union that evaluates to true.
// Also sweeps all six certain-answer tuples plus negative controls.

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

int main(int argc, char** argv) {
  rps_bench::PrintHeader(
      "E3  Listing 2 — Boolean query rewriting",
      "ASK false on sources; rewritten UNION true (Example 3)");
  size_t threads = rps_bench::ThreadsFromArgs(argc, argv);

  rps::PaperExample ex = rps::BuildPaperExample();
  rps::Dictionary& dict = *ex.system->dict();

  rps::RpsRewriteOptions literal;
  literal.equivalence_mode = rps::EquivalenceRewriteMode::kTgdResolution;

  // The headline Listing 2 check.
  rps_bench::Timer timer;
  rps::Result<rps::BooleanRewriteCheck> check = rps::CheckTupleByRewriting(
      *ex.system, ex.query, {ex.db1_toby, ex.age_39}, literal);
  double ms = timer.ElapsedMs();
  if (!check.ok()) {
    std::fprintf(stderr, "%s\n", check.status().ToString().c_str());
    return 1;
  }
  bool headline_match = !check->value_before && check->value_after;
  std::printf("tuple (DB1:Toby_Maguire, \"39\")\n");
  std::printf("  ASK before rewriting : %-5s (paper: false)\n",
              check->value_before ? "true" : "false");
  std::printf("  ASK after rewriting  : %-5s (paper: true)\n",
              check->value_after ? "true" : "false");
  std::printf("  union branches       : %zu  (explored %zu, pruned %zu, "
              "complete %s)\n",
              check->rewritten_union.size(), check->stats.generated,
              check->stats.pruned, check->stats.complete ? "yes" : "no");
  std::printf("  time                 : %.3f ms\n", ms);
  std::printf("  verdict              : [%s]\n\n",
              headline_match ? "MATCH" : "MISMATCH");

  // Sweep: every certain answer must pass the Boolean check; wrong pairs
  // must not.
  rps::CertainAnswerOptions truth_options;
  truth_options.chase.threads = threads;
  truth_options.chase.eval.threads = threads;
  rps::Result<rps::CertainAnswerResult> truth =
      rps::CertainAnswers(*ex.system, ex.query, truth_options);
  if (!truth.ok()) return 1;

  std::printf("%-55s %-8s %-8s %-8s\n", "candidate tuple", "before",
              "after", "expected");
  bool all_ok = headline_match;
  auto run = [&](const rps::Tuple& tuple, bool expected) {
    rps::Result<rps::BooleanRewriteCheck> r = rps::CheckTupleByRewriting(
        *ex.system, ex.query, tuple, literal);
    if (!r.ok()) {
      std::printf("  error: %s\n", r.status().ToString().c_str());
      all_ok = false;
      return;
    }
    bool ok = (r->value_after == expected) && !r->value_before;
    all_ok = all_ok && ok;
    std::string name = dict.ToString(tuple[0]) + ", " +
                       dict.ToString(tuple[1]);
    if (name.size() > 53) name = "..." + name.substr(name.size() - 50);
    std::printf("%-55s %-8s %-8s %-8s %s\n", name.c_str(),
                r->value_before ? "true" : "false",
                r->value_after ? "true" : "false",
                expected ? "true" : "false", ok ? "" : "  <-- MISMATCH");
  };
  for (const rps::Tuple& t : truth->answers) {
    run(t, /*expected=*/true);
  }
  // Negative controls: swap the ages around.
  rps::TermId age32 = *dict.Lookup(rps::Term::Literal("32"));
  rps::TermId age59 = *dict.Lookup(rps::Term::Literal("59"));
  run({ex.db1_toby, age32}, /*expected=*/false);
  run({ex.db1_toby, age59}, /*expected=*/false);
  run({ex.db2_willem, age32}, /*expected=*/false);

  std::printf("\noverall: [%s]\n", all_ok ? "MATCH" : "MISMATCH");
  rps_bench::PrintMetricsJson("listing2_rewriting");
  return all_ok ? 0 : 1;
}
