// Index microbench: permuted sorted triple indexes (Graph) vs. the
// historical single-position posting-list engine, swept across all seven
// bound pattern shapes plus the insert/match interleaving the chase
// produces (delta-buffer path).
//
// The baseline below is a faithful copy of the pre-index Graph::Match /
// Graph::EstimateMatches: three per-position posting lists, candidate
// filtering over the smallest list, a std::function callback per row
// (the old engine's API), estimates as posting-list minima. Both engines
// run in this binary on identical data, so the reported speedups are
// apples-to-apples.
//
//   --n=N   scale knob: the graph holds N*500 triples (default 40 ->
//           20k triples); CI smoke passes --n=4.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "rps/rps.h"

namespace {

using rps::Dictionary;
using rps::Graph;
using rps::TermId;
using rps::Triple;
using rps::TripleHash;

// The pre-index engine, verbatim: one posting list per triple position,
// matches filtered triple-by-triple over the smallest applicable list.
class PostingListGraph {
 public:
  void Insert(const Triple& t) {
    if (!set_.insert(t).second) return;
    uint32_t pos = static_cast<uint32_t>(triples_.size());
    triples_.push_back(t);
    by_s_[t.s].push_back(pos);
    by_p_[t.p].push_back(pos);
    by_o_[t.o].push_back(pos);
  }

  void Match(std::optional<TermId> s, std::optional<TermId> p,
             std::optional<TermId> o,
             const std::function<bool(const Triple&)>& fn) const {
    const std::vector<uint32_t>* best = nullptr;
    size_t best_size = std::numeric_limits<size_t>::max();
    bool bound_position_empty = false;
    auto consider = [&](const std::unordered_map<TermId,
                                                 std::vector<uint32_t>>& index,
                        std::optional<TermId> key) {
      if (!key.has_value()) return;
      auto it = index.find(*key);
      if (it == index.end()) {
        bound_position_empty = true;
        return;
      }
      if (it->second.size() < best_size) {
        best = &it->second;
        best_size = it->second.size();
      }
    };
    consider(by_s_, s);
    consider(by_p_, p);
    consider(by_o_, o);
    if (bound_position_empty) return;
    auto matches = [&](const Triple& t) {
      return (!s || t.s == *s) && (!p || t.p == *p) && (!o || t.o == *o);
    };
    if (best != nullptr) {
      for (uint32_t pos : *best) {
        const Triple& t = triples_[pos];
        if (matches(t) && !fn(t)) return;
      }
      return;
    }
    for (const Triple& t : triples_) {
      if (matches(t) && !fn(t)) return;
    }
  }

  size_t CountMatches(std::optional<TermId> s, std::optional<TermId> p,
                      std::optional<TermId> o) const {
    size_t count = 0;
    Match(s, p, o, [&](const Triple&) {
      ++count;
      return true;
    });
    return count;
  }

  size_t EstimateMatches(std::optional<TermId> s, std::optional<TermId> p,
                         std::optional<TermId> o) const {
    size_t best = triples_.size();
    auto consider = [&](const std::unordered_map<TermId,
                                                 std::vector<uint32_t>>& index,
                        std::optional<TermId> key) {
      if (!key.has_value()) return;
      auto it = index.find(*key);
      best = std::min(best, it == index.end() ? 0 : it->second.size());
    };
    consider(by_s_, s);
    consider(by_p_, p);
    consider(by_o_, o);
    return best;
  }

  // The pre-index engine recomputed the in-use term set from scratch on
  // every call; the chase asks once per round.
  std::unordered_set<TermId> TermsInUse() const {
    std::unordered_set<TermId> out;
    out.reserve(triples_.size());
    for (const Triple& t : triples_) {
      out.insert(t.s);
      out.insert(t.p);
      out.insert(t.o);
    }
    return out;
  }

 private:
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> set_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_s_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_p_;
  std::unordered_map<TermId, std::vector<uint32_t>> by_o_;
};

struct Pattern {
  std::optional<TermId> s, p, o;
};

const char* ShapeName(int shape) {
  static const char* names[8] = {"(? ? ?)", "(s ? ?)", "(? p ?)", "(s p ?)",
                                 "(? ? o)", "(s ? o)", "(? p o)", "(s p o)"};
  return names[shape];
}

Pattern PatternFor(int shape, const Triple& t, rps::Rng* rng,
                   TermId max_term) {
  Pattern q;
  // One in eight probes misses: a fresh never-inserted key at one bound
  // position stresses the no-match early-outs of both engines.
  Triple probe = t;
  if (rng->Chance(0.125)) probe.s = max_term + 1 + rng->Index(16);
  if ((shape & 1) != 0) q.s = probe.s;
  if ((shape & 2) != 0) q.p = probe.p;
  if ((shape & 4) != 0) q.o = probe.o;
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n_knob = rps_bench::SizeFromArgs(argc, argv, 40);
  const size_t n_triples = n_knob * 500;
  const size_t n_probes = std::min<size_t>(4000, n_triples);

  rps_bench::PrintHeader(
      "bench_index_scan — permuted sorted indexes vs posting lists",
      "Graph::Match is the innermost loop of chase + evaluation "
      "(Theorem 1's PTIME engine); 2-bound shapes dominate");

  rps::obs::MetricsSnapshot before = rps::obs::Registry::Global().Snapshot();

  // Synthetic LOD-ish shape: few predicates, many subjects/objects, plus
  // a handful of hub terms (type-like objects, celebrity subjects) that
  // absorb ~25% of the triples each way — so posting lists span from a
  // few entries to thousands, as in real linked data.
  rps::Dictionary dict;
  rps::Rng rng(20260806);
  std::vector<Triple> data;
  data.reserve(n_triples);
  const size_t n_subjects = std::max<size_t>(8, n_triples / 10);
  const size_t n_predicates = 16;
  const size_t n_objects = std::max<size_t>(8, n_triples / 8);
  const size_t n_hubs = 8;
  std::vector<TermId> subjects, predicates, objects;
  for (size_t i = 0; i < n_subjects; ++i) {
    subjects.push_back(dict.InternIri("http://b/s" + std::to_string(i)));
  }
  for (size_t i = 0; i < n_predicates; ++i) {
    predicates.push_back(dict.InternIri("http://b/p" + std::to_string(i)));
  }
  for (size_t i = 0; i < n_objects; ++i) {
    objects.push_back(dict.InternIri("http://b/o" + std::to_string(i)));
  }
  TermId max_term = objects.back();
  while (data.size() < n_triples) {
    // Zipf-ish skew: low predicate ids are much more frequent.
    size_t pi = rng.Index(n_predicates);
    pi = std::min(pi, rng.Index(n_predicates));
    TermId subj = rng.Chance(0.25) ? subjects[rng.Index(n_hubs)]
                                   : subjects[rng.Index(n_subjects)];
    TermId obj = rng.Chance(0.25) ? objects[rng.Index(n_hubs)]
                                  : objects[rng.Index(n_objects)];
    data.push_back(Triple{subj, predicates[pi], obj});
  }

  Graph indexed(&dict);
  PostingListGraph baseline;
  for (const Triple& t : data) {
    indexed.InsertUnchecked(t);
    baseline.Insert(t);
  }

  std::printf("graph: %zu triples (%zu base / %zu delta), "
              "%zu subjects, %zu predicates, %zu objects\n\n",
              indexed.size(), indexed.base_size(), indexed.delta_size(),
              n_subjects, n_predicates, n_objects);

  // ---- Sweep 1: Match across the seven bound shapes ------------------
  std::printf("Sweep 1: Match, %zu probes per shape (times in ms)\n",
              n_probes);
  std::printf("%-10s %-12s %-12s %-9s %-14s\n", "shape", "postings_ms",
              "permuted_ms", "speedup", "rows(checksum)");
  for (int shape = 1; shape < 8; ++shape) {
    std::vector<Pattern> probes;
    probes.reserve(n_probes);
    rps::Rng probe_rng(shape * 977);
    for (size_t i = 0; i < n_probes; ++i) {
      probes.push_back(PatternFor(shape, data[probe_rng.Index(data.size())],
                                  &probe_rng, max_term));
    }

    rps_bench::Timer t0;
    size_t rows_base = 0;
    for (const Pattern& q : probes) {
      rows_base += baseline.CountMatches(q.s, q.p, q.o);
    }
    double base_ms = t0.ElapsedMs();

    rps_bench::Timer t1;
    size_t rows_idx = 0;
    for (const Pattern& q : probes) {
      indexed.Match(q.s, q.p, q.o, [&](const Triple&) {
        ++rows_idx;
        return true;
      });
    }
    double idx_ms = t1.ElapsedMs();

    std::printf("%-10s %-12.3f %-12.3f %-9.2f %zu%s\n", ShapeName(shape),
                base_ms, idx_ms, base_ms / std::max(idx_ms, 1e-9), rows_idx,
                rows_idx == rows_base ? "" : "  [MISMATCH]");
    if (rows_idx != rows_base) return 1;
  }

  // ---- Sweep 2: EstimateMatches exactness + speed --------------------
  std::printf("\nSweep 2: EstimateMatches, %zu probes per shape\n", n_probes);
  std::printf("%-10s %-12s %-12s %-14s %-14s\n", "shape", "postings_ms",
              "permuted_ms", "postings_err", "permuted_err");
  for (int shape = 1; shape < 8; ++shape) {
    std::vector<Pattern> probes;
    rps::Rng probe_rng(shape * 1409);
    for (size_t i = 0; i < n_probes; ++i) {
      probes.push_back(PatternFor(shape, data[probe_rng.Index(data.size())],
                                  &probe_rng, max_term));
    }
    // True cardinalities from the baseline's exhaustive count.
    std::vector<size_t> truth;
    truth.reserve(probes.size());
    for (const Pattern& q : probes) {
      truth.push_back(baseline.CountMatches(q.s, q.p, q.o));
    }

    rps_bench::Timer t0;
    size_t err_base = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      const Pattern& q = probes[i];
      err_base += baseline.EstimateMatches(q.s, q.p, q.o) - truth[i];
    }
    double base_ms = t0.ElapsedMs();

    rps_bench::Timer t1;
    size_t err_idx = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      const Pattern& q = probes[i];
      err_idx += indexed.EstimateMatches(q.s, q.p, q.o) - truth[i];
    }
    double idx_ms = t1.ElapsedMs();

    std::printf("%-10s %-12.3f %-12.3f %-14zu %zu%s\n", ShapeName(shape),
                base_ms, idx_ms, err_base, err_idx,
                err_idx == 0 ? "  [EXACT]" : "  [INEXACT]");
    if (err_idx != 0) return 1;
  }

  // ---- Sweep 3: chase-style interleaving (delta-buffer path) ---------
  // Insert one triple, run a 2-bound match, and periodically consult the
  // in-use term set — the access pattern of chase rounds. The LSM delta
  // absorbs writes without re-sorting the base on every insert, and
  // TermsInUse is maintained incrementally instead of recomputed.
  std::printf("\nSweep 3: interleaved insert + (s p ?) match + TermsInUse, "
              "%zu rounds\n",
              n_triples / 2);
  {
    Graph inc_indexed(&dict);
    PostingListGraph inc_baseline;
    constexpr size_t kTermsEvery = 128;

    rps::Rng mix_rng(5);
    rps_bench::Timer t0;
    size_t rows_base = 0;
    for (size_t i = 0; i < n_triples / 2; ++i) {
      inc_baseline.Insert(data[i]);
      const Triple& probe = data[mix_rng.Index(i + 1)];
      rows_base += inc_baseline.CountMatches(probe.s, probe.p, std::nullopt);
      if (i % kTermsEvery == 0) rows_base += inc_baseline.TermsInUse().size();
    }
    double base_ms = t0.ElapsedMs();

    mix_rng = rps::Rng(5);
    rps_bench::Timer t1;
    size_t rows_idx = 0;
    for (size_t i = 0; i < n_triples / 2; ++i) {
      inc_indexed.InsertUnchecked(data[i]);
      const Triple& probe = data[mix_rng.Index(i + 1)];
      inc_indexed.Match(probe.s, probe.p, std::nullopt, [&](const Triple&) {
        ++rows_idx;
        return true;
      });
      if (i % kTermsEvery == 0) rows_idx += inc_indexed.TermsInUse().size();
    }
    double idx_ms = t1.ElapsedMs();

    std::printf("%-10s %-12.3f %-12.3f %-9.2f %zu%s\n", "insert+2b", base_ms,
                idx_ms, base_ms / std::max(idx_ms, 1e-9), rows_idx,
                rows_idx == rows_base ? "" : "  [MISMATCH]");
    if (rows_idx != rows_base) return 1;
  }

  // ---- Sweep 4: multi-pattern BGP joins, probe vs cost-based plan ----
  // Unanchored star / clique joins on the hub-skewed data are where the
  // per-binding probe loop degrades: the intermediate grows to thousands
  // of rows and each one pays an index probe per remaining pattern. The
  // plan engine (query/plan.h) materializes + sorts each extension once
  // and merge-joins (collapsing same-variable runs into a leapfrog
  // intersection), then restores the probe engine's emission order — so
  // the row counts must match exactly, byte for byte.
  std::printf("\nSweep 4: BGP joins, probe engine vs cost-based plan "
              "(times in ms)\n");
  std::printf("%-12s %-10s %-12s %-12s %-9s %-14s\n", "query", "patterns",
              "probe_ms", "planned_ms", "speedup", "rows(checksum)");
  {
    rps::VarPool vars;
    rps::VarId vx = vars.Intern("x");
    rps::VarId va = vars.Intern("a");
    rps::VarId vb = vars.Intern("b");
    rps::VarId vc = vars.Intern("c");
    auto var = [](rps::VarId v) { return rps::PatternTerm::Var(v); };
    auto cst = [](TermId t) { return rps::PatternTerm::Const(t); };

    struct BgpCase {
      const char* name;
      const Graph* graph;
      std::vector<rps::TriplePattern> patterns;
    };
    std::vector<BgpCase> cases;

    // The greedy-trap graph: hub—p0→ x_i (anchor, nx rows); each x_i
    // —p1→ 20 z's from a wide pool; 10 z's carry a rare —p2→ w triple.
    // Greedy order (fewest-unbound-first) runs anchor → p1 → p2 and
    // drags a 20·nx-row intermediate through the last join. The DP
    // instead anchors on the 10-row p2 pattern and keeps every
    // intermediate small — the order a selectivity-only heuristic cannot
    // find because p2 starts with two unbound positions.
    Graph trap(&dict);
    TermId trap_hub = dict.InternIri("http://b/trap-hub");
    TermId tp0 = dict.InternIri("http://b/tp0");
    TermId tp1 = dict.InternIri("http://b/tp1");
    TermId tp2 = dict.InternIri("http://b/tp2");
    {
      const size_t nx = std::max<size_t>(100, n_knob * 25);
      const size_t fan = 20;
      const size_t zpool = nx * 5;
      std::vector<TermId> xs, zs;
      for (size_t i = 0; i < nx; ++i) {
        xs.push_back(dict.InternIri("http://b/tx" + std::to_string(i)));
      }
      for (size_t i = 0; i < zpool; ++i) {
        zs.push_back(dict.InternIri("http://b/tz" + std::to_string(i)));
      }
      rps::Rng trap_rng(99);
      for (size_t i = 0; i < nx; ++i) {
        trap.InsertUnchecked(Triple{trap_hub, tp0, xs[i]});
        for (size_t k = 0; k < fan; ++k) {
          trap.InsertUnchecked(Triple{xs[i], tp1, zs[trap_rng.Index(zpool)]});
        }
      }
      for (size_t i = 0; i < 10; ++i) {
        trap.InsertUnchecked(
            Triple{zs[i], tp2,
                   dict.InternIri("http://b/tw" + std::to_string(i))});
      }
    }
    cases.push_back({"greedy-trap",
                     &trap,
                     {{cst(trap_hub), cst(tp0), var(vx)},
                      {var(vx), cst(tp1), var(va)},
                      {var(va), cst(tp2), var(vb)}}});
    // 3-pattern with two predicates over the same (s, o) pair — a
    // selective pair-key merge join.
    cases.push_back({"clique3",
                     &indexed,
                     {{var(vx), cst(predicates[1]), var(va)},
                      {var(vx), cst(predicates[2]), var(va)},
                      {var(vx), cst(predicates[3]), var(vb)}}});
    // Output-dominated subject star: every pattern shares ?x and the hub
    // subjects make the result itself huge. Any engine is Ω(output)
    // here; the plan engine additionally pays the canonical-order
    // restore sort, so this is the documented worst case, committed to
    // the baseline on purpose (docs/QUERY_PLANNING.md "caveats").
    cases.push_back({"star3",
                     &indexed,
                     {{var(vx), cst(predicates[0]), var(va)},
                      {var(vx), cst(predicates[1]), var(vb)},
                      {var(vx), cst(predicates[2]), var(vc)}}});

    for (const BgpCase& c : cases) {
      const Graph& g = *c.graph;
      rps::EvalOptions probe_opts;
      probe_opts.use_plan = false;
      rps::EvalOptions plan_opts;
      rps::PlanCapture capture;
      plan_opts.plan_capture = &capture;

      // Warmup once per engine (page in the index ranges), then take the
      // best of three timed runs so first-touch effects don't pollute
      // the ratio.
      rps::BindingSet probe_rows = rps::ExtendBindings(
          g, c.patterns, {rps::Binding()}, probe_opts);
      rps::BindingSet planned_rows = rps::ExtendBindings(
          g, c.patterns, {rps::Binding()}, plan_opts);
      double probe_ms = std::numeric_limits<double>::max();
      double plan_ms = std::numeric_limits<double>::max();
      for (int rep = 0; rep < 3; ++rep) {
        rps_bench::Timer t0;
        probe_rows = rps::ExtendBindings(g, c.patterns,
                                         {rps::Binding()}, probe_opts);
        probe_ms = std::min(probe_ms, t0.ElapsedMs());
        rps_bench::Timer t1;
        planned_rows = rps::ExtendBindings(g, c.patterns,
                                           {rps::Binding()}, plan_opts);
        plan_ms = std::min(plan_ms, t1.ElapsedMs());
      }

      // Publish both timings (in µs) so the committed baseline JSON
      // carries the probe-vs-planned ratio for every sweep case, plus
      // the dimensionless speedup (probe/planned, in percent) that the
      // CI gate (scripts/bench_compare.py) actually enforces: 100 =
      // parity, 200 = planned twice as fast.
      rps::obs::Registry::Global()
          .counter(std::string("bench.join.") + c.name + ".probe_us")
          ->Add(static_cast<uint64_t>(probe_ms * 1000.0));
      rps::obs::Registry::Global()
          .counter(std::string("bench.join.") + c.name + ".planned_us")
          ->Add(static_cast<uint64_t>(plan_ms * 1000.0));
      rps::obs::Registry::Global()
          .counter(std::string("bench.join.") + c.name + ".plan_speedup_pct")
          ->Add(static_cast<uint64_t>(100.0 * probe_ms /
                                      std::max(plan_ms, 1e-9)));

      bool identical = probe_rows == planned_rows;
      std::printf("%-12s %-10zu %-12.3f %-12.3f %-9.2f %zu%s\n", c.name,
                  c.patterns.size(), probe_ms, plan_ms,
                  probe_ms / std::max(plan_ms, 1e-9), planned_rows.size(),
                  identical ? "" : "  [MISMATCH]");
      rps::QueryPlan plan = capture.Take();
      std::printf("%-12s   %s", "", rps::RenderPlan(plan, &dict, &vars).c_str());
      if (!identical) return 1;
    }
  }

  // ---- Sweep 5: cyclic / star BGPs under hub skew, WCOJ vs binary ----
  // Triangle and 4-cycle queries are where binary join plans are
  // asymptotically beaten: every pairwise join of two hub-skewed edge
  // relations produces an intermediate far larger than the final cyclic
  // result, while the worst-case-optimal leapfrog triejoin
  // (PlanOp::kWcojJoin) intersects one variable at a time across all
  // three tiers of the permuted runs and never materializes the blowup.
  // Three engines on identical data, all byte-identical: the per-binding
  // probe loop, the cost-based planner restricted to binary operators
  // (WcojMode::kOff — left-deep merge/leapfrog plans), and the full
  // planner (kAuto) which picks the WCOJ operator when the cost model
  // says the cyclic blowup dominates. The star4 case is output-bound —
  // there kAuto must recognize WCOJ has no edge and stay neutral.
  std::printf("\nSweep 5: cyclic/star BGPs under hub skew, probe vs "
              "left-deep vs WCOJ (times in ms)\n");
  std::printf("%-10s %-9s %-10s %-12s %-10s %-11s %-14s\n", "query",
              "patterns", "probe_ms", "leftdeep_ms", "wcoj_ms",
              "wcoj_vs_ld", "rows(checksum)");
  {
    rps::VarPool vars;
    rps::VarId vx = vars.Intern("x");
    rps::VarId vy = vars.Intern("y");
    rps::VarId vz = vars.Intern("z");
    rps::VarId vw = vars.Intern("w");
    rps::VarId vu = vars.Intern("u");
    auto var = [](rps::VarId v) { return rps::PatternTerm::Var(v); };
    auto cst = [](TermId t) { return rps::PatternTerm::Const(t); };

    // Hub-skewed edge graphs over one node pool: each endpoint draw
    // lands on a small hub set with the given probability. Hubs make
    // every pairwise join quadratic (hub fan-in × hub fan-out) while
    // closed cycles stay comparatively rare — the blowup the AGM bound
    // caps. The hub count scales with the knob so per-hub degree (and
    // thus the per-hub quadratic term) stays roughly constant.
    auto make_edge_graph = [&](const char* tag, size_t nv, size_t n_edges,
                               size_t n_hubs, double hub_prob,
                               size_t n_preds, uint64_t seed,
                               std::vector<TermId>* preds) {
      Graph g(&dict);
      std::vector<TermId> nodes;
      nodes.reserve(nv);
      for (size_t i = 0; i < nv; ++i) {
        nodes.push_back(
            dict.InternIri(std::string("http://b/") + tag + std::to_string(i)));
      }
      for (size_t i = 0; i < n_preds; ++i) {
        preds->push_back(dict.InternIri(std::string("http://b/") + tag + "p" +
                                        std::to_string(i)));
      }
      rps::Rng edge_rng(seed);
      auto pick_node = [&]() {
        return edge_rng.Chance(hub_prob) ? nodes[edge_rng.Index(n_hubs)]
                                         : nodes[edge_rng.Index(nv)];
      };
      for (TermId p : *preds) {
        for (size_t i = 0; i < n_edges; ++i) {
          g.InsertUnchecked(Triple{pick_node(), p, pick_node()});
        }
      }
      return g;
    };

    // Dense, heavily skewed graph for the triangle: binary plans pay a
    // ~|E|·hub-degree two-path intermediate before they can close the
    // cycle.
    const size_t tri_nv = std::max<size_t>(160, n_knob * 40);
    const size_t tri_hubs = std::max<size_t>(6, n_knob);
    std::vector<TermId> tri_preds;
    Graph tri = make_edge_graph("tn", tri_nv, tri_nv * 10, tri_hubs, 0.5, 3,
                                20260809, &tri_preds);
    // Moderate skew for the 4-cycle: two inflated intermediates before
    // the cycle closes, sized so the binary plan stays runnable.
    const size_t cyc_nv = std::max<size_t>(100, n_knob * 25);
    const size_t cyc_hubs = std::max<size_t>(8, n_knob);
    std::vector<TermId> cyc_preds;
    Graph cyc = make_edge_graph("qn", cyc_nv, cyc_nv * 4, cyc_hubs, 0.3, 4,
                                20260810, &cyc_preds);

    struct CyclicCase {
      const char* name;
      const Graph* graph;
      std::vector<rps::TriplePattern> patterns;
    };
    std::vector<CyclicCase> cases;
    // Triangle: the canonical WCOJ showcase — output O(N^{3/2}) but any
    // binary plan's first join is O(N^2 / nodes) under hub skew.
    cases.push_back({"triangle",
                     &tri,
                     {{var(vx), cst(tri_preds[0]), var(vy)},
                      {var(vy), cst(tri_preds[1]), var(vz)},
                      {var(vz), cst(tri_preds[2]), var(vx)}}});
    // 4-cycle: two hub-inflated intermediates before the cycle closes.
    cases.push_back({"cycle4",
                     &cyc,
                     {{var(vx), cst(cyc_preds[0]), var(vy)},
                      {var(vy), cst(cyc_preds[1]), var(vz)},
                      {var(vz), cst(cyc_preds[2]), var(vw)},
                      {var(vw), cst(cyc_preds[3]), var(vx)}}});
    // Hub-subject star over the main LOD-ish graph (mid-frequency
    // predicates keep the cartesian per-hub output bounded): output-
    // dominated, so WCOJ has no asymptotic edge — the gate only demands
    // kAuto stays at least neutral against the binary-only planner.
    cases.push_back({"star4",
                     &indexed,
                     {{var(vx), cst(predicates[8]), var(vy)},
                      {var(vx), cst(predicates[9]), var(vz)},
                      {var(vx), cst(predicates[10]), var(vw)},
                      {var(vx), cst(predicates[11]), var(vu)}}});

    for (const CyclicCase& c : cases) {
      const Graph& cg = *c.graph;
      rps::EvalOptions probe_opts;
      probe_opts.use_plan = false;
      rps::EvalOptions leftdeep_opts;
      leftdeep_opts.wcoj = rps::WcojMode::kOff;
      rps::EvalOptions wcoj_opts;  // kAuto: cost model decides
      rps::PlanCapture capture;
      wcoj_opts.plan_capture = &capture;

      rps::BindingSet probe_rows = rps::ExtendBindings(
          cg, c.patterns, {rps::Binding()}, probe_opts);
      rps::BindingSet leftdeep_rows = rps::ExtendBindings(
          cg, c.patterns, {rps::Binding()}, leftdeep_opts);
      rps::BindingSet wcoj_rows = rps::ExtendBindings(
          cg, c.patterns, {rps::Binding()}, wcoj_opts);
      double probe_ms = std::numeric_limits<double>::max();
      double leftdeep_ms = std::numeric_limits<double>::max();
      double wcoj_ms = std::numeric_limits<double>::max();
      for (int rep = 0; rep < 3; ++rep) {
        rps_bench::Timer t0;
        probe_rows = rps::ExtendBindings(cg, c.patterns, {rps::Binding()},
                                         probe_opts);
        probe_ms = std::min(probe_ms, t0.ElapsedMs());
        rps_bench::Timer t1;
        leftdeep_rows = rps::ExtendBindings(cg, c.patterns,
                                            {rps::Binding()}, leftdeep_opts);
        leftdeep_ms = std::min(leftdeep_ms, t1.ElapsedMs());
        rps_bench::Timer t2;
        wcoj_rows = rps::ExtendBindings(cg, c.patterns, {rps::Binding()},
                                        wcoj_opts);
        wcoj_ms = std::min(wcoj_ms, t2.ElapsedMs());
      }

      // Raw timings (µs) for the record plus the gated dimensionless
      // ratios: wcoj_speedup_pct compares kAuto against the binary-only
      // planner (100 = parity — the gate's guarantee is "WCOJ never
      // loses"), plan_speedup_pct compares kAuto against the probe loop.
      auto publish = [&](const char* key, double v) {
        rps::obs::Registry::Global()
            .counter(std::string("bench.join.") + c.name + key)
            ->Add(static_cast<uint64_t>(v));
      };
      publish(".probe_us", probe_ms * 1000.0);
      publish(".leftdeep_us", leftdeep_ms * 1000.0);
      publish(".wcoj_us", wcoj_ms * 1000.0);
      publish(".wcoj_speedup_pct",
              100.0 * leftdeep_ms / std::max(wcoj_ms, 1e-9));
      publish(".plan_speedup_pct",
              100.0 * probe_ms / std::max(wcoj_ms, 1e-9));

      bool identical = probe_rows == wcoj_rows && leftdeep_rows == wcoj_rows;
      std::printf("%-10s %-9zu %-10.3f %-12.3f %-10.3f %-11.2f %zu%s\n",
                  c.name, c.patterns.size(), probe_ms, leftdeep_ms, wcoj_ms,
                  leftdeep_ms / std::max(wcoj_ms, 1e-9), wcoj_rows.size(),
                  identical ? "" : "  [MISMATCH]");
      rps::QueryPlan plan = capture.Take();
      std::printf("%-10s   %s", "",
                  rps::RenderPlan(plan, &dict, &vars).c_str());
      if (!identical) return 1;
    }
  }

  rps_bench::PrintMetricsJson("index_scan", before);
  return 0;
}
