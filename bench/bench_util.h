#ifndef RPS_BENCH_BENCH_UTIL_H_
#define RPS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace rps_bench {

/// Wall-clock stopwatch for the experiment harnesses.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedMs() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Parses an optional `--threads=N` harness argument (parallel chase /
/// evaluation / federation engine). Returns `fallback` when absent or
/// not a positive number, so every harness stays runnable with no args.
inline size_t ThreadsFromArgs(int argc, char** argv, size_t fallback = 1) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      int parsed = std::atoi(argv[i] + 10);
      if (parsed > 0) return static_cast<size_t>(parsed);
    }
  }
  return fallback;
}

/// Parses an optional `--n=N` harness argument (problem-size budget:
/// films per peer, iterations, ...). Returns `fallback` when absent or
/// not a positive number. CI's bench-smoke job passes a tiny `--n` to
/// every harness; harnesses without a size knob simply ignore it.
inline size_t SizeFromArgs(int argc, char** argv, size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      int parsed = std::atoi(argv[i] + 4);
      if (parsed > 0) return static_cast<size_t>(parsed);
    }
  }
  return fallback;
}

inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", claim);
  std::printf("================================================================\n");
}

/// Snapshots the global metrics registry since `since` and prints the
/// delta as one JSON line tagged `tag`, so every harness emits a
/// machine-readable observability record next to its timing table:
///
///   METRICS {"tag":"fig1","counters":{...},"histograms":{...}}
///
/// Call with Registry::Global().Snapshot() taken before the measured
/// work; pass a default-constructed snapshot for process-lifetime totals.
inline void PrintMetricsJson(const char* tag,
                             const rps::obs::MetricsSnapshot& since =
                                 rps::obs::MetricsSnapshot()) {
  rps::obs::MetricsSnapshot delta =
      rps::obs::Registry::Global().Snapshot().DeltaSince(since);
  std::string json = delta.ToJson();
  // Splice the tag into the object so one grep collects every record.
  std::printf("METRICS {\"tag\":\"%s\",%s\n", tag, json.c_str() + 1);
}

}  // namespace rps_bench

#endif  // RPS_BENCH_BENCH_UTIL_H_
