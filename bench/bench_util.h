#ifndef RPS_BENCH_BENCH_UTIL_H_
#define RPS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>

namespace rps_bench {

/// Wall-clock stopwatch for the experiment harnesses.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  double ElapsedMs() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace rps_bench

#endif  // RPS_BENCH_BENCH_UTIL_H_
