// E2 — Figure 2 + Example 2 + Listing 1: materialize the universal
// solution of the paper's RPS with Algorithm 1 and evaluate the Example 1
// query over it; reproduce both result sets of Listing 1. Includes the
// pattern-reordering micro-ablation (DESIGN.md §5.2).

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

namespace {

const char* kExpectedWithRedundancy[] = {
    "<http://example.org/db1/Kirsten_Dunst>\t\"32\"",
    "<http://example.org/db1/Toby_Maguire>\t\"39\"",
    "<http://example.org/db2/Willem_Dafoe>\t\"59\"",
    "<http://xmlns.com/foaf/0.1/Kirsten_Dunst>\t\"32\"",
    "<http://xmlns.com/foaf/0.1/Toby_Maguire>\t\"39\"",
    "<http://xmlns.com/foaf/0.1/Willem_Dafoe>\t\"59\"",
};
const char* kExpectedDeduplicated[] = {
    "<http://example.org/db1/Kirsten_Dunst>\t\"32\"",
    "<http://example.org/db1/Toby_Maguire>\t\"39\"",
    "<http://example.org/db2/Willem_Dafoe>\t\"59\"",
};

bool Matches(const std::vector<rps::Tuple>& answers,
             const rps::Dictionary& dict, const char* const* expected,
             size_t expected_count) {
  std::vector<std::string> got;
  for (const rps::Tuple& t : answers) {
    got.push_back(dict.ToString(t[0]) + "\t" + dict.ToString(t[1]));
  }
  std::vector<std::string> want(expected, expected + expected_count);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  return got == want;
}

}  // namespace

int main(int argc, char** argv) {
  rps_bench::PrintHeader(
      "E2  Figure 2 + Listing 1 — universal solution & certain answers",
      "6 rows with redundancy; 3 rows without (Listing 1)");
  size_t threads = rps_bench::ThreadsFromArgs(argc, argv);
  rps::CertainAnswerOptions ca_options;
  ca_options.chase.threads = threads;
  ca_options.chase.eval.threads = threads;

  rps::PaperExample ex = rps::BuildPaperExample();
  const rps::Dictionary& dict = *ex.system->dict();

  rps_bench::Timer timer;
  rps::Graph universal(ex.system->dict());
  rps::Result<rps::RpsChaseStats> stats =
      rps::BuildUniversalSolution(*ex.system, &universal, ca_options.chase);
  double chase_ms = timer.ElapsedMs();
  if (!stats.ok()) {
    std::fprintf(stderr, "chase failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::printf("universal solution    : %zu triples (stored %zu + inferred "
              "%zu)\n",
              universal.size(), ex.system->StoredDatabase().size(),
              stats->triples_added);
  std::printf("chase                 : %zu rounds, %zu GMA firings, %zu eq "
              "copies, %zu blanks, %.3f ms\n",
              stats->rounds, stats->gma_firings, stats->eq_triples,
              stats->blanks_created, chase_ms);

  // Listing 1, with redundancy (naive Algorithm 1).
  timer.Reset();
  rps::Result<rps::CertainAnswerResult> redundant =
      rps::CertainAnswers(*ex.system, ex.query, ca_options);
  double answer_ms = timer.ElapsedMs();
  if (!redundant.ok()) return 1;
  bool match6 = Matches(redundant->answers, dict, kExpectedWithRedundancy, 6);
  std::printf("\n#Result               : %zu rows (paper: 6)   [%s]  %.3f ms\n",
              redundant->answers.size(), match6 ? "MATCH" : "MISMATCH",
              answer_ms);
  std::printf("%s",
              rps::FormatAnswers(redundant->answers, dict).c_str());

  // Listing 1, without redundancy (canonical representatives).
  rps::CertainAnswerOptions compact = ca_options;
  compact.equivalence_mode = rps::EquivalenceMode::kUnionFind;
  compact.expand_equivalent_answers = false;
  timer.Reset();
  rps::Result<rps::CertainAnswerResult> dedup =
      rps::CertainAnswers(*ex.system, ex.query, compact);
  double dedup_ms = timer.ElapsedMs();
  if (!dedup.ok()) return 1;
  bool match3 = Matches(dedup->answers, dict, kExpectedDeduplicated, 3);
  std::printf("\n#Result w/o redundancy: %zu rows (paper: 3)   [%s]  %.3f ms\n",
              dedup->answers.size(), match3 ? "MATCH" : "MISMATCH", dedup_ms);
  std::printf("%s", rps::FormatAnswers(dedup->answers, dict).c_str());

  // Micro-ablation: pattern reordering on the universal solution.
  std::printf("\nablation: BGP pattern ordering over the universal solution"
              " (10k evaluations)\n");
  for (bool reorder : {false, true}) {
    rps::EvalOptions options;
    options.reorder_patterns = reorder;
    options.threads = threads;
    timer.Reset();
    size_t checksum = 0;
    for (int i = 0; i < 10000; ++i) {
      checksum += rps::EvalQuery(universal, ex.query,
                                 rps::QuerySemantics::kDropBlanks, options)
                      .size();
    }
    std::printf("  reorder=%-5s  %8.2f ms   (checksum %zu)\n",
                reorder ? "true" : "false", timer.ElapsedMs(), checksum);
  }
  rps_bench::PrintMetricsJson("fig2_universal_solution");
  return (match6 && match3) ? 0 : 1;
}
