// E14 (extension) — snapshot-isolated concurrent query serving. A
// QueryServer answers a closed-loop client mix over an already-chased
// universal solution WHILE an ingest thread appends live triples. Each
// query runs against the GraphSnapshot epoch captured at execution
// start, so its answers are byte-identical to a serial evaluation of
// the graph's first `epoch` triples — verified here against a rebuilt
// prefix-graph oracle for every sweep. Measured: QPS and p50/p99
// latency as the server worker count doubles 1..8 under mixed
// read+ingest load.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "rps/rps.h"

namespace {

// Exact sample quantile (nearest-rank) over the recorded latencies —
// finer than the power-of-two histogram buckets the live gauges use.
double SampleQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(q * (values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

// One served answer we re-check against the serial oracle.
struct ParityRecord {
  size_t query_index;
  size_t epoch;
  std::vector<rps::Tuple> answers;
};

}  // namespace

int main(int argc, char** argv) {
  size_t n = rps_bench::SizeFromArgs(argc, argv, 40);
  size_t max_threads = rps_bench::ThreadsFromArgs(argc, argv, 8);

  rps_bench::PrintHeader(
      "E14  concurrent query serving under ingest (snapshot isolation)",
      "\"data is made available ... in a dynamic, on-demand fashion\" — "
      "queries overlap live appends without ever seeing a torn state");

  rps::LodConfig config;
  config.num_peers = 4;
  config.films_per_peer = n;
  config.seed = 1415;
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
  rps::Dictionary& dict = *sys->dict();

  rps::Graph universal(sys->dict());
  rps::Result<rps::RpsChaseStats> chase =
      rps::BuildUniversalSolution(*sys, &universal);
  if (!chase.ok()) {
    std::fprintf(stderr, "%s\n", chase.status().ToString().c_str());
    return 1;
  }

  // Query mix: the cross-peer film/actor join plus one single-pattern
  // scan per frequent predicate — a blend of cheap and join-heavy reads.
  std::vector<rps::GraphPatternQuery> queries;
  queries.push_back(rps::LodDemoQuery(sys.get(), config));
  {
    std::set<rps::TermId> predicates;
    for (const rps::Triple& t : universal.triples()) {
      if (predicates.insert(t.p).second && predicates.size() >= 4) break;
    }
    rps::VarPool* vars = sys->vars();
    for (rps::TermId p : predicates) {
      rps::GraphPatternQuery q;
      rps::VarId x = vars->Fresh("srv_x");
      rps::VarId y = vars->Fresh("srv_y");
      q.head = {x, y};
      q.body.Add(rps::TriplePattern{rps::PatternTerm::Var(x),
                                    rps::PatternTerm::Const(p),
                                    rps::PatternTerm::Var(y)});
      queries.push_back(std::move(q));
    }
  }

  rps::TermId live_pred =
      dict.InternIri("http://peer0.example.org/actor");

  const size_t kRequestsPerClient = 24;
  std::printf("universal solution: %zu triple(s); %zu quer%s in the mix\n\n",
              universal.size(), queries.size(),
              queries.size() == 1 ? "y" : "ies");
  std::printf("%-9s %-9s %-9s %-10s %-10s %-10s %-12s\n", "workers",
              "clients", "answers", "qps", "p50_ms", "p99_ms",
              "epoch range");

  rps::obs::MetricsSnapshot before = rps::obs::Registry::Global().Snapshot();
  size_t parity_failures = 0;
  size_t parity_checked = 0;

  for (size_t workers = 1; workers <= max_threads; workers *= 2) {
    // Every sweep serves a fresh copy of the universal solution, so the
    // thread counts are compared on identical starting states.
    rps::Graph graph = universal;
    rps::QueryServerOptions server_options;
    server_options.worker_threads = workers;
    rps::QueryServer server(&graph, server_options);

    // Live ingest: small batches of fresh film/actor facts, minting new
    // IRIs through the (now concurrent) dictionary as a real feed would.
    std::atomic<bool> stop_ingest{false};
    std::atomic<size_t> ingested{0};
    std::thread ingester([&, workers] {
      size_t i = 0;
      while (!stop_ingest.load(std::memory_order_acquire)) {
        std::vector<rps::Triple> batch;
        batch.reserve(8);
        for (size_t j = 0; j < 8; ++j, ++i) {
          rps::TermId film = dict.InternIri(
              "http://peer0.example.org/live" + std::to_string(workers) +
              "/film" + std::to_string(i));
          rps::TermId person = dict.InternIri(
              "http://peer0.example.org/live" + std::to_string(workers) +
              "/person" + std::to_string(i));
          batch.push_back(rps::Triple{film, live_pred, person});
        }
        ingested.fetch_add(server.Ingest(batch),
                           std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    // Closed-loop clients: each issues its next request as soon as the
    // previous answer arrives, round-robining over the query mix.
    size_t clients = workers;
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::vector<ParityRecord>> records(clients);
    std::atomic<size_t> errors{0};

    rps_bench::Timer wall;
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        for (size_t r = 0; r < kRequestsPerClient; ++r) {
          size_t qi = (c + r) % queries.size();
          rps::Result<rps::QueryResponse> response =
              server.Execute(queries[qi]);
          if (!response.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          latencies[c].push_back(response->latency_ms);
          records[c].push_back(ParityRecord{qi, response->epoch,
                                            std::move(response->answers)});
        }
      });
    }
    for (std::thread& t : client_threads) t.join();
    double wall_ms = wall.ElapsedMs();
    stop_ingest.store(true, std::memory_order_release);
    ingester.join();
    server.Stop();

    // Parity oracle: for each distinct (query, epoch) served, rebuild
    // the first `epoch` triples into a fresh single-threaded graph and
    // evaluate serially — answers must be byte-identical.
    std::map<std::pair<size_t, size_t>, const std::vector<rps::Tuple>*>
        distinct;
    size_t completed = 0;
    size_t epoch_lo = graph.size(), epoch_hi = 0;
    std::vector<double> all_latencies;
    for (size_t c = 0; c < clients; ++c) {
      completed += records[c].size();
      all_latencies.insert(all_latencies.end(), latencies[c].begin(),
                           latencies[c].end());
      for (const ParityRecord& rec : records[c]) {
        epoch_lo = std::min(epoch_lo, rec.epoch);
        epoch_hi = std::max(epoch_hi, rec.epoch);
        distinct.emplace(std::make_pair(rec.query_index, rec.epoch),
                         &rec.answers);
      }
    }
    size_t checked = 0;
    for (const auto& [key, answers] : distinct) {
      if (checked >= 48) break;  // bound oracle cost; coverage is random
      ++checked;
      ++parity_checked;
      const auto& [qi, epoch] = key;
      rps::Graph prefix(sys->dict());
      prefix.Reserve(epoch);
      for (size_t i = 0; i < epoch; ++i) {
        prefix.InsertUnchecked(graph.triples()[i]);
      }
      std::vector<rps::Tuple> expected = rps::EvalQuery(
          prefix, queries[qi], rps::QuerySemantics::kDropBlanks);
      rps::SortTuples(&expected);
      if (expected != *answers) {
        std::fprintf(stderr,
                     "PARITY FAILURE: query %zu at epoch %zu: served %zu "
                     "row(s), serial oracle %zu row(s)\n",
                     qi, epoch, answers->size(), expected.size());
        ++parity_failures;
      }
    }

    double qps = wall_ms > 0.0 ? 1000.0 * completed / wall_ms : 0.0;
    std::printf("%-9zu %-9zu %-9zu %-10.1f %-10.2f %-10.2f %zu..%zu\n",
                workers, clients, completed, qps,
                SampleQuantile(all_latencies, 0.50),
                SampleQuantile(all_latencies, 0.99), epoch_lo, epoch_hi);
    if (errors.load() != 0) {
      std::fprintf(stderr, "%zu request(s) failed\n", errors.load());
      return 1;
    }
  }

  std::printf(
      "\nEvery row served under live ingest; %zu distinct (query, epoch) "
      "answers re-checked against the serial prefix oracle (%zu failure(s)).\n",
      parity_checked, parity_failures);
  rps_bench::PrintMetricsJson("concurrent_serving", before);
  if (parity_failures != 0) {
    std::fprintf(stderr, "%zu parity failure(s)\n", parity_failures);
    return 1;
  }
  return 0;
}
