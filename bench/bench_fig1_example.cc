// E1 — Figure 1 / Example 1: the three-source film/person graph, and the
// demonstration that plain SPARQL evaluation over the raw sources returns
// the empty result (sameAs and mappings are invisible to it).

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

int main(int argc, char** argv) {
  rps_bench::PrintHeader(
      "E1  Figure 1 + Example 1 — raw-source evaluation",
      "\"This query returns an empty result on the data of Figure 1\"");
  rps::EvalOptions eval_options;
  eval_options.threads = rps_bench::ThreadsFromArgs(argc, argv);

  rps::PaperExample ex = rps::BuildPaperExample();
  rps::Graph stored = ex.system->StoredDatabase();

  std::printf("source          triples\n");
  for (const auto& [name, graph] : ex.system->dataset().graphs()) {
    std::printf("%-15s %zu\n", name.c_str(), graph.size());
  }
  std::printf("merged D        %zu\n\n", stored.size());

  rps_bench::Timer timer;
  std::vector<rps::Tuple> raw = rps::EvalQuery(
      stored, ex.query, rps::QuerySemantics::kDropBlanks, eval_options);
  double eval_ms = timer.ElapsedMs();

  std::printf("query: %s\n",
              rps::ToString(ex.query, *ex.system->dict(),
                            *ex.system->vars())
                  .c_str());
  std::printf("rows over raw sources : %zu   (paper: 0)   [%s]\n",
              raw.size(), raw.empty() ? "MATCH" : "MISMATCH");
  std::printf("evaluation time       : %.3f ms\n", eval_ms);

  // Round-trip check: the Figure 1 data survives N-Triples serialization.
  std::string text = rps::WriteNTriples(stored);
  rps::Dictionary dict2;
  rps::Graph reparsed(&dict2);
  rps::Result<size_t> n = rps::ParseNTriples(text, &reparsed);
  std::printf("N-Triples round trip  : %s (%zu triples)\n",
              n.ok() && reparsed.size() == stored.size() ? "ok" : "FAILED",
              reparsed.size());
  rps_bench::PrintMetricsJson("fig1_example");
  return 0;
}
