// E6 — Proposition 2: for linear / sticky mapping sets a perfect
// FO (UCQ) rewriting exists. We verify perfectness against the chase
// (identical certain answers) on chain systems and the paper example, and
// measure rewriting size/time as the mapping chain grows, with and
// without subsumption minimization (DESIGN.md §5.4 ablation).

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

int main(int argc, char** argv) {
  rps_bench::PrintHeader(
      "E6  Proposition 2 — perfect UCQ rewriting for linear/sticky G",
      "\"we can generate a FO-query q^P such that q^P(D) = q(J)\"");
  size_t threads = rps_bench::ThreadsFromArgs(argc, argv);
  rps::CertainAnswerOptions ca_options;
  ca_options.chase.threads = threads;
  ca_options.chase.eval.threads = threads;

  std::printf("Perfectness check (rewriting answers == chase answers):\n");
  std::printf("%-28s %-10s %-10s %-10s\n", "system", "complete", "equal",
              "branches");
  bool all_equal = true;
  {
    rps::PaperExample ex = rps::BuildPaperExample();
    rps::Result<rps::CertainAnswerResult> chase =
        rps::CertainAnswers(*ex.system, ex.query, ca_options);
    rps::Result<rps::RewriteAnswers> rewritten =
        rps::CertainAnswersViaRewriting(*ex.system, ex.query);
    if (!chase.ok() || !rewritten.ok()) return 1;
    bool equal = chase->answers == rewritten->answers;
    all_equal = all_equal && equal && rewritten->stats.complete;
    std::printf("%-28s %-10s %-10s %-10zu\n", "paper example (linear G)",
                rewritten->stats.complete ? "yes" : "no",
                equal ? "yes" : "NO", rewritten->stats.ucq.size());
  }
  for (size_t peers : {2u, 4u, 6u, 8u}) {
    std::unique_ptr<rps::RpsSystem> sys =
        rps::GenerateChainRps(peers, 10, 31);
    rps::GraphPatternQuery q = rps::ChainQuery(sys.get(), peers);
    rps::Result<rps::CertainAnswerResult> chase =
        rps::CertainAnswers(*sys, q, ca_options);
    rps::Result<rps::RewriteAnswers> rewritten =
        rps::CertainAnswersViaRewriting(*sys, q);
    if (!chase.ok() || !rewritten.ok()) return 1;
    bool equal = chase->answers == rewritten->answers;
    all_equal = all_equal && equal && rewritten->stats.complete;
    std::printf("chain(%zu peers)%-13s %-10s %-10s %-10zu\n", peers, "",
                rewritten->stats.complete ? "yes" : "no",
                equal ? "yes" : "NO", rewritten->stats.ucq.size());
  }
  std::printf("=> [%s]\n\n", all_equal ? "MATCH" : "MISMATCH");

  std::printf(
      "Rewriting cost vs chain length (query over the last dialect):\n");
  std::printf("%-8s %-14s %-14s %-12s %-12s\n", "peers", "ucq(minimized)",
              "ucq(raw)", "time_min_ms", "time_raw_ms");
  for (size_t peers : {2u, 4u, 8u, 16u, 32u}) {
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateChainRps(peers, 2, 32);
    rps::GraphPatternQuery q = rps::ChainQuery(sys.get(), peers);

    rps::RpsRewriteOptions minimized;
    minimized.rewrite.minimize = true;
    rps_bench::Timer t1;
    rps::Result<rps::RpsRewriteResult> r1 =
        rps::RewriteGraphQuery(*sys, q, minimized);
    double ms1 = t1.ElapsedMs();

    rps::RpsRewriteOptions raw;
    raw.rewrite.minimize = false;
    rps_bench::Timer t2;
    rps::Result<rps::RpsRewriteResult> r2 =
        rps::RewriteGraphQuery(*sys, q, raw);
    double ms2 = t2.ElapsedMs();
    if (!r1.ok() || !r2.ok()) return 1;

    std::printf("%-8zu %-14zu %-14zu %-12.2f %-12.2f\n", peers,
                r1->ucq.size(), r2->ucq.size(), ms1, ms2);
  }

  std::printf(
      "\nRewriting cost vs query size (k-pattern query over a 4-peer "
      "chain):\n");
  std::printf("%-8s %-10s %-12s %-12s\n", "k", "branches", "time_ms",
              "complete");
  for (size_t k : {1u, 2u, 3u, 4u}) {
    const size_t kPeers = 4;
    std::unique_ptr<rps::RpsSystem> sys =
        rps::GenerateChainRps(kPeers, 4, 33);
    // Build a k-pattern path query in the last peer's dialect:
    //   q(x0, xk) <- (x0 p x1), (x1 p x2), ...
    rps::Dictionary* dict = sys->dict();
    rps::VarPool* vars = sys->vars();
    rps::TermId prop = dict->InternIri(
        "http://peer" + std::to_string(kPeers - 1) + ".example.org/p");
    rps::GraphPatternQuery q;
    std::vector<rps::VarId> xs;
    for (size_t i = 0; i <= k; ++i) {
      xs.push_back(vars->Fresh("qx"));
    }
    q.head = {xs[0], xs[k]};
    for (size_t i = 0; i < k; ++i) {
      q.body.Add(rps::TriplePattern{rps::PatternTerm::Var(xs[i]),
                                    rps::PatternTerm::Const(prop),
                                    rps::PatternTerm::Var(xs[i + 1])});
    }
    rps_bench::Timer timer;
    rps::Result<rps::RpsRewriteResult> r = rps::RewriteGraphQuery(*sys, q);
    double ms = timer.ElapsedMs();
    if (!r.ok()) return 1;
    std::printf("%-8zu %-10zu %-12.2f %-12s\n", k, r->ucq.size(), ms,
                r->stats.complete ? "yes" : "no");
  }
  rps_bench::PrintMetricsJson("prop2_rewriting");
  return all_equal ? 0 : 1;
}
