// E15 (extension) — epoch-keyed certain-answer caching under churn. The
// same closed-loop client mix runs against a QueryServer twice — answer
// cache off, then on — at increasing ingest churn rates. Cache hits
// skip BGP evaluation entirely while the epoch protocol keeps every
// served answer byte-identical to a fresh evaluation at the same
// snapshot (spot-checked here against the serial prefix oracle).
// Churn is paced by *completed requests*, not wall time, so the
// invalidation pressure — and therefore the hit rates — are
// machine-independent and safe to gate against a committed baseline.
// Measured: QPS and p50/p99 cached vs uncached per churn rate, the
// achieved hit rate, and committed ratio counters
// (bench.answer_cache.*_pct) that scripts/bench_compare.py gates; the
// raw QPS speedup is gated as a capped floor
// (steady.speedup_floor_pct) because the uncapped ratio swings with
// build type and machine load while "at least 4x" does not.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "rps/rps.h"

namespace {

double SampleQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(q * (values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

struct ParityRecord {
  size_t query_index;
  size_t epoch;
  std::vector<rps::Tuple> answers;
};

struct SweepResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_pct = 0.0;
  size_t completed = 0;
  size_t ingested = 0;
};

}  // namespace

int main(int argc, char** argv) {
  size_t n = rps_bench::SizeFromArgs(argc, argv, 8);
  size_t threads = rps_bench::ThreadsFromArgs(argc, argv, 4);

  rps_bench::PrintHeader(
      "E15  epoch-keyed answer caching under ingest churn",
      "repeated queries \"in a dynamic, on-demand fashion\" — cached "
      "certain answers stay byte-identical across epochs via "
      "footprint-based invalidation");

  // Workload floor: the cache's win is eval work saved per hit, so the
  // graph must be big enough that evaluation dominates the fixed
  // per-request serving overhead even at CI smoke sizes (--n=8).
  rps::LodConfig config;
  config.num_peers = 4;
  config.films_per_peer = std::max<size_t>(64, n * 8);
  config.seed = 1501;
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
  rps::Dictionary& dict = *sys->dict();

  rps::Graph universal(sys->dict());
  rps::Result<rps::RpsChaseStats> chase =
      rps::BuildUniversalSolution(*sys, &universal);
  if (!chase.ok()) {
    std::fprintf(stderr, "%s\n", chase.status().ToString().c_str());
    return 1;
  }

  // Query mix: the cross-peer join plus scans over the four most common
  // predicates. Clients round-robin the pool, so every query repeats
  // many times per sweep — the cache's target access pattern.
  std::vector<rps::GraphPatternQuery> queries;
  queries.push_back(rps::LodDemoQuery(sys.get(), config));
  {
    std::set<rps::TermId> predicates;
    for (const rps::Triple& t : universal.triples()) {
      if (predicates.insert(t.p).second && predicates.size() >= 4) break;
    }
    rps::VarPool* vars = sys->vars();
    for (rps::TermId p : predicates) {
      rps::GraphPatternQuery q;
      rps::VarId x = vars->Fresh("ac_x");
      rps::VarId y = vars->Fresh("ac_y");
      q.head = {x, y};
      q.body.Add(rps::TriplePattern{rps::PatternTerm::Var(x),
                                    rps::PatternTerm::Const(p),
                                    rps::PatternTerm::Var(y)});
      queries.push_back(std::move(q));
    }
  }

  // Churn lands on the actor predicate: scans and joins over it keep
  // invalidating, everything else promotes wholesale.
  rps::TermId live_pred = dict.InternIri("http://peer0.example.org/actor");
  const size_t kRequestsPerClient = 64;
  size_t clients = threads;

  std::printf("universal solution: %zu triple(s); %zu queries; %zu "
              "client(s) x %zu request(s)\n\n",
              universal.size(), queries.size(), clients,
              kRequestsPerClient);
  std::printf("%-18s %-8s %-10s %-10s %-10s %-9s %-9s\n", "sweep",
              "cache", "qps", "p50_ms", "p99_ms", "hit_pct", "ingested");

  size_t parity_failures = 0;
  size_t parity_checked = 0;
  rps::obs::MetricsSnapshot before = rps::obs::Registry::Global().Snapshot();

  // requests_per_ingest == 0 disables the ingest feed. Nonzero K means
  // one 4-triple batch lands after every K completed requests, so the
  // number of invalidating deltas per run is fixed by the workload, not
  // by how fast this machine happens to serve it.
  struct Sweep {
    const char* name;
    size_t requests_per_ingest;
  };
  const Sweep sweeps[] = {{"steady", 0}, {"churn_mild", 16},
                          {"churn_heavy", 4}};
  std::map<std::string, std::pair<SweepResult, SweepResult>> results;

  for (const Sweep& sweep : sweeps) {
    for (bool cached : {false, true}) {
      rps::Graph graph = universal;  // identical start per run
      rps::QueryServerOptions server_options;
      server_options.worker_threads = threads;
      server_options.answer_cache.enabled = cached;
      rps::QueryServer server(&graph, server_options);

      std::atomic<bool> stop_ingest{false};
      std::atomic<size_t> ingested{0};
      std::atomic<size_t> completed_requests{0};
      std::thread ingester;
      if (sweep.requests_per_ingest != 0) {
        ingester = std::thread([&] {
          size_t i = 0;
          size_t next_at = sweep.requests_per_ingest;
          while (!stop_ingest.load(std::memory_order_acquire)) {
            if (completed_requests.load(std::memory_order_acquire) <
                next_at) {
              std::this_thread::yield();
              continue;
            }
            next_at += sweep.requests_per_ingest;
            std::vector<rps::Triple> batch;
            batch.reserve(4);
            for (size_t j = 0; j < 4; ++j, ++i) {
              batch.push_back(rps::Triple{
                  dict.InternIri("http://peer0.example.org/churn" +
                                 std::string(cached ? "c" : "u") +
                                 std::to_string(sweep.requests_per_ingest) +
                                 "/film" + std::to_string(i)),
                  live_pred,
                  dict.InternIri("http://peer0.example.org/churn" +
                                 std::string(cached ? "c" : "u") +
                                 std::to_string(sweep.requests_per_ingest) +
                                 "/person" + std::to_string(i))});
            }
            ingested.fetch_add(server.Ingest(batch),
                               std::memory_order_relaxed);
          }
        });
      }

      std::vector<std::vector<double>> latencies(clients);
      std::vector<std::vector<ParityRecord>> records(clients);
      std::atomic<size_t> errors{0};

      rps_bench::Timer wall;
      std::vector<std::thread> client_threads;
      client_threads.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        client_threads.emplace_back([&, c] {
          for (size_t r = 0; r < kRequestsPerClient; ++r) {
            size_t qi = (c + r) % queries.size();
            rps::Result<rps::QueryResponse> response =
                server.Execute(queries[qi]);
            if (!response.ok()) {
              errors.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            latencies[c].push_back(response->latency_ms);
            completed_requests.fetch_add(1, std::memory_order_release);
            if (cached && records[c].size() < 8) {
              records[c].push_back(ParityRecord{
                  qi, response->epoch, std::move(response->answers)});
            }
          }
        });
      }
      for (std::thread& t : client_threads) t.join();
      double wall_ms = wall.ElapsedMs();
      stop_ingest.store(true, std::memory_order_release);
      if (ingester.joinable()) ingester.join();
      server.Stop();
      if (errors.load() != 0) {
        std::fprintf(stderr, "%zu request(s) failed\n", errors.load());
        return 1;
      }

      // Parity oracle over a sample of the cached responses.
      for (size_t c = 0; c < clients; ++c) {
        for (const ParityRecord& rec : records[c]) {
          ++parity_checked;
          rps::Graph prefix(sys->dict());
          prefix.Reserve(rec.epoch);
          for (size_t i = 0; i < rec.epoch; ++i) {
            prefix.InsertUnchecked(graph.triples()[i]);
          }
          std::vector<rps::Tuple> expected = rps::EvalQuery(
              prefix, queries[rec.query_index],
              rps::QuerySemantics::kDropBlanks);
          rps::SortTuples(&expected);
          if (expected != rec.answers) {
            std::fprintf(stderr,
                         "PARITY FAILURE: query %zu at epoch %zu\n",
                         rec.query_index, rec.epoch);
            ++parity_failures;
          }
        }
      }

      SweepResult r;
      std::vector<double> all;
      for (const auto& per_client : latencies) {
        r.completed += per_client.size();
        all.insert(all.end(), per_client.begin(), per_client.end());
      }
      r.qps = wall_ms > 0.0 ? 1000.0 * r.completed / wall_ms : 0.0;
      r.p50_ms = SampleQuantile(all, 0.50);
      r.p99_ms = SampleQuantile(all, 0.99);
      r.ingested = ingested.load();
      rps::AnswerCacheStats stats = server.CacheStats();
      uint64_t looked_up = stats.hits + stats.misses;
      r.hit_pct = looked_up != 0 ? 100.0 * stats.hits / looked_up : 0.0;

      std::printf("%-18s %-8s %-10.1f %-10.3f %-10.3f %-9.1f %-9zu\n",
                  sweep.name, cached ? "on" : "off", r.qps, r.p50_ms,
                  r.p99_ms, r.hit_pct, r.ingested);
      if (cached) {
        results[sweep.name].second = r;
      } else {
        results[sweep.name].first = r;
      }
    }
  }

  // Committed ratio counters — scripts/bench_compare.py treats *_pct
  // counters as ratios and fails the gate when they regress by more
  // than 25% against the checked-in baseline. Hit rates are gated per
  // sweep (deterministic thanks to the request-paced churn); the raw
  // QPS speedup swings 2-3x with build type and machine load, so only
  // its floor is gated: min(speedup, 400) stays pinned at 400 while
  // the cache delivers at least ~4x and collapses the moment it stops
  // paying for itself.
  auto ratio_pct = [](double cached, double uncached) {
    return uncached > 0.0
               ? static_cast<uint64_t>(100.0 * cached / uncached + 0.5)
               : 0;
  };
  uint64_t steady_speedup_pct = 0;
  std::printf("\n%-18s %-12s %-12s %-12s\n", "sweep", "speedup_pct",
              "p99_ratio", "hit_pct");
  for (const Sweep& sweep : sweeps) {
    const SweepResult& off = results[sweep.name].first;
    const SweepResult& on = results[sweep.name].second;
    uint64_t speedup_pct = ratio_pct(on.qps, off.qps);
    std::printf("%-18s %-12zu %-12.2f %-12.1f\n", sweep.name,
                static_cast<size_t>(speedup_pct),
                on.p99_ms > 0.0 ? off.p99_ms / on.p99_ms : 0.0,
                on.hit_pct);
    std::string base = std::string("bench.answer_cache.") + sweep.name;
    rps::obs::Registry::Global()
        .counter(base + ".hit_pct")
        ->Add(static_cast<uint64_t>(on.hit_pct + 0.5));
    if (std::string(sweep.name) == "steady") {
      steady_speedup_pct = speedup_pct;
      rps::obs::Registry::Global()
          .counter(base + ".speedup_floor_pct")
          ->Add(std::min<uint64_t>(speedup_pct, 400));
    }
  }
  std::printf(
      "(speedup_pct: cached QPS as a percentage of uncached QPS at the "
      "same churn; 200 = 2x. Hits skip evaluation; invalidation keeps "
      "them sound.)\n");
  std::printf(
      "\n%zu cached answer(s) re-checked against the serial prefix "
      "oracle (%zu failure(s)).\n",
      parity_checked, parity_failures);

  rps_bench::PrintMetricsJson("answer_cache", before);
  if (parity_failures != 0) return 1;
  // The headline claim, enforced: steady-state cached serving must be
  // at least 2x the uncached QPS. Measured 8-18x, so tripping this
  // means the cache path genuinely broke, not that the machine was
  // busy.
  if (steady_speedup_pct < 200) {
    std::fprintf(stderr,
                 "FAIL: steady cached/uncached QPS %zu%% < 200%%\n",
                 static_cast<size_t>(steady_speedup_pct));
    return 1;
  }
  return 0;
}
