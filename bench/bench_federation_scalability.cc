// E9 — §5 item 4: scalability of the prototype's federated query
// processing. A query in peer 0's dialect is rewritten and executed over
// N simulated peers: we report sub-queries, messages, bytes and simulated
// latency as N grows, ablate the mapping/network topology, and compare
// against the ship-everything centralized baseline.

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

int main(int argc, char** argv) {
  rps_bench::PrintHeader(
      "E9  federated query processing scalability (§5 prototype, simulated)",
      "\"sub-queries are posed to the relevant RDF sources and sub-query "
      "results are joined\"");
  // `--threads=N` fans per-peer sub-queries out concurrently.
  rps::FederationOptions fed_options;
  fed_options.threads = rps_bench::ThreadsFromArgs(argc, argv);

  std::printf("Sweep 1: peer count (chain topology, 30 films/peer)\n");
  std::printf("%-7s %-9s %-9s %-10s %-10s %-11s %-12s %-10s\n", "peers",
              "answers", "branches", "subqueries", "messages", "KB",
              "latency_ms", "==chase");
  for (size_t peers : {2u, 4u, 8u, 12u, 16u}) {
    rps::LodConfig config;
    config.num_peers = peers;
    config.films_per_peer = 30;
    config.seed = 51;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    rps::GraphPatternQuery q = rps::LodDemoQuery(sys.get(), config);

    rps::Federator fed(sys.get(), rps::LodTopology(config));
    rps::Result<rps::FederatedQueryResult> r = fed.Execute(q, fed_options);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    // Ground truth only for small systems (keeps the harness fast).
    const char* equal = "-";
    if (peers <= 8) {
      rps::Result<rps::CertainAnswerResult> chase =
          rps::CertainAnswers(*sys, q);
      if (!chase.ok()) return 1;
      equal = (r->answers == chase->answers) ? "yes" : "NO";
    }
    std::printf("%-7zu %-9zu %-9zu %-10zu %-10zu %-11.1f %-12.2f %-10s\n",
                peers, r->answers.size(), r->branches, r->subqueries,
                r->network.messages,
                static_cast<double>(r->network.bytes) / 1024.0,
                r->network.latency_ms, equal);
  }

  std::printf("\nSweep 2: topology ablation (8 peers, 30 films/peer)\n");
  std::printf("%-10s %-9s %-10s %-10s %-11s %-12s\n", "topology", "answers",
              "subqueries", "messages", "KB", "latency_ms");
  for (auto kind : {rps::LodConfig::MappingTopology::kChain,
                    rps::LodConfig::MappingTopology::kStar,
                    rps::LodConfig::MappingTopology::kRing,
                    rps::LodConfig::MappingTopology::kRandom}) {
    rps::LodConfig config;
    config.num_peers = 8;
    config.films_per_peer = 30;
    config.topology = kind;
    config.seed = 52;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    rps::GraphPatternQuery q = rps::LodDemoQuery(sys.get(), config);
    rps::Topology topo = rps::LodTopology(config);
    rps::Federator fed(sys.get(), topo);
    rps::Result<rps::FederatedQueryResult> r = fed.Execute(q, fed_options);
    if (!r.ok()) return 1;
    std::printf("%-10s %-9zu %-10zu %-10zu %-11.1f %-12.2f\n",
                topo.Describe().c_str(), r->answers.size(), r->subqueries,
                r->network.messages,
                static_cast<double>(r->network.bytes) / 1024.0,
                r->network.latency_ms);
  }

  std::printf(
      "\nSweep 2b: join strategy ablation (§5: \"efficiency of the join "
      "operations\") — selective 2-pattern query, 6 peers\n");
  std::printf("%-18s %-9s %-10s %-11s %-12s\n", "strategy", "answers",
              "messages", "KB", "latency_ms");
  {
    rps::LodConfig config;
    config.num_peers = 6;
    config.films_per_peer = 80;
    config.single_triple_dialect = false;
    config.seed = 54;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    rps::Dictionary* dict = sys->dict();
    rps::VarPool* vars = sys->vars();
    rps::GraphPatternQuery q;
    rps::VarId x = vars->Intern("j_x"), z = vars->Intern("j_z");
    q.head = {x};
    q.body.Add(rps::TriplePattern{
        rps::PatternTerm::Const(
            dict->InternIri("http://peer1.example.org/film5")),
        rps::PatternTerm::Const(
            dict->InternIri("http://peer1.example.org/starring")),
        rps::PatternTerm::Var(z)});
    q.body.Add(rps::TriplePattern{
        rps::PatternTerm::Var(z),
        rps::PatternTerm::Const(
            dict->InternIri("http://peer1.example.org/artist")),
        rps::PatternTerm::Var(x)});

    rps::Federator fed(sys.get(), rps::LodTopology(config));
    for (auto strategy : {rps::JoinStrategy::kShipExtensions,
                          rps::JoinStrategy::kBindJoin}) {
      rps::FederationOptions opts = fed_options;
      opts.join_strategy = strategy;
      rps::Result<rps::FederatedQueryResult> r = fed.Execute(q, opts);
      if (!r.ok()) return 1;
      std::printf("%-18s %-9zu %-10zu %-11.1f %-12.2f\n",
                  strategy == rps::JoinStrategy::kBindJoin
                      ? "bind-join"
                      : "ship-extensions",
                  r->answers.size(), r->network.messages,
                  static_cast<double>(r->network.bytes) / 1024.0,
                  r->network.latency_ms);
    }
  }

  std::printf(
      "\nSweep 3: federated vs centralized baseline (selective query, "
      "8 peers)\n");
  std::printf("%-14s %-9s %-10s %-11s %-12s\n", "strategy", "answers",
              "messages", "KB", "latency_ms");
  {
    rps::LodConfig config;
    config.num_peers = 8;
    config.films_per_peer = 60;
    config.single_triple_dialect = true;
    config.seed = 53;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    // Selective: one specific film.
    rps::Dictionary* dict = sys->dict();
    rps::VarPool* vars = sys->vars();
    rps::GraphPatternQuery q;
    rps::VarId x = vars->Intern("sx");
    q.head = {x};
    q.body.Add(rps::TriplePattern{
        rps::PatternTerm::Const(
            dict->InternIri("http://peer0.example.org/film3")),
        rps::PatternTerm::Const(
            dict->InternIri("http://peer0.example.org/actor")),
        rps::PatternTerm::Var(x)});

    rps::Federator fed(sys.get(), rps::LodTopology(config));
    rps::Result<rps::FederatedQueryResult> distributed =
        fed.Execute(q, fed_options);
    rps::Result<rps::FederatedQueryResult> centralized =
        fed.ExecuteCentralized(q, fed_options);
    if (!distributed.ok() || !centralized.ok()) return 1;
    std::printf("%-14s %-9zu %-10zu %-11.1f %-12.2f\n", "federated",
                distributed->answers.size(), distributed->network.messages,
                static_cast<double>(distributed->network.bytes) / 1024.0,
                distributed->network.latency_ms);
    std::printf("%-14s %-9zu %-10zu %-11.1f %-12.2f\n", "centralized",
                centralized->answers.size(), centralized->network.messages,
                static_cast<double>(centralized->network.bytes) / 1024.0,
                centralized->network.latency_ms);
    std::printf("answers equal: %s\n",
                distributed->answers == centralized->answers ? "yes" : "NO");
  }
  rps_bench::PrintMetricsJson("federation_scalability");
  return 0;
}
