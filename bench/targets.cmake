# One benchmark binary per bench/bench_*.cc file. Included from the
# top-level CMakeLists (not add_subdirectory) so that build/bench/
# contains ONLY the benchmark executables — the experiment runner
# iterates `for b in build/bench/*`.
file(GLOB RPS_BENCH_SOURCES CONFIGURE_DEPENDS
     ${CMAKE_SOURCE_DIR}/bench/bench_*.cc)

foreach(bench_src ${RPS_BENCH_SOURCES})
  get_filename_component(bench_name ${bench_src} NAME_WE)
  add_executable(${bench_name} ${bench_src})
  target_link_libraries(${bench_name} PRIVATE rps benchmark::benchmark)
  set_target_properties(${bench_name} PROPERTIES
                        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
