// Persistence bench: on-disk snapshots (src/storage/) vs N-Triples
// re-parse, plus mapped-read Match throughput.
//
// Three claims are measured on one synthetic LOD-ish graph:
//  1. Cold start: LoadGraph (mmap attach) vs re-parsing the equivalent
//     N-Triples document — the restart path of a crashed peer. The
//     acceptance bar is >= 5x.
//  2. Footprint: snapshot bytes on disk vs the graph's in-memory index
//     footprint and vs the N-Triples text.
//  3. Serving: 2-bound Match throughput straight off the mapping vs the
//     fully in-memory graph (the recovered peer answers sub-queries
//     without ever materializing its triples).
//
//   --n=N   scale knob: the graph holds N*500 triples (default 40 ->
//           20k triples); CI smoke passes --n=4.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rps/rps.h"
#include "storage/storage.h"

namespace {

using rps::Dictionary;
using rps::Graph;
using rps::TermId;
using rps::Triple;

// Removes the snapshot file and its directory on scope exit.
struct ScratchDir {
  std::string path;
  explicit ScratchDir(const char* stem) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s.XXXXXX", stem);
    path = mkdtemp(buf) != nullptr ? buf : ".";
  }
  ~ScratchDir() {
    ::unlink((path + "/g.rps").c_str());
    ::rmdir(path.c_str());
  }
};

}  // namespace

int main(int argc, char** argv) {
  size_t n_knob = rps_bench::SizeFromArgs(argc, argv, 40);
  const size_t n_triples = n_knob * 500;
  const size_t n_probes = std::min<size_t>(4000, n_triples);

  rps_bench::PrintHeader(
      "bench_persistence — mmap snapshots vs N-Triples re-parse",
      "long-lived autonomous peers must restart from disk, not re-parse "
      "and re-chase (ROADMAP item 3)");

  rps::obs::MetricsSnapshot before = rps::obs::Registry::Global().Snapshot();

  // Same LOD-ish shape as bench_index_scan: few predicates, hub-skewed
  // subjects/objects, with a literal object sprinkled in so the dictionary
  // section carries every term kind.
  Dictionary dict;
  rps::Rng rng(20260809);
  Graph graph(&dict);
  const size_t n_subjects = std::max<size_t>(8, n_triples / 10);
  const size_t n_predicates = 16;
  const size_t n_objects = std::max<size_t>(8, n_triples / 8);
  std::vector<TermId> subjects, predicates, objects;
  for (size_t i = 0; i < n_subjects; ++i) {
    subjects.push_back(dict.InternIri("http://b/s" + std::to_string(i)));
  }
  for (size_t i = 0; i < n_predicates; ++i) {
    predicates.push_back(dict.InternIri("http://b/p" + std::to_string(i)));
  }
  for (size_t i = 0; i < n_objects; ++i) {
    objects.push_back(
        i % 8 == 0
            ? dict.Intern(rps::Term::Literal("v" + std::to_string(i)))
            : dict.InternIri("http://b/o" + std::to_string(i)));
  }
  while (graph.size() < n_triples) {
    size_t pi = std::min(rng.Index(n_predicates), rng.Index(n_predicates));
    TermId subj = rng.Chance(0.25) ? subjects[rng.Index(8)]
                                   : subjects[rng.Index(n_subjects)];
    TermId obj = rng.Chance(0.25) ? objects[rng.Index(8)]
                                  : objects[rng.Index(n_objects)];
    graph.InsertUnchecked(Triple{subj, predicates[pi], obj});
  }

  const std::string text = rps::WriteNTriples(graph);

  ScratchDir scratch("rps_bench_persistence");
  const std::string snap_path = scratch.path + "/g.rps";

  // ---- Save (the delta fold) -----------------------------------------
  rps_bench::Timer t_save;
  rps::Status save = rps::storage::SaveGraph(snap_path, graph);
  double save_ms = t_save.ElapsedMs();
  if (!save.ok()) {
    std::fprintf(stderr, "save: %s\n", save.ToString().c_str());
    return 1;
  }

  // ---- Cold start: mmap load vs N-Triples re-parse -------------------
  // Both sides start from a fresh dictionary, as a restarting peer
  // process would. Best of three so first-touch noise doesn't pollute
  // the committed ratio.
  double parse_ms = 1e300;
  double load_ms = 1e300;
  size_t parsed_n = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Dictionary d2;
    Graph g2(&d2);
    rps_bench::Timer t0;
    rps::Result<size_t> parsed = rps::ParseNTriples(text, &g2);
    parse_ms = std::min(parse_ms, t0.ElapsedMs());
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    parsed_n = *parsed;

    Dictionary d3;
    Graph g3(&d3);
    rps_bench::Timer t1;
    rps::Result<rps::storage::LoadReport> r =
        rps::storage::LoadGraph(snap_path, &g3);
    load_ms = std::min(load_ms, t1.ElapsedMs());
    if (!r.ok()) {
      std::fprintf(stderr, "load: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  // The kept instance the serving sweeps below run against.
  Dictionary load_dict;
  Graph loaded(&load_dict);
  rps::Result<rps::storage::LoadReport> kept =
      rps::storage::LoadGraph(snap_path, &loaded);
  if (!kept.ok()) {
    std::fprintf(stderr, "load: %s\n", kept.status().ToString().c_str());
    return 1;
  }
  rps::storage::LoadReport report = *kept;
  double speedup = parse_ms / std::max(load_ms, 1e-9);
  std::printf("cold start (%zu triples): reparse %.3f ms, mmap load %.3f ms "
              "-> %.1fx%s\n",
              n_triples, parse_ms, load_ms, speedup,
              report.mapped ? "  [mapped]" : "  [MATERIALIZED]");
  if (!report.mapped || parsed_n != loaded.size()) return 1;

  // ---- Footprint -----------------------------------------------------
  // In-memory index footprint per triple: the insertion-order vector
  // (12 B), three posting-list entries (3*4 B), three permutation-run
  // entries (3*12 B), plus the dictionary's lexical bytes.
  size_t dict_bytes = 0;
  for (TermId id = 0; id < static_cast<TermId>(load_dict.size()); ++id) {
    dict_bytes += load_dict.term(id).lexical().size();
  }
  size_t mem_bytes = n_triples * (12 + 3 * 4 + 3 * 12) + dict_bytes;
  std::printf("footprint: %zu B on disk, ~%zu B in memory (%.2fx), "
              "%zu B as N-Triples (%.2fx)\n",
              static_cast<size_t>(report.bytes_on_disk), mem_bytes,
              static_cast<double>(mem_bytes) /
                  static_cast<double>(report.bytes_on_disk),
              text.size(),
              static_cast<double>(text.size()) /
                  static_cast<double>(report.bytes_on_disk));

  // ---- Mapped-read Match throughput ----------------------------------
  // 2-bound (s p ?) probes — the chase/evaluation hot shape — answered
  // straight off the on-disk runs vs the in-memory indexes. Row counts
  // must agree exactly (round-trip parity).
  std::vector<Triple> probes;
  rps::Rng probe_rng(977);
  for (size_t i = 0; i < n_probes; ++i) {
    probes.push_back(graph.triples()[probe_rng.Index(graph.size())]);
  }
  double mem_ms = 1e300;
  double map_ms = 1e300;
  size_t rows_mem = 0;
  size_t rows_map = 0;
  for (int rep = 0; rep < 3; ++rep) {
    rows_mem = 0;
    rps_bench::Timer t0;
    for (const Triple& q : probes) {
      graph.Match(q.s, q.p, std::nullopt, [&](const Triple&) {
        ++rows_mem;
        return true;
      });
    }
    mem_ms = std::min(mem_ms, t0.ElapsedMs());
    rows_map = 0;
    rps_bench::Timer t1;
    for (const Triple& q : probes) {
      loaded.Match(q.s, q.p, std::nullopt, [&](const Triple&) {
        ++rows_map;
        return true;
      });
    }
    map_ms = std::min(map_ms, t1.ElapsedMs());
  }
  double mapped_pct = 100.0 * mem_ms / std::max(map_ms, 1e-9);
  std::printf("(s p ?) x %zu probes: in-memory %.3f ms, mapped %.3f ms "
              "(%.0f%% of in-memory speed), %zu rows%s\n",
              n_probes, mem_ms, map_ms, mapped_pct, rows_map,
              rows_map == rows_mem ? "" : "  [MISMATCH]");
  if (rows_map != rows_mem) return 1;

  // Committed-baseline counters. The `_x`/`_pct` ratios are the
  // regression-gated keys (scripts/bench_compare.py): higher is better.
  auto& reg = rps::obs::Registry::Global();
  reg.counter("bench.persistence.load_speedup_x")
      ->Add(static_cast<uint64_t>(speedup));
  reg.counter("bench.persistence.mapped_match_pct")
      ->Add(static_cast<uint64_t>(mapped_pct));
  reg.counter("bench.persistence.save_us")
      ->Add(static_cast<uint64_t>(save_ms * 1000.0));
  reg.counter("bench.persistence.load_us")
      ->Add(static_cast<uint64_t>(load_ms * 1000.0));
  reg.counter("bench.persistence.reparse_us")
      ->Add(static_cast<uint64_t>(parse_ms * 1000.0));
  reg.counter("bench.persistence.disk_bytes")->Add(report.bytes_on_disk);

  rps_bench::PrintMetricsJson("persistence", before);
  return speedup >= 5.0 ? 0 : 1;
}
