// E7 — Proposition 3: the RPS mapping language is not FO-rewritable in
// general. The transitive-closure mapping is the paper's witness: the
// bounded UCQ rewriting grows without converging (and any fixed bound
// misses certain answers on long chains), while the chase answers exactly
// in polynomial time.

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

int main(int argc, char** argv) {
  rps_bench::PrintHeader(
      "E7  Proposition 3 — no FO rewriting for general RPS mappings",
      "\"the sets of TGDs corresponding to the mapping assertions of RPSs "
      "are not FO-rewritable\"");
  size_t threads = rps_bench::ThreadsFromArgs(argc, argv);
  rps::CertainAnswerOptions ca_options;
  ca_options.chase.threads = threads;
  ca_options.chase.eval.threads = threads;

  std::printf("UCQ growth under increasing budgets (chain of 6 A-edges):\n");
  std::printf("%-12s %-12s %-12s %-12s\n", "budget", "branches", "explored",
              "complete");
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateTransitiveClosureSystem(6);
  rps::GraphPatternQuery q = rps::TransitiveQuery(sys.get());
  bool never_complete = true;
  for (size_t budget : {32u, 128u, 512u, 2048u}) {
    rps::RpsRewriteOptions options;
    options.rewrite.max_queries = budget;
    options.rewrite.minimize = false;
    rps_bench::Timer timer;
    rps::Result<rps::RpsRewriteResult> r =
        rps::RewriteGraphQuery(*sys, q, options);
    if (!r.ok()) return 1;
    never_complete = never_complete && !r->stats.complete;
    std::printf("%-12zu %-12zu %-12zu %-12s (%.1f ms)\n", budget,
                r->ucq.size(), r->stats.generated,
                r->stats.complete ? "yes" : "no", timer.ElapsedMs());
  }
  std::printf("=> rewriting never converges: [%s]\n\n",
              never_complete ? "MATCH" : "MISMATCH");

  std::printf(
      "Recall of bounded rewritings vs the chase (chain length 14):\n");
  std::printf("%-12s %-16s %-16s %-10s\n", "budget", "rewrite answers",
              "chase answers", "recall");
  std::unique_ptr<rps::RpsSystem> big =
      rps::GenerateTransitiveClosureSystem(14);
  rps::GraphPatternQuery bq = rps::TransitiveQuery(big.get());
  rps::Result<rps::CertainAnswerResult> chase =
      rps::CertainAnswers(*big, bq, ca_options);
  if (!chase.ok()) return 1;
  bool monotone_and_partial = true;
  size_t prev = 0;
  for (size_t budget : {8u, 32u, 128u, 512u}) {
    rps::RpsRewriteOptions options;
    options.rewrite.max_queries = budget;
    rps::Result<rps::RewriteAnswers> bounded =
        rps::CertainAnswersViaRewriting(*big, bq, options);
    if (!bounded.ok()) return 1;
    double recall = static_cast<double>(bounded->answers.size()) /
                    static_cast<double>(chase->answers.size());
    monotone_and_partial = monotone_and_partial &&
                           bounded->answers.size() >= prev &&
                           bounded->answers.size() < chase->answers.size();
    prev = bounded->answers.size();
    std::printf("%-12zu %-16zu %-16zu %-10.2f\n", budget,
                bounded->answers.size(), chase->answers.size(), recall);
  }
  std::printf("=> every fixed bound misses answers: [%s]\n\n",
              monotone_and_partial ? "MATCH" : "MISMATCH");

  std::printf("Chase stays polynomial on the same mapping:\n");
  std::printf("%-10s %-12s %-14s %-12s\n", "chain n", "answers",
              "expected n(n+1)/2", "chase_ms");
  bool chase_exact = true;
  for (size_t n : {8u, 16u, 32u, 64u}) {
    std::unique_ptr<rps::RpsSystem> s = rps::GenerateTransitiveClosureSystem(n);
    rps::GraphPatternQuery tq = rps::TransitiveQuery(s.get());
    rps_bench::Timer timer;
    rps::Result<rps::CertainAnswerResult> r =
        rps::CertainAnswers(*s, tq, ca_options);
    double ms = timer.ElapsedMs();
    if (!r.ok()) return 1;
    size_t expected = n * (n + 1) / 2;
    chase_exact = chase_exact && r->answers.size() == expected;
    std::printf("%-10zu %-12zu %-14zu %-12.2f\n", n, r->answers.size(),
                expected, ms);
  }
  std::printf("=> chase computes the exact closure: [%s]\n",
              chase_exact ? "MATCH" : "MISMATCH");
  rps_bench::PrintMetricsJson("prop3_non_fo");
  return (never_complete && monotone_and_partial && chase_exact) ? 0 : 1;
}
