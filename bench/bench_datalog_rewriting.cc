// E11 (extension) — §5 item 1 implemented: Datalog as the "more
// expressive than FO" rewriting target. On the transitive-closure mapping
// of Proposition 3 the UCQ rewriting can never converge, while the
// Datalog rewriting evaluates the exact certain answers bottom-up
// (semi-naive) — and does so faster than materializing the universal
// solution with Algorithm 1's generic fixpoint.

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"
#include "datalog/translate.h"

int main() {
  rps_bench::PrintHeader(
      "E11  Datalog rewriting (§5.1 future work, implemented)",
      "\"a rewriting algorithm that produces rewritten queries in a "
      "language more expressive than FO-queries, for instance Datalog\"");

  std::printf(
      "Transitive-closure mapping (Prop. 3): chase vs Datalog vs bounded "
      "UCQ\n");
  std::printf("%-8s %-10s %-12s %-12s %-14s %-12s\n", "chain", "answers",
              "chase_ms", "datalog_ms", "ucq@512_ms", "ucq_recall");
  bool all_equal = true;
  for (size_t n : {16u, 32u, 64u, 128u}) {
    std::unique_ptr<rps::RpsSystem> sys =
        rps::GenerateTransitiveClosureSystem(n);
    rps::GraphPatternQuery q = rps::TransitiveQuery(sys.get());

    rps_bench::Timer t1;
    rps::Result<rps::CertainAnswerResult> chase = rps::CertainAnswers(*sys, q);
    double chase_ms = t1.ElapsedMs();

    rps_bench::Timer t2;
    rps::DatalogEvalStats stats;
    rps::Result<std::vector<rps::Tuple>> datalog =
        rps::DatalogCertainAnswers(*sys, q, &stats);
    double datalog_ms = t2.ElapsedMs();

    rps::RpsRewriteOptions bounded;
    bounded.rewrite.max_queries = 512;
    rps_bench::Timer t3;
    rps::Result<rps::RewriteAnswers> ucq =
        rps::CertainAnswersViaRewriting(*sys, q, bounded);
    double ucq_ms = t3.ElapsedMs();

    if (!chase.ok() || !datalog.ok() || !ucq.ok()) {
      std::fprintf(stderr, "failure at n=%zu\n", n);
      return 1;
    }
    bool equal = chase->answers == *datalog;
    all_equal = all_equal && equal;
    double recall = static_cast<double>(ucq->answers.size()) /
                    static_cast<double>(chase->answers.size());
    std::printf("%-8zu %-10zu %-12.2f %-12.2f %-14.2f %-12.2f%s\n", n,
                chase->answers.size(), chase_ms, datalog_ms, ucq_ms, recall,
                equal ? "" : "  <-- DATALOG MISMATCH");
  }
  std::printf("=> Datalog == chase on every size: [%s]\n\n",
              all_equal ? "MATCH" : "MISMATCH");

  std::printf("Existential-free LOD chains: Datalog vs chase\n");
  std::printf("%-8s %-8s %-10s %-12s %-12s %-10s %-8s\n", "peers", "|D|",
              "answers", "chase_ms", "datalog_ms", "dl_rounds", "equal");
  for (size_t peers : {4u, 8u, 16u}) {
    std::unique_ptr<rps::RpsSystem> sys =
        rps::GenerateChainRps(peers, 200, 91);
    rps::GraphPatternQuery q = rps::ChainQuery(sys.get(), peers);

    rps_bench::Timer t1;
    rps::Result<rps::CertainAnswerResult> chase = rps::CertainAnswers(*sys, q);
    double chase_ms = t1.ElapsedMs();
    rps_bench::Timer t2;
    rps::DatalogEvalStats stats;
    rps::Result<std::vector<rps::Tuple>> datalog =
        rps::DatalogCertainAnswers(*sys, q, &stats);
    double datalog_ms = t2.ElapsedMs();
    if (!chase.ok() || !datalog.ok()) return 1;
    std::printf("%-8zu %-8zu %-10zu %-12.2f %-12.2f %-10zu %-8s\n", peers,
                sys->StoredDatabase().size(), chase->answers.size(),
                chase_ms, datalog_ms, stats.rounds,
                chase->answers == *datalog ? "yes" : "NO");
  }

  std::printf(
      "\nApplicability boundary: existential mappings are rejected "
      "(value invention needs the chase)\n");
  {
    rps::PaperExample ex = rps::BuildPaperExample();
    rps::PredTable preds;
    rps::Result<rps::DatalogRewriting> r =
        rps::CompileRpsToDatalog(*ex.system, &preds);
    std::printf("paper example (existential Q'): %s\n",
                r.ok() ? "accepted (UNEXPECTED)"
                       : r.status().ToString().c_str());
  }
  return all_equal ? 0 : 1;
}
