// E10 — equivalence-handling ablation (DESIGN.md §5.1): the naive
// Algorithm 1 chases six tt-copying TGDs per sameAs link, blowing the
// universal solution up by the clique size at every position; the
// union-find mode canonicalizes first and expands answers afterwards.
// Both must return identical certain answers; space and time diverge as
// cliques grow.

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

int main() {
  rps_bench::PrintHeader(
      "E10  equivalence handling — naive chase vs union-find canonicalization",
      "ablation of the six-TGD owl:sameAs encoding of §3");

  // Query: all (subject, object) pairs of prop0 — touches every clique.
  auto make_query = [](rps::RpsSystem* sys) {
    rps::GraphPatternQuery q;
    rps::VarId x = sys->vars()->Intern("ax");
    rps::VarId y = sys->vars()->Intern("ay");
    q.head = {x, y};
    q.body.Add(rps::TriplePattern{
        rps::PatternTerm::Var(x),
        rps::PatternTerm::Const(
            sys->dict()->InternIri("http://example.org/prop0")),
        rps::PatternTerm::Var(y)});
    return q;
  };

  std::printf("Sweep 1: clique size (24 cliques, 3 triples/member)\n");
  std::printf("%-8s %-7s %-11s %-11s %-11s %-11s %-8s\n", "clique", "|D|",
              "J_naive", "J_canon", "naive_ms", "canon_ms", "equal");
  for (size_t clique : {2u, 3u, 4u, 6u, 8u}) {
    std::unique_ptr<rps::RpsSystem> sys =
        rps::GenerateSameAsCliques(24, clique, 3, 61);
    rps::GraphPatternQuery q = make_query(sys.get());

    rps_bench::Timer t1;
    rps::Result<rps::CertainAnswerResult> naive =
        rps::CertainAnswers(*sys, q);
    double naive_ms = t1.ElapsedMs();

    rps::CertainAnswerOptions uf;
    uf.equivalence_mode = rps::EquivalenceMode::kUnionFind;
    rps_bench::Timer t2;
    rps::Result<rps::CertainAnswerResult> canon =
        rps::CertainAnswers(*sys, q, uf);
    double canon_ms = t2.ElapsedMs();
    if (!naive.ok() || !canon.ok()) {
      std::fprintf(stderr, "failed\n");
      return 1;
    }
    std::printf("%-8zu %-7zu %-11zu %-11zu %-11.2f %-11.2f %-8s\n", clique,
                sys->StoredDatabase().size(),
                naive->universal_solution_size,
                canon->universal_solution_size, naive_ms, canon_ms,
                naive->answers == canon->answers ? "yes" : "NO");
  }

  std::printf("\nSweep 2: number of cliques (clique size 4)\n");
  std::printf("%-8s %-7s %-11s %-11s %-11s %-11s %-8s\n", "cliques", "|D|",
              "J_naive", "J_canon", "naive_ms", "canon_ms", "equal");
  for (size_t cliques : {8u, 32u, 128u, 512u}) {
    std::unique_ptr<rps::RpsSystem> sys =
        rps::GenerateSameAsCliques(cliques, 4, 3, 62);
    rps::GraphPatternQuery q = make_query(sys.get());

    rps_bench::Timer t1;
    rps::Result<rps::CertainAnswerResult> naive =
        rps::CertainAnswers(*sys, q);
    double naive_ms = t1.ElapsedMs();

    rps::CertainAnswerOptions uf;
    uf.equivalence_mode = rps::EquivalenceMode::kUnionFind;
    rps_bench::Timer t2;
    rps::Result<rps::CertainAnswerResult> canon =
        rps::CertainAnswers(*sys, q, uf);
    double canon_ms = t2.ElapsedMs();
    if (!naive.ok() || !canon.ok()) return 1;
    std::printf("%-8zu %-7zu %-11zu %-11zu %-11.2f %-11.2f %-8s\n", cliques,
                sys->StoredDatabase().size(),
                naive->universal_solution_size,
                canon->universal_solution_size, naive_ms, canon_ms,
                naive->answers == canon->answers ? "yes" : "NO");
  }
  std::printf(
      "(expected shape: J_naive grows with the clique size at every "
      "position; J_canon stays proportional to |D|)\n");
  return 0;
}
