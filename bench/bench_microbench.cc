// Micro-benchmarks of the core primitives (google-benchmark): dictionary
// interning, indexed triple matching, solution-mapping joins, BGP
// evaluation, Algorithm 1 chase and UCQ rewriting. These are the
// building blocks whose costs the experiment harnesses (E2, E4, E6-E10)
// aggregate.

#include <benchmark/benchmark.h>

#include "rps/rps.h"

namespace {

rps::LodConfig SmallConfig() {
  rps::LodConfig config;
  config.num_peers = 4;
  config.films_per_peer = 50;
  config.actors_per_film = 2;
  config.overlap_fraction = 0.25;
  config.seed = 71;
  return config;
}

void BM_DictionaryIntern(benchmark::State& state) {
  for (auto _ : state) {
    rps::Dictionary dict;
    for (int i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(
          dict.InternIri("http://example.org/term" + std::to_string(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DictionaryIntern);

void BM_GraphInsert(benchmark::State& state) {
  rps::Dictionary dict;
  std::vector<rps::Triple> triples;
  rps::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    triples.push_back(rps::Triple{
        dict.InternIri("s" + std::to_string(rng.Index(200))),
        dict.InternIri("p" + std::to_string(rng.Index(10))),
        dict.InternIri("o" + std::to_string(rng.Index(200)))});
  }
  for (auto _ : state) {
    rps::Graph graph(&dict);
    for (const rps::Triple& t : triples) {
      benchmark::DoNotOptimize(graph.InsertUnchecked(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_GraphInsert);

void BM_GraphMatchByPredicate(benchmark::State& state) {
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(SmallConfig());
  rps::Graph merged = sys->StoredDatabase();
  rps::TermId actor = sys->dict()->InternIri("http://peer0.example.org/actor");
  for (auto _ : state) {
    size_t count = 0;
    merged.Match(std::nullopt, actor, std::nullopt,
                 [&](const rps::Triple&) {
                   ++count;
                   return true;
                 });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_GraphMatchByPredicate);

// 2-bound shapes — the dominant access of seeded BGP joins and bind
// joins; served by the permuted sorted runs (SPO here).
void BM_GraphMatchSubjectPredicate(benchmark::State& state) {
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(SmallConfig());
  rps::Graph merged = sys->StoredDatabase();
  rps::TermId actor = sys->dict()->InternIri("http://peer0.example.org/actor");
  std::vector<rps::TermId> subjects;
  merged.Match(std::nullopt, actor, std::nullopt, [&](const rps::Triple& t) {
    subjects.push_back(t.s);
    return true;
  });
  for (auto _ : state) {
    size_t count = 0;
    for (rps::TermId s : subjects) {
      merged.Match(s, actor, std::nullopt, [&](const rps::Triple&) {
        ++count;
        return true;
      });
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(subjects.size()));
}
BENCHMARK(BM_GraphMatchSubjectPredicate);

// (? p o) over the POS run, probing every distinct object of a predicate.
void BM_GraphMatchPredicateObject(benchmark::State& state) {
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(SmallConfig());
  rps::Graph merged = sys->StoredDatabase();
  rps::TermId actor = sys->dict()->InternIri("http://peer0.example.org/actor");
  std::vector<rps::TermId> objects;
  merged.Match(std::nullopt, actor, std::nullopt, [&](const rps::Triple& t) {
    objects.push_back(t.o);
    return true;
  });
  for (auto _ : state) {
    size_t count = 0;
    for (rps::TermId o : objects) {
      merged.Match(std::nullopt, actor, o, [&](const rps::Triple&) {
        ++count;
        return true;
      });
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(objects.size()));
}
BENCHMARK(BM_GraphMatchPredicateObject);

void BM_BindingJoin(benchmark::State& state) {
  rps::Rng rng(7);
  rps::BindingSet left, right;
  for (int i = 0; i < 500; ++i) {
    rps::Binding b;
    b.Bind(0, static_cast<rps::TermId>(rng.Index(100)));
    b.Bind(1, static_cast<rps::TermId>(rng.Index(100)));
    left.push_back(b);
    rps::Binding c;
    c.Bind(1, static_cast<rps::TermId>(rng.Index(100)));
    c.Bind(2, static_cast<rps::TermId>(rng.Index(100)));
    right.push_back(c);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rps::Join(left, right));
  }
}
BENCHMARK(BM_BindingJoin);

void BM_BgpEvaluation(benchmark::State& state) {
  rps::LodConfig config = SmallConfig();
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
  rps::Graph merged = sys->StoredDatabase();
  rps::GraphPatternQuery q = rps::LodDemoQuery(sys.get(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rps::EvalQuery(merged, q, rps::QuerySemantics::kDropBlanks));
  }
}
BENCHMARK(BM_BgpEvaluation);

// 3-pattern BGP join where the fewest-unbound-first heuristic walks
// into a fan-out trap: the anchor pattern reaches 500 subjects, each
// fanning out 20 ways, while a 10-row two-unbound pattern prunes the
// join to a handful of rows. The probe engine (range(0) == 0) follows
// the greedy order and drags the 10k-row intermediate through the last
// join; the cost-based plan engine (range(0) == 1, query/plan.h)
// anchors on the selective pattern via DP. Both produce byte-identical
// bindings; the ratio is what bench/baselines records for the join
// sweeps.
void BM_BgpJoin3(benchmark::State& state) {
  rps::Dictionary dict;
  rps::Graph graph(&dict);
  rps::Rng rng(17);
  rps::TermId hub = dict.InternIri("http://m/hub");
  rps::TermId p0 = dict.InternIri("http://m/p0");
  rps::TermId p1 = dict.InternIri("http://m/p1");
  rps::TermId p2 = dict.InternIri("http://m/p2");
  std::vector<rps::TermId> xs, zs;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(dict.InternIri("http://m/x" + std::to_string(i)));
  }
  for (int i = 0; i < 2500; ++i) {
    zs.push_back(dict.InternIri("http://m/z" + std::to_string(i)));
  }
  for (const rps::TermId x : xs) {
    graph.InsertUnchecked(rps::Triple{hub, p0, x});
    for (int k = 0; k < 20; ++k) {
      graph.InsertUnchecked(rps::Triple{x, p1, zs[rng.Index(zs.size())]});
    }
  }
  for (int i = 0; i < 10; ++i) {
    graph.InsertUnchecked(
        rps::Triple{zs[i], p2, dict.InternIri("http://m/w" + std::to_string(i))});
  }
  rps::VarPool vars;
  rps::VarId vx = vars.Intern("x");
  rps::VarId va = vars.Intern("a");
  rps::VarId vb = vars.Intern("b");
  auto var = [](rps::VarId v) { return rps::PatternTerm::Var(v); };
  auto cst = [](rps::TermId t) { return rps::PatternTerm::Const(t); };
  std::vector<rps::TriplePattern> patterns = {
      {cst(hub), cst(p0), var(vx)},
      {var(vx), cst(p1), var(va)},
      {var(va), cst(p2), var(vb)}};
  rps::EvalOptions options;
  options.use_plan = state.range(0) == 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rps::ExtendBindings(graph, patterns, {rps::Binding()}, options));
  }
}
BENCHMARK(BM_BgpJoin3)->Arg(0)->Arg(1);

void BM_UniversalSolutionChase(benchmark::State& state) {
  rps::LodConfig config = SmallConfig();
  config.films_per_peer = static_cast<size_t>(state.range(0));
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
  for (auto _ : state) {
    rps::Graph universal(sys->dict());
    auto stats = rps::BuildUniversalSolution(*sys, &universal);
    benchmark::DoNotOptimize(stats);
  }
  state.SetComplexityN(static_cast<int64_t>(sys->StoredDatabase().size()));
}
BENCHMARK(BM_UniversalSolutionChase)->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->Complexity();

void BM_RewriteChainQuery(benchmark::State& state) {
  size_t peers = static_cast<size_t>(state.range(0));
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateChainRps(peers, 2, 72);
  rps::GraphPatternQuery q = rps::ChainQuery(sys.get(), peers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rps::RewriteGraphQuery(*sys, q));
  }
}
BENCHMARK(BM_RewriteChainQuery)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_NTriplesParse(benchmark::State& state) {
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(SmallConfig());
  std::string text = rps::WriteNTriples(sys->StoredDatabase());
  for (auto _ : state) {
    rps::Dictionary dict;
    rps::Graph graph(&dict);
    benchmark::DoNotOptimize(rps::ParseNTriples(text, &graph));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_NTriplesParse);

}  // namespace

BENCHMARK_MAIN();
