// E4 — Theorem 1: computing certain answers has PTIME data complexity.
// We grow the stored database (synthetic LOD systems with fixed mapping
// structure) and measure chase time and universal-solution size. The
// paper proves a polynomial bound; the measured log-log slopes should
// stay small and roughly constant (≈ linear-to-quadratic), never
// exponential.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

int main(int argc, char** argv) {
  rps_bench::PrintHeader(
      "E4  Theorem 1 — PTIME data complexity of the chase",
      "\"finding all certain answers ... has PTIME data complexity\"");
  // `--threads=N` runs sweeps 1–3 on the parallel engine; sweep 4 always
  // compares thread counts explicitly.
  size_t threads = rps_bench::ThreadsFromArgs(argc, argv);
  rps::CertainAnswerOptions ca_options;
  ca_options.chase.threads = threads;
  ca_options.chase.eval.threads = threads;

  std::printf(
      "Sweep 1: |D| grows (4 peers, chain mappings, sameAs links)\n");
  std::printf("%-10s %-10s %-12s %-10s %-12s %-12s %-10s\n", "films/peer",
              "|D|", "|J|", "rounds", "chase_ms", "answers", "slope");

  double prev_ms = 0.0;
  size_t prev_d = 0;
  for (size_t films : {25u, 50u, 100u, 200u, 400u}) {
    rps::LodConfig config;
    config.num_peers = 4;
    config.films_per_peer = films;
    config.actors_per_film = 2;
    config.overlap_fraction = 0.25;
    config.seed = 11;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    size_t d_size = sys->StoredDatabase().size();

    rps_bench::Timer timer;
    rps::Result<rps::CertainAnswerResult> result = rps::CertainAnswers(
        *sys, rps::LodDemoQuery(sys.get(), config), ca_options);
    double ms = timer.ElapsedMs();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    double slope = 0.0;
    if (prev_d > 0 && prev_ms > 0.0 && ms > 0.0) {
      slope = std::log(ms / prev_ms) /
              std::log(static_cast<double>(d_size) /
                       static_cast<double>(prev_d));
    }
    std::printf("%-10zu %-10zu %-12zu %-10zu %-12.2f %-12zu %-10.2f\n",
                films, d_size, result->universal_solution_size,
                result->chase_stats.rounds, ms, result->answers.size(),
                slope);
    prev_ms = ms;
    prev_d = d_size;
  }
  std::printf(
      "(slope = d log(time) / d log(|D|); polynomial behaviour keeps it "
      "bounded by a small constant)\n\n");

  std::printf("Sweep 2: peer count grows (20 films/peer)\n");
  std::printf("%-8s %-10s %-12s %-10s %-12s %-12s\n", "peers", "|D|", "|J|",
              "rounds", "chase_ms", "answers");
  for (size_t peers : {2u, 4u, 8u, 12u, 16u}) {
    rps::LodConfig config;
    config.num_peers = peers;
    config.films_per_peer = 20;
    config.actors_per_film = 2;
    config.overlap_fraction = 0.25;
    config.seed = 12;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    size_t d_size = sys->StoredDatabase().size();
    rps_bench::Timer timer;
    rps::Result<rps::CertainAnswerResult> result = rps::CertainAnswers(
        *sys, rps::LodDemoQuery(sys.get(), config), ca_options);
    double ms = timer.ElapsedMs();
    if (!result.ok()) return 1;
    std::printf("%-8zu %-10zu %-12zu %-10zu %-12.2f %-12zu\n", peers, d_size,
                result->universal_solution_size, result->chase_stats.rounds,
                ms, result->answers.size());
  }

  std::printf(
      "\nSweep 2b: chase scheduling ablation — naive rounds vs semi-naive "
      "deltas (DESIGN.md §5.3)\n");
  std::printf("%-12s %-10s %-12s %-14s %-12s %-12s\n", "films/peer", "|D|",
              "naive_ms", "seminaive_ms", "|J|naive", "|J|semi");
  for (size_t films : {50u, 100u, 200u, 400u}) {
    rps::LodConfig config;
    config.num_peers = 4;
    config.films_per_peer = films;
    config.actors_per_film = 2;
    config.overlap_fraction = 0.25;
    config.seed = 14;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);

    rps_bench::Timer t1;
    rps::Graph naive(sys->dict());
    if (!rps::BuildUniversalSolution(*sys, &naive, ca_options.chase).ok()) {
      return 1;
    }
    double naive_ms = t1.ElapsedMs();

    rps::RpsChaseOptions semi = ca_options.chase;
    semi.semi_naive = true;
    rps_bench::Timer t2;
    rps::Graph delta(sys->dict());
    if (!rps::BuildUniversalSolution(*sys, &delta, semi).ok()) return 1;
    double semi_ms = t2.ElapsedMs();

    // Sizes may differ by homomorphically redundant nulls; both are
    // universal solutions (answer equality is property-tested).
    std::printf("%-12zu %-10zu %-12.2f %-14.2f %-12zu %-12zu\n", films,
                sys->StoredDatabase().size(), naive_ms, semi_ms,
                naive.size(), delta.size());
  }

  std::printf(
      "\nSweep 3: mapping-cycle stress — ring topology (cyclic mappings "
      "terminate, as Theorem 1 requires)\n");
  std::printf("%-8s %-10s %-12s %-10s %-12s %-10s\n", "peers", "|D|", "|J|",
              "rounds", "chase_ms", "completed");
  for (size_t peers : {3u, 6u, 9u}) {
    rps::LodConfig config;
    config.num_peers = peers;
    config.films_per_peer = 20;
    config.topology = rps::LodConfig::MappingTopology::kRing;
    config.seed = 13;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    rps::Graph universal(sys->dict());
    rps_bench::Timer timer;
    rps::Result<rps::RpsChaseStats> stats =
        rps::BuildUniversalSolution(*sys, &universal);
    double ms = timer.ElapsedMs();
    if (!stats.ok()) return 1;
    std::printf("%-8zu %-10zu %-12zu %-10zu %-12.2f %-10s\n", peers,
                sys->StoredDatabase().size(), universal.size(),
                stats->rounds, ms, stats->completed ? "yes" : "no");
  }
  std::printf(
      "\nSweep 4: parallel chase engine — thread-count sweep on the largest "
      "instance (400 films/peer, 4 peers)\n");
  std::printf("%-9s %-10s %-12s %-12s %-10s %-10s %-12s\n", "threads", "|D|",
              "|J|", "chase_ms", "speedup", "answers", "identical");
  {
    rps::LodConfig config;
    config.num_peers = 4;
    config.films_per_peer = 400;
    config.actors_per_film = 2;
    config.overlap_fraction = 0.25;
    config.seed = 11;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    rps::GraphPatternQuery q = rps::LodDemoQuery(sys.get(), config);
    size_t d_size = sys->StoredDatabase().size();

    // Answers are sorted by CertainAnswers, so equality below is a
    // byte-identical comparison against the serial baseline.
    std::vector<rps::Tuple> baseline;
    double serial_ms = 0.0;
    bool identical = true;
    for (size_t t : {1u, 2u, 4u}) {
      rps::CertainAnswerOptions options;
      options.chase.threads = t;
      options.chase.eval.threads = t;
      rps_bench::Timer timer;
      rps::Result<rps::CertainAnswerResult> result =
          rps::CertainAnswers(*sys, q, options);
      double ms = timer.ElapsedMs();
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      bool equal = true;
      if (t == 1) {
        baseline = result->answers;
        serial_ms = ms;
      } else {
        equal = result->answers == baseline;
        identical = identical && equal;
      }
      std::printf("%-9zu %-10zu %-12zu %-12.2f %-10.2f %-10zu %-12s\n", t,
                  d_size, result->universal_solution_size, ms,
                  ms > 0.0 ? serial_ms / ms : 0.0, result->answers.size(),
                  equal ? "yes" : "NO");
    }
    std::printf("=> sorted certain answers byte-identical across thread "
                "counts: [%s]\n",
                identical ? "MATCH" : "MISMATCH");
    if (!identical) return 1;
  }
  rps_bench::PrintMetricsJson("theorem1_ptime_chase");
  return 0;
}
