// E5 — Definition 4 / §4: syntactic classification of the TGD sets an RPS
// compiles to. Verifies the paper's classification claims on the
// paper-derived sets, and measures the cost of the stickiness /
// weak-acyclicity / linearity tests as the mapping set grows.

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

namespace {

void Report(const char* name, const std::vector<rps::Tgd>& tgds,
            const rps::PredTable& preds) {
  rps::TgdClassReport report = rps::ClassifyTgds(tgds, preds);
  std::printf("%-38s %-4zu  %s\n", name, tgds.size(),
              report.Summary().c_str());
}

}  // namespace

int main() {
  rps_bench::PrintHeader(
      "E5  §4 classification — sticky / linear / weakly-acyclic / guarded",
      "E is sticky+linear; GMA join example is not sticky; RPS sets are "
      "incomparable to known classes");

  // (a) The equivalence TGDs of the paper example.
  {
    rps::PaperExample ex = rps::BuildPaperExample();
    rps::PredTable preds;
    rps::PredId tt = preds.Intern("tt", 3);
    std::vector<rps::Tgd> eq_tgds = rps::CompileEquivalenceTgds(
        ex.system->equivalences(), tt, ex.system->vars());
    Report("E (equivalence TGDs, Example 2)", eq_tgds, preds);

    rps::PredId rt = preds.Intern("rt", 1);
    std::vector<rps::Tgd> gma_tgds = rps::CompileGmaTgds(
        ex.system->graph_mappings(), tt, rt, ex.system->vars());
    Report("G with rt guards (Example 2)", gma_tgds, preds);
    std::vector<rps::Tgd> stripped = rps::StripGuardAtoms(gma_tgds, rt);
    Report("G guard-stripped (Example 2)", stripped, preds);

    std::vector<rps::Tgd> all = eq_tgds;
    all.insert(all.end(), gma_tgds.begin(), gma_tgds.end());
    Report("E ∪ G (full Example 2 target set)", all, preds);
  }

  // (b) The paper's §4 non-sticky join mapping and the Prop. 3 mapping.
  {
    std::unique_ptr<rps::RpsSystem> tc =
        rps::GenerateTransitiveClosureSystem(4);
    rps::PredTable preds;
    std::vector<rps::Tgd> target;
    tc->CompileToTgds(&preds, nullptr, &target);
    Report("transitive closure (Prop. 3)", target, preds);
    rps::PredId rt = preds.Intern("rt", 1);
    Report("transitive closure, guard-stripped",
           rps::StripGuardAtoms(target, rt), preds);
  }

  // (c) Cost of the tests on growing generated mapping sets.
  std::printf("\n%-8s %-8s %-12s %-12s %-12s %-12s\n", "peers", "tgds",
              "sticky_ms", "wacyclic_ms", "linear_ms", "guarded_ms");
  for (size_t peers : {4u, 8u, 16u, 32u, 64u}) {
    rps::LodConfig config;
    config.num_peers = peers;
    config.films_per_peer = 2;
    config.topology = rps::LodConfig::MappingTopology::kRandom;
    config.random_edge_prob = 0.3;
    config.seed = 21;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
    rps::PredTable preds;
    std::vector<rps::Tgd> target;
    sys->CompileToTgds(&preds, nullptr, &target);

    rps_bench::Timer t1;
    bool sticky = rps::IsSticky(target, preds);
    double sticky_ms = t1.ElapsedMs();
    rps_bench::Timer t2;
    bool wa = rps::IsWeaklyAcyclic(target, preds);
    double wa_ms = t2.ElapsedMs();
    rps_bench::Timer t3;
    bool linear = rps::IsLinear(target);
    double linear_ms = t3.ElapsedMs();
    rps_bench::Timer t4;
    bool guarded = rps::IsGuarded(target);
    double guarded_ms = t4.ElapsedMs();

    std::printf("%-8zu %-8zu %-12.3f %-12.3f %-12.3f %-12.3f  "
                "(sticky=%d wa=%d linear=%d guarded=%d)\n",
                peers, target.size(), sticky_ms, wa_ms, linear_ms,
                guarded_ms, sticky, wa, linear, guarded);
  }
  return 0;
}
