// E8 — §5 item 1: chase materialization vs query rewriting. The paper
// calls its Algorithm 1 "naïve" and proposes rewriting as the scalable
// alternative. This harness measures both strategies while (a) the data
// grows and (b) the number of queries amortizing one materialization
// grows, locating the crossover.

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

namespace {

// One selective query per film id, in the last peer's dialect.
rps::GraphPatternQuery SelectiveQuery(rps::RpsSystem* sys, size_t peers,
                                      size_t film) {
  rps::Dictionary* dict = sys->dict();
  rps::VarPool* vars = sys->vars();
  std::string ns =
      "http://peer" + std::to_string(peers - 1) + ".example.org/";
  rps::TermId prop = dict->InternIri(ns + "p");
  rps::TermId f = dict->InternIri(ns + "f" + std::to_string(film));
  rps::VarId x = vars->Fresh("sel");
  rps::GraphPatternQuery q;
  q.head = {x};
  q.body.Add(rps::TriplePattern{rps::PatternTerm::Var(x),
                                rps::PatternTerm::Const(prop),
                                rps::PatternTerm::Const(f)});
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  rps_bench::PrintHeader(
      "E8  chase materialization vs rewriting (§5 future-work study)",
      "\"materialising the universal solution ... may be impractical ... a "
      "more efficient approach would involve a rewriting\"");
  size_t threads = rps_bench::ThreadsFromArgs(argc, argv);
  rps::CertainAnswerOptions ca_options;
  ca_options.chase.threads = threads;
  ca_options.chase.eval.threads = threads;

  const size_t kPeers = 4;

  std::printf("Sweep 1: data grows, single query (rewriting should win)\n");
  std::printf("%-12s %-10s %-16s %-16s %-10s\n", "facts/peer", "|D|",
              "chase_total_ms", "rewrite_total_ms", "equal");
  for (size_t facts : {100u, 400u, 1600u, 6400u}) {
    std::unique_ptr<rps::RpsSystem> sys =
        rps::GenerateChainRps(kPeers, facts, 41);
    rps::GraphPatternQuery q = rps::ChainQuery(sys.get(), kPeers);

    rps_bench::Timer t1;
    rps::Result<rps::CertainAnswerResult> chase =
        rps::CertainAnswers(*sys, q, ca_options);
    double chase_ms = t1.ElapsedMs();

    rps_bench::Timer t2;
    rps::Result<rps::RewriteAnswers> rewrite =
        rps::CertainAnswersViaRewriting(*sys, q);
    double rewrite_ms = t2.ElapsedMs();
    if (!chase.ok() || !rewrite.ok()) return 1;

    std::printf("%-12zu %-10zu %-16.2f %-16.2f %-10s\n", facts,
                sys->StoredDatabase().size(), chase_ms, rewrite_ms,
                chase->answers == rewrite->answers ? "yes" : "NO");
  }

  std::printf(
      "\nSweep 2: one materialization amortized over many selective "
      "queries (1600 facts/peer)\n");
  std::printf("%-10s %-22s %-22s %-12s\n", "queries",
              "chase: build+eval (ms)", "rewrite: per-query (ms)",
              "winner");
  std::unique_ptr<rps::RpsSystem> sys =
      rps::GenerateChainRps(kPeers, 1600, 42);

  // Materialize once.
  rps_bench::Timer build_timer;
  rps::Graph universal(sys->dict());
  rps::Result<rps::RpsChaseStats> build =
      rps::BuildUniversalSolution(*sys, &universal, ca_options.chase);
  double build_ms = build_timer.ElapsedMs();
  if (!build.ok()) return 1;

  for (size_t queries : {1u, 4u, 16u, 64u, 256u}) {
    // Chase strategy: one build + cheap evaluations.
    rps_bench::Timer eval_timer;
    size_t chase_rows = 0;
    for (size_t i = 0; i < queries; ++i) {
      rps::GraphPatternQuery q =
          SelectiveQuery(sys.get(), kPeers, i % 1600);
      chase_rows += rps::EvalQuery(universal, q,
                                   rps::QuerySemantics::kDropBlanks)
                        .size();
    }
    double chase_total = build_ms + eval_timer.ElapsedMs();

    // Rewriting strategy: rewrite + evaluate per query, no build.
    rps_bench::Timer rw_timer;
    size_t rewrite_rows = 0;
    for (size_t i = 0; i < queries; ++i) {
      rps::GraphPatternQuery q =
          SelectiveQuery(sys.get(), kPeers, i % 1600);
      rps::Result<rps::RewriteAnswers> r =
          rps::CertainAnswersViaRewriting(*sys, q);
      if (!r.ok()) return 1;
      rewrite_rows += r->answers.size();
    }
    double rewrite_total = rw_timer.ElapsedMs();

    std::printf("%-10zu %-22.2f %-22.2f %-12s%s\n", queries, chase_total,
                rewrite_total,
                chase_total < rewrite_total ? "chase" : "rewrite",
                chase_rows == rewrite_rows ? "" : "  <-- ANSWER MISMATCH");
  }
  std::printf(
      "(expected shape: rewriting wins for few queries, materialization "
      "amortizes as the workload grows)\n");
  rps_bench::PrintMetricsJson("tradeoff_chase_vs_rewrite");
  return 0;
}
