// E11 — fault-tolerant federation: the §5 prototype federates live
// endpoints that time out, drop messages and disappear mid-query. This
// harness sweeps deterministic fault injection (drop rate × retry
// budget, then crashed/slow peers) over the simulated transport and
// reports soundness (answers ⊆ zero-fault answers — the certain-answer
// guarantee survives degradation), recall, retry/timeout/hedge counts
// and the completeness marker.
//
//   --n=F        films per peer (default 20)
//   --threads=N  per-peer fan-out threads

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

namespace {

// True if every tuple of `subset` also occurs in `superset` (both are
// sorted + deduplicated by the federator).
bool IsSubset(const std::vector<rps::Tuple>& subset,
              const std::vector<rps::Tuple>& superset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

}  // namespace

int main(int argc, char** argv) {
  rps_bench::PrintHeader(
      "E11 fault-tolerant federated query processing (simulated faults)",
      "\"sub-queries are posed to the relevant RDF sources\" - here over a "
      "lossy network with retry/backoff/hedging");
  size_t films = rps_bench::SizeFromArgs(argc, argv, 20);
  size_t threads = rps_bench::ThreadsFromArgs(argc, argv);

  rps::LodConfig config;
  config.num_peers = 6;
  config.films_per_peer = films;
  config.seed = 71;
  config.single_triple_dialect = true;
  std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);
  rps::GraphPatternQuery q = rps::LodDemoQuery(sys.get(), config);
  rps::Federator fed(sys.get(), rps::LodTopology(config));

  rps::FederationOptions clean;
  clean.threads = threads;
  rps::Result<rps::FederatedQueryResult> baseline = fed.Execute(q, clean);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("baseline (zero faults): %zu answer(s)\n\n",
              baseline->answers.size());

  std::printf("Sweep 1: drop rate x retry budget (timeout 60ms)\n");
  std::printf("%-7s %-8s %-9s %-8s %-9s %-9s %-10s %-14s %-6s\n", "drop",
              "retries", "answers", "recall", "retries", "timeouts",
              "degraded", "completeness", "sound");
  bool sound = true;
  for (double drop : {0.0, 0.1, 0.3, 0.5}) {
    for (size_t budget : {0u, 1u, 2u, 4u}) {
      rps::FederationOptions options;
      options.threads = threads;
      options.faults.drop_rate = drop;
      options.faults.seed = 1234;
      options.retry.timeout_ms = 60.0;
      options.retry.max_retries = budget;
      rps::Result<rps::FederatedQueryResult> r = fed.Execute(q, options);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      bool subset = IsSubset(r->answers, baseline->answers);
      sound = sound && subset;
      double recall =
          baseline->answers.empty()
              ? 1.0
              : static_cast<double>(r->answers.size()) /
                    static_cast<double>(baseline->answers.size());
      std::printf("%-7.2f %-8zu %-9zu %-8.2f %-9zu %-9zu %-10zu %-14s %-6s\n",
                  drop, budget, r->answers.size(), recall, r->retries,
                  r->timeouts, r->degraded_peers.size(),
                  rps::ToString(r->completeness), subset ? "yes" : "NO");
    }
  }

  std::printf("\nSweep 2: crashed and slow peers (drop 0.1, 2 retries)\n");
  std::printf("%-22s %-9s %-9s %-9s %-10s %-14s\n", "faults", "answers",
              "retries", "timeouts", "degraded", "completeness");
  struct Scenario {
    const char* label;
    rps::FaultOptions faults;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario s{"crash peer 2", {}};
    s.faults.drop_rate = 0.1;
    s.faults.crashed_peers = {2};
    scenarios.push_back(s);
  }
  {
    Scenario s{"crash 2 after 1 query", {}};
    s.faults.drop_rate = 0.1;
    s.faults.crash_after = {{2, 1}};
    scenarios.push_back(s);
  }
  {
    Scenario s{"slow peer 1 (x50)", {}};
    s.faults.drop_rate = 0.1;
    s.faults.slow_peers = {1};
    s.faults.slow_factor = 50.0;
    scenarios.push_back(s);
  }
  {
    Scenario s{"all peers crashed", {}};
    for (size_t p = 0; p < config.num_peers; ++p) {
      s.faults.crashed_peers.push_back(p);
    }
    scenarios.push_back(s);
  }
  for (Scenario& s : scenarios) {
    rps::FederationOptions options;
    options.threads = threads;
    options.faults = s.faults;
    options.faults.seed = 99;
    options.retry.timeout_ms = 60.0;
    options.retry.max_retries = 2;
    rps::Result<rps::FederatedQueryResult> r = fed.Execute(q, options);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    bool subset = IsSubset(r->answers, baseline->answers);
    sound = sound && subset;
    std::printf("%-22s %-9zu %-9zu %-9zu %-10zu %-14s\n", s.label,
                r->answers.size(), r->retries, r->timeouts,
                r->degraded_peers.size(), rps::ToString(r->completeness));
  }

  if (!sound) {
    std::fprintf(stderr,
                 "SOUNDNESS VIOLATION: a faulty run returned an answer "
                 "the zero-fault run did not\n");
    return 1;
  }
  std::printf("\nsoundness: every faulty run's answers were a subset of "
              "the zero-fault answers\n");
  rps_bench::PrintMetricsJson("fault_tolerance");
  return 0;
}
