// E12 (extension) — §5 item 3 implemented: automatic mapping discovery.
// Entity co-reference is proposed from shared literal attributes
// (Jaccard-scored); property alignments from canonical pair containment.
// Measured: precision/recall against the generator's hidden ground truth
// as attribute noise and the acceptance threshold vary, plus discovery
// cost as the data grows.

#include <cstdio>

#include "bench_util.h"
#include "rps/rps.h"

namespace {

rps::LodConfig BaseConfig(uint64_t seed) {
  rps::LodConfig config;
  config.num_peers = 4;
  config.films_per_peer = 40;
  config.actors_per_film = 2;
  config.overlap_fraction = 0.5;
  config.single_triple_dialect = true;
  config.with_attributes = true;
  config.emit_sameas = false;
  config.seed = seed;
  return config;
}

}  // namespace

int main() {
  rps_bench::PrintHeader(
      "E12  automatic mapping discovery (§5.3 future work, implemented)",
      "\"We want to be able to discover mappings between peers "
      "automatically\"");

  std::printf("Sweep 1: attribute noise vs precision/recall (jaccard 0.5)\n");
  std::printf("%-8s %-10s %-10s %-8s %-8s %-8s %-10s\n", "noise",
              "proposed", "truth", "tp", "fp", "fn", "P / R");
  for (double noise : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    rps::LodConfig config = BaseConfig(201);
    config.attribute_noise = noise;
    std::vector<rps::EquivalenceMapping> truth;
    std::unique_ptr<rps::RpsSystem> sys =
        rps::GenerateLod(config, nullptr, &truth);
    std::vector<rps::EquivalenceCandidate> proposed =
        rps::DiscoverEquivalences(*sys);
    rps::DiscoveryEvaluation eval =
        rps::EvaluateEquivalences(proposed, truth);
    std::printf("%-8.1f %-10zu %-10zu %-8zu %-8zu %-8zu %.2f / %.2f\n",
                noise, proposed.size(), truth.size(), eval.true_positives,
                eval.false_positives, eval.false_negatives, eval.precision,
                eval.recall);
  }

  std::printf(
      "\nSweep 2: Jaccard threshold vs precision/recall (noise 0.3)\n");
  std::printf("%-10s %-10s %-10s\n", "jaccard", "precision", "recall");
  {
    rps::LodConfig config = BaseConfig(202);
    config.attribute_noise = 0.3;
    std::vector<rps::EquivalenceMapping> truth;
    std::unique_ptr<rps::RpsSystem> sys =
        rps::GenerateLod(config, nullptr, &truth);
    for (double jaccard : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      rps::DiscoveryOptions options;
      options.min_jaccard = jaccard;
      rps::DiscoveryEvaluation eval = rps::EvaluateEquivalences(
          rps::DiscoverEquivalences(*sys, options), truth);
      std::printf("%-10.1f %-10.2f %-10.2f\n", jaccard, eval.precision,
                  eval.recall);
    }
  }

  std::printf("\nSweep 3: discovery cost vs data size\n");
  std::printf("%-12s %-8s %-14s %-14s\n", "films/peer", "|D|",
              "equiv_disc_ms", "align_disc_ms");
  for (size_t films : {20u, 40u, 80u, 160u}) {
    rps::LodConfig config = BaseConfig(203);
    config.films_per_peer = films;
    config.emit_sameas = true;      // alignments need the closure
    config.overlap_fraction = 1.0;  // full overlap: containment reaches 1.0
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(config);

    rps_bench::Timer t1;
    std::vector<rps::EquivalenceCandidate> eq =
        rps::DiscoverEquivalences(*sys);
    double eq_ms = t1.ElapsedMs();

    rps::EquivalenceClosure closure(sys->equivalences(), *sys->dict());
    rps_bench::Timer t2;
    std::vector<rps::PropertyAlignment> alignments =
        rps::DiscoverPropertyAlignments(*sys, closure);
    double align_ms = t2.ElapsedMs();
    std::printf("%-12zu %-8zu %-14.2f %-14.2f  (eq=%zu align=%zu)\n", films,
                sys->StoredDatabase().size(), eq_ms, align_ms, eq.size(),
                alignments.size());
  }

  std::printf(
      "\nEnd-to-end: discovery bootstraps an unmapped system\n");
  {
    rps::LodConfig config = BaseConfig(204);
    config.num_peers = 2;
    config.films_per_peer = 20;
    // Reference: generator mappings + sameAs.
    rps::LodConfig ref_config = config;
    ref_config.emit_sameas = true;
    std::unique_ptr<rps::RpsSystem> reference = rps::GenerateLod(ref_config);
    rps::GraphPatternQuery ref_q = rps::LodDemoQuery(reference.get(), config);
    rps::Result<rps::CertainAnswerResult> ref_answers =
        rps::CertainAnswers(*reference, ref_q);
    if (!ref_answers.ok()) return 1;

    // Candidate: no sameAs; discovery fills the gap.
    std::unique_ptr<rps::RpsSystem> bare = rps::GenerateLod(config);
    std::vector<rps::EquivalenceCandidate> candidates =
        rps::DiscoverEquivalences(*bare);
    rps::Result<size_t> added =
        rps::ApplyDiscovery(bare.get(), candidates, {});
    if (!added.ok()) return 1;
    rps::GraphPatternQuery bare_q = rps::LodDemoQuery(bare.get(), config);
    rps::Result<rps::CertainAnswerResult> bare_answers =
        rps::CertainAnswers(*bare, bare_q);
    if (!bare_answers.ok()) return 1;

    size_t covered = 0;
    for (const rps::Tuple& t : ref_answers->answers) {
      if (std::find(bare_answers->answers.begin(),
                    bare_answers->answers.end(),
                    t) != bare_answers->answers.end()) {
        ++covered;
      }
    }
    std::printf(
        "reference answers: %zu | discovered-system answers: %zu | "
        "coverage of reference: %zu/%zu [%s]\n",
        ref_answers->answers.size(), bare_answers->answers.size(), covered,
        ref_answers->answers.size(),
        covered == ref_answers->answers.size() ? "MATCH" : "PARTIAL");
  }
  return 0;
}
