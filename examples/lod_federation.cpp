// Federated querying over a synthetic Linked-Open-Data cloud — the §5
// prototype, simulated: N film databases with different dialects,
// sameAs links for overlapping entities, graph mapping assertions along
// a configurable topology. A query in peer 0's vocabulary is rewritten
// (module a), decomposed into sub-queries, sent to the relevant peers and
// joined at the coordinator (module b), with network accounting.
//
//   $ ./lod_federation

#include <cstdio>

#include "rps/rps.h"

int main() {
  rps::LodConfig config;
  config.num_peers = 6;
  config.films_per_peer = 60;
  config.actors_per_film = 2;
  config.overlap_fraction = 0.3;
  config.topology = rps::LodConfig::MappingTopology::kChain;
  config.seed = 2026;

  rps::LodStats stats;
  std::unique_ptr<rps::RpsSystem> system = rps::GenerateLod(config, &stats);

  std::printf("=== Synthetic LOD cloud ===\n");
  std::printf("peers            : %zu (alternating dialects)\n",
              system->PeerCount());
  std::printf("triples          : %zu\n", stats.triples);
  std::printf("sameAs links     : %zu\n", stats.sameas_links);
  std::printf("mapping asserts  : %zu\n", stats.graph_mappings);

  rps::GraphPatternQuery query = rps::LodDemoQuery(system.get(), config);
  std::printf("\nQuery (peer 0's dialect): %s\n",
              rps::ToString(query, *system->dict(), *system->vars())
                  .c_str());

  // Ground truth via Algorithm 1.
  rps::Result<rps::CertainAnswerResult> chase =
      rps::CertainAnswers(*system, query);
  if (!chase.ok()) {
    std::fprintf(stderr, "%s\n", chase.status().ToString().c_str());
    return 1;
  }
  std::printf("certain answers  : %zu (chase over %zu-triple universal "
              "solution)\n",
              chase->answers.size(), chase->universal_solution_size);

  // Federated execution over the peer topology.
  rps::Topology topo = rps::LodTopology(config);
  rps::Federator federator(system.get(), topo);
  std::printf("\n=== Federated execution over %s ===\n",
              topo.Describe().c_str());

  rps::Result<rps::FederatedQueryResult> fed = federator.Execute(query);
  if (!fed.ok()) {
    std::fprintf(stderr, "%s\n", fed.status().ToString().c_str());
    return 1;
  }
  std::printf("answers          : %zu (%s chase)\n", fed->answers.size(),
              fed->answers == chase->answers ? "== " : "!= ");
  std::printf("UCQ branches     : %zu\n", fed->branches);
  std::printf("sub-queries      : %zu\n", fed->subqueries);
  std::printf("messages         : %zu\n", fed->network.messages);
  std::printf("bytes            : %zu\n", fed->network.bytes);
  std::printf("sim. latency     : %.2f ms\n", fed->network.latency_ms);

  rps::Result<rps::FederatedQueryResult> central =
      federator.ExecuteCentralized(query);
  if (!central.ok()) {
    std::fprintf(stderr, "%s\n", central.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== Centralized baseline (ship all sources) ===\n");
  std::printf("answers          : %zu (%s chase)\n", central->answers.size(),
              central->answers == chase->answers ? "== " : "!= ");
  std::printf("messages         : %zu\n", central->network.messages);
  std::printf("bytes            : %zu\n", central->network.bytes);
  std::printf("sim. latency     : %.2f ms\n", central->network.latency_ms);

  // Topology ablation.
  std::printf("\n=== Topology ablation (same data, same query) ===\n");
  std::printf("%-10s %-10s %-12s %-12s %-12s\n", "topology", "answers",
              "subqueries", "messages", "latency_ms");
  for (auto kind : {rps::LodConfig::MappingTopology::kChain,
                    rps::LodConfig::MappingTopology::kStar,
                    rps::LodConfig::MappingTopology::kRing,
                    rps::LodConfig::MappingTopology::kRandom}) {
    rps::LodConfig variant = config;
    variant.topology = kind;
    std::unique_ptr<rps::RpsSystem> sys = rps::GenerateLod(variant);
    rps::GraphPatternQuery q = rps::LodDemoQuery(sys.get(), variant);
    rps::Topology t = rps::LodTopology(variant);
    rps::Federator fed_variant(sys.get(), t);
    rps::Result<rps::FederatedQueryResult> r = fed_variant.Execute(q);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %-10zu %-12zu %-12zu %-12.2f\n",
                t.Describe().c_str(), r->answers.size(), r->subqueries,
                r->network.messages, r->network.latency_ms);
  }
  return 0;
}
