// Quickstart: build a two-peer RDF Peer System, map one vocabulary onto
// the other, and ask for certain answers.
//
//   $ ./quickstart
//
// Demonstrates the three core steps of the public API:
//   1. load peer data (here: inline Turtle),
//   2. declare mappings (a graph mapping assertion + a sameAs link),
//   3. query with certain-answer semantics (Algorithm 1 under the hood).

#include <cstdio>

#include "rps/rps.h"

namespace {

constexpr const char* kLibraryPeer = R"(
@prefix lib:  <http://library.example.org/> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .

lib:moby_dick lib:writtenBy lib:melville .
lib:moby_dick owl:sameAs <http://books.example.org/MobyDick> .
)";

constexpr const char* kBookstorePeer = R"(
@prefix shop: <http://books.example.org/> .

shop:MobyDick shop:author shop:HermanMelville .
shop:MobyDick shop:price 15 .
)";

}  // namespace

int main() {
  rps::RpsSystem system;

  // 1. Load each peer's triples into its own stored graph.
  {
    rps::Result<size_t> n =
        rps::ParseTurtle(kLibraryPeer, &system.AddPeer("library"));
    if (!n.ok()) {
      std::fprintf(stderr, "library: %s\n", n.status().ToString().c_str());
      return 1;
    }
    n = rps::ParseTurtle(kBookstorePeer, &system.AddPeer("bookstore"));
    if (!n.ok()) {
      std::fprintf(stderr, "bookstore: %s\n", n.status().ToString().c_str());
      return 1;
    }
  }

  rps::Dictionary& dict = *system.dict();
  rps::VarPool& vars = *system.vars();

  // 2a. Equivalence mappings from the stored owl:sameAs links.
  size_t eq = system.AddEquivalencesFromSameAs();
  std::printf("registered %zu equivalence mapping(s) from owl:sameAs\n", eq);

  // 2b. A graph mapping assertion: the bookstore's `author` edge means the
  // same as the library's `writtenBy` edge:
  //   q(b, a) <- (b shop:author a)   ⇝   q(b, a) <- (b lib:writtenBy a)
  {
    rps::VarId b = vars.Intern("b");
    rps::VarId a = vars.Intern("a");
    rps::TermId author =
        dict.InternIri("http://books.example.org/author");
    rps::TermId written_by =
        dict.InternIri("http://library.example.org/writtenBy");
    rps::GraphMappingAssertion gma;
    gma.label = "bookstore->library";
    gma.from.head = {b, a};
    gma.from.body.Add(rps::TriplePattern{rps::PatternTerm::Var(b),
                                         rps::PatternTerm::Const(author),
                                         rps::PatternTerm::Var(a)});
    gma.to.head = {b, a};
    gma.to.body.Add(rps::TriplePattern{rps::PatternTerm::Var(b),
                                       rps::PatternTerm::Const(written_by),
                                       rps::PatternTerm::Var(a)});
    rps::Status st = system.AddGraphMapping(std::move(gma));
    if (!st.ok()) {
      std::fprintf(stderr, "mapping: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // 3. Query in the *library's* vocabulary. On the raw sources the
  // bookstore's knowledge is invisible; with certain-answer semantics the
  // mappings integrate it transparently.
  const char* query_text = R"(
    PREFIX lib: <http://library.example.org/>
    SELECT ?book ?writer
    WHERE { ?book lib:writtenBy ?writer }
  )";
  rps::Result<rps::ParsedQuery> parsed =
      rps::ParseSparql(query_text, &dict, &vars);
  if (!parsed.ok()) {
    std::fprintf(stderr, "query: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  rps::Result<std::vector<rps::GraphPatternQuery>> queries =
      parsed->ToQueries();
  if (!queries.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 queries.status().ToString().c_str());
    return 1;
  }
  const rps::GraphPatternQuery& query = (*queries)[0];

  rps::Graph raw = system.StoredDatabase();
  std::vector<rps::Tuple> raw_answers =
      rps::EvalQuery(raw, query, rps::QuerySemantics::kDropBlanks);
  std::printf("\nplain evaluation over the raw sources: %zu row(s)\n",
              raw_answers.size());
  std::printf("%s", rps::FormatAnswers(raw_answers, dict).c_str());

  rps::Result<rps::CertainAnswerResult> certain =
      rps::CertainAnswers(system, query);
  if (!certain.ok()) {
    std::fprintf(stderr, "answering failed: %s\n",
                 certain.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncertain answers under the RPS: %zu row(s)\n",
              certain->answers.size());
  std::printf("%s", rps::FormatAnswers(certain->answers, dict).c_str());
  std::printf(
      "\n(universal solution: %zu triples, %zu chase round(s), "
      "%zu blank(s) created)\n",
      certain->universal_solution_size, certain->chase_stats.rounds,
      certain->chase_stats.blanks_created);
  return 0;
}
