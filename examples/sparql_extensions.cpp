// Larger SPARQL subset over an RPS (§5 item 2): OPTIONAL and FILTER,
// evaluated against the materialized universal solution of the paper's
// running example.
//
//   $ ./sparql_extensions

#include <cstdio>

#include "rps/rps.h"

namespace {

int RunQuery(rps::RpsSystem& system, const char* title, const char* text) {
  std::printf("--- %s ---\n%s\n", title, text);
  rps::Result<rps::ParsedExtendedQuery> parsed =
      rps::ParseSparqlExtended(text, system.dict(), system.vars());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  rps::Result<rps::ExtendedAnswerResult> result =
      rps::ExtendedCertainAnswers(system, parsed->query);
  if (!result.ok()) {
    std::fprintf(stderr, "answer: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu row(s):\n", result->answers.size());
  for (const rps::PartialTuple& row : result->answers) {
    std::printf("  %s\n",
                rps::FormatPartialTuple(row, *system.dict()).c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main() {
  rps::PaperExample ex = rps::BuildPaperExample();
  rps::RpsSystem& system = *ex.system;

  std::printf(
      "Extended SPARQL over the paper's RPS (evaluated on the universal "
      "solution).\n\n");

  // 1. FILTER: numeric comparison over the integrated ages.
  if (RunQuery(system, "people older than 40 (FILTER)",
               R"(PREFIX voc: <http://example.org/voc/>
PREFIX DB1: <http://example.org/db1/>
SELECT ?x ?age
WHERE { DB1:Spiderman voc:starring ?z .
        ?z voc:artist ?x .
        ?x voc:age ?age .
        FILTER(?age > 40) })") != 0) {
    return 1;
  }

  // 2. OPTIONAL: films with their actors, and the actor's age if known.
  if (RunQuery(system, "films with actors, age optional (OPTIONAL)",
               R"(PREFIX voc: <http://example.org/voc/>
SELECT ?film ?person ?age
WHERE { ?film voc:actor ?person .
        OPTIONAL { ?person voc:age ?age } })") != 0) {
    return 1;
  }

  // 3. !BOUND: actors whose age the integrated sources do NOT know.
  if (RunQuery(system, "actors with unknown age (!BOUND)",
               R"(PREFIX voc: <http://example.org/voc/>
SELECT ?person
WHERE { ?film voc:actor ?person .
        OPTIONAL { ?person voc:age ?age }
        FILTER(!BOUND(?age)) })") != 0) {
    return 1;
  }

  // 4. isIRI over a fully unconstrained pattern.
  if (RunQuery(system, "every IRI-valued object of starring (isIRI)",
               R"(PREFIX voc: <http://example.org/voc/>
SELECT ?o
WHERE { ?s voc:artist ?o . FILTER(isIRI(?o)) })") != 0) {
    return 1;
  }

  std::printf(
      "Note: OPTIONAL / !BOUND are evaluated against the universal\n"
      "solution (best-effort completion); the conjunctive core keeps the\n"
      "paper's certain-answer semantics.\n");
  return 0;
}
