// rps_gen — synthetic Linked-Data workspace generator: produces on-disk
// peer Turtle files plus a mapping-DSL config, ready for rps_shell.
//
//   rps_gen [--peers=N] [--films=N] [--actors=N] [--overlap=F]
//           [--topology=chain|star|ring|random] [--seed=N]
//           [--attributes] [--out=DIR]
//
//   $ mkdir demo && ./rps_gen --peers=4 --films=20 --out=demo
//   $ ./rps_shell demo/config.rps -e 'SELECT ...'

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>

#include "rps/rps.h"

int main(int argc, char** argv) {
  rps::LodConfig config;
  config.num_peers = 3;
  config.films_per_peer = 10;
  config.actors_per_film = 2;
  config.overlap_fraction = 0.4;
  std::string out_dir = "rps_gen_out";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--peers=")) {
      config.num_peers = static_cast<size_t>(std::atoi(v));
    } else if (const char* v = value("--films=")) {
      config.films_per_peer = static_cast<size_t>(std::atoi(v));
    } else if (const char* v = value("--actors=")) {
      config.actors_per_film = static_cast<size_t>(std::atoi(v));
    } else if (const char* v = value("--overlap=")) {
      config.overlap_fraction = std::atof(v);
    } else if (const char* v = value("--seed=")) {
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--topology=")) {
      std::string t = v;
      if (t == "chain") {
        config.topology = rps::LodConfig::MappingTopology::kChain;
      } else if (t == "star") {
        config.topology = rps::LodConfig::MappingTopology::kStar;
      } else if (t == "ring") {
        config.topology = rps::LodConfig::MappingTopology::kRing;
      } else if (t == "random") {
        config.topology = rps::LodConfig::MappingTopology::kRandom;
      } else {
        std::fprintf(stderr, "unknown topology: %s\n", v);
        return 1;
      }
    } else if (arg == "--attributes") {
      config.with_attributes = true;
    } else if (const char* v = value("--out=")) {
      out_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rps_gen [--peers=N] [--films=N] [--actors=N] "
          "[--overlap=F] [--topology=chain|star|ring|random] [--seed=N] "
          "[--attributes] [--out=DIR]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  ::mkdir(out_dir.c_str(), 0755);  // best-effort; SaveRpsConfig reports

  rps::LodStats stats;
  std::unique_ptr<rps::RpsSystem> system = rps::GenerateLod(config, &stats);

  std::map<std::string, std::string> prefixes = {
      {"owl", "http://www.w3.org/2002/07/owl#"}};
  for (size_t p = 0; p < config.num_peers; ++p) {
    prefixes["p" + std::to_string(p)] =
        "http://peer" + std::to_string(p) + ".example.org/";
  }

  rps::Result<std::string> config_path =
      rps::SaveRpsConfig(*system, out_dir, prefixes);
  if (!config_path.ok()) {
    std::fprintf(stderr, "%s\n", config_path.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "generated %zu peers / %zu triples / %zu sameAs links / %zu "
      "mappings\nworkspace: %s\n",
      system->PeerCount(), stats.triples, stats.sameas_links,
      stats.graph_mappings, config_path->c_str());
  std::printf("try: rps_shell %s -e 'SELECT ?f ?x WHERE { ?f "
              "<http://peer0.example.org/actor> ?x }'\n",
              config_path->c_str());
  return 0;
}
