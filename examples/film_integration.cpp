// The paper's running example, end to end (Example 1, Example 2,
// Figures 1-2, Listing 1): three film/person sources, one graph mapping
// assertion Q2 ⇝ Q1 and sameAs-derived equivalence mappings; the Example 1
// SPARQL query returns nothing on the raw data and the full Listing 1
// result under certain-answer semantics.
//
//   $ ./film_integration

#include <cstdio>

#include "rps/rps.h"

namespace {

void PrintAnswers(const char* title, const std::vector<rps::Tuple>& answers,
                  const rps::Dictionary& dict) {
  std::printf("%s (%zu row(s)):\n", title, answers.size());
  if (answers.empty()) {
    std::printf("  (empty)\n");
    return;
  }
  std::string rendered = rps::FormatAnswers(answers, dict);
  // Indent.
  std::printf("  ");
  for (char c : rendered) {
    std::putchar(c);
    if (c == '\n') std::printf("  ");
  }
  std::printf("\r");
}

}  // namespace

int main() {
  rps::PaperExample ex = rps::BuildPaperExample();
  rps::RpsSystem& system = *ex.system;
  rps::Dictionary& dict = *system.dict();

  std::printf("=== Figure 1: the three sources ===\n");
  for (const auto& [name, graph] : system.dataset().graphs()) {
    std::printf("--- %s (%zu triples) ---\n%s", name.c_str(), graph.size(),
                rps::WriteTurtle(graph, ex.prefixes).c_str());
  }

  std::printf("\n=== The Example 1 query ===\n%s\n",
              rps::WriteSparql(rps::ToParsedQuery(ex.query), dict,
                               *system.vars(), ex.prefixes)
                  .c_str());

  rps::Graph raw = system.StoredDatabase();
  std::vector<rps::Tuple> raw_answers =
      rps::EvalQuery(raw, ex.query, rps::QuerySemantics::kDropBlanks);
  PrintAnswers("\nPlain SPARQL over the raw sources", raw_answers, dict);

  std::printf("\n=== Example 2: the RPS ===\n");
  std::printf("graph mapping assertions : %zu (Q2 ~> Q1)\n",
              system.graph_mappings().size());
  std::printf("equivalence mappings     : %zu (from owl:sameAs)\n",
              system.equivalences().size());

  // Figure 2: materialize the universal solution.
  rps::Graph universal(&dict);
  rps::Result<rps::RpsChaseStats> stats =
      rps::BuildUniversalSolution(system, &universal);
  if (!stats.ok()) {
    std::fprintf(stderr, "chase failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\n=== Figure 2: universal solution ===\n"
      "stored triples  : %zu\n"
      "inferred triples: %zu (%zu via equivalences, %zu GMA firing(s), "
      "%zu fresh blank(s))\n"
      "total           : %zu triples in %zu round(s)\n",
      raw.size(), stats->triples_added, stats->eq_triples,
      stats->gma_firings, stats->blanks_created, universal.size(),
      stats->rounds);

  // Listing 1.
  rps::Result<rps::CertainAnswerResult> redundant =
      rps::CertainAnswers(system, ex.query);
  if (!redundant.ok()) {
    std::fprintf(stderr, "%s\n", redundant.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== Listing 1 ===\n");
  PrintAnswers("#Result", redundant->answers, dict);

  rps::CertainAnswerOptions compact;
  compact.equivalence_mode = rps::EquivalenceMode::kUnionFind;
  compact.expand_equivalent_answers = false;
  rps::Result<rps::CertainAnswerResult> deduplicated =
      rps::CertainAnswers(system, ex.query, compact);
  if (!deduplicated.ok()) {
    std::fprintf(stderr, "%s\n", deduplicated.status().ToString().c_str());
    return 1;
  }
  std::printf("\n");
  PrintAnswers("#Result without redundancy", deduplicated->answers, dict);

  std::printf(
      "\nThe user queried Sources 1 and 3 only, yet Willem Dafoe's row "
      "arrived from Source 2\nthrough the mapping assertion — integration "
      "is transparent, as the paper promises.\n");
  return 0;
}
