// Provenance walkthrough: *why* is (DB2:Willem_Dafoe, "59") a certain
// answer of the Example 1 query? The explanation unfolds the witness in
// the universal solution back to the peers' stored triples — through the
// graph mapping assertion Q2 ⇝ Q1 and two owl:sameAs equivalences.
//
//   $ ./explain_demo

#include <cstdio>

#include "rps/rps.h"

int main() {
  rps::PaperExample ex = rps::BuildPaperExample();

  rps::Result<rps::CertainAnswerResult> answers =
      rps::CertainAnswers(*ex.system, ex.query);
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }
  std::printf("The Example 1 query has %zu certain answers.\n\n",
              answers->answers.size());

  for (const rps::Tuple& tuple : answers->answers) {
    rps::Result<rps::Explanation> explanation =
        rps::ExplainAnswer(*ex.system, ex.query, tuple);
    if (!explanation.ok()) {
      std::fprintf(stderr, "explain failed: %s\n",
                   explanation.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", explanation->text.c_str());
  }

  std::printf(
      "Every line bottoms out in a [stored by ...] fact: the integration\n"
      "is fully auditable back to the peers.\n");
  return 0;
}
