// rps_server — concurrent query serving over an RDF Peer System with
// snapshot isolation: the universal solution is chased once, then a
// QueryServer answers N simultaneous clients while an ingest feed
// appends live triples. Every query runs against the snapshot epoch it
// captured at execution start, so answers are always a consistent
// database state — never a torn scan.
//
//   rps_server [config.rps] [options]
//
//   -e 'SPARQL'        serve this conjunctive query (default: queries
//                      synthesized from the data — per-predicate scans,
//                      plus the film/actor join on synthetic data)
//   --films=N          synthetic workload size when no config is given
//                      (films per peer; default 40)
//   --serve-threads=T  server worker loops, i.e. queries in flight
//                      (default 4)
//   --clients=N        closed-loop client threads (default 2*T)
//   --requests=R       requests issued per client (default 25)
//   --ingest=K         live triples to append while serving (default 512;
//                      0 disables the feed)
//   --deadline-ms=X    per-query deadline; late queries return their
//                      sound partial answer flagged budget_exceeded
//
// Example:
//   rps_server --serve-threads=8 --clients=16 --ingest=2048

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "rps/rps.h"

namespace {

struct ClientStats {
  size_t completed = 0;
  size_t budget_exceeded = 0;
  size_t rejected = 0;
  double total_latency_ms = 0.0;
  size_t min_epoch = SIZE_MAX;
  size_t max_epoch = 0;
};

size_t SizeArg(const std::string& arg, const char* prefix, size_t fallback) {
  if (arg.rfind(prefix, 0) != 0) return fallback;
  int parsed = std::atoi(arg.c_str() + std::strlen(prefix));
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string query_text;
  size_t films = 40;
  size_t serve_threads = 4;
  size_t clients = 0;  // 0 = 2 * serve_threads
  size_t requests = 25;
  size_t ingest_total = 512;
  double deadline_ms = 0.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-e" && i + 1 < argc) {
      query_text = argv[++i];
    } else if (arg.rfind("--films=", 0) == 0) {
      films = SizeArg(arg, "--films=", films);
    } else if (arg.rfind("--serve-threads=", 0) == 0) {
      serve_threads = SizeArg(arg, "--serve-threads=", serve_threads);
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = SizeArg(arg, "--clients=", clients);
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests = SizeArg(arg, "--requests=", requests);
    } else if (arg.rfind("--ingest=", 0) == 0) {
      ingest_total = static_cast<size_t>(
          std::atoi(arg.c_str() + std::strlen("--ingest=")));
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::atof(arg.c_str() + std::strlen("--deadline-ms="));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rps_server [config.rps] [-e 'SPARQL'] [--films=N]\n"
          "       [--serve-threads=T] [--clients=N] [--requests=R]\n"
          "       [--ingest=K] [--deadline-ms=X]\n");
      return 0;
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (clients == 0) clients = 2 * serve_threads;

  // 1. Load or synthesize the peer system.
  std::unique_ptr<rps::RpsSystem> system;
  rps::LodConfig lod;
  bool synthetic = config_path.empty();
  if (synthetic) {
    lod.num_peers = 4;
    lod.films_per_peer = films;
    lod.seed = 7;
    system = rps::GenerateLod(lod);
    std::printf("synthetic LOD system: %zu peers, %zu films/peer\n",
                lod.num_peers, lod.films_per_peer);
  } else {
    rps::Result<std::unique_ptr<rps::RpsSystem>> loaded =
        rps::LoadRpsConfigFile(config_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "config: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    system = std::move(*loaded);
    std::printf("loaded %zu peer(s), %zu stored triple(s)\n",
                system->PeerCount(), system->dataset().TotalTriples());
  }
  rps::Dictionary& dict = *system->dict();

  // 2. Chase once, single-threaded — the server takes over afterwards.
  rps::Graph universal(system->dict());
  rps::Result<rps::RpsChaseStats> chase =
      rps::BuildUniversalSolution(*system, &universal);
  if (!chase.ok()) {
    std::fprintf(stderr, "chase: %s\n", chase.status().ToString().c_str());
    return 1;
  }
  std::printf("universal solution: %zu triple(s) (%zu chase round(s))\n",
              universal.size(), chase->rounds);

  // 3. The query mix.
  std::vector<rps::GraphPatternQuery> queries;
  if (!query_text.empty()) {
    rps::Result<rps::ParsedQuery> parsed =
        rps::ParseSparql(query_text, system->dict(), system->vars());
    if (!parsed.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    rps::Result<std::vector<rps::GraphPatternQuery>> qs =
        parsed->ToQueries();
    if (!qs.ok() || qs->size() != 1) {
      std::fprintf(stderr, "query: expected a single conjunctive query\n");
      return 1;
    }
    queries.push_back((*qs)[0]);
  } else {
    if (synthetic) queries.push_back(rps::LodDemoQuery(system.get(), lod));
    std::set<rps::TermId> predicates;
    for (const rps::Triple& t : universal.triples()) {
      if (predicates.insert(t.p).second && predicates.size() >= 4) break;
    }
    for (rps::TermId p : predicates) {
      rps::GraphPatternQuery q;
      rps::VarId x = system->vars()->Fresh("srv_x");
      rps::VarId y = system->vars()->Fresh("srv_y");
      q.head = {x, y};
      q.body.Add(rps::TriplePattern{rps::PatternTerm::Var(x),
                                    rps::PatternTerm::Const(p),
                                    rps::PatternTerm::Var(y)});
      queries.push_back(std::move(q));
    }
  }
  std::printf("serving %zu quer%s with %zu worker(s), %zu client(s) x %zu "
              "request(s), ingest %zu\n\n",
              queries.size(), queries.size() == 1 ? "y" : "ies",
              serve_threads, clients, requests, ingest_total);

  // 4. Serve.
  rps::obs::MetricsSnapshot before = rps::obs::Registry::Global().Snapshot();
  rps::QueryServerOptions options;
  options.worker_threads = serve_threads;
  options.default_deadline_ms = deadline_ms;
  rps::QueryServer server(&universal, options);

  rps::TermId live_pred = universal.empty()
                              ? dict.InternIri("urn:rps:server:pred")
                              : universal.triples().front().p;
  std::atomic<bool> stop_ingest{false};
  std::thread ingester([&] {
    size_t sent = 0;
    while (sent < ingest_total &&
           !stop_ingest.load(std::memory_order_acquire)) {
      std::vector<rps::Triple> batch;
      size_t chunk = std::min<size_t>(8, ingest_total - sent);
      for (size_t j = 0; j < chunk; ++j, ++sent) {
        batch.push_back(rps::Triple{
            dict.InternIri("urn:rps:server:s" + std::to_string(sent)),
            live_pred,
            dict.InternIri("urn:rps:server:o" + std::to_string(sent))});
      }
      server.Ingest(batch);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<ClientStats> stats(clients);
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  auto wall_start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (size_t r = 0; r < requests; ++r) {
        rps::Result<rps::QueryResponse> response =
            server.Execute(queries[(c + r) % queries.size()]);
        if (!response.ok()) {
          ++stats[c].rejected;
          continue;
        }
        ++stats[c].completed;
        if (response->budget_exceeded) ++stats[c].budget_exceeded;
        stats[c].total_latency_ms += response->latency_ms;
        stats[c].min_epoch = std::min(stats[c].min_epoch, response->epoch);
        stats[c].max_epoch = std::max(stats[c].max_epoch, response->epoch);
      }
    });
  }
  for (std::thread& t : client_threads) t.join();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  stop_ingest.store(true, std::memory_order_release);
  ingester.join();
  server.Stop();

  // 5. Report.
  ClientStats total;
  total.min_epoch = SIZE_MAX;
  for (const ClientStats& s : stats) {
    total.completed += s.completed;
    total.budget_exceeded += s.budget_exceeded;
    total.rejected += s.rejected;
    total.total_latency_ms += s.total_latency_ms;
    total.min_epoch = std::min(total.min_epoch, s.min_epoch);
    total.max_epoch = std::max(total.max_epoch, s.max_epoch);
  }
  std::printf("completed %zu (rejected %zu, over deadline %zu) in %.1f ms "
              "=> %.1f qps\n",
              total.completed, total.rejected, total.budget_exceeded,
              wall_ms,
              wall_ms > 0 ? 1000.0 * total.completed / wall_ms : 0.0);
  if (total.completed > 0) {
    std::printf("mean latency %.2f ms; served epochs %zu..%zu (graph grew "
                "to %zu)\n",
                total.total_latency_ms / total.completed, total.min_epoch,
                total.max_epoch, server.epoch());
  }
  std::printf("\nserver metrics\n%s",
              rps::obs::Registry::Global()
                  .Snapshot()
                  .DeltaSince(before)
                  .ToText("  ")
                  .c_str());
  return 0;
}
