// Query rewriting walkthrough (§4 of the paper):
//  * Listing 2 — a Boolean query rewritten under the RPS mappings turns
//    from false (raw sources) to true (rewritten union);
//  * Proposition 2 — the Example 2 mapping set is linear, so a perfect
//    UCQ rewriting exists and matches the chase;
//  * Proposition 3 — the transitive-closure mapping admits no finite
//    rewriting: the UCQ keeps growing with the budget while the chase
//    answers exactly.
//
//   $ ./rewriting_demo

#include <cstdio>

#include "rps/rps.h"

int main() {
  rps::PaperExample ex = rps::BuildPaperExample();
  rps::RpsSystem& system = *ex.system;
  rps::Dictionary& dict = *system.dict();
  rps::VarPool& vars = *system.vars();

  std::printf("=== Listing 2: Boolean query rewriting ===\n");
  std::printf(
      "Ask whether (DB1:Toby_Maguire, \"39\") is a certain answer of the "
      "Example 1 query.\n\n");

  rps::RpsRewriteOptions literal_mode;
  literal_mode.equivalence_mode =
      rps::EquivalenceRewriteMode::kTgdResolution;
  rps::Result<rps::BooleanRewriteCheck> check = rps::CheckTupleByRewriting(
      system, ex.query, {ex.db1_toby, ex.age_39}, literal_mode);
  if (!check.ok()) {
    std::fprintf(stderr, "%s\n", check.status().ToString().c_str());
    return 1;
  }

  std::printf("#Boolean query\n%s=> %s\n\n",
              rps::WriteSparql(rps::ToParsedQuery(check->boolean_query),
                               dict, vars, ex.prefixes)
                  .c_str(),
              check->value_before ? "true" : "false");

  std::printf("#Rewritten query (%zu branch(es), %zu explored, %zu pruned)\n",
              check->rewritten_union.size(), check->stats.generated,
              check->stats.pruned);
  // Print the union as one ASK (may be long; show up to 6 branches).
  size_t shown = std::min<size_t>(check->rewritten_union.size(), 6);
  std::vector<rps::GraphPatternQuery> sample(
      check->rewritten_union.begin(), check->rewritten_union.begin() + shown);
  std::printf("%s", rps::WriteSparql(rps::ToParsedQuery(sample), dict, vars,
                                     ex.prefixes)
                        .c_str());
  if (shown < check->rewritten_union.size()) {
    std::printf("  ... (%zu more branches)\n",
                check->rewritten_union.size() - shown);
  }
  std::printf("=> %s\n", check->value_after ? "true" : "false");

  std::printf("\n=== Proposition 2: perfect rewriting (linear G) ===\n");
  rps::Result<rps::RewriteAnswers> rewritten =
      rps::CertainAnswersViaRewriting(system, ex.query);
  rps::Result<rps::CertainAnswerResult> chased =
      rps::CertainAnswers(system, ex.query);
  if (!rewritten.ok() || !chased.ok()) {
    std::fprintf(stderr, "answering failed\n");
    return 1;
  }
  std::printf(
      "rewriting complete: %s | answers via rewriting: %zu | via chase: %zu "
      "| equal: %s\n",
      rewritten->stats.complete ? "yes" : "no", rewritten->answers.size(),
      chased->answers.size(),
      rewritten->answers == chased->answers ? "yes" : "no");

  std::printf("\n=== Proposition 3: no FO rewriting in general ===\n");
  std::printf(
      "Mapping: (x A z) AND (z A y) ~> (x A y)  over an A-chain of 10 "
      "edges.\n");
  std::unique_ptr<rps::RpsSystem> tc =
      rps::GenerateTransitiveClosureSystem(10);
  rps::GraphPatternQuery tq = rps::TransitiveQuery(tc.get());

  rps::Result<rps::CertainAnswerResult> tc_chase =
      rps::CertainAnswers(*tc, tq);
  if (!tc_chase.ok()) {
    std::fprintf(stderr, "%s\n", tc_chase.status().ToString().c_str());
    return 1;
  }
  std::printf("chase: %zu certain answers (= 10*11/2, the closure)\n",
              tc_chase->answers.size());

  std::printf("%-14s %-12s %-10s\n", "UCQ budget", "branches", "complete");
  for (size_t budget : {16u, 64u, 256u, 1024u}) {
    rps::RpsRewriteOptions options;
    options.rewrite.max_queries = budget;
    options.rewrite.minimize = false;
    rps::Result<rps::RpsRewriteResult> r =
        rps::RewriteGraphQuery(*tc, tq, options);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14zu %-12zu %-10s\n", budget, r->ucq.size(),
                r->stats.complete ? "yes" : "no");
  }
  std::printf(
      "The union never converges — exactly Proposition 3's non-FO-"
      "rewritability.\n");
  return 0;
}
