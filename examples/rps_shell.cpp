// rps_shell — the §5 prototype as a command-line tool: load an RDF Peer
// System from a mapping-DSL configuration, then answer SPARQL queries
// over it with certain-answer semantics.
//
//   rps_shell <config.rps> [query.sparql | -e 'SPARQL'] [options]
//
//   --engine=chase|unionfind|rewrite|datalog|federated   answering engine
//   --threads=N                                parallel chase / evaluation
//                                              engine (N > 1; chase,
//                                              unionfind and federated
//                                              engines)
//   --extended                                 allow OPTIONAL / FILTER
//   --show-mappings                            print the loaded system
//   --explain                                  print an EXPLAIN report:
//                                              chase rounds, facts derived,
//                                              nulls created, per-mapping
//                                              TGD firings, the join plan
//                                              of the final query (operators,
//                                              estimated vs actual rows),
//                                              metrics, trace
//   --no-plan                                  force the per-binding probe
//                                              engine (disable the
//                                              cost-based join planner;
//                                              chase / unionfind engines)
//   --faults=SPEC                              federated engine only:
//                                              deterministic fault
//                                              injection, e.g.
//                                              drop:0.3,seed:42,crash:1
//   --retries=N --timeout-ms=X                 federated retry policy
//   --save=DIR                                 snapshot every peer graph
//                                              to DIR/<peer>.rps
//                                              (docs/PERSISTENCE.md)
//   --load=DIR                                 replace each peer's parsed
//                                              triples with its snapshot
//                                              from DIR, memory-mapped
//                                              (the peer restart path)
//
// Examples:
//   rps_shell data/paper.rps data/listing1.sparql
//   rps_shell data/paper.rps data/listing1.sparql --explain
//   rps_shell data/paper.rps -e 'SELECT ?x ?y WHERE { ... }' --engine=rewrite
//   rps_shell data/paper.rps data/listing1.sparql --engine=federated
//       --faults=drop:0.3,seed:7 --retries=2 --timeout-ms=50

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rps/rps.h"

namespace {

int Usage() {
  std::printf(
      "usage: rps_shell <config.rps> [query.sparql | -e 'SPARQL'] "
      "[--engine=chase|unionfind|rewrite|datalog|federated] [--threads=N] "
      "[--extended] [--show-mappings] [--explain] [--no-plan] [--faults=SPEC] "
      "[--retries=N] [--timeout-ms=X] [--save=DIR] [--load=DIR]\n\n"
      "Loads an RDF Peer System from a mapping-DSL configuration and\n"
      "answers SPARQL queries with certain-answer semantics.\n"
      "The federated engine simulates the paper's SS5 prototype over a\n"
      "star topology; --faults injects deterministic failures\n"
      "(drop:P,seed:S,jitter:MS,crash:I|J,crashp:P,crashafter:I=K,\n"
      "slow:I|J,slowp:P,slowf:F) and the retry/backoff/hedging pipeline\n"
      "reports degraded peers and a completeness marker.\n"
      "--save/--load persist the peer graphs as mmap-able snapshots\n"
      "(docs/PERSISTENCE.md): --save writes DIR/<peer>.rps atomically,\n"
      "--load serves each peer straight from its snapshot instead of the\n"
      "config's parsed triples.\n"
      "Try: rps_shell data/paper.rps data/listing1.sparql\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();

  std::string config_path;
  std::string query_text;
  std::string engine = "chase";
  std::string fault_spec;
  std::string save_dir;
  std::string load_dir;
  size_t threads = 1;
  bool extended = false;
  bool show_mappings = false;
  bool explain = false;
  bool use_plan = true;
  rps::RetryPolicy retry;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-e" && i + 1 < argc) {
      query_text = argv[++i];
    } else if (arg.rfind("--engine=", 0) == 0) {
      engine = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      int parsed = std::atoi(arg.c_str() + 10);
      threads = parsed > 1 ? static_cast<size_t>(parsed) : 1;
    } else if (arg.rfind("--faults=", 0) == 0) {
      fault_spec = arg.substr(9);
    } else if (arg.rfind("--retries=", 0) == 0) {
      int parsed = std::atoi(arg.c_str() + 10);
      retry.max_retries = parsed > 0 ? static_cast<size_t>(parsed) : 0;
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      double parsed = std::atof(arg.c_str() + 13);
      if (parsed > 0.0) retry.timeout_ms = parsed;
    } else if (arg.rfind("--save=", 0) == 0) {
      save_dir = arg.substr(7);
    } else if (arg.rfind("--load=", 0) == 0) {
      load_dir = arg.substr(7);
    } else if (arg == "--extended") {
      extended = true;
    } else if (arg == "--show-mappings") {
      show_mappings = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--no-plan") {
      use_plan = false;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (config_path.empty()) {
      config_path = arg;
    } else if (query_text.empty()) {
      rps::Result<std::string> content = rps::ReadFileToString(arg);
      if (!content.ok()) {
        std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
        return 1;
      }
      query_text = *content;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (config_path.empty()) return Usage();

  rps::Result<std::unique_ptr<rps::RpsSystem>> loaded =
      rps::LoadRpsConfigFile(config_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "config: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  rps::RpsSystem& system = **loaded;
  std::printf("loaded %zu peer(s), %zu triple(s), %zu mapping(s), "
              "%zu equivalence(s)\n",
              system.PeerCount(), system.dataset().TotalTriples(),
              system.graph_mappings().size(), system.equivalences().size());

  if (!load_dir.empty()) {
    // Peer restart path: throw away each peer's parsed triples and serve
    // it from its snapshot instead. The config already interned every
    // term, so the snapshot's id remap is the identity and the graphs
    // come back memory-mapped.
    std::vector<std::string> names;
    for (const auto& [name, graph] : system.dataset().graphs()) {
      names.push_back(name);
    }
    for (const std::string& name : names) {
      rps::Graph* graph = system.dataset().Find(name);
      *graph = rps::Graph(system.dict());
      rps::Result<rps::storage::LoadReport> report = rps::storage::LoadGraph(
          rps::storage::SnapshotPath(load_dir, name), graph);
      if (!report.ok()) {
        std::fprintf(stderr, "load %s: %s\n", name.c_str(),
                     report.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded %s: %zu triple(s) from %llu byte(s) [%s]\n",
                  name.c_str(), report->triples,
                  static_cast<unsigned long long>(report->bytes_on_disk),
                  report->mapped ? "mapped" : "materialized");
    }
  }
  if (!save_dir.empty()) {
    rps::Status dir_status = rps::storage::EnsureDir(save_dir);
    if (!dir_status.ok()) {
      std::fprintf(stderr, "save: %s\n", dir_status.ToString().c_str());
      return 1;
    }
    for (const auto& [name, graph] : system.dataset().graphs()) {
      std::string path = rps::storage::SnapshotPath(save_dir, name);
      rps::Status status = rps::storage::SaveGraph(path, graph);
      if (!status.ok()) {
        std::fprintf(stderr, "save %s: %s\n", name.c_str(),
                     status.ToString().c_str());
        return 1;
      }
      std::printf("saved %s: %zu triple(s) -> %s\n", name.c_str(),
                  graph.size(), path.c_str());
    }
  }

  if (show_mappings) {
    for (const rps::GraphMappingAssertion& gma : system.graph_mappings()) {
      std::printf("MAPPING %s:\n  FROM %s\n  TO   %s\n",
                  gma.label.c_str(),
                  rps::ToString(gma.from, *system.dict(), *system.vars())
                      .c_str(),
                  rps::ToString(gma.to, *system.dict(), *system.vars())
                      .c_str());
    }
    for (const rps::EquivalenceMapping& eq : system.equivalences()) {
      std::printf("EQUIV %s %s\n",
                  system.dict()->ToString(eq.left).c_str(),
                  system.dict()->ToString(eq.right).c_str());
    }
  }
  if (query_text.empty()) return 0;

  if (extended) {
    if (explain) {
      std::fprintf(stderr,
                   "--explain does not support --extended queries yet\n");
      return 1;
    }
    rps::Result<rps::ParsedExtendedQuery> parsed = rps::ParseSparqlExtended(
        query_text, system.dict(), system.vars());
    if (!parsed.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    rps::CertainAnswerOptions ext_options;
    ext_options.chase.threads = threads;
    ext_options.chase.eval.threads = threads;
    rps::Result<rps::ExtendedAnswerResult> result =
        rps::ExtendedCertainAnswers(system, parsed->query, ext_options);
    if (!result.ok()) {
      std::fprintf(stderr, "answering: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu row(s)\n", result->answers.size());
    for (const rps::PartialTuple& row : result->answers) {
      std::printf("%s\n",
                  rps::FormatPartialTuple(row, *system.dict()).c_str());
    }
    return 0;
  }

  rps::Result<rps::ParsedQuery> parsed =
      rps::ParseSparql(query_text, system.dict(), system.vars());
  if (!parsed.ok()) {
    std::fprintf(stderr, "query: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  rps::Result<std::vector<rps::GraphPatternQuery>> queries =
      parsed->ToQueries();
  if (!queries.ok() || queries->size() != 1) {
    std::fprintf(stderr, "query: expected a single conjunctive query\n");
    return 1;
  }
  const rps::GraphPatternQuery& query = (*queries)[0];

  if (explain) {
    rps::ExplainOptions options;
    if (engine == "chase") {
      options.engine = rps::ExplainEngine::kChase;
    } else if (engine == "unionfind") {
      options.engine = rps::ExplainEngine::kUnionFind;
    } else if (engine == "rewrite") {
      options.engine = rps::ExplainEngine::kRewrite;
    } else {
      std::fprintf(stderr, "--explain supports engines chase, unionfind "
                           "and rewrite (got: %s)\n", engine.c_str());
      return 1;
    }
    options.chase.chase.threads = threads;
    options.chase.chase.eval.threads = threads;
    options.chase.chase.eval.use_plan = use_plan;
    rps::Result<rps::ExplainReport> report =
        rps::ExplainQuery(system, query, options);
    if (!report.ok()) {
      std::fprintf(stderr, "answering: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->text.c_str());
    std::printf("%s", rps::FormatAnswers(report->answers,
                                         *system.dict()).c_str());
    return 0;
  }

  std::vector<rps::Tuple> answers;
  if (engine == "chase" || engine == "unionfind") {
    rps::CertainAnswerOptions options;
    if (engine == "unionfind") {
      options.equivalence_mode = rps::EquivalenceMode::kUnionFind;
    }
    options.chase.threads = threads;
    options.chase.eval.threads = threads;
    options.chase.eval.use_plan = use_plan;
    rps::Result<rps::CertainAnswerResult> result =
        rps::CertainAnswers(system, query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "answering: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    answers = std::move(result->answers);
  } else if (engine == "rewrite") {
    rps::Result<rps::RewriteAnswers> result =
        rps::CertainAnswersViaRewriting(system, query);
    if (!result.ok()) {
      std::fprintf(stderr, "answering: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (!result->stats.complete) {
      std::fprintf(stderr,
                   "warning: rewriting hit its budget; answers may be "
                   "incomplete (Proposition 3 territory)\n");
    }
    answers = std::move(result->answers);
  } else if (engine == "datalog") {
    rps::Result<std::vector<rps::Tuple>> result =
        rps::DatalogCertainAnswers(system, query);
    if (!result.ok()) {
      std::fprintf(stderr, "answering: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    answers = std::move(*result);
  } else if (engine == "federated") {
    // The SS5 prototype: rewrite the query and execute it over the peers
    // as simulated endpoints on a star topology, with optional fault
    // injection and the retry/backoff/hedging pipeline.
    rps::FederationOptions options;
    options.threads = threads;
    options.retry = retry;
    if (!fault_spec.empty()) {
      rps::Result<rps::FaultOptions> faults =
          rps::ParseFaultSpec(fault_spec);
      if (!faults.ok()) {
        std::fprintf(stderr, "%s\n", faults.status().ToString().c_str());
        return 1;
      }
      options.faults = *faults;
    }
    rps::Federator federator(&system,
                             rps::Topology::Star(system.PeerCount()));
    rps::Result<rps::FederatedQueryResult> result =
        federator.Execute(query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "answering: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("federation: %zu subquery(ies), %zu message(s), "
                "%zu byte(s), %.2f ms simulated\n",
                result->subqueries, result->network.messages,
                result->network.bytes, result->network.latency_ms);
    if (result->retries + result->timeouts + result->hedged > 0) {
      std::printf("federation: %zu retry(ies), %zu timeout(s), "
                  "%zu hedged\n",
                  result->retries, result->timeouts, result->hedged);
    }
    std::printf("completeness: %s", rps::ToString(result->completeness));
    if (!result->degraded_peers.empty()) {
      std::printf(" (degraded:");
      for (const std::string& peer : result->degraded_peers) {
        std::printf(" %s", peer.c_str());
      }
      std::printf(")");
    }
    std::printf("\n");
    answers = std::move(result->answers);
  } else {
    std::fprintf(stderr, "unknown engine: %s\n", engine.c_str());
    return 1;
  }

  std::printf("%zu row(s)\n", answers.size());
  std::printf("%s", rps::FormatAnswers(answers, *system.dict()).c_str());
  return 0;
}
