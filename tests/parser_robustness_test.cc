// Fuzz-lite robustness sweeps: the parsers must never crash or hang on
// mutated input — every malformed document yields a Status, every valid
// prefix either parses or fails cleanly.

#include <gtest/gtest.h>

#include "parser/ntriples.h"
#include "parser/sparql.h"
#include "parser/turtle.h"
#include "util/rng.h"

namespace rps {
namespace {

const char* kValidNTriples =
    "<http://x/s> <http://x/p> \"lit with \\\"escape\\\"\"@en .\n"
    "_:b1 <http://x/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
    "<http://x/s> <http://x/q> _:b1 .\n";

const char* kValidTurtle =
    "@prefix ex: <http://example.org/> .\n"
    "@base <http://example.org/base/> .\n"
    "ex:film ex:starring ex:a , ex:b ; ex:year 2002 ; a ex:Film .\n"
    "<rel> ex:p \"x\"@en , true , 3.14 .\n"
    "[] ex:p _:b0 .\n";

const char* kValidSparql =
    "PREFIX ex: <http://example.org/>\n"
    "SELECT ?x ?y WHERE { ex:s ex:p ?z . ?z ex:q ?x . ?x ex:r ?y }";

const char* kValidExtendedSparql =
    "PREFIX ex: <http://example.org/>\n"
    "SELECT ?x WHERE { ?x ex:p ?y . OPTIONAL { ?x ex:q ?e } "
    "FILTER(?y > 3) FILTER(!BOUND(?e)) }";

// Mutates `doc` with `count` random single-character edits.
std::string Mutate(const std::string& doc, Rng* rng, int count) {
  std::string out = doc;
  const char charset[] = "<>\"\\{}().?@:#^_ abz0129\n";
  for (int i = 0; i < count && !out.empty(); ++i) {
    size_t pos = rng->Index(out.size());
    switch (rng->Index(3)) {
      case 0:  // replace
        out[pos] = charset[rng->Index(sizeof(charset) - 1)];
        break;
      case 1:  // delete
        out.erase(pos, 1);
        break;
      case 2:  // insert
        out.insert(pos, 1, charset[rng->Index(sizeof(charset) - 1)]);
        break;
    }
  }
  return out;
}

TEST(ParserRobustnessTest, NTriplesSurvivesMutations) {
  Rng rng(1001);
  for (int trial = 0; trial < 500; ++trial) {
    std::string doc = Mutate(kValidNTriples, &rng, 1 + trial % 5);
    Dictionary dict;
    Graph graph(&dict);
    Result<size_t> result = ParseNTriples(doc, &graph);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError)
          << result.status() << "\ninput: " << doc;
    }
  }
}

TEST(ParserRobustnessTest, TurtleSurvivesMutations) {
  Rng rng(1002);
  for (int trial = 0; trial < 500; ++trial) {
    std::string doc = Mutate(kValidTurtle, &rng, 1 + trial % 5);
    Dictionary dict;
    Graph graph(&dict);
    Result<size_t> result = ParseTurtle(doc, &graph);
    if (!result.ok()) {
      // Mutations can also produce invalid-triple shapes (literal
      // subject via prefixed-name mangling) — any error code is fine as
      // long as the parser returns.
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(ParserRobustnessTest, SparqlSurvivesMutations) {
  Rng rng(1003);
  for (int trial = 0; trial < 500; ++trial) {
    std::string doc = Mutate(kValidSparql, &rng, 1 + trial % 5);
    Dictionary dict;
    VarPool vars;
    Result<ParsedQuery> result = ParseSparql(doc, &dict, &vars);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(ParserRobustnessTest, ExtendedSparqlSurvivesMutations) {
  Rng rng(1004);
  for (int trial = 0; trial < 500; ++trial) {
    std::string doc = Mutate(kValidExtendedSparql, &rng, 1 + trial % 5);
    Dictionary dict;
    VarPool vars;
    Result<ParsedExtendedQuery> result =
        ParseSparqlExtended(doc, &dict, &vars);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(ParserRobustnessTest, TruncationsNeverCrash) {
  for (const std::string& doc :
       {std::string(kValidNTriples), std::string(kValidTurtle),
        std::string(kValidSparql), std::string(kValidExtendedSparql)}) {
    for (size_t len = 0; len <= doc.size(); ++len) {
      std::string prefix = doc.substr(0, len);
      Dictionary dict;
      Graph graph(&dict);
      VarPool vars;
      (void)ParseNTriples(prefix, &graph);
      Graph graph2(&dict);
      (void)ParseTurtle(prefix, &graph2);
      (void)ParseSparql(prefix, &dict, &vars);
      (void)ParseSparqlExtended(prefix, &dict, &vars);
    }
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, PathologicalInputs) {
  Dictionary dict;
  VarPool vars;
  for (const char* doc : {
           "", " ", "\n\n\n", "####", "<", ">", "\"", "\\", "{{{{", "}}}}",
           "@prefix", "@prefix :", "PREFIX :", "SELECT", "ASK", "......",
           "_:", "?", "<>" , "\"\"", "(((", "a a a .",
       }) {
    Graph graph(&dict);
    (void)ParseNTriples(doc, &graph);
    Graph graph2(&dict);
    (void)ParseTurtle(doc, &graph2);
    (void)ParseSparql(doc, &dict, &vars);
    (void)ParseSparqlExtended(doc, &dict, &vars);
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, DeeplyNestedUnionsBounded) {
  // 200 levels of nested groups must not blow the stack.
  std::string query = "ASK ";
  for (int i = 0; i < 200; ++i) query += "{";
  query += " <http://s> <http://p> ?x ";
  for (int i = 0; i < 200; ++i) query += "}";
  Dictionary dict;
  VarPool vars;
  Result<ParsedQuery> result = ParseSparql(query, &dict, &vars);
  // Accepts (nested singleton groups) or rejects — either way, returns.
  if (result.ok()) {
    EXPECT_EQ(result->branches.size(), 1u);
  }
}

TEST(ParserRobustnessTest, LongTokensHandled) {
  std::string long_iri = "<http://x/" + std::string(100000, 'a') + ">";
  std::string doc = long_iri + " " + long_iri + " " + long_iri + " .";
  Dictionary dict;
  Graph graph(&dict);
  Result<size_t> result = ParseNTriples(doc, &graph);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(*result, 1u);
}

}  // namespace
}  // namespace rps
