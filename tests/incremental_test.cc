#include "peer/incremental.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/paper_example.h"

namespace rps {
namespace {

TEST(IncrementalTest, RequiresInitialize) {
  PaperExample ex = BuildPaperExample();
  IncrementalUniversalSolution inc(ex.system.get());
  EXPECT_EQ(inc.AddTriple("source1", Triple{0, 0, 0}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(inc.Initialize().ok());
  EXPECT_EQ(inc.Initialize().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(IncrementalTest, TripleInsertionMatchesFullRebuild) {
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());

  // New fact: James Franco also acted in Spiderman (Source 2 dialect).
  TermId film =
      dict.InternIri(std::string(kDb2Ns) + "Spiderman2002");
  TermId franco = dict.InternIri(std::string(kDb2Ns) + "James_Franco");
  Result<RpsChaseStats> delta =
      inc.AddTriple("source2", Triple{film, ex.prop_actor, franco});
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_GT(delta->triples_added, 0u);  // the GMA fires for the new actor

  // The incrementally maintained J is bit-identical (modulo fresh blank
  // labels) to a full rebuild: compare sizes and query answers.
  Graph rebuilt(ex.system->dict());
  ASSERT_TRUE(BuildUniversalSolution(*ex.system, &rebuilt).ok());
  EXPECT_EQ(inc.universal().size(), rebuilt.size());

  std::vector<Tuple> inc_answers = inc.Answer(ex.query);
  std::vector<Tuple> rebuilt_answers =
      EvalQuery(rebuilt, ex.query, QuerySemantics::kDropBlanks);
  SortTuples(&rebuilt_answers);
  EXPECT_EQ(inc_answers, rebuilt_answers);
}

TEST(IncrementalTest, DuplicateInsertIsNoop) {
  PaperExample ex = BuildPaperExample();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());
  size_t before = inc.universal().size();
  const Triple existing = ex.system->dataset()
                              .Find("source2")
                              ->triples()
                              .front();
  Result<RpsChaseStats> delta = inc.AddTriple("source2", existing);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->triples_added, 0u);
  EXPECT_EQ(inc.universal().size(), before);
}

TEST(IncrementalTest, UnknownPeerRejected) {
  PaperExample ex = BuildPaperExample();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());
  EXPECT_EQ(inc.AddTriple("nope", Triple{0, 0, 0}).status().code(),
            StatusCode::kNotFound);
}

TEST(IncrementalTest, NewEquivalencePropagates) {
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());

  // Late-arriving sameAs: DB2:Pleasantville is the same film as a new
  // DB1 IRI. Its actor edges must be copied onto the DB1 name.
  TermId pleasantville_db2 =
      dict.InternIri(std::string(kDb2Ns) + "Pleasantville");
  TermId pleasantville_db1 =
      dict.InternIri(std::string(kDb1Ns) + "Pleasantville");
  Result<RpsChaseStats> delta =
      inc.AddEquivalence(pleasantville_db1, pleasantville_db2);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(inc.universal()
                   .MatchAll(pleasantville_db1, ex.prop_actor, std::nullopt)
                   .empty());
  // Still consistent with a full rebuild.
  EXPECT_EQ(inc.universal().size(),
            [&] {
              Graph rebuilt(ex.system->dict());
              EXPECT_TRUE(
                  BuildUniversalSolution(*ex.system, &rebuilt).ok());
              return rebuilt.size();
            }());
}

TEST(IncrementalTest, NewMappingPropagates) {
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  VarPool& vars = *ex.system->vars();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());

  // New mapping: every actor edge also means a generic "participant".
  TermId participant =
      dict.InternIri(std::string(kVocNs) + "participant");
  VarId x = vars.Intern("inc_x"), y = vars.Intern("inc_y");
  GraphMappingAssertion gma;
  gma.label = "actor->participant";
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(ex.prop_actor),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                PatternTerm::Const(participant),
                                PatternTerm::Var(y)});
  Result<RpsChaseStats> delta = inc.AddGraphMapping(std::move(gma));
  ASSERT_TRUE(delta.ok());
  EXPECT_GE(delta->gma_firings, 2u);  // both stored actor edges
  EXPECT_FALSE(inc.universal()
                   .MatchAll(std::nullopt, participant, std::nullopt)
                   .empty());
}

TEST(IncrementalTest, SequenceOfUpdatesStaysConsistent) {
  // Interleave triple / mapping / equivalence updates on a generated
  // system and compare against a from-scratch rebuild at the end.
  LodConfig config;
  config.num_peers = 3;
  config.films_per_peer = 8;
  config.seed = 311;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  Dictionary& dict = *sys->dict();

  IncrementalUniversalSolution inc(sys.get());
  ASSERT_TRUE(inc.Initialize().ok());

  TermId actor0 = dict.InternIri("http://peer0.example.org/actor");
  for (int i = 0; i < 10; ++i) {
    TermId film = dict.InternIri("http://peer0.example.org/extra_film" +
                                 std::to_string(i));
    TermId person = dict.InternIri("http://peer0.example.org/extra_person" +
                                   std::to_string(i));
    ASSERT_TRUE(inc.AddTriple("peer0", Triple{film, actor0, person}).ok());
  }
  EXPECT_EQ(inc.update_count(), 10u);

  // Fresh blank-node labels differ between the two runs, so compare
  // structure (size) and blank-free answers rather than raw renderings.
  Graph rebuilt(sys->dict());
  ASSERT_TRUE(BuildUniversalSolution(*sys, &rebuilt).ok());
  EXPECT_EQ(inc.universal().size(), rebuilt.size());

  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  std::vector<Tuple> rebuilt_answers =
      EvalQuery(rebuilt, q, QuerySemantics::kDropBlanks);
  SortTuples(&rebuilt_answers);
  EXPECT_EQ(inc.Answer(q), rebuilt_answers);
}

TEST(IncrementalTest, AddTriplesBatchMatchesPerTripleInserts) {
  // One delta chase over the whole batch must land in the same J as one
  // chase per triple (the chase is confluent), with far fewer runs.
  LodConfig config;
  config.num_peers = 3;
  config.films_per_peer = 6;
  config.seed = 313;
  std::unique_ptr<RpsSystem> batch_sys = GenerateLod(config);
  std::unique_ptr<RpsSystem> serial_sys = GenerateLod(config);
  Dictionary& batch_dict = *batch_sys->dict();
  Dictionary& serial_dict = *serial_sys->dict();

  IncrementalUniversalSolution batch_inc(batch_sys.get());
  IncrementalUniversalSolution serial_inc(serial_sys.get());
  ASSERT_TRUE(batch_inc.Initialize().ok());
  ASSERT_TRUE(serial_inc.Initialize().ok());

  auto make_batch = [](Dictionary* dict) {
    TermId actor0 = dict->InternIri("http://peer0.example.org/actor");
    std::vector<Triple> batch;
    for (int i = 0; i < 12; ++i) {
      TermId film = dict->InternIri("http://peer0.example.org/batch_film" +
                                    std::to_string(i));
      TermId person = dict->InternIri(
          "http://peer0.example.org/batch_person" + std::to_string(i % 4));
      batch.push_back(Triple{film, actor0, person});
    }
    // A duplicate inside the batch: staged once, chased once.
    batch.push_back(batch.front());
    return batch;
  };

  Result<RpsChaseStats> stats =
      batch_inc.AddTriples("peer0", make_batch(&batch_dict));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(batch_inc.update_count(), 1u);

  for (const Triple& t : make_batch(&serial_dict)) {
    ASSERT_TRUE(serial_inc.AddTriple("peer0", t).ok());
  }
  // 12 fresh triples count as updates; the duplicate is a pre-count noop.
  EXPECT_EQ(serial_inc.update_count(), 12u);

  // The two dictionaries interned identically (same call order), so J
  // sizes and blank-free answers must agree exactly. Mirror the demo
  // query's interning on both systems to keep them in lockstep.
  EXPECT_EQ(batch_inc.universal().size(), serial_inc.universal().size());
  GraphPatternQuery q = LodDemoQuery(batch_sys.get(), config);
  (void)LodDemoQuery(serial_sys.get(), config);
  EXPECT_EQ(batch_inc.Answer(q), serial_inc.Answer(q));

  // And both match a from-scratch rebuild.
  Graph rebuilt(batch_sys->dict());
  ASSERT_TRUE(BuildUniversalSolution(*batch_sys, &rebuilt).ok());
  EXPECT_EQ(batch_inc.universal().size(), rebuilt.size());
}

TEST(IncrementalTest, AddTriplesValidatesLikeAddTriple) {
  PaperExample ex = BuildPaperExample();
  IncrementalUniversalSolution inc(ex.system.get());
  EXPECT_EQ(inc.AddTriples("source1", {Triple{0, 0, 0}}).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(inc.Initialize().ok());
  EXPECT_EQ(inc.AddTriples("nope", {Triple{0, 0, 0}}).status().code(),
            StatusCode::kNotFound);

  // An all-duplicate batch is a clean noop.
  size_t before = inc.universal().size();
  const Triple existing =
      ex.system->dataset().Find("source2")->triples().front();
  Result<RpsChaseStats> noop =
      inc.AddTriples("source2", {existing, existing});
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop->triples_added, 0u);
  EXPECT_EQ(inc.universal().size(), before);
}

TEST(IncrementalTest, CachedAnswersStayFreshUnderChurn) {
  // The certain-answer cache over J: repeats hit, every update — triple
  // batches and mapping changes alike — invalidates exactly the touched
  // entries, and every served answer equals the uncached twin's.
  LodConfig config;
  config.num_peers = 3;
  config.films_per_peer = 6;
  config.seed = 317;
  std::unique_ptr<RpsSystem> cached_sys = GenerateLod(config);
  std::unique_ptr<RpsSystem> plain_sys = GenerateLod(config);

  IncrementalUniversalSolution cached(cached_sys.get());
  IncrementalUniversalSolution plain(plain_sys.get());
  ASSERT_TRUE(cached.Initialize().ok());
  ASSERT_TRUE(plain.Initialize().ok());
  AnswerCacheOptions cache_options;
  cache_options.enabled = true;
  cached.EnableAnswerCache(cache_options);

  GraphPatternQuery q = LodDemoQuery(cached_sys.get(), config);
  (void)LodDemoQuery(plain_sys.get(), config);  // keep dicts in lockstep
  auto check_parity = [&] {
    std::vector<Tuple> got = cached.Answer(q);
    ASSERT_EQ(got, plain.Answer(q));
    // Identical immediate repeat must hit and return the same bytes.
    ASSERT_EQ(cached.Answer(q), got);
  };
  check_parity();
  uint64_t hits_after_warm = cached.CacheStats().hits;
  EXPECT_GE(hits_after_warm, 1u);

  // Churn through the batch API; the demo query's footprint is touched,
  // so the entry must drop and re-fill with fresh answers.
  auto churn = [&](RpsSystem* sys, IncrementalUniversalSolution* inc,
                   int round) {
    Dictionary* dict = sys->dict();
    TermId actor0 = dict->InternIri("http://peer0.example.org/actor");
    std::vector<Triple> batch;
    for (int i = 0; i < 5; ++i) {
      batch.push_back(Triple{
          dict->InternIri("http://peer0.example.org/churn_film" +
                          std::to_string(round * 10 + i)),
          actor0,
          dict->InternIri("http://peer0.example.org/churn_person" +
                          std::to_string(i))});
    }
    ASSERT_TRUE(inc->AddTriples("peer0", batch).ok());
  };
  for (int round = 0; round < 3; ++round) {
    churn(cached_sys.get(), &cached, round);
    churn(plain_sys.get(), &plain, round);
    check_parity();
  }
  EXPECT_GT(cached.CacheStats().invalidations, 0u);

  // A late mapping change re-closes J; cached answers must follow.
  auto add_mapping = [&](RpsSystem* sys,
                         IncrementalUniversalSolution* inc) {
    Dictionary* dict = sys->dict();
    VarPool* vars = sys->vars();
    TermId actor0 = dict->InternIri("http://peer0.example.org/actor");
    TermId cast = dict->InternIri("http://peer0.example.org/cast");
    VarId x = vars->Intern("mc_x"), y = vars->Intern("mc_y");
    GraphMappingAssertion gma;
    gma.label = "actor->cast";
    gma.from.head = {x, y};
    gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                    PatternTerm::Const(actor0),
                                    PatternTerm::Var(y)});
    gma.to.head = {x, y};
    gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(cast),
                                  PatternTerm::Var(y)});
    ASSERT_TRUE(inc->AddGraphMapping(std::move(gma)).ok());
  };
  add_mapping(cached_sys.get(), &cached);
  add_mapping(plain_sys.get(), &plain);
  check_parity();

  // The cast-edge query (only answerable post-mapping) also agrees.
  GraphPatternQuery cast_q;
  VarId cx = cached_sys->vars()->Intern("cast_x");
  VarId cy = cached_sys->vars()->Intern("cast_y");
  cast_q.head = {cx, cy};
  cast_q.body.Add(TriplePattern{
      PatternTerm::Var(cx),
      PatternTerm::Const(
          cached_sys->dict()->InternIri("http://peer0.example.org/cast")),
      PatternTerm::Var(cy)});
  std::vector<Tuple> cast_answers = cached.Answer(cast_q);
  EXPECT_FALSE(cast_answers.empty());
  EXPECT_EQ(cast_answers, plain.Answer(cast_q));

  // Detaching restores plain evaluation.
  AnswerCacheOptions off;
  cached.EnableAnswerCache(off);
  EXPECT_EQ(cached.CacheStats().hits, 0u);
  EXPECT_EQ(cached.Answer(q), plain.Answer(q));
}

}  // namespace
}  // namespace rps
