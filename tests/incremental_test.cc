#include "peer/incremental.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/paper_example.h"

namespace rps {
namespace {

TEST(IncrementalTest, RequiresInitialize) {
  PaperExample ex = BuildPaperExample();
  IncrementalUniversalSolution inc(ex.system.get());
  EXPECT_EQ(inc.AddTriple("source1", Triple{0, 0, 0}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(inc.Initialize().ok());
  EXPECT_EQ(inc.Initialize().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(IncrementalTest, TripleInsertionMatchesFullRebuild) {
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());

  // New fact: James Franco also acted in Spiderman (Source 2 dialect).
  TermId film =
      dict.InternIri(std::string(kDb2Ns) + "Spiderman2002");
  TermId franco = dict.InternIri(std::string(kDb2Ns) + "James_Franco");
  Result<RpsChaseStats> delta =
      inc.AddTriple("source2", Triple{film, ex.prop_actor, franco});
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_GT(delta->triples_added, 0u);  // the GMA fires for the new actor

  // The incrementally maintained J is bit-identical (modulo fresh blank
  // labels) to a full rebuild: compare sizes and query answers.
  Graph rebuilt(ex.system->dict());
  ASSERT_TRUE(BuildUniversalSolution(*ex.system, &rebuilt).ok());
  EXPECT_EQ(inc.universal().size(), rebuilt.size());

  std::vector<Tuple> inc_answers = inc.Answer(ex.query);
  std::vector<Tuple> rebuilt_answers =
      EvalQuery(rebuilt, ex.query, QuerySemantics::kDropBlanks);
  SortTuples(&rebuilt_answers);
  EXPECT_EQ(inc_answers, rebuilt_answers);
}

TEST(IncrementalTest, DuplicateInsertIsNoop) {
  PaperExample ex = BuildPaperExample();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());
  size_t before = inc.universal().size();
  const Triple existing = ex.system->dataset()
                              .Find("source2")
                              ->triples()
                              .front();
  Result<RpsChaseStats> delta = inc.AddTriple("source2", existing);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->triples_added, 0u);
  EXPECT_EQ(inc.universal().size(), before);
}

TEST(IncrementalTest, UnknownPeerRejected) {
  PaperExample ex = BuildPaperExample();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());
  EXPECT_EQ(inc.AddTriple("nope", Triple{0, 0, 0}).status().code(),
            StatusCode::kNotFound);
}

TEST(IncrementalTest, NewEquivalencePropagates) {
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());

  // Late-arriving sameAs: DB2:Pleasantville is the same film as a new
  // DB1 IRI. Its actor edges must be copied onto the DB1 name.
  TermId pleasantville_db2 =
      dict.InternIri(std::string(kDb2Ns) + "Pleasantville");
  TermId pleasantville_db1 =
      dict.InternIri(std::string(kDb1Ns) + "Pleasantville");
  Result<RpsChaseStats> delta =
      inc.AddEquivalence(pleasantville_db1, pleasantville_db2);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(inc.universal()
                   .MatchAll(pleasantville_db1, ex.prop_actor, std::nullopt)
                   .empty());
  // Still consistent with a full rebuild.
  EXPECT_EQ(inc.universal().size(),
            [&] {
              Graph rebuilt(ex.system->dict());
              EXPECT_TRUE(
                  BuildUniversalSolution(*ex.system, &rebuilt).ok());
              return rebuilt.size();
            }());
}

TEST(IncrementalTest, NewMappingPropagates) {
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  VarPool& vars = *ex.system->vars();
  IncrementalUniversalSolution inc(ex.system.get());
  ASSERT_TRUE(inc.Initialize().ok());

  // New mapping: every actor edge also means a generic "participant".
  TermId participant =
      dict.InternIri(std::string(kVocNs) + "participant");
  VarId x = vars.Intern("inc_x"), y = vars.Intern("inc_y");
  GraphMappingAssertion gma;
  gma.label = "actor->participant";
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(ex.prop_actor),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                PatternTerm::Const(participant),
                                PatternTerm::Var(y)});
  Result<RpsChaseStats> delta = inc.AddGraphMapping(std::move(gma));
  ASSERT_TRUE(delta.ok());
  EXPECT_GE(delta->gma_firings, 2u);  // both stored actor edges
  EXPECT_FALSE(inc.universal()
                   .MatchAll(std::nullopt, participant, std::nullopt)
                   .empty());
}

TEST(IncrementalTest, SequenceOfUpdatesStaysConsistent) {
  // Interleave triple / mapping / equivalence updates on a generated
  // system and compare against a from-scratch rebuild at the end.
  LodConfig config;
  config.num_peers = 3;
  config.films_per_peer = 8;
  config.seed = 311;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  Dictionary& dict = *sys->dict();

  IncrementalUniversalSolution inc(sys.get());
  ASSERT_TRUE(inc.Initialize().ok());

  TermId actor0 = dict.InternIri("http://peer0.example.org/actor");
  for (int i = 0; i < 10; ++i) {
    TermId film = dict.InternIri("http://peer0.example.org/extra_film" +
                                 std::to_string(i));
    TermId person = dict.InternIri("http://peer0.example.org/extra_person" +
                                   std::to_string(i));
    ASSERT_TRUE(inc.AddTriple("peer0", Triple{film, actor0, person}).ok());
  }
  EXPECT_EQ(inc.update_count(), 10u);

  // Fresh blank-node labels differ between the two runs, so compare
  // structure (size) and blank-free answers rather than raw renderings.
  Graph rebuilt(sys->dict());
  ASSERT_TRUE(BuildUniversalSolution(*sys, &rebuilt).ok());
  EXPECT_EQ(inc.universal().size(), rebuilt.size());

  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  std::vector<Tuple> rebuilt_answers =
      EvalQuery(rebuilt, q, QuerySemantics::kDropBlanks);
  SortTuples(&rebuilt_answers);
  EXPECT_EQ(inc.Answer(q), rebuilt_answers);
}

}  // namespace
}  // namespace rps
