// AnswerCache: canonical query keys, read footprints, and the epoch
// protocol (hit window, footprint invalidation vs wholesale promotion,
// stale-insert refusal, dormant inserts, LRU/byte eviction). These are
// the soundness primitives behind the cached serving paths of
// QueryServer and IncrementalUniversalSolution; the randomized churn
// oracles live in query_server_test.cc.

#include "query/answer_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace rps {
namespace {

// Raw TermIds are fine here: the cache never consults a dictionary.
constexpr TermId kS = 10, kP = 11, kO = 12, kQ = 13;

GraphPatternQuery ScanQuery(VarId x, VarId y, TermId p) {
  GraphPatternQuery q;
  q.head = {x, y};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                           PatternTerm::Var(y)});
  return q;
}

AnswerCache::Answers MakeAnswers(std::vector<Tuple> tuples) {
  return std::make_shared<const std::vector<Tuple>>(std::move(tuples));
}

TEST(CanonicalQueryKeyTest, InvariantUnderVariableRenaming) {
  // Same shape, different VarIds: one key.
  GraphPatternQuery a = ScanQuery(1, 2, kP);
  GraphPatternQuery b = ScanQuery(700, 900, kP);
  EXPECT_EQ(CanonicalQueryKey(a, QuerySemantics::kDropBlanks),
            CanonicalQueryKey(b, QuerySemantics::kDropBlanks));
}

TEST(CanonicalQueryKeyTest, DistinguishesShapes) {
  GraphPatternQuery scan = ScanQuery(1, 2, kP);

  // Different predicate constant.
  GraphPatternQuery other_pred = ScanQuery(1, 2, kQ);
  EXPECT_NE(CanonicalQueryKey(scan, QuerySemantics::kDropBlanks),
            CanonicalQueryKey(other_pred, QuerySemantics::kDropBlanks));

  // Same body, different head projection.
  GraphPatternQuery narrow = scan;
  narrow.head = {1};
  EXPECT_NE(CanonicalQueryKey(scan, QuerySemantics::kDropBlanks),
            CanonicalQueryKey(narrow, QuerySemantics::kDropBlanks));

  // Join variable vs two independent variables.
  GraphPatternQuery joined;
  joined.head = {1, 3};
  joined.body.Add(TriplePattern{PatternTerm::Var(1), PatternTerm::Const(kP),
                                PatternTerm::Var(2)});
  joined.body.Add(TriplePattern{PatternTerm::Var(2), PatternTerm::Const(kQ),
                                PatternTerm::Var(3)});
  GraphPatternQuery cross = joined;
  cross.body = GraphPattern();
  cross.body.Add(TriplePattern{PatternTerm::Var(1), PatternTerm::Const(kP),
                               PatternTerm::Var(2)});
  cross.body.Add(TriplePattern{PatternTerm::Var(4), PatternTerm::Const(kQ),
                               PatternTerm::Var(3)});
  EXPECT_NE(CanonicalQueryKey(joined, QuerySemantics::kDropBlanks),
            CanonicalQueryKey(cross, QuerySemantics::kDropBlanks));

  // Semantics flag is part of the key.
  EXPECT_NE(CanonicalQueryKey(scan, QuerySemantics::kDropBlanks),
            CanonicalQueryKey(scan, QuerySemantics::kKeepBlanks));

  // A variable and a constant sharing the same numeric id must not
  // collide (codes live in disjoint ranges).
  GraphPatternQuery const_subject;
  const_subject.head = {1};
  const_subject.body.Add(TriplePattern{
      PatternTerm::Const(kS), PatternTerm::Const(kP), PatternTerm::Var(1)});
  GraphPatternQuery var_subject;
  var_subject.head = {1};
  var_subject.body.Add(TriplePattern{
      PatternTerm::Var(2), PatternTerm::Const(kP), PatternTerm::Var(1)});
  EXPECT_NE(CanonicalQueryKey(const_subject, QuerySemantics::kDropBlanks),
            CanonicalQueryKey(var_subject, QuerySemantics::kDropBlanks));
}

TEST(QueryFootprintTest, TouchesMatchingTriplesOnly) {
  GraphPatternQuery q;
  q.head = {1};
  q.body.Add(TriplePattern{PatternTerm::Const(kS), PatternTerm::Const(kP),
                           PatternTerm::Var(1)});
  QueryFootprintSet fp = QueryFootprint(q);
  ASSERT_EQ(fp.size(), 1u);

  EXPECT_TRUE(FootprintTouches(fp, Triple{kS, kP, 99}));   // matches
  EXPECT_FALSE(FootprintTouches(fp, Triple{kO, kP, 99}));  // wrong subject
  EXPECT_FALSE(FootprintTouches(fp, Triple{kS, kQ, 99}));  // wrong predicate

  // A second pattern widens the footprint.
  q.body.Add(TriplePattern{PatternTerm::Var(1), PatternTerm::Const(kQ),
                           PatternTerm::Var(2)});
  q.head = {2};
  fp = QueryFootprint(q);
  EXPECT_TRUE(FootprintTouches(fp, Triple{kS, kQ, 99}));

  // All-variable pattern: every triple touches.
  GraphPatternQuery open;
  open.head = {1};
  open.body.Add(TriplePattern{PatternTerm::Var(1), PatternTerm::Var(2),
                              PatternTerm::Var(3)});
  EXPECT_TRUE(FootprintTouches(QueryFootprint(open), Triple{1, 2, 3}));
}

AnswerCacheOptions SmallCache() {
  AnswerCacheOptions o;
  o.enabled = true;
  return o;
}

TEST(AnswerCacheTest, HitWindowFollowsEpochProtocol) {
  AnswerCache cache(SmallCache(), "test_window", /*initial_epoch=*/5);
  GraphPatternQuery q = ScanQuery(1, 2, kP);
  QueryFootprintSet fp = QueryFootprint(q);
  std::string key = CanonicalQueryKey(q, QuerySemantics::kDropBlanks);

  cache.Insert(key, 5, fp, MakeAnswers({{kS, kO}}));
  // Valid at the eval epoch itself...
  EXPECT_NE(cache.Lookup(key, 5), nullptr);
  // ...but not below it (the entry may contain triples a lower snapshot
  // lacks) and not above known_epoch (deltas there were never checked).
  EXPECT_EQ(cache.Lookup(key, 4), nullptr);
  EXPECT_EQ(cache.Lookup(key, 6), nullptr);

  // An untouched delta promotes the entry wholesale.
  cache.ApplyDelta({Triple{kS, kQ, kO}}, 6);
  EXPECT_EQ(cache.known_epoch(), 6u);
  AnswerCache::Answers hit = cache.Lookup(key, 6);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, (std::vector<Tuple>{{kS, kO}}));
  // The old epoch is still inside the window.
  EXPECT_NE(cache.Lookup(key, 5), nullptr);

  // A footprint-touching delta drops it.
  cache.ApplyDelta({Triple{kS, kP, kO}}, 7);
  EXPECT_EQ(cache.Lookup(key, 7), nullptr);
  AnswerCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(AnswerCacheTest, StaleInsertRefusedDormantInsertWakes) {
  AnswerCache cache(SmallCache(), "test_dormant", /*initial_epoch=*/10);
  GraphPatternQuery q = ScanQuery(1, 2, kP);
  QueryFootprintSet fp = QueryFootprint(q);
  std::string key = CanonicalQueryKey(q, QuerySemantics::kDropBlanks);

  // Evaluated below known_epoch: unreported deltas may have landed on
  // its footprint, so the insert is dropped.
  cache.Insert(key, 9, fp, MakeAnswers({{kS, kO}}));
  EXPECT_EQ(cache.Stats().entries, 0u);

  // Evaluated above known_epoch: accepted but dormant — Insert must not
  // vouch for epochs whose deltas were never reported.
  cache.Insert(key, 12, fp, MakeAnswers({{kS, kO}}));
  EXPECT_EQ(cache.Lookup(key, 12), nullptr);
  // The covering ApplyDelta (an untouching delta) wakes it.
  cache.ApplyDelta({Triple{kS, kQ, kO}}, 12);
  EXPECT_NE(cache.Lookup(key, 12), nullptr);
}

TEST(AnswerCacheTest, WildcardPredicateEntriesSeeEveryDelta) {
  AnswerCache cache(SmallCache(), "test_wildcard", 0);
  GraphPatternQuery open;
  open.head = {1};
  open.body.Add(TriplePattern{PatternTerm::Var(1), PatternTerm::Var(2),
                              PatternTerm::Var(3)});
  std::string key = CanonicalQueryKey(open, QuerySemantics::kDropBlanks);
  cache.Insert(key, 0, QueryFootprint(open), MakeAnswers({{kS}}));
  ASSERT_NE(cache.Lookup(key, 0), nullptr);
  // No predicate bucket covers it, yet any delta must invalidate.
  cache.ApplyDelta({Triple{90, 91, 92}}, 1);
  EXPECT_EQ(cache.Lookup(key, 1), nullptr);
  EXPECT_EQ(cache.Stats().invalidations, 1u);
}

TEST(AnswerCacheTest, LruEvictionByEntriesAndBytes) {
  AnswerCacheOptions options;
  options.enabled = true;
  options.max_entries = 2;
  AnswerCache cache(options, "test_lru", 0);

  GraphPatternQuery qa = ScanQuery(1, 2, kP);
  GraphPatternQuery qb = ScanQuery(1, 2, kQ);
  GraphPatternQuery qc = ScanQuery(1, 2, 14);
  std::string ka = CanonicalQueryKey(qa, QuerySemantics::kDropBlanks);
  std::string kb = CanonicalQueryKey(qb, QuerySemantics::kDropBlanks);
  std::string kc = CanonicalQueryKey(qc, QuerySemantics::kDropBlanks);

  cache.Insert(ka, 0, QueryFootprint(qa), MakeAnswers({{1, 2}}));
  cache.Insert(kb, 0, QueryFootprint(qb), MakeAnswers({{3, 4}}));
  // Touch A so B is the LRU victim.
  EXPECT_NE(cache.Lookup(ka, 0), nullptr);
  cache.Insert(kc, 0, QueryFootprint(qc), MakeAnswers({{5, 6}}));

  EXPECT_EQ(cache.Stats().entries, 2u);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_NE(cache.Lookup(ka, 0), nullptr);
  EXPECT_EQ(cache.Lookup(kb, 0), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(kc, 0), nullptr);

  // Byte budget: a tiny cap evicts down to it; an entry above the
  // per-entry cap is refused outright.
  AnswerCacheOptions tiny;
  tiny.enabled = true;
  tiny.max_entry_bytes = 512;
  AnswerCache bytes_cache(tiny, "test_bytes", 0);
  std::vector<Tuple> huge(1000, Tuple{1, 2, 3, 4});
  bytes_cache.Insert(ka, 0, QueryFootprint(qa), MakeAnswers(huge));
  EXPECT_EQ(bytes_cache.Stats().entries, 0u) << "oversized entry cached";
  bytes_cache.Insert(kb, 0, QueryFootprint(qb), MakeAnswers({{1, 2}}));
  EXPECT_EQ(bytes_cache.Stats().entries, 1u);
  EXPECT_GT(bytes_cache.Stats().bytes, 0u);
}

TEST(AnswerCacheTest, ClearDropsEverythingAndAdvances) {
  AnswerCache cache(SmallCache(), "test_clear", 0);
  GraphPatternQuery q = ScanQuery(1, 2, kP);
  std::string key = CanonicalQueryKey(q, QuerySemantics::kDropBlanks);
  cache.Insert(key, 0, QueryFootprint(q), MakeAnswers({{1, 2}}));
  cache.Clear(/*new_epoch=*/3);
  EXPECT_EQ(cache.Lookup(key, 0), nullptr);
  EXPECT_EQ(cache.known_epoch(), 3u);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
  // Inserts at the new epoch work immediately.
  cache.Insert(key, 3, QueryFootprint(q), MakeAnswers({{1, 2}}));
  EXPECT_NE(cache.Lookup(key, 3), nullptr);
}

TEST(AnswerCacheTest, HitPayloadSurvivesEviction) {
  // shared_ptr payloads: answers handed to a reader stay valid after the
  // entry is invalidated or evicted (the TSan-covered race is in
  // query_server_test.cc; this is the single-threaded contract).
  AnswerCache cache(SmallCache(), "test_shared", 0);
  GraphPatternQuery q = ScanQuery(1, 2, kP);
  std::string key = CanonicalQueryKey(q, QuerySemantics::kDropBlanks);
  cache.Insert(key, 0, QueryFootprint(q), MakeAnswers({{kS, kO}}));
  AnswerCache::Answers held = cache.Lookup(key, 0);
  ASSERT_NE(held, nullptr);
  cache.Clear(1);
  EXPECT_EQ(*held, (std::vector<Tuple>{{kS, kO}}));
}

}  // namespace
}  // namespace rps
