#include "rewrite/rewriter.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  RewriterTest() {
    tt_ = preds_.Intern("tt", 3);
    x_ = vars_.Intern("x");
    y_ = vars_.Intern("y");
    z_ = vars_.Intern("z");
    a_ = dict_.InternIri("http://x/A");
    b_ = dict_.InternIri("http://x/B");
    c_ = dict_.InternIri("http://x/c");
    d_ = dict_.InternIri("http://x/d");
  }

  Atom TT(AtomArg s, AtomArg p, AtomArg o) { return Atom{tt_, {s, p, o}}; }

  PredTable preds_;
  Dictionary dict_;
  VarPool vars_;
  PredId tt_;
  VarId x_, y_, z_;
  TermId a_, b_, c_, d_;
};

TEST_F(RewriterTest, FromToGraphQueryRoundTrip) {
  GraphPatternQuery q;
  q.head = {x_};
  q.body.Add(TriplePattern{PatternTerm::Var(x_), PatternTerm::Const(a_),
                           PatternTerm::Var(z_)});
  ConjunctiveQuery cq = FromGraphQuery(q, tt_);
  EXPECT_EQ(cq.arity(), 1u);
  ASSERT_EQ(cq.body.size(), 1u);
  EXPECT_EQ(cq.body[0].pred, tt_);
  Result<GraphPatternQuery> back = ToGraphQuery(cq);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back == q, true);
}

TEST_F(RewriterTest, ToGraphQueryRejectsConstantHead) {
  ConjunctiveQuery cq;
  cq.head = {AtomArg::Const(c_)};
  cq.body = {TT(AtomArg::Const(c_), AtomArg::Const(a_), AtomArg::Var(x_))};
  EXPECT_FALSE(ToGraphQuery(cq).ok());
}

TEST_F(RewriterTest, StripGuardAtomsRemovesGuards) {
  PredId rt = preds_.Intern("rt", 1);
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_)),
              Atom{rt, {AtomArg::Var(x_)}},
              Atom{rt, {AtomArg::Var(y_)}}};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(y_))};
  std::vector<Tgd> stripped = StripGuardAtoms({tgd}, rt);
  ASSERT_EQ(stripped.size(), 1u);
  EXPECT_EQ(stripped[0].body.size(), 1u);
  EXPECT_EQ(stripped[0].head, tgd.head);
}

TEST_F(RewriterTest, NormalizeKeepsRestrictedTgds) {
  // Single head atom, one existential occurring once: already restricted.
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(z_))};
  std::vector<Tgd> normalized = NormalizeTgds({tgd}, &preds_, &vars_);
  ASSERT_EQ(normalized.size(), 1u);
  EXPECT_EQ(normalized[0], tgd);
}

TEST_F(RewriterTest, NormalizeSplitsMultiHead) {
  // tt(x,A,y) → ∃z tt(x,B,z) ∧ tt(z,B,y) becomes a chain through aux.
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(z_)),
              TT(AtomArg::Var(z_), AtomArg::Const(b_), AtomArg::Var(y_))};
  size_t preds_before = preds_.size();
  std::vector<Tgd> normalized = NormalizeTgds({tgd}, &preds_, &vars_);
  // One link (1 existential) + two final head rules.
  EXPECT_EQ(normalized.size(), 3u);
  EXPECT_GT(preds_.size(), preds_before);
  for (const Tgd& n : normalized) {
    EXPECT_EQ(n.head.size(), 1u);
    EXPECT_LE(n.ExistentialVars().size(), 1u);
  }
}

TEST_F(RewriterTest, SubsumesDetectsHomomorphism) {
  // q1() <- tt(x, A, y)  subsumes  q2() <- tt(c, A, d).
  ConjunctiveQuery general;
  general.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  ConjunctiveQuery specific;
  specific.body = {TT(AtomArg::Const(c_), AtomArg::Const(a_),
                      AtomArg::Const(d_))};
  EXPECT_TRUE(Subsumes(general, specific));
  EXPECT_FALSE(Subsumes(specific, general));
}

TEST_F(RewriterTest, SubsumesRespectsHeads) {
  // q(x) <- tt(x, A, y) does NOT subsume q(y) <- tt(x, A, y): the head
  // positions differ.
  ConjunctiveQuery g;
  g.head = {AtomArg::Var(x_)};
  g.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  ConjunctiveQuery s;
  s.head = {AtomArg::Var(y_)};
  s.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  EXPECT_TRUE(Subsumes(g, g));
  EXPECT_FALSE(Subsumes(g, s));
}

TEST_F(RewriterTest, SubsumesJoinStructure) {
  // q() <- tt(x,A,z), tt(z,A,y) subsumes q() <- tt(u,A,u) (collapse), but
  // not vice versa.
  ConjunctiveQuery path;
  path.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_)),
               TT(AtomArg::Var(z_), AtomArg::Const(a_), AtomArg::Var(y_))};
  ConjunctiveQuery loop;
  VarId u = vars_.Intern("u");
  loop.body = {TT(AtomArg::Var(u), AtomArg::Const(a_), AtomArg::Var(u))};
  EXPECT_TRUE(Subsumes(path, loop));
  EXPECT_FALSE(Subsumes(loop, path));
}

TEST_F(RewriterTest, LinearRewritingProducesUnion) {
  // TGD: tt(x, B, y) → tt(x, A, y). Query: q(x,y) <- tt(x, A, y).
  // Perfect rewriting: { q<-tt(x,A,y), q<-tt(x,B,y) }.
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};

  ConjunctiveQuery q;
  q.head = {AtomArg::Var(x_), AtomArg::Var(y_)};
  q.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};

  Result<RewriteResult> result =
      RewriteUnderTgds(q, {tgd}, preds_, &vars_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(result->ucq.size(), 2u);
}

TEST_F(RewriterTest, RewritingChainsThroughTgds) {
  // B→A and C→B (as properties): query over A gains three branches.
  TermId c_prop = dict_.InternIri("http://x/C");
  Tgd t1;
  t1.body = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(y_))};
  t1.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  Tgd t2;
  t2.body = {TT(AtomArg::Var(x_), AtomArg::Const(c_prop), AtomArg::Var(y_))};
  t2.head = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(y_))};

  ConjunctiveQuery q;
  q.head = {AtomArg::Var(x_), AtomArg::Var(y_)};
  q.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};

  Result<RewriteResult> result =
      RewriteUnderTgds(q, {t1, t2}, preds_, &vars_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(result->ucq.size(), 3u);
}

TEST_F(RewriterTest, ApplicabilityBlocksConstantAtExistentialPosition) {
  // TGD: tt(x,B,y) → ∃z tt(x,A,z). Query atom tt(x,A,c): the existential
  // position holds a constant — not applicable; rewriting returns only
  // the original query.
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_))};

  ConjunctiveQuery q;
  q.head = {AtomArg::Var(x_)};
  q.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Const(c_))};

  Result<RewriteResult> result =
      RewriteUnderTgds(q, {tgd}, preds_, &vars_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(result->ucq.size(), 1u);
}

TEST_F(RewriterTest, ApplicabilityBlocksSharedVariableAtExistentialPosition) {
  // Query: q(x) <- tt(x,A,w), tt(w,B,x): w is a join variable, so the
  // existential head position cannot unify with it.
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_))};

  VarId w = vars_.Intern("w");
  ConjunctiveQuery q;
  q.head = {AtomArg::Var(x_)};
  q.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(w)),
            TT(AtomArg::Var(w), AtomArg::Const(b_), AtomArg::Var(x_))};

  Result<RewriteResult> result =
      RewriteUnderTgds(q, {tgd}, preds_, &vars_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(result->ucq.size(), 1u);
}

TEST_F(RewriterTest, ApplicabilityAllowsUnsharedExistentialVariable) {
  // Query: q(x) <- tt(x,A,w) with w unshared: applicable. The rewriting
  // gains q(x) <- tt(x,B,y').
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_))};

  VarId w = vars_.Intern("w2");
  ConjunctiveQuery q;
  q.head = {AtomArg::Var(x_)};
  q.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(w))};

  Result<RewriteResult> result =
      RewriteUnderTgds(q, {tgd}, preds_, &vars_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(result->ucq.size(), 2u);
}

TEST_F(RewriterTest, MinimizationPrunesSubsumedBranches) {
  // Craft TGDs that make a branch subsumed by another:
  // tt(x,B,y) → tt(x,A,y) and query q() <- tt(x,A,y), tt(u,A,v).
  // Factorization produces the single-atom version which subsumes the
  // two-atom one.
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};

  VarId u = vars_.Intern("u3"), v = vars_.Intern("v3");
  ConjunctiveQuery q;
  q.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_)),
            TT(AtomArg::Var(u), AtomArg::Const(a_), AtomArg::Var(v))};

  RewriteOptions with_min;
  with_min.minimize = true;
  RewriteOptions no_min;
  no_min.minimize = false;
  Result<RewriteResult> minimized =
      RewriteUnderTgds(q, {tgd}, preds_, &vars_, with_min);
  Result<RewriteResult> full =
      RewriteUnderTgds(q, {tgd}, preds_, &vars_, no_min);
  ASSERT_TRUE(minimized.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LT(minimized->ucq.size(), full->ucq.size());
  EXPECT_GT(minimized->pruned, 0u);
}

TEST_F(RewriterTest, EvalUcqOverGraphPinsHeadConstants) {
  Graph g(&dict_);
  g.InsertUnchecked(Triple{c_, a_, d_});
  ConjunctiveQuery cq;
  cq.head = {AtomArg::Const(c_), AtomArg::Var(y_)};
  cq.body = {TT(AtomArg::Const(c_), AtomArg::Const(a_), AtomArg::Var(y_))};
  std::vector<Tuple> tuples = EvalUcqOverGraph(g, {cq});
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][0], c_);
  EXPECT_EQ(tuples[0][1], d_);
}

TEST_F(RewriterTest, EvalUcqDeduplicatesAcrossBranches) {
  Graph g(&dict_);
  g.InsertUnchecked(Triple{c_, a_, d_});
  ConjunctiveQuery cq;
  cq.head = {AtomArg::Var(x_)};
  cq.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  std::vector<Tuple> tuples = EvalUcqOverGraph(g, {cq, cq});
  EXPECT_EQ(tuples.size(), 1u);
}

TEST_F(RewriterTest, BudgetExhaustionReportsIncomplete) {
  // Transitive closure: the rewriting never converges.
  Tgd trans;
  trans.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_)),
                TT(AtomArg::Var(z_), AtomArg::Const(a_), AtomArg::Var(y_))};
  trans.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};

  ConjunctiveQuery q;
  q.head = {AtomArg::Var(x_), AtomArg::Var(y_)};
  q.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};

  RewriteOptions options;
  options.max_queries = 40;
  Result<RewriteResult> result =
      RewriteUnderTgds(q, {trans}, preds_, &vars_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->complete);
  EXPECT_GT(result->ucq.size(), 1u);
}

}  // namespace
}  // namespace rps
