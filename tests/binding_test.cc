#include "query/binding.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace rps {
namespace {

TEST(BindingTest, BindAndGet) {
  Binding b;
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.Bind(3, 100));
  EXPECT_TRUE(b.Bind(1, 200));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(*b.Get(3), 100u);
  EXPECT_EQ(*b.Get(1), 200u);
  EXPECT_FALSE(b.Get(2).has_value());
}

TEST(BindingTest, RebindSameValueOk) {
  Binding b;
  EXPECT_TRUE(b.Bind(1, 10));
  EXPECT_TRUE(b.Bind(1, 10));
  EXPECT_FALSE(b.Bind(1, 11));
  EXPECT_EQ(*b.Get(1), 10u);
}

TEST(BindingTest, EntriesAreSorted) {
  Binding b;
  b.Bind(9, 1);
  b.Bind(2, 2);
  b.Bind(5, 3);
  std::vector<VarId> keys;
  for (const auto& [var, term] : b.entries()) keys.push_back(var);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(BindingTest, Compatibility) {
  Binding a, b;
  a.Bind(1, 10);
  a.Bind(2, 20);
  b.Bind(2, 20);
  b.Bind(3, 30);
  EXPECT_TRUE(Binding::Compatible(a, b));
  b.Bind(1, 99);
  EXPECT_FALSE(Binding::Compatible(a, b));
}

TEST(BindingTest, MergeUnionsCompatible) {
  Binding a, b;
  a.Bind(1, 10);
  b.Bind(2, 20);
  auto merged = Binding::Merge(a, b);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->size(), 2u);
  EXPECT_EQ(*merged->Get(1), 10u);
  EXPECT_EQ(*merged->Get(2), 20u);
}

TEST(BindingTest, MergeFailsOnConflict) {
  Binding a, b;
  a.Bind(1, 10);
  b.Bind(1, 11);
  EXPECT_FALSE(Binding::Merge(a, b).has_value());
}

// Builds a random binding set over variables [0, num_vars) with values in
// [0, num_values).
BindingSet RandomBindings(Rng* rng, size_t count, size_t num_vars,
                          size_t num_values) {
  BindingSet out;
  for (size_t i = 0; i < count; ++i) {
    Binding b;
    for (VarId v = 0; v < num_vars; ++v) {
      if (rng->Chance(0.7)) {
        b.Bind(v, static_cast<TermId>(rng->Index(num_values)));
      }
    }
    out.push_back(std::move(b));
  }
  Dedup(&out);
  return out;
}

// Reference join: quadratic nested loops.
BindingSet NaiveJoin(const BindingSet& l, const BindingSet& r) {
  BindingSet out;
  for (const Binding& a : l) {
    for (const Binding& b : r) {
      auto merged = Binding::Merge(a, b);
      if (merged) out.push_back(std::move(*merged));
    }
  }
  return out;
}

std::vector<Binding> Canon(BindingSet s) {
  Dedup(&s);
  std::sort(s.begin(), s.end());
  return s;
}

TEST(BindingTest, JoinMatchesNaiveJoin) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    BindingSet l = RandomBindings(&rng, rng.Index(12), 4, 3);
    BindingSet r = RandomBindings(&rng, rng.Index(12), 4, 3);
    EXPECT_EQ(Canon(Join(l, r)), Canon(NaiveJoin(l, r))) << "trial " << trial;
  }
}

TEST(BindingTest, JoinIsCommutative) {
  // Ω1 ⋈ Ω2 = Ω2 ⋈ Ω1 (Definition 1 semantics are symmetric).
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    BindingSet l = RandomBindings(&rng, 8, 3, 3);
    BindingSet r = RandomBindings(&rng, 8, 3, 3);
    EXPECT_EQ(Canon(Join(l, r)), Canon(Join(r, l))) << "trial " << trial;
  }
}

TEST(BindingTest, JoinIsAssociative) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    BindingSet a = RandomBindings(&rng, 6, 3, 3);
    BindingSet b = RandomBindings(&rng, 6, 3, 3);
    BindingSet c = RandomBindings(&rng, 6, 3, 3);
    EXPECT_EQ(Canon(Join(Join(a, b), c)), Canon(Join(a, Join(b, c))))
        << "trial " << trial;
  }
}

TEST(BindingTest, JoinWithEmptySetIsEmpty) {
  BindingSet nonempty = {Binding()};
  EXPECT_TRUE(Join({}, nonempty).empty());
  EXPECT_TRUE(Join(nonempty, {}).empty());
}

TEST(BindingTest, JoinWithEmptyBindingIsIdentity) {
  // {µ∅} is the neutral element.
  Rng rng(19);
  BindingSet s = RandomBindings(&rng, 10, 3, 3);
  BindingSet unit = {Binding()};
  EXPECT_EQ(Canon(Join(s, unit)), Canon(s));
  EXPECT_EQ(Canon(Join(unit, s)), Canon(s));
}

TEST(BindingTest, DedupRemovesDuplicates) {
  Binding a;
  a.Bind(1, 10);
  BindingSet s = {a, a, a};
  Dedup(&s);
  EXPECT_EQ(s.size(), 1u);
}

}  // namespace
}  // namespace rps
