#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternIri("http://x");
  TermId b = dict.InternIri("http://x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, DistinctTermsGetDistinctIds) {
  Dictionary dict;
  TermId iri = dict.InternIri("x");
  TermId blank = dict.InternBlank("x");
  TermId lit = dict.InternLiteral("x");
  EXPECT_NE(iri, blank);
  EXPECT_NE(iri, lit);
  EXPECT_NE(blank, lit);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary dict;
  Term original = Term::LangLiteral("hello", "en");
  TermId id = dict.Intern(original);
  EXPECT_EQ(dict.term(id), original);
  EXPECT_EQ(dict.ToString(id), "\"hello\"@en");
}

TEST(DictionaryTest, LookupWithoutIntern) {
  Dictionary dict;
  EXPECT_FALSE(dict.Lookup(Term::Iri("missing")).has_value());
  TermId id = dict.InternIri("present");
  ASSERT_TRUE(dict.Lookup(Term::Iri("present")).has_value());
  EXPECT_EQ(*dict.Lookup(Term::Iri("present")), id);
  EXPECT_EQ(dict.size(), 1u);  // Lookup does not intern
}

TEST(DictionaryTest, KindPredicates) {
  Dictionary dict;
  TermId iri = dict.InternIri("x");
  TermId blank = dict.InternBlank("b");
  TermId lit = dict.InternLiteral("l");
  EXPECT_TRUE(dict.IsIri(iri));
  EXPECT_TRUE(dict.IsBlank(blank));
  EXPECT_TRUE(dict.IsLiteral(lit));
  EXPECT_FALSE(dict.IsBlank(iri));
  EXPECT_FALSE(dict.IsIri(lit));
}

TEST(DictionaryTest, NewBlankIsFresh) {
  Dictionary dict;
  TermId a = dict.NewBlank();
  TermId b = dict.NewBlank();
  EXPECT_NE(a, b);
  EXPECT_TRUE(dict.IsBlank(a));
  EXPECT_TRUE(dict.IsBlank(b));
}

TEST(DictionaryTest, NewBlankSkipsTakenLabels) {
  Dictionary dict;
  // Occupy the labels the null counter would otherwise use.
  dict.InternBlank("n0");
  dict.InternBlank("n1");
  TermId fresh = dict.NewBlank();
  EXPECT_EQ(dict.term(fresh).lexical(), "n2");
}

TEST(DictionaryTest, ManyTermsStayStable) {
  Dictionary dict;
  std::vector<TermId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(dict.InternIri("http://x/" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.term(ids[i]).lexical(), "http://x/" + std::to_string(i));
  }
}

}  // namespace
}  // namespace rps
