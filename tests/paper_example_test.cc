// End-to-end integration test of the paper's running example: Figure 1
// data, the Example 2 RPS, the Listing 1 query results (via the actual
// SPARQL text), the §4 classification, and the Listing 2 Boolean
// rewriting — the full pipeline through parser, chase and rewriter.

#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "parser/ntriples.h"
#include "parser/sparql.h"
#include "peer/certain_answers.h"
#include "rewrite/bool_rewrite.h"
#include "tgd/classify.h"

namespace rps {
namespace {

constexpr const char* kListing1Query = R"(
PREFIX DB1: <http://example.org/db1/>
PREFIX voc: <http://example.org/voc/>
SELECT ?x ?y
WHERE { DB1:Spiderman voc:starring ?z .
        ?z voc:artist ?x .
        ?x voc:age ?y }
)";

TEST(PaperExampleTest, FixtureShape) {
  PaperExample ex = BuildPaperExample();
  EXPECT_EQ(ex.system->PeerCount(), 3u);
  EXPECT_EQ(ex.system->graph_mappings().size(), 1u);
  EXPECT_EQ(ex.system->equivalences().size(), 4u);
  // Source sizes as in Figure 1: 7 + 2 + 4.
  EXPECT_EQ(ex.system->dataset().Find("source1")->size(), 7u);
  EXPECT_EQ(ex.system->dataset().Find("source2")->size(), 2u);
  EXPECT_EQ(ex.system->dataset().Find("source3")->size(), 4u);
}

TEST(PaperExampleTest, SparqlTextMatchesProgrammaticQuery) {
  PaperExample ex = BuildPaperExample();
  Result<ParsedQuery> parsed = ParseSparql(
      kListing1Query, ex.system->dict(), ex.system->vars());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<std::vector<GraphPatternQuery>> queries = parsed->ToQueries();
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 1u);
  // Bodies coincide (the fixture interned the same variable names).
  EXPECT_EQ((*queries)[0].body, ex.query.body);
  EXPECT_EQ((*queries)[0].head, ex.query.head);
}

TEST(PaperExampleTest, Example1EmptyOnRawSources) {
  PaperExample ex = BuildPaperExample();
  Result<ParsedQuery> parsed = ParseSparql(
      kListing1Query, ex.system->dict(), ex.system->vars());
  ASSERT_TRUE(parsed.ok());
  auto queries = parsed->ToQueries();
  ASSERT_TRUE(queries.ok());
  Graph stored = ex.system->StoredDatabase();
  EXPECT_TRUE(
      EvalQuery(stored, (*queries)[0], QuerySemantics::kDropBlanks).empty());
}

TEST(PaperExampleTest, Listing1EndToEndThroughSparql) {
  PaperExample ex = BuildPaperExample();
  Result<ParsedQuery> parsed = ParseSparql(
      kListing1Query, ex.system->dict(), ex.system->vars());
  ASSERT_TRUE(parsed.ok());
  auto queries = parsed->ToQueries();
  ASSERT_TRUE(queries.ok());

  Result<CertainAnswerResult> result =
      CertainAnswers(*ex.system, (*queries)[0]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 6u);  // Listing 1 "with redundancy"

  CertainAnswerOptions compact;
  compact.equivalence_mode = EquivalenceMode::kUnionFind;
  compact.expand_equivalent_answers = false;
  Result<CertainAnswerResult> dedup =
      CertainAnswers(*ex.system, (*queries)[0], compact);
  ASSERT_TRUE(dedup.ok());
  EXPECT_EQ(dedup->answers.size(), 3u);  // "without redundancy"
}

TEST(PaperExampleTest, Example2SystemIsFoRewritable) {
  // G of Example 2 is linear (single-atom Q2 body), so Proposition 2
  // applies: the rewriting converges.
  PaperExample ex = BuildPaperExample();
  Result<RpsRewriteResult> rewritten =
      RewriteGraphQuery(*ex.system, ex.query);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(rewritten->stats.complete);
}

TEST(PaperExampleTest, Listing2AskFlowThroughSparqlText) {
  PaperExample ex = BuildPaperExample();
  // The Boolean query of Listing 2, as SPARQL text.
  const char* ask_text = R"(
PREFIX DB1: <http://example.org/db1/>
PREFIX voc: <http://example.org/voc/>
ASK { DB1:Spiderman voc:starring ?z .
      ?z voc:artist DB1:Toby_Maguire .
      DB1:Toby_Maguire voc:age "39" }
)";
  Result<ParsedQuery> parsed =
      ParseSparql(ask_text, ex.system->dict(), ex.system->vars());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto queries = parsed->ToQueries();
  ASSERT_TRUE(queries.ok());
  const GraphPatternQuery& ask = (*queries)[0];

  // false on the raw sources...
  Graph stored = ex.system->StoredDatabase();
  EXPECT_FALSE(EvalBoolean(stored, ask));

  // ...true after rewriting (arity-0 check through the rewriting path).
  Result<RewriteAnswers> rewritten =
      CertainAnswersViaRewriting(*ex.system, ask);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->answers.size(), 1u);  // the empty tuple: true
}

TEST(PaperExampleTest, StoredDatabaseRoundTripsThroughNTriples) {
  PaperExample ex = BuildPaperExample();
  Graph stored = ex.system->StoredDatabase();
  std::string text = WriteNTriples(stored);

  Dictionary dict2;
  Graph reparsed(&dict2);
  Result<size_t> n = ParseNTriples(text, &reparsed);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(reparsed.size(), stored.size());
  EXPECT_EQ(WriteNTriples(reparsed), text);
}

TEST(PaperExampleTest, UniversalSolutionRendersAsSparqlResult) {
  // FormatAnswers output contains the ages exactly as Listing 1 shows.
  PaperExample ex = BuildPaperExample();
  Result<CertainAnswerResult> result = CertainAnswers(*ex.system, ex.query);
  ASSERT_TRUE(result.ok());
  std::string rendered =
      FormatAnswers(result->answers, *ex.system->dict());
  EXPECT_NE(rendered.find("Toby_Maguire>\t\"39\""), std::string::npos);
  EXPECT_NE(rendered.find("Kirsten_Dunst>\t\"32\""), std::string::npos);
  EXPECT_NE(rendered.find("Willem_Dafoe>\t\"59\""), std::string::npos);
}

}  // namespace
}  // namespace rps
