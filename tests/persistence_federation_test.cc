// Crash-restart recovery through the federation layer: once the
// coordinator has snapshots on disk (Federator::AttachStorage), a
// crashed peer is restarted from its snapshot mid-query instead of
// degrading the result — the run stays kComplete, the answers equal the
// zero-fault baseline, and the recovered peer serves its sub-queries
// straight off the memory-mapped snapshot (the shared dictionary makes
// the load's id remap the identity).

#include <gtest/gtest.h>

#include <dirent.h>
#include <string>
#include <unistd.h>
#include <vector>

#include "federation/federator.h"
#include "gen/generators.h"
#include "obs/metrics.h"

namespace rps {
namespace {

struct ScratchDir {
  std::string path;
  ScratchDir() {
    char buf[] = "rps_persist_fed_test.XXXXXX";
    path = mkdtemp(buf) != nullptr ? buf : ".";
  }
  ~ScratchDir() {
    if (DIR* d = opendir(path.c_str())) {
      while (dirent* e = readdir(d)) {
        std::string name = e->d_name;
        if (name != "." && name != "..") ::unlink((path + "/" + name).c_str());
      }
      closedir(d);
    }
    ::rmdir(path.c_str());
  }
};

// The LOD fixture the fault-tolerance tests share (federation_test.cc).
std::unique_ptr<RpsSystem> MakeLodSystem(LodConfig* config_out) {
  LodConfig config;
  config.num_peers = 5;
  config.films_per_peer = 10;
  config.seed = 81;
  config.single_triple_dialect = true;
  *config_out = config;
  return GenerateLod(config);
}

TEST(PersistenceFederationTest, CrashedPeerRecoversFromItsSnapshot) {
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  Result<FederatedQueryResult> baseline = fed.Execute(q);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_FALSE(baseline->answers.empty());

  ScratchDir scratch;
  ASSERT_FALSE(fed.has_storage());
  ASSERT_TRUE(fed.AttachStorage(scratch.path).ok());
  ASSERT_TRUE(fed.has_storage());

  uint64_t recoveries_before =
      obs::Registry::Global().counter("federation.recoveries")->value();
  uint64_t mapped_loads_before =
      obs::Registry::Global().counter("storage.mapped_loads")->value();

  FederationOptions options;
  options.faults.crashed_peers = {2};
  Result<FederatedQueryResult> r = fed.Execute(q, options);
  ASSERT_TRUE(r.ok()) << r.status();

  // Full answers, no degradation: the crash became a restart.
  EXPECT_EQ(r->answers, baseline->answers);
  EXPECT_EQ(r->completeness, Completeness::kComplete);
  EXPECT_TRUE(r->degraded_peers.empty());
  ASSERT_EQ(r->recovered_peers.size(), 1u);
  EXPECT_EQ(r->recovered_peers[0], fed.peers()[2].name());
  EXPECT_TRUE(fed.IsRecovered(2));
  EXPECT_FALSE(fed.IsRecovered(0));
  EXPECT_GT(obs::Registry::Global().counter("federation.recoveries")->value(),
            recoveries_before);
  // The restart was a memory-mapped attach, not a re-parse: the shared
  // federation dictionary makes the snapshot's id remap the identity.
  EXPECT_GT(obs::Registry::Global().counter("storage.mapped_loads")->value(),
            mapped_loads_before);
  EXPECT_TRUE(fed.peers()[2].graph().has_mapped_base());

  // The restart wait was charged to the run.
  EXPECT_GE(r->network.latency_ms,
            baseline->network.latency_ms + options.retry.restart_ms);

  // The recovered endpoint keeps serving on later fault-free queries.
  Result<FederatedQueryResult> after = fed.Execute(q);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->answers, baseline->answers);
}

TEST(PersistenceFederationTest, WithoutStorageTheSameCrashDegrades) {
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  FederationOptions options;
  options.faults.crashed_peers = {2};
  options.retry.hedge = false;  // no replicas in this fixture anyway
  Result<FederatedQueryResult> r = fed.Execute(q, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->completeness, Completeness::kPartialSound);
  EXPECT_FALSE(r->degraded_peers.empty());
  EXPECT_TRUE(r->recovered_peers.empty());
  EXPECT_FALSE(fed.IsRecovered(2));
}

TEST(PersistenceFederationTest, MidQueryCrashAlsoRecovers) {
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));
  Result<FederatedQueryResult> baseline = fed.Execute(q);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  ScratchDir scratch;
  ASSERT_TRUE(fed.AttachStorage(scratch.path).ok());

  // Peer 2 crashes after serving no requests — mid-query, from the
  // coordinator's point of view, rather than down from the start.
  FederationOptions options;
  options.faults.crash_after = {{2, 0}};
  Result<FederatedQueryResult> r = fed.Execute(q, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->answers, baseline->answers);
  EXPECT_EQ(r->completeness, Completeness::kComplete);
  EXPECT_TRUE(r->degraded_peers.empty());
  EXPECT_FALSE(r->recovered_peers.empty());
  EXPECT_TRUE(fed.IsRecovered(2));
}

TEST(PersistenceFederationTest, RecoveryWorksUnderBindJoin) {
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  FederationOptions clean;
  clean.join_strategy = JoinStrategy::kBindJoin;
  Result<FederatedQueryResult> baseline = fed.Execute(q, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  ScratchDir scratch;
  ASSERT_TRUE(fed.AttachStorage(scratch.path).ok());

  FederationOptions options = clean;
  options.faults.crashed_peers = {1};
  Result<FederatedQueryResult> r = fed.Execute(q, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->answers, baseline->answers);
  EXPECT_EQ(r->completeness, Completeness::kComplete);
  EXPECT_TRUE(r->degraded_peers.empty());
  EXPECT_TRUE(fed.IsRecovered(1));
}

TEST(PersistenceFederationTest, RecoveryIsByteIdenticalAcrossThreadCounts) {
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));
  ScratchDir scratch;
  ASSERT_TRUE(fed.AttachStorage(scratch.path).ok());

  // Recovery happens at the serial per-pattern merge point, so thread
  // count must not change a single byte of the outcome — answers, stats,
  // even the simulated latency sum.
  FederatedQueryResult reference;
  for (size_t threads = 1; threads <= 8; ++threads) {
    FederationOptions options;
    options.faults.crashed_peers = {0, 3};
    options.faults.drop_rate = 0.1;
    options.faults.seed = 7;
    options.threads = threads;
    Result<FederatedQueryResult> r = fed.Execute(q, options);
    ASSERT_TRUE(r.ok()) << "threads " << threads << ": " << r.status();
    if (threads == 1) {
      reference = std::move(*r);
      EXPECT_EQ(reference.completeness, Completeness::kComplete);
      EXPECT_EQ(reference.recovered_peers.size(), 2u);
      continue;
    }
    EXPECT_EQ(r->answers, reference.answers) << "threads " << threads;
    EXPECT_EQ(r->recovered_peers, reference.recovered_peers)
        << "threads " << threads;
    EXPECT_EQ(r->degraded_peers, reference.degraded_peers)
        << "threads " << threads;
    EXPECT_EQ(r->network.messages, reference.network.messages)
        << "threads " << threads;
    EXPECT_EQ(r->network.bytes, reference.network.bytes)
        << "threads " << threads;
    EXPECT_DOUBLE_EQ(r->network.latency_ms, reference.network.latency_ms)
        << "threads " << threads;
    EXPECT_EQ(r->retries, reference.retries) << "threads " << threads;
    EXPECT_EQ(r->timeouts, reference.timeouts) << "threads " << threads;
  }
}

TEST(PersistenceFederationTest, RecoverPeerErrorsAndIdempotence) {
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = MakeLodSystem(&config);
  Federator fed(sys.get(), LodTopology(config));

  // No storage attached: recovery is a precondition failure, not a crash.
  Status no_storage = fed.RecoverPeer(0);
  EXPECT_EQ(no_storage.code(), StatusCode::kFailedPrecondition);

  ScratchDir scratch;
  ASSERT_TRUE(fed.AttachStorage(scratch.path).ok());
  EXPECT_EQ(fed.RecoverPeer(999).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(fed.RecoverPeer(4).ok());
  EXPECT_TRUE(fed.IsRecovered(4));
  // Second recovery of the same peer is a no-op success.
  ASSERT_TRUE(fed.RecoverPeer(4).ok());
  EXPECT_TRUE(fed.IsRecovered(4));

  // A recovered endpoint serves the same answers as before the swap.
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Result<FederatedQueryResult> r = fed.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status();

  Federator fresh(sys.get(), LodTopology(config));
  Result<FederatedQueryResult> baseline = fresh.Execute(q);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_EQ(r->answers, baseline->answers);
}

}  // namespace
}  // namespace rps
