#include "config/mapping_dsl.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "gen/paper_example.h"
#include "peer/certain_answers.h"

namespace rps {
namespace {

// Writes a temp file under the test's scratch dir and returns its path.
std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return path;
}

constexpr const char* kSource1Ttl = R"(
@prefix DB1: <http://example.org/db1/> .
@prefix DB2: <http://example.org/db2/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix voc: <http://example.org/voc/> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
DB1:Spiderman voc:starring _:c1 , _:c2 ; owl:sameAs DB2:Spiderman2002 .
_:c1 voc:artist DB1:Toby_Maguire .
_:c2 voc:artist DB1:Kirsten_Dunst .
DB1:Toby_Maguire owl:sameAs foaf:Toby_Maguire .
DB1:Kirsten_Dunst owl:sameAs foaf:Kirsten_Dunst .
)";

constexpr const char* kSource2Nt = R"(
<http://example.org/db2/Spiderman2002> <http://example.org/voc/actor> <http://example.org/db2/Willem_Dafoe> .
<http://example.org/db2/Pleasantville> <http://example.org/voc/actor> <http://example.org/db2/Willem_Dafoe> .
)";

constexpr const char* kSource3Ttl = R"(
@prefix DB2: <http://example.org/db2/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix voc: <http://example.org/voc/> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
foaf:Toby_Maguire voc:age "39" .
foaf:Kirsten_Dunst voc:age "32" .
foaf:Willem_Dafoe voc:age "59" .
DB2:Willem_Dafoe owl:sameAs foaf:Willem_Dafoe .
)";

class MappingDslTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1_ = WriteTempFile("dsl_source1.ttl", kSource1Ttl);
    s2_ = WriteTempFile("dsl_source2.nt", kSource2Nt);
    s3_ = WriteTempFile("dsl_source3.ttl", kSource3Ttl);
  }

  std::string Config() {
    return "PREFIX voc: <http://example.org/voc/>\n"
           "PEER source1 FROM " + s1_ + "\n"
           "PEER source2 FROM " + s2_ + "\n"
           "PEER source3 FROM " + s3_ + "\n"
           "MAPPING \"Q2->Q1\" HEAD ?x ?y\n"
           "  FROM { ?x voc:actor ?y }\n"
           "  TO   { ?x voc:starring ?z . ?z voc:artist ?y }\n"
           "SAMEAS\n";
  }

  std::string s1_, s2_, s3_;
};

TEST_F(MappingDslTest, LoadsPeersMappingsAndEquivalences) {
  Result<std::unique_ptr<RpsSystem>> loaded = LoadRpsConfig(Config());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  RpsSystem& sys = **loaded;
  EXPECT_EQ(sys.PeerCount(), 3u);
  EXPECT_EQ(sys.dataset().TotalTriples(), 13u);
  EXPECT_EQ(sys.graph_mappings().size(), 1u);
  EXPECT_EQ(sys.equivalences().size(), 4u);
}

TEST_F(MappingDslTest, LoadedSystemMatchesProgrammaticFixture) {
  Result<std::unique_ptr<RpsSystem>> loaded = LoadRpsConfig(Config());
  ASSERT_TRUE(loaded.ok());
  RpsSystem& sys = **loaded;

  // Re-express the Listing 1 query against the loaded system's ids.
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  GraphPatternQuery q;
  VarId x = vars.Intern("qx"), y = vars.Intern("qy"), z = vars.Intern("qz");
  q.head = {x, y};
  auto iri = [&](const char* s) { return dict.InternIri(s); };
  q.body.Add(TriplePattern{
      PatternTerm::Const(iri("http://example.org/db1/Spiderman")),
      PatternTerm::Const(iri("http://example.org/voc/starring")),
      PatternTerm::Var(z)});
  q.body.Add(TriplePattern{
      PatternTerm::Var(z),
      PatternTerm::Const(iri("http://example.org/voc/artist")),
      PatternTerm::Var(x)});
  q.body.Add(TriplePattern{
      PatternTerm::Var(x),
      PatternTerm::Const(iri("http://example.org/voc/age")),
      PatternTerm::Var(y)});

  Result<CertainAnswerResult> loaded_answers = CertainAnswers(sys, q);
  ASSERT_TRUE(loaded_answers.ok());
  EXPECT_EQ(loaded_answers->answers.size(), 6u);  // Listing 1

  // Cross-check against the programmatic fixture's rendered answers.
  // (TermIds differ between the two dictionaries, so compare the rendered
  // rows as sets.)
  PaperExample ex = BuildPaperExample();
  Result<CertainAnswerResult> fixture_answers =
      CertainAnswers(*ex.system, ex.query);
  ASSERT_TRUE(fixture_answers.ok());
  auto sorted_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::string current;
    for (char c : text) {
      if (c == '\n') {
        lines.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(FormatAnswers(loaded_answers->answers, dict)),
            sorted_lines(FormatAnswers(fixture_answers->answers,
                                       *ex.system->dict())));
}

TEST_F(MappingDslTest, ExplicitEquivDirective) {
  std::string config =
      "PREFIX db1: <http://example.org/db1/>\n"
      "PREFIX db2: <http://example.org/db2/>\n"
      "PEER source1 FROM " + s1_ + "\n"
      "EQUIV db1:Spiderman db2:Spiderman2002\n"
      "EQUIV <http://example.org/db1/Toby_Maguire> "
      "<http://xmlns.com/foaf/0.1/Toby_Maguire>\n";
  Result<std::unique_ptr<RpsSystem>> loaded = LoadRpsConfig(config);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->equivalences().size(), 2u);
}

TEST_F(MappingDslTest, BaseDirResolution) {
  // Write a config referencing a bare filename, resolved via base_dir.
  std::string config_text =
      "PEER only FROM dsl_source2.nt\n";
  RpsConfigOptions options;
  options.base_dir = ::testing::TempDir();
  Result<std::unique_ptr<RpsSystem>> loaded =
      LoadRpsConfig(config_text, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->dataset().TotalTriples(), 2u);
}

TEST_F(MappingDslTest, LoadRpsConfigFileResolvesSiblingPaths) {
  std::string config_path = WriteTempFile(
      "dsl_config.rps",
      "PEER only FROM dsl_source3.ttl\nSAMEAS\n");
  Result<std::unique_ptr<RpsSystem>> loaded = LoadRpsConfigFile(config_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->PeerCount(), 1u);
  EXPECT_EQ((*loaded)->equivalences().size(), 1u);
}

TEST_F(MappingDslTest, Errors) {
  const std::string missing_file = "PEER x FROM /nonexistent/file.ttl\n";
  EXPECT_EQ(LoadRpsConfig(missing_file).status().code(),
            StatusCode::kNotFound);

  const std::string bad_directive = "FROB x\n";
  EXPECT_EQ(LoadRpsConfig(bad_directive).status().code(),
            StatusCode::kParseError);

  const std::string headless_mapping =
      "MAPPING \"m\" FROM { ?x <http://p> ?y } TO { ?x <http://q> ?y }\n";
  EXPECT_FALSE(LoadRpsConfig(headless_mapping).ok());

  const std::string undefined_prefix =
      "MAPPING \"m\" HEAD ?x ?y FROM { ?x nope:p ?y } "
      "TO { ?x nope:q ?y }\n";
  EXPECT_FALSE(LoadRpsConfig(undefined_prefix).ok());

  const std::string arity_head_not_in_body =
      "PREFIX p: <http://p/>\n"
      "MAPPING \"m\" HEAD ?x ?missing FROM { ?x p:a ?y } TO { ?x p:b ?y }\n";
  EXPECT_FALSE(LoadRpsConfig(arity_head_not_in_body).ok());
}

TEST_F(MappingDslTest, CommentsAndWhitespaceTolerated) {
  std::string config =
      "# leading comment\n"
      "\n"
      "PEER only FROM " + s2_ + "   # trailing comment\n"
      "# done\n";
  EXPECT_TRUE(LoadRpsConfig(config).ok());
}

TEST_F(MappingDslTest, SaveLoadRoundTrip) {
  // Load the paper config, save it to a workspace, reload, and compare
  // certain answers.
  Result<std::unique_ptr<RpsSystem>> original = LoadRpsConfig(Config());
  ASSERT_TRUE(original.ok()) << original.status();

  std::string out_dir = ::testing::TempDir() + "/dsl_roundtrip";
  std::string mkdir_cmd = "mkdir -p " + out_dir;
  ASSERT_EQ(std::system(mkdir_cmd.c_str()), 0);
  std::map<std::string, std::string> prefixes = {
      {"voc", "http://example.org/voc/"},
      {"DB1", "http://example.org/db1/"},
      {"DB2", "http://example.org/db2/"},
      {"foaf", "http://xmlns.com/foaf/0.1/"},
      {"owl", "http://www.w3.org/2002/07/owl#"}};
  Result<std::string> config_path =
      SaveRpsConfig(**original, out_dir, prefixes);
  ASSERT_TRUE(config_path.ok()) << config_path.status();

  Result<std::unique_ptr<RpsSystem>> reloaded =
      LoadRpsConfigFile(*config_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ((*reloaded)->PeerCount(), (*original)->PeerCount());
  EXPECT_EQ((*reloaded)->dataset().TotalTriples(),
            (*original)->dataset().TotalTriples());
  EXPECT_EQ((*reloaded)->graph_mappings().size(),
            (*original)->graph_mappings().size());
  EXPECT_EQ((*reloaded)->equivalences().size(),
            (*original)->equivalences().size());

  // Same certain answers for the Listing 1 query on both systems.
  auto answers_of = [](RpsSystem& sys) {
    Dictionary& dict = *sys.dict();
    VarPool& vars = *sys.vars();
    GraphPatternQuery q;
    VarId x = vars.Intern("rt_x"), y = vars.Intern("rt_y"),
          z = vars.Intern("rt_z");
    q.head = {x, y};
    q.body.Add(TriplePattern{
        PatternTerm::Const(
            dict.InternIri("http://example.org/db1/Spiderman")),
        PatternTerm::Const(dict.InternIri("http://example.org/voc/starring")),
        PatternTerm::Var(z)});
    q.body.Add(TriplePattern{
        PatternTerm::Var(z),
        PatternTerm::Const(dict.InternIri("http://example.org/voc/artist")),
        PatternTerm::Var(x)});
    q.body.Add(TriplePattern{
        PatternTerm::Var(x),
        PatternTerm::Const(dict.InternIri("http://example.org/voc/age")),
        PatternTerm::Var(y)});
    Result<CertainAnswerResult> result = CertainAnswers(sys, q);
    EXPECT_TRUE(result.ok());
    std::vector<std::string> lines;
    for (const Tuple& t : result->answers) {
      lines.push_back(dict.ToString(t[0]) + "\t" + dict.ToString(t[1]));
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(answers_of(**original), answers_of(**reloaded));
}

TEST(ReadFileTest, MissingFile) {
  EXPECT_EQ(ReadFileToString("/nonexistent/path").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace rps
