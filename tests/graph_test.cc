#include "rdf/graph.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() : graph_(&dict_) {
    s1_ = dict_.InternIri("http://x/s1");
    s2_ = dict_.InternIri("http://x/s2");
    p1_ = dict_.InternIri("http://x/p1");
    p2_ = dict_.InternIri("http://x/p2");
    o1_ = dict_.InternIri("http://x/o1");
    lit_ = dict_.InternLiteral("v");
    blank_ = dict_.InternBlank("b");
  }

  Dictionary dict_;
  Graph graph_;
  TermId s1_, s2_, p1_, p2_, o1_, lit_, blank_;
};

TEST_F(GraphTest, InsertAndContains) {
  Result<bool> r = graph_.Insert(Triple{s1_, p1_, o1_});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_TRUE(graph_.Contains(Triple{s1_, p1_, o1_}));
  EXPECT_EQ(graph_.size(), 1u);

  // Duplicate insert reports not-new.
  Result<bool> dup = graph_.Insert(Triple{s1_, p1_, o1_});
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(*dup);
  EXPECT_EQ(graph_.size(), 1u);
}

TEST_F(GraphTest, InsertValidatesKinds) {
  // Literal subject rejected.
  EXPECT_FALSE(graph_.Insert(Triple{lit_, p1_, o1_}).ok());
  // Non-IRI predicate rejected.
  EXPECT_FALSE(graph_.Insert(Triple{s1_, lit_, o1_}).ok());
  EXPECT_FALSE(graph_.Insert(Triple{s1_, blank_, o1_}).ok());
  // Blank subject and literal object allowed.
  EXPECT_TRUE(graph_.Insert(Triple{blank_, p1_, lit_}).ok());
  // Invalid ids rejected.
  EXPECT_FALSE(graph_.Insert(Triple{}).ok());
}

TEST_F(GraphTest, InsertTermsConvenience) {
  ASSERT_TRUE(graph_
                  .Insert(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
                          Term::Literal("42"))
                  .ok());
  EXPECT_EQ(graph_.size(), 1u);
}

TEST_F(GraphTest, MatchAllPatternShapes) {
  graph_.InsertUnchecked(Triple{s1_, p1_, o1_});
  graph_.InsertUnchecked(Triple{s1_, p2_, o1_});
  graph_.InsertUnchecked(Triple{s2_, p1_, lit_});

  // (s ? ?)
  EXPECT_EQ(graph_.MatchAll(s1_, std::nullopt, std::nullopt).size(), 2u);
  // (? p ?)
  EXPECT_EQ(graph_.MatchAll(std::nullopt, p1_, std::nullopt).size(), 2u);
  // (? ? o)
  EXPECT_EQ(graph_.MatchAll(std::nullopt, std::nullopt, o1_).size(), 2u);
  // (s p ?)
  EXPECT_EQ(graph_.MatchAll(s1_, p1_, std::nullopt).size(), 1u);
  // (s ? o)
  EXPECT_EQ(graph_.MatchAll(s1_, std::nullopt, o1_).size(), 2u);
  // (? p o)
  EXPECT_EQ(graph_.MatchAll(std::nullopt, p1_, o1_).size(), 1u);
  // (s p o)
  EXPECT_EQ(graph_.MatchAll(s1_, p1_, o1_).size(), 1u);
  // (? ? ?)
  EXPECT_EQ(graph_.MatchAll(std::nullopt, std::nullopt, std::nullopt).size(),
            3u);
}

TEST_F(GraphTest, MatchMissBoundTerm) {
  graph_.InsertUnchecked(Triple{s1_, p1_, o1_});
  // s2_ never occurs as a subject.
  EXPECT_TRUE(graph_.MatchAll(s2_, std::nullopt, std::nullopt).empty());
  // o1_ never occurs as a subject either.
  EXPECT_TRUE(graph_.MatchAll(o1_, std::nullopt, std::nullopt).empty());
}

TEST_F(GraphTest, MatchEarlyStop) {
  graph_.InsertUnchecked(Triple{s1_, p1_, o1_});
  graph_.InsertUnchecked(Triple{s1_, p2_, o1_});
  int count = 0;
  graph_.Match(s1_, std::nullopt, std::nullopt, [&](const Triple&) {
    ++count;
    return false;  // stop after the first
  });
  EXPECT_EQ(count, 1);
}

TEST_F(GraphTest, EstimateMatchesExact) {
  graph_.InsertUnchecked(Triple{s1_, p1_, o1_});
  graph_.InsertUnchecked(Triple{s1_, p2_, o1_});
  graph_.InsertUnchecked(Triple{s2_, p1_, lit_});
  EXPECT_EQ(graph_.EstimateMatches(std::nullopt, std::nullopt, std::nullopt),
            3u);
  EXPECT_EQ(graph_.EstimateMatches(s1_, std::nullopt, std::nullopt), 2u);
  EXPECT_EQ(graph_.EstimateMatches(s1_, p2_, std::nullopt), 1u);
  // Exact, not an upper bound: s2_ and p2_ each occur once (in different
  // triples), and the permuted indexes see that the combined pattern has
  // no match.
  EXPECT_EQ(graph_.EstimateMatches(s2_, p2_, std::nullopt), 0u);
  // Estimates equal the true match counts for all shapes.
  for (auto s : {std::optional<TermId>(), std::optional<TermId>(s1_)}) {
    for (auto p : {std::optional<TermId>(), std::optional<TermId>(p1_)}) {
      for (auto o : {std::optional<TermId>(), std::optional<TermId>(o1_)}) {
        EXPECT_EQ(graph_.EstimateMatches(s, p, o),
                  graph_.MatchAll(s, p, o).size());
      }
    }
  }
}

TEST_F(GraphTest, InsertAllMerges) {
  graph_.InsertUnchecked(Triple{s1_, p1_, o1_});
  Graph other(&dict_);
  other.InsertUnchecked(Triple{s1_, p1_, o1_});  // duplicate
  other.InsertUnchecked(Triple{s2_, p2_, o1_});  // new
  EXPECT_EQ(graph_.InsertAll(other), 1u);
  EXPECT_EQ(graph_.size(), 2u);
}

TEST_F(GraphTest, TermsInUse) {
  graph_.InsertUnchecked(Triple{s1_, p1_, lit_});
  auto terms = graph_.TermsInUse();
  EXPECT_EQ(terms.size(), 3u);
  EXPECT_TRUE(terms.count(s1_));
  EXPECT_TRUE(terms.count(p1_));
  EXPECT_TRUE(terms.count(lit_));
  EXPECT_FALSE(terms.count(s2_));
}

TEST_F(GraphTest, TermsInUseGrowsIncrementally) {
  EXPECT_TRUE(graph_.TermsInUse().empty());
  graph_.InsertUnchecked(Triple{s1_, p1_, o1_});
  EXPECT_EQ(graph_.TermsInUse().size(), 3u);
  graph_.InsertUnchecked(Triple{s1_, p1_, lit_});  // only lit_ is new
  EXPECT_EQ(graph_.TermsInUse().size(), 4u);
  EXPECT_TRUE(graph_.TermsInUse().count(lit_));
}

TEST_F(GraphTest, DeltaMergesIntoSortedBase) {
  // Below the merge threshold everything lives in the append-only delta.
  graph_.InsertUnchecked(Triple{s1_, p1_, o1_});
  EXPECT_EQ(graph_.base_size(), 0u);
  EXPECT_EQ(graph_.delta_size(), 1u);

  // Push far past the threshold: the base absorbs the delta and queries
  // stay exact across the merge boundary.
  Dictionary& d = dict_;
  for (int i = 0; i < 400; ++i) {
    graph_.InsertUnchecked(
        Triple{d.InternIri("http://x/s" + std::to_string(i % 40)), p1_,
               d.InternIri("http://x/o" + std::to_string(i))});
  }
  EXPECT_GT(graph_.base_size(), 0u);
  EXPECT_EQ(graph_.base_size() + graph_.delta_size(), graph_.size());
  EXPECT_EQ(graph_.EstimateMatches(std::nullopt, p1_, std::nullopt),
            graph_.MatchAll(std::nullopt, p1_, std::nullopt).size());
  TermId s7 = d.InternIri("http://x/s7");
  EXPECT_EQ(graph_.EstimateMatches(s7, p1_, std::nullopt),
            graph_.MatchAll(s7, p1_, std::nullopt).size());
  EXPECT_EQ(graph_.MatchAll(s7, p1_, std::nullopt).size(), 10u);
}

TEST_F(GraphTest, ReserveKeepsContents) {
  graph_.InsertUnchecked(Triple{s1_, p1_, o1_});
  graph_.Reserve(1000);
  EXPECT_EQ(graph_.size(), 1u);
  graph_.InsertUnchecked(Triple{s2_, p2_, o1_});
  EXPECT_EQ(graph_.MatchAll(std::nullopt, std::nullopt, o1_).size(), 2u);
}

}  // namespace
}  // namespace rps
