#include "util/union_find.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace rps {
namespace {

TEST(UnionFindTest, UnseenElementIsItsOwnRoot) {
  UnionFind uf;
  EXPECT_EQ(uf.Find(17), 17u);
  EXPECT_EQ(uf.size(), 0u);  // Find on unseen ids does not register
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf;
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Same(1, 2));
  EXPECT_FALSE(uf.Same(1, 3));
  uf.Union(2, 3);
  EXPECT_TRUE(uf.Same(1, 3));
}

TEST(UnionFindTest, MembersOfClique) {
  UnionFind uf;
  uf.Union(1, 2);
  uf.Union(2, 3);
  uf.Union(10, 11);
  std::vector<uint32_t> members = uf.Members(1);
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(uf.Members(42), (std::vector<uint32_t>{42}));
}

TEST(UnionFindTest, TransitivityProperty) {
  Rng rng(3);
  UnionFind uf;
  // Merge elements into 8 buckets via a reference map, compare behaviour.
  std::vector<uint32_t> bucket(200);
  for (uint32_t i = 0; i < 200; ++i) bucket[i] = i % 8;
  for (uint32_t i = 8; i < 200; ++i) {
    uf.Union(i, bucket[i]);  // representative seeds 0..7
  }
  for (int trial = 0; trial < 500; ++trial) {
    uint32_t a = static_cast<uint32_t>(rng.Index(200));
    uint32_t b = static_cast<uint32_t>(rng.Index(200));
    EXPECT_EQ(uf.Same(a, b), bucket[a] == bucket[b])
        << "a=" << a << " b=" << b;
  }
}

TEST(UnionFindTest, UnionReturnsRepresentative) {
  UnionFind uf;
  uint32_t rep = uf.Union(5, 6);
  EXPECT_TRUE(rep == 5 || rep == 6);
  EXPECT_EQ(uf.Find(5), rep);
  EXPECT_EQ(uf.Find(6), rep);
}

}  // namespace
}  // namespace rps
