#include "peer/equivalence.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

class EquivalenceTest : public ::testing::Test {
 protected:
  EquivalenceTest() {
    a_ = dict_.InternIri("http://a/x");   // lexicographically smallest
    b_ = dict_.InternIri("http://b/x");
    c_ = dict_.InternIri("http://c/x");
    d_ = dict_.InternIri("http://d/x");
    p_ = dict_.InternIri("http://p/p");
  }

  Dictionary dict_;
  TermId a_, b_, c_, d_, p_;
};

TEST_F(EquivalenceTest, CanonOfUnmappedTermIsIdentity) {
  EquivalenceClosure closure({}, dict_);
  EXPECT_EQ(closure.Canon(a_), a_);
  EXPECT_TRUE(closure.IsCanonical(a_));
  EXPECT_EQ(closure.Clique(a_), (std::vector<TermId>{a_}));
  EXPECT_EQ(closure.CliqueCount(), 0u);
  EXPECT_EQ(closure.LargestClique(), 1u);
}

TEST_F(EquivalenceTest, TransitiveCliqueSharesCanon) {
  std::vector<EquivalenceMapping> mappings = {{b_, c_}, {c_, d_}};
  EquivalenceClosure closure(mappings, dict_);
  EXPECT_EQ(closure.Canon(b_), closure.Canon(d_));
  EXPECT_EQ(closure.CliqueCount(), 1u);
  EXPECT_EQ(closure.LargestClique(), 3u);
  EXPECT_EQ(closure.Clique(c_).size(), 3u);
}

TEST_F(EquivalenceTest, CanonIsLexicographicallySmallest) {
  // This matches the paper's "result without redundancy" convention.
  std::vector<EquivalenceMapping> mappings = {{c_, a_}, {c_, b_}};
  EquivalenceClosure closure(mappings, dict_);
  EXPECT_EQ(closure.Canon(a_), a_);
  EXPECT_EQ(closure.Canon(b_), a_);
  EXPECT_EQ(closure.Canon(c_), a_);
}

TEST_F(EquivalenceTest, SeparateCliquesStaySeparate) {
  std::vector<EquivalenceMapping> mappings = {{a_, b_}, {c_, d_}};
  EquivalenceClosure closure(mappings, dict_);
  EXPECT_NE(closure.Canon(a_), closure.Canon(c_));
  EXPECT_EQ(closure.CliqueCount(), 2u);
}

TEST_F(EquivalenceTest, CanonicalizeGraphRewritesAllPositions) {
  std::vector<EquivalenceMapping> mappings = {{a_, b_}};
  EquivalenceClosure closure(mappings, dict_);
  Graph g(&dict_);
  g.InsertUnchecked(Triple{b_, p_, b_});
  g.InsertUnchecked(Triple{c_, b_, c_});
  Graph canonical = closure.CanonicalizeGraph(g);
  EXPECT_TRUE(canonical.Contains(Triple{a_, p_, a_}));
  EXPECT_TRUE(canonical.Contains(Triple{c_, a_, c_}));
  EXPECT_EQ(canonical.size(), 2u);
}

TEST_F(EquivalenceTest, CanonicalizeGraphMergesEquivalentTriples) {
  std::vector<EquivalenceMapping> mappings = {{a_, b_}};
  EquivalenceClosure closure(mappings, dict_);
  Graph g(&dict_);
  g.InsertUnchecked(Triple{a_, p_, c_});
  g.InsertUnchecked(Triple{b_, p_, c_});  // same triple after canon
  Graph canonical = closure.CanonicalizeGraph(g);
  EXPECT_EQ(canonical.size(), 1u);
}

TEST_F(EquivalenceTest, CanonicalizeQueryRewritesConstants) {
  std::vector<EquivalenceMapping> mappings = {{a_, b_}};
  EquivalenceClosure closure(mappings, dict_);
  VarPool vars;
  VarId x = vars.Intern("x");
  GraphPatternQuery q;
  q.head = {x};
  q.body.Add(TriplePattern{PatternTerm::Const(b_), PatternTerm::Const(p_),
                           PatternTerm::Var(x)});
  GraphPatternQuery canonical = closure.CanonicalizeQuery(q);
  EXPECT_EQ(canonical.body.patterns()[0].s.term(), a_);
  EXPECT_EQ(canonical.head, q.head);
}

TEST_F(EquivalenceTest, ExpandTuplesCartesian) {
  std::vector<EquivalenceMapping> mappings = {{a_, b_}, {c_, d_}};
  EquivalenceClosure closure(mappings, dict_);
  std::vector<Tuple> canonical = {{closure.Canon(a_), closure.Canon(c_)}};
  std::vector<Tuple> expanded = closure.ExpandTuples(canonical);
  // 2 × 2 combinations.
  EXPECT_EQ(expanded.size(), 4u);
}

TEST_F(EquivalenceTest, ExpandTuplesLeavesUnmappedValues) {
  std::vector<EquivalenceMapping> mappings = {{a_, b_}};
  EquivalenceClosure closure(mappings, dict_);
  std::vector<Tuple> expanded = closure.ExpandTuples({{a_, p_}});
  EXPECT_EQ(expanded.size(), 2u);  // {a,p} and {b,p}
}

TEST_F(EquivalenceTest, ExpandTuplesDeduplicates) {
  std::vector<EquivalenceMapping> mappings = {{a_, b_}};
  EquivalenceClosure closure(mappings, dict_);
  // Both input tuples canonicalize to the same expansion set.
  std::vector<Tuple> expanded = closure.ExpandTuples({{a_}, {a_}});
  EXPECT_EQ(expanded.size(), 2u);
}

}  // namespace
}  // namespace rps
