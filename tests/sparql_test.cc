#include "parser/sparql.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

class SparqlTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  VarPool vars_;
};

TEST_F(SparqlTest, BasicSelect) {
  const char* text =
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?x ?y WHERE { ex:film ex:starring ?z . ?z ex:artist ?x . "
      "?x ex:age ?y }";
  Result<ParsedQuery> q = ParseSparql(text, &dict_, &vars_);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(q->is_ask);
  EXPECT_EQ(q->projection.size(), 2u);
  ASSERT_EQ(q->branches.size(), 1u);
  EXPECT_EQ(q->branches[0].size(), 3u);
  EXPECT_EQ(vars_.name(q->projection[0]), "x");
}

TEST_F(SparqlTest, SelectWithoutWhereKeyword) {
  Result<ParsedQuery> q = ParseSparql(
      "SELECT ?s { ?s <http://p> <http://o> }", &dict_, &vars_);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->projection.size(), 1u);
}

TEST_F(SparqlTest, Ask) {
  Result<ParsedQuery> q = ParseSparql(
      "ASK { <http://s> <http://p> \"42\" }", &dict_, &vars_);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->is_ask);
  EXPECT_TRUE(q->projection.empty());
}

TEST_F(SparqlTest, AskWithUnion) {
  // The Listing 2 shape.
  const char* text =
      "PREFIX ex: <http://x/>\n"
      "ASK {{ ex:s ex:p ?z . ?z ex:q ex:a } UNION { ex:s ex:p ?z . "
      "?z ex:q ex:b }}";
  Result<ParsedQuery> q = ParseSparql(text, &dict_, &vars_);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->is_ask);
  EXPECT_EQ(q->branches.size(), 2u);
}

TEST_F(SparqlTest, NestedUnionsFlatten) {
  const char* text =
      "ASK {{ <http://s> <http://p> ?a } UNION {{ <http://s> <http://q> ?a }"
      " UNION { <http://s> <http://r> ?a }}}";
  Result<ParsedQuery> q = ParseSparql(text, &dict_, &vars_);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->branches.size(), 3u);
}

TEST_F(SparqlTest, SelectStar) {
  Result<ParsedQuery> q = ParseSparql(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c }", &dict_,
      &vars_);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->select_all);
  ASSERT_EQ(q->projection.size(), 3u);
  EXPECT_EQ(vars_.name(q->projection[0]), "a");
  EXPECT_EQ(vars_.name(q->projection[1]), "b");
  EXPECT_EQ(vars_.name(q->projection[2]), "c");
}

TEST_F(SparqlTest, SelectStarRejectsMismatchedBranches) {
  const char* text =
      "SELECT * WHERE {{ ?a <http://p> ?b } UNION { ?a <http://p> ?c }}";
  EXPECT_FALSE(ParseSparql(text, &dict_, &vars_).ok());
}

TEST_F(SparqlTest, LiteralsNumbersAndA) {
  const char* text =
      "SELECT ?x WHERE { ?x a <http://x/Film> . ?x <http://x/age> 42 . "
      "?x <http://x/name> \"Sam\"@en }";
  Result<ParsedQuery> q = ParseSparql(text, &dict_, &vars_);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(dict_.Lookup(Term::Iri(std::string(kRdfType))).has_value());
  EXPECT_TRUE(
      dict_.Lookup(Term::TypedLiteral("42", std::string(kXsdInteger)))
          .has_value());
  EXPECT_TRUE(dict_.Lookup(Term::LangLiteral("Sam", "en")).has_value());
}

TEST_F(SparqlTest, DollarVariables) {
  Result<ParsedQuery> q =
      ParseSparql("SELECT $x WHERE { $x <http://p> $y }", &dict_, &vars_);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(vars_.name(q->projection[0]), "x");
}

TEST_F(SparqlTest, Errors) {
  for (const char* text : {
           "FETCH ?x WHERE { ?x <http://p> ?y }",       // bad verb
           "SELECT WHERE { ?x <http://p> ?y }",          // no projection
           "SELECT ?x { ?x <http://p> }",                // incomplete triple
           "SELECT ?x { ?x <http://p> ?y",               // missing brace
           "SELECT ?x { ?x nope:p ?y }",                 // undefined prefix
           "SELECT ?x { ?x <http://p> ?y } trailing",    // trailing junk
           "SELECT ?x { ?x \"lit\" ?y }",                // literal predicate
           "SELECT ?x { _:b <http://p> ?y }",            // blank node
           "SELECT ?x { }",                              // empty pattern
       }) {
    EXPECT_FALSE(ParseSparql(text, &dict_, &vars_).ok()) << text;
  }
}

TEST_F(SparqlTest, ToQueriesValidatesProjection) {
  Result<ParsedQuery> q = ParseSparql(
      "SELECT ?x WHERE {{ ?x <http://p> ?y } UNION { ?z <http://p> ?y }}",
      &dict_, &vars_);
  ASSERT_TRUE(q.ok()) << q.status();
  // ?x is not bound in the second branch.
  EXPECT_FALSE(q->ToQueries().ok());
}

TEST_F(SparqlTest, WriterRoundTrip) {
  const char* text =
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?x ?y WHERE { ex:film ex:starring ?z . ?z ex:artist ?x . "
      "?x ex:age ?y }";
  Result<ParsedQuery> q = ParseSparql(text, &dict_, &vars_);
  ASSERT_TRUE(q.ok());
  std::map<std::string, std::string> prefixes = {
      {"ex", "http://example.org/"}};
  std::string rendered = WriteSparql(*q, dict_, vars_, prefixes);
  Result<ParsedQuery> reparsed = ParseSparql(rendered, &dict_, &vars_);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << rendered;
  EXPECT_EQ(reparsed->projection, q->projection);
  EXPECT_EQ(reparsed->branches.size(), q->branches.size());
  EXPECT_EQ(reparsed->branches[0], q->branches[0]);
}

TEST_F(SparqlTest, WriterRendersUnion) {
  const char* text =
      "ASK {{ <http://s> <http://p> ?a } UNION { <http://s> <http://q> ?a }}";
  Result<ParsedQuery> q = ParseSparql(text, &dict_, &vars_);
  ASSERT_TRUE(q.ok());
  std::string rendered = WriteSparql(*q, dict_, vars_, {});
  EXPECT_NE(rendered.find("UNION"), std::string::npos);
  Result<ParsedQuery> reparsed = ParseSparql(rendered, &dict_, &vars_);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(reparsed->branches.size(), 2u);
}

}  // namespace
}  // namespace rps
