#include "datalog/translate.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/paper_example.h"
#include "peer/certain_answers.h"

namespace rps {
namespace {

class DatalogEngineTest : public ::testing::Test {
 protected:
  DatalogEngineTest() {
    edge_ = preds_.Intern("edge", 2);
    path_ = preds_.Intern("path", 2);
    x_ = vars_.Intern("x");
    y_ = vars_.Intern("y");
    z_ = vars_.Intern("z");
    for (int i = 0; i < 10; ++i) {
      nodes_.push_back(dict_.InternIri("http://x/n" + std::to_string(i)));
    }
  }

  DatalogProgram TransitiveClosureProgram() {
    DatalogProgram program;
    // path(x,y) :- edge(x,y).
    DatalogRule base;
    base.head = Atom{path_, {AtomArg::Var(x_), AtomArg::Var(y_)}};
    base.body = {Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(y_)}}};
    program.rules.push_back(base);
    // path(x,y) :- path(x,z), edge(z,y).
    DatalogRule step;
    step.head = Atom{path_, {AtomArg::Var(x_), AtomArg::Var(y_)}};
    step.body = {Atom{path_, {AtomArg::Var(x_), AtomArg::Var(z_)}},
                 Atom{edge_, {AtomArg::Var(z_), AtomArg::Var(y_)}}};
    program.rules.push_back(step);
    return program;
  }

  PredTable preds_;
  Dictionary dict_;
  VarPool vars_;
  PredId edge_, path_;
  VarId x_, y_, z_;
  std::vector<TermId> nodes_;
};

TEST_F(DatalogEngineTest, ValidateRejectsUnsafeRules) {
  DatalogRule rule;
  rule.head = Atom{path_, {AtomArg::Var(x_), AtomArg::Var(y_)}};
  rule.body = {Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(x_)}}};
  EXPECT_FALSE(rule.Validate().ok());  // y not range-restricted
  DatalogRule empty;
  empty.head = Atom{path_, {AtomArg::Const(nodes_[0]),
                            AtomArg::Const(nodes_[1])}};
  EXPECT_FALSE(empty.Validate().ok());  // empty body
}

TEST_F(DatalogEngineTest, TransitiveClosureFixpoint) {
  RelationalInstance db(&preds_);
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    db.Insert(edge_, {nodes_[i], nodes_[i + 1]});
  }
  Result<DatalogEvalStats> stats =
      EvaluateDatalog(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(db.Facts(path_).size(),
            static_cast<size_t>(n * (n + 1) / 2));
  // Spot check the longest path.
  EXPECT_TRUE(db.Contains(path_, {nodes_[0], nodes_[n]}));
}

TEST_F(DatalogEngineTest, SemiNaiveRoundsAreLinearInDepth) {
  RelationalInstance db(&preds_);
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    db.Insert(edge_, {nodes_[i], nodes_[i + 1]});
  }
  Result<DatalogEvalStats> stats =
      EvaluateDatalog(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(stats.ok());
  // Left-linear closure needs ~n rounds (+1 empty-fixpoint round).
  EXPECT_LE(stats->rounds, static_cast<size_t>(n + 2));
  EXPECT_GE(stats->rounds, 3u);
}

TEST_F(DatalogEngineTest, FixpointIsIdempotent) {
  RelationalInstance db(&preds_);
  for (int i = 0; i < 4; ++i) {
    db.Insert(edge_, {nodes_[i], nodes_[i + 1]});
  }
  ASSERT_TRUE(EvaluateDatalog(TransitiveClosureProgram(), &db).ok());
  size_t facts = db.FactCount();
  Result<DatalogEvalStats> again =
      EvaluateDatalog(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->facts_derived, 0u);
  EXPECT_EQ(db.FactCount(), facts);
}

TEST_F(DatalogEngineTest, BudgetStopsRunawayPrograms) {
  RelationalInstance db(&preds_);
  for (int i = 0; i < 6; ++i) {
    db.Insert(edge_, {nodes_[i], nodes_[(i + 1) % 6]});  // a cycle
  }
  DatalogEvalOptions options;
  options.max_rounds = 1;
  Result<DatalogEvalStats> stats =
      EvaluateDatalog(TransitiveClosureProgram(), &db, options);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DatalogEngineTest, ConstantHeadsAndBodies) {
  // flagged(n0, y) :- edge(n0, y).
  DatalogProgram program;
  PredId flagged = preds_.Intern("flagged", 2);
  DatalogRule rule;
  rule.head = Atom{flagged, {AtomArg::Const(nodes_[0]), AtomArg::Var(y_)}};
  rule.body = {Atom{edge_, {AtomArg::Const(nodes_[0]), AtomArg::Var(y_)}}};
  program.rules.push_back(rule);

  RelationalInstance db(&preds_);
  db.Insert(edge_, {nodes_[0], nodes_[1]});
  db.Insert(edge_, {nodes_[2], nodes_[3]});
  ASSERT_TRUE(EvaluateDatalog(program, &db).ok());
  EXPECT_EQ(db.Facts(flagged).size(), 1u);
}

TEST(DatalogTranslateTest, RejectsExistentialGmas) {
  // The paper example's GMA has an existential z in Q' — Datalog cannot
  // express it.
  PaperExample ex = BuildPaperExample();
  PredTable preds;
  Result<DatalogRewriting> rewriting =
      CompileRpsToDatalog(*ex.system, &preds);
  EXPECT_FALSE(rewriting.ok());
  EXPECT_EQ(rewriting.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DatalogTranslateTest, TransitiveClosureMatchesChase) {
  // Proposition 3's mapping: FO-rewriting impossible, Datalog exact.
  for (size_t n : {4u, 8u, 16u}) {
    std::unique_ptr<RpsSystem> sys = GenerateTransitiveClosureSystem(n);
    GraphPatternQuery q = TransitiveQuery(sys.get());

    Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
    ASSERT_TRUE(chase.ok());
    DatalogEvalStats stats;
    Result<std::vector<Tuple>> datalog =
        DatalogCertainAnswers(*sys, q, &stats);
    ASSERT_TRUE(datalog.ok()) << datalog.status();
    EXPECT_TRUE(stats.completed);
    EXPECT_EQ(chase->answers, *datalog) << "n=" << n;
  }
}

TEST(DatalogTranslateTest, ChainSystemMatchesChase) {
  std::unique_ptr<RpsSystem> sys = GenerateChainRps(4, 10, 81);
  GraphPatternQuery q = ChainQuery(sys.get(), 4);
  Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
  ASSERT_TRUE(chase.ok());
  Result<std::vector<Tuple>> datalog = DatalogCertainAnswers(*sys, q);
  ASSERT_TRUE(datalog.ok());
  EXPECT_EQ(chase->answers, *datalog);
}

TEST(DatalogTranslateTest, EquivalencesMatchChase) {
  std::unique_ptr<RpsSystem> sys = GenerateSameAsCliques(6, 4, 2, 82);
  Dictionary* dict = sys->dict();
  VarPool* vars = sys->vars();
  GraphPatternQuery q;
  VarId x = vars->Intern("dx"), y = vars->Intern("dy");
  q.head = {x, y};
  q.body.Add(TriplePattern{PatternTerm::Var(x),
                           PatternTerm::Const(dict->InternIri(
                               "http://example.org/prop0")),
                           PatternTerm::Var(y)});
  Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
  ASSERT_TRUE(chase.ok());
  Result<std::vector<Tuple>> datalog = DatalogCertainAnswers(*sys, q);
  ASSERT_TRUE(datalog.ok());
  EXPECT_EQ(chase->answers, *datalog);
}

TEST(DatalogTranslateTest, GuardsBlockBlankHeadBindings) {
  // A stored triple with a blank object must not trigger the GMA through
  // the nonblank guard — mirroring the rt semantics of §3.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  TermId p = dict.InternIri("http://x/p");
  TermId q_prop = dict.InternIri("http://x/q");
  TermId a = dict.InternIri("http://x/a");
  TermId blank = dict.InternBlank("b");
  sys.AddPeer("peer").InsertUnchecked(Triple{a, p, blank});

  VarId x = vars.Intern("gx"), y = vars.Intern("gy");
  GraphMappingAssertion gma;
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                PatternTerm::Const(q_prop),
                                PatternTerm::Var(y)});
  ASSERT_TRUE(sys.AddGraphMapping(gma).ok());

  GraphPatternQuery query;
  VarId qx = vars.Intern("qx"), qy = vars.Intern("qy");
  query.head = {qx, qy};
  query.body.Add(TriplePattern{PatternTerm::Var(qx),
                               PatternTerm::Const(q_prop),
                               PatternTerm::Var(qy)});
  Result<std::vector<Tuple>> datalog = DatalogCertainAnswers(sys, query);
  ASSERT_TRUE(datalog.ok());
  EXPECT_TRUE(datalog->empty());

  Result<CertainAnswerResult> chase = CertainAnswers(sys, query);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(chase->answers, *datalog);
}

TEST(DatalogTranslateTest, ProgramRendersReadably) {
  std::unique_ptr<RpsSystem> sys = GenerateTransitiveClosureSystem(2);
  PredTable preds;
  Result<DatalogRewriting> rewriting = CompileRpsToDatalog(*sys, &preds);
  ASSERT_TRUE(rewriting.ok());
  std::string text = ToString(rewriting->program, preds, *sys->dict(),
                              *sys->vars());
  EXPECT_NE(text.find(":-"), std::string::npos);
  EXPECT_NE(text.find("tt("), std::string::npos);
  EXPECT_NE(text.find("ts("), std::string::npos);
}

}  // namespace
}  // namespace rps
