// QueryServer: snapshot-isolated concurrent serving over one graph.
// Covers serve-while-ingest parity against a serial prefix oracle,
// byte-identity of answers across worker counts 1..8, per-query budget
// behaviour (scan caps flagged, answers still sound), FIFO admission
// with bounded-queue rejection, and clean shutdown semantics. Runs
// under the TSan preset (scripts/check_tsan.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "query/eval.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "server/query_server.h"

namespace rps {
namespace {

// A graph of `rows` (s_i, p_{i%np}, o_i) triples plus join edges
// (o_i, link, s_{i+1}) so multi-pattern queries have real join work.
void FillGraph(Graph* graph, Dictionary* dict, size_t rows, size_t np) {
  TermId link = dict->InternIri("http://t/link");
  for (size_t i = 0; i < rows; ++i) {
    TermId s = dict->InternIri("http://t/s" + std::to_string(i));
    TermId p = dict->InternIri("http://t/p" + std::to_string(i % np));
    TermId o = dict->InternIri("http://t/o" + std::to_string(i));
    graph->InsertUnchecked(Triple{s, p, o});
    TermId s_next =
        dict->InternIri("http://t/s" + std::to_string((i + 1) % rows));
    graph->InsertUnchecked(Triple{o, link, s_next});
  }
}

std::vector<GraphPatternQuery> MakeQueries(Dictionary* dict, VarPool* vars,
                                           size_t np) {
  std::vector<GraphPatternQuery> queries;
  VarId x = vars->Intern("x"), y = vars->Intern("y"), z = vars->Intern("z");
  TermId link = dict->InternIri("http://t/link");
  for (size_t i = 0; i < np; ++i) {
    TermId p = dict->InternIri("http://t/p" + std::to_string(i));
    GraphPatternQuery scan;
    scan.head = {x, y};
    scan.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                                PatternTerm::Var(y)});
    queries.push_back(scan);

    GraphPatternQuery join;
    join.head = {x, z};
    join.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                                PatternTerm::Var(y)});
    join.body.Add(TriplePattern{PatternTerm::Var(y),
                                PatternTerm::Const(link),
                                PatternTerm::Var(z)});
    queries.push_back(join);
  }
  return queries;
}

TEST(QueryServerTest, ServesWhileIngestingWithSnapshotParity) {
  Dictionary dict;
  Graph graph(&dict);
  FillGraph(&graph, &dict, 300, 3);
  VarPool vars;
  std::vector<GraphPatternQuery> queries = MakeQueries(&dict, &vars, 3);

  QueryServerOptions options;
  options.worker_threads = 4;
  QueryServer server(&graph, options);

  // Ingest feed: fresh triples under predicate p0, minting new IRIs
  // through the concurrent dictionary.
  std::atomic<bool> stop_ingest{false};
  TermId p0 = dict.InternIri("http://t/p0");
  std::thread ingester([&] {
    size_t i = 0;
    while (!stop_ingest.load(std::memory_order_acquire)) {
      std::vector<Triple> batch;
      for (int j = 0; j < 4; ++j, ++i) {
        batch.push_back(
            Triple{dict.InternIri("http://t/live_s" + std::to_string(i)),
                   p0,
                   dict.InternIri("http://t/live_o" + std::to_string(i))});
      }
      server.Ingest(batch);
    }
  });

  struct Record {
    size_t query_index;
    size_t epoch;
    std::vector<Tuple> answers;
  };
  const size_t kClients = 4, kRequests = 12;
  std::vector<std::vector<Record>> records(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequests; ++r) {
        size_t qi = (c + r) % queries.size();
        Result<QueryResponse> response = server.Execute(queries[qi]);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        records[c].push_back(
            Record{qi, response->epoch, std::move(response->answers)});
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop_ingest.store(true, std::memory_order_release);
  ingester.join();
  server.Stop();

  // Epochs must be monotone per client (FIFO against a growing graph can
  // only move forward for one blocking caller).
  bool saw_growth = false;
  for (const auto& client_records : records) {
    for (size_t i = 1; i < client_records.size(); ++i) {
      EXPECT_GE(client_records[i].epoch, client_records[i - 1].epoch);
      if (client_records[i].epoch != client_records[i - 1].epoch) {
        saw_growth = true;
      }
    }
  }
  EXPECT_TRUE(saw_growth) << "ingest never landed during serving";

  // Parity: every response equals the serial evaluation of the graph's
  // first `epoch` triples.
  for (const auto& client_records : records) {
    for (const Record& rec : client_records) {
      Graph prefix(&dict);
      prefix.Reserve(rec.epoch);
      for (size_t i = 0; i < rec.epoch; ++i) {
        prefix.InsertUnchecked(graph.triples()[i]);
      }
      std::vector<Tuple> expected = EvalQuery(
          prefix, queries[rec.query_index], QuerySemantics::kDropBlanks);
      SortTuples(&expected);
      ASSERT_EQ(expected, rec.answers)
          << "query " << rec.query_index << " epoch " << rec.epoch;
    }
  }
}

TEST(QueryServerTest, AnswersAreByteIdenticalAcrossWorkerCounts) {
  // With ingest disabled the epoch is fixed, so every worker count must
  // produce exactly the same bytes for the same query.
  Dictionary dict;
  Graph reference(&dict);
  FillGraph(&reference, &dict, 200, 4);
  VarPool vars;
  std::vector<GraphPatternQuery> queries = MakeQueries(&dict, &vars, 4);

  std::vector<std::vector<std::vector<Tuple>>> per_worker_answers;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    Graph graph = reference;  // fresh copy per server
    QueryServerOptions options;
    options.worker_threads = workers;
    QueryServer server(&graph, options);

    std::vector<std::vector<Tuple>> answers(queries.size());
    std::vector<std::thread> clients;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      clients.emplace_back([&, qi] {
        Result<QueryResponse> response = server.Execute(queries[qi]);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        EXPECT_EQ(response->epoch, reference.size());
        answers[qi] = std::move(response->answers);
      });
    }
    for (std::thread& t : clients) t.join();
    server.Stop();
    per_worker_answers.push_back(std::move(answers));
  }

  for (size_t w = 1; w < per_worker_answers.size(); ++w) {
    ASSERT_EQ(per_worker_answers[w], per_worker_answers[0])
        << "worker-count sweep " << w << " diverged from single-worker";
  }
}

TEST(QueryServerTest, ScanCapFlagsBudgetExceededWithSoundAnswers) {
  Dictionary dict;
  Graph graph(&dict);
  FillGraph(&graph, &dict, 400, 1);
  VarPool vars;
  std::vector<GraphPatternQuery> queries = MakeQueries(&dict, &vars, 1);
  std::vector<Tuple> full =
      EvalQuery(graph, queries[0], QuerySemantics::kDropBlanks);
  SortTuples(&full);

  QueryServerOptions options;
  options.worker_threads = 2;
  options.max_scanned = 32;
  QueryServer server(&graph, options);

  Result<QueryResponse> response = server.Execute(queries[0]);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->budget_exceeded);
  EXPECT_LT(response->answers.size(), full.size());
  EXPECT_TRUE(std::includes(full.begin(), full.end(),
                            response->answers.begin(),
                            response->answers.end()));
}

TEST(QueryServerTest, BoundedQueueRejectsOverload) {
  Dictionary dict;
  Graph graph(&dict);
  FillGraph(&graph, &dict, 400, 2);
  VarPool vars;
  std::vector<GraphPatternQuery> queries = MakeQueries(&dict, &vars, 2);

  QueryServerOptions options;
  options.worker_threads = 1;
  options.max_queue = 1;
  QueryServer server(&graph, options);

  // 16 simultaneous clients against one worker and a 1-deep queue: the
  // worker cannot drain microsecond-spaced arrivals of millisecond-long
  // queries, so some must be turned away — and everything else must
  // still complete correctly. A burst is timing-dependent in principle,
  // so re-burst a few times rather than flake.
  const size_t kClients = 16;
  std::atomic<size_t> completed{0}, rejected{0};
  for (int attempt = 0; attempt < 5 && rejected.load() == 0; ++attempt) {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Result<QueryResponse> response =
            server.Execute(queries[c % queries.size()]);
        if (response.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_EQ(response.status().code(),
                    StatusCode::kResourceExhausted);
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(completed.load() + rejected.load(),
              kClients * static_cast<size_t>(attempt + 1));
  }
  EXPECT_GE(completed.load(), 1u);
  EXPECT_GE(rejected.load(), 1u);
}

TEST(QueryServerTest, ExecuteAfterStopFailsCleanly) {
  Dictionary dict;
  Graph graph(&dict);
  FillGraph(&graph, &dict, 10, 1);
  VarPool vars;
  std::vector<GraphPatternQuery> queries = MakeQueries(&dict, &vars, 1);

  QueryServer server(&graph);
  Result<QueryResponse> ok_response = server.Execute(queries[0]);
  ASSERT_TRUE(ok_response.ok());
  server.Stop();
  server.Stop();  // idempotent

  Result<QueryResponse> response = server.Execute(queries[0]);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);

  // Ingest still works after Stop (the graph outlives the server).
  TermId p = dict.InternIri("http://t/p0");
  size_t added = server.Ingest({Triple{dict.InternIri("http://t/after_s"),
                                       p,
                                       dict.InternIri("http://t/after_o")}});
  EXPECT_EQ(added, 1u);
}

TEST(QueryServerCacheTest, RepeatHitsAndIngestBetweenIdenticalQueries) {
  Dictionary dict;
  Graph graph(&dict);
  FillGraph(&graph, &dict, 100, 2);
  VarPool vars;
  std::vector<GraphPatternQuery> queries = MakeQueries(&dict, &vars, 2);

  QueryServerOptions options;
  options.worker_threads = 2;
  options.answer_cache.enabled = true;
  QueryServer server(&graph, options);

  // First evaluation misses, identical repeat hits with the same bytes.
  Result<QueryResponse> first = server.Execute(queries[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  Result<QueryResponse> repeat = server.Execute(queries[0]);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->cache_hit);
  EXPECT_EQ(repeat->epoch, first->epoch);
  EXPECT_EQ(repeat->answers, first->answers);

  // Ingest lands between two identical queries. The new triple matches
  // queries[0]'s footprint (predicate p0), so the next execution must
  // observe the new epoch — never a stale hit.
  TermId p0 = dict.InternIri("http://t/p0");
  TermId s = dict.InternIri("http://t/fresh_s");
  TermId o = dict.InternIri("http://t/fresh_o");
  ASSERT_EQ(server.Ingest({Triple{s, p0, o}}), 1u);
  Result<QueryResponse> after = server.Execute(queries[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit) << "stale hit across a touching ingest";
  EXPECT_GT(after->epoch, first->epoch);
  EXPECT_GT(after->answers.size(), first->answers.size());
  EXPECT_TRUE(std::find(after->answers.begin(), after->answers.end(),
                        Tuple{s, o}) != after->answers.end());

  // An ingest that misses the footprint promotes the entry: the repeat
  // still hits, at the advanced epoch, with unchanged bytes.
  Result<QueryResponse> warm = server.Execute(queries[0]);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  TermId other = dict.InternIri("http://t/unrelated_p");
  ASSERT_EQ(server.Ingest({Triple{s, other, o}}), 1u);
  Result<QueryResponse> promoted = server.Execute(queries[0]);
  ASSERT_TRUE(promoted.ok());
  EXPECT_TRUE(promoted->cache_hit) << "untouching ingest dropped the entry";
  EXPECT_GT(promoted->epoch, warm->epoch);
  EXPECT_EQ(promoted->answers, after->answers);

  server.Stop();
  AnswerCacheStats stats = server.CacheStats();
  EXPECT_GE(stats.hits, 3u);
  EXPECT_GE(stats.misses, 2u);
  EXPECT_GE(stats.invalidations, 1u);
}

TEST(QueryServerCacheTest, ChurnSoundnessOracleAcrossWorkerCounts) {
  // The tentpole's soundness oracle: with the cache on and ingest
  // churning, every response — hit or miss — must be byte-identical to a
  // serial evaluation of the graph's first `epoch` triples, across
  // worker counts 1..8. Runs under TSan via scripts/check_tsan.sh.
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    Dictionary dict;
    Graph graph(&dict);
    FillGraph(&graph, &dict, 150, 3);
    VarPool vars;
    std::vector<GraphPatternQuery> queries = MakeQueries(&dict, &vars, 3);

    QueryServerOptions options;
    options.worker_threads = workers;
    options.answer_cache.enabled = true;
    QueryServer server(&graph, options);

    std::atomic<bool> stop_ingest{false};
    TermId p0 = dict.InternIri("http://t/p0");
    std::thread ingester([&] {
      size_t i = 0;
      while (!stop_ingest.load(std::memory_order_acquire)) {
        std::vector<Triple> batch;
        for (int j = 0; j < 3; ++j, ++i) {
          batch.push_back(Triple{
              dict.InternIri("http://t/churn_s" + std::to_string(i)), p0,
              dict.InternIri("http://t/churn_o" + std::to_string(i))});
        }
        server.Ingest(batch);
        std::this_thread::yield();
      }
    });

    struct Record {
      size_t query_index;
      size_t epoch;
      bool cache_hit;
      std::vector<Tuple> answers;
    };
    const size_t kClients = 4, kRequests = 16;
    std::vector<std::vector<Record>> records(kClients);
    std::atomic<size_t> hits{0};
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t r = 0; r < kRequests; ++r) {
          // Clients repeat a small query pool so hits actually occur.
          size_t qi = r % queries.size();
          Result<QueryResponse> response = server.Execute(queries[qi]);
          ASSERT_TRUE(response.ok()) << response.status().ToString();
          if (response->cache_hit) hits.fetch_add(1);
          records[c].push_back(Record{qi, response->epoch,
                                      response->cache_hit,
                                      std::move(response->answers)});
        }
      });
    }
    for (std::thread& t : clients) t.join();
    stop_ingest.store(true, std::memory_order_release);
    ingester.join();
    server.Stop();

    for (const auto& client_records : records) {
      for (const Record& rec : client_records) {
        Graph prefix(&dict);
        prefix.Reserve(rec.epoch);
        for (size_t i = 0; i < rec.epoch; ++i) {
          prefix.InsertUnchecked(graph.triples()[i]);
        }
        std::vector<Tuple> expected = EvalQuery(
            prefix, queries[rec.query_index], QuerySemantics::kDropBlanks);
        SortTuples(&expected);
        ASSERT_EQ(expected, rec.answers)
            << "workers " << workers << " query " << rec.query_index
            << " epoch " << rec.epoch << " cache_hit " << rec.cache_hit;
      }
    }
    // Identical repeated queries with only sporadic footprint-touching
    // churn: some requests must have been served from the cache.
    EXPECT_GT(hits.load(), 0u) << "workers " << workers;
  }
}

TEST(QueryServerCacheTest, EvictionRacesConcurrentReaders) {
  // A deliberately tiny cache (2 entries, small byte cap) under many
  // distinct queries: inserts continually evict entries other threads
  // are reading or about to read. shared_ptr payloads must keep every
  // handed-out answer alive. Runs under TSan via scripts/check_tsan.sh.
  Dictionary dict;
  Graph graph(&dict);
  FillGraph(&graph, &dict, 120, 6);
  VarPool vars;
  std::vector<GraphPatternQuery> queries = MakeQueries(&dict, &vars, 6);

  QueryServerOptions options;
  options.worker_threads = 4;
  options.answer_cache.enabled = true;
  options.answer_cache.max_entries = 2;
  options.answer_cache.max_bytes = 1u << 14;
  QueryServer server(&graph, options);

  std::atomic<bool> stop_ingest{false};
  TermId p0 = dict.InternIri("http://t/p0");
  std::thread ingester([&] {
    size_t i = 0;
    while (!stop_ingest.load(std::memory_order_acquire)) {
      server.Ingest(
          {Triple{dict.InternIri("http://t/ev_s" + std::to_string(i)), p0,
                  dict.InternIri("http://t/ev_o" + std::to_string(i))}});
      ++i;
      std::this_thread::yield();
    }
  });

  const size_t kClients = 6, kRequests = 20;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kRequests; ++r) {
        size_t qi = (c + r) % queries.size();
        Result<QueryResponse> response = server.Execute(queries[qi]);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        // Touch every tuple: a use-after-free here is what TSan/ASan
        // would catch if eviction freed a served payload.
        size_t checksum = 0;
        for (const Tuple& t : response->answers) checksum += t.size();
        ASSERT_GE(checksum, response->answers.size());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop_ingest.store(true, std::memory_order_release);
  ingester.join();
  server.Stop();

  AnswerCacheStats stats = server.CacheStats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_GT(stats.evictions, 0u) << "cache never churned — test too weak";
}

TEST(QueryServerTest, InvalidQueryIsRejectedAtAdmission) {
  Dictionary dict;
  Graph graph(&dict);
  FillGraph(&graph, &dict, 10, 1);
  VarPool vars;
  GraphPatternQuery bad;
  bad.head = {vars.Intern("unbound")};  // head var not in body
  bad.body.Add(TriplePattern{PatternTerm::Var(vars.Intern("x")),
                             PatternTerm::Var(vars.Intern("y")),
                             PatternTerm::Var(vars.Intern("z"))});

  QueryServer server(&graph);
  Result<QueryResponse> response = server.Execute(bad);
  EXPECT_FALSE(response.ok());
}

}  // namespace
}  // namespace rps
