#include "query/query.h"

#include <gtest/gtest.h>

#include "query/eval.h"

namespace rps {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() : graph_(&dict_) {
    c_ = dict_.InternIri("http://x/c");
    p_ = dict_.InternIri("http://x/p");
    o_ = dict_.InternIri("http://x/o");
    graph_.InsertUnchecked(Triple{c_, p_, o_});
    graph_.InsertUnchecked(Triple{o_, c_, o_});
    graph_.InsertUnchecked(Triple{o_, p_, c_});
  }

  Dictionary dict_;
  VarPool vars_;
  Graph graph_;
  TermId c_, p_, o_;
};

TEST_F(QueryTest, ValidateRequiresHeadVarsInBody) {
  VarId x = vars_.Intern("x");
  VarId ghost = vars_.Intern("ghost");
  GraphPatternQuery q;
  q.head = {x, ghost};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p_),
                           PatternTerm::Const(o_)});
  EXPECT_FALSE(q.Validate().ok());
  q.head = {x};
  EXPECT_TRUE(q.Validate().ok());
}

TEST_F(QueryTest, ExistentialVars) {
  VarId x = vars_.Intern("x"), z = vars_.Intern("z");
  GraphPatternQuery q;
  q.head = {x};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p_),
                           PatternTerm::Var(z)});
  std::vector<VarId> existential = q.ExistentialVars();
  ASSERT_EQ(existential.size(), 1u);
  EXPECT_EQ(existential[0], z);
}

TEST_F(QueryTest, SubjQReturnsNeighbourhood) {
  // subjQ(c) = pairs (pred, obj) of triples with subject c (§2.3).
  GraphPatternQuery q = SubjQ(c_, &vars_);
  EXPECT_EQ(q.arity(), 2u);
  std::vector<Tuple> result =
      EvalQuery(graph_, q, QuerySemantics::kKeepBlanks);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0][0], p_);
  EXPECT_EQ(result[0][1], o_);
}

TEST_F(QueryTest, PredQReturnsNeighbourhood) {
  GraphPatternQuery q = PredQ(c_, &vars_);
  std::vector<Tuple> result =
      EvalQuery(graph_, q, QuerySemantics::kKeepBlanks);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0][0], o_);
  EXPECT_EQ(result[0][1], o_);
}

TEST_F(QueryTest, ObjQReturnsNeighbourhood) {
  GraphPatternQuery q = ObjQ(c_, &vars_);
  std::vector<Tuple> result =
      EvalQuery(graph_, q, QuerySemantics::kKeepBlanks);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0][0], o_);
  EXPECT_EQ(result[0][1], p_);
}

TEST_F(QueryTest, BindHeadProducesBooleanQuery) {
  VarId x = vars_.Intern("x"), y = vars_.Intern("y");
  GraphPatternQuery q;
  q.head = {x, y};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p_),
                           PatternTerm::Var(y)});
  GraphPatternQuery b = BindHead(q, {c_, o_});
  EXPECT_TRUE(b.is_boolean());
  ASSERT_EQ(b.body.size(), 1u);
  EXPECT_TRUE(b.body.patterns()[0].s.is_const());
  EXPECT_EQ(b.body.patterns()[0].s.term(), c_);
  EXPECT_EQ(b.body.patterns()[0].o.term(), o_);
  EXPECT_TRUE(EvalBoolean(graph_, b));
  // A non-answer tuple gives false.
  EXPECT_FALSE(EvalBoolean(graph_, BindHead(q, {c_, c_})));
}

TEST_F(QueryTest, BindHeadLeavesExistentialsAlone) {
  VarId x = vars_.Intern("x"), z = vars_.Intern("z");
  GraphPatternQuery q;
  q.head = {x};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p_),
                           PatternTerm::Var(z)});
  GraphPatternQuery b = BindHead(q, {c_});
  EXPECT_TRUE(b.body.patterns()[0].o.is_var());
}

TEST_F(QueryTest, ToStringRendersQuery) {
  VarId x = vars_.Intern("x");
  GraphPatternQuery q;
  q.head = {x};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p_),
                           PatternTerm::Const(o_)});
  std::string rendered = ToString(q, dict_, vars_);
  EXPECT_NE(rendered.find("q(?x)"), std::string::npos);
  EXPECT_NE(rendered.find("<http://x/p>"), std::string::npos);
}

}  // namespace
}  // namespace rps
