#include "chase/rps_chase.h"

#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "obs/metrics.h"

namespace rps {
namespace {

TEST(RpsChaseTest, SeedsWithStoredDatabase) {
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId s = dict.InternIri("http://x/s");
  TermId p = dict.InternIri("http://x/p");
  TermId o = dict.InternIri("http://x/o");
  sys.AddPeer("a").InsertUnchecked(Triple{s, p, o});

  Graph universal(&dict);
  Result<RpsChaseStats> stats = BuildUniversalSolution(sys, &universal);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(universal.size(), 1u);
  EXPECT_TRUE(universal.Contains(Triple{s, p, o}));
}

TEST(RpsChaseTest, RejectsForeignDictionary) {
  RpsSystem sys;
  Dictionary other;
  Graph universal(&other);
  EXPECT_FALSE(BuildUniversalSolution(sys, &universal).ok());
}

TEST(RpsChaseTest, RejectsNonEmptyOutput) {
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  Graph universal(&dict);
  universal.InsertUnchecked(Triple{dict.InternIri("a"), dict.InternIri("b"),
                                   dict.InternIri("c")});
  EXPECT_FALSE(BuildUniversalSolution(sys, &universal).ok());
}

TEST(RpsChaseTest, GmaFiresWithFreshBlanks) {
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  TermId actor = dict.InternIri("http://x/actor");
  TermId starring = dict.InternIri("http://x/starring");
  TermId artist = dict.InternIri("http://x/artist");
  TermId film = dict.InternIri("http://x/film");
  TermId person = dict.InternIri("http://x/person");
  sys.AddPeer("a").InsertUnchecked(Triple{film, actor, person});

  VarId x = vars.Intern("x"), y = vars.Intern("y"), z = vars.Intern("z");
  GraphMappingAssertion gma;
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(actor),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                PatternTerm::Const(starring),
                                PatternTerm::Var(z)});
  gma.to.body.Add(TriplePattern{PatternTerm::Var(z),
                                PatternTerm::Const(artist),
                                PatternTerm::Var(y)});
  ASSERT_TRUE(sys.AddGraphMapping(gma).ok());

  Graph universal(&dict);
  Result<RpsChaseStats> stats = BuildUniversalSolution(sys, &universal);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->gma_firings, 1u);
  EXPECT_EQ(stats->blanks_created, 1u);
  EXPECT_EQ(universal.size(), 3u);  // original + 2 inferred

  // The inferred triples share one fresh blank node.
  auto starring_triples = universal.MatchAll(film, starring, std::nullopt);
  ASSERT_EQ(starring_triples.size(), 1u);
  TermId blank = starring_triples[0].o;
  EXPECT_TRUE(dict.IsBlank(blank));
  EXPECT_TRUE(universal.Contains(Triple{blank, artist, person}));
}

TEST(RpsChaseTest, GmaDoesNotRefireWhenSatisfied) {
  // If the target pattern already holds, the restricted chase must not
  // add a redundant copy with new blanks.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  TermId p = dict.InternIri("http://x/p");
  TermId q = dict.InternIri("http://x/q");
  TermId a = dict.InternIri("http://x/a");
  TermId b = dict.InternIri("http://x/b");
  Graph& g = sys.AddPeer("peer");
  g.InsertUnchecked(Triple{a, p, b});
  g.InsertUnchecked(Triple{a, q, b});

  VarId x = vars.Intern("x"), y = vars.Intern("y");
  GraphMappingAssertion gma;
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(q),
                                PatternTerm::Var(y)});
  ASSERT_TRUE(sys.AddGraphMapping(gma).ok());

  Graph universal(&dict);
  Result<RpsChaseStats> stats = BuildUniversalSolution(sys, &universal);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->gma_firings, 0u);
  EXPECT_EQ(universal.size(), 2u);
}

TEST(RpsChaseTest, GmaGuardsAgainstBlankHeadValues) {
  // A tuple whose head value is a blank node is not in Q_J (rt guard), so
  // the GMA must not fire on it.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  TermId p = dict.InternIri("http://x/p");
  TermId q = dict.InternIri("http://x/q");
  TermId a = dict.InternIri("http://x/a");
  TermId blank = dict.InternBlank("b0");
  sys.AddPeer("peer").InsertUnchecked(Triple{a, p, blank});

  VarId x = vars.Intern("x"), y = vars.Intern("y");
  GraphMappingAssertion gma;
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(q),
                                PatternTerm::Var(y)});
  ASSERT_TRUE(sys.AddGraphMapping(gma).ok());

  Graph universal(&dict);
  Result<RpsChaseStats> stats = BuildUniversalSolution(sys, &universal);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->gma_firings, 0u);
}

TEST(RpsChaseTest, EquivalenceCopiesAllThreePositions) {
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId c1 = dict.InternIri("http://x/c1");
  TermId c2 = dict.InternIri("http://x/c2");
  TermId p = dict.InternIri("http://x/p");
  TermId o = dict.InternIri("http://x/o");
  TermId s = dict.InternIri("http://x/s");
  Graph& g = sys.AddPeer("peer");
  g.InsertUnchecked(Triple{c1, p, o});  // c1 as subject
  g.InsertUnchecked(Triple{s, c1, o});  // c1 as predicate
  g.InsertUnchecked(Triple{s, p, c1});  // c1 as object
  ASSERT_TRUE(sys.AddEquivalence(c1, c2).ok());

  Graph universal(&dict);
  Result<RpsChaseStats> stats = BuildUniversalSolution(sys, &universal);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(universal.Contains(Triple{c2, p, o}));
  EXPECT_TRUE(universal.Contains(Triple{s, c2, o}));
  EXPECT_TRUE(universal.Contains(Triple{s, p, c2}));
  EXPECT_EQ(universal.size(), 6u);
}

TEST(RpsChaseTest, EquivalenceClosureAcrossCliques) {
  // c1 ≡ c2 and c2 ≡ c3: triples of c1 must reach c3 (via rounds).
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId c1 = dict.InternIri("http://x/c1");
  TermId c2 = dict.InternIri("http://x/c2");
  TermId c3 = dict.InternIri("http://x/c3");
  TermId p = dict.InternIri("http://x/p");
  TermId o = dict.InternIri("http://x/o");
  sys.AddPeer("peer").InsertUnchecked(Triple{c1, p, o});
  ASSERT_TRUE(sys.AddEquivalence(c1, c2).ok());
  ASSERT_TRUE(sys.AddEquivalence(c2, c3).ok());

  Graph universal(&dict);
  ASSERT_TRUE(BuildUniversalSolution(sys, &universal).ok());
  EXPECT_TRUE(universal.Contains(Triple{c2, p, o}));
  EXPECT_TRUE(universal.Contains(Triple{c3, p, o}));
}

TEST(RpsChaseTest, ChaseIsIdempotent) {
  // Chasing the paper example, then using the result as a stored database
  // and chasing again, adds nothing: the universal solution is a solution.
  PaperExample ex = BuildPaperExample();
  Graph universal(ex.system->dict());
  ASSERT_TRUE(BuildUniversalSolution(*ex.system, &universal).ok());

  Graph again = universal;
  Result<RpsChaseStats> stats =
      ChaseGraph(&again, ex.system->graph_mappings(),
                 ex.system->equivalences());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->triples_added, 0u);
  EXPECT_EQ(again.size(), universal.size());
}

TEST(RpsChaseTest, BudgetTriggersResourceExhausted) {
  PaperExample ex = BuildPaperExample();
  RpsChaseOptions options;
  options.max_triples = 5;  // far below what the chase needs
  Graph universal(ex.system->dict());
  Result<RpsChaseStats> stats =
      BuildUniversalSolution(*ex.system, &universal, options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST(RpsChaseTest, BudgetEquivalenceCopyingNeverOvershoots) {
  // Equivalence copies are inserted one triple at a time, so the budget
  // check runs per insertion: an aborted run leaves |J| at exactly
  // max_triples, never beyond, under both schedules.
  for (bool semi_naive : {false, true}) {
    RpsSystem sys;
    Dictionary& dict = *sys.dict();
    TermId c1 = dict.InternIri("http://x/c1");
    TermId c2 = dict.InternIri("http://x/c2");
    TermId p = dict.InternIri("http://x/p");
    Graph& g = sys.AddPeer("peer");
    for (int i = 0; i < 10; ++i) {
      g.InsertUnchecked(Triple{
          c1, p, dict.InternIri("http://x/o" + std::to_string(i))});
    }
    ASSERT_TRUE(sys.AddEquivalence(c1, c2).ok());

    RpsChaseOptions options;
    options.semi_naive = semi_naive;
    options.max_triples = 13;  // 10 stored + room for only 3 of 10 copies
    Graph universal(&dict);
    Result<RpsChaseStats> stats =
        BuildUniversalSolution(sys, &universal, options);
    ASSERT_FALSE(stats.ok()) << "semi_naive=" << semi_naive;
    EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(universal.size(), options.max_triples)
        << "semi_naive=" << semi_naive;
  }
}

TEST(RpsChaseTest, BudgetGmaOvershootBoundedByBodySize) {
  // A GMA firing inserts its whole instantiated to-body atomically, so an
  // aborted run may overshoot max_triples by at most one body — never by
  // a second firing — under both schedules.
  for (bool semi_naive : {false, true}) {
    RpsSystem sys;
    Dictionary& dict = *sys.dict();
    VarPool& vars = *sys.vars();
    TermId actor = dict.InternIri("http://x/actor");
    TermId starring = dict.InternIri("http://x/starring");
    TermId artist = dict.InternIri("http://x/artist");
    Graph& g = sys.AddPeer("peer");
    for (int i = 0; i < 10; ++i) {
      g.InsertUnchecked(
          Triple{dict.InternIri("http://x/f" + std::to_string(i)), actor,
                 dict.InternIri("http://x/a" + std::to_string(i))});
    }
    VarId x = vars.Intern("x"), y = vars.Intern("y"), z = vars.Intern("z");
    GraphMappingAssertion gma;
    gma.from.head = {x, y};
    gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                    PatternTerm::Const(actor),
                                    PatternTerm::Var(y)});
    gma.to.head = {x, y};
    gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(starring),
                                  PatternTerm::Var(z)});
    gma.to.body.Add(TriplePattern{PatternTerm::Var(z),
                                  PatternTerm::Const(artist),
                                  PatternTerm::Var(y)});
    ASSERT_TRUE(sys.AddGraphMapping(gma).ok());

    RpsChaseOptions options;
    options.semi_naive = semi_naive;
    options.max_triples = 13;  // 10 stored + room for 1.5 firings
    Graph universal(&dict);
    Result<RpsChaseStats> stats =
        BuildUniversalSolution(sys, &universal, options);
    ASSERT_FALSE(stats.ok()) << "semi_naive=" << semi_naive;
    EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
    size_t body_size = gma.to.body.patterns().size();
    EXPECT_LE(universal.size(), options.max_triples + body_size)
        << "semi_naive=" << semi_naive;
  }
}

TEST(RpsChaseTest, DeltaBudgetAbortFlushesConsistentStats) {
  // A budget-aborted ChaseGraphDelta discards its RpsChaseStats with the
  // error Status, but the metrics flusher must still report exactly the
  // insertions that happened before the abort.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId c1 = dict.InternIri("http://x/c1");
  TermId c2 = dict.InternIri("http://x/c2");
  TermId c3 = dict.InternIri("http://x/c3");
  TermId p = dict.InternIri("http://x/p");
  TermId o1 = dict.InternIri("http://x/o1");
  TermId o2 = dict.InternIri("http://x/o2");
  sys.AddPeer("peer").InsertUnchecked(Triple{c1, p, o1});
  ASSERT_TRUE(sys.AddEquivalence(c1, c2).ok());
  ASSERT_TRUE(sys.AddEquivalence(c1, c3).ok());

  Graph j(&dict);
  ASSERT_TRUE(BuildUniversalSolution(sys, &j).ok());

  // New fact about c1: the delta chase owes one copy per clique member,
  // but the budget admits only the first.
  Triple fresh{c1, p, o2};
  j.InsertUnchecked(fresh);
  size_t before_size = j.size();
  RpsChaseOptions options;
  options.max_triples = before_size + 1;
  obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
  Result<RpsChaseStats> stats = ChaseGraphDelta(
      &j, {fresh}, sys.graph_mappings(), sys.equivalences(), options);
  obs::MetricsSnapshot delta =
      obs::Registry::Global().Snapshot().DeltaSince(before);

  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(j.size(), options.max_triples);  // per-insertion enforcement
  EXPECT_EQ(delta.counter("chase.eq_triples"), j.size() - before_size);
  EXPECT_EQ(delta.counter("chase.triples_added"), j.size() - before_size);
  EXPECT_EQ(delta.counter("chase.term.budget_exhausted"), 1u);
}

TEST(RpsChaseTest, ParallelBudgetEnforcement) {
  // The parallel engine's barrier applies the same per-insertion (eq) and
  // per-firing (GMA) budget checks as the serial loops.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId c1 = dict.InternIri("http://x/c1");
  TermId c2 = dict.InternIri("http://x/c2");
  TermId p = dict.InternIri("http://x/p");
  Graph& g = sys.AddPeer("peer");
  for (int i = 0; i < 10; ++i) {
    g.InsertUnchecked(
        Triple{c1, p, dict.InternIri("http://x/o" + std::to_string(i))});
  }
  ASSERT_TRUE(sys.AddEquivalence(c1, c2).ok());

  for (bool semi_naive : {false, true}) {
    RpsChaseOptions options;
    options.semi_naive = semi_naive;
    options.threads = 4;
    options.eval.threads = 4;
    options.max_triples = 13;
    Graph universal(&dict);
    Result<RpsChaseStats> stats =
        BuildUniversalSolution(sys, &universal, options);
    ASSERT_FALSE(stats.ok()) << "semi_naive=" << semi_naive;
    EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(universal.size(), options.max_triples)
        << "semi_naive=" << semi_naive;
  }
}

TEST(RpsChaseTest, PaperExampleUniversalSolution) {
  // Figure 2 spot checks: the universal solution contains the inferred
  // dashed triples (from the GMA) and dotted triples (from sameAs).
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  Graph universal(&dict);
  Result<RpsChaseStats> stats = BuildUniversalSolution(*ex.system, &universal);
  ASSERT_TRUE(stats.ok()) << stats.status();

  TermId db2_spiderman =
      *dict.Lookup(Term::Iri(std::string(kDb2Ns) + "Spiderman2002"));
  TermId db1_spiderman = ex.db1_spiderman;

  // GMA: DB2:Spiderman2002 gained starring/artist structure.
  auto starring = universal.MatchAll(db2_spiderman, ex.prop_starring,
                                     std::nullopt);
  ASSERT_FALSE(starring.empty());
  // sameAs: DB1:Spiderman inherited it too.
  EXPECT_FALSE(universal.MatchAll(db1_spiderman, ex.prop_starring,
                                  std::nullopt)
                   .empty());
  // Ages copied onto the DB1/DB2 names.
  EXPECT_FALSE(universal.MatchAll(ex.db1_toby, ex.prop_age, std::nullopt)
                   .empty());
  EXPECT_FALSE(universal.MatchAll(ex.db2_willem, ex.prop_age, std::nullopt)
                   .empty());
}

}  // namespace
}  // namespace rps
