#include "gen/generators.h"

#include <gtest/gtest.h>

#include "parser/ntriples.h"

namespace rps {
namespace {

TEST(GeneratorsTest, LodIsDeterministic) {
  LodConfig config;
  config.num_peers = 3;
  config.films_per_peer = 10;
  config.seed = 77;
  LodStats s1, s2;
  std::unique_ptr<RpsSystem> a = GenerateLod(config, &s1);
  std::unique_ptr<RpsSystem> b = GenerateLod(config, &s2);
  EXPECT_EQ(s1.triples, s2.triples);
  EXPECT_EQ(s1.sameas_links, s2.sameas_links);
  EXPECT_EQ(WriteNTriples(a->StoredDatabase()),
            WriteNTriples(b->StoredDatabase()));
}

TEST(GeneratorsTest, LodRespectsConfigSizes) {
  LodConfig config;
  config.num_peers = 4;
  config.films_per_peer = 10;
  config.actors_per_film = 3;
  config.single_triple_dialect = true;
  config.overlap_fraction = 0.0;
  config.sameas_rate = 0.0;
  LodStats stats;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config, &stats);
  EXPECT_EQ(sys->PeerCount(), 4u);
  EXPECT_EQ(stats.films, 40u);
  // 4 peers × 10 films × 3 actors, single triple each, no sameAs.
  EXPECT_EQ(stats.triples, 120u);
  EXPECT_EQ(stats.sameas_links, 0u);
  EXPECT_TRUE(sys->equivalences().empty());
  // Chain topology: 3 edges × 2 directions.
  EXPECT_EQ(sys->graph_mappings().size(), 6u);
}

TEST(GeneratorsTest, LodDoubleDialectDoublesOddPeerTriples) {
  LodConfig config;
  config.num_peers = 2;
  config.films_per_peer = 5;
  config.actors_per_film = 1;
  config.single_triple_dialect = false;  // peer1 uses starring/artist
  config.overlap_fraction = 0.0;
  LodStats stats;
  GenerateLod(config, &stats);
  // peer0: 5 triples; peer1: 10 triples.
  EXPECT_EQ(stats.triples, 15u);
}

TEST(GeneratorsTest, LodSameAsLinksCreateEquivalences) {
  LodConfig config;
  config.num_peers = 2;
  config.films_per_peer = 10;
  config.actors_per_film = 1;
  config.overlap_fraction = 0.5;
  config.sameas_rate = 1.0;
  LodStats stats;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config, &stats);
  // 5 overlapping films, each with 1 actor: 10 links on the single edge.
  EXPECT_EQ(stats.sameas_links, 10u);
  EXPECT_EQ(sys->equivalences().size(), 10u);
}

TEST(GeneratorsTest, TransitiveClosureSystemShape) {
  std::unique_ptr<RpsSystem> sys = GenerateTransitiveClosureSystem(5);
  EXPECT_EQ(sys->PeerCount(), 1u);
  EXPECT_EQ(sys->StoredDatabase().size(), 5u);
  ASSERT_EQ(sys->graph_mappings().size(), 1u);
  const GraphMappingAssertion& gma = sys->graph_mappings()[0];
  EXPECT_EQ(gma.from.body.size(), 2u);
  EXPECT_EQ(gma.to.body.size(), 1u);
  EXPECT_EQ(gma.from.arity(), 2u);
}

TEST(GeneratorsTest, SameAsCliquesShape) {
  std::unique_ptr<RpsSystem> sys = GenerateSameAsCliques(
      /*num_cliques=*/3, /*clique_size=*/4, /*triples_per_member=*/2,
      /*seed=*/5);
  // 3 cliques × 3 sameAs links each.
  EXPECT_EQ(sys->equivalences().size(), 9u);
  // 3 × 4 members × 2 property triples + 9 sameAs triples.
  EXPECT_EQ(sys->StoredDatabase().size(), 33u);
}

TEST(GeneratorsTest, ChainRpsShape) {
  std::unique_ptr<RpsSystem> sys = GenerateChainRps(4, 6, 3);
  EXPECT_EQ(sys->PeerCount(), 4u);
  EXPECT_EQ(sys->graph_mappings().size(), 3u);
  // Each mapping is linear: single body pattern, single head pattern.
  for (const GraphMappingAssertion& gma : sys->graph_mappings()) {
    EXPECT_EQ(gma.from.body.size(), 1u);
    EXPECT_EQ(gma.to.body.size(), 1u);
  }
}

TEST(GeneratorsTest, LodTopologyMatchesConfig) {
  LodConfig config;
  config.num_peers = 6;
  config.topology = LodConfig::MappingTopology::kStar;
  Topology t = LodTopology(config);
  EXPECT_EQ(t.NodeCount(), 6u);
  EXPECT_EQ(t.EdgeCount(), 5u);
}

}  // namespace
}  // namespace rps
