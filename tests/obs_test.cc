#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/trace.h"

namespace rps::obs {
namespace {

// The tests below share the process-global registry with everything else
// in the binary, so each uses its own instrument names and asserts on
// deltas, never on absolute global state.

TEST(CounterTest, AddIncrementResetValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, StatsTrackCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.Stats().count, 0u);
  EXPECT_EQ(h.Stats().mean(), 0.0);
  h.Record(4.0);
  h.Record(1.0);
  h.Record(7.0);
  HistogramStats s = h.Stats();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 12.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  h.Reset();
  EXPECT_EQ(h.Stats().count, 0u);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h;
  h.Record(0.25);  // bucket 0: < 1
  h.Record(1.0);   // bucket 1: [1, 2)
  h.Record(1.9);   // bucket 1
  h.Record(2.0);   // bucket 2: [2, 4)
  h.Record(5.0);   // bucket 3: [4, 8)
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.BucketCount(4), 0u);
  EXPECT_EQ(h.BucketCount(Histogram::kBuckets + 5), 0u);  // out of range
  // Huge samples land in the last bucket instead of overflowing.
  h.Record(1e30);
  EXPECT_EQ(h.BucketCount(Histogram::kBuckets - 1), 1u);
}

TEST(HistogramTest, QuantileInterpolatesAndClampsToObservedExtremes) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty
  h.Record(3.0);
  // A single sample is every quantile, despite living in bucket [2,4).
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 3.0);

  Histogram spread;
  for (int i = 1; i <= 100; ++i) spread.Record(static_cast<double>(i));
  // Power-of-two buckets make mid quantiles approximate; they must
  // still be monotone in q, bracketed by the observed extremes, and in
  // the right ballpark.
  double p50 = spread.Quantile(0.50);
  double p99 = spread.Quantile(0.99);
  EXPECT_DOUBLE_EQ(spread.Quantile(1.0), 100.0);
  EXPECT_LE(spread.Quantile(0.0), p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, 100.0);
  EXPECT_GE(p50, 32.0);   // rank 50 lives in bucket [32, 64)
  EXPECT_LT(p50, 64.0);
  EXPECT_GE(p99, 64.0);   // rank 99 lives in bucket [64, 128)
  // Out-of-range q is clamped, not UB.
  EXPECT_DOUBLE_EQ(spread.Quantile(-1.0), spread.Quantile(0.0));
  EXPECT_DOUBLE_EQ(spread.Quantile(2.0), 100.0);
}

TEST(GaugeTest, SetAddResetValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(7);
  EXPECT_EQ(g.value(), 7);
  g.Add(5);
  g.Add(-10);
  EXPECT_EQ(g.value(), 2);  // gauges go down, unlike counters
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(RegistryTest, GaugesSnapshotAsLevelsNotDeltas) {
  Registry& reg = Registry::Global();
  Gauge* g = reg.gauge("obs_test.level");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(reg.gauge("obs_test.level"), g);  // lazy + stable

  g->Set(3);
  MetricsSnapshot before = reg.Snapshot();
  EXPECT_EQ(before.gauge("obs_test.level"), 3);
  g->Set(8);
  MetricsSnapshot delta = reg.Snapshot().DeltaSince(before);
  // A delta keeps the newer snapshot's level as-is (8), never 8 - 3.
  EXPECT_EQ(delta.gauge("obs_test.level"), 8);

  std::string text = reg.Snapshot().ToText("  ");
  EXPECT_NE(text.find("obs_test.level"), std::string::npos);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"obs_test.level\":8"), std::string::npos);
  g->Reset();
}

TEST(ScopedTimerTest, RecordsOneSampleOnDestruction) {
  Histogram h;
  { ScopedTimerMs timer(&h); }
  HistogramStats s = h.Stats();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.sum, 0.0);
}

TEST(RegistryTest, LazyCreationAndStablePointers) {
  Registry& reg = Registry::Global();
  Counter* c = reg.counter("obs_test.stable");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reg.counter("obs_test.stable"), c);  // same instrument
  uint64_t before = c->value();
  c->Add(3);
  EXPECT_EQ(reg.Snapshot().counter("obs_test.stable"), before + 3);
  // Reset zeroes values but keeps registered pointers valid.
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  EXPECT_EQ(reg.Snapshot().counter("obs_test.stable"), 1u);
}

TEST(RegistryTest, SnapshotDeltaIsolatesOneOperation) {
  Registry& reg = Registry::Global();
  Counter* touched = reg.counter("obs_test.touched");
  Counter* untouched = reg.counter("obs_test.untouched");
  untouched->Increment();  // prior activity, must not appear in the delta

  MetricsSnapshot before = reg.Snapshot();
  touched->Add(5);
  reg.histogram("obs_test.delta_hist")->Record(2.0);
  MetricsSnapshot delta = reg.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counter("obs_test.touched"), 5u);
  EXPECT_EQ(delta.counters.count("obs_test.untouched"), 0u);  // dropped
  ASSERT_EQ(delta.histograms.count("obs_test.delta_hist"), 1u);
  EXPECT_EQ(delta.histograms.at("obs_test.delta_hist").count, 1u);
}

TEST(RegistryTest, WithLabelFormatsDimension) {
  EXPECT_EQ(WithLabel("chase.gma_firings", "Q2->Q1"),
            "chase.gma_firings{Q2->Q1}");
}

TEST(RegistryTest, ReportersRenderCountersAndHistograms) {
  MetricsSnapshot snap;
  snap.counters["a.count"] = 7;
  HistogramStats s;
  s.count = 2;
  s.sum = 10.0;
  s.min = 4.0;
  s.max = 6.0;
  snap.histograms["a.run_ms"] = s;

  std::string text = snap.ToText("  ");
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("mean=5ms"), std::string::npos);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"a.count\":7"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":10"), std::string::npos);
}

TEST(RegistryTest, ConcurrentIncrementsAreExact) {
  Registry& reg = Registry::Global();
  Counter* c = reg.counter("obs_test.concurrent");
  uint64_t before = c->value();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Resolve through the registry too, to exercise the lookup lock.
      Counter* mine = reg.counter("obs_test.concurrent");
      for (int i = 0; i < kIncrements; ++i) mine->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value() - before,
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(TracerTest, SpansFormATreeUnderTheRoot) {
  Tracer tracer("unit");
  SpanId outer = tracer.StartSpan("outer");
  SpanId inner = tracer.StartSpan("inner", outer);
  tracer.Annotate(inner, "rounds", "3");
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);

  std::vector<SpanView> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);  // root + outer + inner
  EXPECT_EQ(spans[0].name, "unit");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, tracer.root());
  EXPECT_EQ(spans[2].name, "inner");
  EXPECT_EQ(spans[2].parent, outer);
  EXPECT_FALSE(spans[2].open);
  ASSERT_EQ(spans[2].notes.size(), 1u);
  EXPECT_EQ(spans[2].notes[0].first, "rounds");

  std::string text = tracer.ReportText();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("rounds=3"), std::string::npos);
  std::string json = tracer.ReportJson();
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
}

TEST(TracerTest, AutoSpanIsANoOpWithoutAmbientTracer) {
  ASSERT_EQ(Tracer::Active(), nullptr);
  AutoSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.Annotate("ignored", uint64_t{1});  // must not crash
}

TEST(TracerTest, TraceScopeInstallsAndRestoresAmbientTracer) {
  EXPECT_EQ(Tracer::Active(), nullptr);
  Tracer outer_tracer("outer");
  {
    TraceScope outer_scope(&outer_tracer);
    EXPECT_EQ(Tracer::Active(), &outer_tracer);
    AutoSpan a("a");
    EXPECT_TRUE(a.active());
    {
      // Nested scope with its own tracer: spans go to the inner tracer,
      // and the outer tracer's stack is restored afterwards.
      Tracer inner_tracer("inner");
      TraceScope inner_scope(&inner_tracer);
      EXPECT_EQ(Tracer::Active(), &inner_tracer);
      AutoSpan b("b");
      EXPECT_TRUE(b.active());
    }
    EXPECT_EQ(Tracer::Active(), &outer_tracer);
    AutoSpan c("c");  // must parent under "a", not under the inner tracer
    EXPECT_TRUE(c.active());
  }
  EXPECT_EQ(Tracer::Active(), nullptr);

  std::vector<SpanView> spans = outer_tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);  // root + a + c
  EXPECT_EQ(spans[2].name, "c");
  EXPECT_EQ(spans[2].parent, spans[1].id);  // c nested inside a
}

TEST(TracerTest, NestedAutoSpansParentToTheEnclosingSpan) {
  Tracer tracer;
  {
    TraceScope scope(&tracer);
    AutoSpan outer("outer");
    { AutoSpan inner("inner"); }
    { AutoSpan sibling("sibling"); }
  }
  std::vector<SpanView> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[2].parent, spans[1].id);  // inner under outer
  EXPECT_EQ(spans[3].parent, spans[1].id);  // sibling under outer
}

}  // namespace
}  // namespace rps::obs
