#include "tgd/unification.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

class UnificationTest : public ::testing::Test {
 protected:
  UnificationTest() {
    p_ = preds_.Intern("p", 2);
    q_ = preds_.Intern("q", 2);
    x_ = vars_.Intern("x");
    y_ = vars_.Intern("y");
    u_ = vars_.Intern("u");
    v_ = vars_.Intern("v");
    a_ = dict_.InternIri("http://x/a");
    b_ = dict_.InternIri("http://x/b");
  }

  Atom P(AtomArg l, AtomArg r) { return Atom{p_, {l, r}}; }

  PredTable preds_;
  Dictionary dict_;
  VarPool vars_;
  PredId p_, q_;
  VarId x_, y_, u_, v_;
  TermId a_, b_;
};

TEST_F(UnificationTest, VarWithConst) {
  auto mgu = Unify(P(AtomArg::Var(x_), AtomArg::Var(y_)),
                   P(AtomArg::Const(a_), AtomArg::Const(b_)));
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(Resolve(*mgu, AtomArg::Var(x_)), AtomArg::Const(a_));
  EXPECT_EQ(Resolve(*mgu, AtomArg::Var(y_)), AtomArg::Const(b_));
}

TEST_F(UnificationTest, ConstConflictFails) {
  EXPECT_FALSE(Unify(P(AtomArg::Const(a_), AtomArg::Var(x_)),
                     P(AtomArg::Const(b_), AtomArg::Var(y_)))
                   .has_value());
}

TEST_F(UnificationTest, DifferentPredicatesFail) {
  EXPECT_FALSE(Unify(P(AtomArg::Var(x_), AtomArg::Var(y_)),
                     Atom{q_, {AtomArg::Var(u_), AtomArg::Var(v_)}})
                   .has_value());
}

TEST_F(UnificationTest, VarVarChains) {
  // p(x, x) with p(u, a): x↦u then u↦a (or equivalent) — both resolve to a.
  auto mgu = Unify(P(AtomArg::Var(x_), AtomArg::Var(x_)),
                   P(AtomArg::Var(u_), AtomArg::Const(a_)));
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(Resolve(*mgu, AtomArg::Var(x_)), AtomArg::Const(a_));
  EXPECT_EQ(Resolve(*mgu, AtomArg::Var(u_)), AtomArg::Const(a_));
}

TEST_F(UnificationTest, RepeatedVarConflict) {
  // p(x, x) with p(a, b) cannot unify.
  EXPECT_FALSE(Unify(P(AtomArg::Var(x_), AtomArg::Var(x_)),
                     P(AtomArg::Const(a_), AtomArg::Const(b_)))
                   .has_value());
}

TEST_F(UnificationTest, ExtendsBaseSubstitution) {
  Subst base;
  base[x_] = AtomArg::Const(a_);
  auto mgu = Unify(P(AtomArg::Var(x_), AtomArg::Var(y_)),
                   P(AtomArg::Var(u_), AtomArg::Const(b_)), base);
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(Resolve(*mgu, AtomArg::Var(u_)), AtomArg::Const(a_));
}

TEST_F(UnificationTest, ApplySubstToAtom) {
  Subst subst;
  subst[x_] = AtomArg::Const(a_);
  Atom atom = ApplySubst(subst, P(AtomArg::Var(x_), AtomArg::Var(y_)));
  EXPECT_EQ(atom.args[0], AtomArg::Const(a_));
  EXPECT_EQ(atom.args[1], AtomArg::Var(y_));
}

TEST_F(UnificationTest, RenameApartPreservesStructure) {
  Tgd tgd;
  tgd.label = "orig";
  tgd.body = {P(AtomArg::Var(x_), AtomArg::Var(y_))};
  tgd.head = {P(AtomArg::Var(y_), AtomArg::Var(x_))};
  Tgd renamed = RenameApart(tgd, &vars_);
  EXPECT_EQ(renamed.label, "orig");
  ASSERT_EQ(renamed.body.size(), 1u);
  // Structure preserved: body(l, r), head(r, l).
  EXPECT_EQ(renamed.body[0].args[0], renamed.head[0].args[1]);
  EXPECT_EQ(renamed.body[0].args[1], renamed.head[0].args[0]);
  // All variables fresh.
  for (const Atom& atom : renamed.body) {
    for (const AtomArg& arg : atom.args) {
      ASSERT_TRUE(arg.is_var());
      EXPECT_NE(arg.var(), x_);
      EXPECT_NE(arg.var(), y_);
    }
  }
}

TEST_F(UnificationTest, RenameApartKeepsConstants) {
  Tgd tgd;
  tgd.body = {P(AtomArg::Const(a_), AtomArg::Var(x_))};
  tgd.head = {P(AtomArg::Var(x_), AtomArg::Const(b_))};
  Tgd renamed = RenameApart(tgd, &vars_);
  EXPECT_EQ(renamed.body[0].args[0], AtomArg::Const(a_));
  EXPECT_EQ(renamed.head[0].args[1], AtomArg::Const(b_));
}

TEST_F(UnificationTest, RenameApartTwiceGivesDisjointVars) {
  Tgd tgd;
  tgd.body = {P(AtomArg::Var(x_), AtomArg::Var(y_))};
  tgd.head = {P(AtomArg::Var(x_), AtomArg::Var(y_))};
  Tgd r1 = RenameApart(tgd, &vars_);
  Tgd r2 = RenameApart(tgd, &vars_);
  for (const AtomArg& a1 : r1.body[0].args) {
    for (const AtomArg& a2 : r2.body[0].args) {
      EXPECT_NE(a1.var(), a2.var());
    }
  }
}

}  // namespace
}  // namespace rps
