// Snapshot isolation over the LSM-indexed graph: the `...AsOf(epoch)`
// reads and GraphSnapshot must behave exactly like the same reads over
// a graph containing only the first `epoch` triples — for every one of
// the eight bound/unbound pattern shapes, across delta-merge boundaries,
// and (the point of the exercise) while a writer thread appends
// concurrently. The concurrent parity tests run under the TSan preset
// (scripts/check_tsan.sh), so a data race on these paths fails CI, not
// just a lucky repro.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "query/eval.h"
#include "query/plan.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "util/rng.h"

namespace rps {
namespace {

// Full-scan oracle over an explicit prefix length.
std::vector<Triple> OracleMatches(const std::vector<Triple>& triples,
                                  size_t epoch, std::optional<TermId> s,
                                  std::optional<TermId> p,
                                  std::optional<TermId> o) {
  std::vector<Triple> out;
  for (size_t i = 0; i < epoch && i < triples.size(); ++i) {
    const Triple& t = triples[i];
    if ((!s || t.s == *s) && (!p || t.p == *p) && (!o || t.o == *o)) {
      out.push_back(t);
    }
  }
  return out;
}

struct TermUniverse {
  std::vector<TermId> subjects;
  std::vector<TermId> predicates;
  std::vector<TermId> objects;
};

TermUniverse MakeUniverse(Dictionary* dict, size_t ns, size_t np,
                          size_t no) {
  TermUniverse u;
  for (size_t i = 0; i < ns; ++i) {
    u.subjects.push_back(dict->InternIri("http://t/s" + std::to_string(i)));
  }
  for (size_t i = 0; i < np; ++i) {
    u.predicates.push_back(
        dict->InternIri("http://t/p" + std::to_string(i)));
  }
  for (size_t i = 0; i < no; ++i) {
    u.objects.push_back(dict->InternIri("http://t/o" + std::to_string(i)));
  }
  return u;
}

Triple RandomTriple(Rng* rng, const TermUniverse& u) {
  return Triple{u.subjects[rng->Index(u.subjects.size())],
                u.predicates[rng->Index(u.predicates.size())],
                u.objects[rng->Index(u.objects.size())]};
}

void RandomPattern(Rng* rng, const TermUniverse& u, int shape,
                   std::optional<TermId>* s, std::optional<TermId>* p,
                   std::optional<TermId>* o) {
  *s = (shape & 1) != 0
           ? std::optional<TermId>(u.subjects[rng->Index(u.subjects.size())])
           : std::nullopt;
  *p = (shape & 2) != 0
           ? std::optional<TermId>(
                 u.predicates[rng->Index(u.predicates.size())])
           : std::nullopt;
  *o = (shape & 4) != 0
           ? std::optional<TermId>(u.objects[rng->Index(u.objects.size())])
           : std::nullopt;
}

// ---- Serial epoch semantics --------------------------------------------

TEST(SnapshotTest, AsOfMatchesPrefixOracleAllShapes) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 23, 5, 17);
  Graph graph(&dict);
  std::vector<Triple> inserted;
  Rng rng(20260809);

  // Enough inserts to cross several merge thresholds, so epochs land on
  // both sides of base/delta boundaries.
  for (int i = 0; i < 1500; ++i) {
    Triple t = RandomTriple(&rng, u);
    if (graph.InsertUnchecked(t)) inserted.push_back(t);
  }
  ASSERT_GT(graph.base_size(), 0u);

  for (size_t epoch : {size_t{0}, size_t{1}, size_t{17}, size_t{255},
                       size_t{256}, size_t{257}, graph.base_size(),
                       graph.size() - 1, graph.size(), graph.size() + 99}) {
    size_t clamped = std::min(epoch, graph.size());
    for (int shape = 0; shape < 8; ++shape) {
      std::optional<TermId> s, p, o;
      RandomPattern(&rng, u, shape, &s, &p, &o);
      std::vector<Triple> expected =
          OracleMatches(inserted, clamped, s, p, o);
      ASSERT_EQ(graph.MatchAllAsOf(s, p, o, epoch), expected)
          << "shape " << shape << " epoch " << epoch;
      ASSERT_EQ(graph.EstimateMatchesAsOf(s, p, o, epoch), expected.size())
          << "shape " << shape << " epoch " << epoch;
    }
  }
}

TEST(SnapshotTest, SnapshotIsFrozenWhileGraphGrows) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 7, 3, 7);
  Graph graph(&dict);
  Rng rng(99);
  for (int i = 0; i < 300; ++i) graph.InsertUnchecked(RandomTriple(&rng, u));

  GraphSnapshot snap(graph);
  size_t epoch = snap.epoch();
  ASSERT_EQ(epoch, graph.size());
  std::vector<Triple> before_all = snap.MatchAll(std::nullopt, std::nullopt,
                                                 std::nullopt);
  size_t before_count =
      snap.EstimateMatches(std::nullopt, u.predicates[0], std::nullopt);

  // Grow the graph past a merge boundary; the snapshot must not move.
  for (int i = 0; i < 800; ++i) graph.InsertUnchecked(RandomTriple(&rng, u));
  ASSERT_GT(graph.size(), epoch);

  EXPECT_EQ(snap.epoch(), epoch);
  EXPECT_EQ(snap.MatchAll(std::nullopt, std::nullopt, std::nullopt),
            before_all);
  EXPECT_EQ(snap.EstimateMatches(std::nullopt, u.predicates[0],
                                 std::nullopt),
            before_count);
  EXPECT_EQ(snap.Triples(), before_all);

  // Contains / PositionOf respect the epoch too.
  const Triple& late = graph.triples().back();
  if (std::find(before_all.begin(), before_all.end(), late) ==
      before_all.end()) {
    EXPECT_FALSE(snap.Contains(late));
    EXPECT_FALSE(snap.PositionOf(late).has_value());
  }
  EXPECT_TRUE(graph.Contains(late));
}

TEST(SnapshotTest, ExplicitEpochClampsToCurrentSize) {
  Dictionary dict;
  Graph graph(&dict);
  TermId s = dict.InternIri("http://t/s");
  TermId p = dict.InternIri("http://t/p");
  for (int i = 0; i < 5; ++i) {
    graph.InsertUnchecked(
        Triple{s, p, dict.InternIri("http://t/o" + std::to_string(i))});
  }
  GraphSnapshot clamped(graph, 100);
  EXPECT_EQ(clamped.epoch(), 5u);
  GraphSnapshot two(graph, 2);
  EXPECT_EQ(two.epoch(), 2u);
  EXPECT_EQ(two.MatchAll(std::nullopt, std::nullopt, std::nullopt).size(),
            2u);
}

// ---- Concurrent reader/writer parity (runs under TSan) -----------------

// The tentpole guarantee: N querying threads against a graph mid-ingest
// each see answers byte-identical to a serial evaluation of the same
// snapshot epoch. Readers record (epoch, answers); after the writer
// joins, every record is replayed serially against a prefix-rebuilt
// graph.
TEST(SnapshotTest, ConcurrentReadersSeeSerialAnswersAtSameEpoch) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 19, 4, 13);

  // The full insertion script is fixed up front so the writer thread
  // needs no RNG coordination with readers.
  Rng rng(4242);
  std::vector<Triple> script;
  for (int i = 0; i < 4000; ++i) script.push_back(RandomTriple(&rng, u));

  Graph graph(&dict);
  for (int i = 0; i < 200; ++i) graph.InsertUnchecked(script[i]);
  graph.EnableConcurrentMutation();
  dict.EnableConcurrentMutation();

  // A fixed mix of queries over the shared universe: one scan, one
  // subject-star join, one path join.
  VarPool vars;
  VarId x = vars.Intern("x"), y = vars.Intern("y"), z = vars.Intern("z");
  std::vector<GraphPatternQuery> queries;
  {
    GraphPatternQuery q;
    q.head = {x, y};
    q.body.Add(TriplePattern{PatternTerm::Var(x),
                             PatternTerm::Const(u.predicates[0]),
                             PatternTerm::Var(y)});
    queries.push_back(q);
  }
  {
    GraphPatternQuery q;
    q.head = {x, y, z};
    q.body.Add(TriplePattern{PatternTerm::Var(x),
                             PatternTerm::Const(u.predicates[1]),
                             PatternTerm::Var(y)});
    q.body.Add(TriplePattern{PatternTerm::Var(x),
                             PatternTerm::Const(u.predicates[2]),
                             PatternTerm::Var(z)});
    queries.push_back(q);
  }
  {
    GraphPatternQuery q;
    q.head = {x, z};
    q.body.Add(TriplePattern{PatternTerm::Var(x),
                             PatternTerm::Const(u.predicates[0]),
                             PatternTerm::Var(y)});
    q.body.Add(TriplePattern{PatternTerm::Var(y),
                             PatternTerm::Const(u.predicates[3]),
                             PatternTerm::Var(z)});
    queries.push_back(q);
  }

  struct Record {
    size_t query_index;
    size_t epoch;
    std::vector<Tuple> answers;
  };

  const size_t kReaders = 4;
  std::vector<std::vector<Record>> records(kReaders);
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t i = 0;
      // do/while: at least one record per reader even if the writer
      // finishes before this thread is scheduled.
      do {
        size_t qi = (r + i++) % queries.size();
        GraphSnapshot snap(graph);
        std::vector<Tuple> answers =
            EvalQuery(snap, queries[qi], QuerySemantics::kDropBlanks);
        SortTuples(&answers);
        records[r].push_back(Record{qi, snap.epoch(), std::move(answers)});
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  std::thread writer([&] {
    for (size_t i = 200; i < script.size(); ++i) {
      graph.InsertUnchecked(script[i]);
    }
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Serial replay: rebuild each observed epoch as a fresh prefix graph
  // and compare byte-for-byte.
  size_t replayed = 0;
  for (const auto& reader_records : records) {
    for (const Record& rec : reader_records) {
      Graph prefix(&dict);
      prefix.Reserve(rec.epoch);
      for (size_t i = 0; i < rec.epoch; ++i) {
        prefix.InsertUnchecked(graph.triples()[i]);
      }
      std::vector<Tuple> expected =
          EvalQuery(prefix, queries[rec.query_index],
                    QuerySemantics::kDropBlanks);
      SortTuples(&expected);
      ASSERT_EQ(expected, rec.answers)
          << "query " << rec.query_index << " at epoch " << rec.epoch;
      ++replayed;
      if (replayed >= 400) return;  // bound replay cost
    }
  }
  EXPECT_GT(replayed, 0u);
}

// Concurrent snapshot counting/matching parity on raw AsOf reads while a
// writer appends — no query layer, so failures localize to the graph.
TEST(SnapshotTest, ConcurrentAsOfReadsMatchOracle) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 11, 3, 11);
  Rng rng(777);
  std::vector<Triple> script;
  for (int i = 0; i < 3000; ++i) script.push_back(RandomTriple(&rng, u));

  Graph graph(&dict);
  graph.EnableConcurrentMutation();
  dict.EnableConcurrentMutation();

  struct Observation {
    size_t epoch;
    int shape;
    std::optional<TermId> s, p, o;
    std::vector<Triple> matches;
    size_t count;
  };
  const size_t kReaders = 3;
  std::vector<std::vector<Observation>> observations(kReaders);
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng reader_rng(1000 + r);
      do {
        GraphSnapshot snap(graph);
        int shape = static_cast<int>(reader_rng.Index(8));
        std::optional<TermId> s, p, o;
        RandomPattern(&reader_rng, u, shape, &s, &p, &o);
        Observation obs;
        obs.epoch = snap.epoch();
        obs.shape = shape;
        obs.s = s;
        obs.p = p;
        obs.o = o;
        obs.matches = snap.MatchAll(s, p, o);
        obs.count = snap.EstimateMatches(s, p, o);
        observations[r].push_back(std::move(obs));
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  std::thread writer([&] {
    for (const Triple& t : script) graph.InsertUnchecked(t);
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  size_t checked = 0;
  for (const auto& reader_observations : observations) {
    for (const Observation& obs : reader_observations) {
      std::vector<Triple> expected = OracleMatches(
          graph.triples(), obs.epoch, obs.s, obs.p, obs.o);
      ASSERT_EQ(obs.matches, expected)
          << "shape " << obs.shape << " epoch " << obs.epoch;
      ASSERT_EQ(obs.count, expected.size())
          << "shape " << obs.shape << " epoch " << obs.epoch;
      ++checked;
      if (checked >= 600) return;
    }
  }
  EXPECT_GT(checked, 0u);
}

// TermsInUse used to carry a "not safe to call concurrently" caveat; it
// is now internally synchronized and returns a copy. Hammer it from
// several threads against a live writer (TSan validates the locking).
TEST(SnapshotTest, TermsInUseIsSafeUnderConcurrentInserts) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 13, 3, 13);
  Rng rng(31337);
  std::vector<Triple> script;
  for (int i = 0; i < 2000; ++i) script.push_back(RandomTriple(&rng, u));

  Graph graph(&dict);
  graph.EnableConcurrentMutation();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<size_t> calls{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      size_t last = 0;
      do {
        std::unordered_set<TermId> terms = graph.TermsInUse();
        // The term set only grows; a shrinking result would mean a torn
        // read of the cache.
        EXPECT_GE(terms.size(), last);
        last = terms.size();
        calls.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  std::thread writer([&] {
    for (const Triple& t : script) graph.InsertUnchecked(t);
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(calls.load(), 0u);

  // Final set equals the exact term set of the data.
  std::unordered_set<TermId> expected;
  for (const Triple& t : graph.triples()) {
    expected.insert(t.s);
    expected.insert(t.p);
    expected.insert(t.o);
  }
  EXPECT_EQ(graph.TermsInUse(), expected);
}

// ---- Per-query budgets ---------------------------------------------------

TEST(SnapshotTest, BudgetScanCapReturnsSoundPartialAnswers) {
  Dictionary dict;
  Graph graph(&dict);
  TermId p = dict.InternIri("http://t/p");
  for (int i = 0; i < 500; ++i) {
    graph.InsertUnchecked(
        Triple{dict.InternIri("http://t/s" + std::to_string(i)), p,
               dict.InternIri("http://t/o" + std::to_string(i))});
  }
  VarPool vars;
  VarId x = vars.Intern("x"), y = vars.Intern("y");
  GraphPatternQuery q;
  q.head = {x, y};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                           PatternTerm::Var(y)});

  std::vector<Tuple> full = EvalQuery(graph, q, QuerySemantics::kDropBlanks);
  ASSERT_EQ(full.size(), 500u);

  EvalBudget budget(/*deadline_ms=*/0.0, /*max_scanned=*/50);
  EvalOptions options;
  options.budget = &budget;
  std::vector<Tuple> partial =
      EvalQuery(graph, q, QuerySemantics::kDropBlanks, options);
  EXPECT_TRUE(budget.exceeded());
  EXPECT_LT(partial.size(), full.size());
  // Sound: every returned tuple is a real answer.
  SortTuples(&full);
  SortTuples(&partial);
  EXPECT_TRUE(std::includes(full.begin(), full.end(), partial.begin(),
                            partial.end()));

  // An unexceeded budget changes nothing.
  EvalBudget roomy(0.0, 1u << 20);
  options.budget = &roomy;
  std::vector<Tuple> all =
      EvalQuery(graph, q, QuerySemantics::kDropBlanks, options);
  SortTuples(&all);
  EXPECT_EQ(all, full);
  EXPECT_FALSE(roomy.exceeded());
}

TEST(SnapshotTest, BudgetDeadlineTripsAtCheckInterval) {
  // A deadline already in the past trips at the first 256-row boundary.
  EvalBudget budget(/*deadline_ms=*/0.0001, /*max_scanned=*/0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  bool tripped = false;
  for (int i = 0; i < 600 && !tripped; ++i) tripped = budget.Charge(1);
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(budget.exceeded());
  EXPECT_TRUE(budget.Charge(1));  // sticky
}

// ---- Per-query plan capture ----------------------------------------------

TEST(SnapshotTest, ConcurrentPlanCapturesDoNotInterfere) {
  Dictionary dict;
  Graph graph(&dict);
  TermId p1 = dict.InternIri("http://t/p1");
  TermId p2 = dict.InternIri("http://t/p2");
  for (int i = 0; i < 64; ++i) {
    TermId s = dict.InternIri("http://t/s" + std::to_string(i));
    TermId o = dict.InternIri("http://t/o" + std::to_string(i));
    graph.InsertUnchecked(Triple{s, p1, o});
    graph.InsertUnchecked(Triple{s, p2, o});
  }
  VarPool vars;
  VarId x = vars.Intern("x"), y = vars.Intern("y");
  GraphPatternQuery q;
  q.head = {x, y};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p1),
                           PatternTerm::Var(y)});
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p2),
                           PatternTerm::Var(y)});

  const size_t kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<size_t> captured{0};
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        PlanCapture capture;
        EvalOptions options;
        options.plan_capture = &capture;
        std::vector<Tuple> answers =
            EvalQuery(graph, q, QuerySemantics::kDropBlanks, options);
        ASSERT_EQ(answers.size(), 64u);
        ASSERT_TRUE(capture.has_plan());
        QueryPlan plan = capture.Take();
        ASSERT_FALSE(capture.has_plan());
        ASSERT_FALSE(plan.steps.empty());
        captured.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(captured.load(), kThreads * 20);
}

}  // namespace
}  // namespace rps
