#include "peer/provenance.h"

#include <gtest/gtest.h>

#include "gen/paper_example.h"

namespace rps {
namespace {

TEST(ProvenanceTest, ChaseRecordsAllTriples) {
  PaperExample ex = BuildPaperExample();
  ProvenanceMap provenance;
  RpsChaseOptions options;
  options.provenance = &provenance;
  Graph universal(ex.system->dict());
  ASSERT_TRUE(BuildUniversalSolution(*ex.system, &universal, options).ok());
  // Every triple of J has a derivation.
  EXPECT_EQ(provenance.size(), universal.size());
  for (const Triple& t : universal.triples()) {
    EXPECT_TRUE(provenance.count(t) > 0);
  }
}

TEST(ProvenanceTest, StoredTriplesNamePeers) {
  PaperExample ex = BuildPaperExample();
  ProvenanceMap provenance;
  RpsChaseOptions options;
  options.provenance = &provenance;
  Graph universal(ex.system->dict());
  ASSERT_TRUE(BuildUniversalSolution(*ex.system, &universal, options).ok());

  const Triple stored =
      ex.system->dataset().Find("source2")->triples().front();
  ASSERT_TRUE(provenance.count(stored) > 0);
  const TripleDerivation& d = provenance.at(stored);
  EXPECT_EQ(d.kind, TripleDerivation::Kind::kStored);
  EXPECT_EQ(d.source, "source2");
  EXPECT_TRUE(d.premises.empty());
}

TEST(ProvenanceTest, GmaDerivationsCarryPremises) {
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  ProvenanceMap provenance;
  RpsChaseOptions options;
  options.provenance = &provenance;
  Graph universal(ex.system->dict());
  ASSERT_TRUE(BuildUniversalSolution(*ex.system, &universal, options).ok());

  // The starring edge the GMA created for DB2:Spiderman2002.
  TermId db2_spiderman =
      *dict.Lookup(Term::Iri(std::string(kDb2Ns) + "Spiderman2002"));
  std::vector<Triple> created =
      universal.MatchAll(db2_spiderman, ex.prop_starring, std::nullopt);
  ASSERT_FALSE(created.empty());
  bool found_gma = false;
  for (const Triple& t : created) {
    const TripleDerivation& d = provenance.at(t);
    if (d.kind == TripleDerivation::Kind::kGma) {
      found_gma = true;
      EXPECT_EQ(d.source, "Q2->Q1");
      ASSERT_FALSE(d.premises.empty());
      // The premise is the stored actor triple.
      EXPECT_EQ(d.premises[0].p, ex.prop_actor);
    }
  }
  EXPECT_TRUE(found_gma);
}

TEST(ProvenanceTest, ExplainCertainAnswer) {
  PaperExample ex = BuildPaperExample();
  // Willem Dafoe's row travels through the GMA and two equivalences —
  // the most interesting derivation of Listing 1.
  Result<Explanation> explanation = ExplainAnswer(
      *ex.system, ex.query,
      {ex.db2_willem, *ex.system->dict()->Lookup(Term::Literal("59"))});
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  EXPECT_EQ(explanation->witness.size(), 3u);  // the 3 body patterns
  // The rendered tree mentions the mapping, an equivalence step, and the
  // stored sources.
  EXPECT_NE(explanation->text.find("[mapping Q2->Q1]"), std::string::npos)
      << explanation->text;
  EXPECT_NE(explanation->text.find("[equivalence"), std::string::npos);
  EXPECT_NE(explanation->text.find("[stored by source2]"),
            std::string::npos);
  EXPECT_NE(explanation->text.find("[stored by source3]"),
            std::string::npos);
}

TEST(ProvenanceTest, ExplainRejectsNonAnswers) {
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  Result<Explanation> explanation = ExplainAnswer(
      *ex.system, ex.query, {ex.db1_toby, dict.InternLiteral("99")});
  EXPECT_EQ(explanation.status().code(), StatusCode::kNotFound);
}

TEST(ProvenanceTest, ExplainValidatesArity) {
  PaperExample ex = BuildPaperExample();
  EXPECT_EQ(ExplainAnswer(*ex.system, ex.query, {ex.db1_toby})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ProvenanceTest, SemiNaiveChaseRecordsToo) {
  PaperExample ex = BuildPaperExample();
  ProvenanceMap provenance;
  RpsChaseOptions options;
  options.provenance = &provenance;
  options.semi_naive = true;
  Graph universal(ex.system->dict());
  ASSERT_TRUE(BuildUniversalSolution(*ex.system, &universal, options).ok());
  EXPECT_EQ(provenance.size(), universal.size());
}

TEST(ProvenanceTest, CycleInEquivalenceDerivationsIsCut) {
  // c1 ≡ c2 copies triples back and forth; the renderer must terminate.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId c1 = dict.InternIri("http://x/c1");
  TermId c2 = dict.InternIri("http://x/c2");
  TermId p = dict.InternIri("http://x/p");
  TermId o = dict.InternIri("http://x/o");
  sys.AddPeer("peer").InsertUnchecked(Triple{c1, p, o});
  ASSERT_TRUE(sys.AddEquivalence(c1, c2).ok());

  ProvenanceMap provenance;
  RpsChaseOptions options;
  options.provenance = &provenance;
  Graph universal(sys.dict());
  ASSERT_TRUE(BuildUniversalSolution(sys, &universal, options).ok());
  std::string text =
      RenderDerivation(Triple{c2, p, o}, provenance, dict);
  EXPECT_NE(text.find("[equivalence"), std::string::npos);
  EXPECT_NE(text.find("[stored by peer]"), std::string::npos);
}

}  // namespace
}  // namespace rps
