#include "parser/ntriples.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

TEST(NTriplesTest, ParsesBasicTriples) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "<http://x/s> <http://x/p> <http://x/o> .\n"
      "<http://x/s> <http://x/p> \"literal\" .\n"
      "_:b0 <http://x/p> _:b1 .\n";
  Result<size_t> n = ParseNTriples(doc, &graph);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(graph.size(), 3u);
}

TEST(NTriplesTest, ParsesCommentsAndBlankLines) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "# leading comment\n"
      "\n"
      "<http://x/s> <http://x/p> <http://x/o> . # trailing comment\n"
      "   # indented comment\n";
  Result<size_t> n = ParseNTriples(doc, &graph);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1u);
}

TEST(NTriplesTest, ParsesTypedAndLangLiterals) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "<http://x/s> <http://x/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<http://x/s> <http://x/p> \"hi\"@en .\n";
  ASSERT_TRUE(ParseNTriples(doc, &graph).ok());
  TermId typed = *dict.Lookup(
      Term::TypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"));
  TermId lang = *dict.Lookup(Term::LangLiteral("hi", "en"));
  EXPECT_FALSE(graph.MatchAll(std::nullopt, std::nullopt, typed).empty());
  EXPECT_FALSE(graph.MatchAll(std::nullopt, std::nullopt, lang).empty());
}

TEST(NTriplesTest, ParsesEscapes) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "<http://x/s> <http://x/p> \"line\\nbreak \\\"quoted\\\" \\u0041\" .\n";
  ASSERT_TRUE(ParseNTriples(doc, &graph).ok());
  EXPECT_TRUE(dict.Lookup(Term::Literal("line\nbreak \"quoted\" A"))
                  .has_value());
}

TEST(NTriplesTest, DuplicateTriplesCollapse) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "<http://x/s> <http://x/p> <http://x/o> .\n"
      "<http://x/s> <http://x/p> <http://x/o> .\n";
  Result<size_t> n = ParseNTriples(doc, &graph);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST(NTriplesTest, ErrorsCarryLineNumbers) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "<http://x/s> <http://x/p> <http://x/o> .\n"
      "<http://x/s> <http://x/p> .\n";  // missing object
  Result<size_t> n = ParseNTriples(doc, &graph);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kParseError);
  EXPECT_NE(n.status().message().find("line 2"), std::string::npos)
      << n.status();
}

TEST(NTriplesTest, RejectsMalformedInput) {
  Dictionary dict;
  for (const char* doc : {
           "<http://x/s> <http://x/p> <http://x/o>\n",   // missing dot
           "<http://x/s <http://x/p> <http://x/o> .\n",  // unterminated IRI
           "\"lit\" <http://x/p> <http://x/o> .\n",      // literal subject
           "<http://x/s> _:b <http://x/o> .\n",          // blank predicate
           "<http://x/s> <http://x/p> \"open .\n",       // unterminated lit
       }) {
    Graph graph(&dict);
    EXPECT_FALSE(ParseNTriples(doc, &graph).ok()) << doc;
  }
}

TEST(NTriplesTest, WriterIsSortedAndReparsable) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "<http://x/z> <http://x/p> \"zzz\" .\n"
      "<http://x/a> <http://x/p> \"a\\nb\"@en .\n"
      "_:b <http://x/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  ASSERT_TRUE(ParseNTriples(doc, &graph).ok());
  std::string text = WriteNTriples(graph);

  // Sorted: the <http://x/a> line comes before <http://x/z>.
  EXPECT_LT(text.find("<http://x/a>"), text.find("<http://x/z>"));

  // Round trip: parsing the output reproduces the same graph.
  Dictionary dict2;
  Graph graph2(&dict2);
  ASSERT_TRUE(ParseNTriples(text, &graph2).ok());
  EXPECT_EQ(graph2.size(), graph.size());
  EXPECT_EQ(WriteNTriples(graph2), text);
}

TEST(NTriplesTest, ParseSingleTerm) {
  Result<Term> iri = ParseNTriplesTerm("<http://x/s>");
  ASSERT_TRUE(iri.ok());
  EXPECT_EQ(iri->lexical(), "http://x/s");
  Result<Term> lit = ParseNTriplesTerm("  \"x\"@en");
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ(lit->lang(), "en");
  EXPECT_FALSE(ParseNTriplesTerm("??").ok());
}

}  // namespace
}  // namespace rps
