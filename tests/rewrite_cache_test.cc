// RewriteCache and SubQueryCache: key construction (mapping-version /
// epoch folding), memoized-rewriting parity with the uncached engine,
// and LRU behaviour. Federation-level integration of both caches is in
// federation_test.cc.

#include "rewrite/rewrite_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "federation/subquery_cache.h"
#include "gen/paper_example.h"
#include "peer/rps_system.h"

namespace rps {
namespace {

TEST(RewriteCacheKeyTest, StableAcrossRenamingSensitiveToVersionAndOptions) {
  PaperExample ex = BuildPaperExample();
  RpsRewriteOptions options;

  std::string base = RewriteCacheKey(*ex.system, ex.query, options);
  EXPECT_EQ(RewriteCacheKey(*ex.system, ex.query, options), base);

  // A renamed copy of the query shares the key (same shape).
  GraphPatternQuery renamed = ex.query;
  // Renaming must be bijective: shift every var id past the pool.
  VarId shift = 1000;
  for (VarId& v : renamed.head) v += shift;
  GraphPattern body;
  for (TriplePattern tp : renamed.body.patterns()) {
    if (tp.s.is_var()) tp.s = PatternTerm::Var(tp.s.var() + shift);
    if (tp.p.is_var()) tp.p = PatternTerm::Var(tp.p.var() + shift);
    if (tp.o.is_var()) tp.o = PatternTerm::Var(tp.o.var() + shift);
    body.Add(tp);
  }
  renamed.body = std::move(body);
  EXPECT_EQ(RewriteCacheKey(*ex.system, renamed, options), base);

  // Different rewrite options fork the key.
  RpsRewriteOptions no_minimize = options;
  no_minimize.rewrite.minimize = false;
  EXPECT_NE(RewriteCacheKey(*ex.system, ex.query, no_minimize), base);
  RpsRewriteOptions resolution = options;
  resolution.equivalence_mode = EquivalenceRewriteMode::kTgdResolution;
  EXPECT_NE(RewriteCacheKey(*ex.system, ex.query, resolution), base);

  // A mapping change bumps the system's mapping version, shifting every
  // key — stale memoized rewritings become unreachable.
  uint64_t before = ex.system->mapping_version();
  TermId left = ex.system->dict()->InternIri("http://k/left");
  TermId right = ex.system->dict()->InternIri("http://k/right");
  ASSERT_TRUE(ex.system->AddEquivalence(left, right).ok());
  EXPECT_GT(ex.system->mapping_version(), before);
  EXPECT_NE(RewriteCacheKey(*ex.system, ex.query, options), base);
}

TEST(RewriteCacheTest, MemoizedRewriteMatchesEngine) {
  PaperExample ex = BuildPaperExample();
  RpsRewriteOptions options;
  RewriteCacheOptions cache_options;
  cache_options.enabled = true;
  RewriteCache cache(cache_options, "test_rewrite");

  Result<RpsRewriteResult> fresh =
      RewriteGraphQuery(*ex.system, ex.query, options);
  ASSERT_TRUE(fresh.ok()) << fresh.status();

  Result<RewriteCache::CachedRewrite> first =
      RewriteGraphQueryCached(*ex.system, ex.query, options, &cache);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(cache.Stats().misses, 1u);
  EXPECT_EQ(cache.Stats().hits, 0u);

  Result<RewriteCache::CachedRewrite> second =
      RewriteGraphQueryCached(*ex.system, ex.query, options, &cache);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.Stats().hits, 1u);
  // The hit is the same shared object, and it matches the engine.
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ((*first)->ucq.size(), fresh->ucq.size());
  EXPECT_EQ((*first)->canonical_terms, fresh->canonical_terms);

  // A null cache degrades to a plain call.
  Result<RewriteCache::CachedRewrite> uncached =
      RewriteGraphQueryCached(*ex.system, ex.query, options, nullptr);
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ((*uncached)->ucq.size(), fresh->ucq.size());
}

TEST(RewriteCacheTest, LruEvictsPastMaxEntries) {
  RewriteCacheOptions options;
  options.enabled = true;
  options.max_entries = 2;
  RewriteCache cache(options, "test_rewrite_lru");
  auto value = std::make_shared<const RpsRewriteResult>();
  cache.Insert("a", value);
  cache.Insert("b", value);
  EXPECT_NE(cache.Lookup("a"), nullptr);  // refresh: b is now LRU
  cache.Insert("c", value);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Stats().entries, 2u);
}

TEST(SubQueryCacheTest, KeyFoldsPeerEpochAndEndpointKind) {
  VarId x = 1, y = 2;
  TriplePattern tp{PatternTerm::Var(x), PatternTerm::Const(77),
                   PatternTerm::Var(y)};
  std::string base = SubQueryKey(0, 5, /*canonical=*/false, tp);
  EXPECT_EQ(SubQueryKey(0, 5, false, tp), base);
  EXPECT_NE(SubQueryKey(1, 5, false, tp), base);  // other peer
  EXPECT_NE(SubQueryKey(0, 6, false, tp), base);  // other epoch
  EXPECT_NE(SubQueryKey(0, 5, true, tp), base);   // canonicalized endpoint

  // The pattern is keyed verbatim: a renamed variable is a different
  // key (the cached BindingSet binds those exact VarIds).
  TriplePattern renamed{PatternTerm::Var(y), PatternTerm::Const(77),
                        PatternTerm::Var(x)};
  EXPECT_NE(SubQueryKey(0, 5, false, renamed), base);
}

TEST(SubQueryCacheTest, LruAndByteBudget) {
  SubQueryCacheOptions options;
  options.enabled = true;
  options.max_entries = 2;
  SubQueryCache cache(options, "test_subquery");

  Binding b;
  ASSERT_TRUE(b.Bind(1, 42));
  auto rows = std::make_shared<const BindingSet>(BindingSet{b});
  cache.Insert("a", rows);
  cache.Insert("b", rows);
  EXPECT_EQ(cache.Stats().misses, 0u);
  SubQueryCache::Rows hit = cache.Lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, BindingSet{b});
  cache.Insert("c", rows);
  EXPECT_EQ(cache.Lookup("b"), nullptr);  // LRU victim
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(cache.Stats().misses, 1u);
  EXPECT_GT(cache.Stats().bytes, 0u);
}

}  // namespace
}  // namespace rps
