// Tests for the trie view of the permuted indexes (rdf/trie_iterator.h)
// that the worst-case-optimal join walks.
//
// The contract under test: for every permutation, every epoch (including
// epochs strictly inside the mapped prefix and exactly on the
// mapped/in-memory boundary) and every tier mix (mapped base, merged
// in-memory base, unmerged LSM delta), the iterator's walk over distinct
// visible (k1, k2) groups is byte-identical to a reference model built
// from MatchAllAsOf — and the bounded level-2 descent (OpenK1 + SeekK2)
// lands exactly where the absolute SeekGroup does.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rdf/graph.h"
#include "rdf/trie_iterator.h"
#include "storage/storage.h"
#include "util/rng.h"

namespace rps {
namespace {

std::string TempPath(const std::string& stem) {
  const char* dir = ::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + stem + "-" +
         std::to_string(::getpid()) + ".rps";
}

// Distinct (k1, k2) pairs of permutation `perm` among the first `epoch`
// triples, in sorted order — the sequence the iterator must produce.
std::vector<std::pair<TermId, TermId>> ReferenceGroups(const Graph& g,
                                                       int perm,
                                                       size_t epoch) {
  std::set<std::pair<TermId, TermId>> groups;
  for (const Triple& t : g.MatchAllAsOf({}, {}, {}, epoch)) {
    switch (perm) {
      case 0: groups.insert({t.s, t.p}); break;
      case 1: groups.insert({t.p, t.o}); break;
      default: groups.insert({t.o, t.s}); break;
    }
  }
  return {groups.begin(), groups.end()};
}

// Full walk via absolute seeks: SeekGroup(0,0) then SeekGroup(k1, k2+1).
std::vector<std::pair<TermId, TermId>> WalkAbsolute(
    const TrieJoinContext& ctx, int perm) {
  std::vector<std::pair<TermId, TermId>> out;
  TrieIterator it(ctx, perm);
  it.SeekGroup(0, 0);
  while (!it.at_end()) {
    out.emplace_back(it.k1(), it.k2());
    it.SeekGroup(it.k1(), it.k2() + 1);
  }
  return out;
}

// Full walk via the two-level shape the WCOJ operator uses: NextK1 over
// level 1, OpenK1 + SeekK2 inside each subtree.
std::vector<std::pair<TermId, TermId>> WalkTwoLevel(
    const TrieJoinContext& ctx, int perm) {
  std::vector<std::pair<TermId, TermId>> out;
  TrieIterator l1(ctx, perm);
  l1.SeekK1(0);
  while (!l1.at_end()) {
    TermId k1 = l1.k1();
    TrieIterator l2(ctx, perm);
    l2.OpenK1(k1);
    l2.SeekK2(0);
    while (!l2.at_end()) {
      out.emplace_back(k1, l2.k2());
      l2.SeekK2(l2.k2() + 1);
    }
    l1.NextK1();
  }
  return out;
}

TermId Iri(Dictionary* d, const std::string& s) {
  return d->InternIri("http://t/" + s);
}

// A skewed random graph: a few hub terms absorb most edges.
void FillRandom(Graph* g, Dictionary* d, Rng* rng, size_t n) {
  std::vector<TermId> terms;
  for (size_t i = 0; i < 20; ++i) {
    terms.push_back(Iri(d, "t" + std::to_string(i)));
  }
  std::vector<TermId> preds;
  for (size_t i = 0; i < 4; ++i) {
    preds.push_back(Iri(d, "p" + std::to_string(i)));
  }
  for (size_t i = 0; i < n; ++i) {
    TermId s = rng->Index(3) != 0 ? terms[rng->Index(3)]
                                  : terms[rng->Index(terms.size())];
    ASSERT_TRUE(g->Insert(Triple{s, preds[rng->Index(preds.size())],
                                 terms[rng->Index(terms.size())]})
                    .ok());
  }
}

void CheckAllPermsAllEpochs(const Graph& g) {
  std::vector<size_t> epochs = {0, 1, g.size() / 2, g.size()};
  if (g.mapped_size() > 0) {
    epochs.push_back(g.mapped_size() / 2);  // strictly inside mapped
    epochs.push_back(g.mapped_size());      // exactly on the boundary
    epochs.push_back(g.mapped_size() + 1);  // first in-memory triple
  }
  for (size_t epoch : epochs) {
    if (epoch > g.size()) continue;
    TrieJoinContext ctx(g, epoch);
    for (int perm = 0; perm < 3; ++perm) {
      std::vector<std::pair<TermId, TermId>> want =
          ReferenceGroups(g, perm, epoch);
      EXPECT_EQ(WalkAbsolute(ctx, perm), want)
          << "absolute walk, perm " << perm << " epoch " << epoch;
      EXPECT_EQ(WalkTwoLevel(ctx, perm), want)
          << "two-level walk, perm " << perm << " epoch " << epoch;
    }
  }
}

TEST(TrieIteratorTest, MatchesReferenceModelInMemory) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    Dictionary dict;
    Graph g(&dict);
    FillRandom(&g, &dict, &rng, 500 + rng.Index(300));
    // 500+ inserts cross the merge threshold, so the graph holds both a
    // merged base and an unmerged delta tail.
    CheckAllPermsAllEpochs(g);
  }
}

TEST(TrieIteratorTest, MatchesReferenceModelAcrossThreeTiers) {
  Rng rng(42);
  Dictionary dict;
  Graph g(&dict);
  FillRandom(&g, &dict, &rng, 400);
  std::string path = TempPath("trie-tiers");
  ASSERT_TRUE(storage::SaveGraph(path, g).ok());

  Dictionary dict2;
  Graph g2(&dict2);
  ASSERT_TRUE(storage::LoadGraph(path, &g2).ok());
  ASSERT_GT(g2.mapped_size(), 0u);
  FillRandom(&g2, &dict2, &rng, 400);  // merged base over the mapped tier
  FillRandom(&g2, &dict2, &rng, 60);   // fresh delta tail
  ASSERT_GT(g2.delta_size(), 0u);

  CheckAllPermsAllEpochs(g2);
  std::remove(path.c_str());
}

TEST(TrieIteratorTest, OpenK1SeekK2AgreesWithSeekGroupOnRandomProbes) {
  Rng rng(7);
  Dictionary dict;
  Graph g(&dict);
  FillRandom(&g, &dict, &rng, 600);
  for (size_t epoch : {g.size() / 3, g.size()}) {
    TrieJoinContext ctx(g, epoch);
    for (int perm = 0; perm < 3; ++perm) {
      TrieIterator bounded(ctx, perm);
      for (size_t probe = 0; probe < 200; ++probe) {
        TermId k1 = static_cast<TermId>(rng.Index(30));
        TermId k2 = static_cast<TermId>(rng.Index(30));
        TrieIterator absolute(ctx, perm);
        absolute.SeekGroup(k1, k2);
        bool in_subtree = !absolute.at_end() && absolute.k1() == k1;
        bounded.OpenK1(k1);
        bounded.SeekK2(k2);
        ASSERT_EQ(!bounded.at_end(), in_subtree)
            << "perm " << perm << " probe (" << k1 << "," << k2 << ")";
        if (in_subtree) {
          ASSERT_EQ(bounded.k1(), k1);
          ASSERT_EQ(bounded.k2(), absolute.k2());
        }
      }
    }
  }
}

TEST(TrieIteratorTest, ContextProbesMatchGraphAsOfReads) {
  Rng rng(11);
  Dictionary dict;
  Graph g(&dict);
  FillRandom(&g, &dict, &rng, 500);
  size_t epoch = g.size() / 2;
  TrieJoinContext ctx(g, epoch);
  std::set<Triple> visible;
  for (const Triple& t : g.MatchAllAsOf({}, {}, {}, epoch)) {
    visible.insert(t);
  }
  for (size_t probe = 0; probe < 300; ++probe) {
    Triple t{static_cast<TermId>(rng.Index(30)),
             static_cast<TermId>(rng.Index(30)),
             static_cast<TermId>(rng.Index(30))};
    EXPECT_EQ(ctx.TripleVisible(t), visible.count(t) > 0);
  }
  // Group counts: exact cardinality of each visible (s, p) group.
  std::map<std::pair<TermId, TermId>, size_t> counts;
  for (const Triple& t : visible) ++counts[{t.s, t.p}];
  for (const auto& [key, n] : counts) {
    EXPECT_TRUE(ctx.GroupVisible(0, key.first, key.second));
    EXPECT_EQ(ctx.CountGroup(0, key.first, key.second), n);
  }
  EXPECT_FALSE(ctx.GroupVisible(0, 999999, 999999));
  EXPECT_EQ(ctx.CountGroup(0, 999999, 999999), 0u);
}

// The per-predicate distinct statistics ride the snapshot's reserved
// section: a graph loaded from disk must answer PredicateDistincts
// without rescanning the mapped prefix, and the answers must match a
// graph that computed them from scratch.
TEST(TrieIteratorTest, PredicateDistinctsSurviveSnapshotRoundTrip) {
  Rng rng(13);
  Dictionary dict;
  Graph g(&dict);
  FillRandom(&g, &dict, &rng, 700);
  std::vector<TermId> preds;
  for (size_t i = 0; i < 4; ++i) preds.push_back(Iri(&dict, "p" + std::to_string(i)));

  std::string path = TempPath("trie-stats");
  ASSERT_TRUE(storage::SaveGraph(path, g).ok());
  Dictionary dict2;
  Graph g2(&dict2);
  ASSERT_TRUE(storage::LoadGraph(path, &g2).ok());
  ASSERT_GT(g2.mapped_size(), 0u);

  for (TermId p : preds) {
    Graph::PredDistinct want = g.PredicateDistincts(p);
    Graph::PredDistinct got = g2.PredicateDistincts(p);
    EXPECT_EQ(got.subjects, want.subjects) << "pred " << p;
    EXPECT_EQ(got.objects, want.objects) << "pred " << p;
  }
  // A predicate that never occurs stays zero.
  Graph::PredDistinct none = g2.PredicateDistincts(Iri(&dict2, "absent"));
  EXPECT_EQ(none.subjects, 0u);
  EXPECT_EQ(none.objects, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rps
