// Tests for the Proposition 3 behaviour: the transitive-closure mapping
// assertion admits no FO (UCQ) rewriting, while chase-based query
// answering stays PTIME (Theorem 1).

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "peer/certain_answers.h"
#include "rewrite/bool_rewrite.h"

namespace rps {
namespace {

TEST(Prop3Test, ChaseComputesTransitiveClosure) {
  const size_t kChain = 10;
  std::unique_ptr<RpsSystem> sys = GenerateTransitiveClosureSystem(kChain);
  GraphPatternQuery q = TransitiveQuery(sys.get());
  Result<CertainAnswerResult> result = CertainAnswers(*sys, q);
  ASSERT_TRUE(result.ok()) << result.status();
  // Closure of an 11-node path: n(n+1)/2 pairs for n=10 edges.
  EXPECT_EQ(result->answers.size(), kChain * (kChain + 1) / 2);
  EXPECT_EQ(result->chase_stats.blanks_created, 0u);
}

TEST(Prop3Test, ChaseScalesPolynomially) {
  // |answers| = n(n+1)/2 exactly — quadratic, not exponential.
  for (size_t n : {4u, 8u, 16u}) {
    std::unique_ptr<RpsSystem> sys = GenerateTransitiveClosureSystem(n);
    GraphPatternQuery q = TransitiveQuery(sys.get());
    Result<CertainAnswerResult> result = CertainAnswers(*sys, q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->answers.size(), n * (n + 1) / 2) << "n=" << n;
  }
}

TEST(Prop3Test, RewritingNeverConverges) {
  std::unique_ptr<RpsSystem> sys = GenerateTransitiveClosureSystem(4);
  GraphPatternQuery q = TransitiveQuery(sys.get());
  RpsRewriteOptions options;
  options.rewrite.max_queries = 200;
  Result<RpsRewriteResult> result = RewriteGraphQuery(*sys, q, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Proposition 3: the UCQ keeps growing; the budget must be the stopper.
  EXPECT_FALSE(result->stats.complete);
}

TEST(Prop3Test, BoundedRewritingGrowsWithBudget) {
  // Increasing the budget strictly increases the number of emitted
  // branches — the "no finite union suffices" signature.
  std::unique_ptr<RpsSystem> sys = GenerateTransitiveClosureSystem(4);
  GraphPatternQuery q = TransitiveQuery(sys.get());
  size_t previous = 0;
  for (size_t budget : {20u, 80u, 320u}) {
    RpsRewriteOptions options;
    options.rewrite.max_queries = budget;
    options.rewrite.minimize = false;  // count raw branches
    Result<RpsRewriteResult> result = RewriteGraphQuery(*sys, q, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->ucq.size(), previous) << "budget " << budget;
    previous = result->ucq.size();
  }
}

TEST(Prop3Test, AnyFixedRewritingMissesAnswers) {
  // Evaluate a budget-bounded rewriting over a long chain: it finds some
  // pairs but strictly fewer than the chase (the missing ones need deeper
  // compositions than the bounded union covers).
  const size_t kChain = 12;
  std::unique_ptr<RpsSystem> sys = GenerateTransitiveClosureSystem(kChain);
  GraphPatternQuery q = TransitiveQuery(sys.get());

  Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
  ASSERT_TRUE(chase.ok());

  RpsRewriteOptions options;
  options.rewrite.max_queries = 12;  // very small bounded rewriting
  Result<RewriteAnswers> bounded =
      CertainAnswersViaRewriting(*sys, q, options);
  ASSERT_TRUE(bounded.ok());
  EXPECT_FALSE(bounded->stats.complete);
  EXPECT_LT(bounded->answers.size(), chase->answers.size());
  EXPECT_GE(bounded->answers.size(), kChain);  // at least the base edges
  // Soundness: every bounded-rewriting answer is a certain answer.
  for (const Tuple& t : bounded->answers) {
    EXPECT_NE(std::find(chase->answers.begin(), chase->answers.end(), t),
              chase->answers.end());
  }
}

}  // namespace
}  // namespace rps
