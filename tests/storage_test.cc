// Persistence round-trip oracle (docs/PERSISTENCE.md): a graph saved to
// an on-disk snapshot and loaded back — memory-mapped, when the
// dictionary lineage makes the id remap the identity — must be
// *byte-identical* to the original under every read path: all eight
// bound/unbound Match shapes, exact EstimateMatches counts, AsOf epochs
// on both sides of the mapped/in-memory boundary, Contains/PositionOf,
// and certain answers through the cost-based planner. Corrupted files
// (truncation, bad magic, bit rot, torn writes) must fail with a clean
// kDataLoss before the graph is touched — never a crash.

#include "storage/storage.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

#include "query/eval.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "storage/format.h"
#include "util/rng.h"

namespace rps {
namespace {

// Scratch directory under the test's working directory (the build tree),
// removed with everything in it on scope exit.
struct ScratchDir {
  std::string path;
  ScratchDir() {
    char buf[] = "rps_storage_test.XXXXXX";
    path = mkdtemp(buf) != nullptr ? buf : ".";
  }
  ~ScratchDir() {
    if (DIR* d = opendir(path.c_str())) {
      while (dirent* e = readdir(d)) {
        std::string name = e->d_name;
        if (name != "." && name != "..") ::unlink((path + "/" + name).c_str());
      }
      closedir(d);
    }
    ::rmdir(path.c_str());
  }
  std::string File(const std::string& name) const { return path + "/" + name; }
};

// Full-scan oracle over an explicit prefix length.
std::vector<Triple> OracleMatches(const std::vector<Triple>& triples,
                                  size_t epoch, std::optional<TermId> s,
                                  std::optional<TermId> p,
                                  std::optional<TermId> o) {
  std::vector<Triple> out;
  for (size_t i = 0; i < epoch && i < triples.size(); ++i) {
    const Triple& t = triples[i];
    if ((!s || t.s == *s) && (!p || t.p == *p) && (!o || t.o == *o)) {
      out.push_back(t);
    }
  }
  return out;
}

struct TermUniverse {
  std::vector<TermId> subjects;
  std::vector<TermId> predicates;
  std::vector<TermId> objects;
};

// Every dictionary-section term kind is represented: IRIs, labelled
// blanks, plain / typed / language-tagged literals.
TermUniverse MakeUniverse(Dictionary* dict, size_t ns, size_t np,
                          size_t no) {
  TermUniverse u;
  for (size_t i = 0; i < ns; ++i) {
    u.subjects.push_back(
        i % 7 == 3 ? dict->Intern(Term::Blank("b" + std::to_string(i)))
                   : dict->InternIri("http://t/s" + std::to_string(i)));
  }
  for (size_t i = 0; i < np; ++i) {
    u.predicates.push_back(
        dict->InternIri("http://t/p" + std::to_string(i)));
  }
  for (size_t i = 0; i < no; ++i) {
    switch (i % 9) {
      case 2:
        u.objects.push_back(
            dict->Intern(Term::Literal("plain " + std::to_string(i))));
        break;
      case 5:
        u.objects.push_back(dict->Intern(Term::TypedLiteral(
            std::to_string(i), "http://www.w3.org/2001/XMLSchema#integer")));
        break;
      case 7:
        u.objects.push_back(
            dict->Intern(Term::LangLiteral("o" + std::to_string(i), "en")));
        break;
      default:
        u.objects.push_back(
            dict->InternIri("http://t/o" + std::to_string(i)));
    }
  }
  return u;
}

// Hub-skewed random triple: a quarter of the draws hit one of the first
// 4 subjects/objects, so some (k1, k2) run groups span many 128-entry
// snapshot blocks — the regression shape for the block-index search.
Triple RandomTriple(Rng* rng, const TermUniverse& u) {
  TermId s = rng->Chance(0.25) ? u.subjects[rng->Index(4)]
                               : u.subjects[rng->Index(u.subjects.size())];
  TermId o = rng->Chance(0.25) ? u.objects[rng->Index(4)]
                               : u.objects[rng->Index(u.objects.size())];
  return Triple{s, u.predicates[rng->Index(u.predicates.size())], o};
}

void RandomPattern(Rng* rng, const TermUniverse& u, int shape,
                   std::optional<TermId>* s, std::optional<TermId>* p,
                   std::optional<TermId>* o) {
  // Favour the hubs so multi-block key groups get probed, not just the
  // long tail.
  auto pick = [&](const std::vector<TermId>& pool) {
    return rng->Chance(0.5) ? pool[rng->Index(4)]
                            : pool[rng->Index(pool.size())];
  };
  *s = (shape & 1) != 0 ? std::optional<TermId>(pick(u.subjects))
                        : std::nullopt;
  *p = (shape & 2) != 0
           ? std::optional<TermId>(
                 u.predicates[rng->Index(u.predicates.size())])
           : std::nullopt;
  *o = (shape & 4) != 0 ? std::optional<TermId>(pick(u.objects))
                        : std::nullopt;
}

// Builds the shared fixture graph: enough triples that every permuted
// run spans dozens of snapshot blocks and hub groups span several.
void FillGraph(Rng* rng, const TermUniverse& u, Graph* graph,
               std::vector<Triple>* inserted, size_t n) {
  while (inserted->size() < n) {
    Triple t = RandomTriple(rng, u);
    if (graph->InsertUnchecked(t)) inserted->push_back(t);
  }
}

// Asserts Match/EstimateMatches parity between `loaded` and the oracle
// prefix for all eight shapes across `rounds` random probes.
void ExpectShapeParity(Rng* rng, const TermUniverse& u, const Graph& loaded,
                       const std::vector<Triple>& inserted, size_t rounds) {
  for (size_t round = 0; round < rounds; ++round) {
    for (int shape = 0; shape < 8; ++shape) {
      std::optional<TermId> s, p, o;
      RandomPattern(rng, u, shape, &s, &p, &o);
      std::vector<Triple> expected =
          OracleMatches(inserted, inserted.size(), s, p, o);
      ASSERT_EQ(loaded.MatchAll(s, p, o), expected)
          << "shape " << shape << " round " << round;
      ASSERT_EQ(loaded.EstimateMatches(s, p, o), expected.size())
          << "shape " << shape << " round " << round;
    }
  }
}

// ---- Round-trip parity -------------------------------------------------

TEST(StorageTest, RoundTripIsByteIdenticalForAllShapes) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 40, 6, 36);
  Graph graph(&dict);
  std::vector<Triple> inserted;
  Rng rng(20260809);
  FillGraph(&rng, u, &graph, &inserted, 5000);

  ScratchDir scratch;
  std::string path = scratch.File("g.rps");
  ASSERT_TRUE(storage::SaveGraph(path, graph).ok());

  // Fresh dictionary: ids are assigned in the snapshot's order, the
  // remap is the identity, and the load attaches the mapping.
  Dictionary dict2;
  Graph loaded(&dict2);
  Result<storage::LoadReport> report = storage::LoadGraph(path, &loaded);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->mapped);
  EXPECT_EQ(report->triples, inserted.size());
  ASSERT_EQ(loaded.size(), graph.size());
  EXPECT_TRUE(loaded.has_mapped_base());
  EXPECT_EQ(loaded.mapped_size(), graph.size());

  // Insertion order round-trips exactly, and so does every term.
  for (size_t i = 0; i < inserted.size(); ++i) {
    ASSERT_EQ(loaded.TripleAt(i), inserted[i]) << "position " << i;
  }
  ASSERT_EQ(dict2.size(), dict.size());
  for (TermId id = 0; id < static_cast<TermId>(dict.size()); ++id) {
    ASSERT_EQ(dict2.term(id), dict.term(id)) << "term id " << id;
  }

  Rng probe_rng(31337);
  ExpectShapeParity(&probe_rng, u, loaded, inserted, 40);

  // Contains / PositionOf parity: every stored triple and a batch of
  // random (mostly absent) probes.
  for (size_t i = 0; i < inserted.size(); i += 97) {
    ASSERT_TRUE(loaded.Contains(inserted[i]));
    ASSERT_EQ(loaded.PositionOf(inserted[i]),
              std::optional<uint32_t>(static_cast<uint32_t>(i)));
  }
  for (int i = 0; i < 300; ++i) {
    Triple t = RandomTriple(&probe_rng, u);
    ASSERT_EQ(loaded.Contains(t), graph.Contains(t));
    ASSERT_EQ(loaded.PositionOf(t), graph.PositionOf(t));
  }
}

TEST(StorageTest, AsOfEpochsStraddleTheMappedBoundary) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 24, 5, 20);
  Graph graph(&dict);
  std::vector<Triple> inserted;
  Rng rng(4711);
  FillGraph(&rng, u, &graph, &inserted, 1800);

  ScratchDir scratch;
  std::string path = scratch.File("g.rps");
  ASSERT_TRUE(storage::SaveGraph(path, graph).ok());

  Dictionary dict2;
  Graph loaded(&dict2);
  Result<storage::LoadReport> report = storage::LoadGraph(path, &loaded);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->mapped);

  // Grow past the mapped prefix so epochs below, at, and above the
  // boundary all get exercised (the delta lands in in-memory indexes
  // whose positions are offset by mapped_size()).
  size_t boundary = loaded.mapped_size();
  for (int i = 0; i < 700; ++i) {
    Triple t = RandomTriple(&rng, u);
    bool was_new = graph.InsertUnchecked(t);
    ASSERT_EQ(loaded.InsertUnchecked(t), was_new);
    if (was_new) inserted.push_back(t);
  }
  ASSERT_EQ(loaded.size(), graph.size());

  for (size_t epoch : {size_t{0}, size_t{1}, boundary / 2, boundary - 1,
                       boundary, boundary + 1, boundary + 321,
                       loaded.size(), loaded.size() + 50}) {
    size_t clamped = std::min(epoch, loaded.size());
    for (int shape = 0; shape < 8; ++shape) {
      std::optional<TermId> s, p, o;
      RandomPattern(&rng, u, shape, &s, &p, &o);
      std::vector<Triple> expected = OracleMatches(inserted, clamped, s, p, o);
      ASSERT_EQ(loaded.MatchAllAsOf(s, p, o, epoch), expected)
          << "shape " << shape << " epoch " << epoch;
      ASSERT_EQ(loaded.EstimateMatchesAsOf(s, p, o, epoch), expected.size())
          << "shape " << shape << " epoch " << epoch;
    }
    if (clamped > 0) {
      const Triple& last = inserted[clamped - 1];
      EXPECT_TRUE(loaded.ContainsAsOf(last, epoch));
      EXPECT_EQ(loaded.PositionOfAsOf(last, epoch),
                std::optional<uint32_t>(static_cast<uint32_t>(clamped - 1)));
    }
  }
}

TEST(StorageTest, SaveOfMappedGraphFoldsDeltaAndReloads) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 20, 4, 18);
  Graph graph(&dict);
  std::vector<Triple> inserted;
  Rng rng(99);
  FillGraph(&rng, u, &graph, &inserted, 1200);

  ScratchDir scratch;
  std::string path = scratch.File("g.rps");
  ASSERT_TRUE(storage::SaveGraph(path, graph).ok());

  Dictionary dict2;
  Graph loaded(&dict2);
  ASSERT_TRUE(storage::LoadGraph(path, &loaded).ok());

  // Mapped base + fresh delta on top, then Save() folds both into one
  // new snapshot (write-temp-then-rename over the old file).
  TermUniverse u2 = MakeUniverse(&dict2, 20, 4, 18);  // same ids, new dict
  for (int i = 0; i < 400; ++i) {
    Triple t = RandomTriple(&rng, u2);
    if (loaded.InsertUnchecked(t)) inserted.push_back(t);
  }
  ASSERT_TRUE(storage::SaveGraph(path, loaded).ok());

  Dictionary dict3;
  Graph reloaded(&dict3);
  Result<storage::LoadReport> report = storage::LoadGraph(path, &reloaded);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->mapped);
  ASSERT_EQ(reloaded.size(), inserted.size());
  EXPECT_EQ(reloaded.mapped_size(), inserted.size());  // delta was folded
  for (size_t i = 0; i < inserted.size(); ++i) {
    ASSERT_EQ(reloaded.TripleAt(i), inserted[i]) << "position " << i;
  }
  Rng probe_rng(7);
  ExpectShapeParity(&probe_rng, u2, reloaded, inserted, 20);
}

TEST(StorageTest, CrossLineageLoadRemapsAndMaterializes) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 16, 4, 14);
  Graph graph(&dict);
  std::vector<Triple> inserted;
  Rng rng(555);
  FillGraph(&rng, u, &graph, &inserted, 600);

  ScratchDir scratch;
  std::string path = scratch.File("g.rps");
  ASSERT_TRUE(storage::SaveGraph(path, graph).ok());

  // A dictionary with a different id assignment: the remap is not the
  // identity, so the loader must materialize remapped triples instead of
  // attaching the mapping — and the graphs must still agree term-wise.
  Dictionary other;
  other.InternIri("http://elsewhere/already-interned");
  other.InternIri("http://elsewhere/shifts-every-id");
  Graph remapped(&other);
  Result<storage::LoadReport> report = storage::LoadGraph(path, &remapped);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->mapped);
  EXPECT_FALSE(remapped.has_mapped_base());
  ASSERT_EQ(remapped.size(), graph.size());
  for (size_t i = 0; i < inserted.size(); ++i) {
    const Triple& a = inserted[i];
    const Triple& b = remapped.TripleAt(i);
    ASSERT_EQ(other.term(b.s), dict.term(a.s)) << "position " << i;
    ASSERT_EQ(other.term(b.p), dict.term(a.p)) << "position " << i;
    ASSERT_EQ(other.term(b.o), dict.term(a.o)) << "position " << i;
  }
}

TEST(StorageTest, PlannerCertainAnswersSurviveTheRoundTrip) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 30, 5, 26);
  Graph graph(&dict);
  std::vector<Triple> inserted;
  Rng rng(2024);
  FillGraph(&rng, u, &graph, &inserted, 2500);

  ScratchDir scratch;
  std::string path = scratch.File("g.rps");
  ASSERT_TRUE(storage::SaveGraph(path, graph).ok());
  Dictionary dict2;
  Graph loaded(&dict2);
  Result<storage::LoadReport> report = storage::LoadGraph(path, &loaded);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->mapped);

  VarPool vars;
  VarId x = vars.Intern("x"), y = vars.Intern("y"), z = vars.Intern("z");
  std::vector<GraphPatternQuery> queries;
  {
    GraphPatternQuery q;  // scan
    q.head = {x, y};
    q.body.Add(TriplePattern{PatternTerm::Var(x),
                             PatternTerm::Const(u.predicates[0]),
                             PatternTerm::Var(y)});
    queries.push_back(q);
  }
  {
    GraphPatternQuery q;  // subject-star join
    q.head = {x, y, z};
    q.body.Add(TriplePattern{PatternTerm::Var(x),
                             PatternTerm::Const(u.predicates[1]),
                             PatternTerm::Var(y)});
    q.body.Add(TriplePattern{PatternTerm::Var(x),
                             PatternTerm::Const(u.predicates[2]),
                             PatternTerm::Var(z)});
    queries.push_back(q);
  }
  {
    GraphPatternQuery q;  // path join through a hub-heavy predicate
    q.head = {x, z};
    q.body.Add(TriplePattern{PatternTerm::Var(x),
                             PatternTerm::Const(u.predicates[3]),
                             PatternTerm::Var(y)});
    q.body.Add(TriplePattern{PatternTerm::Var(y),
                             PatternTerm::Const(u.predicates[4]),
                             PatternTerm::Var(z)});
    queries.push_back(q);
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (bool use_plan : {false, true}) {
      EvalOptions options;
      options.use_plan = use_plan;
      std::vector<Tuple> expected =
          EvalQuery(graph, queries[qi], QuerySemantics::kDropBlanks, options);
      std::vector<Tuple> got =
          EvalQuery(loaded, queries[qi], QuerySemantics::kDropBlanks, options);
      ASSERT_EQ(got, expected) << "query " << qi << " use_plan " << use_plan;
    }
  }
}

TEST(StorageTest, NullCounterSurvivesTheRoundTrip) {
  Dictionary dict;
  Graph graph(&dict);
  TermId p = dict.InternIri("http://t/p");
  for (int i = 0; i < 5; ++i) {
    graph.InsertUnchecked(Triple{dict.NewBlank(), p, dict.NewBlank()});
  }
  uint64_t counter = dict.null_counter();
  ASSERT_GT(counter, 0u);

  ScratchDir scratch;
  std::string path = scratch.File("g.rps");
  ASSERT_TRUE(storage::SaveGraph(path, graph).ok());

  // A restarting peer must not re-mint labels that already occur in its
  // recovered data — the chase's fresh-null guarantee (§3).
  Dictionary dict2;
  Graph loaded(&dict2);
  ASSERT_TRUE(storage::LoadGraph(path, &loaded).ok());
  EXPECT_EQ(dict2.null_counter(), counter);
  TermId fresh = dict2.NewBlank();
  for (TermId id = 0; id < static_cast<TermId>(dict.size()); ++id) {
    ASSERT_NE(dict2.term(fresh), dict.term(id));
  }
}

// ---- Failure modes -----------------------------------------------------

// One small valid snapshot reused by the corruption cases.
std::string WriteValidSnapshot(const ScratchDir& scratch, Dictionary* dict) {
  Graph graph(dict);
  TermUniverse u = MakeUniverse(dict, 10, 3, 10);
  std::vector<Triple> inserted;
  Rng rng(1);
  FillGraph(&rng, u, &graph, &inserted, 300);
  std::string path = scratch.File("valid.rps");
  EXPECT_TRUE(storage::SaveGraph(path, graph).ok());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Every corrupted variant must fail kDataLoss with the target graph left
// untouched — corruption is detected before anything is interned.
void ExpectDataLoss(const std::string& path) {
  Dictionary dict;
  Graph graph(&dict);
  Result<storage::LoadReport> r = storage::LoadGraph(path, &graph);
  ASSERT_FALSE(r.ok()) << path;
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << r.status();
  EXPECT_TRUE(graph.empty());
  EXPECT_EQ(dict.size(), 0u);
}

TEST(StorageTest, CorruptedSnapshotsFailCleanlyWithDataLoss) {
  ScratchDir scratch;
  Dictionary dict;
  std::string valid = WriteValidSnapshot(scratch, &dict);
  std::string bytes = ReadFile(valid);
  ASSERT_GT(bytes.size(), storage::kHeaderBytes);

  {  // missing file
    Dictionary d;
    Graph g(&d);
    Result<storage::LoadReport> r =
        storage::LoadGraph(scratch.File("absent.rps"), &g);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().code(), StatusCode::kDataLoss);  // NotFound, not rot
  }

  std::string truncated_header = scratch.File("short.rps");
  WriteFile(truncated_header, bytes.substr(0, 10));
  ExpectDataLoss(truncated_header);

  std::string truncated_body = scratch.File("torn.rps");
  WriteFile(truncated_body, bytes.substr(0, bytes.size() / 2));
  ExpectDataLoss(truncated_body);

  std::string bad_magic = scratch.File("magic.rps");
  std::string mutated = bytes;
  mutated[0] = 'X';
  WriteFile(bad_magic, mutated);
  ExpectDataLoss(bad_magic);

  // Bit rot in the payload: flip one byte past the header in several
  // spots; the per-section checksums must catch every one.
  for (size_t frac = 1; frac <= 4; ++frac) {
    std::string flipped = bytes;
    size_t at = storage::kHeaderBytes +
                (bytes.size() - storage::kHeaderBytes) * frac / 5;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x40);
    std::string path = scratch.File("flip" + std::to_string(frac) + ".rps");
    WriteFile(path, flipped);
    ExpectDataLoss(path);
  }

  std::string empty = scratch.File("empty.rps");
  WriteFile(empty, "");
  ExpectDataLoss(empty);
}

TEST(StorageTest, FutureFormatVersionIsUnimplementedNotDataLoss) {
  ScratchDir scratch;
  Dictionary dict;
  std::string valid = WriteValidSnapshot(scratch, &dict);
  std::string bytes = ReadFile(valid);

  // Bump the version field (offset 8, after the magic) and re-seal the
  // header checksum so only the version differs from a well-formed file.
  storage::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof header);
  header.version = storage::kFormatVersion + 1;
  std::memcpy(bytes.data(), &header, sizeof header);
  size_t table_bytes = sizeof(storage::SectionEntry) * storage::kSectionCount;
  uint64_t checksum = storage::Fnv1a64(bytes.data(), sizeof header);
  checksum = storage::Fnv1a64(bytes.data() + storage::kHeaderBytes,
                              table_bytes, checksum);
  std::memcpy(bytes.data() + sizeof header, &checksum, sizeof checksum);

  std::string path = scratch.File("future.rps");
  WriteFile(path, bytes);
  Dictionary d;
  Graph g(&d);
  Result<storage::LoadReport> r = storage::LoadGraph(path, &g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented) << r.status();
}

TEST(StorageTest, StrayTempFilesAreInert) {
  ScratchDir scratch;
  Dictionary dict;
  Graph graph(&dict);
  TermUniverse u = MakeUniverse(&dict, 10, 3, 10);
  std::vector<Triple> inserted;
  Rng rng(3);
  FillGraph(&rng, u, &graph, &inserted, 200);

  // An interrupted earlier save left garbage at `<path>.tmp`; a new save
  // must replace it and a load must never look at it.
  std::string path = storage::SnapshotPath(scratch.path, "peer/one");
  EXPECT_EQ(path.find('/', scratch.path.size() + 1), std::string::npos)
      << "graph name must not escape the directory: " << path;
  WriteFile(path + ".tmp", "half a snapshot");
  ASSERT_TRUE(storage::SaveGraph(path, graph).ok());

  Dictionary dict2;
  Graph loaded(&dict2);
  Result<storage::LoadReport> report = storage::LoadGraph(path, &loaded);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(loaded.size(), graph.size());

  // And the reverse order: garbage written after the save changes
  // nothing either.
  WriteFile(path + ".tmp", "unrelated garbage");
  Dictionary dict3;
  Graph again(&dict3);
  ASSERT_TRUE(storage::LoadGraph(path, &again).ok());
  EXPECT_EQ(again.size(), graph.size());
}

TEST(StorageTest, LoadRequiresAnEmptyGraph) {
  ScratchDir scratch;
  Dictionary dict;
  std::string valid = WriteValidSnapshot(scratch, &dict);

  Dictionary d;
  Graph g(&d);
  TermId s = d.InternIri("http://t/s");
  TermId p = d.InternIri("http://t/p");
  g.InsertUnchecked(Triple{s, p, s});
  Result<storage::LoadReport> r = storage::LoadGraph(valid, &g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(g.size(), 1u);  // untouched
}

TEST(StorageTest, EnsureDirCreatesNestedDirectoriesForSave) {
  ScratchDir scratch;
  std::string nested = scratch.File("a/b/c");
  ASSERT_TRUE(storage::EnsureDir(nested).ok());
  ASSERT_TRUE(storage::EnsureDir(nested).ok());  // idempotent

  Dictionary dict;
  Graph g(&dict);
  TermId s = dict.InternIri("http://t/s");
  TermId p = dict.InternIri("http://t/p");
  g.InsertUnchecked(Triple{s, p, s});
  std::string snap = storage::SnapshotPath(nested, "peer");
  EXPECT_TRUE(storage::SaveGraph(snap, g).ok());

  Dictionary d2;
  Graph g2(&d2);
  ASSERT_TRUE(storage::LoadGraph(snap, &g2).ok());
  EXPECT_EQ(g2.size(), 1u);

  EXPECT_FALSE(storage::EnsureDir("").ok());
  // A regular file in the way is an error, not a silent success.
  std::string blocked = scratch.File("plain");
  { std::ofstream out(blocked); out << "x"; }
  EXPECT_FALSE(storage::EnsureDir(blocked + "/sub").ok());

  // ScratchDir only unlinks top-level entries; clear the nesting here.
  ::unlink(snap.c_str());
  ::rmdir(nested.c_str());
  ::rmdir(scratch.File("a/b").c_str());
}

}  // namespace
}  // namespace rps
