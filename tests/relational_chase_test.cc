#include "chase/relational_chase.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

class RelationalChaseTest : public ::testing::Test {
 protected:
  RelationalChaseTest() {
    edge_ = preds_.Intern("edge", 2);
    node_ = preds_.Intern("node", 1);
    x_ = vars_.Intern("x");
    y_ = vars_.Intern("y");
    z_ = vars_.Intern("z");
    for (int i = 0; i < 8; ++i) {
      terms_.push_back(dict_.InternIri("http://x/n" + std::to_string(i)));
    }
  }

  PredTable preds_;
  Dictionary dict_;
  VarPool vars_;
  PredId edge_, node_;
  VarId x_, y_, z_;
  std::vector<TermId> terms_;
};

TEST_F(RelationalChaseTest, InsertAndContains) {
  RelationalInstance inst(&preds_);
  EXPECT_TRUE(inst.Insert(edge_, {terms_[0], terms_[1]}));
  EXPECT_FALSE(inst.Insert(edge_, {terms_[0], terms_[1]}));  // duplicate
  EXPECT_TRUE(inst.Contains(edge_, {terms_[0], terms_[1]}));
  EXPECT_FALSE(inst.Contains(edge_, {terms_[1], terms_[0]}));
  EXPECT_EQ(inst.FactCount(), 1u);
  EXPECT_EQ(inst.Facts(edge_).size(), 1u);
  EXPECT_TRUE(inst.Facts(node_).empty());
}

TEST_F(RelationalChaseTest, FindHomomorphismsSingleAtom) {
  RelationalInstance inst(&preds_);
  inst.Insert(edge_, {terms_[0], terms_[1]});
  inst.Insert(edge_, {terms_[1], terms_[2]});
  std::vector<Atom> body = {
      Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(y_)}}};
  int count = 0;
  inst.FindHomomorphisms(body, {}, [&](const VarAssignment& a) {
    EXPECT_EQ(a.size(), 2u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);
}

TEST_F(RelationalChaseTest, FindHomomorphismsJoin) {
  RelationalInstance inst(&preds_);
  inst.Insert(edge_, {terms_[0], terms_[1]});
  inst.Insert(edge_, {terms_[1], terms_[2]});
  inst.Insert(edge_, {terms_[2], terms_[3]});
  // Paths of length two: (0,1,2) and (1,2,3).
  std::vector<Atom> body = {
      Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(z_)}},
      Atom{edge_, {AtomArg::Var(z_), AtomArg::Var(y_)}}};
  int count = 0;
  inst.FindHomomorphisms(body, {}, [&](const VarAssignment&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);
}

TEST_F(RelationalChaseTest, FindHomomorphismsWithSeedAndConstants) {
  RelationalInstance inst(&preds_);
  inst.Insert(edge_, {terms_[0], terms_[1]});
  inst.Insert(edge_, {terms_[0], terms_[2]});
  std::vector<Atom> body = {
      Atom{edge_, {AtomArg::Const(terms_[0]), AtomArg::Var(y_)}}};
  VarAssignment seed = {{y_, terms_[2]}};
  int count = 0;
  inst.FindHomomorphisms(body, seed, [&](const VarAssignment& a) {
    EXPECT_EQ(a.at(y_), terms_[2]);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST_F(RelationalChaseTest, HasHomomorphismEarlyStop) {
  RelationalInstance inst(&preds_);
  for (int i = 0; i < 7; ++i) {
    inst.Insert(edge_, {terms_[i], terms_[i + 1]});
  }
  std::vector<Atom> body = {
      Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(y_)}}};
  EXPECT_TRUE(inst.HasHomomorphism(body, {}));
  EXPECT_FALSE(inst.HasHomomorphism(
      {Atom{node_, {AtomArg::Var(x_)}}}, {}));
}

TEST_F(RelationalChaseTest, TransitiveClosureChase) {
  RelationalInstance inst(&preds_);
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    inst.Insert(edge_, {terms_[i], terms_[i + 1]});
  }
  Tgd trans;
  trans.body = {Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(z_)}},
                Atom{edge_, {AtomArg::Var(z_), AtomArg::Var(y_)}}};
  trans.head = {Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(y_)}}};

  Result<ChaseStats> stats = ChaseTgds({trans}, &inst, &dict_);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->nulls_created, 0u);
  // Full transitive closure of a 7-node path: 7*6/2 = 21 edges.
  EXPECT_EQ(inst.Facts(edge_).size(), 21u);
}

TEST_F(RelationalChaseTest, ExistentialChaseCreatesNulls) {
  RelationalInstance inst(&preds_);
  inst.Insert(node_, {terms_[0]});
  // node(x) → ∃y edge(x, y): every node gets an outgoing edge.
  Tgd tgd;
  tgd.body = {Atom{node_, {AtomArg::Var(x_)}}};
  tgd.head = {Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(y_)}}};
  Result<ChaseStats> stats = ChaseTgds({tgd}, &inst, &dict_);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->nulls_created, 1u);
  ASSERT_EQ(inst.Facts(edge_).size(), 1u);
  EXPECT_TRUE(dict_.IsBlank(inst.Facts(edge_)[0][1]));
}

TEST_F(RelationalChaseTest, RestrictedChaseDoesNotRefire) {
  RelationalInstance inst(&preds_);
  inst.Insert(node_, {terms_[0]});
  inst.Insert(edge_, {terms_[0], terms_[1]});
  // node(x) → ∃y edge(x, y) is already satisfied: no new facts.
  Tgd tgd;
  tgd.body = {Atom{node_, {AtomArg::Var(x_)}}};
  tgd.head = {Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(y_)}}};
  Result<ChaseStats> stats = ChaseTgds({tgd}, &inst, &dict_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->facts_created, 0u);
  EXPECT_EQ(stats->nulls_created, 0u);
}

TEST_F(RelationalChaseTest, DivergentChaseHitsBudget) {
  RelationalInstance inst(&preds_);
  inst.Insert(edge_, {terms_[0], terms_[1]});
  // edge(x, y) → ∃z edge(y, z): diverges without a budget.
  Tgd tgd;
  tgd.body = {Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(y_)}}};
  tgd.head = {Atom{edge_, {AtomArg::Var(y_), AtomArg::Var(z_)}}};
  ChaseOptions options;
  options.max_applications = 50;
  Result<ChaseStats> stats = ChaseTgds({tgd}, &inst, &dict_, options);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RelationalChaseTest, MultiHeadAtomsInsertTogether) {
  RelationalInstance inst(&preds_);
  inst.Insert(node_, {terms_[0]});
  // node(x) → ∃z edge(x, z) ∧ edge(z, x)
  Tgd tgd;
  tgd.body = {Atom{node_, {AtomArg::Var(x_)}}};
  tgd.head = {Atom{edge_, {AtomArg::Var(x_), AtomArg::Var(z_)}},
              Atom{edge_, {AtomArg::Var(z_), AtomArg::Var(x_)}}};
  Result<ChaseStats> stats = ChaseTgds({tgd}, &inst, &dict_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(inst.Facts(edge_).size(), 2u);
  // Same null in both facts.
  EXPECT_EQ(inst.Facts(edge_)[0][1], inst.Facts(edge_)[1][0]);
}

}  // namespace
}  // namespace rps
