#include "query/eval.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "parser/ntriples.h"
#include "util/rng.h"

namespace rps {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : graph_(&dict_) {
    const char* doc =
        "<http://x/film1> <http://x/starring> _:c1 .\n"
        "_:c1 <http://x/artist> <http://x/alice> .\n"
        "<http://x/film1> <http://x/starring> _:c2 .\n"
        "_:c2 <http://x/artist> <http://x/bob> .\n"
        "<http://x/alice> <http://x/age> \"39\" .\n"
        "<http://x/bob> <http://x/age> \"59\" .\n";
    Result<size_t> n = ParseNTriples(doc, &graph_);
    EXPECT_TRUE(n.ok()) << n.status();
    film1_ = *dict_.Lookup(Term::Iri("http://x/film1"));
    starring_ = *dict_.Lookup(Term::Iri("http://x/starring"));
    artist_ = *dict_.Lookup(Term::Iri("http://x/artist"));
    age_ = *dict_.Lookup(Term::Iri("http://x/age"));
    alice_ = *dict_.Lookup(Term::Iri("http://x/alice"));
  }

  Dictionary dict_;
  VarPool vars_;
  Graph graph_;
  TermId film1_, starring_, artist_, age_, alice_;
};

TEST_F(EvalTest, TriplePatternAllVars) {
  VarId s = vars_.Intern("s"), p = vars_.Intern("p"), o = vars_.Intern("o");
  TriplePattern tp{PatternTerm::Var(s), PatternTerm::Var(p),
                   PatternTerm::Var(o)};
  BindingSet result = EvalTriplePattern(graph_, tp);
  EXPECT_EQ(result.size(), graph_.size());
}

TEST_F(EvalTest, TriplePatternWithConstants) {
  VarId z = vars_.Intern("z");
  TriplePattern tp{PatternTerm::Const(film1_), PatternTerm::Const(starring_),
                   PatternTerm::Var(z)};
  BindingSet result = EvalTriplePattern(graph_, tp);
  EXPECT_EQ(result.size(), 2u);
  for (const Binding& b : result) {
    EXPECT_TRUE(dict_.IsBlank(*b.Get(z)));
  }
}

TEST_F(EvalTest, TriplePatternRepeatedVariable) {
  // (x, p, x) matches only triples with equal subject and object.
  Graph g(&dict_);
  TermId a = dict_.InternIri("http://x/a");
  TermId b = dict_.InternIri("http://x/b");
  TermId p = dict_.InternIri("http://x/p");
  g.InsertUnchecked(Triple{a, p, a});
  g.InsertUnchecked(Triple{a, p, b});
  VarId x = vars_.Intern("xx");
  TriplePattern tp{PatternTerm::Var(x), PatternTerm::Const(p),
                   PatternTerm::Var(x)};
  BindingSet result = EvalTriplePattern(g, tp);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(*result[0].Get(x), a);
}

GraphPatternQuery FilmQuery(VarPool* vars, TermId film, TermId starring,
                            TermId artist, TermId age) {
  VarId x = vars->Intern("x"), y = vars->Intern("y"), z = vars->Intern("z");
  GraphPatternQuery q;
  q.head = {x, y};
  q.body.Add(TriplePattern{PatternTerm::Const(film),
                           PatternTerm::Const(starring),
                           PatternTerm::Var(z)});
  q.body.Add(TriplePattern{PatternTerm::Var(z), PatternTerm::Const(artist),
                           PatternTerm::Var(x)});
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(age),
                           PatternTerm::Var(y)});
  return q;
}

TEST_F(EvalTest, ThreeWayJoin) {
  GraphPatternQuery q = FilmQuery(&vars_, film1_, starring_, artist_, age_);
  std::vector<Tuple> answers =
      EvalQuery(graph_, q, QuerySemantics::kDropBlanks);
  EXPECT_EQ(answers.size(), 2u);  // (alice, 39), (bob, 59)
}

TEST_F(EvalTest, DropBlanksSemantics) {
  // Project the intermediate casting node: Q drops it, Q* keeps it.
  VarId z = vars_.Intern("z");
  GraphPatternQuery q;
  q.head = {z};
  q.body.Add(TriplePattern{PatternTerm::Const(film1_),
                           PatternTerm::Const(starring_),
                           PatternTerm::Var(z)});
  EXPECT_TRUE(EvalQuery(graph_, q, QuerySemantics::kDropBlanks).empty());
  EXPECT_EQ(EvalQuery(graph_, q, QuerySemantics::kKeepBlanks).size(), 2u);
}

TEST_F(EvalTest, ResultsAreDistinct) {
  // ?x age ?y with a body that produces the same projection twice.
  VarId x = vars_.Intern("x");
  GraphPatternQuery q;
  q.head = {x};
  VarId y = vars_.Intern("y");
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(starring_),
                           PatternTerm::Var(y)});
  std::vector<Tuple> answers =
      EvalQuery(graph_, q, QuerySemantics::kDropBlanks);
  EXPECT_EQ(answers.size(), 1u);  // film1 appears once despite two triples
}

TEST_F(EvalTest, EmptyPatternYieldsUnitBinding) {
  GraphPattern empty;
  BindingSet result = EvalGraphPattern(graph_, empty);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0].empty());
}

TEST_F(EvalTest, UnsatisfiablePattern) {
  VarId z = vars_.Intern("z");
  GraphPatternQuery q;
  q.head = {z};
  q.body.Add(TriplePattern{PatternTerm::Const(alice_),
                           PatternTerm::Const(starring_),
                           PatternTerm::Var(z)});
  EXPECT_TRUE(EvalQuery(graph_, q, QuerySemantics::kKeepBlanks).empty());
}

TEST_F(EvalTest, BooleanQueries) {
  GraphPatternQuery ask;
  ask.body.Add(TriplePattern{PatternTerm::Const(alice_),
                             PatternTerm::Const(age_),
                             PatternTerm::Const(*dict_.Lookup(
                                 Term::Literal("39")))});
  EXPECT_TRUE(EvalBoolean(graph_, ask));
  GraphPatternQuery ask_false;
  ask_false.body.Add(TriplePattern{PatternTerm::Const(alice_),
                                   PatternTerm::Const(age_),
                                   PatternTerm::Const(film1_)});
  EXPECT_FALSE(EvalBoolean(graph_, ask_false));
}

TEST_F(EvalTest, ReorderingDoesNotChangeResults) {
  // Evaluation is order-independent (AND is commutative); compare the
  // reordered evaluation against the textual-order evaluation on random
  // permutations of a chain query.
  Rng rng(5);
  GraphPatternQuery base = FilmQuery(&vars_, film1_, starring_, artist_, age_);
  std::vector<TriplePattern> patterns = base.body.patterns();
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(patterns.begin(), patterns.end(), rng.engine());
    GraphPatternQuery q;
    q.head = base.head;
    q.body = GraphPattern(patterns);
    EvalOptions no_reorder;
    no_reorder.reorder_patterns = false;
    EvalOptions reorder;
    std::vector<Tuple> a = EvalQuery(graph_, q, QuerySemantics::kDropBlanks,
                                     no_reorder);
    std::vector<Tuple> b =
        EvalQuery(graph_, q, QuerySemantics::kDropBlanks, reorder);
    SortTuples(&a);
    SortTuples(&b);
    EXPECT_EQ(a, b) << "trial " << trial;
  }
}

TEST_F(EvalTest, SeedAwareOrderingReducesScannedCandidates) {
  // The cost model consults the seed binding's concrete values: a pattern
  // that looks expensive unseeded (201 pa-triples) but is selective for
  // the seeded subject must run before a statically smaller pattern (50
  // pb-triples). The scanned-candidate counter separates the two orders:
  // seeded-first scans 1 + 50 candidates, static-first scans 50 + 50.
  Graph g(&dict_);
  TermId a = dict_.InternIri("http://x/jo_a");
  TermId c = dict_.InternIri("http://x/jo_c");
  TermId pa = dict_.InternIri("http://x/jo_pa");
  TermId pb = dict_.InternIri("http://x/jo_pb");
  TermId y0 = dict_.InternIri("http://x/jo_y0");
  g.InsertUnchecked(Triple{a, pa, y0});
  for (int i = 0; i < 200; ++i) {
    g.InsertUnchecked(
        Triple{dict_.InternIri("http://x/jo_s" + std::to_string(i)), pa,
               dict_.InternIri("http://x/jo_o" + std::to_string(i))});
  }
  for (int i = 0; i < 50; ++i) {
    g.InsertUnchecked(Triple{
        c, pb, dict_.InternIri("http://x/jo_z" + std::to_string(i))});
  }

  VarId x = vars_.Intern("jo_x"), y = vars_.Intern("jo_y"),
        z = vars_.Intern("jo_z");
  std::vector<TriplePattern> patterns = {
      TriplePattern{PatternTerm::Var(x), PatternTerm::Const(pa),
                    PatternTerm::Var(y)},
      TriplePattern{PatternTerm::Const(c), PatternTerm::Const(pb),
                    PatternTerm::Var(z)},
  };
  Binding seed;
  ASSERT_TRUE(seed.Bind(x, a));

  obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
  BindingSet result = ExtendBindings(g, patterns, {seed});
  obs::MetricsSnapshot delta =
      obs::Registry::Global().Snapshot().DeltaSince(before);
  EXPECT_EQ(result.size(), 50u);  // (a, y0) × the 50 pb-objects
  EXPECT_LE(delta.counter("eval.pattern_matches"), 60u);
}

TEST_F(EvalTest, CartesianProductAcrossDisconnectedPatterns) {
  VarId x = vars_.Intern("x"), y = vars_.Intern("y");
  GraphPatternQuery q;
  q.head = {x, y};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(age_),
                           PatternTerm::Const(*dict_.Lookup(
                               Term::Literal("39")))});
  q.body.Add(TriplePattern{PatternTerm::Var(y), PatternTerm::Const(age_),
                           PatternTerm::Const(*dict_.Lookup(
                               Term::Literal("59")))});
  std::vector<Tuple> answers =
      EvalQuery(graph_, q, QuerySemantics::kDropBlanks);
  ASSERT_EQ(answers.size(), 1u);  // alice × bob
}

}  // namespace
}  // namespace rps
