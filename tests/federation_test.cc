#include "federation/federator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.h"
#include "gen/paper_example.h"
#include "peer/certain_answers.h"

namespace rps {
namespace {

TEST(TopologyTest, ChainShape) {
  Topology t = Topology::Chain(5);
  EXPECT_EQ(t.NodeCount(), 5u);
  EXPECT_EQ(t.EdgeCount(), 4u);
  EXPECT_EQ(t.HopDistance(0, 4), 4u);
  EXPECT_EQ(t.HopDistance(2, 2), 0u);
  EXPECT_EQ(t.Describe(), "chain(5)");
}

TEST(TopologyTest, StarShape) {
  Topology t = Topology::Star(6);
  EXPECT_EQ(t.EdgeCount(), 5u);
  EXPECT_EQ(t.HopDistance(0, 3), 1u);
  EXPECT_EQ(t.HopDistance(1, 5), 2u);  // via the hub
}

TEST(TopologyTest, RingShape) {
  Topology t = Topology::Ring(6);
  EXPECT_EQ(t.EdgeCount(), 6u);
  EXPECT_EQ(t.HopDistance(0, 3), 3u);
  EXPECT_EQ(t.HopDistance(0, 5), 1u);  // wrap-around
}

TEST(TopologyTest, RandomIsConnectedAndDeterministic) {
  Topology a = Topology::Random(10, 0.2, 42);
  Topology b = Topology::Random(10, 0.2, 42);
  EXPECT_EQ(a.EdgeCount(), b.EdgeCount());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NE(a.HopDistance(0, i), SIZE_MAX) << "node " << i;
  }
}

TEST(TopologyTest, DisconnectedDistanceIsInfinite) {
  Topology t(4);
  t.AddEdge(0, 1);
  EXPECT_EQ(t.HopDistance(0, 3), SIZE_MAX);
}

TEST(TopologyTest, DuplicateAndSelfEdgesIgnored) {
  Topology t(3);
  t.AddEdge(0, 1);
  t.AddEdge(1, 0);
  t.AddEdge(1, 1);
  EXPECT_EQ(t.EdgeCount(), 1u);
}

TEST(NetworkStatsTest, ExchangeAccounting) {
  NetworkCostModel model;
  NetworkStats stats;
  stats.AddExchange(/*payload_bytes=*/1000.0, /*hops=*/2, model);
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, static_cast<size_t>(1000.0 + model.bytes_per_request));
  EXPECT_GT(stats.latency_ms, 2 * 2 * model.latency_ms_per_hop - 1e-9);
}

TEST(FederatorTest, PaperExampleFederatedMatchesChase) {
  PaperExample ex = BuildPaperExample();
  Federator fed(ex.system.get(), Topology::Star(3));
  Result<FederatedQueryResult> fed_result = fed.Execute(ex.query);
  ASSERT_TRUE(fed_result.ok()) << fed_result.status();

  Result<CertainAnswerResult> chase = CertainAnswers(*ex.system, ex.query);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(fed_result->answers, chase->answers);
  EXPECT_GT(fed_result->subqueries, 0u);
  EXPECT_GT(fed_result->network.messages, 0u);
}

TEST(FederatorTest, CentralizedMatchesFederated) {
  PaperExample ex = BuildPaperExample();
  Federator fed(ex.system.get(), Topology::Chain(3));
  Result<FederatedQueryResult> distributed = fed.Execute(ex.query);
  Result<FederatedQueryResult> centralized = fed.ExecuteCentralized(ex.query);
  ASSERT_TRUE(distributed.ok());
  ASSERT_TRUE(centralized.ok());
  EXPECT_EQ(distributed->answers, centralized->answers);
}

TEST(FederatorTest, CentralizedShipsMoreBytesOnSelectiveQueries) {
  // A selective query should move far less data federated than shipping
  // all sources to the coordinator.
  LodConfig config;
  config.num_peers = 4;
  config.films_per_peer = 40;
  config.single_triple_dialect = true;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  // Selective: one specific film of peer 0.
  Dictionary& dict = *sys->dict();
  VarPool& vars = *sys->vars();
  TermId film = dict.InternIri("http://peer0.example.org/film0");
  TermId actor = dict.InternIri("http://peer0.example.org/actor");
  VarId x = vars.Intern("fx");
  GraphPatternQuery q;
  q.head = {x};
  q.body.Add(TriplePattern{PatternTerm::Const(film),
                           PatternTerm::Const(actor), PatternTerm::Var(x)});

  Federator fed(sys.get(), LodTopology(config));
  Result<FederatedQueryResult> distributed = fed.Execute(q);
  Result<FederatedQueryResult> centralized = fed.ExecuteCentralized(q);
  ASSERT_TRUE(distributed.ok()) << distributed.status();
  ASSERT_TRUE(centralized.ok());
  EXPECT_EQ(distributed->answers, centralized->answers);
  EXPECT_LT(distributed->network.bytes, centralized->network.bytes);
}

TEST(FederatorTest, LodSystemFederatedMatchesChase) {
  for (auto topo : {LodConfig::MappingTopology::kChain,
                    LodConfig::MappingTopology::kStar,
                    LodConfig::MappingTopology::kRing}) {
    LodConfig config;
    config.num_peers = 3;
    config.films_per_peer = 5;
    config.topology = topo;
    config.single_triple_dialect = true;
    std::unique_ptr<RpsSystem> sys = GenerateLod(config);
    GraphPatternQuery q = LodDemoQuery(sys.get(), config);

    Federator fed(sys.get(), LodTopology(config));
    Result<FederatedQueryResult> fed_result = fed.Execute(q);
    ASSERT_TRUE(fed_result.ok()) << fed_result.status();
    Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
    ASSERT_TRUE(chase.ok());
    EXPECT_EQ(fed_result->answers, chase->answers)
        << "topology " << static_cast<int>(topo);
  }
}

TEST(FederatorTest, BindJoinMatchesShipExtensions) {
  for (uint64_t seed : {61u, 62u, 63u}) {
    LodConfig config;
    config.num_peers = 4;
    config.films_per_peer = 12;
    config.seed = seed;
    config.single_triple_dialect = (seed % 2 == 0);
    std::unique_ptr<RpsSystem> sys = GenerateLod(config);
    GraphPatternQuery q = LodDemoQuery(sys.get(), config);

    Federator fed(sys.get(), LodTopology(config));
    FederationOptions ship;
    ship.join_strategy = JoinStrategy::kShipExtensions;
    FederationOptions bind;
    bind.join_strategy = JoinStrategy::kBindJoin;
    bind.bind_join_batch = 4;

    Result<FederatedQueryResult> a = fed.Execute(q, ship);
    Result<FederatedQueryResult> b = fed.Execute(q, bind);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->answers, b->answers) << "seed " << seed;
  }
}

TEST(FederatorTest, BindJoinShipsLessOnSelectiveQueries) {
  LodConfig config;
  config.num_peers = 4;
  config.films_per_peer = 60;
  config.single_triple_dialect = false;  // two-triple dialect: real joins
  config.seed = 64;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  // Selective: the cast of one specific film, peer-1 dialect (starring +
  // artist join).
  Dictionary* dict = sys->dict();
  VarPool* vars = sys->vars();
  GraphPatternQuery q;
  VarId x = vars->Intern("bj_x"), z = vars->Intern("bj_z");
  q.head = {x};
  q.body.Add(TriplePattern{
      PatternTerm::Const(dict->InternIri("http://peer1.example.org/film2")),
      PatternTerm::Const(
          dict->InternIri("http://peer1.example.org/starring")),
      PatternTerm::Var(z)});
  q.body.Add(TriplePattern{
      PatternTerm::Var(z),
      PatternTerm::Const(dict->InternIri("http://peer1.example.org/artist")),
      PatternTerm::Var(x)});

  Federator fed(sys.get(), LodTopology(config));
  FederationOptions ship;
  FederationOptions bind;
  bind.join_strategy = JoinStrategy::kBindJoin;
  Result<FederatedQueryResult> a = fed.Execute(q, ship);
  Result<FederatedQueryResult> b = fed.Execute(q, bind);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_LT(b->network.bytes, a->network.bytes);
}

TEST(FederatorTest, CoordinatorPlacementAffectsLatencyNotAnswers) {
  LodConfig config;
  config.num_peers = 6;
  config.films_per_peer = 10;
  config.topology = LodConfig::MappingTopology::kChain;
  config.seed = 65;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  FederationOptions end_node;
  end_node.coordinator = 0;  // chain endpoint: longest average distance
  FederationOptions middle;
  middle.coordinator = 3;    // near the middle: shorter paths

  Result<FederatedQueryResult> from_end = fed.Execute(q, end_node);
  Result<FederatedQueryResult> from_middle = fed.Execute(q, middle);
  ASSERT_TRUE(from_end.ok());
  ASSERT_TRUE(from_middle.ok());
  EXPECT_EQ(from_end->answers, from_middle->answers);
  EXPECT_EQ(from_end->network.bytes, from_middle->network.bytes);
  EXPECT_GT(from_end->network.latency_ms, from_middle->network.latency_ms);
}

TEST(FederatorTest, CustomCostModelScalesAccounting) {
  PaperExample ex = BuildPaperExample();
  Federator fed(ex.system.get(), Topology::Chain(3));
  FederationOptions cheap;
  FederationOptions pricey;
  pricey.cost.latency_ms_per_hop = 50.0;  // 10× the default
  Result<FederatedQueryResult> a = fed.Execute(ex.query, cheap);
  Result<FederatedQueryResult> b = fed.Execute(ex.query, pricey);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_GT(b->network.latency_ms, a->network.latency_ms);
}

TEST(FederatorTest, TopologyTooSmallRejected) {
  PaperExample ex = BuildPaperExample();  // 3 peers
  Federator fed(ex.system.get(), Topology::Chain(2));
  EXPECT_FALSE(fed.Execute(ex.query).ok());
}

TEST(NetworkStatsTest, MergeMatchesSequentialAccumulation) {
  NetworkCostModel model;
  NetworkStats sequential;
  sequential.AddExchange(500.0, 1, model);
  sequential.AddLostExchange(60.0, model);
  sequential.AddWait(4.0);
  sequential.AddExchange(200.0, 3, model, /*latency_scale=*/2.0,
                         /*extra_latency_ms=*/1.5);

  NetworkStats task_a;
  task_a.AddExchange(500.0, 1, model);
  task_a.AddLostExchange(60.0, model);
  NetworkStats task_b;
  task_b.AddWait(4.0);
  task_b.AddExchange(200.0, 3, model, 2.0, 1.5);
  NetworkStats merged;
  merged.Merge(task_a);
  merged.Merge(task_b);

  EXPECT_EQ(merged.messages, sequential.messages);
  EXPECT_EQ(merged.bytes, sequential.bytes);
  EXPECT_DOUBLE_EQ(merged.latency_ms, sequential.latency_ms);
}

TEST(NetworkStatsTest, LostExchangeChargesRequestAndWait) {
  NetworkCostModel model;
  NetworkStats stats;
  stats.AddLostExchange(/*waited_ms=*/60.0, model);
  EXPECT_EQ(stats.messages, 1u);  // the request crossed; no response
  EXPECT_EQ(stats.bytes, static_cast<size_t>(model.bytes_per_request));
  EXPECT_DOUBLE_EQ(stats.latency_ms, 60.0);
}

TEST(FaultInjectorTest, DefaultConstructedIsInactive) {
  FaultInjector injector;
  EXPECT_FALSE(injector.active());
  FaultOptions none;
  EXPECT_FALSE(none.Any());
  FaultOptions some;
  some.drop_rate = 0.1;
  EXPECT_TRUE(some.Any());
}

TEST(FaultInjectorTest, DropDrawsAreDeterministicAndSeedSensitive) {
  FaultOptions options;
  options.drop_rate = 0.5;
  options.seed = 7;
  FaultInjector a(options, 4);
  FaultInjector b(options, 4);
  options.seed = 8;
  FaultInjector c(options, 4);

  size_t differs = 0;
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t key = FaultInjector::RequestKey(0, i, 0, i % 4, 0);
    EXPECT_EQ(a.DropExchange(key), b.DropExchange(key)) << i;
    if (a.DropExchange(key) != c.DropExchange(key)) ++differs;
  }
  EXPECT_GT(differs, 0u);  // a different seed is a different schedule
}

TEST(FaultInjectorTest, CrashScheduleStopsAfterConfiguredCount) {
  FaultOptions options;
  options.crash_after = {{1, 2}};
  options.crashed_peers = {3};
  FaultInjector injector(options, 4);
  EXPECT_TRUE(injector.PeerUp(0, 0));
  EXPECT_TRUE(injector.PeerUp(1, 0));
  EXPECT_TRUE(injector.PeerUp(1, 1));
  EXPECT_FALSE(injector.PeerUp(1, 2));  // third primary sub-query: down
  EXPECT_FALSE(injector.PeerUp(3, 0));  // crashed from the start
  // Hedged requests (SIZE_MAX): up for unscheduled peers, down for
  // hard-crashed peers and (conservatively) for crash-scheduled ones.
  EXPECT_TRUE(injector.PeerUp(0, SIZE_MAX));
  EXPECT_FALSE(injector.PeerUp(1, SIZE_MAX));
  EXPECT_FALSE(injector.PeerUp(3, SIZE_MAX));
}

TEST(ParseFaultSpecTest, ParsesFullSpec) {
  Result<FaultOptions> parsed = ParseFaultSpec(
      "drop:0.25,seed:42,jitter:3,crash:1|3,crashp:0.5,"
      "crashafter:2=1|4=0,slowp:0.1,slow:2,slowf:8");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->drop_rate, 0.25);
  EXPECT_EQ(parsed->seed, 42u);
  EXPECT_DOUBLE_EQ(parsed->latency_jitter_ms, 3.0);
  EXPECT_EQ(parsed->crashed_peers, (std::vector<size_t>{1, 3}));
  EXPECT_DOUBLE_EQ(parsed->crash_rate, 0.5);
  ASSERT_EQ(parsed->crash_after.size(), 2u);
  EXPECT_EQ(parsed->crash_after[0], (std::pair<size_t, size_t>{2, 1}));
  EXPECT_EQ(parsed->crash_after[1], (std::pair<size_t, size_t>{4, 0}));
  EXPECT_DOUBLE_EQ(parsed->slow_rate, 0.1);
  EXPECT_EQ(parsed->slow_peers, (std::vector<size_t>{2}));
  EXPECT_DOUBLE_EQ(parsed->slow_factor, 8.0);
  EXPECT_TRUE(parsed->Any());
}

TEST(ParseFaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultSpec("bogus:1").ok());
  EXPECT_FALSE(ParseFaultSpec("drop").ok());
  EXPECT_FALSE(ParseFaultSpec("drop:abc").ok());
  EXPECT_FALSE(ParseFaultSpec("drop:-0.5").ok());
  EXPECT_FALSE(ParseFaultSpec("drop:0.5x").ok());
  EXPECT_FALSE(ParseFaultSpec("crashafter:2").ok());
  EXPECT_TRUE(ParseFaultSpec("").ok());  // empty spec: no faults
}

namespace fault_test {

// True if every tuple of `subset` also occurs in `superset` (the
// federator returns sorted, deduplicated answers).
bool IsSubset(const std::vector<Tuple>& subset,
              const std::vector<Tuple>& superset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

// The LOD fixture the fault tests share.
std::unique_ptr<RpsSystem> MakeLodSystem(LodConfig* config_out) {
  LodConfig config;
  config.num_peers = 5;
  config.films_per_peer = 10;
  config.seed = 81;
  config.single_triple_dialect = true;
  *config_out = config;
  return GenerateLod(config);
}

// A two-peer system where both peers host the same graph (replicas), so
// hedged re-dispatch has somewhere to go.
std::unique_ptr<RpsSystem> MakeReplicatedSystem(GraphPatternQuery* query) {
  auto sys = std::make_unique<RpsSystem>();
  Graph& a = sys->AddPeer("alpha");
  Graph& b = sys->AddPeer("beta");
  Dictionary& dict = *sys->dict();
  TermId p = dict.InternIri("http://r.example.org/knows");
  for (int i = 0; i < 4; ++i) {
    TermId s = dict.InternIri("http://r.example.org/s" +
                              std::to_string(i));
    TermId o = dict.InternIri("http://r.example.org/o" +
                              std::to_string(i));
    a.InsertUnchecked(Triple{s, p, o});
    b.InsertUnchecked(Triple{s, p, o});
  }
  VarId x = sys->vars()->Intern("rx");
  VarId y = sys->vars()->Intern("ry");
  query->head = {x, y};
  query->body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                                PatternTerm::Var(y)});
  return sys;
}

}  // namespace fault_test

TEST(FaultToleranceTest, InactiveFaultsMatchCleanRunExactly) {
  // Default FaultOptions must leave the execution byte-identical to the
  // pre-fault code path: same answers, same accounting, kComplete.
  PaperExample ex = BuildPaperExample();
  Federator fed(ex.system.get(), Topology::Star(3));
  Result<FederatedQueryResult> clean = fed.Execute(ex.query);
  FederationOptions with_defaults;
  with_defaults.retry.max_retries = 7;  // irrelevant on a perfect network
  Result<FederatedQueryResult> defaulted = fed.Execute(ex.query,
                                                       with_defaults);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(clean->answers, defaulted->answers);
  EXPECT_EQ(clean->network.messages, defaulted->network.messages);
  EXPECT_EQ(clean->network.bytes, defaulted->network.bytes);
  EXPECT_DOUBLE_EQ(clean->network.latency_ms,
                   defaulted->network.latency_ms);
  EXPECT_EQ(defaulted->completeness, Completeness::kComplete);
  EXPECT_EQ(defaulted->retries, 0u);
  EXPECT_EQ(defaulted->timeouts, 0u);
  EXPECT_TRUE(defaulted->degraded_peers.empty());
}

TEST(FaultToleranceTest, DropsAreSoundAndMarked) {
  // Acceptance criterion: at drop rate 0.3, (a) every answer is also a
  // zero-fault answer, (b) the marker is kPartialSound iff some peer
  // degraded.
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = fault_test::MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  Result<FederatedQueryResult> baseline = fed.Execute(q);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_FALSE(baseline->answers.empty());

  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (size_t budget : {0u, 2u}) {
      FederationOptions options;
      options.faults.drop_rate = 0.3;
      options.faults.seed = seed;
      options.retry.timeout_ms = 60.0;
      options.retry.max_retries = budget;
      Result<FederatedQueryResult> r = fed.Execute(q, options);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_TRUE(fault_test::IsSubset(r->answers, baseline->answers))
          << "seed " << seed << " budget " << budget;
      EXPECT_EQ(r->completeness == Completeness::kPartialSound,
                !r->degraded_peers.empty())
          << "seed " << seed << " budget " << budget;
      if (budget == 0) {
        EXPECT_EQ(r->retries, 0u);
      }
    }
  }
}

TEST(FaultToleranceTest, IdenticalSeedsAreByteIdenticalAcrossThreads) {
  // Acceptance criterion: identical seeds yield byte-identical results
  // (answers, stats, degraded set) for every thread count 1..8. All
  // fault draws hash deterministic request coordinates and per-task
  // stats merge in peer order, so even latency sums match bit-for-bit.
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = fault_test::MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  FederationOptions options;
  options.faults.drop_rate = 0.3;
  options.faults.latency_jitter_ms = 2.0;
  options.faults.slow_peers = {1};
  options.faults.seed = 321;
  options.retry.timeout_ms = 60.0;
  options.retry.max_retries = 2;

  options.threads = 1;
  Result<FederatedQueryResult> reference = fed.Execute(q, options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (size_t threads = 2; threads <= 8; ++threads) {
    options.threads = threads;
    Result<FederatedQueryResult> r = fed.Execute(q, options);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->answers, reference->answers) << threads << " threads";
    EXPECT_EQ(r->network.messages, reference->network.messages);
    EXPECT_EQ(r->network.bytes, reference->network.bytes);
    EXPECT_EQ(r->network.latency_ms, reference->network.latency_ms)
        << threads << " threads (exact double equality intended)";
    EXPECT_EQ(r->retries, reference->retries);
    EXPECT_EQ(r->timeouts, reference->timeouts);
    EXPECT_EQ(r->hedged, reference->hedged);
    EXPECT_EQ(r->degraded_peers, reference->degraded_peers);
    EXPECT_EQ(r->completeness, reference->completeness);
  }
}

TEST(FaultToleranceTest, ReplayOfSeededScheduleIsDeterministic) {
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = fault_test::MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  FederationOptions options;
  options.faults.drop_rate = 0.4;
  options.faults.seed = 77;
  options.retry.max_retries = 1;
  options.retry.timeout_ms = 50.0;
  Result<FederatedQueryResult> first = fed.Execute(q, options);
  Result<FederatedQueryResult> second = fed.Execute(q, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->answers, second->answers);
  EXPECT_EQ(first->network.latency_ms, second->network.latency_ms);
  EXPECT_EQ(first->retries, second->retries);
  EXPECT_EQ(first->timeouts, second->timeouts);
  EXPECT_EQ(first->degraded_peers, second->degraded_peers);
}

TEST(FaultToleranceTest, AllPeersDeadReturnsEmptyPartialSound) {
  // Satellite edge case: with every peer crashed the federator must
  // return (not hang), with no answers and an explicit kPartialSound.
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = fault_test::MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  FederationOptions options;
  for (size_t p = 0; p < sys->PeerCount(); ++p) {
    options.faults.crashed_peers.push_back(p);
  }
  options.retry.max_retries = 2;
  options.threads = 4;
  Result<FederatedQueryResult> r = fed.Execute(q, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->answers.empty());
  EXPECT_EQ(r->completeness, Completeness::kPartialSound);
  EXPECT_FALSE(r->degraded_peers.empty());
  EXPECT_GT(r->timeouts, 0u);
}

TEST(FaultToleranceTest, CrashAfterZeroEqualsCrashedFromStart) {
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = fault_test::MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  FederationOptions scheduled;
  scheduled.faults.crash_after = {{2, 0}};
  FederationOptions hard;
  hard.faults.crashed_peers = {2};
  Result<FederatedQueryResult> a = fed.Execute(q, scheduled);
  Result<FederatedQueryResult> b = fed.Execute(q, hard);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_EQ(a->degraded_peers, b->degraded_peers);
  EXPECT_EQ(a->completeness, Completeness::kPartialSound);
}

TEST(FaultToleranceTest, HedgingRecoversFromReplicaPeer) {
  // Crash one of two replica peers: the hedge re-dispatch reaches the
  // surviving copy, so the run stays complete with zero degraded peers.
  GraphPatternQuery q;
  std::unique_ptr<RpsSystem> sys = fault_test::MakeReplicatedSystem(&q);
  Federator fed(sys.get(), Topology::Star(2));
  EXPECT_EQ(fed.Replicas(0), (std::vector<size_t>{1}));
  EXPECT_EQ(fed.Replicas(1), (std::vector<size_t>{0}));

  Result<FederatedQueryResult> baseline = fed.Execute(q);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_EQ(baseline->answers.size(), 4u);

  FederationOptions options;
  options.faults.crashed_peers = {0};
  options.retry.max_retries = 1;
  Result<FederatedQueryResult> hedged = fed.Execute(q, options);
  ASSERT_TRUE(hedged.ok()) << hedged.status();
  EXPECT_EQ(hedged->answers, baseline->answers);
  EXPECT_EQ(hedged->completeness, Completeness::kComplete);
  EXPECT_GT(hedged->hedged, 0u);
  EXPECT_TRUE(hedged->degraded_peers.empty());

  FederationOptions no_hedge = options;
  no_hedge.retry.hedge = false;
  Result<FederatedQueryResult> degraded = fed.Execute(q, no_hedge);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->completeness, Completeness::kPartialSound);
  EXPECT_EQ(degraded->degraded_peers, (std::vector<std::string>{"alpha"}));
  EXPECT_EQ(degraded->hedged, 0u);
  // The surviving replica still answers, so hedging only changed the
  // marker, not soundness.
  EXPECT_EQ(degraded->answers, baseline->answers);
}

TEST(FaultToleranceTest, BindJoinUnderFaultsIsSound) {
  LodConfig config;
  std::unique_ptr<RpsSystem> sys = fault_test::MakeLodSystem(&config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  FederationOptions clean;
  clean.join_strategy = JoinStrategy::kBindJoin;
  clean.bind_join_batch = 4;
  Result<FederatedQueryResult> baseline = fed.Execute(q, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  FederationOptions faulty = clean;
  faulty.faults.drop_rate = 0.3;
  faulty.faults.seed = 17;
  faulty.retry.timeout_ms = 60.0;
  faulty.retry.max_retries = 1;
  faulty.threads = 4;
  Result<FederatedQueryResult> r = fed.Execute(q, faulty);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(fault_test::IsSubset(r->answers, baseline->answers));
  EXPECT_EQ(r->completeness == Completeness::kPartialSound,
            !r->degraded_peers.empty());
}

TEST(FaultToleranceTest, ConcurrentFanOutWithHedgingIsRaceFree) {
  // Regression for the stats data race: the threaded fan-out used to
  // need a shared NetworkStats; now every task accumulates its own
  // SubQueryStats and the coordinator merges serially. With replicas
  // plus drops, hedged re-dispatch also hits a replica's endpoint while
  // that replica answers its own primaries concurrently (atomic
  // queries_served_). Run under TSan via scripts/check_tsan.sh.
  GraphPatternQuery q;
  std::unique_ptr<RpsSystem> sys = fault_test::MakeReplicatedSystem(&q);
  Federator fed(sys.get(), Topology::Star(2));
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FederationOptions options;
    options.threads = 8;
    options.faults.drop_rate = 0.5;
    options.faults.seed = seed;
    options.retry.timeout_ms = 40.0;
    options.retry.max_retries = 1;
    Result<FederatedQueryResult> r = fed.Execute(q, options);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->completeness == Completeness::kPartialSound,
              !r->degraded_peers.empty());
  }
  EXPECT_GT(fed.peers()[0].queries_served() +
                fed.peers()[1].queries_served(),
            0u);
}

TEST(FederatorCacheTest, RewriteCacheReusedAcrossExecutes) {
  PaperExample ex = BuildPaperExample();
  Federator fed(ex.system.get(), Topology::Star(3));

  Result<FederatedQueryResult> first = fed.Execute(ex.query);
  ASSERT_TRUE(first.ok()) << first.status();
  RewriteCacheStats after_first = fed.rewrite_cache_stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.hits, 0u);

  // Repeats — distributed and centralized — reuse the memoized
  // rewriting with byte-identical answers.
  Result<FederatedQueryResult> second = fed.Execute(ex.query);
  Result<FederatedQueryResult> central = fed.ExecuteCentralized(ex.query);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(central.ok());
  EXPECT_EQ(second->answers, first->answers);
  EXPECT_EQ(central->answers, first->answers);
  EXPECT_EQ(fed.rewrite_cache_stats().hits, 2u);
  EXPECT_EQ(fed.rewrite_cache_stats().misses, 1u);

  // Opting out skips the cache entirely.
  FederationOptions no_cache;
  no_cache.use_rewrite_cache = false;
  Result<FederatedQueryResult> bypassed = fed.Execute(ex.query, no_cache);
  ASSERT_TRUE(bypassed.ok());
  EXPECT_EQ(bypassed->answers, first->answers);
  EXPECT_EQ(fed.rewrite_cache_stats().hits, 2u) << "bypass still hit";
}

TEST(FederatorCacheTest, SubQueryCacheMatchesUncachedByteForByte) {
  for (auto strategy :
       {JoinStrategy::kShipExtensions, JoinStrategy::kBindJoin}) {
    LodConfig config;
    config.num_peers = 4;
    config.films_per_peer = 12;
    config.seed = 91;
    config.single_triple_dialect = false;
    std::unique_ptr<RpsSystem> sys = GenerateLod(config);
    GraphPatternQuery q = LodDemoQuery(sys.get(), config);
    Federator fed(sys.get(), LodTopology(config));

    FederationOptions plain;
    plain.join_strategy = strategy;
    plain.bind_join_batch = 4;
    FederationOptions caching = plain;
    caching.use_subquery_cache = true;

    Result<FederatedQueryResult> baseline = fed.Execute(q, plain);
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    ASSERT_FALSE(baseline->answers.empty());

    // First cached run fills the cache; the repeat hits. Both must be
    // byte-identical to the uncached execution, including accounting
    // (cached answers replay the same endpoint results).
    Result<FederatedQueryResult> cold = fed.Execute(q, caching);
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_EQ(cold->answers, baseline->answers);
    SubQueryCacheStats after_cold = fed.subquery_cache_stats();
    EXPECT_GT(after_cold.entries, 0u);

    Result<FederatedQueryResult> warm = fed.Execute(q, caching);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm->answers, baseline->answers);
    EXPECT_GT(fed.subquery_cache_stats().hits, after_cold.hits)
        << "repeat run never hit the sub-query cache";
  }
}

TEST(FederatorCacheTest, SubQueryCacheMissesAfterIngest) {
  // The key folds the peer's graph epoch: appending a triple to a peer
  // shifts its keys, so the next execution re-reads that peer and picks
  // up the new answer — stale entries are unreachable by construction.
  GraphPatternQuery q;
  std::unique_ptr<RpsSystem> sys = fault_test::MakeReplicatedSystem(&q);
  Federator fed(sys.get(), Topology::Star(2));
  FederationOptions caching;
  caching.use_subquery_cache = true;

  Result<FederatedQueryResult> before = fed.Execute(q, caching);
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_EQ(before->answers.size(), 4u);

  Dictionary& dict = *sys->dict();
  TermId p = dict.InternIri("http://r.example.org/knows");
  Triple fresh{dict.InternIri("http://r.example.org/s_new"), p,
               dict.InternIri("http://r.example.org/o_new")};
  sys->dataset().Find("alpha")->InsertUnchecked(fresh);
  sys->dataset().Find("beta")->InsertUnchecked(fresh);

  Result<FederatedQueryResult> after = fed.Execute(q, caching);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->answers.size(), 5u) << "stale sub-query answers served";
}

TEST(PeerNodeTest, MayAnswerFiltersBySchema) {
  Dictionary dict;
  Graph g(&dict);
  TermId s = dict.InternIri("http://x/s");
  TermId p = dict.InternIri("http://x/p");
  TermId o = dict.InternIri("http://x/o");
  TermId foreign = dict.InternIri("http://y/other");
  g.InsertUnchecked(Triple{s, p, o});
  PeerNode node("peer", &g);

  VarPool vars;
  VarId x = vars.Intern("x");
  TriplePattern local{PatternTerm::Const(s), PatternTerm::Const(p),
                      PatternTerm::Var(x)};
  TriplePattern alien{PatternTerm::Const(foreign), PatternTerm::Const(p),
                      PatternTerm::Var(x)};
  EXPECT_TRUE(node.MayAnswer(local));
  EXPECT_FALSE(node.MayAnswer(alien));
  EXPECT_EQ(node.Answer(local).size(), 1u);
  EXPECT_EQ(node.queries_served(), 1u);
}

}  // namespace
}  // namespace rps
