#include "federation/federator.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/paper_example.h"
#include "peer/certain_answers.h"

namespace rps {
namespace {

TEST(TopologyTest, ChainShape) {
  Topology t = Topology::Chain(5);
  EXPECT_EQ(t.NodeCount(), 5u);
  EXPECT_EQ(t.EdgeCount(), 4u);
  EXPECT_EQ(t.HopDistance(0, 4), 4u);
  EXPECT_EQ(t.HopDistance(2, 2), 0u);
  EXPECT_EQ(t.Describe(), "chain(5)");
}

TEST(TopologyTest, StarShape) {
  Topology t = Topology::Star(6);
  EXPECT_EQ(t.EdgeCount(), 5u);
  EXPECT_EQ(t.HopDistance(0, 3), 1u);
  EXPECT_EQ(t.HopDistance(1, 5), 2u);  // via the hub
}

TEST(TopologyTest, RingShape) {
  Topology t = Topology::Ring(6);
  EXPECT_EQ(t.EdgeCount(), 6u);
  EXPECT_EQ(t.HopDistance(0, 3), 3u);
  EXPECT_EQ(t.HopDistance(0, 5), 1u);  // wrap-around
}

TEST(TopologyTest, RandomIsConnectedAndDeterministic) {
  Topology a = Topology::Random(10, 0.2, 42);
  Topology b = Topology::Random(10, 0.2, 42);
  EXPECT_EQ(a.EdgeCount(), b.EdgeCount());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NE(a.HopDistance(0, i), SIZE_MAX) << "node " << i;
  }
}

TEST(TopologyTest, DisconnectedDistanceIsInfinite) {
  Topology t(4);
  t.AddEdge(0, 1);
  EXPECT_EQ(t.HopDistance(0, 3), SIZE_MAX);
}

TEST(TopologyTest, DuplicateAndSelfEdgesIgnored) {
  Topology t(3);
  t.AddEdge(0, 1);
  t.AddEdge(1, 0);
  t.AddEdge(1, 1);
  EXPECT_EQ(t.EdgeCount(), 1u);
}

TEST(NetworkStatsTest, ExchangeAccounting) {
  NetworkCostModel model;
  NetworkStats stats;
  stats.AddExchange(/*payload_bytes=*/1000.0, /*hops=*/2, model);
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, static_cast<size_t>(1000.0 + model.bytes_per_request));
  EXPECT_GT(stats.latency_ms, 2 * 2 * model.latency_ms_per_hop - 1e-9);
}

TEST(FederatorTest, PaperExampleFederatedMatchesChase) {
  PaperExample ex = BuildPaperExample();
  Federator fed(ex.system.get(), Topology::Star(3));
  Result<FederatedQueryResult> fed_result = fed.Execute(ex.query);
  ASSERT_TRUE(fed_result.ok()) << fed_result.status();

  Result<CertainAnswerResult> chase = CertainAnswers(*ex.system, ex.query);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(fed_result->answers, chase->answers);
  EXPECT_GT(fed_result->subqueries, 0u);
  EXPECT_GT(fed_result->network.messages, 0u);
}

TEST(FederatorTest, CentralizedMatchesFederated) {
  PaperExample ex = BuildPaperExample();
  Federator fed(ex.system.get(), Topology::Chain(3));
  Result<FederatedQueryResult> distributed = fed.Execute(ex.query);
  Result<FederatedQueryResult> centralized = fed.ExecuteCentralized(ex.query);
  ASSERT_TRUE(distributed.ok());
  ASSERT_TRUE(centralized.ok());
  EXPECT_EQ(distributed->answers, centralized->answers);
}

TEST(FederatorTest, CentralizedShipsMoreBytesOnSelectiveQueries) {
  // A selective query should move far less data federated than shipping
  // all sources to the coordinator.
  LodConfig config;
  config.num_peers = 4;
  config.films_per_peer = 40;
  config.single_triple_dialect = true;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  // Selective: one specific film of peer 0.
  Dictionary& dict = *sys->dict();
  VarPool& vars = *sys->vars();
  TermId film = dict.InternIri("http://peer0.example.org/film0");
  TermId actor = dict.InternIri("http://peer0.example.org/actor");
  VarId x = vars.Intern("fx");
  GraphPatternQuery q;
  q.head = {x};
  q.body.Add(TriplePattern{PatternTerm::Const(film),
                           PatternTerm::Const(actor), PatternTerm::Var(x)});

  Federator fed(sys.get(), LodTopology(config));
  Result<FederatedQueryResult> distributed = fed.Execute(q);
  Result<FederatedQueryResult> centralized = fed.ExecuteCentralized(q);
  ASSERT_TRUE(distributed.ok()) << distributed.status();
  ASSERT_TRUE(centralized.ok());
  EXPECT_EQ(distributed->answers, centralized->answers);
  EXPECT_LT(distributed->network.bytes, centralized->network.bytes);
}

TEST(FederatorTest, LodSystemFederatedMatchesChase) {
  for (auto topo : {LodConfig::MappingTopology::kChain,
                    LodConfig::MappingTopology::kStar,
                    LodConfig::MappingTopology::kRing}) {
    LodConfig config;
    config.num_peers = 3;
    config.films_per_peer = 5;
    config.topology = topo;
    config.single_triple_dialect = true;
    std::unique_ptr<RpsSystem> sys = GenerateLod(config);
    GraphPatternQuery q = LodDemoQuery(sys.get(), config);

    Federator fed(sys.get(), LodTopology(config));
    Result<FederatedQueryResult> fed_result = fed.Execute(q);
    ASSERT_TRUE(fed_result.ok()) << fed_result.status();
    Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
    ASSERT_TRUE(chase.ok());
    EXPECT_EQ(fed_result->answers, chase->answers)
        << "topology " << static_cast<int>(topo);
  }
}

TEST(FederatorTest, BindJoinMatchesShipExtensions) {
  for (uint64_t seed : {61u, 62u, 63u}) {
    LodConfig config;
    config.num_peers = 4;
    config.films_per_peer = 12;
    config.seed = seed;
    config.single_triple_dialect = (seed % 2 == 0);
    std::unique_ptr<RpsSystem> sys = GenerateLod(config);
    GraphPatternQuery q = LodDemoQuery(sys.get(), config);

    Federator fed(sys.get(), LodTopology(config));
    FederationOptions ship;
    ship.join_strategy = JoinStrategy::kShipExtensions;
    FederationOptions bind;
    bind.join_strategy = JoinStrategy::kBindJoin;
    bind.bind_join_batch = 4;

    Result<FederatedQueryResult> a = fed.Execute(q, ship);
    Result<FederatedQueryResult> b = fed.Execute(q, bind);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->answers, b->answers) << "seed " << seed;
  }
}

TEST(FederatorTest, BindJoinShipsLessOnSelectiveQueries) {
  LodConfig config;
  config.num_peers = 4;
  config.films_per_peer = 60;
  config.single_triple_dialect = false;  // two-triple dialect: real joins
  config.seed = 64;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  // Selective: the cast of one specific film, peer-1 dialect (starring +
  // artist join).
  Dictionary* dict = sys->dict();
  VarPool* vars = sys->vars();
  GraphPatternQuery q;
  VarId x = vars->Intern("bj_x"), z = vars->Intern("bj_z");
  q.head = {x};
  q.body.Add(TriplePattern{
      PatternTerm::Const(dict->InternIri("http://peer1.example.org/film2")),
      PatternTerm::Const(
          dict->InternIri("http://peer1.example.org/starring")),
      PatternTerm::Var(z)});
  q.body.Add(TriplePattern{
      PatternTerm::Var(z),
      PatternTerm::Const(dict->InternIri("http://peer1.example.org/artist")),
      PatternTerm::Var(x)});

  Federator fed(sys.get(), LodTopology(config));
  FederationOptions ship;
  FederationOptions bind;
  bind.join_strategy = JoinStrategy::kBindJoin;
  Result<FederatedQueryResult> a = fed.Execute(q, ship);
  Result<FederatedQueryResult> b = fed.Execute(q, bind);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_LT(b->network.bytes, a->network.bytes);
}

TEST(FederatorTest, CoordinatorPlacementAffectsLatencyNotAnswers) {
  LodConfig config;
  config.num_peers = 6;
  config.films_per_peer = 10;
  config.topology = LodConfig::MappingTopology::kChain;
  config.seed = 65;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Federator fed(sys.get(), LodTopology(config));

  FederationOptions end_node;
  end_node.coordinator = 0;  // chain endpoint: longest average distance
  FederationOptions middle;
  middle.coordinator = 3;    // near the middle: shorter paths

  Result<FederatedQueryResult> from_end = fed.Execute(q, end_node);
  Result<FederatedQueryResult> from_middle = fed.Execute(q, middle);
  ASSERT_TRUE(from_end.ok());
  ASSERT_TRUE(from_middle.ok());
  EXPECT_EQ(from_end->answers, from_middle->answers);
  EXPECT_EQ(from_end->network.bytes, from_middle->network.bytes);
  EXPECT_GT(from_end->network.latency_ms, from_middle->network.latency_ms);
}

TEST(FederatorTest, CustomCostModelScalesAccounting) {
  PaperExample ex = BuildPaperExample();
  Federator fed(ex.system.get(), Topology::Chain(3));
  FederationOptions cheap;
  FederationOptions pricey;
  pricey.cost.latency_ms_per_hop = 50.0;  // 10× the default
  Result<FederatedQueryResult> a = fed.Execute(ex.query, cheap);
  Result<FederatedQueryResult> b = fed.Execute(ex.query, pricey);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answers, b->answers);
  EXPECT_GT(b->network.latency_ms, a->network.latency_ms);
}

TEST(FederatorTest, TopologyTooSmallRejected) {
  PaperExample ex = BuildPaperExample();  // 3 peers
  Federator fed(ex.system.get(), Topology::Chain(2));
  EXPECT_FALSE(fed.Execute(ex.query).ok());
}

TEST(PeerNodeTest, MayAnswerFiltersBySchema) {
  Dictionary dict;
  Graph g(&dict);
  TermId s = dict.InternIri("http://x/s");
  TermId p = dict.InternIri("http://x/p");
  TermId o = dict.InternIri("http://x/o");
  TermId foreign = dict.InternIri("http://y/other");
  g.InsertUnchecked(Triple{s, p, o});
  PeerNode node("peer", &g);

  VarPool vars;
  VarId x = vars.Intern("x");
  TriplePattern local{PatternTerm::Const(s), PatternTerm::Const(p),
                      PatternTerm::Var(x)};
  TriplePattern alien{PatternTerm::Const(foreign), PatternTerm::Const(p),
                      PatternTerm::Var(x)};
  EXPECT_TRUE(node.MayAnswer(local));
  EXPECT_FALSE(node.MayAnswer(alien));
  EXPECT_EQ(node.Answer(local).size(), 1u);
  EXPECT_EQ(node.queries_served(), 1u);
}

}  // namespace
}  // namespace rps
