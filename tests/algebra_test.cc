#include "query/algebra.h"

#include <gtest/gtest.h>

#include "gen/paper_example.h"
#include "parser/ntriples.h"
#include "parser/sparql.h"
#include "peer/certain_answers.h"

namespace rps {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  AlgebraTest() : graph_(&dict_) {
    const char* doc =
        "<http://x/alice> <http://x/age> \"39\" .\n"
        "<http://x/bob> <http://x/age> \"7\" .\n"
        "<http://x/carol> <http://x/age> \"59\" .\n"
        "<http://x/alice> <http://x/email> \"alice@example.org\" .\n"
        "<http://x/alice> <http://x/knows> <http://x/bob> .\n";
    Result<size_t> n = ParseNTriples(doc, &graph_);
    EXPECT_TRUE(n.ok()) << n.status();
    age_ = *dict_.Lookup(Term::Iri("http://x/age"));
    email_ = *dict_.Lookup(Term::Iri("http://x/email"));
    x_ = vars_.Intern("x");
    y_ = vars_.Intern("y");
    e_ = vars_.Intern("e");
  }

  ExtendedQuery PeopleWithOptionalEmail() {
    ExtendedQuery q;
    q.head = {x_, e_};
    q.required.Add(TriplePattern{PatternTerm::Var(x_),
                                 PatternTerm::Const(age_),
                                 PatternTerm::Var(y_)});
    GraphPattern optional;
    optional.Add(TriplePattern{PatternTerm::Var(x_),
                               PatternTerm::Const(email_),
                               PatternTerm::Var(e_)});
    q.optionals.push_back(optional);
    return q;
  }

  Dictionary dict_;
  VarPool vars_;
  Graph graph_;
  TermId age_, email_;
  VarId x_, y_, e_;
};

TEST_F(AlgebraTest, OptionalKeepsUnmatchedRows) {
  std::vector<PartialTuple> rows = EvalExtendedQuery(
      graph_, PeopleWithOptionalEmail(), QuerySemantics::kDropBlanks);
  ASSERT_EQ(rows.size(), 3u);  // alice (with email), bob, carol (without)
  size_t with_email = 0, without_email = 0;
  for (const PartialTuple& row : rows) {
    ASSERT_TRUE(row[0].has_value());
    if (row[1].has_value()) {
      ++with_email;
    } else {
      ++without_email;
    }
  }
  EXPECT_EQ(with_email, 1u);
  EXPECT_EQ(without_email, 2u);
}

TEST_F(AlgebraTest, FilterNumericComparison) {
  ExtendedQuery q;
  q.head = {x_};
  q.required.Add(TriplePattern{PatternTerm::Var(x_),
                               PatternTerm::Const(age_),
                               PatternTerm::Var(y_)});
  FilterCondition filter;
  filter.op = FilterCondition::Op::kGt;
  filter.lhs = y_;
  filter.rhs = PatternTerm::Const(dict_.InternLiteral("10"));
  q.filters.push_back(filter);
  std::vector<PartialTuple> rows =
      EvalExtendedQuery(graph_, q, QuerySemantics::kDropBlanks);
  // "39" and "59" are > 10 numerically; "7" is not (string order would
  // put "7" above both — numeric comparison is what distinguishes this).
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(AlgebraTest, FilterNotEqualAndVarVar) {
  VarId x2 = vars_.Intern("x2");
  ExtendedQuery q;
  q.head = {x_, x2};
  q.required.Add(TriplePattern{PatternTerm::Var(x_), PatternTerm::Const(age_),
                               PatternTerm::Var(y_)});
  VarId y2 = vars_.Intern("y2");
  q.required.Add(TriplePattern{PatternTerm::Var(x2),
                               PatternTerm::Const(age_),
                               PatternTerm::Var(y2)});
  FilterCondition ne;
  ne.op = FilterCondition::Op::kNe;
  ne.lhs = x_;
  ne.rhs = PatternTerm::Var(x2);
  q.filters.push_back(ne);
  std::vector<PartialTuple> rows =
      EvalExtendedQuery(graph_, q, QuerySemantics::kDropBlanks);
  EXPECT_EQ(rows.size(), 6u);  // 3×3 minus the 3 diagonal pairs
}

TEST_F(AlgebraTest, NotBoundFindsRowsWithoutOptionalMatch) {
  ExtendedQuery q = PeopleWithOptionalEmail();
  FilterCondition not_bound;
  not_bound.op = FilterCondition::Op::kNotBound;
  not_bound.lhs = e_;
  q.filters.push_back(not_bound);
  std::vector<PartialTuple> rows =
      EvalExtendedQuery(graph_, q, QuerySemantics::kDropBlanks);
  EXPECT_EQ(rows.size(), 2u);  // bob and carol have no email
}

TEST_F(AlgebraTest, UnaryTypeTests) {
  VarId o = vars_.Intern("o");
  ExtendedQuery q;
  q.head = {o};
  q.required.Add(TriplePattern{PatternTerm::Var(x_), PatternTerm::Var(y_),
                               PatternTerm::Var(o)});
  FilterCondition is_iri;
  is_iri.op = FilterCondition::Op::kIsIri;
  is_iri.lhs = o;
  q.filters.push_back(is_iri);
  std::vector<PartialTuple> rows =
      EvalExtendedQuery(graph_, q, QuerySemantics::kDropBlanks);
  ASSERT_EQ(rows.size(), 1u);  // only <http://x/bob> is an IRI object
  EXPECT_TRUE(dict_.IsIri(**rows[0].begin()));
}

TEST_F(AlgebraTest, LeftJoinAlgebra) {
  Binding a1;
  a1.Bind(0, 100);
  Binding a2;
  a2.Bind(0, 200);
  Binding b1;
  b1.Bind(0, 100);
  b1.Bind(1, 300);
  BindingSet joined = LeftJoin({a1, a2}, {b1});
  ASSERT_EQ(joined.size(), 2u);
  // a1 extended with b1; a2 kept bare.
  bool saw_extended = false, saw_bare = false;
  for (const Binding& b : joined) {
    if (b.Has(1)) saw_extended = true;
    if (!b.Has(1)) saw_bare = true;
  }
  EXPECT_TRUE(saw_extended);
  EXPECT_TRUE(saw_bare);
}

TEST_F(AlgebraTest, FormatPartialTupleShowsUnboundAsDash) {
  PartialTuple row = {TermId{age_}, std::nullopt};
  std::string rendered = FormatPartialTuple(row, dict_);
  EXPECT_NE(rendered.find("<http://x/age>"), std::string::npos);
  EXPECT_NE(rendered.find("-"), std::string::npos);
}

// --- extended parser ---

class ExtendedParserTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  VarPool vars_;
};

TEST_F(ExtendedParserTest, ParsesOptionalAndFilter) {
  const char* text = R"(
    PREFIX x: <http://x/>
    SELECT ?p ?e
    WHERE {
      ?p x:age ?a .
      OPTIONAL { ?p x:email ?e }
      FILTER(?a > 10)
    }
  )";
  Result<ParsedExtendedQuery> parsed =
      ParseSparqlExtended(text, &dict_, &vars_);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->query.head.size(), 2u);
  EXPECT_EQ(parsed->query.required.size(), 1u);
  EXPECT_EQ(parsed->query.optionals.size(), 1u);
  ASSERT_EQ(parsed->query.filters.size(), 1u);
  EXPECT_EQ(parsed->query.filters[0].op, FilterCondition::Op::kGt);
}

TEST_F(ExtendedParserTest, ParsesUnaryFilters) {
  const char* text =
      "SELECT ?x WHERE { ?x <http://p> ?y . FILTER(isIRI(?y)) "
      "FILTER(BOUND(?x)) FILTER(!BOUND(?y)) FILTER(isLiteral(?y)) "
      "FILTER(isBlank(?y)) }";
  Result<ParsedExtendedQuery> parsed =
      ParseSparqlExtended(text, &dict_, &vars_);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->query.filters.size(), 5u);
  EXPECT_EQ(parsed->query.filters[0].op, FilterCondition::Op::kIsIri);
  EXPECT_EQ(parsed->query.filters[1].op, FilterCondition::Op::kBound);
  EXPECT_EQ(parsed->query.filters[2].op, FilterCondition::Op::kNotBound);
  EXPECT_EQ(parsed->query.filters[3].op, FilterCondition::Op::kIsLiteral);
  EXPECT_EQ(parsed->query.filters[4].op, FilterCondition::Op::kIsBlank);
}

TEST_F(ExtendedParserTest, SelectStarUsesRequiredVariables) {
  const char* text =
      "SELECT * WHERE { ?a <http://p> ?b . OPTIONAL { ?a <http://q> ?c } }";
  Result<ParsedExtendedQuery> parsed =
      ParseSparqlExtended(text, &dict_, &vars_);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->query.head.size(), 2u);  // ?a ?b, not ?c
}

TEST_F(ExtendedParserTest, ProjectingOptionalVariableIsAllowed) {
  const char* text =
      "SELECT ?c WHERE { ?a <http://p> ?b . OPTIONAL { ?a <http://q> ?c } }";
  EXPECT_TRUE(ParseSparqlExtended(text, &dict_, &vars_).ok());
}

TEST_F(ExtendedParserTest, Errors) {
  for (const char* text : {
           "SELECT ?x WHERE { OPTIONAL { ?x <http://p> ?y } }",  // no req.
           "SELECT ?z WHERE { ?x <http://p> ?y }",          // unknown var
           "SELECT ?x WHERE { ?x <http://p> ?y FILTER(?y ~ 3) }",  // bad op
           "SELECT ?x WHERE { ?x <http://p> ?y FILTER(!isIRI(?y)) }",
           "SELECT ?x WHERE {{ ?x <http://p> ?y } UNION "
           "{ ?x <http://q> ?y }}",  // union in extended mode
       }) {
    EXPECT_FALSE(ParseSparqlExtended(text, &dict_, &vars_).ok()) << text;
  }
}

TEST(ExtendedAnswersTest, OptionalAgesOverPaperExample) {
  // "Names of everyone starring in DB1:Spiderman, with their age if
  // known" — over the universal solution every artist has an age; drop
  // one age triple and the row survives with an unbound age.
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  VarPool& vars = *ex.system->vars();

  ExtendedQuery q;
  VarId x = vars.Intern("ext_x"), y = vars.Intern("ext_y"),
        z = vars.Intern("ext_z");
  q.head = {x, y};
  q.required.Add(TriplePattern{PatternTerm::Const(ex.db1_spiderman),
                               PatternTerm::Const(ex.prop_starring),
                               PatternTerm::Var(z)});
  q.required.Add(TriplePattern{PatternTerm::Var(z),
                               PatternTerm::Const(ex.prop_artist),
                               PatternTerm::Var(x)});
  GraphPattern optional;
  optional.Add(TriplePattern{PatternTerm::Var(x),
                             PatternTerm::Const(ex.prop_age),
                             PatternTerm::Var(y)});
  q.optionals.push_back(optional);

  Result<ExtendedAnswerResult> result =
      ExtendedCertainAnswers(*ex.system, q);
  ASSERT_TRUE(result.ok()) << result.status();
  // 6 artists (2 naming variants × 3 people), all with bound ages.
  EXPECT_EQ(result->answers.size(), 6u);
  for (const PartialTuple& row : result->answers) {
    EXPECT_TRUE(row[1].has_value());
  }

  // Remove Kirsten's age from source3: her rows lose the age but stay.
  RpsSystem fresh;  // rebuild without the age triple
  (void)fresh;
  Graph& s3 = *ex.system->dataset().Find("source3");
  Graph replacement(&dict);
  TermId kirsten = *dict.Lookup(
      Term::Iri(std::string(kFoafNs) + "Kirsten_Dunst"));
  for (const Triple& t : s3.triples()) {
    if (t.s == kirsten && t.p == ex.prop_age) continue;
    replacement.InsertUnchecked(t);
  }
  s3 = replacement;

  Result<ExtendedAnswerResult> after = ExtendedCertainAnswers(*ex.system, q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->answers.size(), 6u);
  size_t unbound = 0;
  for (const PartialTuple& row : after->answers) {
    if (!row[1].has_value()) ++unbound;
  }
  EXPECT_EQ(unbound, 2u);  // both naming variants of Kirsten
}

}  // namespace
}  // namespace rps
