#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace rps {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool::Global().ParallelFor(kN, 4, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  // max_threads <= 1 must not involve workers at all: the body runs on
  // the calling thread, in index order.
  std::vector<size_t> order;
  ThreadPool::Global().ParallelFor(10, 1,
                                   [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, NestedCallsRunInline) {
  // A ParallelFor issued from inside a task must not block on the shared
  // worker pool (deadlock risk); it degrades to the inline loop.
  std::atomic<size_t> total{0};
  EXPECT_FALSE(ThreadPool::InsideTask());
  ThreadPool::Global().ParallelFor(8, 4, [&](size_t) {
    EXPECT_TRUE(ThreadPool::InsideTask());
    ThreadPool::Global().ParallelFor(
        8, 4, [&](size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_FALSE(ThreadPool::InsideTask());
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolTest, EmptyAndSingleItemBatches) {
  std::atomic<size_t> count{0};
  ThreadPool::Global().ParallelFor(0, 4, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  ThreadPool::Global().ParallelFor(1, 4, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1u);
}

TEST(ThreadPoolTest, ConcurrentWritesToDisjointSlots) {
  // The chase and eval engines hand each task its own output slot; the
  // pool must make those writes race-free without extra locking.
  constexpr size_t kN = 256;
  std::vector<std::vector<int>> slots(kN);
  ThreadPool::Global().ParallelFor(kN, 4, [&](size_t i) {
    for (int j = 0; j < 100; ++j) slots[i].push_back(static_cast<int>(i));
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(slots[i].size(), 100u);
    EXPECT_EQ(slots[i].front(), static_cast<int>(i));
  }
}

}  // namespace
}  // namespace rps
