#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace rps {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kParseError, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailsThrough() {
  RPS_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThrough();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  RPS_ASSIGN_OR_RETURN(int half, HalfOf(x));
  RPS_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> err = QuarterOf(6);  // 6/2 = 3, odd
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rps
