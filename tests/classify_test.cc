#include "tgd/classify.h"

#include <gtest/gtest.h>

#include "peer/rps_system.h"
#include "rewrite/rewriter.h"

namespace rps {
namespace {

class ClassifyTest : public ::testing::Test {
 protected:
  ClassifyTest() {
    tt_ = preds_.Intern("tt", 3);
    x_ = vars_.Intern("x");
    y_ = vars_.Intern("y");
    z_ = vars_.Intern("z");
    a_ = dict_.InternIri("http://x/A");
    b_ = dict_.InternIri("http://x/B");
    c_ = dict_.InternIri("http://x/C");
    c1_ = dict_.InternIri("http://x/c1");
    c2_ = dict_.InternIri("http://x/c2");
  }

  Atom TT(AtomArg s, AtomArg p, AtomArg o) { return Atom{tt_, {s, p, o}}; }

  // The six equivalence-mapping TGDs for c1 ≡ c2 (§3).
  std::vector<Tgd> EquivalenceTgds() {
    std::vector<Tgd> out;
    AtomArg c1 = AtomArg::Const(c1_), c2 = AtomArg::Const(c2_);
    AtomArg vy = AtomArg::Var(y_), vz = AtomArg::Var(z_);
    auto add = [&](Atom body, Atom head) {
      Tgd tgd;
      tgd.body = {body};
      tgd.head = {head};
      out.push_back(tgd);
    };
    add(TT(c1, vy, vz), TT(c2, vy, vz));
    add(TT(c2, vy, vz), TT(c1, vy, vz));
    add(TT(vy, c1, vz), TT(vy, c2, vz));
    add(TT(vy, c2, vz), TT(vy, c1, vz));
    add(TT(vy, vz, c1), TT(vy, vz, c2));
    add(TT(vy, vz, c2), TT(vy, vz, c1));
    return out;
  }

  // The paper's §4 example of a non-sticky graph mapping assertion:
  //   tt(x, A, z) ∧ tt(z, B, y) → tt(x, C, y)
  std::vector<Tgd> JoinMappingTgds() {
    Tgd tgd;
    tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_)),
                TT(AtomArg::Var(z_), AtomArg::Const(b_), AtomArg::Var(y_))};
    tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(c_), AtomArg::Var(y_))};
    return {tgd};
  }

  // The Proposition 3 transitive-closure mapping:
  //   tt(x, A, z) ∧ tt(z, A, y) → tt(x, A, y)
  std::vector<Tgd> TransitiveTgds() {
    Tgd tgd;
    tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_)),
                TT(AtomArg::Var(z_), AtomArg::Const(a_), AtomArg::Var(y_))};
    tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
    return {tgd};
  }

  PredTable preds_;
  Dictionary dict_;
  VarPool vars_;
  PredId tt_;
  VarId x_, y_, z_;
  TermId a_, b_, c_, c1_, c2_;
};

TEST_F(ClassifyTest, EquivalenceTgdsAreLinearAndSticky) {
  // §4: "the set E of TGDs for equivalence mappings enjoys the sticky
  // property of the chase, as well as linearity."
  std::vector<Tgd> tgds = EquivalenceTgds();
  EXPECT_TRUE(IsLinear(tgds));
  EXPECT_TRUE(IsSticky(tgds, preds_));
  EXPECT_TRUE(IsGuarded(tgds));  // single-atom bodies are trivially guarded
  EXPECT_TRUE(IsWeaklyAcyclic(tgds, preds_));  // no existentials at all
  TgdClassReport report = ClassifyTgds(tgds, preds_);
  EXPECT_TRUE(report.sticky_join_sufficient);
}

TEST_F(ClassifyTest, JoinMappingViolatesStickiness) {
  // §4: applying the variable marking to the example marks z (it does not
  // appear in the head), and z occurs twice in the body.
  std::vector<Tgd> tgds = JoinMappingTgds();
  EXPECT_FALSE(IsLinear(tgds));
  TgdClassReport report;
  EXPECT_FALSE(IsSticky(tgds, preds_, &report));
  EXPECT_EQ(report.sticky_violation_tgd, 0);
  EXPECT_EQ(report.sticky_violation_var, z_);
}

TEST_F(ClassifyTest, MarkingIdentifiesDroppedVariables) {
  std::vector<Tgd> tgds = JoinMappingTgds();
  auto marking = StickyMarking(tgds, preds_);
  // z is dropped from the head, so (0, z) must be marked by the initial
  // step.
  EXPECT_TRUE(marking.count({0, z_}) > 0);
  // Propagation then marks x and y too: z occurs in the body at positions
  // tt[0] and tt[2], and the head places x at tt[0] and y at tt[2]
  // (Definition 4 applies the step with σ' = σ).
  EXPECT_TRUE(marking.count({0, x_}) > 0);
  EXPECT_TRUE(marking.count({0, y_}) > 0);
}

TEST_F(ClassifyTest, MarkingPropagatesAcrossTgds) {
  // σ1: tt(x, A, z) ∧ tt(z, A, y) → tt(x, C, y)   (marks z, and positions
  //     tt[0], tt[2] become marked positions via z's body occurrences)
  // σ2: tt(x, B, y) → tt(x, C, y)                 (x at head position tt[0]
  //     → marked; y at tt[2] → marked)
  std::vector<Tgd> tgds = TransitiveTgds();
  Tgd sigma2;
  sigma2.body = {TT(AtomArg::Var(x_), AtomArg::Const(b_), AtomArg::Var(y_))};
  sigma2.head = {TT(AtomArg::Var(x_), AtomArg::Const(c_), AtomArg::Var(y_))};
  tgds.push_back(sigma2);
  auto marking = StickyMarking(tgds, preds_);
  EXPECT_TRUE(marking.count({1, x_}) > 0);
  EXPECT_TRUE(marking.count({1, y_}) > 0);
}

TEST_F(ClassifyTest, TransitiveClosureIsInNoGoodClass) {
  // §4: "the set Σ of TGDs in an RPS is neither sticky, nor linear, nor
  // weakly-acyclic, nor guarded" — in general. The transitive-closure
  // mapping is not sticky and not linear. (This instance happens to have
  // no existentials, so weak acyclicity holds trivially; the general
  // statement concerns mapping sets with existential heads, see below.)
  std::vector<Tgd> tgds = TransitiveTgds();
  EXPECT_FALSE(IsSticky(tgds, preds_));
  EXPECT_FALSE(IsLinear(tgds));
  EXPECT_FALSE(IsGuarded(tgds));
}

TEST_F(ClassifyTest, ExistentialCycleBreaksWeakAcyclicity) {
  // tt(x, A, y) → ∃z tt(y, A, z): position tt[2] feeds an existential at
  // tt[2] through a cycle.
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(y_), AtomArg::Const(a_), AtomArg::Var(z_))};
  std::vector<Tgd> tgds = {tgd};
  EXPECT_FALSE(IsWeaklyAcyclic(tgds, preds_));
  // It is, however, linear (single body atom) and sticky-join-sufficient.
  EXPECT_TRUE(IsLinear(tgds));
}

TEST_F(ClassifyTest, AcyclicExistentialIsWeaklyAcyclic) {
  // p(x) → ∃z q(x, z) with no back-edges.
  PredId p = preds_.Intern("p", 1);
  PredId q = preds_.Intern("q", 2);
  Tgd tgd;
  tgd.body = {Atom{p, {AtomArg::Var(x_)}}};
  tgd.head = {Atom{q, {AtomArg::Var(x_), AtomArg::Var(z_)}}};
  std::vector<Tgd> tgds = {tgd};
  EXPECT_TRUE(IsWeaklyAcyclic(tgds, preds_));
}

TEST_F(ClassifyTest, GuardedDetection) {
  // r(x, y, z) ∧ s(x) → t(x): r guards all body variables.
  PredId r = preds_.Intern("r", 3);
  PredId s = preds_.Intern("s", 1);
  PredId t = preds_.Intern("t", 1);
  Tgd tgd;
  tgd.body = {
      Atom{r, {AtomArg::Var(x_), AtomArg::Var(y_), AtomArg::Var(z_)}},
      Atom{s, {AtomArg::Var(x_)}}};
  tgd.head = {Atom{t, {AtomArg::Var(x_)}}};
  EXPECT_TRUE(IsGuarded({tgd}));
}

TEST_F(ClassifyTest, PaperExampleSystemClassification) {
  // The Example 2 RPS compiled to TGDs. With the rt guard atoms in the
  // body, the GMA TGD is neither linear nor sticky: the head variables
  // each miss one of the two head atoms, so they are marked, and each
  // occurs twice in the body (once in the tt atom, once in its rt guard).
  // After dropping the guards (sound per §4), the TGD is linear — the
  // situation Proposition 2 exploits in Example 3.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  TermId actor = dict.InternIri("http://x/actor");
  TermId starring = dict.InternIri("http://x/starring");
  TermId artist = dict.InternIri("http://x/artist");
  sys.AddPeer("p");
  VarId x = vars.Intern("mx"), y = vars.Intern("my"), z = vars.Intern("mz");
  GraphMappingAssertion gma;
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(actor),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                PatternTerm::Const(starring),
                                PatternTerm::Var(z)});
  gma.to.body.Add(TriplePattern{PatternTerm::Var(z),
                                PatternTerm::Const(artist),
                                PatternTerm::Var(y)});
  ASSERT_TRUE(sys.AddGraphMapping(gma).ok());

  PredTable preds;
  std::vector<Tgd> target;
  sys.CompileToTgds(&preds, nullptr, &target);
  ASSERT_EQ(target.size(), 1u);
  TgdClassReport report = ClassifyTgds(target, preds);
  // The body is {tt(x,actor,y), rt(x), rt(y)} — not linear, and the
  // guarded head variables repeat in the body, so not sticky either.
  EXPECT_FALSE(report.linear);
  EXPECT_FALSE(report.sticky);
}

TEST_F(ClassifyTest, StrippingGuardsMakesTheExampleLinear) {
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  TermId actor = dict.InternIri("http://x/actor");
  TermId starring = dict.InternIri("http://x/starring");
  TermId artist = dict.InternIri("http://x/artist");
  sys.AddPeer("p");
  VarId x = vars.Intern("mx"), y = vars.Intern("my"), z = vars.Intern("mz");
  GraphMappingAssertion gma;
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(actor),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                PatternTerm::Const(starring),
                                PatternTerm::Var(z)});
  gma.to.body.Add(TriplePattern{PatternTerm::Var(z),
                                PatternTerm::Const(artist),
                                PatternTerm::Var(y)});
  ASSERT_TRUE(sys.AddGraphMapping(gma).ok());

  PredTable preds;
  PredId rt = preds.Intern("rt", 1);
  std::vector<Tgd> target;
  sys.CompileToTgds(&preds, nullptr, &target);
  std::vector<Tgd> stripped = StripGuardAtoms(target, rt);
  TgdClassReport report = ClassifyTgds(stripped, preds);
  EXPECT_TRUE(report.linear);
  EXPECT_TRUE(report.sticky_join_sufficient);
}

}  // namespace
}  // namespace rps
