#include "parser/turtle.h"

#include <gtest/gtest.h>

#include "parser/ntriples.h"

namespace rps {
namespace {

TEST(TurtleTest, PrefixedNamesAndA) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://example.org/> .\n"
      "ex:alice a ex:Person .\n";
  Result<size_t> n = ParseTurtle(doc, &graph);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1u);
  EXPECT_TRUE(dict.Lookup(Term::Iri("http://example.org/alice")).has_value());
  EXPECT_TRUE(dict.Lookup(Term::Iri(std::string(kRdfType))).has_value());
}

TEST(TurtleTest, SparqlStylePrefix) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "PREFIX ex: <http://example.org/>\n"
      "ex:a ex:p ex:b .\n";
  ASSERT_TRUE(ParseTurtle(doc, &graph).ok());
  EXPECT_EQ(graph.size(), 1u);
}

TEST(TurtleTest, PredicateObjectLists) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://example.org/> .\n"
      "ex:film ex:starring ex:a , ex:b ;\n"
      "        ex:year 2002 ;\n"
      "        ex:title \"Spiderman\" .\n";
  Result<size_t> n = ParseTurtle(doc, &graph);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 4u);
}

TEST(TurtleTest, NumbersAndBooleans) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:int 42 ; ex:neg -7 ; ex:dec 3.14 ; ex:t true ; ex:f false .\n";
  ASSERT_TRUE(ParseTurtle(doc, &graph).ok());
  EXPECT_TRUE(dict.Lookup(Term::TypedLiteral("42", std::string(kXsdInteger)))
                  .has_value());
  EXPECT_TRUE(dict.Lookup(Term::TypedLiteral("-7", std::string(kXsdInteger)))
                  .has_value());
  EXPECT_TRUE(
      dict.Lookup(Term::TypedLiteral(
                      "3.14", "http://www.w3.org/2001/XMLSchema#decimal"))
          .has_value());
  EXPECT_TRUE(
      dict.Lookup(Term::TypedLiteral(
                      "true", "http://www.w3.org/2001/XMLSchema#boolean"))
          .has_value());
}

TEST(TurtleTest, BaseResolution) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@base <http://example.org/data/> .\n"
      "<item1> <prop> <item2> .\n";
  ASSERT_TRUE(ParseTurtle(doc, &graph).ok());
  EXPECT_TRUE(dict.Lookup(Term::Iri("http://example.org/data/item1"))
                  .has_value());
}

TEST(TurtleTest, BlankNodesAndAnon) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://x/> .\n"
      "_:b1 ex:p ex:o .\n"
      "[] ex:p ex:o2 .\n";
  Result<size_t> n = ParseTurtle(doc, &graph);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
}

TEST(TurtleTest, BlankNodePropertyLists) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://x/> .\n"
      "ex:film ex:crew [ ex:role \"director\" ; ex:person ex:raimi ] .\n"
      "[ ex:a ex:b ] ex:p ex:o .\n"
      "[ ex:standalone true ] .\n";
  Result<size_t> n = ParseTurtle(doc, &graph);
  ASSERT_TRUE(n.ok()) << n.status();
  // 1 (crew) + 2 (inside first []) + 1 (inside second []) + 1 (its own
  // statement) + 1 (standalone) = 6.
  EXPECT_EQ(*n, 6u);
  // The crew object is a blank with the two inner properties.
  TermId crew = *dict.Lookup(Term::Iri("http://x/crew"));
  auto crew_triples = graph.MatchAll(std::nullopt, crew, std::nullopt);
  ASSERT_EQ(crew_triples.size(), 1u);
  TermId b = crew_triples[0].o;
  EXPECT_TRUE(dict.IsBlank(b));
  EXPECT_EQ(graph.MatchAll(b, std::nullopt, std::nullopt).size(), 2u);
}

TEST(TurtleTest, NestedPropertyLists) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:p [ ex:q [ ex:r ex:deep ] ] .\n";
  Result<size_t> n = ParseTurtle(doc, &graph);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 3u);
}

TEST(TurtleTest, Collections) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://x/> .\n"
      "ex:film ex:cast ( ex:a ex:b ex:c ) .\n"
      "ex:film ex:empty ( ) .\n";
  Result<size_t> n = ParseTurtle(doc, &graph);
  ASSERT_TRUE(n.ok()) << n.status();
  // cast triple + 3 × (first, rest) + empty triple = 8.
  EXPECT_EQ(*n, 8u);
  const std::string rdf = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
  TermId nil = *dict.Lookup(Term::Iri(rdf + "nil"));
  TermId first = *dict.Lookup(Term::Iri(rdf + "first"));
  TermId rest = *dict.Lookup(Term::Iri(rdf + "rest"));
  // Walk the list.
  TermId empty_prop = *dict.Lookup(Term::Iri("http://x/empty"));
  EXPECT_EQ(graph.MatchAll(std::nullopt, empty_prop, nil).size(), 1u);
  TermId cast = *dict.Lookup(Term::Iri("http://x/cast"));
  TermId node = graph.MatchAll(std::nullopt, cast, std::nullopt)[0].o;
  std::vector<std::string> elements;
  while (node != nil) {
    auto firsts = graph.MatchAll(node, first, std::nullopt);
    ASSERT_EQ(firsts.size(), 1u);
    elements.push_back(dict.term(firsts[0].o).lexical());
    auto rests = graph.MatchAll(node, rest, std::nullopt);
    ASSERT_EQ(rests.size(), 1u);
    node = rests[0].o;
  }
  EXPECT_EQ(elements,
            (std::vector<std::string>{"http://x/a", "http://x/b",
                                      "http://x/c"}));
}

TEST(TurtleTest, UnterminatedBracketsFail) {
  Dictionary dict;
  for (const char* doc : {
           "@prefix ex: <http://x/> .\nex:s ex:p [ ex:q ex:o .\n",
           "@prefix ex: <http://x/> .\nex:s ex:p ( ex:a ex:b .\n",
       }) {
    Graph graph(&dict);
    EXPECT_FALSE(ParseTurtle(doc, &graph).ok()) << doc;
  }
}

TEST(TurtleTest, LangAndDatatypeLiterals) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://x/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:s ex:p \"hi\"@en-GB , \"42\"^^xsd:integer , \"x\"^^<http://dt> .\n";
  ASSERT_TRUE(ParseTurtle(doc, &graph).ok());
  EXPECT_TRUE(dict.Lookup(Term::LangLiteral("hi", "en-GB")).has_value());
  EXPECT_TRUE(dict.Lookup(Term::TypedLiteral("42", std::string(kXsdInteger)))
                  .has_value());
  EXPECT_TRUE(dict.Lookup(Term::TypedLiteral("x", "http://dt")).has_value());
}

TEST(TurtleTest, UndefinedPrefixFails) {
  Dictionary dict;
  Graph graph(&dict);
  Result<size_t> n = ParseTurtle("nope:s nope:p nope:o .\n", &graph);
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("undefined prefix"), std::string::npos);
}

TEST(TurtleTest, MissingDotFails) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://x/> .\n"
      "ex:s ex:p ex:o\n";
  EXPECT_FALSE(ParseTurtle(doc, &graph).ok());
}

TEST(TurtleTest, WriterRoundTripsThroughParser) {
  Dictionary dict;
  Graph graph(&dict);
  const char* doc =
      "@prefix ex: <http://example.org/> .\n"
      "ex:film ex:starring ex:a , ex:b ; ex:title \"Sp\\\"ider\" .\n"
      "_:b0 ex:p 42 .\n";
  ASSERT_TRUE(ParseTurtle(doc, &graph).ok());

  std::map<std::string, std::string> prefixes = {
      {"ex", "http://example.org/"}};
  std::string text = WriteTurtle(graph, prefixes);

  Dictionary dict2;
  Graph graph2(&dict2);
  Result<size_t> n = ParseTurtle(text, &graph2);
  ASSERT_TRUE(n.ok()) << n.status() << "\n" << text;
  EXPECT_EQ(graph2.size(), graph.size());
  // Semantic equality via the canonical N-Triples rendering.
  EXPECT_EQ(WriteNTriples(graph2), WriteNTriples(graph));
}

TEST(TurtleTest, CompactsWithLongestPrefix) {
  Dictionary dict;
  Graph graph(&dict);
  ASSERT_TRUE(graph
                  .Insert(Term::Iri("http://x/sub/a"), Term::Iri("http://x/p"),
                          Term::Iri("http://x/sub/b"))
                  .ok());
  std::map<std::string, std::string> prefixes = {
      {"x", "http://x/"}, {"sub", "http://x/sub/"}};
  std::string text = WriteTurtle(graph, prefixes);
  EXPECT_NE(text.find("sub:a"), std::string::npos) << text;
  EXPECT_NE(text.find("x:p"), std::string::npos) << text;
}

}  // namespace
}  // namespace rps
