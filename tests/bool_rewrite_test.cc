#include "rewrite/bool_rewrite.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/paper_example.h"
#include "peer/certain_answers.h"
#include "tgd/classify.h"

namespace rps {
namespace {

TEST(BoolRewriteTest, Listing2TobyMaguireCheck) {
  // Example 3 / Listing 2: the Boolean query for (DB1:Toby_Maguire, "39")
  // is false on the raw sources but true after rewriting (the age triple
  // lives under the foaf name).
  PaperExample ex = BuildPaperExample();
  Result<BooleanRewriteCheck> check = CheckTupleByRewriting(
      *ex.system, ex.query, {ex.db1_toby, ex.age_39});
  ASSERT_TRUE(check.ok()) << check.status();
  EXPECT_FALSE(check->value_before);
  EXPECT_TRUE(check->value_after);
  EXPECT_TRUE(check->stats.complete);
  EXPECT_GT(check->rewritten_union.size(), 1u);
}

TEST(BoolRewriteTest, Listing2RewrittenUnionMentionsFoafVariant) {
  // The paper shows the rewriting step that replaces
  // (DB1:Toby_Maguire age "39") by (foaf:Toby_Maguire age "39") — the
  // literal equivalence-TGD resolution of §4.
  PaperExample ex = BuildPaperExample();
  RpsRewriteOptions options;
  options.equivalence_mode = EquivalenceRewriteMode::kTgdResolution;
  Result<BooleanRewriteCheck> check = CheckTupleByRewriting(
      *ex.system, ex.query, {ex.db1_toby, ex.age_39}, options);
  ASSERT_TRUE(check.ok());
  bool found_foaf_branch = false;
  for (const GraphPatternQuery& branch : check->rewritten_union) {
    for (const TriplePattern& tp : branch.body.patterns()) {
      if (tp.s.is_const() && tp.s.term() == ex.foaf_toby &&
          tp.p.is_const() && tp.p.term() == ex.prop_age) {
        found_foaf_branch = true;
      }
    }
  }
  EXPECT_TRUE(found_foaf_branch);
}

TEST(BoolRewriteTest, NonAnswerTupleStaysFalse) {
  // (DB1:Toby_Maguire, "59") is not a certain answer: rewriting must not
  // make it true.
  PaperExample ex = BuildPaperExample();
  Dictionary& dict = *ex.system->dict();
  TermId wrong_age = dict.InternLiteral("59");
  Result<BooleanRewriteCheck> check = CheckTupleByRewriting(
      *ex.system, ex.query, {ex.db1_toby, wrong_age});
  ASSERT_TRUE(check.ok());
  EXPECT_FALSE(check->value_before);
  EXPECT_FALSE(check->value_after);
}

TEST(BoolRewriteTest, ArityMismatchRejected) {
  PaperExample ex = BuildPaperExample();
  EXPECT_FALSE(
      CheckTupleByRewriting(*ex.system, ex.query, {ex.db1_toby}).ok());
}

TEST(BoolRewriteTest, RewritingMatchesChaseOnPaperExample) {
  // Proposition 2, checked end-to-end: the mapping set of the example is
  // linear (after guard stripping), so the rewriting is perfect and must
  // agree with Algorithm 1.
  PaperExample ex = BuildPaperExample();
  Result<CertainAnswerResult> chase = CertainAnswers(*ex.system, ex.query);
  ASSERT_TRUE(chase.ok());
  Result<RewriteAnswers> rewritten =
      CertainAnswersViaRewriting(*ex.system, ex.query);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  EXPECT_TRUE(rewritten->stats.complete);
  EXPECT_EQ(chase->answers, rewritten->answers);
}

TEST(BoolRewriteTest, RewritingMatchesChaseOnChainSystems) {
  for (size_t peers : {2u, 3u, 5u}) {
    std::unique_ptr<RpsSystem> sys = GenerateChainRps(peers, 8, 7);
    GraphPatternQuery q = ChainQuery(sys.get(), peers);
    Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
    ASSERT_TRUE(chase.ok());
    Result<RewriteAnswers> rewritten = CertainAnswersViaRewriting(*sys, q);
    ASSERT_TRUE(rewritten.ok());
    EXPECT_TRUE(rewritten->stats.complete) << peers << " peers";
    EXPECT_EQ(chase->answers, rewritten->answers) << peers << " peers";
  }
}

TEST(BoolRewriteTest, ChainRewritingSizeGrowsLinearly) {
  // A query over the last property of an n-peer chain rewrites into
  // exactly n branches (one per peer dialect).
  for (size_t peers : {2u, 4u, 8u}) {
    std::unique_ptr<RpsSystem> sys = GenerateChainRps(peers, 2, 7);
    GraphPatternQuery q = ChainQuery(sys.get(), peers);
    Result<RpsRewriteResult> result = RewriteGraphQuery(*sys, q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->ucq.size(), peers);
  }
}

TEST(BoolRewriteTest, RewritingMatchesChaseOnStickyNonLinearSystem) {
  // Proposition 2 also covers sticky (non-linear) G. Build a mapping with
  // a two-atom body whose join variable survives into the head:
  //   q(x, y) <- (x, directs, z) AND (x, stars, y)  ⇝  q(x, y) <-
  //   (x, auteurWith, y)
  // Guard-stripped marking: z is marked (dropped) but occurs once; the
  // set is sticky though not linear.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  TermId directs = dict.InternIri("http://x/directs");
  TermId stars = dict.InternIri("http://x/stars");
  TermId auteur = dict.InternIri("http://x/auteurWith");
  Graph& g = sys.AddPeer("peer");
  for (int i = 0; i < 6; ++i) {
    TermId person = dict.InternIri("http://x/p" + std::to_string(i));
    TermId film = dict.InternIri("http://x/f" + std::to_string(i));
    TermId co = dict.InternIri("http://x/c" + std::to_string(i % 3));
    g.InsertUnchecked(Triple{person, directs, film});
    if (i % 2 == 0) g.InsertUnchecked(Triple{person, stars, co});
  }
  VarId x = vars.Intern("snl_x"), y = vars.Intern("snl_y"),
        z = vars.Intern("snl_z");
  GraphMappingAssertion gma;
  gma.label = "auteur";
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(directs),
                                  PatternTerm::Var(z)});
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(stars),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                PatternTerm::Const(auteur),
                                PatternTerm::Var(y)});
  ASSERT_TRUE(sys.AddGraphMapping(gma).ok());

  // Confirm the classification claim: sticky, not linear (guard-stripped).
  {
    PredTable preds;
    PredId rt = preds.Intern("rt", 1);
    std::vector<Tgd> target;
    sys.CompileToTgds(&preds, nullptr, &target);
    std::vector<Tgd> stripped = StripGuardAtoms(target, rt);
    EXPECT_TRUE(IsSticky(stripped, preds));
    EXPECT_FALSE(IsLinear(stripped));
  }

  GraphPatternQuery q;
  VarId qa = vars.Intern("snl_qa"), qb = vars.Intern("snl_qb");
  q.head = {qa, qb};
  q.body.Add(TriplePattern{PatternTerm::Var(qa), PatternTerm::Const(auteur),
                           PatternTerm::Var(qb)});
  Result<CertainAnswerResult> chase = CertainAnswers(sys, q);
  ASSERT_TRUE(chase.ok());
  EXPECT_EQ(chase->answers.size(), 3u);  // the even-indexed persons
  Result<RewriteAnswers> rewritten = CertainAnswersViaRewriting(sys, q);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(rewritten->stats.complete);
  EXPECT_EQ(chase->answers, rewritten->answers);
}

TEST(BoolRewriteTest, EquivalenceRewritingSubstitutesBothDirections) {
  // A system with only c1 ≡ c2: ASK {c1 p o} must become true through the
  // stored triple (c2 p o) and vice versa.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId c1 = dict.InternIri("http://x/c1");
  TermId c2 = dict.InternIri("http://x/c2");
  TermId p = dict.InternIri("http://x/p");
  TermId o = dict.InternIri("http://x/o");
  sys.AddPeer("peer").InsertUnchecked(Triple{c2, p, o});
  ASSERT_TRUE(sys.AddEquivalence(c1, c2).ok());

  GraphPatternQuery ask;
  ask.body.Add(TriplePattern{PatternTerm::Const(c1), PatternTerm::Const(p),
                             PatternTerm::Const(o)});
  Result<RewriteAnswers> result = CertainAnswersViaRewriting(sys, ask);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 1u);  // the empty tuple: true
}

TEST(BoolRewriteTest, RewriteRespectsExistentialSemantics) {
  // GMA: (x actor y) ⇝ (x starring z)(z artist y). A query asking for the
  // starring/artist structure should rewrite to include the actor form.
  PaperExample ex = BuildPaperExample();
  VarPool& vars = *ex.system->vars();
  VarId f = vars.Intern("qf"), pers = vars.Intern("qp"), cz = vars.Intern("qz");
  GraphPatternQuery q;
  q.head = {f, pers};
  q.body.Add(TriplePattern{PatternTerm::Var(f),
                           PatternTerm::Const(ex.prop_starring),
                           PatternTerm::Var(cz)});
  q.body.Add(TriplePattern{PatternTerm::Var(cz),
                           PatternTerm::Const(ex.prop_artist),
                           PatternTerm::Var(pers)});

  Result<CertainAnswerResult> chase = CertainAnswers(*ex.system, q);
  ASSERT_TRUE(chase.ok());
  Result<RewriteAnswers> rewritten = CertainAnswersViaRewriting(*ex.system, q);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(rewritten->stats.complete);
  EXPECT_EQ(chase->answers, rewritten->answers);
  // The Pleasantville actor pair is only derivable through the GMA.
  Dictionary& dict = *ex.system->dict();
  TermId pleasantville =
      *dict.Lookup(Term::Iri(std::string(kDb2Ns) + "Pleasantville"));
  bool found = false;
  for (const Tuple& t : rewritten->answers) {
    if (t[0] == pleasantville) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rps
