// Randomized cross-validation properties, parameterized over generator
// seeds (TEST_P sweeps):
//  * the graph-level Algorithm 1 chase and the generic relational chase
//    over the §3 TGD encoding produce the same certain answers;
//  * the universal solution satisfies Definition 2 (it is a solution);
//  * rewriting-based answers equal chase-based answers on FO-rewritable
//    systems (Proposition 2);
//  * federated execution equals centralized equals chase;
//  * generated data round-trips through the N-Triples writer/parser.

#include <gtest/gtest.h>

#include "chase/relational_chase.h"
#include "chase/rps_chase.h"
#include "federation/federator.h"
#include "gen/generators.h"
#include "parser/ntriples.h"
#include "peer/certain_answers.h"
#include "rewrite/bool_rewrite.h"

namespace rps {
namespace {

LodConfig MakeConfig(uint64_t seed) {
  LodConfig config;
  config.seed = seed;
  config.num_peers = 2 + seed % 3;
  config.films_per_peer = 4 + seed % 5;
  config.actors_per_film = 1 + seed % 2;
  config.overlap_fraction = 0.25 * static_cast<double>(seed % 3);
  config.single_triple_dialect = (seed % 2 == 0);
  config.topology = static_cast<LodConfig::MappingTopology>(seed % 3);
  return config;
}

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Evaluates a graph pattern query over the tt facts of a relational
// instance, dropping blank-valued head bindings — the CQ semantics of §3.
std::vector<Tuple> EvalOverRelational(const RelationalInstance& instance,
                                      PredId tt, const Dictionary& dict,
                                      const GraphPatternQuery& q) {
  std::vector<Atom> body;
  for (const TriplePattern& tp : q.body.patterns()) {
    body.push_back(TriplePatternToAtom(tp, tt));
  }
  std::vector<Tuple> out;
  instance.FindHomomorphisms(body, {}, [&](const VarAssignment& h) {
    Tuple tuple;
    for (VarId v : q.head) {
      TermId value = h.at(v);
      if (dict.IsBlank(value)) return true;  // rt guard: skip this tuple
      tuple.push_back(value);
    }
    out.push_back(std::move(tuple));
    return true;
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

TEST_P(SeededPropertyTest, GraphChaseAgreesWithRelationalChase) {
  LodConfig config = MakeConfig(GetParam());
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);

  // Graph-level Algorithm 1.
  Result<CertainAnswerResult> graph_answers = CertainAnswers(*sys, q);
  ASSERT_TRUE(graph_answers.ok()) << graph_answers.status();

  // Relational data-exchange chase over the §3 encoding.
  PredTable preds;
  std::vector<Tgd> st, target;
  sys->CompileToTgds(&preds, &st, &target);
  PredId tt = preds.Intern("tt", 3);
  PredId ts = preds.Intern("ts", 3);
  PredId rs = preds.Intern("rs", 1);
  RelationalInstance instance(&preds);
  EncodeStoredDatabase(*sys, ts, rs, &instance);
  std::vector<Tgd> all = st;
  all.insert(all.end(), target.begin(), target.end());
  Result<ChaseStats> stats = ChaseTgds(all, &instance, sys->dict());
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_TRUE(stats->completed);

  std::vector<Tuple> relational_answers =
      EvalOverRelational(instance, tt, *sys->dict(), q);
  EXPECT_EQ(graph_answers->answers, relational_answers)
      << "seed " << GetParam();
}

TEST_P(SeededPropertyTest, UniversalSolutionIsASolution) {
  LodConfig config = MakeConfig(GetParam());
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  Graph universal(sys->dict());
  ASSERT_TRUE(BuildUniversalSolution(*sys, &universal).ok());

  // Definition 2, item 1: D ⊆ I.
  for (const auto& [name, graph] : sys->dataset().graphs()) {
    for (const Triple& t : graph.triples()) {
      EXPECT_TRUE(universal.Contains(t));
    }
  }
  // Item 2: Q_I ⊆ Q'_I for every graph mapping assertion.
  for (const GraphMappingAssertion& gma : sys->graph_mappings()) {
    std::vector<Tuple> from =
        EvalQuery(universal, gma.from, QuerySemantics::kDropBlanks);
    for (const Tuple& t : from) {
      GraphPatternQuery check = BindHead(gma.to, t);
      EXPECT_TRUE(EvalBoolean(universal, check, QuerySemantics::kKeepBlanks))
          << "mapping " << gma.label;
    }
  }
  // Item 3: equal neighbourhoods under Q* for every equivalence mapping.
  VarPool* vars = sys->vars();
  for (const EquivalenceMapping& eq : sys->equivalences()) {
    for (auto make : {SubjQ, PredQ, ObjQ}) {
      std::vector<Tuple> left = EvalQuery(
          universal, make(eq.left, vars), QuerySemantics::kKeepBlanks);
      std::vector<Tuple> right = EvalQuery(
          universal, make(eq.right, vars), QuerySemantics::kKeepBlanks);
      SortTuples(&left);
      SortTuples(&right);
      EXPECT_EQ(left, right);
    }
  }
}

TEST_P(SeededPropertyTest, RewritingMatchesChaseOnLinearSystems) {
  LodConfig config = MakeConfig(GetParam());
  config.single_triple_dialect = true;  // all mappings linear
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);

  Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
  ASSERT_TRUE(chase.ok());
  Result<RewriteAnswers> rewritten = CertainAnswersViaRewriting(*sys, q);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  EXPECT_TRUE(rewritten->stats.complete);
  EXPECT_EQ(chase->answers, rewritten->answers) << "seed " << GetParam();
}

TEST_P(SeededPropertyTest, RewritingMatchesChaseOnExistentialSystems) {
  LodConfig config = MakeConfig(GetParam());
  config.single_triple_dialect = false;  // odd peers use two-triple dialect
  config.num_peers = 3;
  config.films_per_peer = 4;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);

  Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
  ASSERT_TRUE(chase.ok());
  Result<RewriteAnswers> rewritten = CertainAnswersViaRewriting(*sys, q);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  EXPECT_TRUE(rewritten->stats.complete);
  EXPECT_EQ(chase->answers, rewritten->answers) << "seed " << GetParam();
}

TEST_P(SeededPropertyTest, FederatedEqualsCentralizedEqualsChase) {
  LodConfig config = MakeConfig(GetParam());
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);

  Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
  ASSERT_TRUE(chase.ok());

  Federator fed(sys.get(), LodTopology(config));
  Result<FederatedQueryResult> distributed = fed.Execute(q);
  ASSERT_TRUE(distributed.ok()) << distributed.status();
  Result<FederatedQueryResult> centralized = fed.ExecuteCentralized(q);
  ASSERT_TRUE(centralized.ok());

  EXPECT_EQ(distributed->answers, chase->answers) << "seed " << GetParam();
  EXPECT_EQ(centralized->answers, chase->answers) << "seed " << GetParam();
}

TEST_P(SeededPropertyTest, SemiNaiveChaseAgreesWithNaiveChase) {
  // Both schedules produce a universal solution, so certain answers must
  // coincide. The solutions themselves are only homomorphically
  // equivalent: the two firing orders create different amounts of
  // redundant null structure, so sizes may legitimately differ.
  LodConfig config = MakeConfig(GetParam());
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);

  Result<CertainAnswerResult> naive = CertainAnswers(*sys, q);
  ASSERT_TRUE(naive.ok());

  CertainAnswerOptions semi;
  semi.chase.semi_naive = true;
  Result<CertainAnswerResult> seminaive = CertainAnswers(*sys, q, semi);
  ASSERT_TRUE(seminaive.ok()) << seminaive.status();
  EXPECT_EQ(naive->answers, seminaive->answers) << "seed " << GetParam();
}

TEST_P(SeededPropertyTest, ParallelChaseMatchesSerialAnswers) {
  // The parallel round engine (Jacobi schedule) builds a different — but
  // homomorphically equivalent — universal solution than the serial
  // Gauss–Seidel loop, so only the blank-free certain answers are
  // required to coincide, for every thread count and both schedules.
  LodConfig config = MakeConfig(GetParam());
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);

  Result<CertainAnswerResult> serial = CertainAnswers(*sys, q);
  ASSERT_TRUE(serial.ok());

  for (size_t threads : {2u, 4u}) {
    for (bool semi_naive : {false, true}) {
      CertainAnswerOptions options;
      options.chase.threads = threads;
      options.chase.eval.threads = threads;
      options.chase.semi_naive = semi_naive;
      Result<CertainAnswerResult> parallel = CertainAnswers(*sys, q, options);
      ASSERT_TRUE(parallel.ok())
          << parallel.status() << " threads=" << threads;
      EXPECT_EQ(serial->answers, parallel->answers)
          << "seed " << GetParam() << " threads=" << threads
          << " semi_naive=" << semi_naive;
    }
  }
}

TEST_P(SeededPropertyTest, ParallelChaseDeterministicAcrossThreadCounts) {
  // The barrier applies candidate insertions in (mapping, tuple) order
  // with serial blank minting, so the parallel engine's universal
  // solution is byte-identical for every thread count > 1. Each run uses
  // a freshly generated system: blank TermIds are relative to the
  // dictionary state at chase start.
  LodConfig config = MakeConfig(GetParam());

  auto build = [&](size_t threads) {
    std::unique_ptr<RpsSystem> sys = GenerateLod(config);
    RpsChaseOptions options;
    options.threads = threads;
    options.eval.threads = threads;
    Graph universal(sys->dict());
    Result<RpsChaseStats> stats =
        BuildUniversalSolution(*sys, &universal, options);
    EXPECT_TRUE(stats.ok()) << stats.status();
    std::vector<Triple> triples = universal.triples();
    std::sort(triples.begin(), triples.end());
    return triples;
  };
  std::vector<Triple> two = build(2);
  std::vector<Triple> four = build(4);
  EXPECT_EQ(two, four) << "seed " << GetParam();
}

TEST_P(SeededPropertyTest, ParallelUniversalSolutionIsASolution) {
  // Definition 2 holds for the parallel engine's output too: D ⊆ I and
  // every graph mapping assertion is satisfied.
  LodConfig config = MakeConfig(GetParam());
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  RpsChaseOptions options;
  options.threads = 4;
  options.eval.threads = 4;
  Graph universal(sys->dict());
  ASSERT_TRUE(BuildUniversalSolution(*sys, &universal, options).ok());

  for (const auto& [name, graph] : sys->dataset().graphs()) {
    for (const Triple& t : graph.triples()) {
      EXPECT_TRUE(universal.Contains(t));
    }
  }
  for (const GraphMappingAssertion& gma : sys->graph_mappings()) {
    std::vector<Tuple> from =
        EvalQuery(universal, gma.from, QuerySemantics::kDropBlanks);
    for (const Tuple& t : from) {
      GraphPatternQuery check = BindHead(gma.to, t);
      EXPECT_TRUE(EvalBoolean(universal, check, QuerySemantics::kKeepBlanks))
          << "mapping " << gma.label;
    }
  }
}

TEST_P(SeededPropertyTest, ParallelFederationMatchesSerial) {
  LodConfig config = MakeConfig(GetParam());
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);

  Federator fed(sys.get(), LodTopology(config));
  Result<FederatedQueryResult> serial = fed.Execute(q);
  ASSERT_TRUE(serial.ok()) << serial.status();

  for (auto strategy :
       {JoinStrategy::kShipExtensions, JoinStrategy::kBindJoin}) {
    FederationOptions options;
    options.join_strategy = strategy;
    options.threads = 4;
    Result<FederatedQueryResult> parallel = fed.Execute(q, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(serial->answers, parallel->answers) << "seed " << GetParam();
  }
}

TEST_P(SeededPropertyTest, ParallelEvalMatchesSerial) {
  // Seed-partitioned parallel joins concatenate chunk results in chunk
  // order, so the binding sets — not just the answers — are identical.
  LodConfig config = MakeConfig(GetParam());
  config.films_per_peer += 40;  // enough seeds to cross the parallel gate
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  GraphPatternQuery q = LodDemoQuery(sys.get(), config);
  Graph universal(sys->dict());
  ASSERT_TRUE(BuildUniversalSolution(*sys, &universal).ok());

  std::vector<Tuple> serial =
      EvalQuery(universal, q, QuerySemantics::kDropBlanks);
  for (size_t threads : {2u, 4u}) {
    EvalOptions options;
    options.threads = threads;
    std::vector<Tuple> parallel =
        EvalQuery(universal, q, QuerySemantics::kDropBlanks, options);
    EXPECT_EQ(serial, parallel)
        << "seed " << GetParam() << " threads=" << threads;
  }
}

TEST_P(SeededPropertyTest, NTriplesRoundTripOnGeneratedData) {
  LodConfig config = MakeConfig(GetParam());
  std::unique_ptr<RpsSystem> sys = GenerateLod(config);
  Graph stored = sys->StoredDatabase();
  std::string text = WriteNTriples(stored);

  Dictionary dict2;
  Graph reparsed(&dict2);
  Result<size_t> n = ParseNTriples(text, &reparsed);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(reparsed.size(), stored.size());
  EXPECT_EQ(WriteNTriples(reparsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rps
