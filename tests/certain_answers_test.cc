#include "peer/certain_answers.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/paper_example.h"

namespace rps {
namespace {

// Renders answers as "term<TAB>term" lines for readable assertions.
std::vector<std::string> Render(const std::vector<Tuple>& answers,
                                const Dictionary& dict) {
  std::vector<std::string> out;
  for (const Tuple& t : answers) {
    std::string line;
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) line += "\t";
      line += dict.ToString(t[i]);
    }
    out.push_back(line);
  }
  return out;
}

TEST(CertainAnswersTest, RawSourcesReturnEmpty) {
  // Example 1: "This query returns an empty result on the data of
  // Figure 1."
  PaperExample ex = BuildPaperExample();
  Graph stored = ex.system->StoredDatabase();
  std::vector<Tuple> raw =
      EvalQuery(stored, ex.query, QuerySemantics::kDropBlanks);
  EXPECT_TRUE(raw.empty());
}

TEST(CertainAnswersTest, Listing1WithRedundancy) {
  // Listing 1, "#Result": six rows over the universal solution.
  PaperExample ex = BuildPaperExample();
  Result<CertainAnswerResult> result = CertainAnswers(*ex.system, ex.query);
  ASSERT_TRUE(result.ok()) << result.status();
  const Dictionary& dict = *ex.system->dict();

  std::vector<std::string> lines = Render(result->answers, dict);
  std::vector<std::string> expected = {
      "<http://example.org/db1/Kirsten_Dunst>\t\"32\"",
      "<http://example.org/db1/Toby_Maguire>\t\"39\"",
      "<http://example.org/db2/Willem_Dafoe>\t\"59\"",
      "<http://xmlns.com/foaf/0.1/Kirsten_Dunst>\t\"32\"",
      "<http://xmlns.com/foaf/0.1/Toby_Maguire>\t\"39\"",
      "<http://xmlns.com/foaf/0.1/Willem_Dafoe>\t\"59\"",
  };
  std::sort(lines.begin(), lines.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(lines, expected);
}

TEST(CertainAnswersTest, Listing1WithoutRedundancy) {
  // Listing 1, "#Result without redundancy": canonical representatives.
  PaperExample ex = BuildPaperExample();
  CertainAnswerOptions options;
  options.equivalence_mode = EquivalenceMode::kUnionFind;
  options.expand_equivalent_answers = false;
  Result<CertainAnswerResult> result =
      CertainAnswers(*ex.system, ex.query, options);
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<std::string> lines = Render(result->answers,
                                          *ex.system->dict());
  std::vector<std::string> expected = {
      "<http://example.org/db1/Kirsten_Dunst>\t\"32\"",
      "<http://example.org/db1/Toby_Maguire>\t\"39\"",
      "<http://example.org/db2/Willem_Dafoe>\t\"59\"",
  };
  std::sort(lines.begin(), lines.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(lines, expected);
}

TEST(CertainAnswersTest, UnionFindWithExpansionEqualsChase) {
  PaperExample ex = BuildPaperExample();
  Result<CertainAnswerResult> chase = CertainAnswers(*ex.system, ex.query);
  ASSERT_TRUE(chase.ok());

  CertainAnswerOptions uf;
  uf.equivalence_mode = EquivalenceMode::kUnionFind;
  uf.expand_equivalent_answers = true;
  Result<CertainAnswerResult> unionfind =
      CertainAnswers(*ex.system, ex.query, uf);
  ASSERT_TRUE(unionfind.ok());

  EXPECT_EQ(chase->answers, unionfind->answers);
}

TEST(CertainAnswersTest, UnionFindSolutionIsSmaller) {
  // The canonicalized universal solution avoids the clique blow-up.
  PaperExample ex = BuildPaperExample();
  Result<CertainAnswerResult> chase = CertainAnswers(*ex.system, ex.query);
  CertainAnswerOptions uf;
  uf.equivalence_mode = EquivalenceMode::kUnionFind;
  Result<CertainAnswerResult> unionfind =
      CertainAnswers(*ex.system, ex.query, uf);
  ASSERT_TRUE(chase.ok());
  ASSERT_TRUE(unionfind.ok());
  EXPECT_LT(unionfind->universal_solution_size,
            chase->universal_solution_size);
}

TEST(CertainAnswersTest, AnswersNeverContainBlanks) {
  PaperExample ex = BuildPaperExample();
  // Project the intermediate casting node too.
  GraphPatternQuery q = ex.query;
  VarId z = ex.system->vars()->Intern("z");
  q.head.push_back(z);
  Result<CertainAnswerResult> result = CertainAnswers(*ex.system, q);
  ASSERT_TRUE(result.ok());
  const Dictionary& dict = *ex.system->dict();
  for (const Tuple& t : result->answers) {
    for (TermId id : t) {
      EXPECT_FALSE(dict.IsBlank(id));
    }
  }
}

TEST(CertainAnswersTest, MonotoneUnderDataGrowth) {
  // Certain answers are monotone in the stored database: adding triples
  // never removes answers (TGD semantics are positive).
  PaperExample ex = BuildPaperExample();
  Result<CertainAnswerResult> before = CertainAnswers(*ex.system, ex.query);
  ASSERT_TRUE(before.ok());

  Dictionary& dict = *ex.system->dict();
  Graph& s2 = *ex.system->dataset().Find("source2");
  TermId actor = ex.prop_actor;
  TermId film = *dict.Lookup(Term::Iri(std::string(kDb2Ns) + "Spiderman2002"));
  TermId extra = dict.InternIri(std::string(kDb2Ns) + "James_Franco");
  s2.InsertUnchecked(Triple{film, actor, extra});
  Graph& s3 = *ex.system->dataset().Find("source3");
  s3.InsertUnchecked(
      Triple{extra, ex.prop_age, dict.InternLiteral("47")});

  Result<CertainAnswerResult> after = CertainAnswers(*ex.system, ex.query);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->answers.size(), before->answers.size());
  for (const Tuple& t : before->answers) {
    EXPECT_NE(std::find(after->answers.begin(), after->answers.end(), t),
              after->answers.end());
  }
}

TEST(CertainAnswersTest, InvalidQueryRejected) {
  PaperExample ex = BuildPaperExample();
  GraphPatternQuery bad;
  bad.head = {ex.system->vars()->Intern("unbound")};
  bad.body.Add(TriplePattern{PatternTerm::Const(ex.db1_spiderman),
                             PatternTerm::Const(ex.prop_starring),
                             PatternTerm::Var(ex.system->vars()->Intern(
                                 "other"))});
  EXPECT_FALSE(CertainAnswers(*ex.system, bad).ok());
}

TEST(CertainAnswersTest, ChainSystemIntegratesAllPeers) {
  // Chain RPS: facts flow from peer0's property to the last peer's
  // property, so the ChainQuery over peer N-1 sees everything.
  const size_t kPeers = 4, kFacts = 10;
  std::unique_ptr<RpsSystem> sys = GenerateChainRps(kPeers, kFacts, 99);
  GraphPatternQuery q = ChainQuery(sys.get(), kPeers);
  Result<CertainAnswerResult> result = CertainAnswers(*sys, q);
  ASSERT_TRUE(result.ok()) << result.status();
  // Every peer's facts (deduplicated by construction they are distinct)
  // must appear: 4 peers × 10 facts.
  EXPECT_EQ(result->answers.size(), kPeers * kFacts);
}

TEST(CertainAnswersTest, EquivalenceModesAgreeOnGeneratedSystems) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    LodConfig config;
    config.num_peers = 3;
    config.films_per_peer = 6;
    config.actors_per_film = 2;
    config.seed = seed;
    config.single_triple_dialect = (seed % 2 == 0);
    std::unique_ptr<RpsSystem> sys = GenerateLod(config);
    GraphPatternQuery q = LodDemoQuery(sys.get(), config);

    Result<CertainAnswerResult> chase = CertainAnswers(*sys, q);
    ASSERT_TRUE(chase.ok()) << chase.status();
    CertainAnswerOptions uf;
    uf.equivalence_mode = EquivalenceMode::kUnionFind;
    uf.expand_equivalent_answers = true;
    Result<CertainAnswerResult> unionfind = CertainAnswers(*sys, q, uf);
    ASSERT_TRUE(unionfind.ok()) << unionfind.status();
    EXPECT_EQ(chase->answers, unionfind->answers) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rps
