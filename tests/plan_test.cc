// Tests for the cost-based join planner (query/plan.h).
//
// Two pillars:
//  * The dynamic program picks the join order and operators a human
//    would on hub-skewed data (selective anchor first, merge/leapfrog
//    where the intermediate outgrows the extensions).
//  * Byte-identity: whatever plan is chosen, ExecutePlan's output is the
//    exact sequence the per-binding probe engine emits — asserted on the
//    sequence, not the set, across random BGPs, seeds and thread counts,
//    in the style of the index parity tests (graph_index_test.cc).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "query/eval.h"
#include "query/plan.h"
#include "rdf/graph.h"
#include "storage/storage.h"
#include "util/rng.h"

namespace rps {
namespace {

struct Fixture {
  Dictionary dict;
  VarPool vars;
  Graph graph{&dict};
};

TermId Iri(Fixture* f, const std::string& s) {
  return f->dict.InternIri("http://t/" + s);
}

void Insert(Fixture* f, TermId s, TermId p, TermId o) {
  ASSERT_TRUE(f->graph.Insert(Triple{s, p, o}).ok());
}

PatternTerm V(Fixture* f, const std::string& name) {
  return PatternTerm::Var(f->vars.Intern(name));
}

// A hub-skewed graph: `n` people, everybody `knows` the hub, the hub
// `knows` everybody; only a handful of people have a `type Admin`
// triple. A selective planner must anchor on the Admin pattern.
void BuildHubGraph(Fixture* f, size_t n, size_t admins) {
  TermId knows = Iri(f, "knows");
  TermId type = Iri(f, "type");
  TermId admin = Iri(f, "Admin");
  TermId hub = Iri(f, "hub");
  for (size_t i = 0; i < n; ++i) {
    TermId person = Iri(f, "p" + std::to_string(i));
    Insert(f, person, knows, hub);
    Insert(f, hub, knows, person);
    if (i < admins) Insert(f, person, type, admin);
  }
}

TEST(PlanBgpTest, DpAnchorsOnSelectivePattern) {
  Fixture f;
  BuildHubGraph(&f, 400, 3);
  TermId knows = Iri(&f, "knows");
  TermId type = Iri(&f, "type");
  TermId admin = Iri(&f, "Admin");

  // ?x knows ?y  (huge)  AND  ?x type Admin  (3 rows).
  std::vector<TriplePattern> patterns = {
      {V(&f, "x"), PatternTerm::Const(knows), V(&f, "y")},
      {V(&f, "x"), PatternTerm::Const(type), PatternTerm::Const(admin)},
  };
  EvalOptions options;
  QueryPlan plan = PlanBgp(f.graph, patterns, {Binding()}, options);
  ASSERT_TRUE(plan.used_dp);
  ASSERT_EQ(plan.steps.size(), 2u);
  // The selective type pattern leads; the huge knows pattern joins into
  // it (the DP must not start from the 800-row extension).
  EXPECT_EQ(plan.steps[0].patterns[0], 1u);
  EXPECT_EQ(plan.steps[1].patterns[0], 0u);
  EXPECT_EQ(plan.steps[0].op, PlanOp::kScan);
}

TEST(PlanBgpTest, LargeSeedPrefersMergeJoin) {
  Fixture f;
  BuildHubGraph(&f, 500, 500);  // every person is an admin: nothing selective
  TermId knows = Iri(&f, "knows");
  TermId type = Iri(&f, "type");
  TermId admin = Iri(&f, "Admin");

  std::vector<TriplePattern> patterns = {
      {V(&f, "x"), PatternTerm::Const(type), PatternTerm::Const(admin)},
      {V(&f, "x"), PatternTerm::Const(knows), V(&f, "y")},
      {V(&f, "y"), PatternTerm::Const(knows), V(&f, "x")},
  };
  EvalOptions options;
  QueryPlan plan = PlanBgp(f.graph, patterns, {Binding()}, options);
  ASSERT_TRUE(plan.used_dp);
  // With a 500-row intermediate joining 1000-row extensions, at least
  // one non-leading step must be a sorted merge (or a leapfrog group):
  // probing row-by-row is the expensive choice the planner exists to
  // avoid.
  bool has_merge = false;
  for (const PlanStep& s : plan.steps) {
    if (s.op == PlanOp::kMergeJoin || s.op == PlanOp::kLeapfrogJoin) {
      has_merge = true;
    }
  }
  EXPECT_TRUE(has_merge);
}

TEST(PlanJoinOrderTest, AvoidsCrossProductBetweenCheapPatterns) {
  Fixture f;
  // t0 and t1 are the two cheapest patterns but disconnected; t2, the
  // expensive one, connects them. A pure selectivity sort runs t0 then
  // t1 — a 50×60 cross product whose 3000 rows then each get joined
  // against t2. The DP must route through t2 instead.
  std::vector<TriplePattern> patterns = {
      {V(&f, "a"), PatternTerm::Const(Iri(&f, "p")), V(&f, "b")},
      {V(&f, "c"), PatternTerm::Const(Iri(&f, "q")), V(&f, "d")},
      {V(&f, "b"), PatternTerm::Const(Iri(&f, "r")), V(&f, "c")},
  };
  std::vector<size_t> cards = {50, 60, 5000};
  std::vector<size_t> order = PlanJoinOrder(patterns, cards);
  ASSERT_EQ(order.size(), 3u);
  // Whatever comes first, the second pattern must share a variable with
  // it or with the patterns joined so far — i.e. t0 and t1 are not
  // adjacent at the head.
  EXPECT_FALSE((order[0] == 0 && order[1] == 1) ||
               (order[0] == 1 && order[1] == 0));
}

// ---------------------------------------------------------------------------
// Randomized byte-identity oracle.
// ---------------------------------------------------------------------------

std::string RenderBindings(const BindingSet& bs) {
  std::string out;
  for (const Binding& b : bs) {
    for (const auto& [var, term] : b.entries()) {
      out += std::to_string(var) + "=" + std::to_string(term) + ",";
    }
    out += ";";
  }
  return out;
}

// Random BGP over a skewed universe: star / chain / triangle-ish shapes
// with shared variables, some constants drawn from the data.
std::vector<TriplePattern> RandomBgp(Rng* rng, Fixture* f,
                                     const std::vector<TermId>& subjects,
                                     const std::vector<TermId>& predicates,
                                     size_t n_patterns) {
  std::vector<VarId> pool;
  for (size_t i = 0; i < 4; ++i) {
    pool.push_back(f->vars.Intern("v" + std::to_string(i)));
  }
  std::vector<TriplePattern> out;
  for (size_t i = 0; i < n_patterns; ++i) {
    TriplePattern tp;
    tp.s = rng->Index(3) == 0
               ? PatternTerm::Const(subjects[rng->Index(subjects.size())])
               : PatternTerm::Var(pool[rng->Index(pool.size())]);
    tp.p = PatternTerm::Const(predicates[rng->Index(predicates.size())]);
    tp.o = rng->Index(4) == 0
               ? PatternTerm::Const(subjects[rng->Index(subjects.size())])
               : PatternTerm::Var(pool[rng->Index(pool.size())]);
    out.push_back(tp);
  }
  return out;
}

TEST(PlanOracleTest, ByteIdenticalToProbeEngineAcrossShapesSeedsThreads) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    Fixture f;
    // Skewed data: a few hub subjects absorb most edges.
    std::vector<TermId> subjects;
    std::vector<TermId> predicates;
    for (size_t i = 0; i < 24; ++i) {
      subjects.push_back(Iri(&f, "s" + std::to_string(i)));
    }
    for (size_t i = 0; i < 4; ++i) {
      predicates.push_back(Iri(&f, "p" + std::to_string(i)));
    }
    size_t n_triples = 300 + rng.Index(300);
    for (size_t i = 0; i < n_triples; ++i) {
      TermId s = rng.Index(3) != 0 ? subjects[rng.Index(3)]
                                   : subjects[rng.Index(subjects.size())];
      TermId o = subjects[rng.Index(subjects.size())];
      f.graph.Insert(Triple{s, predicates[rng.Index(predicates.size())], o})
          .ok();
    }

    for (size_t n_patterns = 2; n_patterns <= 5; ++n_patterns) {
      std::vector<TriplePattern> patterns =
          RandomBgp(&rng, &f, subjects, predicates, n_patterns);

      // Reference: the probe engine, serial.
      EvalOptions probe;
      probe.use_plan = false;
      BindingSet expected =
          ExtendBindings(f.graph, patterns, {Binding()}, probe);
      std::string expected_bytes = RenderBindings(expected);

      for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
        EvalOptions planned;
        planned.use_plan = true;
        planned.threads = threads;
        BindingSet got =
            ExtendBindings(f.graph, patterns, {Binding()}, planned);
        ASSERT_EQ(RenderBindings(got), expected_bytes)
            << "seed " << seed << " patterns " << n_patterns << " threads "
            << threads;
      }
    }
  }
}

TEST(PlanOracleTest, ByteIdenticalWithNonTrivialSeeds) {
  for (uint64_t seed = 10; seed <= 13; ++seed) {
    Rng rng(seed);
    Fixture f;
    std::vector<TermId> subjects;
    std::vector<TermId> predicates;
    for (size_t i = 0; i < 16; ++i) {
      subjects.push_back(Iri(&f, "s" + std::to_string(i)));
    }
    for (size_t i = 0; i < 3; ++i) {
      predicates.push_back(Iri(&f, "p" + std::to_string(i)));
    }
    for (size_t i = 0; i < 400; ++i) {
      f.graph
          .Insert(Triple{subjects[rng.Index(subjects.size())],
                         predicates[rng.Index(predicates.size())],
                         subjects[rng.Index(subjects.size())]})
          .ok();
    }

    // Seed relation: all matches of one extra pattern (what the chase's
    // delta-driven evaluation produces).
    VarId x = f.vars.Intern("x");
    VarId y = f.vars.Intern("y");
    TriplePattern seed_tp{PatternTerm::Var(x), PatternTerm::Const(predicates[0]),
                          PatternTerm::Var(y)};
    BindingSet seeds = EvalTriplePattern(f.graph, seed_tp);
    ASSERT_FALSE(seeds.empty());

    std::vector<TriplePattern> patterns = {
        {PatternTerm::Var(y), PatternTerm::Const(predicates[1]),
         PatternTerm::Var(f.vars.Intern("z"))},
        {PatternTerm::Var(x), PatternTerm::Const(predicates[2]),
         PatternTerm::Var(f.vars.Intern("w"))},
    };

    EvalOptions probe;
    probe.use_plan = false;
    std::string expected =
        RenderBindings(ExtendBindings(f.graph, patterns, seeds, probe));
    for (size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
      EvalOptions planned;
      planned.threads = threads;
      std::string got =
          RenderBindings(ExtendBindings(f.graph, patterns, seeds, planned));
      ASSERT_EQ(got, expected) << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(PlanOracleTest, TextualOrderPreservedWhenReorderingDisabled) {
  Fixture f;
  BuildHubGraph(&f, 50, 5);
  TermId knows = Iri(&f, "knows");
  TermId type = Iri(&f, "type");
  TermId admin = Iri(&f, "Admin");
  std::vector<TriplePattern> patterns = {
      {V(&f, "x"), PatternTerm::Const(knows), V(&f, "y")},
      {V(&f, "x"), PatternTerm::Const(type), PatternTerm::Const(admin)},
  };
  EvalOptions probe;
  probe.use_plan = false;
  probe.reorder_patterns = false;
  EvalOptions planned;
  planned.reorder_patterns = false;
  EXPECT_EQ(RenderBindings(ExtendBindings(f.graph, patterns, {Binding()},
                                          planned)),
            RenderBindings(ExtendBindings(f.graph, patterns, {Binding()},
                                          probe)));
}

TEST(PlanExplainTest, RenderMentionsOperatorsAndCardinalities) {
  Fixture f;
  BuildHubGraph(&f, 100, 2);
  TermId knows = Iri(&f, "knows");
  TermId type = Iri(&f, "type");
  TermId admin = Iri(&f, "Admin");
  std::vector<TriplePattern> patterns = {
      {V(&f, "x"), PatternTerm::Const(knows), V(&f, "y")},
      {V(&f, "x"), PatternTerm::Const(type), PatternTerm::Const(admin)},
  };
  EvalOptions options;
  QueryPlan plan = PlanBgp(f.graph, patterns, {Binding()}, options);
  BindingSet out = ExecutePlan(f.graph, &plan, {Binding()}, options);
  EXPECT_FALSE(out.empty());
  std::string text = RenderPlan(plan, &f.dict, &f.vars);
  EXPECT_NE(text.find("step 1"), std::string::npos);
  EXPECT_NE(text.find("est"), std::string::npos);
  EXPECT_NE(text.find("actual"), std::string::npos);
  EXPECT_NE(text.find("?x"), std::string::npos);
}

// The greedy order itself (probe engine reference) must use multi-seed
// sampling: a pathological first seed (the hub) must not flip the order
// chosen for the whole seed set.
TEST(OrderPatternsGreedyTest, MedianSamplingSurvivesHubFirstSeed) {
  Fixture f;
  TermId knows = Iri(&f, "knows");
  TermId likes = Iri(&f, "likes");
  TermId hub = Iri(&f, "hub");
  // hub knows 200 people; every other person knows exactly 1. Everybody
  // (including hub) likes exactly 2 things.
  VarId x = f.vars.Intern("x");
  VarId y = f.vars.Intern("y");
  VarId z = f.vars.Intern("z");
  for (size_t i = 0; i < 200; ++i) {
    TermId p = Iri(&f, "p" + std::to_string(i));
    Insert(&f, hub, knows, p);
    Insert(&f, p, knows, Iri(&f, "q" + std::to_string(i)));
    Insert(&f, p, likes, Iri(&f, "l" + std::to_string(i % 7)));
    Insert(&f, p, likes, Iri(&f, "m" + std::to_string(i % 5)));
  }
  Insert(&f, hub, likes, Iri(&f, "l0"));
  Insert(&f, hub, likes, Iri(&f, "m0"));

  // Seeds: hub first (binds ?x to the 200-fanout node), then ordinary
  // people. For the *typical* seed, (?x knows ?z) has cardinality 1 and
  // (?x likes ?y) has 2 — knows should be ordered first. Single-seed
  // sampling on the hub sees knows=200, likes=2 and picks likes.
  BindingSet seeds;
  Binding hub_seed;
  hub_seed.Bind(x, hub);
  seeds.push_back(hub_seed);
  for (size_t i = 0; i < 40; ++i) {
    Binding b;
    b.Bind(x, Iri(&f, "p" + std::to_string(i)));
    seeds.push_back(b);
  }

  std::vector<TriplePattern> patterns = {
      {PatternTerm::Var(x), PatternTerm::Const(likes), PatternTerm::Var(y)},
      {PatternTerm::Var(x), PatternTerm::Const(knows), PatternTerm::Var(z)},
  };
  std::vector<size_t> order = OrderPatternsGreedy(f.graph, patterns, seeds);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u) << "median-of-samples must rank knows (typical "
                             "cardinality 1) before likes (2)";
}

// ---- Worst-case-optimal join (PlanOp::kWcojJoin) oracle parity ----
//
// Whatever WcojMode is in force, the emitted binding sequence must be
// byte-identical to the per-binding probe engine — across random BGP
// shapes, seeds, thread counts, tier mixes and AsOf epochs.

bool PlanHasWcoj(const QueryPlan& plan) {
  for (const PlanStep& s : plan.steps) {
    if (s.op == PlanOp::kWcojJoin) return true;
  }
  return false;
}

TEST(WcojOracleTest, ForcedWcojByteIdenticalAcrossShapesSeedsThreads) {
  for (uint64_t seed = 21; seed <= 28; ++seed) {
    Rng rng(seed);
    Fixture f;
    std::vector<TermId> subjects;
    std::vector<TermId> predicates;
    for (size_t i = 0; i < 24; ++i) {
      subjects.push_back(Iri(&f, "s" + std::to_string(i)));
    }
    for (size_t i = 0; i < 4; ++i) {
      predicates.push_back(Iri(&f, "p" + std::to_string(i)));
    }
    size_t n_triples = 300 + rng.Index(300);
    for (size_t i = 0; i < n_triples; ++i) {
      TermId s = rng.Index(3) != 0 ? subjects[rng.Index(3)]
                                   : subjects[rng.Index(subjects.size())];
      TermId o = subjects[rng.Index(subjects.size())];
      f.graph.Insert(Triple{s, predicates[rng.Index(predicates.size())], o})
          .ok();
    }
    for (size_t n_patterns = 3; n_patterns <= 5; ++n_patterns) {
      std::vector<TriplePattern> patterns =
          RandomBgp(&rng, &f, subjects, predicates, n_patterns);
      EvalOptions probe;
      probe.use_plan = false;
      std::string expected =
          RenderBindings(ExtendBindings(f.graph, patterns, {Binding()}, probe));
      for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        EvalOptions forced;
        forced.wcoj = WcojMode::kForce;
        forced.threads = threads;
        std::string got = RenderBindings(
            ExtendBindings(f.graph, patterns, {Binding()}, forced));
        ASSERT_EQ(got, expected) << "seed " << seed << " patterns "
                                 << n_patterns << " threads " << threads;
      }
    }
  }
}

TEST(WcojOracleTest, ByteIdenticalAcrossTiersAndAsOfEpochs) {
  Rng rng(99);
  Fixture staging;
  std::vector<TermId> subjects;
  std::vector<TermId> predicates;
  for (size_t i = 0; i < 16; ++i) {
    subjects.push_back(Iri(&staging, "s" + std::to_string(i)));
  }
  for (size_t i = 0; i < 3; ++i) {
    predicates.push_back(Iri(&staging, "p" + std::to_string(i)));
  }
  auto fill = [&](Fixture* f, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      f->graph
          .Insert(Triple{subjects[rng.Index(3) != 0 ? rng.Index(3)
                                                    : rng.Index(subjects.size())],
                         predicates[rng.Index(predicates.size())],
                         subjects[rng.Index(subjects.size())]})
          .ok();
    }
  };
  fill(&staging, 400);
  std::string path = std::string(::getenv("TMPDIR") ? ::getenv("TMPDIR")
                                                    : "/tmp") +
                     "/wcoj-tiers-" + std::to_string(::getpid()) + ".rps";
  ASSERT_TRUE(storage::SaveGraph(path, staging.graph).ok());

  Fixture f;
  ASSERT_TRUE(storage::LoadGraph(path, &f.graph).ok());
  ASSERT_GT(f.graph.mapped_size(), 0u);
  subjects.clear();
  predicates.clear();
  for (size_t i = 0; i < 16; ++i) {
    subjects.push_back(Iri(&f, "s" + std::to_string(i)));
  }
  for (size_t i = 0; i < 3; ++i) {
    predicates.push_back(Iri(&f, "p" + std::to_string(i)));
  }
  fill(&f, 450);  // merged base above the mapped tier + fresh delta tail

  VarId x = f.vars.Intern("x");
  VarId y = f.vars.Intern("y");
  VarId z = f.vars.Intern("z");
  // A star and a triangle — both WCOJ-eligible shapes.
  std::vector<std::vector<TriplePattern>> bgps = {
      {{PatternTerm::Var(x), PatternTerm::Const(predicates[0]),
        PatternTerm::Var(y)},
       {PatternTerm::Var(x), PatternTerm::Const(predicates[1]),
        PatternTerm::Var(z)},
       {PatternTerm::Var(x), PatternTerm::Const(predicates[2]),
        PatternTerm::Var(f.vars.Intern("w"))}},
      {{PatternTerm::Var(x), PatternTerm::Const(predicates[0]),
        PatternTerm::Var(y)},
       {PatternTerm::Var(y), PatternTerm::Const(predicates[1]),
        PatternTerm::Var(z)},
       {PatternTerm::Var(z), PatternTerm::Const(predicates[2]),
        PatternTerm::Var(x)}}};

  // Epochs straddling the mapped boundary: strictly inside the mapped
  // prefix, exactly on the boundary, inside the in-memory tail, now.
  std::vector<size_t> epochs = {f.graph.mapped_size() / 2,
                                f.graph.mapped_size(),
                                f.graph.mapped_size() + 100, f.graph.size()};
  for (const std::vector<TriplePattern>& patterns : bgps) {
    for (size_t epoch : epochs) {
      GraphSnapshot snap(f.graph, epoch);
      EvalOptions probe;
      probe.use_plan = false;
      std::string expected =
          RenderBindings(ExtendBindings(snap, patterns, {Binding()}, probe));
      for (size_t threads : {size_t{1}, size_t{4}}) {
        EvalOptions forced;
        forced.wcoj = WcojMode::kForce;
        forced.threads = threads;
        std::string got = RenderBindings(
            ExtendBindings(snap, patterns, {Binding()}, forced));
        ASSERT_EQ(got, expected)
            << "epoch " << epoch << " threads " << threads;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(WcojPlanTest, ModeControlsOperatorChoice) {
  Fixture f;
  Rng rng(5);
  std::vector<TermId> subjects;
  for (size_t i = 0; i < 30; ++i) {
    subjects.push_back(Iri(&f, "s" + std::to_string(i)));
  }
  TermId p0 = Iri(&f, "e0");
  TermId p1 = Iri(&f, "e1");
  TermId p2 = Iri(&f, "e2");
  for (size_t i = 0; i < 400; ++i) {
    Insert(&f, subjects[rng.Index(subjects.size())],
           rng.Index(3) == 0 ? p0 : (rng.Index(2) == 0 ? p1 : p2),
           subjects[rng.Index(subjects.size())]);
  }
  VarId x = f.vars.Intern("x");
  std::vector<TriplePattern> star = {
      {PatternTerm::Var(x), PatternTerm::Const(p0), V(&f, "a")},
      {PatternTerm::Var(x), PatternTerm::Const(p1), V(&f, "b")},
      {PatternTerm::Var(x), PatternTerm::Const(p2), V(&f, "c")}};

  EvalOptions forced;
  forced.wcoj = WcojMode::kForce;
  QueryPlan forced_plan = PlanBgp(f.graph, star, {Binding()}, forced);
  EXPECT_TRUE(PlanHasWcoj(forced_plan))
      << "kForce must take the WCOJ path on an eligible star";

  EvalOptions off;
  off.wcoj = WcojMode::kOff;
  QueryPlan off_plan = PlanBgp(f.graph, star, {Binding()}, off);
  EXPECT_FALSE(PlanHasWcoj(off_plan))
      << "kOff must restrict planning to binary operators";

  // Both execute to the same bytes as the probe engine.
  EvalOptions probe;
  probe.use_plan = false;
  std::string expected =
      RenderBindings(ExtendBindings(f.graph, star, {Binding()}, probe));
  EXPECT_EQ(RenderBindings(ExtendBindings(f.graph, star, {Binding()}, forced)),
            expected);
  EXPECT_EQ(RenderBindings(ExtendBindings(f.graph, star, {Binding()}, off)),
            expected);
}

}  // namespace
}  // namespace rps
