#include "peer/rps_system.h"

#include <gtest/gtest.h>

#include "chase/relational_chase.h"
#include "gen/paper_example.h"

namespace rps {
namespace {

TEST(RpsSystemTest, AddPeerIsIdempotent) {
  RpsSystem sys;
  Graph& a = sys.AddPeer("p");
  Graph& b = sys.AddPeer("p");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(sys.PeerCount(), 1u);
}

TEST(RpsSystemTest, SchemaOfCollectsIris) {
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  Graph& g = sys.AddPeer("p");
  TermId s = dict.InternIri("http://x/s");
  TermId p = dict.InternIri("http://x/p");
  TermId lit = dict.InternLiteral("v");
  g.InsertUnchecked(Triple{s, p, lit});
  PeerSchema schema = sys.SchemaOf("p");
  EXPECT_TRUE(schema.Contains(s));
  EXPECT_TRUE(schema.Contains(p));
  EXPECT_FALSE(schema.Contains(lit));  // literals are not schema members
  EXPECT_EQ(schema.size(), 2u);
  // Unknown peer: empty schema.
  EXPECT_EQ(sys.SchemaOf("nope").size(), 0u);
}

TEST(RpsSystemTest, AddGraphMappingValidatesArity) {
  RpsSystem sys;
  VarPool& vars = *sys.vars();
  Dictionary& dict = *sys.dict();
  TermId p = dict.InternIri("http://x/p");
  VarId x = vars.Intern("x"), y = vars.Intern("y");
  GraphMappingAssertion gma;
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                                  PatternTerm::Var(y)});
  gma.to.head = {x};  // arity mismatch
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(p),
                                PatternTerm::Var(x)});
  EXPECT_FALSE(sys.AddGraphMapping(gma).ok());
}

TEST(RpsSystemTest, AddEquivalenceRejectsNonIris) {
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId iri = dict.InternIri("http://x/a");
  TermId lit = dict.InternLiteral("v");
  TermId blank = dict.InternBlank("b");
  EXPECT_FALSE(sys.AddEquivalence(iri, lit).ok());
  EXPECT_FALSE(sys.AddEquivalence(blank, iri).ok());
  EXPECT_TRUE(sys.AddEquivalence(iri, dict.InternIri("http://x/b")).ok());
  // Reflexive equivalences are accepted but not stored.
  EXPECT_TRUE(sys.AddEquivalence(iri, iri).ok());
  EXPECT_EQ(sys.equivalences().size(), 1u);
}

TEST(RpsSystemTest, SameAsScanSkipsNonIriEndpoints) {
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  Graph& g = sys.AddPeer("p");
  TermId same_as = dict.Intern(Term::Iri(std::string(kOwlSameAs)));
  TermId a = dict.InternIri("http://x/a");
  TermId b = dict.InternIri("http://x/b");
  TermId blank = dict.InternBlank("n");
  g.InsertUnchecked(Triple{a, same_as, b});
  g.InsertUnchecked(Triple{blank, same_as, b});  // blank endpoint: skip
  g.InsertUnchecked(Triple{a, same_as, dict.InternLiteral("x")});  // skip
  EXPECT_EQ(sys.AddEquivalencesFromSameAs(), 1u);
}

TEST(RpsSystemTest, SchemaDiagnosticsCleanOnPaperExample) {
  PaperExample ex = BuildPaperExample();
  std::vector<std::string> diagnostics = ex.system->SchemaDiagnostics();
  EXPECT_TRUE(diagnostics.empty())
      << (diagnostics.empty() ? "" : diagnostics[0]);
}

TEST(RpsSystemTest, SchemaDiagnosticsFlagForeignIris) {
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  Graph& g = sys.AddPeer("p");
  TermId p_prop = dict.InternIri("http://x/p");
  TermId s = dict.InternIri("http://x/s");
  g.InsertUnchecked(Triple{s, p_prop, s});

  // A mapping whose target property no peer uses.
  TermId ghost = dict.InternIri("http://ghost/prop");
  VarId x = vars.Intern("x"), y = vars.Intern("y");
  GraphMappingAssertion gma;
  gma.label = "to-ghost";
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(p_prop),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                PatternTerm::Const(ghost),
                                PatternTerm::Var(y)});
  ASSERT_TRUE(sys.AddGraphMapping(gma).ok());
  // And an equivalence with one unknown endpoint.
  ASSERT_TRUE(sys.AddEquivalence(s, dict.InternIri("http://ghost/e")).ok());

  std::vector<std::string> diagnostics = sys.SchemaDiagnostics();
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_NE(diagnostics[0].find("to-ghost"), std::string::npos);
  EXPECT_NE(diagnostics[1].find("unknown IRI"), std::string::npos);
}

TEST(RpsSystemTest, SchemaDiagnosticsRequireSingleCoveringPeer) {
  // Each IRI exists in *some* peer, but no single peer covers both — the
  // mapping side straddles two schemas, which §2.2 does not allow.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();
  TermId pa = dict.InternIri("http://a/p");
  TermId pb = dict.InternIri("http://b/p");
  TermId ea = dict.InternIri("http://a/e");
  TermId eb = dict.InternIri("http://b/e");
  sys.AddPeer("a").InsertUnchecked(Triple{ea, pa, ea});
  sys.AddPeer("b").InsertUnchecked(Triple{eb, pb, eb});

  VarId x = vars.Intern("x");
  GraphMappingAssertion gma;
  gma.label = "straddler";
  gma.from.head = {x};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(pa),
                                  PatternTerm::Const(eb)});  // a + b mix
  gma.to.head = {x};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(pb),
                                PatternTerm::Var(x)});
  ASSERT_TRUE(sys.AddGraphMapping(gma).ok());
  std::vector<std::string> diagnostics = sys.SchemaDiagnostics();
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_NE(diagnostics[0].find("straddler"), std::string::npos);
}

TEST(RpsSystemTest, EncodeStoredDatabaseProducesTsAndRsFacts) {
  PaperExample ex = BuildPaperExample();
  PredTable preds;
  PredId ts = preds.Intern("ts", 3);
  PredId rs = preds.Intern("rs", 1);
  RelationalInstance instance(&preds);
  EncodeStoredDatabase(*ex.system, ts, rs, &instance);

  Graph stored = ex.system->StoredDatabase();
  EXPECT_EQ(instance.Facts(ts).size(), stored.size());
  // rs holds exactly the non-blank terms in use.
  size_t non_blank = 0;
  for (TermId id : stored.TermsInUse()) {
    if (!ex.system->dict()->IsBlank(id)) ++non_blank;
  }
  EXPECT_EQ(instance.Facts(rs).size(), non_blank);
}

}  // namespace
}  // namespace rps
