#include "util/string_util.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rps {
namespace {

TEST(StringUtilTest, EscapeBasics) {
  EXPECT_EQ(EscapeLiteral("plain"), "plain");
  EXPECT_EQ(EscapeLiteral("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLiteral("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLiteral("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapeLiteral("tab\there"), "tab\\there");
  EXPECT_EQ(EscapeLiteral("cr\rhere"), "cr\\rhere");
}

TEST(StringUtilTest, UnescapeBasics) {
  std::string out;
  ASSERT_TRUE(UnescapeLiteral("a\\\"b", &out));
  EXPECT_EQ(out, "a\"b");
  ASSERT_TRUE(UnescapeLiteral("a\\nb", &out));
  EXPECT_EQ(out, "a\nb");
  ASSERT_TRUE(UnescapeLiteral("a\\tb\\rc\\\\d", &out));
  EXPECT_EQ(out, "a\tb\rc\\d");
}

TEST(StringUtilTest, UnescapeUnicode) {
  std::string out;
  ASSERT_TRUE(UnescapeLiteral("\\u0041", &out));
  EXPECT_EQ(out, "A");
  ASSERT_TRUE(UnescapeLiteral("\\u00e9", &out));  // é
  EXPECT_EQ(out, "\xc3\xa9");
  ASSERT_TRUE(UnescapeLiteral("\\U0001F600", &out));  // emoji, 4-byte UTF-8
  EXPECT_EQ(out.size(), 4u);
}

TEST(StringUtilTest, UnescapeRejectsMalformed) {
  std::string out;
  EXPECT_FALSE(UnescapeLiteral("trailing\\", &out));
  EXPECT_FALSE(UnescapeLiteral("\\q", &out));
  EXPECT_FALSE(UnescapeLiteral("\\u00", &out));       // too short
  EXPECT_FALSE(UnescapeLiteral("\\uZZZZ", &out));     // not hex
  EXPECT_FALSE(UnescapeLiteral("\\UDDDD0000", &out)); // out of range
}

TEST(StringUtilTest, EscapeUnescapeRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string original;
    size_t len = rng.Index(40);
    for (size_t i = 0; i < len; ++i) {
      // Mix of printable ASCII and the characters needing escapes.
      const char alphabet[] = "ab\"\\\n\r\tXYZ 09~";
      original.push_back(alphabet[rng.Index(sizeof(alphabet) - 1)]);
    }
    std::string decoded;
    ASSERT_TRUE(UnescapeLiteral(EscapeLiteral(original), &decoded));
    EXPECT_EQ(decoded, original);
  }
}

TEST(StringUtilTest, AppendUtf8Boundaries) {
  std::string out;
  EXPECT_TRUE(AppendUtf8(0x7F, &out));     // 1 byte
  EXPECT_TRUE(AppendUtf8(0x80, &out));     // 2 bytes
  EXPECT_TRUE(AppendUtf8(0x7FF, &out));
  EXPECT_TRUE(AppendUtf8(0x800, &out));    // 3 bytes
  EXPECT_TRUE(AppendUtf8(0xFFFF, &out));
  EXPECT_TRUE(AppendUtf8(0x10000, &out));  // 4 bytes
  EXPECT_TRUE(AppendUtf8(0x10FFFF, &out));
  EXPECT_FALSE(AppendUtf8(0x110000, &out));
  EXPECT_FALSE(AppendUtf8(0xD800, &out));  // surrogate
  EXPECT_FALSE(AppendUtf8(0xDFFF, &out));
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");

  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("abc", ',')[0], "abc");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("\t\n x y \r\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
}

}  // namespace
}  // namespace rps
