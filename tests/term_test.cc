#include "rdf/term.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace rps {
namespace {

TEST(TermTest, IriFactory) {
  Term t = Term::Iri("http://example.org/x");
  EXPECT_TRUE(t.is_iri());
  EXPECT_FALSE(t.is_blank());
  EXPECT_FALSE(t.is_literal());
  EXPECT_EQ(t.lexical(), "http://example.org/x");
  EXPECT_EQ(t.ToString(), "<http://example.org/x>");
}

TEST(TermTest, BlankFactory) {
  Term t = Term::Blank("b0");
  EXPECT_TRUE(t.is_blank());
  EXPECT_EQ(t.ToString(), "_:b0");
}

TEST(TermTest, PlainLiteral) {
  Term t = Term::Literal("hello");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.ToString(), "\"hello\"");
  EXPECT_TRUE(t.datatype().empty());
  EXPECT_TRUE(t.lang().empty());
}

TEST(TermTest, TypedLiteral) {
  Term t = Term::TypedLiteral("42", std::string(kXsdInteger));
  EXPECT_EQ(t.ToString(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(TermTest, XsdStringDatatypeIsCanonicalizedAway) {
  // RDF 1.1: a literal typed xsd:string equals the plain literal.
  Term typed = Term::TypedLiteral("x", std::string(kXsdString));
  Term plain = Term::Literal("x");
  EXPECT_EQ(typed, plain);
  EXPECT_EQ(typed.ToString(), "\"x\"");
}

TEST(TermTest, LangLiteral) {
  Term t = Term::LangLiteral("bonjour", "fr");
  EXPECT_EQ(t.ToString(), "\"bonjour\"@fr");
}

TEST(TermTest, LiteralEscapingInToString) {
  Term t = Term::Literal("say \"hi\"\n");
  EXPECT_EQ(t.ToString(), "\"say \\\"hi\\\"\\n\"");
}

TEST(TermTest, EqualityDistinguishesKinds) {
  // Same lexical form, different kinds: all distinct.
  Term iri = Term::Iri("x");
  Term blank = Term::Blank("x");
  Term lit = Term::Literal("x");
  EXPECT_NE(iri, blank);
  EXPECT_NE(iri, lit);
  EXPECT_NE(blank, lit);
}

TEST(TermTest, EqualityDistinguishesLangAndDatatype) {
  EXPECT_NE(Term::LangLiteral("x", "en"), Term::LangLiteral("x", "fr"));
  EXPECT_NE(Term::TypedLiteral("1", std::string(kXsdInteger)),
            Term::Literal("1"));
  EXPECT_NE(Term::LangLiteral("x", "en"), Term::Literal("x"));
}

TEST(TermTest, OrderingIsTotalAndConsistent) {
  std::vector<Term> terms = {
      Term::Iri("a"),           Term::Iri("b"),
      Term::Blank("a"),         Term::Literal("a"),
      Term::LangLiteral("a", "en"),
      Term::TypedLiteral("a", std::string(kXsdInteger)),
  };
  for (const Term& x : terms) {
    EXPECT_FALSE(x < x);
    for (const Term& y : terms) {
      if (x == y) continue;
      EXPECT_NE(x < y, y < x) << x.ToString() << " vs " << y.ToString();
    }
  }
}

TEST(TermTest, HashAgreesWithEquality) {
  TermHash hash;
  EXPECT_EQ(hash(Term::Iri("x")), hash(Term::Iri("x")));
  EXPECT_EQ(hash(Term::LangLiteral("x", "en")),
            hash(Term::LangLiteral("x", "en")));
  std::unordered_set<Term, TermHash> set;
  set.insert(Term::Iri("x"));
  set.insert(Term::Iri("x"));
  set.insert(Term::Blank("x"));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace rps
