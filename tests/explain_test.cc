#include "obs/explain.h"

#include <gtest/gtest.h>

#include "chase/rps_chase.h"
#include "gen/paper_example.h"
#include "obs/metrics.h"

namespace rps {
namespace {

// The chase must report its work through the metrics registry, and the
// registry deltas must agree with the structured RpsChaseStats it returns.
TEST(ChaseInstrumentationTest, RegistryDeltaMatchesChaseStats) {
  PaperExample ex = BuildPaperExample();
  obs::Registry& reg = obs::Registry::Global();
  obs::MetricsSnapshot before = reg.Snapshot();

  Graph universal(ex.system->dict());
  Result<RpsChaseStats> stats = BuildUniversalSolution(*ex.system,
                                                       &universal);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->completed);

  obs::MetricsSnapshot delta = reg.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counter("chase.runs"), 1u);
  EXPECT_EQ(delta.counter("chase.rounds"), stats->rounds);
  EXPECT_EQ(delta.counter("chase.triples_added"), stats->triples_added);
  EXPECT_EQ(delta.counter("chase.nulls_created"), stats->blanks_created);
  EXPECT_EQ(delta.counter("chase.gma_firings"), stats->gma_firings);
  EXPECT_EQ(delta.counter("chase.eq_triples"), stats->eq_triples);
  EXPECT_EQ(delta.counter("chase.term.fixpoint"), 1u);
  EXPECT_EQ(delta.counter("chase.term.budget_exhausted"), 0u);
  // The paper example's one mapping is labelled Q2->Q1; its firings are
  // attributed per mapping.
  EXPECT_EQ(delta.counter("chase.gma_firings{Q2->Q1}"),
            stats->gma_firings);
  // Fig. 1 ground truth: two rounds, two labelled nulls.
  EXPECT_EQ(delta.counter("chase.rounds"), 2u);
  EXPECT_EQ(delta.counter("chase.nulls_created"), 2u);
}

TEST(ExplainTest, ChaseEngineReportCoversAlgorithm1) {
  PaperExample ex = BuildPaperExample();
  Result<ExplainReport> report = ExplainQuery(*ex.system, ex.query);
  ASSERT_TRUE(report.ok()) << report.status();

  // Example 1 has six certain answers.
  EXPECT_EQ(report->answers.size(), 6u);
  EXPECT_EQ(report->chase_stats.rounds, 2u);
  EXPECT_EQ(report->chase_stats.blanks_created, 2u);
  EXPECT_TRUE(report->chase_stats.completed);
  EXPECT_GT(report->universal_solution_size, 0u);

  // The metrics delta is isolated to this query.
  EXPECT_EQ(report->metrics.counter("chase.runs"), 1u);
  EXPECT_EQ(report->metrics.counter("chase.rounds"),
            report->chase_stats.rounds);
  EXPECT_EQ(report->metrics.counter("chase.gma_firings{Q2->Q1}"),
            report->chase_stats.gma_firings);
  EXPECT_GT(report->metrics.counter("eval.pattern_matches"), 0u);

  // The rendered report names the acceptance-critical facts.
  EXPECT_NE(report->text.find("EXPLAIN (engine=chase)"),
            std::string::npos);
  EXPECT_NE(report->text.find("rounds"), std::string::npos);
  EXPECT_NE(report->text.find("facts derived"), std::string::npos);
  EXPECT_NE(report->text.find("nulls created"), std::string::npos);
  EXPECT_NE(report->text.find("per-mapping TGD firings"),
            std::string::npos);
  EXPECT_NE(report->text.find("Q2->Q1"), std::string::npos);

  // The trace tree recorded the chase under the answering span.
  EXPECT_NE(report->trace_text.find("answer.chase"), std::string::npos);
  EXPECT_NE(report->trace_text.find("chase.graph"), std::string::npos);
  EXPECT_NE(report->trace_json.find("\"answer.chase\""),
            std::string::npos);
}

TEST(ExplainTest, RewriteEngineReportCoversProp2) {
  PaperExample ex = BuildPaperExample();
  ExplainOptions options;
  options.engine = ExplainEngine::kRewrite;
  Result<ExplainReport> report = ExplainQuery(*ex.system, ex.query,
                                              options);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->answers.size(), 6u);
  EXPECT_TRUE(report->rewrite_stats.complete);
  EXPECT_GT(report->rewrite_stats.ucq.size(), 0u);
  EXPECT_NE(report->text.find("EXPLAIN (engine=rewrite)"),
            std::string::npos);
  EXPECT_NE(report->text.find("UCQ disjuncts"), std::string::npos);
  EXPECT_EQ(report->metrics.counter("rewrite.runs"), 1u);
  EXPECT_NE(report->trace_text.find("rewrite"), std::string::npos);
}

TEST(ExplainTest, UnionFindEngineAgreesOnAnswers) {
  PaperExample ex = BuildPaperExample();
  ExplainOptions options;
  options.engine = ExplainEngine::kUnionFind;
  Result<ExplainReport> report = ExplainQuery(*ex.system, ex.query,
                                              options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->answers.size(), 6u);
  EXPECT_NE(report->text.find("EXPLAIN (engine=unionfind)"),
            std::string::npos);
  EXPECT_NE(report->trace_text.find("answer.unionfind"),
            std::string::npos);
}

}  // namespace
}  // namespace rps
