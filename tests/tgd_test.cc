#include "tgd/tgd.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

class TgdTest : public ::testing::Test {
 protected:
  TgdTest() {
    tt_ = preds_.Intern("tt", 3);
    rt_ = preds_.Intern("rt", 1);
    x_ = vars_.Intern("x");
    y_ = vars_.Intern("y");
    z_ = vars_.Intern("z");
    a_ = dict_.InternIri("http://x/A");
  }

  Atom TT(AtomArg s, AtomArg p, AtomArg o) {
    return Atom{tt_, {s, p, o}};
  }

  PredTable preds_;
  Dictionary dict_;
  VarPool vars_;
  PredId tt_, rt_;
  VarId x_, y_, z_;
  TermId a_;
};

TEST_F(TgdTest, PredTableInternsByName) {
  EXPECT_EQ(preds_.Intern("tt", 3), tt_);
  EXPECT_EQ(preds_.name(tt_), "tt");
  EXPECT_EQ(preds_.arity(tt_), 3u);
  EXPECT_EQ(preds_.size(), 2u);
}

TEST_F(TgdTest, AtomVars) {
  Atom atom = TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(x_));
  std::vector<VarId> vars = atom.Vars();
  ASSERT_EQ(vars.size(), 1u);  // deduplicated
  EXPECT_EQ(vars[0], x_);
  EXPECT_TRUE(atom.Mentions(x_));
  EXPECT_FALSE(atom.Mentions(y_));
}

TEST_F(TgdTest, VariableClassification) {
  // tt(x, A, z) ∧ tt(z, A, y) → tt(x, A, y): all universal, frontier x,y.
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_)),
              TT(AtomArg::Var(z_), AtomArg::Const(a_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};

  EXPECT_EQ(tgd.UniversalVars(), (std::set<VarId>{x_, y_, z_}));
  EXPECT_EQ(tgd.FrontierVars(), (std::set<VarId>{x_, y_}));
  EXPECT_TRUE(tgd.ExistentialVars().empty());
}

TEST_F(TgdTest, ExistentialVars) {
  // tt(x, A, y) → ∃z tt(x, A, z) ∧ tt(z, A, y)
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_)),
              TT(AtomArg::Var(z_), AtomArg::Const(a_), AtomArg::Var(y_))};
  EXPECT_EQ(tgd.ExistentialVars(), (std::set<VarId>{z_}));
  EXPECT_EQ(tgd.FrontierVars(), (std::set<VarId>{x_, y_}));
}

TEST_F(TgdTest, BodyOccurrences) {
  Tgd tgd;
  tgd.body = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(z_)),
              TT(AtomArg::Var(z_), AtomArg::Const(a_), AtomArg::Var(y_))};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(y_))};
  EXPECT_EQ(tgd.BodyOccurrences(z_), 2u);
  EXPECT_EQ(tgd.BodyOccurrences(x_), 1u);
  EXPECT_EQ(tgd.BodyOccurrences(vars_.Intern("unused")), 0u);
}

TEST_F(TgdTest, ToStringIncludesLabelAndArrow) {
  Tgd tgd;
  tgd.label = "test-tgd";
  tgd.body = {Atom{rt_, {AtomArg::Var(x_)}}};
  tgd.head = {TT(AtomArg::Var(x_), AtomArg::Const(a_), AtomArg::Var(x_))};
  std::string s = ToString(tgd, preds_, dict_, vars_);
  EXPECT_NE(s.find("[test-tgd]"), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
  EXPECT_NE(s.find("rt(?x)"), std::string::npos);
}

}  // namespace
}  // namespace rps
