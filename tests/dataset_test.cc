#include "rdf/dataset.h"

#include <gtest/gtest.h>

namespace rps {
namespace {

TEST(DatasetTest, GetOrCreateIsStable) {
  Dictionary dict;
  Dataset dataset(&dict);
  Graph& a = dataset.GetOrCreate("peer-a");
  Graph& b = dataset.GetOrCreate("peer-a");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(dataset.graphs().size(), 1u);
}

TEST(DatasetTest, FindMissing) {
  Dictionary dict;
  Dataset dataset(&dict);
  EXPECT_EQ(dataset.Find("nope"), nullptr);
  dataset.GetOrCreate("yes");
  EXPECT_NE(dataset.Find("yes"), nullptr);
}

TEST(DatasetTest, MergedUnionsPeerGraphs) {
  Dictionary dict;
  Dataset dataset(&dict);
  TermId s = dict.InternIri("s");
  TermId p = dict.InternIri("p");
  TermId o1 = dict.InternIri("o1");
  TermId o2 = dict.InternIri("o2");

  dataset.GetOrCreate("a").InsertUnchecked(Triple{s, p, o1});
  dataset.GetOrCreate("b").InsertUnchecked(Triple{s, p, o2});
  // Shared triple across peers (schemas need not be disjoint, §2.2).
  dataset.GetOrCreate("b").InsertUnchecked(Triple{s, p, o1});

  Graph merged = dataset.Merged();
  EXPECT_EQ(merged.size(), 2u);           // union collapses the shared triple
  EXPECT_EQ(dataset.TotalTriples(), 3u);  // per-peer total keeps it
}

TEST(DatasetTest, IterationIsNameOrdered) {
  Dictionary dict;
  Dataset dataset(&dict);
  dataset.GetOrCreate("zeta");
  dataset.GetOrCreate("alpha");
  std::vector<std::string> names;
  for (const auto& [name, graph] : dataset.graphs()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace rps
