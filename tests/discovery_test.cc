#include "discovery/discovery.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "peer/certain_answers.h"

namespace rps {
namespace {

LodConfig DiscoveryConfig(uint64_t seed) {
  LodConfig config;
  config.num_peers = 3;
  config.films_per_peer = 12;
  config.actors_per_film = 2;
  config.overlap_fraction = 0.5;
  config.single_triple_dialect = true;
  config.with_attributes = true;
  config.emit_sameas = false;  // truth is hidden from the system
  config.seed = seed;
  return config;
}

TEST(DiscoveryTest, RecoversHiddenSameAsLinksPerfectlyWithoutNoise) {
  std::vector<EquivalenceMapping> truth;
  std::unique_ptr<RpsSystem> sys =
      GenerateLod(DiscoveryConfig(101), nullptr, &truth);
  ASSERT_FALSE(truth.empty());
  ASSERT_TRUE(sys->equivalences().empty());  // nothing registered

  std::vector<EquivalenceCandidate> proposed = DiscoverEquivalences(*sys);
  DiscoveryEvaluation eval = EvaluateEquivalences(proposed, truth);
  // Attribute values are unique per logical entity and shared across all
  // peers, and the ground truth is the generator's full co-reference
  // relation: discovery is exact without noise.
  EXPECT_EQ(eval.recall, 1.0) << "tp=" << eval.true_positives
                              << " fn=" << eval.false_negatives;
  EXPECT_EQ(eval.precision, 1.0) << "fp=" << eval.false_positives;
}

TEST(DiscoveryTest, NoiseLowersRecall) {
  LodConfig clean = DiscoveryConfig(102);
  LodConfig noisy = DiscoveryConfig(102);
  noisy.attribute_noise = 0.6;

  std::vector<EquivalenceMapping> truth_clean, truth_noisy;
  std::unique_ptr<RpsSystem> sys_clean =
      GenerateLod(clean, nullptr, &truth_clean);
  std::unique_ptr<RpsSystem> sys_noisy =
      GenerateLod(noisy, nullptr, &truth_noisy);

  DiscoveryEvaluation eval_clean = EvaluateEquivalences(
      DiscoverEquivalences(*sys_clean), truth_clean);
  DiscoveryEvaluation eval_noisy = EvaluateEquivalences(
      DiscoverEquivalences(*sys_noisy), truth_noisy);
  EXPECT_LT(eval_noisy.recall, eval_clean.recall);
}

TEST(DiscoveryTest, ThresholdTradesPrecisionForRecall) {
  LodConfig config = DiscoveryConfig(103);
  config.attribute_noise = 0.3;
  std::vector<EquivalenceMapping> truth;
  std::unique_ptr<RpsSystem> sys = GenerateLod(config, nullptr, &truth);

  DiscoveryOptions strict;
  strict.min_jaccard = 0.9;
  DiscoveryOptions lax;
  lax.min_jaccard = 0.1;
  std::vector<EquivalenceCandidate> strict_proposals =
      DiscoverEquivalences(*sys, strict);
  std::vector<EquivalenceCandidate> lax_proposals =
      DiscoverEquivalences(*sys, lax);
  // The lax threshold proposes at least as much.
  EXPECT_GE(lax_proposals.size(), strict_proposals.size());
  DiscoveryEvaluation strict_eval =
      EvaluateEquivalences(strict_proposals, truth);
  DiscoveryEvaluation lax_eval = EvaluateEquivalences(lax_proposals, truth);
  EXPECT_GE(lax_eval.recall, strict_eval.recall);
}

TEST(DiscoveryTest, CandidatesAreSortedAndDeterministic) {
  std::unique_ptr<RpsSystem> sys = GenerateLod(DiscoveryConfig(104));
  std::vector<EquivalenceCandidate> a = DiscoverEquivalences(*sys);
  std::vector<EquivalenceCandidate> b = DiscoverEquivalences(*sys);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].left, b[i].left);
    EXPECT_EQ(a[i].right, b[i].right);
    if (i > 0) {
      EXPECT_GE(a[i - 1].score, a[i].score);
    }
  }
}

TEST(DiscoveryTest, StopWordLiteralsAreIgnored) {
  // Two peers where every entity shares one ubiquitous literal: without
  // the frequency cut-off this would propose all-pairs.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId label = dict.InternIri("http://x/label");
  TermId common = dict.InternLiteral("thing");
  Graph& a = sys.AddPeer("a");
  Graph& b = sys.AddPeer("b");
  for (int i = 0; i < 20; ++i) {
    a.InsertUnchecked(Triple{
        dict.InternIri("http://a/e" + std::to_string(i)), label, common});
    b.InsertUnchecked(Triple{
        dict.InternIri("http://b/e" + std::to_string(i)), label, common});
  }
  DiscoveryOptions options;
  options.max_literal_frequency = 10;
  EXPECT_TRUE(DiscoverEquivalences(sys, options).empty());
}

TEST(DiscoveryTest, PropertyAlignmentFindsDialectCorrespondence) {
  // Two peers describing the same pairs under different property names,
  // with shared entity IRIs (so the closure is trivial).
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId acted_in = dict.InternIri("http://a/actedIn");
  TermId appears = dict.InternIri("http://b/appearsIn");
  Graph& a = sys.AddPeer("a");
  Graph& b = sys.AddPeer("b");
  for (int i = 0; i < 6; ++i) {
    TermId person = dict.InternIri("http://shared/p" + std::to_string(i));
    TermId film = dict.InternIri("http://shared/f" + std::to_string(i));
    a.InsertUnchecked(Triple{person, acted_in, film});
    b.InsertUnchecked(Triple{person, appears, film});
  }
  EquivalenceClosure closure({}, dict);
  std::vector<PropertyAlignment> alignments =
      DiscoverPropertyAlignments(sys, closure);
  ASSERT_EQ(alignments.size(), 2u);  // both directions, containment 1.0
  EXPECT_EQ(alignments[0].containment, 1.0);
}

TEST(DiscoveryTest, PropertyAlignmentUsesEquivalenceClosure) {
  // Same as above but with peer-local IRIs related by equivalences: the
  // alignment only becomes visible modulo the closure.
  RpsSystem sys;
  Dictionary& dict = *sys.dict();
  TermId acted_in = dict.InternIri("http://a/actedIn");
  TermId appears = dict.InternIri("http://b/appearsIn");
  Graph& a = sys.AddPeer("a");
  Graph& b = sys.AddPeer("b");
  std::vector<EquivalenceMapping> links;
  for (int i = 0; i < 5; ++i) {
    TermId pa = dict.InternIri("http://a/p" + std::to_string(i));
    TermId pb = dict.InternIri("http://b/p" + std::to_string(i));
    TermId fa = dict.InternIri("http://a/f" + std::to_string(i));
    TermId fb = dict.InternIri("http://b/f" + std::to_string(i));
    a.InsertUnchecked(Triple{pa, acted_in, fa});
    b.InsertUnchecked(Triple{pb, appears, fb});
    links.push_back({pa, pb});
    links.push_back({fa, fb});
  }
  EquivalenceClosure empty_closure({}, dict);
  EXPECT_TRUE(DiscoverPropertyAlignments(sys, empty_closure).empty());

  EquivalenceClosure closure(links, dict);
  std::vector<PropertyAlignment> alignments =
      DiscoverPropertyAlignments(sys, closure);
  EXPECT_EQ(alignments.size(), 2u);
}

TEST(DiscoveryTest, EndToEndDiscoveredSystemAnswersLikeReference) {
  // Build the same data twice: once with generator-provided mappings
  // (reference), once bare + discovery. The discovered system must
  // return at least the reference's certain answers for the demo query
  // (it may add more if discovery finds extra, correct-by-construction
  // co-reference pairs the generator did not link).
  LodConfig config = DiscoveryConfig(105);
  config.num_peers = 2;

  LodConfig reference_config = config;
  reference_config.emit_sameas = true;
  std::unique_ptr<RpsSystem> reference = GenerateLod(reference_config);
  // The reference also needs the property mappings — the generator made
  // them; reuse as-is.
  GraphPatternQuery ref_query = LodDemoQuery(reference.get(), config);
  Result<CertainAnswerResult> ref_answers =
      CertainAnswers(*reference, ref_query);
  ASSERT_TRUE(ref_answers.ok());

  // Bare system: same triples, no mappings at all.
  std::unique_ptr<RpsSystem> bare = GenerateLod(config);
  ASSERT_TRUE(bare->equivalences().empty());
  // Remove the generator's GMAs by rebuilding?? The generator always adds
  // GMAs; emulate "no mappings" by discovering on a fresh system and
  // comparing against the reference modulo the shared GMAs.
  std::vector<EquivalenceCandidate> candidates = DiscoverEquivalences(*bare);
  EquivalenceClosure closure(bare->equivalences(), *bare->dict());
  Result<size_t> added = ApplyDiscovery(bare.get(), candidates, {});
  ASSERT_TRUE(added.ok());
  EXPECT_GT(*added, 0u);

  GraphPatternQuery bare_query = LodDemoQuery(bare.get(), config);
  Result<CertainAnswerResult> bare_answers =
      CertainAnswers(*bare, bare_query);
  ASSERT_TRUE(bare_answers.ok());
  // Every reference answer appears in the discovered system's answers.
  for (const Tuple& t : ref_answers->answers) {
    EXPECT_NE(std::find(bare_answers->answers.begin(),
                        bare_answers->answers.end(), t),
              bare_answers->answers.end());
  }
}

TEST(DiscoveryTest, EvaluationMetrics) {
  std::vector<EquivalenceCandidate> proposed;
  EquivalenceCandidate c;
  c.left = 1;
  c.right = 2;
  proposed.push_back(c);
  c.left = 3;
  c.right = 4;
  proposed.push_back(c);
  // Truth contains (2,1) — reversed orientation — and (5,6).
  std::vector<EquivalenceMapping> truth = {{2, 1}, {5, 6}};
  DiscoveryEvaluation eval = EvaluateEquivalences(proposed, truth);
  EXPECT_EQ(eval.true_positives, 1u);
  EXPECT_EQ(eval.false_positives, 1u);
  EXPECT_EQ(eval.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(eval.precision, 0.5);
  EXPECT_DOUBLE_EQ(eval.recall, 0.5);
}

}  // namespace
}  // namespace rps
