// Randomized parity tests for the permuted sorted triple indexes: the
// Graph's Match / MatchAll / EstimateMatches must agree with a naive
// full-scan oracle on every one of the eight bound/unbound pattern
// shapes, including while inserts interleave with matches (delta-buffer
// path, merges landing mid-stream) and under early-exit callbacks.
//
// Parity is asserted on the *sequence*, not just the set: the index
// contract is that matches are emitted in insertion order, which is what
// keeps chase firing order — and with it certain answers — byte-identical
// to the historical posting-list engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "rdf/graph.h"
#include "util/rng.h"

namespace rps {
namespace {

// Full-scan oracle: matches of the pattern in insertion order.
std::vector<Triple> OracleMatches(const std::vector<Triple>& triples,
                                  std::optional<TermId> s,
                                  std::optional<TermId> p,
                                  std::optional<TermId> o) {
  std::vector<Triple> out;
  for (const Triple& t : triples) {
    if ((!s || t.s == *s) && (!p || t.p == *p) && (!o || t.o == *o)) {
      out.push_back(t);
    }
  }
  return out;
}

struct TermUniverse {
  std::vector<TermId> subjects;
  std::vector<TermId> predicates;
  std::vector<TermId> objects;
};

// Small universes so that patterns frequently hit multi-triple ranges.
TermUniverse MakeUniverse(Dictionary* dict, size_t ns, size_t np, size_t no) {
  TermUniverse u;
  for (size_t i = 0; i < ns; ++i) {
    u.subjects.push_back(dict->InternIri("http://t/s" + std::to_string(i)));
  }
  for (size_t i = 0; i < np; ++i) {
    u.predicates.push_back(dict->InternIri("http://t/p" + std::to_string(i)));
  }
  for (size_t i = 0; i < no; ++i) {
    u.objects.push_back(i % 3 == 0
                            ? dict->InternLiteral("lit" + std::to_string(i))
                            : dict->InternIri("http://t/o" +
                                              std::to_string(i)));
  }
  return u;
}

Triple RandomTriple(Rng* rng, const TermUniverse& u) {
  return Triple{u.subjects[rng->Index(u.subjects.size())],
                u.predicates[rng->Index(u.predicates.size())],
                u.objects[rng->Index(u.objects.size())]};
}

// A pattern for shape mask `shape` (bit 0 = s bound, 1 = p, 2 = o). Keys
// are drawn from the universe, so they may or may not have matches.
void RandomPattern(Rng* rng, const TermUniverse& u, int shape,
                   std::optional<TermId>* s, std::optional<TermId>* p,
                   std::optional<TermId>* o) {
  *s = (shape & 1) != 0
           ? std::optional<TermId>(u.subjects[rng->Index(u.subjects.size())])
           : std::nullopt;
  *p = (shape & 2) != 0
           ? std::optional<TermId>(
                 u.predicates[rng->Index(u.predicates.size())])
           : std::nullopt;
  *o = (shape & 4) != 0
           ? std::optional<TermId>(u.objects[rng->Index(u.objects.size())])
           : std::nullopt;
}

TEST(GraphIndexTest, ParityWithOracleInterleavedInserts) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 37, 7, 23);
  Graph graph(&dict);
  std::vector<Triple> oracle;
  Rng rng(20260806);

  // 2000 inserts force many delta merges (threshold starts at 64); after
  // every small batch, all 8 shapes are compared against the oracle.
  for (int step = 0; step < 200; ++step) {
    for (int b = 0; b < 10; ++b) {
      Triple t = RandomTriple(&rng, u);
      bool was_new = graph.InsertUnchecked(t);
      bool oracle_new =
          std::find(oracle.begin(), oracle.end(), t) == oracle.end();
      ASSERT_EQ(was_new, oracle_new);
      if (was_new) oracle.push_back(t);
    }
    for (int shape = 0; shape < 8; ++shape) {
      std::optional<TermId> s, p, o;
      RandomPattern(&rng, u, shape, &s, &p, &o);
      std::vector<Triple> expected = OracleMatches(oracle, s, p, o);
      // MatchAll: same triples in the same (insertion) order.
      ASSERT_EQ(graph.MatchAll(s, p, o), expected)
          << "shape mask " << shape << " at step " << step;
      // EstimateMatches: exact cardinality for every shape.
      ASSERT_EQ(graph.EstimateMatches(s, p, o), expected.size())
          << "shape mask " << shape << " at step " << step;
    }
  }
  EXPECT_GT(graph.base_size(), 0u);  // merges actually happened
  ASSERT_EQ(graph.size(), oracle.size());
}

TEST(GraphIndexTest, EarlyExitStopsMidSequence) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 11, 3, 7);
  Graph graph(&dict);
  std::vector<Triple> oracle;
  Rng rng(42);
  for (int i = 0; i < 300; ++i) {
    Triple t = RandomTriple(&rng, u);
    if (graph.InsertUnchecked(t)) oracle.push_back(t);
  }

  for (int shape = 0; shape < 8; ++shape) {
    std::optional<TermId> s, p, o;
    RandomPattern(&rng, u, shape, &s, &p, &o);
    std::vector<Triple> expected = OracleMatches(oracle, s, p, o);
    // Stop after k emissions: the emitted prefix must equal the oracle's
    // first k matches, in order.
    for (size_t k : {size_t{0}, size_t{1}, expected.size() / 2}) {
      std::vector<Triple> got;
      graph.Match(s, p, o, [&](const Triple& t) {
        got.push_back(t);
        return got.size() < k;
      });
      if (expected.empty()) {
        EXPECT_TRUE(got.empty());
        continue;
      }
      size_t want = std::max<size_t>(k, 1);  // callback runs once to say stop
      want = std::min(want, expected.size());
      ASSERT_EQ(got.size(), want) << "shape mask " << shape << " k=" << k;
      EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
    }
  }
}

TEST(GraphIndexTest, MatchSupportsFunctionRefAndStdFunction) {
  Dictionary dict;
  Graph graph(&dict);
  TermId s = dict.InternIri("http://t/s");
  TermId p = dict.InternIri("http://t/p");
  TermId o = dict.InternIri("http://t/o");
  graph.InsertUnchecked(Triple{s, p, o});

  // Template (FunctionRef) path: plain lambda, no std::function.
  size_t via_lambda = 0;
  graph.Match(s, std::nullopt, std::nullopt, [&](const Triple&) {
    ++via_lambda;
    return true;
  });
  EXPECT_EQ(via_lambda, 1u);

  // ABI-stable std::function overload.
  size_t via_function = 0;
  std::function<bool(const Triple&)> fn = [&](const Triple&) {
    ++via_function;
    return true;
  };
  graph.Match(s, std::nullopt, std::nullopt, fn);
  EXPECT_EQ(via_function, 1u);
}

TEST(GraphIndexTest, EstimateExactAcrossMergeBoundaries) {
  Dictionary dict;
  TermUniverse u = MakeUniverse(&dict, 10, 3, 10);
  Graph graph(&dict);
  std::vector<Triple> oracle;
  Rng rng(7);
  // Dense universe (300 distinct triples): inserts are mostly duplicates,
  // so the delta crosses the merge threshold slowly — the estimate must
  // stay exact on both sides of every merge.
  size_t last_base = 0;
  size_t merges_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    Triple t = RandomTriple(&rng, u);
    if (graph.InsertUnchecked(t)) oracle.push_back(t);
    if (graph.base_size() != last_base) {
      ++merges_seen;
      last_base = graph.base_size();
    }
    if (i % 97 == 0) {
      for (int shape = 0; shape < 8; ++shape) {
        std::optional<TermId> s, p, o;
        RandomPattern(&rng, u, shape, &s, &p, &o);
        ASSERT_EQ(graph.EstimateMatches(s, p, o),
                  OracleMatches(oracle, s, p, o).size());
      }
    }
  }
  EXPECT_GE(merges_seen, 1u);
  EXPECT_LE(graph.size(), 300u);
}

}  // namespace
}  // namespace rps
