#!/usr/bin/env bash
# check_tsan.sh — run the concurrency-sensitive test suites under
# ThreadSanitizer.
#
# The parallel chase/eval engine (util/thread_pool.h and the
# threads-option paths of rps_chase.cc, eval.cc, federator.cc) and the
# concurrent serving path (rdf/graph.cc snapshot reads vs. appends,
# server/query_server.cc) are only trustworthy if their concurrent
# phases really are data-race free. This script configures the `tsan`
# preset into build-tsan/, builds the suites that exercise them, and
# runs them with TSAN_OPTIONS set to fail on the first report.
#
# Runs as a ctest test (check_tsan, see the top-level CMakeLists.txt);
# also runnable standalone:
#
#   scripts/check_tsan.sh
#
# Exit status: 0 on a clean run, 77 (ctest SKIP_RETURN_CODE) when the
# toolchain cannot produce working TSan binaries, 1 on build failure or
# any race report.

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

build_dir="build-tsan"

# --- Probe: can this toolchain compile, link and run -fsanitize=thread? ---
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cc" <<'EOF'
#include <thread>
int main() {
  int x = 0;
  std::thread t([&] { x = 1; });
  t.join();
  return x - 1;
}
EOF
cxx="${CXX:-c++}"
if ! "$cxx" -fsanitize=thread -g -o "$probe_dir/probe" "$probe_dir/probe.cc" \
      >/dev/null 2>&1; then
  echo "check_tsan: SKIP ($cxx cannot compile/link -fsanitize=thread)"
  exit 77
fi
if ! "$probe_dir/probe" >/dev/null 2>&1; then
  echo "check_tsan: SKIP (TSan runtime does not work on this machine)"
  exit 77
fi

# --- Configure + build the tsan tree. ---
targets=(thread_pool_test rps_chase_test eval_test federation_test
         snapshot_isolation_test query_server_test answer_cache_test
         rewrite_cache_test plan_test trie_iterator_test property_test)

if ! cmake --preset tsan >/dev/null; then
  echo "check_tsan: FAIL (cmake configure of the tsan preset failed)"
  exit 1
fi
if ! cmake --build "$build_dir" -j "$(nproc)" --target "${targets[@]}"; then
  echo "check_tsan: FAIL (tsan build failed)"
  exit 1
fi

# --- Run. halt_on_error turns any race report into a nonzero exit. ---
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

failures=0
for t in thread_pool_test rps_chase_test eval_test federation_test \
         snapshot_isolation_test query_server_test answer_cache_test \
         rewrite_cache_test plan_test trie_iterator_test; do
  echo "check_tsan: running $t"
  if ! "$build_dir/tests/$t" >/dev/null; then
    echo "check_tsan: FAIL ($t reported a race or failed under TSan)"
    failures=$((failures + 1))
  fi
done

# property_test is the expensive suite; only its parallel-parity cases
# stress the pool, so restrict to those.
echo "check_tsan: running property_test --gtest_filter='*Parallel*'"
if ! "$build_dir/tests/property_test" --gtest_filter='*Parallel*' >/dev/null; then
  echo "check_tsan: FAIL (property_test parallel cases under TSan)"
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "check_tsan: $failures suite(s) failed"
  exit 1
fi
echo "check_tsan: OK (no data races in ${#targets[@]} suites)"
