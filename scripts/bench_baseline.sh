#!/usr/bin/env bash
# Runs the whole bench suite at smoke sizes and consolidates every
# harness's METRICS line into one bench/baselines/BENCH_<label>.json —
# a committed per-PR performance baseline and a CI artifact.
#
# Usage:
#   scripts/bench_baseline.sh [--label L] [--n N] [--build-dir DIR] [--out DIR]
#
#   --label L      baseline name (default: current git short SHA)
#   --n N          scale knob passed to every harness (default: 8)
#   --build-dir D  reuse an existing build tree (skips configure+build);
#                  otherwise the release preset is configured and built
#   --out D        output directory (default: bench/baselines)
set -euo pipefail

cd "$(dirname "$0")/.."

label="$(git rev-parse --short HEAD 2>/dev/null || echo local)"
n=8
build_dir=""
out_dir="bench/baselines"
while [ $# -gt 0 ]; do
  case "$1" in
    --label) label="$2"; shift 2 ;;
    --n) n="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out_dir="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [ -z "$build_dir" ]; then
  build_dir="build-release"
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$(nproc)" >/dev/null
fi

bench_dir="$build_dir/bench"
[ -d "$bench_dir" ] || { echo "no bench dir at $bench_dir" >&2; exit 1; }

mkdir -p "$out_dir"
out_file="$out_dir/BENCH_${label}.json"
tmp_metrics="$(mktemp)"
trap 'rm -f "$tmp_metrics"' EXIT

for b in "$bench_dir"/*; do
  [ -x "$b" ] || continue
  name="$(basename "$b")"
  # bench_microbench is a Google Benchmark binary: it rejects foreign
  # flags, so it runs bare (its benchmarks are already micro-sized).
  if [ "$name" = bench_microbench ]; then
    "$b" --benchmark_min_time=0.01 > /dev/null
    continue
  fi
  echo "== $name --n=$n" >&2
  # Not every harness publishes METRICS; a missing line is not an error,
  # but a non-zero harness exit is.
  "$b" --n="$n" \
    | { grep '^METRICS ' || true; } \
    | sed 's/^METRICS //' >> "$tmp_metrics"
done

{
  printf '{\n  "label": "%s",\n  "n": %s,\n  "runs": [\n' "$label" "$n"
  sed '$!s/$/,/; s/^/    /' "$tmp_metrics"
  printf '  ]\n}\n'
} > "$out_file"

echo "wrote $out_file ($(grep -c '"tag"' "$out_file") runs)"
