#!/usr/bin/env python3
"""Compare a fresh bench baseline against a committed one and gate CI.

Usage:
    scripts/bench_compare.py BASELINE CANDIDATE [--out DIFF]

BASELINE and CANDIDATE are BENCH_<label>.json files produced by
scripts/bench_baseline.sh. Both must have been collected at the same
scale knob (`n`) — comparing different sizes is meaningless, so a
mismatch is an error, not a warning.

Gated keys are the *ratio counters*: counter names ending in `_x` or
`_pct` (e.g. bench.persistence.load_speedup_x, the cold-start speedup of
a mapped snapshot load over an N-Triples re-parse). They are
higher-is-better by convention (bench/bench_util.h) and dimensionless,
so they are stable across runner hardware in a way raw microsecond
counters are not. A gated key fails when it drops by more than 25% of
the committed value; small ratios get an absolute slack of 5 so a
12-vs-14 jitter cannot flake the gate:

    fail  iff  (base - new) > max(0.25 * base, 5)

In addition to counters published with a ratio suffix, hit ratios are
*derived* from raw instrument pairs: any `<base>.hits` / `<base>.misses`
counter pair (labeled dimensions included, e.g. `cache.hits{answer}`)
yields a synthetic `<base>.hit_pct` gated exactly like a published ratio
counter — so a change that silently tanks the answer-cache hit rate
fails the gate even though the cache only exports raw hit/miss counts.
Pairs with fewer than MIN_RATIO_SAMPLES lookups are skipped as noise.

Improvements are reported too: a gated counter that *rises* past the
same (symmetric) threshold is tagged `IMP` in the diff and summarized at
the end of the report — so a PR that speeds a workload up leaves an
auditable trace in the CI artifact, and a stale committed baseline
(fresh runs persistently far above it) is visible at a glance.
Improvements never affect the exit status.

Everything else — non-ratio counters drifting, keys missing on either
side — is reported as a warning in the diff but does not fail the run.

Exit status: 0 clean, 1 regression, 2 usage/input error.
"""

import argparse
import json
import sys

# A gated ratio counter fails when it drops by more than this fraction
# of the committed value...
REL_TOLERANCE = 0.25
# ...with at least this much absolute slack, so small ratios (a mapped
# match percentage of ~13) can jitter by a point or two without flaking.
ABS_SLACK = 5.0


# Derived hit ratios over fewer lookups than this are statistical noise
# and are not gated.
MIN_RATIO_SAMPLES = 20


def is_ratio_counter(name: str) -> bool:
    base = name.partition("{")[0]  # `cache.hit_pct{answer}` is a ratio too
    return base.endswith("_x") or base.endswith("_pct")


def derive_hit_ratios(counters: dict) -> dict:
    """Synthesizes `<base>.hit_pct` from `<base>.hits`/`<base>.misses`.

    Handles labeled dimensions: `cache.hits{answer}` pairs with
    `cache.misses{answer}` and derives `cache.hit_pct{answer}`.
    """
    derived = {}
    for name, hits in counters.items():
        base, sep, label = name.partition("{")
        if not base.endswith(".hits"):
            continue
        stem = base[:-len(".hits")]
        miss_key = stem + ".misses" + (sep + label if sep else "")
        if miss_key not in counters:
            continue
        total = float(hits) + float(counters[miss_key])
        if total < MIN_RATIO_SAMPLES:
            continue
        out_key = stem + ".hit_pct" + (sep + label if sep else "")
        derived[out_key] = 100.0 * float(hits) / total
    return derived


def load_baseline(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for key in ("label", "n", "runs"):
        if key not in doc:
            print(f"error: {path} is not a bench baseline (missing '{key}')",
                  file=sys.stderr)
            sys.exit(2)
    return doc


def counters_by_tag(doc: dict) -> dict:
    out = {}
    for run in doc["runs"]:
        counters = dict(run.get("counters", {}))
        # Fold in the synthetic ratios so the gating loop below treats
        # them exactly like published *_pct counters.
        counters.update(derive_hit_ratios(counters))
        out[run.get("tag", "?")] = counters
    return out


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Gate CI on bench ratio-counter regressions.")
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("candidate", help="freshly collected BENCH_*.json")
    parser.add_argument("--out", help="also write the diff report here")
    args = parser.parse_args()

    base = load_baseline(args.baseline)
    cand = load_baseline(args.candidate)
    if base["n"] != cand["n"]:
        print(f"error: scale mismatch: baseline n={base['n']} vs "
              f"candidate n={cand['n']} — rerun bench_baseline.sh with "
              f"--n {base['n']}", file=sys.stderr)
        sys.exit(2)

    base_tags = counters_by_tag(base)
    cand_tags = counters_by_tag(cand)

    lines = [f"bench compare: {base['label']} (committed) vs "
             f"{cand['label']} (fresh), n={base['n']}"]
    failures = []
    improvements = []
    warnings = []

    for tag in sorted(base_tags):
        if tag not in cand_tags:
            warnings.append(f"[warn] harness '{tag}' missing from candidate")
            continue
        bc, cc = base_tags[tag], cand_tags[tag]
        for name in sorted(bc):
            if not is_ratio_counter(name):
                continue
            if name not in cc:
                warnings.append(f"[warn] {tag}: gated key '{name}' missing "
                                f"from candidate")
                continue
            b, c = float(bc[name]), float(cc[name])
            drop = b - c
            allowed = max(REL_TOLERANCE * b, ABS_SLACK)
            if drop > allowed:
                verdict = "FAIL"
                failures.append(f"{tag}: {name} regressed {b:g} -> {c:g}")
            elif -drop > allowed:
                verdict = "IMP"
                improvements.append(f"{tag}: {name} improved {b:g} -> {c:g}")
            else:
                verdict = "ok"
            lines.append(f"[{verdict:>4}] {tag}: {name} {b:g} -> {c:g} "
                         f"(drop {drop:+g}, allowed {allowed:g})")

    for tag in sorted(cand_tags):
        if tag not in base_tags:
            warnings.append(f"[info] new harness '{tag}' not in committed "
                            f"baseline — commit a regenerated baseline to "
                            f"gate it")

    lines.extend(warnings)
    if improvements:
        lines.append(f"IMPROVED: {len(improvements)} gated counter(s) rose "
                     f"past tolerance — consider committing a regenerated "
                     f"baseline so the gains are locked in")
        for i in improvements:
            lines.append(f"  + {i}")
    if failures:
        lines.append(f"REGRESSION: {len(failures)} gated counter(s) fell "
                     f"past tolerance")
        for f in failures:
            lines.append(f"  - {f}")
    else:
        lines.append("all gated ratio counters within tolerance")

    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
