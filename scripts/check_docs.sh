#!/usr/bin/env bash
# check_docs.sh — keep the documentation honest.
#
# Extracts every `rps::`-qualified symbol mentioned inside fenced code
# blocks of README.md and docs/*.md, and verifies that each component of
# the qualified name (class, function, method — after stripping the
# rps:: / rps::obs:: namespace prefix) exists somewhere in the library
# headers under src/. A doc that references a renamed or deleted symbol
# fails the check, so the docs cannot silently rot as the API evolves.
#
# Runs as a ctest test (see the top-level CMakeLists.txt); also runnable
# standalone:
#
#   scripts/check_docs.sh            # check the repo the script lives in
#
# Exit status: 0 when every symbol resolves, 1 otherwise.

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

docs=(README.md docs/*.md)

headers_index="$(mktemp)"
trap 'rm -f "$headers_index"' EXIT
find src -name '*.h' -exec cat {} + > "$headers_index"

failures=0
checked=0

for doc in "${docs[@]}"; do
  [ -f "$doc" ] || continue

  # Lines inside ``` fences only — prose may name concepts loosely, but
  # code blocks must reference the real API.
  symbols="$(awk '/^[[:space:]]*```/ { fence = !fence; next } fence' "$doc" |
      grep -oE 'rps(::[A-Za-z_][A-Za-z0-9_]*)+' | sort -u)"

  for qualified in $symbols; do
    # rps::obs::Registry::Global -> "Registry Global" etc.; namespace
    # segments rps / obs are part of the prefix, not symbols to check.
    components="$(printf '%s' "$qualified" | sed 's/::/ /g')"
    for component in $components; do
      case "$component" in
        rps|obs) continue ;;
      esac
      checked=$((checked + 1))
      if ! grep -qw "$component" "$headers_index"; then
        echo "FAIL: $doc references $qualified but '$component' is not" \
             "declared in any header under src/"
        failures=$((failures + 1))
      fi
    done
  done
done

if [ "$failures" -ne 0 ]; then
  echo "check_docs: $failures unresolved symbol component(s)"
  exit 1
fi
echo "check_docs: OK ($checked symbol components verified against src headers)"
