#!/usr/bin/env bash
# check_docs.sh — keep the documentation honest.
#
# Three checks:
#
# 1. Extracts every `rps::`-qualified symbol mentioned inside fenced
#    code blocks of README.md and docs/*.md, and verifies that each
#    component of the qualified name (class, function, method — after
#    stripping the rps:: / rps::obs:: namespace prefix) exists somewhere
#    in the library headers under src/. A doc that references a renamed
#    or deleted symbol fails the check, so the docs cannot silently rot
#    as the API evolves.
# 2. Every metric name registered with a string literal in src/
#    (`counter("...")` / `gauge("...")` / `histogram("...")`) must appear in the
#    docs/OBSERVABILITY.md catalog, either verbatim or covered by a
#    documented wildcard entry such as `relchase.*`. A new instrument
#    without a catalog row fails the check.
# 3. Every relative markdown link in README.md and docs/*.md must point
#    at a file that exists — renaming a doc without fixing the links
#    that reach it fails the check.
#
# Runs as a ctest test (see the top-level CMakeLists.txt); also runnable
# standalone:
#
#   scripts/check_docs.sh            # check the repo the script lives in
#
# Exit status: 0 when every symbol resolves, 1 otherwise.

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

docs=(README.md docs/*.md)

headers_index="$(mktemp)"
trap 'rm -f "$headers_index"' EXIT
find src -name '*.h' -exec cat {} + > "$headers_index"

failures=0
checked=0

for doc in "${docs[@]}"; do
  [ -f "$doc" ] || continue

  # Lines inside ``` fences only — prose may name concepts loosely, but
  # code blocks must reference the real API.
  symbols="$(awk '/^[[:space:]]*```/ { fence = !fence; next } fence' "$doc" |
      grep -oE 'rps(::[A-Za-z_][A-Za-z0-9_]*)+' | sort -u)"

  for qualified in $symbols; do
    # rps::obs::Registry::Global -> "Registry Global" etc.; namespace
    # segments rps / obs are part of the prefix, not symbols to check.
    components="$(printf '%s' "$qualified" | sed 's/::/ /g')"
    for component in $components; do
      case "$component" in
        rps|obs) continue ;;
      esac
      checked=$((checked + 1))
      if ! grep -qw "$component" "$headers_index"; then
        echo "FAIL: $doc references $qualified but '$component' is not" \
             "declared in any header under src/"
        failures=$((failures + 1))
      fi
    done
  done
done

# ---- Check 2: every registered metric is in the OBSERVABILITY catalog ----
#
# Only full-string-literal registrations are checked: dynamically built
# names (e.g. counter("chase.gma_firings{" + label + "}")) are covered
# by their documented wildcard / templated forms.
catalog=docs/OBSERVABILITY.md
wildcards="$(grep -oE '`[a-z_.]+\.\*`' "$catalog" | tr -d '\`' | sed 's/\.\*$/./' | sort -u)"
metrics="$(grep -rhoE '(counter|gauge|histogram)\("[^"]+"\)' src/ |
    sed -E 's/^(counter|gauge|histogram)\("//; s/"\)$//' | sort -u)"
for metric in $metrics; do
  checked=$((checked + 1))
  if grep -qF "$metric" "$catalog"; then continue; fi
  covered=0
  for prefix in $wildcards; do
    case "$metric" in
      "$prefix"*) covered=1; break ;;
    esac
  done
  if [ "$covered" -eq 0 ]; then
    echo "FAIL: metric '$metric' is registered in src/ but missing from" \
         "the $catalog instrument catalog"
    failures=$((failures + 1))
  fi
done

# ---- Check 3: every relative markdown cross-link resolves ----
for doc in "${docs[@]}"; do
  [ -f "$doc" ] || continue
  doc_dir="$(dirname "$doc")"
  links="$(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//; s/#.*$//' |
      grep -v '^$' | grep -vE '^[a-z]+://' | sort -u)"
  for link in $links; do
    # Links that resolve outside the repo tree are GitHub web-UI paths
    # (e.g. the ../../actions/... badge links) — not files to check.
    resolved="$(realpath -m "$doc_dir/$link")"
    case "$resolved" in
      "$repo_root"/*) ;;
      *) continue ;;
    esac
    checked=$((checked + 1))
    if [ ! -e "$doc_dir/$link" ] && [ ! -e "$link" ]; then
      echo "FAIL: $doc links to '$link' which does not exist"
      failures=$((failures + 1))
    fi
  done
done

if [ "$failures" -ne 0 ]; then
  echo "check_docs: $failures documentation failure(s)"
  exit 1
fi
echo "check_docs: OK ($checked symbols, metrics and links verified)"
