#ifndef RPS_OBS_EXPLAIN_H_
#define RPS_OBS_EXPLAIN_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "peer/certain_answers.h"
#include "query/plan.h"
#include "rewrite/bool_rewrite.h"

namespace rps {

/// Which answering engine ExplainQuery drives. Mirrors the engines of
/// docs/QUERYING.md; the report's contents depend on the choice (chase
/// engines report Algorithm 1 statistics, the rewrite engine reports
/// Prop. 2 UCQ statistics — both report the metrics delta and the trace).
enum class ExplainEngine {
  kChase,      // Algorithm 1, naive equivalence chasing
  kUnionFind,  // Algorithm 1 over clique-canonicalized data
  kRewrite,    // Prop. 2 UCQ rewriting evaluated over the sources
};

struct ExplainOptions {
  ExplainEngine engine = ExplainEngine::kChase;
  CertainAnswerOptions chase;
  RpsRewriteOptions rewrite;
};

/// An EXPLAIN-style report: the certain answers of one query plus every
/// observability signal the run produced — the structured statistics of
/// the engine, the obs::Registry metrics delta isolated to this run (so
/// per-mapping firing counts and evaluator work are attributable), and
/// the rendered trace span tree.
struct ExplainReport {
  std::vector<Tuple> answers;
  /// Whether `answers` is the full certain-answer set or a sound subset
  /// (kPartialSound when the rewrite engine exhausted its budget —
  /// Prop. 3 territory). The chase engines are always complete; the
  /// federated executor reports the same marker on
  /// FederatedQueryResult.
  Completeness completeness = Completeness::kComplete;
  /// Algorithm 1 statistics (kChase / kUnionFind engines).
  RpsChaseStats chase_stats;
  size_t universal_solution_size = 0;
  /// The cost-based join plan of the final query-over-universal-solution
  /// evaluation (kChase / kUnionFind engines; empty for kRewrite and for
  /// single-run queries that never evaluated a BGP). Estimated and actual
  /// per-step cardinalities are both filled in.
  QueryPlan plan;
  /// Rewriting statistics (kRewrite engine).
  RewriteResult rewrite_stats;
  /// Metrics delta attributable to this run (global registry).
  obs::MetricsSnapshot metrics;
  /// Rendered span tree of the run.
  std::string trace_text;
  std::string trace_json;
  /// The full human-readable report (what `rps_shell --explain` prints):
  /// engine, answer count, chase rounds / facts derived / nulls created,
  /// per-mapping TGD firing counts, evaluator and rewriter metrics, trace.
  std::string text;
};

/// Answers `query` over `system` with the chosen engine while collecting
/// metrics and trace spans, and renders the report. Uses the global
/// metrics registry: concurrent unrelated work would bleed into the delta
/// (the report is exact when the process runs one query at a time, which
/// is how rps_shell and the benches use it).
Result<ExplainReport> ExplainQuery(const RpsSystem& system,
                                   const GraphPatternQuery& query,
                                   const ExplainOptions& options =
                                       ExplainOptions());

}  // namespace rps

#endif  // RPS_OBS_EXPLAIN_H_
