#ifndef RPS_OBS_TRACE_H_
#define RPS_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rps::obs {

using SpanId = size_t;
inline constexpr SpanId kNoSpan = static_cast<SpanId>(-1);

/// A read-only copy of one finished (or still-open) span.
struct SpanView {
  std::string name;
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  double start_ms = 0.0;     // relative to the tracer's epoch
  double duration_ms = 0.0;  // elapsed-so-far when still open
  bool open = false;
  std::vector<std::pair<std::string, std::string>> notes;
};

/// A thread-safe hierarchical span collector. Spans form a tree under an
/// implicit root created at construction; StartSpan/EndSpan may be called
/// from any thread. Typical use is through AutoSpan + TraceScope: library
/// code opens spans on the calling thread's *ambient* tracer (a no-op
/// when none is active), so instrumentation costs one thread-local read
/// unless a report was requested.
class Tracer {
 public:
  explicit Tracer(std::string root_name = "trace");

  /// Opens a span. `parent == kNoSpan` parents to the root.
  SpanId StartSpan(std::string name, SpanId parent = kNoSpan);
  void EndSpan(SpanId id);

  /// Attaches a key/value note to a span (shown by the reporters).
  void Annotate(SpanId id, std::string key, std::string value);

  SpanId root() const { return 0; }
  size_t SpanCount() const;
  std::vector<SpanView> Spans() const;

  /// Indented tree rendering:
  ///   trace                     12.3ms
  ///     chase                   11.0ms  rounds=3
  std::string ReportText(const std::string& indent = "") const;

  /// Nested JSON: {"name":..,"duration_ms":..,"notes":{..},"children":[..]}
  std::string ReportJson() const;

  /// The calling thread's ambient tracer (nullptr when none). Managed by
  /// TraceScope.
  static Tracer* Active();

 private:
  friend class TraceScope;
  friend class AutoSpan;

  struct SpanRec {
    std::string name;
    SpanId parent = kNoSpan;
    double start_ms = 0.0;
    double end_ms = -1.0;  // -1 = still open
    std::vector<std::pair<std::string, std::string>> notes;
    std::vector<SpanId> children;
  };

  double NowMs() const;

  mutable std::mutex mu_;
  std::vector<SpanRec> spans_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII: makes `tracer` the calling thread's ambient tracer for the
/// scope's lifetime (restoring the previous one on exit). Each thread
/// that should contribute spans needs its own TraceScope.
class TraceScope {
 public:
  explicit TraceScope(Tracer* tracer);
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

 private:
  Tracer* previous_;
  std::vector<SpanId> previous_stack_;
};

/// RAII span on the calling thread's ambient tracer; a no-op when none is
/// active. Nested AutoSpans on the same thread form parent/child edges.
class AutoSpan {
 public:
  explicit AutoSpan(std::string_view name);
  AutoSpan(const AutoSpan&) = delete;
  AutoSpan& operator=(const AutoSpan&) = delete;
  ~AutoSpan();

  void Annotate(std::string key, std::string value);
  void Annotate(std::string key, uint64_t value) {
    Annotate(std::move(key), std::to_string(value));
  }

  bool active() const { return tracer_ != nullptr; }
  SpanId id() const { return id_; }

 private:
  Tracer* tracer_;
  SpanId id_ = kNoSpan;
};

}  // namespace rps::obs

#endif  // RPS_OBS_TRACE_H_
