#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rps::obs {

namespace {

// Shortest round-trippable rendering of a double for the JSON reporter.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// JSON string escaping for instrument names (labels may contain quotes).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

size_t BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  size_t idx = 1 + static_cast<size_t>(std::floor(std::log2(value)));
  return std::min(idx, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.count == 0) {
    stats_.min = value;
    stats_.max = value;
  } else {
    stats_.min = std::min(stats_.min, value);
    stats_.max = std::max(stats_.max, value);
  }
  ++stats_.count;
  stats_.sum += value;
  ++buckets_[BucketIndex(value)];
}

HistogramStats Histogram::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t Histogram::BucketCount(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return i < kBuckets ? buckets_[i] : 0;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // The rank of the q-th sample (1-based), then the bucket holding it.
  uint64_t target = static_cast<uint64_t>(std::ceil(q * stats_.count));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cum + buckets_[i] < target) {
      cum += buckets_[i];
      continue;
    }
    // Interpolate within [lo, hi): bucket 0 is [0,1), bucket i is
    // [2^(i-1), 2^i). Clamp to the observed min/max so single-sample
    // buckets report the true extreme rather than a bucket edge.
    double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
    double hi = i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
    double frac = static_cast<double>(target - cum) / buckets_[i];
    double value = lo + (hi - lo) * frac;
    return std::min(stats_.max, std::max(stats_.min, value));
  }
  return stats_.max;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = HistogramStats{};
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
}

ScopedTimerMs::~ScopedTimerMs() {
  auto now = std::chrono::steady_clock::now();
  hist_->Record(
      std::chrono::duration<double, std::milli>(now - start_).count());
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    uint64_t prior = it == before.counters.end() ? 0 : it->second;
    if (value > prior) delta.counters.emplace(name, value - prior);
  }
  for (const auto& [name, value] : gauges) {
    if (value != 0) delta.gauges.emplace(name, value);
  }
  for (const auto& [name, stats] : histograms) {
    auto it = before.histograms.find(name);
    HistogramStats d = stats;
    if (it != before.histograms.end()) {
      d.count = stats.count - std::min(stats.count, it->second.count);
      d.sum = stats.sum - it->second.sum;
    }
    if (d.count > 0) delta.histograms.emplace(name, d);
  }
  return delta;
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::gauge(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

std::string MetricsSnapshot::ToText(const std::string& indent) const {
  size_t width = 0;
  for (const auto& [name, value] : counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : gauges) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, stats] : histograms) {
    width = std::max(width, name.size());
  }
  std::string out;
  for (const auto& [name, value] : counters) {
    out += indent + name + std::string(width - name.size() + 2, ' ') +
           std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += indent + name + std::string(width - name.size() + 2, ' ') +
           std::to_string(value) + "\n";
  }
  for (const auto& [name, stats] : histograms) {
    // The `_ms` name suffix is the unit convention; other histograms are
    // plain value distributions.
    const char* unit =
        name.size() >= 3 && name.compare(name.size() - 3, 3, "_ms") == 0
            ? "ms"
            : "";
    out += indent + name + std::string(width - name.size() + 2, ' ') +
           "count=" + std::to_string(stats.count) +
           " sum=" + FormatDouble(stats.sum) + unit +
           " mean=" + FormatDouble(stats.mean()) + unit +
           " min=" + FormatDouble(stats.min) + unit +
           " max=" + FormatDouble(stats.max) + unit + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":{\"count\":" + std::to_string(stats.count) +
           ",\"sum\":" + FormatDouble(stats.sum) +
           ",\"mean\":" + FormatDouble(stats.mean()) +
           ",\"min\":" + FormatDouble(stats.min) +
           ",\"max\":" + FormatDouble(stats.max) + "}";
  }
  out += "}}";
  return out;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaked: outlives statics
  return *instance;
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace(name, hist->Stats());
  }
  return snap;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::string WithLabel(std::string_view base, std::string_view label) {
  std::string out;
  out.reserve(base.size() + label.size() + 2);
  out.append(base);
  out += '{';
  out.append(label);
  out += '}';
  return out;
}

}  // namespace rps::obs
