#include "obs/explain.h"

#include <utility>

#include "obs/trace.h"

namespace rps {

namespace {

const char* EngineName(ExplainEngine engine) {
  switch (engine) {
    case ExplainEngine::kChase:
      return "chase";
    case ExplainEngine::kUnionFind:
      return "unionfind";
    case ExplainEngine::kRewrite:
      return "rewrite";
  }
  return "?";
}

// The labelled counters `prefix{<label>}` of the delta, rendered as
// "<label>: <value>" lines (empty string when none fired). The unlabelled
// aggregate `prefix` itself is skipped.
std::string CounterLines(const obs::MetricsSnapshot& delta,
                         const std::string& prefix,
                         const std::string& indent) {
  std::string out;
  for (const auto& [name, value] : delta.counters) {
    if (name.rfind(prefix, 0) != 0) continue;
    std::string rest = name.substr(prefix.size());
    if (rest.size() < 2 || rest.front() != '{' || rest.back() != '}') {
      continue;
    }
    rest = rest.substr(1, rest.size() - 2);
    out += indent + rest + ": " + std::to_string(value) + "\n";
  }
  return out;
}

std::string RenderReport(const RpsSystem& system, const ExplainReport& report,
                         const ExplainOptions& options) {
  std::string out;
  out += "EXPLAIN (engine=" + std::string(EngineName(options.engine)) +
         ")\n";
  out += "answers: " + std::to_string(report.answers.size()) + " row(s)\n";
  out += "completeness: " + std::string(ToString(report.completeness)) +
         "\n";

  if (options.engine != ExplainEngine::kRewrite) {
    const RpsChaseStats& cs = report.chase_stats;
    out += "\nchase (Algorithm 1)\n";
    out += "  rounds             : " + std::to_string(cs.rounds) + "\n";
    out += "  facts derived      : " + std::to_string(cs.triples_added) +
           " triple(s) beyond the stored database\n";
    out += "  nulls created      : " + std::to_string(cs.blanks_created) +
           " labelled null(s)\n";
    out += "  GMA firings        : " + std::to_string(cs.gma_firings) + "\n";
    out += "  equivalence copies : " + std::to_string(cs.eq_triples) + "\n";
    out += "  universal solution : " +
           std::to_string(report.universal_solution_size) + " triple(s)\n";
    out += "  completed          : ";
    out += cs.completed ? "yes (fixpoint)" : "no (budget exhausted)";
    out += "\n";
    std::string per_mapping =
        CounterLines(report.metrics, "chase.gma_firings", "    ");
    if (!per_mapping.empty()) {
      out += "  per-mapping TGD firings:\n" + per_mapping;
    }
    if (!report.plan.steps.empty()) {
      out += "\nquery plan (final query over the universal solution)\n";
      out += RenderPlan(report.plan, system.dict(), system.vars());
    }
  } else {
    const RewriteResult& rs = report.rewrite_stats;
    out += "\nrewriting (Prop. 2 UCQ)\n";
    out += "  steps              : " + std::to_string(rs.steps) + "\n";
    out += "  CQs generated      : " + std::to_string(rs.generated) + "\n";
    out += "  factorization hits : " + std::to_string(rs.factorized) + "\n";
    out += "  pruned (subsumed)  : " + std::to_string(rs.pruned) + "\n";
    out += "  UCQ disjuncts      : " + std::to_string(rs.ucq.size()) + "\n";
    out += "  perfect rewriting  : ";
    out += rs.complete ? "yes (fixpoint within budget)"
                       : "no (budget exhausted - Prop. 3 territory)";
    out += "\n";
  }

  out += "\nmetrics (delta for this query)\n";
  out += report.metrics.ToText("  ");
  out += "\ntrace\n";
  out += report.trace_text;
  return out;
}

}  // namespace

Result<ExplainReport> ExplainQuery(const RpsSystem& system,
                                   const GraphPatternQuery& query,
                                   const ExplainOptions& options) {
  ExplainReport report;
  obs::Registry& reg = obs::Registry::Global();
  obs::MetricsSnapshot before = reg.Snapshot();

  obs::Tracer tracer("explain");
  // Per-query capture slot: owned by this EXPLAIN invocation, so any
  // number of concurrent EXPLAINs publish into their own slots.
  PlanCapture plan_capture;
  {
    obs::TraceScope scope(&tracer);
    switch (options.engine) {
      case ExplainEngine::kChase:
      case ExplainEngine::kUnionFind: {
        CertainAnswerOptions chase_options = options.chase;
        chase_options.chase.eval.plan_capture = &plan_capture;
        chase_options.equivalence_mode =
            options.engine == ExplainEngine::kChase
                ? EquivalenceMode::kChase
                : EquivalenceMode::kUnionFind;
        RPS_ASSIGN_OR_RETURN(CertainAnswerResult result,
                             CertainAnswers(system, query, chase_options));
        report.answers = std::move(result.answers);
        report.chase_stats = result.chase_stats;
        report.universal_solution_size = result.universal_solution_size;
        report.completeness = result.completeness;
        break;
      }
      case ExplainEngine::kRewrite: {
        RPS_ASSIGN_OR_RETURN(
            RewriteAnswers result,
            CertainAnswersViaRewriting(system, query, options.rewrite));
        report.answers = std::move(result.answers);
        report.rewrite_stats = std::move(result.stats);
        report.completeness = report.rewrite_stats.complete
                                  ? Completeness::kComplete
                                  : Completeness::kPartialSound;
        break;
      }
    }
  }

  if (plan_capture.has_plan()) report.plan = plan_capture.Take();
  report.metrics = reg.Snapshot().DeltaSince(before);
  report.trace_text = tracer.ReportText("  ");
  report.trace_json = tracer.ReportJson();
  report.text = RenderReport(system, report, options);
  return report;
}

}  // namespace rps
