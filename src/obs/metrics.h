#ifndef RPS_OBS_METRICS_H_
#define RPS_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace rps::obs {

/// A monotonic counter. Increments are relaxed atomics: safe to bump from
/// any thread, cheap enough for the chase / evaluation hot paths. Counters
/// only ever grow between Reset() calls, so snapshot deltas are exact.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level (queue depth, in-flight queries, latest
/// quantile estimate). Unlike a Counter it can go down; snapshots copy
/// the current value rather than accumulate. Relaxed atomics — gauges
/// are advisory observability, never synchronization.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Aggregate view of a Histogram (also the unit stored in snapshots).
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // undefined when count == 0
  double max = 0.0;
  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// A thread-safe histogram of non-negative samples — typically durations
/// in milliseconds. Buckets are powers of two: bucket 0 holds samples
/// < 1, bucket i holds [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(double value);
  HistogramStats Stats() const;
  /// Number of samples in bucket `i` (see class comment for boundaries).
  uint64_t BucketCount(size_t i) const;
  /// Estimated value at quantile `q` in [0,1] by linear interpolation
  /// inside the power-of-two bucket holding the q-th sample. Exact at the
  /// resolution of the buckets (a factor of 2); 0 when empty.
  double Quantile(double q) const;
  void Reset();

 private:
  mutable std::mutex mu_;
  HistogramStats stats_;
  uint64_t buckets_[kBuckets] = {};
};

/// RAII wall-clock timer recording elapsed milliseconds into a Histogram.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;
  ~ScopedTimerMs();

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// A point-in-time copy of every registered instrument. Snapshots are
/// plain values: diff two of them to isolate the cost of one operation.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// This snapshot minus `before` (counter-wise subtraction; histogram
  /// count/sum subtract, min/max are taken from `this`). Zero-valued
  /// entries are dropped, so a delta reports only what the measured
  /// operation actually touched. Gauges are levels, not accumulations:
  /// the delta keeps this snapshot's nonzero gauge values as-is.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;

  /// Value of one counter (0 when absent — instruments register lazily).
  uint64_t counter(std::string_view name) const;

  /// Value of one gauge (0 when absent).
  int64_t gauge(std::string_view name) const;

  /// Aligned human-readable rendering, one instrument per line, with an
  /// optional indent prefix.
  std::string ToText(const std::string& indent = "") const;

  /// Compact single-line JSON object:
  ///   {"counters":{...},"histograms":{"name":{"count":..,"sum":..}}}
  std::string ToJson() const;
};

/// The thread-safe instrument registry. Instruments are created lazily on
/// first access and live for the registry's lifetime: Reset() zeroes
/// values but never invalidates returned pointers, so hot paths may cache
/// them (e.g. in function-local statics).
///
/// Naming scheme (docs/OBSERVABILITY.md): dotted lower_snake paths
/// `<subsystem>.<metric>`, with at most one dimension appended in braces
/// via WithLabel, e.g. `chase.gma_firings{Q2->Q1}`.
class Registry {
 public:
  /// The process-wide default registry used by all built-in
  /// instrumentation.
  static Registry& Global();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument. Registered pointers remain valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

/// "chase.gma_firings" + "Q2->Q1" -> "chase.gma_firings{Q2->Q1}".
std::string WithLabel(std::string_view base, std::string_view label);

}  // namespace rps::obs

#endif  // RPS_OBS_METRICS_H_
