#include "obs/trace.h"

#include <cstdio>
#include <functional>

namespace rps::obs {

namespace {

// Ambient tracer + this thread's open AutoSpan stack. The stack only
// holds spans opened on this thread, so parenting nests correctly even
// when several threads share one tracer.
thread_local Tracer* t_active = nullptr;
thread_local std::vector<SpanId> t_span_stack;

std::string FormatMs(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", v);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

Tracer::Tracer(std::string root_name)
    : epoch_(std::chrono::steady_clock::now()) {
  SpanRec root;
  root.name = std::move(root_name);
  spans_.push_back(std::move(root));
}

double Tracer::NowMs() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - epoch_).count();
}

SpanId Tracer::StartSpan(std::string name, SpanId parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (parent == kNoSpan || parent >= spans_.size()) parent = 0;
  SpanId id = spans_.size();
  SpanRec rec;
  rec.name = std::move(name);
  rec.parent = parent;
  rec.start_ms = NowMs();
  spans_.push_back(std::move(rec));
  spans_[parent].children.push_back(id);
  return id;
}

void Tracer::EndSpan(SpanId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  if (spans_[id].end_ms < 0.0) spans_[id].end_ms = NowMs();
}

void Tracer::Annotate(SpanId id, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  spans_[id].notes.emplace_back(std::move(key), std::move(value));
}

size_t Tracer::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<SpanView> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  double now = NowMs();
  std::vector<SpanView> out;
  out.reserve(spans_.size());
  for (size_t i = 0; i < spans_.size(); ++i) {
    const SpanRec& rec = spans_[i];
    SpanView view;
    view.name = rec.name;
    view.id = i;
    view.parent = rec.parent;
    view.start_ms = rec.start_ms;
    view.open = rec.end_ms < 0.0;
    view.duration_ms = (view.open ? now : rec.end_ms) - rec.start_ms;
    view.notes = rec.notes;
    out.push_back(std::move(view));
  }
  return out;
}

std::string Tracer::ReportText(const std::string& indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  double now = NowMs();
  std::string out;
  // Iterative pre-order walk (children in creation order).
  std::vector<std::pair<SpanId, size_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const SpanRec& rec = spans_[id];
    double duration = (rec.end_ms < 0.0 ? now : rec.end_ms) - rec.start_ms;
    std::string line = indent + std::string(2 * depth, ' ') + rec.name;
    if (line.size() < 40) line += std::string(40 - line.size(), ' ');
    line += "  " + FormatMs(duration);
    if (rec.end_ms < 0.0) line += " (open)";
    for (const auto& [key, value] : rec.notes) {
      line += "  " + key + "=" + value;
    }
    out += line + "\n";
    for (auto it = rec.children.rbegin(); it != rec.children.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

std::string Tracer::ReportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  double now = NowMs();
  std::function<std::string(SpanId)> render = [&](SpanId id) {
    const SpanRec& rec = spans_[id];
    double duration = (rec.end_ms < 0.0 ? now : rec.end_ms) - rec.start_ms;
    char dur[32];
    std::snprintf(dur, sizeof(dur), "%.3f", duration);
    std::string out = "{\"name\":\"" + JsonEscape(rec.name) +
                      "\",\"duration_ms\":" + dur;
    if (!rec.notes.empty()) {
      out += ",\"notes\":{";
      for (size_t i = 0; i < rec.notes.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + JsonEscape(rec.notes[i].first) + "\":\"" +
               JsonEscape(rec.notes[i].second) + "\"";
      }
      out += "}";
    }
    if (!rec.children.empty()) {
      out += ",\"children\":[";
      for (size_t i = 0; i < rec.children.size(); ++i) {
        if (i > 0) out += ",";
        out += render(rec.children[i]);
      }
      out += "]";
    }
    return out + "}";
  };
  return render(0);
}

Tracer* Tracer::Active() { return t_active; }

TraceScope::TraceScope(Tracer* tracer) : previous_(t_active) {
  t_active = tracer;
  previous_stack_ = std::move(t_span_stack);
  t_span_stack.clear();
}

TraceScope::~TraceScope() {
  t_active = previous_;
  t_span_stack = std::move(previous_stack_);
}

AutoSpan::AutoSpan(std::string_view name) : tracer_(t_active) {
  if (tracer_ == nullptr) return;
  SpanId parent =
      t_span_stack.empty() ? tracer_->root() : t_span_stack.back();
  id_ = tracer_->StartSpan(std::string(name), parent);
  t_span_stack.push_back(id_);
}

AutoSpan::~AutoSpan() {
  if (tracer_ == nullptr) return;
  if (!t_span_stack.empty() && t_span_stack.back() == id_) {
    t_span_stack.pop_back();
  }
  tracer_->EndSpan(id_);
}

void AutoSpan::Annotate(std::string key, std::string value) {
  if (tracer_ != nullptr) {
    tracer_->Annotate(id_, std::move(key), std::move(value));
  }
}

}  // namespace rps::obs
