#ifndef RPS_UTIL_STRING_UTIL_H_
#define RPS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rps {

/// Escapes a literal lexical form for N-Triples output: backslash, quote,
/// newline, carriage return and tab are escaped; other characters are
/// passed through (we emit UTF-8 directly rather than \u escapes).
std::string EscapeLiteral(std::string_view raw);

/// Reverses EscapeLiteral, additionally understanding \u/\U escapes
/// (decoded to UTF-8). Returns false on a malformed escape sequence.
bool UnescapeLiteral(std::string_view escaped, std::string* out);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Encodes a Unicode code point as UTF-8, appending to `out`. Returns false
/// for invalid code points (surrogates, > U+10FFFF).
bool AppendUtf8(uint32_t code_point, std::string* out);

}  // namespace rps

#endif  // RPS_UTIL_STRING_UTIL_H_
