#include "util/thread_pool.h"

#include <algorithm>

namespace rps {

namespace {

thread_local int g_task_depth = 0;

// RAII marker for "this thread is running ParallelFor tasks".
struct TaskDepthScope {
  TaskDepthScope() { ++g_task_depth; }
  ~TaskDepthScope() { --g_task_depth; }
};

}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(std::max<size_t>(
      3, static_cast<size_t>(std::thread::hardware_concurrency())));
  return pool;
}

ThreadPool::ThreadPool(size_t workers) {
  workers = std::max<size_t>(workers, 1);
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::InsideTask() { return g_task_depth > 0; }

void ThreadPool::RunBatch(Batch* batch) {
  TaskDepthScope scope;
  size_t i;
  while ((i = batch->next.fetch_add(1, std::memory_order_relaxed)) <
         batch->n) {
    (*batch->fn)(i);
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->n) {
      // Last task: wake the joiner. Lock to pair with its cv.wait.
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tickets_.empty(); });
      if (tickets_.empty()) return;  // stop_ and drained
      batch = std::move(tickets_.front());
      tickets_.erase(tickets_.begin());
    }
    RunBatch(batch.get());
  }
}

void ThreadPool::ParallelFor(size_t n, size_t max_threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Inline when parallelism is off, the batch is trivial, or we are
  // already inside a task (nested fan-out must not wait on the pool).
  if (max_threads <= 1 || n == 1 || InsideTask()) {
    TaskDepthScope scope;
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  size_t helpers = std::min({max_threads - 1, workers(), n - 1});
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) tickets_.push_back(batch);
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }

  // The calling thread participates too.
  RunBatch(batch.get());
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == n;
  });
}

}  // namespace rps
