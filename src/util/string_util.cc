#include "util/string_util.h"

#include <cstdint>

namespace rps {

std::string EscapeLiteral(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

// Parses `count` hex digits from `text` starting at `*pos` into `*value`.
bool ParseHex(std::string_view text, size_t* pos, int count, uint32_t* value) {
  uint32_t v = 0;
  for (int i = 0; i < count; ++i) {
    if (*pos >= text.size()) return false;
    char c = text[*pos];
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return false;
    }
    v = (v << 4) | digit;
    ++(*pos);
  }
  *value = v;
  return true;
}

}  // namespace

bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

bool UnescapeLiteral(std::string_view escaped, std::string* out) {
  out->clear();
  out->reserve(escaped.size());
  size_t i = 0;
  while (i < escaped.size()) {
    char c = escaped[i];
    if (c != '\\') {
      out->push_back(c);
      ++i;
      continue;
    }
    ++i;
    if (i >= escaped.size()) return false;
    char e = escaped[i];
    ++i;
    switch (e) {
      case '\\':
        out->push_back('\\');
        break;
      case '"':
        out->push_back('"');
        break;
      case '\'':
        out->push_back('\'');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'b':
        out->push_back('\b');
        break;
      case 'f':
        out->push_back('\f');
        break;
      case 'u': {
        uint32_t cp;
        if (!ParseHex(escaped, &i, 4, &cp)) return false;
        if (!AppendUtf8(cp, out)) return false;
        break;
      }
      case 'U': {
        uint32_t cp;
        if (!ParseHex(escaped, &i, 8, &cp)) return false;
        if (!AppendUtf8(cp, out)) return false;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace rps
