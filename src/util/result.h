#ifndef RPS_UTIL_RESULT_H_
#define RPS_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace rps {

/// A value-or-error holder in the style of arrow::Result. A `Result<T>`
/// holds either a `T` (success) or a non-OK `Status` (failure).
///
/// Usage:
///   Result<int> r = ParseCount(text);
///   if (!r.ok()) return r.status();
///   int n = *r;
template <typename T>
class Result {
 public:
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : value_(std::move(status)) {
    assert(!std::get<Status>(value_).ok());
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// Returns the status: OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// Accessors. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<Status, T> value_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define RPS_ASSIGN_OR_RETURN(lhs, rexpr)               \
  RPS_ASSIGN_OR_RETURN_IMPL_(                          \
      RPS_STATUS_MACROS_CONCAT_(rps_result_, __LINE__), lhs, rexpr)

#define RPS_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define RPS_STATUS_MACROS_CONCAT_(x, y) RPS_STATUS_MACROS_CONCAT_INNER_(x, y)

#define RPS_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) {                                  \
    return result.status();                            \
  }                                                    \
  lhs = std::move(result).value()

}  // namespace rps

#endif  // RPS_UTIL_RESULT_H_
