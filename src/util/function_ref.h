#ifndef RPS_UTIL_FUNCTION_REF_H_
#define RPS_UTIL_FUNCTION_REF_H_

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace rps {

template <typename Signature>
class FunctionRef;

/// A lightweight non-owning reference to a callable, in the spirit of
/// C++26 std::function_ref: one `void*` plus one function pointer, no
/// allocation, no virtual dispatch through std::function's vtable-like
/// manager. Used on hot loops (Graph::Match) where a std::function
/// parameter would cost a per-call construction and a double-indirect
/// invocation.
///
/// The referenced callable must outlive the FunctionRef — bind only to
/// arguments of a call (the usual borrowing rule for reference
/// parameters).
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return std::invoke(
              *static_cast<std::remove_reference_t<F>*>(obj),
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace rps

#endif  // RPS_UTIL_FUNCTION_REF_H_
