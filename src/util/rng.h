#ifndef RPS_UTIL_RNG_H_
#define RPS_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace rps {

/// Deterministic pseudo-random source used by the synthetic-data generators
/// and property tests. Thin wrapper over std::mt19937_64 with convenience
/// draws; always seeded explicitly so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    std::uniform_int_distribution<uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t Index(size_t n) { return static_cast<size_t>(Uniform(0, n - 1)); }

  /// Bernoulli draw with probability p in [0,1].
  bool Chance(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Uniform double in [0,1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rps

#endif  // RPS_UTIL_RNG_H_
