#ifndef RPS_UTIL_UNION_FIND_H_
#define RPS_UTIL_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rps {

/// Disjoint-set forest over sparse uint32 ids with path compression and
/// union by rank. Elements are registered lazily: Find on an unseen id
/// returns the id itself without allocating.
///
/// Used to canonicalize owl:sameAs equivalence cliques (peer/equivalence.h):
/// merging `c ≡ c'` for every equivalence mapping yields one representative
/// per clique.
class UnionFind {
 public:
  UnionFind() = default;

  /// Returns the representative of `x`'s set.
  uint32_t Find(uint32_t x);

  /// Merges the sets of `a` and `b`. Returns the representative of the
  /// merged set.
  uint32_t Union(uint32_t a, uint32_t b);

  /// True if `a` and `b` are in the same set.
  bool Same(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  /// Number of elements that have been explicitly registered (touched by
  /// Union, or by Find after a Union introduced them).
  size_t size() const { return parent_.size(); }

  /// Returns all members of x's set among registered elements (including
  /// `x` itself even if unregistered).
  std::vector<uint32_t> Members(uint32_t x);

 private:
  uint32_t Register(uint32_t x);

  std::unordered_map<uint32_t, uint32_t> parent_;
  std::unordered_map<uint32_t, uint32_t> rank_;
};

}  // namespace rps

#endif  // RPS_UTIL_UNION_FIND_H_
