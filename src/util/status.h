#ifndef RPS_UTIL_STATUS_H_
#define RPS_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace rps {

/// Error categories used throughout the library. Mirrors the coarse
/// categories used by Arrow/RocksDB-style status objects.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kDataLoss = 9,
};

/// Returns a stable human-readable name for a status code ("ParseError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. The library does not throw
/// exceptions: fallible operations return `Status` (or `Result<T>`, see
/// util/result.h) and callers are expected to check it.
///
/// The default-constructed Status is OK and carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. Prefer the
  /// factory functions (Status::ParseError etc.) in new code.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define RPS_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::rps::Status rps_status_tmp_ = (expr);      \
    if (!rps_status_tmp_.ok()) {                 \
      return rps_status_tmp_;                    \
    }                                            \
  } while (false)

}  // namespace rps

#endif  // RPS_UTIL_STATUS_H_
