#ifndef RPS_UTIL_THREAD_POOL_H_
#define RPS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rps {

/// A small work-queue thread pool for data-parallel fan-out on the hot
/// paths (chase rounds, seed-partitioned joins, federated per-peer
/// sub-queries).
///
/// The only scheduling primitive is ParallelFor: a blocking index-space
/// fan-out with dynamic task claiming. Determinism is the caller's
/// contract — tasks write to disjoint, index-addressed output slots, and
/// the caller merges the slots in index order after the join, so results
/// are identical for any thread count (including 1).
class ThreadPool {
 public:
  /// The process-wide pool used by the chase / eval / federation layers.
  /// Sized to the hardware concurrency, but never below 3 workers so a
  /// `threads = 4` request exercises real concurrency (and catches data
  /// races under TSan) even on small machines.
  static ThreadPool& Global();

  /// Spawns `workers` worker threads (at least 1).
  explicit ThreadPool(size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Invokes fn(i) exactly once for every i in [0, n), using up to
  /// `max_threads` participants (the calling thread plus pool workers),
  /// and blocks until all n invocations have finished. Indices are
  /// claimed dynamically, so uneven tasks load-balance.
  ///
  /// fn must be safe to call concurrently from different threads for
  /// different i. With max_threads <= 1 (or n <= 1) the loop runs inline
  /// on the calling thread. A nested ParallelFor issued from inside a
  /// task also runs inline — nesting never deadlocks, it just serializes
  /// the inner loop.
  void ParallelFor(size_t n, size_t max_threads,
                   const std::function<void(size_t)>& fn);

  /// True while the calling thread is executing inside a ParallelFor task
  /// (used to run nested fan-outs inline).
  static bool InsideTask();

 private:
  // Shared state of one ParallelFor call. Workers that pop a ticket for
  // the batch claim indices from `next` until the space is exhausted.
  struct Batch {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };

  void WorkerLoop();
  static void RunBatch(Batch* batch);

  std::mutex mu_;
  std::condition_variable cv_;
  /// Participation tickets, FIFO. One entry per helper slot requested.
  std::vector<std::shared_ptr<Batch>> tickets_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rps

#endif  // RPS_UTIL_THREAD_POOL_H_
