#include "util/status.h"

namespace rps {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace rps
