#include "util/union_find.h"

namespace rps {

uint32_t UnionFind::Register(uint32_t x) {
  auto it = parent_.find(x);
  if (it == parent_.end()) {
    parent_[x] = x;
    rank_[x] = 0;
    return x;
  }
  return it->second;
}

uint32_t UnionFind::Find(uint32_t x) {
  auto it = parent_.find(x);
  if (it == parent_.end()) return x;
  // Path compression: walk to the root, then repoint everything on the path.
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  uint32_t cur = x;
  while (parent_[cur] != root) {
    uint32_t next = parent_[cur];
    parent_[cur] = root;
    cur = next;
  }
  return root;
}

uint32_t UnionFind::Union(uint32_t a, uint32_t b) {
  Register(a);
  Register(b);
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return ra;
  uint32_t rank_a = rank_[ra];
  uint32_t rank_b = rank_[rb];
  if (rank_a < rank_b) {
    parent_[ra] = rb;
    return rb;
  }
  if (rank_a > rank_b) {
    parent_[rb] = ra;
    return ra;
  }
  parent_[rb] = ra;
  rank_[ra] = rank_a + 1;
  return ra;
}

std::vector<uint32_t> UnionFind::Members(uint32_t x) {
  uint32_t root = Find(x);
  std::vector<uint32_t> out;
  bool saw_x = false;
  for (const auto& [elem, _] : parent_) {
    if (Find(elem) == root) {
      out.push_back(elem);
      if (elem == x) saw_x = true;
    }
  }
  if (!saw_x) out.push_back(x);
  return out;
}

}  // namespace rps
