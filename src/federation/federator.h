#ifndef RPS_FEDERATION_FEDERATOR_H_
#define RPS_FEDERATION_FEDERATOR_H_

#include <vector>

#include "federation/network.h"
#include "federation/peer_node.h"
#include "peer/equivalence.h"
#include "peer/rps_system.h"
#include "rewrite/bool_rewrite.h"

namespace rps {

/// How the federated executor joins triple patterns across peers —
/// the §5 prototype explicitly plans "taking into account efficiency of
/// the join operations between the RDF triple patterns".
enum class JoinStrategy {
  /// Fetch every pattern's full extension from the relevant peers, then
  /// hash-join at the coordinator. Simple; traffic ∝ extension sizes.
  kShipExtensions,
  /// Bind join: after the first pattern, substitute the bindings
  /// accumulated so far into the next pattern and send the *bound*
  /// sub-queries (batched) — peers return only matching rows. Traffic ∝
  /// intermediate result sizes; wins on selective queries.
  kBindJoin,
};

/// Options for a federated query execution.
struct FederationOptions {
  RpsRewriteOptions rewrite;
  NetworkCostModel cost;
  /// Coordinator node index in the topology (sub-queries are issued from
  /// here and results joined here).
  size_t coordinator = 0;
  JoinStrategy join_strategy = JoinStrategy::kShipExtensions;
  /// Bind-join batching: bindings per request message.
  size_t bind_join_batch = 32;
  /// Maximum threads for the per-peer sub-query fan-out: each peer's
  /// sub-queries are answered concurrently (peers are independent
  /// endpoints) and the results merged at the coordinator in peer order,
  /// so answers are identical to the serial execution. 1 disables
  /// parallelism.
  size_t threads = 1;
};

/// Outcome of a federated query execution.
struct FederatedQueryResult {
  std::vector<Tuple> answers;
  NetworkStats network;
  RewriteResult rewrite_stats;
  /// Number of (pattern, peer) sub-queries dispatched.
  size_t subqueries = 0;
  /// Branches of the rewritten UCQ that were executed.
  size_t branches = 0;
};

/// The §5 prototype, simulated: a query engine that provides unified
/// access to the mapped sources. Execution follows the paper's two
/// modules:
///  (a) the rewriting module rewrites the original query under the RPS
///      mappings into a UCQ (RewriteGraphQuery);
///  (b) the federated query module sends each triple pattern of each
///      branch to the peers that may answer it, unions the per-peer
///      results, and joins them at the coordinator, most-selective
///      pattern first.
/// Network traffic is accounted against the topology's hop distances.
class Federator {
 public:
  /// Builds one PeerNode per named peer graph of the system, in the
  /// dataset's (name-sorted) order; `topology` must have at least that
  /// many nodes (node i hosts the i-th peer).
  ///
  /// Each node also keeps a clique-canonicalized copy of its graph
  /// (computed locally from the shared sameAs closure, as a real peer
  /// could): canonical-mode rewritings are answered from that copy and
  /// the coordinator expands the answers back over the cliques.
  Federator(const RpsSystem* system, Topology topology);

  /// Executes a federated query.
  Result<FederatedQueryResult> Execute(
      const GraphPatternQuery& query,
      const FederationOptions& options = FederationOptions());

  /// Baseline for the E9 experiment: ship every peer's full graph to the
  /// coordinator and evaluate the rewritten UCQ centrally.
  Result<FederatedQueryResult> ExecuteCentralized(
      const GraphPatternQuery& query,
      const FederationOptions& options = FederationOptions());

  const std::vector<PeerNode>& peers() const { return peers_; }
  const Topology& topology() const { return topology_; }

 private:
  const RpsSystem* system_;
  Topology topology_;
  EquivalenceClosure closure_;
  /// Clique-canonicalized peer graphs (same order as peers_).
  std::vector<Graph> canonical_graphs_;
  /// Raw-graph endpoints and canonicalized endpoints, same order.
  std::vector<PeerNode> peers_;
  std::vector<PeerNode> canonical_peers_;
};

}  // namespace rps

#endif  // RPS_FEDERATION_FEDERATOR_H_
