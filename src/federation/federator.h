#ifndef RPS_FEDERATION_FEDERATOR_H_
#define RPS_FEDERATION_FEDERATOR_H_

#include <deque>
#include <string>
#include <vector>

#include "federation/network.h"
#include "federation/peer_node.h"
#include "federation/subquery_cache.h"
#include "peer/certain_answers.h"
#include "peer/equivalence.h"
#include "peer/rps_system.h"
#include "rewrite/bool_rewrite.h"
#include "rewrite/rewrite_cache.h"

namespace rps {

/// How the federated executor joins triple patterns across peers —
/// the §5 prototype explicitly plans "taking into account efficiency of
/// the join operations between the RDF triple patterns".
enum class JoinStrategy {
  /// Fetch every pattern's full extension from the relevant peers, then
  /// hash-join at the coordinator. Simple; traffic ∝ extension sizes.
  kShipExtensions,
  /// Bind join: after the first pattern, substitute the bindings
  /// accumulated so far into the next pattern and send the *bound*
  /// sub-queries (batched) — peers return only matching rows. Traffic ∝
  /// intermediate result sizes; wins on selective queries.
  kBindJoin,
};

/// Retry policy for sub-queries whose exchange failed (dropped message,
/// crashed peer, or response past the timeout). Only consulted when
/// fault injection is active — on a perfect network (the default) the
/// federator takes the original zero-overhead path.
struct RetryPolicy {
  /// Simulated per-sub-query timeout: an exchange whose end-to-end
  /// latency exceeds this counts as failed and the coordinator charges
  /// itself the full wait.
  double timeout_ms = 200.0;
  /// Retries after the initial attempt (0 = fail on first loss).
  size_t max_retries = 2;
  /// Exponential backoff before retry k (1-based):
  ///   backoff_base_ms * backoff_multiplier^(k-1) * (1 + jitter)
  /// with `jitter` a deterministic per-attempt draw in
  /// [0, backoff_jitter_frac).
  double backoff_base_ms = 4.0;
  double backoff_multiplier = 2.0;
  double backoff_jitter_frac = 0.5;
  /// After a peer exhausts its retry budget, re-dispatch the sub-query
  /// once to each replica peer (a peer hosting an identical graph) until
  /// one delivers. Replicas are detected at Federator construction.
  bool hedge = true;
  /// Simulated wall time for a crashed peer to restart from its on-disk
  /// snapshot. Charged as coordinator wait before the recovery re-issue;
  /// only used when the federator has storage attached (AttachStorage).
  double restart_ms = 50.0;
};

/// Options for a federated query execution.
struct FederationOptions {
  RpsRewriteOptions rewrite;
  NetworkCostModel cost;
  /// Deterministic fault injection on the simulated transport. Inactive
  /// by default (perfect network, identical to the pre-fault behaviour).
  FaultOptions faults;
  /// Applied per sub-query when `faults` is active.
  RetryPolicy retry;
  /// Coordinator node index in the topology (sub-queries are issued from
  /// here and results joined here).
  size_t coordinator = 0;
  JoinStrategy join_strategy = JoinStrategy::kShipExtensions;
  /// Bind-join batching: bindings per request message.
  size_t bind_join_batch = 32;
  /// Maximum threads for the per-peer sub-query fan-out: each peer's
  /// sub-queries are answered concurrently (peers are independent
  /// endpoints) and the results merged at the coordinator in peer order,
  /// so answers are identical to the serial execution. 1 disables
  /// parallelism.
  size_t threads = 1;
  /// Memoize UCQ rewritings in the federator's RewriteCache, keyed by
  /// (query shape, mapping-set version, rewrite options). Rewriting is a
  /// pure function of those inputs, so repeated executions of the same
  /// query shape skip the rewriting engine with identical results and
  /// stats.
  bool use_rewrite_cache = true;
  /// Serve repeated per-peer sub-queries — across UCQ branches,
  /// bind-join batches, and hedged retries — from the federator's
  /// SubQueryCache, keyed by (peer, graph epoch, pattern). Answers are
  /// byte-identical either way (see subquery_cache.h); opt-in because it
  /// trades coordinator memory for peer index probes.
  bool use_subquery_cache = false;
};

/// Outcome of a federated query execution.
struct FederatedQueryResult {
  std::vector<Tuple> answers;
  NetworkStats network;
  RewriteResult rewrite_stats;
  /// Number of (pattern, peer) sub-queries dispatched.
  size_t subqueries = 0;
  /// Branches of the rewritten UCQ that were executed.
  size_t branches = 0;
  /// kComplete on a clean run; kPartialSound iff some peer stayed
  /// unreachable after retries and hedging (see `degraded_peers`).
  /// Every returned answer is a certain answer either way.
  Completeness completeness = Completeness::kComplete;
  /// Names of peers that failed to deliver at least one sub-query after
  /// the full retry + hedge budget, in peer order, deduplicated.
  std::vector<std::string> degraded_peers;
  /// Names of crashed peers the coordinator restarted from their on-disk
  /// snapshots mid-query (AttachStorage + RecoverPeer). A recovered peer
  /// served every one of its sub-queries — possibly after a restart wait
  /// — so it does not appear in `degraded_peers` and does not make the
  /// run partial.
  std::vector<std::string> recovered_peers;
  /// Retry attempts issued beyond first attempts.
  size_t retries = 0;
  /// Sub-query exchanges that failed (drop, crash, or over-timeout).
  size_t timeouts = 0;
  /// Hedged re-dispatches to replica peers that delivered.
  size_t hedged = 0;
};

/// The §5 prototype, simulated: a query engine that provides unified
/// access to the mapped sources. Execution follows the paper's two
/// modules:
///  (a) the rewriting module rewrites the original query under the RPS
///      mappings into a UCQ (RewriteGraphQuery);
///  (b) the federated query module sends each triple pattern of each
///      branch to the peers that may answer it, unions the per-peer
///      results, and joins them at the coordinator, most-selective
///      pattern first.
/// Network traffic is accounted against the topology's hop distances.
class Federator {
 public:
  /// Builds one PeerNode per named peer graph of the system, in the
  /// dataset's (name-sorted) order; `topology` must have at least that
  /// many nodes (node i hosts the i-th peer).
  ///
  /// Each node also keeps a clique-canonicalized copy of its graph
  /// (computed locally from the shared sameAs closure, as a real peer
  /// could): canonical-mode rewritings are answered from that copy and
  /// the coordinator expands the answers back over the cliques.
  Federator(const RpsSystem* system, Topology topology);

  /// Executes a federated query.
  Result<FederatedQueryResult> Execute(
      const GraphPatternQuery& query,
      const FederationOptions& options = FederationOptions());

  /// Baseline for the E9 experiment: ship every peer's full graph to the
  /// coordinator and evaluate the rewritten UCQ centrally.
  Result<FederatedQueryResult> ExecuteCentralized(
      const GraphPatternQuery& query,
      const FederationOptions& options = FederationOptions());

  /// Snapshots every peer's raw graph into `dir` (storage::SnapshotPath
  /// naming, atomic write-temp-then-rename per file) and enables
  /// crash-restart recovery: from then on Execute restarts a crashed
  /// peer from its snapshot instead of degrading the result. Returns the
  /// first save error, in which case storage stays unattached.
  Status AttachStorage(const std::string& dir);

  /// True once AttachStorage succeeded.
  bool has_storage() const { return !storage_dir_.empty(); }

  /// Statistics of the embedded rewriting cache (hits accrue whenever
  /// Execute/ExecuteCentralized reuse a memoized rewriting).
  RewriteCacheStats rewrite_cache_stats() const {
    return rewrite_cache_.Stats();
  }

  /// Statistics of the embedded per-peer sub-query cache (populated only
  /// by Execute calls with options.use_subquery_cache set).
  SubQueryCacheStats subquery_cache_stats() const {
    return subquery_cache_.Stats();
  }

  /// Restarts peer `p` from its snapshot in the attached storage
  /// directory: loads the snapshot — memory-mapped, since the shared
  /// dictionary makes the id remap the identity — into a
  /// federator-owned graph, repoints the peer's raw endpoint at it, and
  /// rebuilds its canonicalized endpoint from the recovered data.
  /// Idempotent: a peer already running from its snapshot is left alone.
  /// Execute calls this at the serial per-pattern merge point when a
  /// crash-down peer exhausted its delivery budget; tests may call it
  /// directly.
  Status RecoverPeer(size_t p);

  /// True if peer `p` is currently serving from a recovered snapshot.
  bool IsRecovered(size_t p) const {
    return p < recovered_.size() && recovered_[p] != 0;
  }

  const std::vector<PeerNode>& peers() const { return peers_; }
  const Topology& topology() const { return topology_; }

  /// Peers hosting a graph identical to peer `p`'s (hedging targets),
  /// ascending, excluding `p` itself. Empty when `p` has no replica.
  const std::vector<size_t>& Replicas(size_t p) const {
    return replicas_[p];
  }

 private:
  const RpsSystem* system_;
  Topology topology_;
  EquivalenceClosure closure_;
  /// Clique-canonicalized peer graphs (same order as peers_).
  std::vector<Graph> canonical_graphs_;
  /// Raw-graph endpoints and canonicalized endpoints, same order.
  std::vector<PeerNode> peers_;
  std::vector<PeerNode> canonical_peers_;
  /// replicas_[p] = peers whose raw graph equals peer p's as a triple
  /// set (hedged re-dispatch targets), ascending, excluding p.
  std::vector<std::vector<size_t>> replicas_;
  /// Memoized rewritings (hit on repeated query shapes at the same
  /// mapping version) and per-peer sub-query results (hit on repeated
  /// patterns at the same peer epoch). Both are internally locked.
  RewriteCache rewrite_cache_;
  SubQueryCache subquery_cache_;
  /// Snapshot directory from AttachStorage; empty = recovery disabled.
  std::string storage_dir_;
  /// Graphs reloaded from snapshots by RecoverPeer. A deque so endpoint
  /// graph pointers stay stable as more peers recover.
  std::deque<Graph> recovered_graphs_;
  /// recovered_[p] != 0 iff peer p's endpoints point at a recovered graph.
  std::vector<char> recovered_;
};

}  // namespace rps

#endif  // RPS_FEDERATION_FEDERATOR_H_
