#include "federation/network.h"

#include <cstdlib>
#include <deque>

#include "obs/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace rps {

void NetworkStats::AddExchange(double payload_bytes, size_t hops,
                               const NetworkCostModel& model,
                               double latency_scale,
                               double extra_latency_ms) {
  messages += 2;  // request + response
  double total_bytes = payload_bytes + model.bytes_per_request;
  bytes += static_cast<size_t>(total_bytes);
  double propagation = 2.0 * model.latency_ms_per_hop *
                       static_cast<double>(hops == SIZE_MAX ? 0 : hops);
  double transfer = total_bytes / model.bandwidth_bytes_per_ms;
  latency_ms += (propagation + transfer) * latency_scale + extra_latency_ms;

  static obs::Counter* message_counter =
      obs::Registry::Global().counter("federation.messages");
  static obs::Counter* byte_counter =
      obs::Registry::Global().counter("federation.bytes");
  message_counter->Add(2);
  byte_counter->Add(static_cast<uint64_t>(total_bytes));
}

void NetworkStats::AddLostExchange(double waited_ms,
                                   const NetworkCostModel& model) {
  messages += 1;  // the request crosses the network; the response never does
  bytes += static_cast<size_t>(model.bytes_per_request);
  latency_ms += waited_ms;

  static obs::Counter* message_counter =
      obs::Registry::Global().counter("federation.messages");
  static obs::Counter* byte_counter =
      obs::Registry::Global().counter("federation.bytes");
  message_counter->Add(1);
  byte_counter->Add(static_cast<uint64_t>(model.bytes_per_request));
}

void NetworkStats::Merge(const NetworkStats& other) {
  messages += other.messages;
  bytes += other.bytes;
  latency_ms += other.latency_ms;
}

bool FaultOptions::Any() const {
  return drop_rate > 0.0 || latency_jitter_ms > 0.0 || crash_rate > 0.0 ||
         !crashed_peers.empty() || !crash_after.empty() || slow_rate > 0.0 ||
         !slow_peers.empty();
}

namespace {

// SplitMix64 finalizer: a high-quality 64-bit mix used to derive
// independent per-peer / per-exchange draws from (seed, key, salt)
// without any shared RNG state.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr uint64_t kSaltDrop = 0x1;
constexpr uint64_t kSaltJitter = 0x2;
constexpr uint64_t kSaltBackoff = 0x3;
constexpr uint64_t kSaltCrash = 0x4;
constexpr uint64_t kSaltSlow = 0x5;

double UnitFrom(uint64_t seed, uint64_t key, uint64_t salt) {
  uint64_t h = Mix64(Mix64(seed ^ Mix64(salt)) ^ key);
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(const FaultOptions& options, size_t peer_count)
    : active_(options.Any()),
      options_(options),
      crashed_(peer_count, 0),
      slow_(peer_count, 0),
      crash_after_(peer_count, SIZE_MAX) {
  for (size_t p = 0; p < peer_count; ++p) {
    if (options_.crash_rate > 0.0 &&
        UnitFrom(options_.seed, p, kSaltCrash) < options_.crash_rate) {
      crashed_[p] = 1;
    }
    if (options_.slow_rate > 0.0 &&
        UnitFrom(options_.seed, p, kSaltSlow) < options_.slow_rate) {
      slow_[p] = 1;
    }
  }
  for (size_t p : options_.crashed_peers) {
    if (p < peer_count) crashed_[p] = 1;
  }
  for (size_t p : options_.slow_peers) {
    if (p < peer_count) slow_[p] = 1;
  }
  for (const auto& [peer, served] : options_.crash_after) {
    if (peer < peer_count) crash_after_[peer] = served;
  }
}

uint64_t FaultInjector::RequestKey(uint64_t branch, uint64_t pattern,
                                   uint64_t batch, uint64_t peer,
                                   uint64_t attempt) {
  // Mix the coordinates pairwise so every component perturbs all bits.
  uint64_t key = Mix64(branch);
  key = Mix64(key ^ pattern);
  key = Mix64(key ^ batch);
  key = Mix64(key ^ peer);
  key = Mix64(key ^ attempt);
  return key;
}

bool FaultInjector::PeerUp(size_t peer, size_t primary_seq) const {
  if (peer < crashed_.size() && crashed_[peer]) return false;
  if (peer < crash_after_.size() && crash_after_[peer] != SIZE_MAX) {
    // Scheduled crash. Hedged requests (primary_seq == SIZE_MAX) arrive
    // only after some peer exhausted its retries, so a peer with a crash
    // schedule is conservatively down for them too.
    if (primary_seq >= crash_after_[peer]) return false;
  }
  return true;
}

void FaultInjector::MarkRecovered(size_t peer) {
  if (peer < crashed_.size()) crashed_[peer] = 0;
  if (peer < crash_after_.size()) crash_after_[peer] = SIZE_MAX;
}

double FaultInjector::PeerLatencyFactor(size_t peer) const {
  if (peer < slow_.size() && slow_[peer]) return options_.slow_factor;
  return 1.0;
}

bool FaultInjector::DropExchange(uint64_t request_key) const {
  if (options_.drop_rate <= 0.0) return false;
  return Unit(request_key, kSaltDrop) < options_.drop_rate;
}

double FaultInjector::LatencyJitterMs(uint64_t request_key) const {
  if (options_.latency_jitter_ms <= 0.0) return 0.0;
  return Unit(request_key, kSaltJitter) * options_.latency_jitter_ms;
}

double FaultInjector::UnitJitter(uint64_t request_key) const {
  return Unit(request_key, kSaltBackoff);
}

double FaultInjector::Unit(uint64_t key, uint64_t salt) const {
  return UnitFrom(options_.seed, key, salt);
}

namespace {

Result<double> ParseFaultNumber(const std::string& key,
                                const std::string& value) {
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || parsed < 0.0) {
    return Status::InvalidArgument("faults: bad value for '" + key +
                                   "': " + value);
  }
  return parsed;
}

Result<std::vector<size_t>> ParseFaultPeerList(const std::string& key,
                                               const std::string& value) {
  std::vector<size_t> peers;
  for (const std::string& part : Split(value, '|')) {
    RPS_ASSIGN_OR_RETURN(double n, ParseFaultNumber(key, part));
    peers.push_back(static_cast<size_t>(n));
  }
  return peers;
}

}  // namespace

Result<FaultOptions> ParseFaultSpec(const std::string& spec) {
  FaultOptions options;
  for (const std::string& entry : Split(spec, ',')) {
    if (entry.empty()) continue;
    size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("faults: expected key:value, got '" +
                                     entry + "'");
    }
    std::string key = entry.substr(0, colon);
    std::string value = entry.substr(colon + 1);
    if (key == "seed") {
      RPS_ASSIGN_OR_RETURN(double n, ParseFaultNumber(key, value));
      options.seed = static_cast<uint64_t>(n);
    } else if (key == "drop") {
      RPS_ASSIGN_OR_RETURN(options.drop_rate, ParseFaultNumber(key, value));
    } else if (key == "jitter") {
      RPS_ASSIGN_OR_RETURN(options.latency_jitter_ms,
                           ParseFaultNumber(key, value));
    } else if (key == "crashp") {
      RPS_ASSIGN_OR_RETURN(options.crash_rate, ParseFaultNumber(key, value));
    } else if (key == "crash") {
      RPS_ASSIGN_OR_RETURN(options.crashed_peers,
                           ParseFaultPeerList(key, value));
    } else if (key == "crashafter") {
      for (const std::string& pair : Split(value, '|')) {
        size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          return Status::InvalidArgument(
              "faults: crashafter expects peer=count, got '" + pair + "'");
        }
        RPS_ASSIGN_OR_RETURN(double peer,
                             ParseFaultNumber(key, pair.substr(0, eq)));
        RPS_ASSIGN_OR_RETURN(double count,
                             ParseFaultNumber(key, pair.substr(eq + 1)));
        options.crash_after.emplace_back(static_cast<size_t>(peer),
                                         static_cast<size_t>(count));
      }
    } else if (key == "slowp") {
      RPS_ASSIGN_OR_RETURN(options.slow_rate, ParseFaultNumber(key, value));
    } else if (key == "slow") {
      RPS_ASSIGN_OR_RETURN(options.slow_peers,
                           ParseFaultPeerList(key, value));
    } else if (key == "slowf") {
      RPS_ASSIGN_OR_RETURN(options.slow_factor, ParseFaultNumber(key, value));
    } else {
      return Status::InvalidArgument("faults: unknown key '" + key + "'");
    }
  }
  return options;
}

void Topology::AddEdge(size_t a, size_t b) {
  if (a == b || a >= adjacency_.size() || b >= adjacency_.size()) return;
  for (size_t n : adjacency_[a]) {
    if (n == b) return;
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edges_;
}

size_t Topology::HopDistance(size_t from, size_t to) const {
  if (from >= adjacency_.size() || to >= adjacency_.size()) return SIZE_MAX;
  if (from == to) return 0;
  std::vector<size_t> dist(adjacency_.size(), SIZE_MAX);
  dist[from] = 0;
  std::deque<size_t> frontier = {from};
  while (!frontier.empty()) {
    size_t cur = frontier.front();
    frontier.pop_front();
    for (size_t next : adjacency_[cur]) {
      if (dist[next] != SIZE_MAX) continue;
      dist[next] = dist[cur] + 1;
      if (next == to) return dist[next];
      frontier.push_back(next);
    }
  }
  return SIZE_MAX;
}

Topology MakeLabeled(Topology t, std::string label) {
  t.label_ = std::move(label);
  return t;
}

Topology Topology::Chain(size_t nodes) {
  Topology t(nodes);
  for (size_t i = 0; i + 1 < nodes; ++i) t.AddEdge(i, i + 1);
  return MakeLabeled(std::move(t), "chain");
}

Topology Topology::Star(size_t nodes) {
  Topology t(nodes);
  for (size_t i = 1; i < nodes; ++i) t.AddEdge(0, i);
  return MakeLabeled(std::move(t), "star");
}

Topology Topology::Ring(size_t nodes) {
  Topology t(nodes);
  for (size_t i = 0; i + 1 < nodes; ++i) t.AddEdge(i, i + 1);
  if (nodes > 2) t.AddEdge(nodes - 1, 0);
  return MakeLabeled(std::move(t), "ring");
}

Topology Topology::Random(size_t nodes, double edge_prob, uint64_t seed) {
  Topology t(nodes);
  Rng rng(seed);
  for (size_t i = 0; i < nodes; ++i) {
    for (size_t j = i + 1; j < nodes; ++j) {
      if (rng.Chance(edge_prob)) t.AddEdge(i, j);
    }
  }
  // Keep it connected: chain up isolated prefixes.
  for (size_t i = 0; i + 1 < nodes; ++i) {
    if (t.HopDistance(i, i + 1) == SIZE_MAX) t.AddEdge(i, i + 1);
  }
  return MakeLabeled(std::move(t), "random");
}

std::string Topology::Describe() const {
  return label_ + "(" + std::to_string(NodeCount()) + ")";
}

}  // namespace rps
