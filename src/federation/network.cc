#include "federation/network.h"

#include <deque>

#include "obs/metrics.h"
#include "util/rng.h"

namespace rps {

void NetworkStats::AddExchange(double payload_bytes, size_t hops,
                               const NetworkCostModel& model) {
  messages += 2;  // request + response
  double total_bytes = payload_bytes + model.bytes_per_request;
  bytes += static_cast<size_t>(total_bytes);
  double propagation = 2.0 * model.latency_ms_per_hop *
                       static_cast<double>(hops == SIZE_MAX ? 0 : hops);
  double transfer = total_bytes / model.bandwidth_bytes_per_ms;
  latency_ms += propagation + transfer;

  static obs::Counter* message_counter =
      obs::Registry::Global().counter("federation.messages");
  static obs::Counter* byte_counter =
      obs::Registry::Global().counter("federation.bytes");
  message_counter->Add(2);
  byte_counter->Add(static_cast<uint64_t>(total_bytes));
}

void Topology::AddEdge(size_t a, size_t b) {
  if (a == b || a >= adjacency_.size() || b >= adjacency_.size()) return;
  for (size_t n : adjacency_[a]) {
    if (n == b) return;
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edges_;
}

size_t Topology::HopDistance(size_t from, size_t to) const {
  if (from >= adjacency_.size() || to >= adjacency_.size()) return SIZE_MAX;
  if (from == to) return 0;
  std::vector<size_t> dist(adjacency_.size(), SIZE_MAX);
  dist[from] = 0;
  std::deque<size_t> frontier = {from};
  while (!frontier.empty()) {
    size_t cur = frontier.front();
    frontier.pop_front();
    for (size_t next : adjacency_[cur]) {
      if (dist[next] != SIZE_MAX) continue;
      dist[next] = dist[cur] + 1;
      if (next == to) return dist[next];
      frontier.push_back(next);
    }
  }
  return SIZE_MAX;
}

Topology MakeLabeled(Topology t, std::string label) {
  t.label_ = std::move(label);
  return t;
}

Topology Topology::Chain(size_t nodes) {
  Topology t(nodes);
  for (size_t i = 0; i + 1 < nodes; ++i) t.AddEdge(i, i + 1);
  return MakeLabeled(std::move(t), "chain");
}

Topology Topology::Star(size_t nodes) {
  Topology t(nodes);
  for (size_t i = 1; i < nodes; ++i) t.AddEdge(0, i);
  return MakeLabeled(std::move(t), "star");
}

Topology Topology::Ring(size_t nodes) {
  Topology t(nodes);
  for (size_t i = 0; i + 1 < nodes; ++i) t.AddEdge(i, i + 1);
  if (nodes > 2) t.AddEdge(nodes - 1, 0);
  return MakeLabeled(std::move(t), "ring");
}

Topology Topology::Random(size_t nodes, double edge_prob, uint64_t seed) {
  Topology t(nodes);
  Rng rng(seed);
  for (size_t i = 0; i < nodes; ++i) {
    for (size_t j = i + 1; j < nodes; ++j) {
      if (rng.Chance(edge_prob)) t.AddEdge(i, j);
    }
  }
  // Keep it connected: chain up isolated prefixes.
  for (size_t i = 0; i + 1 < nodes; ++i) {
    if (t.HopDistance(i, i + 1) == SIZE_MAX) t.AddEdge(i, i + 1);
  }
  return MakeLabeled(std::move(t), "random");
}

std::string Topology::Describe() const {
  return label_ + "(" + std::to_string(NodeCount()) + ")";
}

}  // namespace rps
