#ifndef RPS_FEDERATION_PEER_NODE_H_
#define RPS_FEDERATION_PEER_NODE_H_

#include <string>

#include "peer/schema.h"
#include "query/eval.h"

namespace rps {

/// A simulated peer endpoint: wraps one peer's stored graph and answers
/// triple-pattern sub-queries against it, with request accounting. This
/// stands in for a remote SPARQL access point in the §5 prototype.
class PeerNode {
 public:
  PeerNode(std::string name, const Graph* graph)
      : name_(std::move(name)),
        graph_(graph),
        schema_(PeerSchema::FromGraph(name_, *graph)) {}

  const std::string& name() const { return name_; }
  const Graph& graph() const { return *graph_; }
  const PeerSchema& schema() const { return schema_; }

  /// True if this peer can possibly contribute matches for the pattern:
  /// every constant IRI of the pattern occurs in the peer's schema. (A
  /// pattern mentioning an IRI the peer has never used cannot match its
  /// data.) Literal constants are not filtered — schemas contain IRIs
  /// only.
  bool MayAnswer(const TriplePattern& tp) const;

  /// Evaluates the triple pattern against the local graph.
  BindingSet Answer(const TriplePattern& tp);

  /// Number of sub-queries served so far.
  size_t queries_served() const { return queries_served_; }

 private:
  std::string name_;
  const Graph* graph_;
  PeerSchema schema_;
  size_t queries_served_ = 0;
};

}  // namespace rps

#endif  // RPS_FEDERATION_PEER_NODE_H_
