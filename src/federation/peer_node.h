#ifndef RPS_FEDERATION_PEER_NODE_H_
#define RPS_FEDERATION_PEER_NODE_H_

#include <atomic>
#include <string>
#include <utility>

#include "peer/schema.h"
#include "query/eval.h"

namespace rps {

/// A simulated peer endpoint: wraps one peer's stored graph and answers
/// triple-pattern sub-queries against it, with request accounting. This
/// stands in for a remote SPARQL access point in the §5 prototype.
///
/// Answer() may be called concurrently: the federator's fan-out queries
/// distinct peers from distinct tasks, but a hedged re-dispatch can hit
/// a replica while that replica serves its own sub-query, so the served
/// counter is a relaxed atomic.
class PeerNode {
 public:
  PeerNode(std::string name, const Graph* graph)
      : name_(std::move(name)),
        graph_(graph),
        schema_(PeerSchema::FromGraph(name_, *graph)) {}

  // Copy/move keep the counter's point-in-time value (std::atomic is
  // neither copyable nor movable); only used during container setup,
  // never concurrently with Answer().
  PeerNode(const PeerNode& other)
      : name_(other.name_),
        graph_(other.graph_),
        schema_(other.schema_),
        queries_served_(other.queries_served()) {}
  PeerNode(PeerNode&& other) noexcept
      : name_(std::move(other.name_)),
        graph_(other.graph_),
        schema_(std::move(other.schema_)),
        queries_served_(other.queries_served()) {}
  PeerNode& operator=(const PeerNode& other) {
    if (this != &other) {
      name_ = other.name_;
      graph_ = other.graph_;
      schema_ = other.schema_;
      queries_served_.store(other.queries_served(),
                            std::memory_order_relaxed);
    }
    return *this;
  }

  const std::string& name() const { return name_; }
  const Graph& graph() const { return *graph_; }
  const PeerSchema& schema() const { return schema_; }

  /// True if this peer can possibly contribute matches for the pattern:
  /// every constant IRI of the pattern occurs in the peer's schema. (A
  /// pattern mentioning an IRI the peer has never used cannot match its
  /// data.) Literal constants are not filtered — schemas contain IRIs
  /// only.
  bool MayAnswer(const TriplePattern& tp) const;

  /// Evaluates the triple pattern against the local graph.
  BindingSet Answer(const TriplePattern& tp);

  /// Number of sub-queries served so far.
  size_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  const Graph* graph_;
  PeerSchema schema_;
  std::atomic<size_t> queries_served_{0};
};

}  // namespace rps

#endif  // RPS_FEDERATION_PEER_NODE_H_
