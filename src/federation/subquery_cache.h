#ifndef RPS_FEDERATION_SUBQUERY_CACHE_H_
#define RPS_FEDERATION_SUBQUERY_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "query/binding.h"

namespace rps {

/// Tuning knobs for a SubQueryCache.
struct SubQueryCacheOptions {
  bool enabled = false;
  /// Maximum cached sub-query results; LRU eviction past it. 0 = unbounded.
  size_t max_entries = 8192;
  /// Total byte budget (estimated binding payload). 0 = unbounded.
  size_t max_bytes = 32ull << 20;
};

/// Point-in-time statistics of one SubQueryCache instance.
struct SubQueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// Caches per-peer sub-query results inside the Federator, keyed by
/// (peer, peer graph epoch, endpoint kind, verbatim triple pattern). A
/// peer's graph is append-only, so its epoch identifies the exact data
/// state the answer was computed from; any ingest bumps the epoch, which
/// shifts the key — stale entries can never be served and simply age out
/// through LRU eviction. Repeated sub-queries — the same pattern across
/// UCQ branches, re-bound patterns recurring across bind-join batches,
/// and hedged re-dispatches landing on the same replica — reuse the
/// prior evaluation instead of re-probing the peer's indexes.
///
/// Keys carry the pattern verbatim (VarIds included, no shape
/// canonicalization): the cached BindingSet binds those exact VarIds, so
/// the result is byte-identical to a fresh PeerNode::Answer call —
/// network accounting, join results, and thread-count determinism are
/// all unchanged.
///
/// Thread-safe (the Federator fans sub-queries out across threads); hits
/// hand out shared_ptr payloads so eviction cannot race a reader. Emits
/// cache.{hits,misses,evictions,bytes} under the {cache=subquery} label.
class SubQueryCache {
 public:
  using Rows = std::shared_ptr<const BindingSet>;

  explicit SubQueryCache(const SubQueryCacheOptions& options,
                         std::string label = "subquery");
  ~SubQueryCache();
  SubQueryCache(const SubQueryCache&) = delete;
  SubQueryCache& operator=(const SubQueryCache&) = delete;

  /// The cached rows, or nullptr (miss). A hit refreshes the entry's LRU
  /// position.
  Rows Lookup(const std::string& key);

  /// Caches `rows` under `key` (replacing any previous entry).
  void Insert(std::string key, Rows rows);

  SubQueryCacheStats Stats() const;

 private:
  struct Entry {
    Rows rows;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  void EvictLruLocked();

  const SubQueryCacheOptions options_;
  obs::Counter* hits_total_;
  obs::Counter* hits_labeled_;
  obs::Counter* misses_total_;
  obs::Counter* misses_labeled_;
  obs::Counter* evictions_total_;
  obs::Counter* evictions_labeled_;
  obs::Gauge* bytes_total_;
  obs::Gauge* bytes_labeled_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;
  size_t bytes_ = 0;
  SubQueryCacheStats stats_;
};

/// The cache key for `pattern` answered by peer `peer_index` whose graph
/// is at `epoch`. `canonical` distinguishes the raw endpoint from the
/// clique-canonicalized one (same peer, different data).
std::string SubQueryKey(size_t peer_index, size_t epoch, bool canonical,
                        const TriplePattern& pattern);

}  // namespace rps

#endif  // RPS_FEDERATION_SUBQUERY_CACHE_H_
