#include "federation/peer_node.h"

namespace rps {

bool PeerNode::MayAnswer(const TriplePattern& tp) const {
  const Dictionary& dict = *graph_->dict();
  for (const PatternTerm* pt : {&tp.s, &tp.p, &tp.o}) {
    if (pt->is_var()) continue;
    TermId id = pt->term();
    if (dict.IsIri(id) && !schema_.Contains(id)) return false;
  }
  return true;
}

BindingSet PeerNode::Answer(const TriplePattern& tp) {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return EvalTriplePattern(*graph_, tp);
}

}  // namespace rps
