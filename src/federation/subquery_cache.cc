#include "federation/subquery_cache.h"

#include <cstring>

namespace rps {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof v);
  out->append(buf, sizeof v);
}

void AppendPatternTerm(std::string* out, const PatternTerm& t) {
  out->push_back(t.is_var() ? 'v' : 'c');
  uint32_t id = t.is_var() ? t.var() : t.term();
  char buf[4];
  std::memcpy(buf, &id, sizeof id);
  out->append(buf, sizeof id);
}

size_t EstimateRowBytes(const std::string& key,
                        const SubQueryCache::Rows& rows) {
  size_t bytes = key.size() + sizeof(BindingSet);
  for (const Binding& b : *rows) {
    bytes += sizeof(Binding) + b.size() * sizeof(std::pair<VarId, TermId>);
  }
  return bytes;
}

}  // namespace

std::string SubQueryKey(size_t peer_index, size_t epoch, bool canonical,
                        const TriplePattern& pattern) {
  std::string key;
  key.reserve(2 + 16 + 15);
  key.push_back(canonical ? 'C' : 'R');
  AppendU64(&key, peer_index);
  AppendU64(&key, epoch);
  AppendPatternTerm(&key, pattern.s);
  AppendPatternTerm(&key, pattern.p);
  AppendPatternTerm(&key, pattern.o);
  return key;
}

SubQueryCache::SubQueryCache(const SubQueryCacheOptions& options,
                             std::string label)
    : options_(options) {
  obs::Registry& reg = obs::Registry::Global();
  hits_total_ = reg.counter("cache.hits");
  hits_labeled_ = reg.counter(obs::WithLabel("cache.hits", label));
  misses_total_ = reg.counter("cache.misses");
  misses_labeled_ = reg.counter(obs::WithLabel("cache.misses", label));
  evictions_total_ = reg.counter("cache.evictions");
  evictions_labeled_ = reg.counter(obs::WithLabel("cache.evictions", label));
  bytes_total_ = reg.gauge("cache.bytes");
  bytes_labeled_ = reg.gauge(obs::WithLabel("cache.bytes", label));
}

SubQueryCache::~SubQueryCache() {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_total_->Add(-static_cast<int64_t>(bytes_));
  bytes_labeled_->Add(-static_cast<int64_t>(bytes_));
}

SubQueryCache::Rows SubQueryCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    misses_total_->Add(1);
    misses_labeled_->Add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  hits_total_->Add(1);
  hits_labeled_->Add(1);
  return it->second.rows;
}

void SubQueryCache::Insert(std::string key, Rows rows) {
  if (!rows) return;
  size_t bytes = EstimateRowBytes(key, rows);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    bytes_total_->Add(static_cast<int64_t>(bytes) -
                      static_cast<int64_t>(it->second.bytes));
    bytes_labeled_->Add(static_cast<int64_t>(bytes) -
                        static_cast<int64_t>(it->second.bytes));
    bytes_ += bytes - it->second.bytes;
    it->second.rows = std::move(rows);
    it->second.bytes = bytes;
  } else {
    lru_.push_front(std::move(key));
    entries_.emplace(lru_.front(), Entry{std::move(rows), bytes, lru_.begin()});
    bytes_ += bytes;
    bytes_total_->Add(static_cast<int64_t>(bytes));
    bytes_labeled_->Add(static_cast<int64_t>(bytes));
  }
  while (!lru_.empty() &&
         ((options_.max_entries != 0 &&
           entries_.size() > options_.max_entries) ||
          (options_.max_bytes != 0 && bytes_ > options_.max_bytes))) {
    EvictLruLocked();
  }
}

SubQueryCacheStats SubQueryCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SubQueryCacheStats out = stats_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  return out;
}

void SubQueryCache::EvictLruLocked() {
  auto it = entries_.find(lru_.back());
  bytes_ -= it->second.bytes;
  bytes_total_->Add(-static_cast<int64_t>(it->second.bytes));
  bytes_labeled_->Add(-static_cast<int64_t>(it->second.bytes));
  entries_.erase(it);
  lru_.pop_back();
  ++stats_.evictions;
  evictions_total_->Add(1);
  evictions_labeled_->Add(1);
}

}  // namespace rps
