#include "federation/federator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rps {

namespace {

// Per-peer traffic counters: federation.subqueries{<peer>} counts the
// sub-query messages a peer served, federation.rows_shipped{<peer>} the
// result rows it sent back to the coordinator.
void CountPeerTraffic(const PeerNode& peer, size_t rows) {
  obs::Registry& reg = obs::Registry::Global();
  reg.counter(obs::WithLabel("federation.subqueries", peer.name()))
      ->Increment();
  reg.counter(obs::WithLabel("federation.rows_shipped", peer.name()))
      ->Add(rows);
}

}  // namespace

Federator::Federator(const RpsSystem* system, Topology topology)
    : system_(system),
      topology_(std::move(topology)),
      closure_(system->equivalences(), *system->dict()) {
  // Reserve so the PeerNodes' graph pointers stay stable.
  canonical_graphs_.reserve(system_->dataset().graphs().size());
  for (const auto& [name, graph] : system_->dataset().graphs()) {
    peers_.emplace_back(name, &graph);
    canonical_graphs_.push_back(closure_.CanonicalizeGraph(graph));
    canonical_peers_.emplace_back(name, &canonical_graphs_.back());
  }
}

Result<FederatedQueryResult> Federator::Execute(
    const GraphPatternQuery& query, const FederationOptions& options) {
  if (peers_.size() > topology_.NodeCount()) {
    return Status::InvalidArgument(
        "topology has fewer nodes than the system has peers");
  }
  FederatedQueryResult result;
  obs::Registry& reg = obs::Registry::Global();
  reg.counter("federation.executions")->Increment();
  obs::ScopedTimerMs run_timer(reg.histogram("federation.execute_ms"));
  obs::AutoSpan span("federation.execute");

  RPS_ASSIGN_OR_RETURN(RpsRewriteResult rewritten,
                       RewriteGraphQuery(*system_, query, options.rewrite));
  result.rewrite_stats = std::move(rewritten.stats);
  result.branches = rewritten.ucq.size();

  // Canonical-mode sub-queries are answered from the peers' locally
  // canonicalized graphs; raw-mode from the raw graphs.
  std::vector<PeerNode>& endpoints =
      rewritten.canonical_terms ? canonical_peers_ : peers_;

  const Dictionary& dict = *system_->dict();
  std::vector<Tuple> answers;

  for (const ConjunctiveQuery& cq : rewritten.ucq) {
    // Branch body as triple patterns.
    std::vector<TriplePattern> patterns;
    bool convertible = true;
    for (const Atom& atom : cq.body) {
      if (atom.args.size() != 3) {
        convertible = false;
        break;
      }
      patterns.push_back(AtomToTriplePattern(atom));
    }
    if (!convertible) continue;

    // Fetch each pattern's extension from the peers that may answer it,
    // most selective (fewest estimated candidates) first, and join at the
    // coordinator.
    std::vector<size_t> order(patterns.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    auto estimate = [&](const TriplePattern& tp) {
      size_t total = 0;
      for (const PeerNode& peer : endpoints) {
        total += peer.graph().EstimateMatches(
            tp.s.AsMatchKey(), tp.p.AsMatchKey(), tp.o.AsMatchKey());
      }
      return total;
    };
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return estimate(patterns[a]) < estimate(patterns[b]);
    });

    BindingSet current = {Binding()};
    bool first_pattern = true;
    for (size_t idx : order) {
      const TriplePattern& tp = patterns[idx];

      bool use_bind_join =
          options.join_strategy == JoinStrategy::kBindJoin && !first_pattern;
      if (!use_bind_join) {
        // Ship the pattern's full extension and join at the coordinator.
        // Peers are independent endpoints, so their sub-queries run
        // concurrently; accounting and the merge happen serially at the
        // coordinator in peer order, keeping answers identical to the
        // serial execution.
        std::vector<BindingSet> per_peer(endpoints.size());
        std::vector<char> answered(endpoints.size(), 0);
        ThreadPool::Global().ParallelFor(
            endpoints.size(), options.threads, [&](size_t p) {
              if (!endpoints[p].MayAnswer(tp)) return;
              per_peer[p] = endpoints[p].Answer(tp);
              answered[p] = 1;
            });
        BindingSet pattern_results;
        for (size_t p = 0; p < endpoints.size(); ++p) {
          if (!answered[p]) continue;
          BindingSet& local = per_peer[p];
          ++result.subqueries;
          CountPeerTraffic(endpoints[p], local.size());
          size_t hops = topology_.HopDistance(options.coordinator, p);
          double payload = static_cast<double>(local.size()) *
                           static_cast<double>(tp.Vars().size()) *
                           options.cost.bytes_per_term;
          result.network.AddExchange(payload, hops, options.cost);
          for (Binding& b : local) pattern_results.push_back(std::move(b));
        }
        Dedup(&pattern_results);
        current = Join(current, pattern_results);
      } else {
        // Bind join: send batched bound sub-queries; peers return only
        // the rows compatible with the accumulated bindings. Within a
        // batch the per-peer requests fan out concurrently.
        BindingSet next;
        size_t batch = std::max<size_t>(options.bind_join_batch, 1);
        for (size_t start = 0; start < current.size(); start += batch) {
          size_t end = std::min(current.size(), start + batch);
          std::vector<BindingSet> per_peer(endpoints.size());
          std::vector<size_t> per_peer_rows(endpoints.size(), 0);
          std::vector<char> answered(endpoints.size(), 0);
          ThreadPool::Global().ParallelFor(
              endpoints.size(), options.threads, [&](size_t p) {
                PeerNode& peer = endpoints[p];
                if (!peer.MayAnswer(tp)) return;
                answered[p] = 1;
                for (size_t i = start; i < end; ++i) {
                  const Binding& b = current[i];
                  // Substitute the bound variables into the pattern.
                  auto bind_term = [&](const PatternTerm& pt) {
                    if (pt.is_var()) {
                      std::optional<TermId> value = b.Get(pt.var());
                      if (value.has_value()) {
                        return PatternTerm::Const(*value);
                      }
                    }
                    return pt;
                  };
                  TriplePattern bound{bind_term(tp.s), bind_term(tp.p),
                                      bind_term(tp.o)};
                  if (!peer.MayAnswer(bound)) continue;
                  BindingSet local = peer.Answer(bound);
                  per_peer_rows[p] += local.size();
                  for (const Binding& r : local) {
                    std::optional<Binding> merged = Binding::Merge(b, r);
                    if (merged.has_value()) {
                      per_peer[p].push_back(std::move(*merged));
                    }
                  }
                }
              });
          for (size_t p = 0; p < endpoints.size(); ++p) {
            if (!answered[p]) continue;
            // One batched request/response exchange per (batch, peer):
            // the request carries the binding batch, the response the
            // matching rows.
            ++result.subqueries;
            CountPeerTraffic(endpoints[p], per_peer_rows[p]);
            size_t hops = topology_.HopDistance(options.coordinator, p);
            double request_payload =
                static_cast<double>(end - start) *
                static_cast<double>(tp.Vars().size()) *
                options.cost.bytes_per_term;
            double response_payload =
                static_cast<double>(per_peer_rows[p]) *
                static_cast<double>(tp.Vars().size()) *
                options.cost.bytes_per_term;
            result.network.AddExchange(request_payload + response_payload,
                                       hops, options.cost);
            for (Binding& b : per_peer[p]) next.push_back(std::move(b));
          }
        }
        Dedup(&next);
        current = std::move(next);
      }
      first_pattern = false;
      if (current.empty()) break;
    }

    // Project the branch head.
    for (const Binding& b : current) {
      Tuple tuple;
      tuple.reserve(cq.head.size());
      bool keep = true;
      for (const AtomArg& arg : cq.head) {
        TermId value;
        if (arg.is_const()) {
          value = arg.term();
        } else {
          std::optional<TermId> bound = b.Get(arg.var());
          if (!bound.has_value()) {
            keep = false;
            break;
          }
          value = *bound;
        }
        if (dict.IsBlank(value)) {
          keep = false;
          break;
        }
        tuple.push_back(value);
      }
      if (keep) answers.push_back(std::move(tuple));
    }
  }

  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  if (rewritten.canonical_terms) {
    answers = closure_.ExpandTuples(answers);
  }
  result.answers = std::move(answers);
  reg.counter("federation.subqueries")->Add(result.subqueries);
  reg.counter("federation.branches")->Add(result.branches);
  span.Annotate("branches", result.branches);
  span.Annotate("subqueries", result.subqueries);
  span.Annotate("answers", result.answers.size());
  if (options.threads > 1) {
    span.Annotate("threads", static_cast<uint64_t>(options.threads));
  }
  return result;
}

Result<FederatedQueryResult> Federator::ExecuteCentralized(
    const GraphPatternQuery& query, const FederationOptions& options) {
  if (peers_.size() > topology_.NodeCount()) {
    return Status::InvalidArgument(
        "topology has fewer nodes than the system has peers");
  }
  FederatedQueryResult result;
  obs::Registry::Global().counter("federation.centralized_executions")
      ->Increment();
  obs::AutoSpan span("federation.execute_centralized");

  RPS_ASSIGN_OR_RETURN(RpsRewriteResult rewritten,
                       RewriteGraphQuery(*system_, query, options.rewrite));
  result.rewrite_stats = std::move(rewritten.stats);
  result.branches = rewritten.ucq.size();

  // Ship every peer graph to the coordinator.
  for (size_t p = 0; p < peers_.size(); ++p) {
    ++result.subqueries;
    size_t hops = topology_.HopDistance(options.coordinator, p);
    double payload = static_cast<double>(peers_[p].graph().size()) * 3.0 *
                     options.cost.bytes_per_term;
    result.network.AddExchange(payload, hops, options.cost);
  }

  Graph merged = system_->StoredDatabase();
  if (rewritten.canonical_terms) {
    Graph canonical = closure_.CanonicalizeGraph(merged);
    result.answers =
        closure_.ExpandTuples(EvalUcqOverGraph(canonical, rewritten.ucq));
  } else {
    result.answers = EvalUcqOverGraph(merged, rewritten.ucq);
  }
  return result;
}

}  // namespace rps
