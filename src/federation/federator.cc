#include "federation/federator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/plan.h"
#include "storage/storage.h"
#include "util/thread_pool.h"

namespace rps {

namespace {

// Per-peer traffic counters: federation.subqueries{<peer>} counts the
// sub-query messages a peer served, federation.rows_shipped{<peer>} the
// result rows it sent back to the coordinator.
void CountPeerTraffic(const PeerNode& peer, size_t rows) {
  obs::Registry& reg = obs::Registry::Global();
  reg.counter(obs::WithLabel("federation.subqueries", peer.name()))
      ->Increment();
  reg.counter(obs::WithLabel("federation.rows_shipped", peer.name()))
      ->Add(rows);
}

// Attempt ordinal base for hedged re-dispatches: keeps their fault draws
// disjoint from every primary/retry attempt of any peer (retry budgets
// are far below this).
constexpr uint64_t kHedgeAttemptBase = 1u << 20;

// Attempt ordinal base for post-recovery re-issues, disjoint from both
// primaries/retries and hedges.
constexpr uint64_t kRecoveryAttemptBase = 1u << 21;

// Per-task accumulator for one peer's sub-query on one pattern (or
// bind-join batch). Fan-out tasks write only their own instance; the
// coordinator merges them in peer order after the join, so the totals —
// including the floating-point latency sum — are identical for every
// thread count.
struct SubQueryStats {
  NetworkStats net;
  size_t retries = 0;
  size_t timeouts = 0;
  size_t hedged = 0;
  // The peer never delivered, even after retries and hedging.
  bool degraded = false;
};

// Read-only environment shared by the retry pipeline across tasks.
struct ExchangeEnv {
  const FaultInjector* injector;
  const RetryPolicy* retry;
  const NetworkCostModel* cost;
  const Topology* topology;
  size_t coordinator;
};

// Simulates one request/response exchange of `payload_bytes` with
// `target`. On delivery, charges the exchange (with the peer's latency
// factor and the key's fault jitter) to `stats` and returns true; on a
// loss (crashed peer, dropped message, or response past the timeout)
// charges a lost request plus the full timeout wait and returns false.
bool AttemptExchange(const ExchangeEnv& env, size_t target,
                     size_t primary_seq, uint64_t key, double payload_bytes,
                     SubQueryStats* stats) {
  const FaultInjector& injector = *env.injector;
  if (!injector.PeerUp(target, primary_seq) || injector.DropExchange(key)) {
    stats->net.AddLostExchange(env.retry->timeout_ms, *env.cost);
    return false;
  }
  size_t hops = env.topology->HopDistance(env.coordinator, target);
  double propagation = 2.0 * env.cost->latency_ms_per_hop *
                       static_cast<double>(hops == SIZE_MAX ? 0 : hops);
  double transfer = (payload_bytes + env.cost->bytes_per_request) /
                    env.cost->bandwidth_bytes_per_ms;
  double factor = injector.PeerLatencyFactor(target);
  double jitter = injector.LatencyJitterMs(key);
  if ((propagation + transfer) * factor + jitter > env.retry->timeout_ms) {
    stats->net.AddLostExchange(env.retry->timeout_ms, *env.cost);
    return false;
  }
  stats->net.AddExchange(payload_bytes, hops, *env.cost, factor, jitter);
  return true;
}

// Runs the bounded-retry loop for one sub-query exchange with `peer`:
// initial attempt plus up to max_retries retries, each preceded by
// exponential backoff with deterministic jitter. Returns true once an
// attempt delivers.
bool DeliverWithRetries(const ExchangeEnv& env, size_t peer,
                        size_t primary_seq, uint64_t branch,
                        uint64_t pattern, uint64_t batch,
                        double payload_bytes, SubQueryStats* stats) {
  const RetryPolicy& retry = *env.retry;
  for (size_t attempt = 0; attempt <= retry.max_retries; ++attempt) {
    uint64_t key =
        FaultInjector::RequestKey(branch, pattern, batch, peer, attempt);
    if (attempt > 0) {
      stats->retries += 1;
      double backoff =
          retry.backoff_base_ms *
          std::pow(retry.backoff_multiplier,
                   static_cast<double>(attempt - 1)) *
          (1.0 + retry.backoff_jitter_frac * env.injector->UnitJitter(key));
      stats->net.AddWait(backoff);
    }
    if (AttemptExchange(env, peer, primary_seq, key, payload_bytes, stats)) {
      return true;
    }
    stats->timeouts += 1;
  }
  return false;
}

}  // namespace

Federator::Federator(const RpsSystem* system, Topology topology)
    : system_(system),
      topology_(std::move(topology)),
      closure_(system->equivalences(), *system->dict()),
      rewrite_cache_(RewriteCacheOptions{true}, "rewrite"),
      subquery_cache_(SubQueryCacheOptions{true}, "subquery") {
  // Reserve so the PeerNodes' graph pointers stay stable.
  canonical_graphs_.reserve(system_->dataset().graphs().size());
  for (const auto& [name, graph] : system_->dataset().graphs()) {
    peers_.emplace_back(name, &graph);
    canonical_graphs_.push_back(closure_.CanonicalizeGraph(graph));
    canonical_peers_.emplace_back(name, &canonical_graphs_.back());
  }
  // Replica detection for hedged re-dispatch: peers whose raw graphs are
  // equal as triple sets host the same data (their canonicalized copies
  // are then equal too), so either can serve the other's sub-queries.
  replicas_.resize(peers_.size());
  for (size_t p = 0; p < peers_.size(); ++p) {
    for (size_t q = 0; q < peers_.size(); ++q) {
      if (p == q) continue;
      const Graph& a = peers_[p].graph();
      const Graph& b = peers_[q].graph();
      if (a.size() != b.size() || a.size() == 0) continue;
      bool equal = true;
      for (const Triple& t : a.triples()) {
        if (!b.Contains(t)) {
          equal = false;
          break;
        }
      }
      if (equal) replicas_[p].push_back(q);
    }
  }
  recovered_.assign(peers_.size(), 0);
}

Status Federator::AttachStorage(const std::string& dir) {
  RPS_RETURN_IF_ERROR(storage::EnsureDir(dir));
  for (const PeerNode& peer : peers_) {
    RPS_RETURN_IF_ERROR(storage::SaveGraph(
        storage::SnapshotPath(dir, peer.name()), peer.graph()));
  }
  storage_dir_ = dir;
  return Status::OK();
}

Status Federator::RecoverPeer(size_t p) {
  if (p >= peers_.size()) {
    return Status::InvalidArgument("RecoverPeer: no peer " +
                                   std::to_string(p));
  }
  if (storage_dir_.empty()) {
    return Status::FailedPrecondition(
        "RecoverPeer: no storage attached (call AttachStorage first)");
  }
  if (recovered_[p]) return Status::OK();
  // The restarted peer shares the federation dictionary its snapshot was
  // written from, so the id remap is the identity and the load attaches
  // the snapshot memory-mapped — the peer is back without materializing
  // a triple.
  recovered_graphs_.emplace_back(peers_[p].graph().dict());
  Graph& graph = recovered_graphs_.back();
  Result<storage::LoadReport> report = storage::LoadGraph(
      storage::SnapshotPath(storage_dir_, peers_[p].name()), &graph);
  if (!report.ok()) {
    recovered_graphs_.pop_back();
    return report.status();
  }
  peers_[p] = PeerNode(peers_[p].name(), &graph);
  canonical_graphs_[p] = closure_.CanonicalizeGraph(graph);
  canonical_peers_[p] = PeerNode(canonical_peers_[p].name(),
                                 &canonical_graphs_[p]);
  recovered_[p] = 1;
  obs::Registry::Global().counter("federation.recoveries")->Increment();
  return Status::OK();
}

Result<FederatedQueryResult> Federator::Execute(
    const GraphPatternQuery& query, const FederationOptions& options) {
  if (peers_.size() > topology_.NodeCount()) {
    return Status::InvalidArgument(
        "topology has fewer nodes than the system has peers");
  }
  FederatedQueryResult result;
  obs::Registry& reg = obs::Registry::Global();
  reg.counter("federation.executions")->Increment();
  obs::ScopedTimerMs run_timer(reg.histogram("federation.execute_ms"));
  obs::AutoSpan span("federation.execute");

  RPS_ASSIGN_OR_RETURN(
      RewriteCache::CachedRewrite shared_rewrite,
      RewriteGraphQueryCached(*system_, query, options.rewrite,
                              options.use_rewrite_cache ? &rewrite_cache_
                                                        : nullptr));
  const RpsRewriteResult& rewritten = *shared_rewrite;
  result.rewrite_stats = rewritten.stats;
  result.branches = rewritten.ucq.size();

  // Canonical-mode sub-queries are answered from the peers' locally
  // canonicalized graphs; raw-mode from the raw graphs.
  const bool canonical_mode = rewritten.canonical_terms;
  std::vector<PeerNode>& endpoints =
      canonical_mode ? canonical_peers_ : peers_;

  // Answers `pattern` via `target`, serving repeated sub-queries from
  // the epoch-keyed cache when enabled. The peer's graph is append-only,
  // so the (peer, epoch, pattern) key can never alias a different data
  // state — a hit is byte-identical to a fresh PeerNode::Answer.
  auto answer_subquery = [&](PeerNode& target, const TriplePattern& pattern) {
    if (!options.use_subquery_cache) return target.Answer(pattern);
    size_t peer_index = static_cast<size_t>(&target - endpoints.data());
    std::string key = SubQueryKey(peer_index, target.graph().SnapshotEpoch(),
                                  canonical_mode, pattern);
    if (SubQueryCache::Rows cached = subquery_cache_.Lookup(key)) {
      return *cached;
    }
    BindingSet rows = target.Answer(pattern);
    subquery_cache_.Insert(std::move(key),
                           std::make_shared<const BindingSet>(rows));
    return rows;
  };

  const Dictionary& dict = *system_->dict();
  std::vector<Tuple> answers;

  // Fault-tolerance machinery. On a perfect network (the default) the
  // injector is inactive and every sub-query takes the zero-overhead
  // direct path.
  FaultInjector injector(options.faults, endpoints.size());
  ExchangeEnv env{&injector, &options.retry, &options.cost, &topology_,
                  options.coordinator};
  // Per-peer ordinal of the next primary sub-query, advanced serially at
  // dispatch so crash-after schedules are independent of thread count.
  std::vector<size_t> primary_seq(endpoints.size(), 0);
  // Peer indices that failed to deliver after retries + hedging.
  std::set<size_t> degraded;

  // Simulates the delivery of one sub-query whose response was computed
  // by `eval` (the simulation evaluates first, then "transmits"):
  // retries with backoff against `peer`, then hedges to its replicas.
  // Returns false (and flags degradation) when every attempt failed;
  // `rows`/`raw_rows` hold the delivered response on success.
  auto deliver = [&](size_t p, size_t seq, uint64_t branch_i,
                     uint64_t pattern_i, uint64_t batch_i,
                     double request_payload, double bytes_per_row,
                     const std::function<BindingSet(PeerNode&, size_t*)>&
                         eval,
                     SubQueryStats* st, BindingSet* rows,
                     size_t* raw_rows) {
    size_t raw = 0;
    BindingSet local = eval(endpoints[p], &raw);
    double payload =
        request_payload + static_cast<double>(raw) * bytes_per_row;
    if (!injector.active()) {
      size_t hops = topology_.HopDistance(options.coordinator, p);
      st->net.AddExchange(payload, hops, options.cost);
      *rows = std::move(local);
      *raw_rows = raw;
      return true;
    }
    if (DeliverWithRetries(env, p, seq, branch_i, pattern_i, batch_i,
                           payload, st)) {
      *rows = std::move(local);
      *raw_rows = raw;
      return true;
    }
    if (options.retry.hedge) {
      for (size_t q : Replicas(p)) {
        uint64_t key = FaultInjector::RequestKey(branch_i, pattern_i,
                                                 batch_i, p,
                                                 kHedgeAttemptBase + q);
        if (AttemptExchange(env, q, SIZE_MAX, key, payload, st)) {
          st->hedged += 1;
          size_t hedged_raw = 0;
          *rows = eval(endpoints[q], &hedged_raw);
          *raw_rows = hedged_raw;
          return true;
        }
        st->timeouts += 1;
      }
    }
    st->degraded = true;
    return false;
  };

  // Crash-restart recovery: when a sub-query failed because the peer is
  // crash-down (not because of drops or slowness) and snapshot storage
  // is attached, the coordinator restarts the peer from its on-disk
  // snapshot, waits out the restart, and re-issues the sub-query to the
  // recovered endpoint. Runs only at the serial per-pattern merge point
  // — never inside the fan-out — so endpoint repointing and the
  // injector's recovery flag cannot race concurrent tasks and results
  // stay identical for every thread count. Returns true when the
  // re-issue delivered; `st`/`rows`/`raw_rows` are updated in place.
  auto recover_and_retry = [&](size_t p, size_t seq, uint64_t branch_i,
                               uint64_t pattern_i, uint64_t batch_i,
                               double request_payload, double bytes_per_row,
                               const std::function<BindingSet(PeerNode&,
                                                              size_t*)>& eval,
                               SubQueryStats* st, BindingSet* rows,
                               size_t* raw_rows) {
    if (storage_dir_.empty()) return false;
    if (injector.PeerUp(p, seq)) return false;  // not a crash: no restart
    if (!RecoverPeer(p).ok()) return false;
    injector.MarkRecovered(p);
    st->net.AddWait(options.retry.restart_ms);
    size_t raw = 0;
    BindingSet local = eval(endpoints[p], &raw);
    double payload =
        request_payload + static_cast<double>(raw) * bytes_per_row;
    for (size_t attempt = 0; attempt <= options.retry.max_retries;
         ++attempt) {
      uint64_t key = FaultInjector::RequestKey(
          branch_i, pattern_i, batch_i, p, kRecoveryAttemptBase + attempt);
      if (AttemptExchange(env, p, seq, key, payload, st)) {
        st->degraded = false;
        *rows = std::move(local);
        *raw_rows = raw;
        return true;
      }
      st->timeouts += 1;
    }
    return false;
  };
  // Peer indices restarted from disk during this execution.
  std::set<size_t> recovered_now;

  uint64_t branch_index = 0;
  for (const ConjunctiveQuery& cq : rewritten.ucq) {
    // Branch body as triple patterns.
    std::vector<TriplePattern> patterns;
    bool convertible = true;
    for (const Atom& atom : cq.body) {
      if (atom.args.size() != 3) {
        convertible = false;
        break;
      }
      patterns.push_back(AtomToTriplePattern(atom));
    }
    if (!convertible) continue;

    // Fetch each pattern's extension from the peers that may answer it
    // in cost-based plan order, and join at the coordinator. The
    // permuted graph indexes make each per-peer estimate the exact
    // pattern cardinality, so the planner's leaf statistic is the true
    // federation-wide extension size; PlanJoinOrder runs the same join
    // DP as the local engine over those totals, which also accounts for
    // join-variable connectivity (a selectivity-only sort can pick a
    // cross product between disconnected cheap patterns).
    std::vector<size_t> cardinalities(patterns.size());
    std::vector<JoinOrderHints> hints(patterns.size());
    for (size_t i = 0; i < patterns.size(); ++i) {
      size_t total = 0;
      for (const PeerNode& peer : endpoints) {
        total += peer.graph().EstimateMatches(patterns[i].s.AsMatchKey(),
                                              patterns[i].p.AsMatchKey(),
                                              patterns[i].o.AsMatchKey());
      }
      cardinalities[i] = total;
      // Constant-predicate patterns additionally carry the federation-
      // wide distinct subject / object counts of that predicate, which
      // tighten the DP's join-selectivity denominators (the sum across
      // peers is a valid upper bound on the union's distinct counts).
      if (patterns[i].p.is_const()) {
        for (const PeerNode& peer : endpoints) {
          Graph::PredDistinct pd =
              peer.graph().PredicateDistincts(patterns[i].p.term());
          hints[i].distinct_s += pd.subjects;
          hints[i].distinct_o += pd.objects;
        }
      }
    }
    std::vector<size_t> order = PlanJoinOrder(patterns, cardinalities, hints);

    BindingSet current = {Binding()};
    bool first_pattern = true;
    for (size_t idx : order) {
      const TriplePattern& tp = patterns[idx];

      bool use_bind_join =
          options.join_strategy == JoinStrategy::kBindJoin && !first_pattern;
      double bytes_per_row = static_cast<double>(tp.Vars().size()) *
                             options.cost.bytes_per_term;
      if (!use_bind_join) {
        // Ship the pattern's full extension and join at the coordinator.
        // Peers are independent endpoints, so their sub-queries run
        // concurrently; each task accumulates its own SubQueryStats and
        // the merge happens serially at the coordinator in peer order,
        // keeping answers and accounting identical to the serial
        // execution for any thread count.
        std::vector<BindingSet> per_peer(endpoints.size());
        std::vector<char> answered(endpoints.size(), 0);
        std::vector<SubQueryStats> task_stats(endpoints.size());
        std::vector<size_t> seq(endpoints.size(), 0);
        for (size_t p = 0; p < endpoints.size(); ++p) {
          if (endpoints[p].MayAnswer(tp)) seq[p] = primary_seq[p]++;
        }
        // Evaluates the pattern against `target` (shared by the fan-out
        // and any post-recovery re-issue).
        std::function<BindingSet(PeerNode&, size_t*)> eval_pattern =
            [&tp, &answer_subquery](PeerNode& target, size_t* raw_rows) {
              BindingSet rows = answer_subquery(target, tp);
              *raw_rows = rows.size();
              return rows;
            };
        ThreadPool::Global().ParallelFor(
            endpoints.size(), options.threads, [&](size_t p) {
              if (!endpoints[p].MayAnswer(tp)) return;
              answered[p] = 1;
              size_t raw = 0;
              deliver(p, seq[p], branch_index, idx, /*batch_i=*/0,
                      /*request_payload=*/0.0, bytes_per_row, eval_pattern,
                      &task_stats[p], &per_peer[p], &raw);
            });
        BindingSet pattern_results;
        for (size_t p = 0; p < endpoints.size(); ++p) {
          if (!answered[p]) continue;
          if (task_stats[p].degraded) {
            size_t raw = 0;
            if (recover_and_retry(p, seq[p], branch_index, idx,
                                  /*batch_i=*/0, /*request_payload=*/0.0,
                                  bytes_per_row, eval_pattern,
                                  &task_stats[p], &per_peer[p], &raw)) {
              recovered_now.insert(p);
            }
          }
          ++result.subqueries;
          CountPeerTraffic(endpoints[p], per_peer[p].size());
          result.network.Merge(task_stats[p].net);
          result.retries += task_stats[p].retries;
          result.timeouts += task_stats[p].timeouts;
          result.hedged += task_stats[p].hedged;
          if (task_stats[p].degraded) degraded.insert(p);
          for (Binding& b : per_peer[p]) {
            pattern_results.push_back(std::move(b));
          }
        }
        Dedup(&pattern_results);
        current = Join(current, pattern_results);
      } else {
        // Bind join: send batched bound sub-queries; peers return only
        // the rows compatible with the accumulated bindings. Within a
        // batch the per-peer requests fan out concurrently, with the
        // same per-task-and-merge stats discipline as extension
        // shipping.
        BindingSet next;
        size_t batch = std::max<size_t>(options.bind_join_batch, 1);
        uint64_t batch_index = 0;
        for (size_t start = 0; start < current.size();
             start += batch, ++batch_index) {
          size_t end = std::min(current.size(), start + batch);
          std::vector<BindingSet> per_peer(endpoints.size());
          std::vector<size_t> per_peer_rows(endpoints.size(), 0);
          std::vector<char> answered(endpoints.size(), 0);
          std::vector<SubQueryStats> task_stats(endpoints.size());
          std::vector<size_t> seq(endpoints.size(), 0);
          for (size_t p = 0; p < endpoints.size(); ++p) {
            if (endpoints[p].MayAnswer(tp)) seq[p] = primary_seq[p]++;
          }
          // Evaluates the batch's bound sub-queries against `target`,
          // returning the merged rows and the raw matching row count.
          auto eval_batch = [&](PeerNode& target, size_t* raw_rows) {
            BindingSet merged_rows;
            size_t raw = 0;
            for (size_t i = start; i < end; ++i) {
              const Binding& b = current[i];
              // Substitute the bound variables into the pattern.
              auto bind_term = [&](const PatternTerm& pt) {
                if (pt.is_var()) {
                  std::optional<TermId> value = b.Get(pt.var());
                  if (value.has_value()) {
                    return PatternTerm::Const(*value);
                  }
                }
                return pt;
              };
              TriplePattern bound{bind_term(tp.s), bind_term(tp.p),
                                  bind_term(tp.o)};
              if (!target.MayAnswer(bound)) continue;
              BindingSet local = answer_subquery(target, bound);
              raw += local.size();
              for (const Binding& r : local) {
                std::optional<Binding> merged = Binding::Merge(b, r);
                if (merged.has_value()) {
                  merged_rows.push_back(std::move(*merged));
                }
              }
            }
            *raw_rows = raw;
            return merged_rows;
          };
          ThreadPool::Global().ParallelFor(
              endpoints.size(), options.threads, [&](size_t p) {
                if (!endpoints[p].MayAnswer(tp)) return;
                answered[p] = 1;
                double request_payload =
                    static_cast<double>(end - start) * bytes_per_row;
                deliver(p, seq[p], branch_index, idx, batch_index,
                        request_payload, bytes_per_row, eval_batch,
                        &task_stats[p], &per_peer[p], &per_peer_rows[p]);
              });
          for (size_t p = 0; p < endpoints.size(); ++p) {
            if (!answered[p]) continue;
            if (task_stats[p].degraded) {
              double request_payload =
                  static_cast<double>(end - start) * bytes_per_row;
              if (recover_and_retry(p, seq[p], branch_index, idx,
                                    batch_index, request_payload,
                                    bytes_per_row, eval_batch,
                                    &task_stats[p], &per_peer[p],
                                    &per_peer_rows[p])) {
                recovered_now.insert(p);
              }
            }
            // One batched request/response exchange per (batch, peer):
            // the request carries the binding batch, the response the
            // matching rows.
            ++result.subqueries;
            CountPeerTraffic(endpoints[p], per_peer_rows[p]);
            result.network.Merge(task_stats[p].net);
            result.retries += task_stats[p].retries;
            result.timeouts += task_stats[p].timeouts;
            result.hedged += task_stats[p].hedged;
            if (task_stats[p].degraded) degraded.insert(p);
            for (Binding& b : per_peer[p]) next.push_back(std::move(b));
          }
        }
        Dedup(&next);
        current = std::move(next);
      }
      first_pattern = false;
      if (current.empty()) break;
    }

    // Project the branch head.
    for (const Binding& b : current) {
      Tuple tuple;
      tuple.reserve(cq.head.size());
      bool keep = true;
      for (const AtomArg& arg : cq.head) {
        TermId value;
        if (arg.is_const()) {
          value = arg.term();
        } else {
          std::optional<TermId> bound = b.Get(arg.var());
          if (!bound.has_value()) {
            keep = false;
            break;
          }
          value = *bound;
        }
        if (dict.IsBlank(value)) {
          keep = false;
          break;
        }
        tuple.push_back(value);
      }
      if (keep) answers.push_back(std::move(tuple));
    }
    ++branch_index;
  }

  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  if (rewritten.canonical_terms) {
    answers = closure_.ExpandTuples(answers);
  }
  result.answers = std::move(answers);
  // A run is partial exactly when some peer stayed unreachable: the
  // answers are then a sound subset of the zero-fault certain answers
  // (faults only remove rows from pattern extensions, and every
  // downstream operator — join, projection, blank-dropping, expansion —
  // is monotone).
  for (size_t p : degraded) {
    result.degraded_peers.push_back(endpoints[p].name());
  }
  for (size_t p : recovered_now) {
    result.recovered_peers.push_back(endpoints[p].name());
  }
  result.completeness = degraded.empty() ? Completeness::kComplete
                                         : Completeness::kPartialSound;
  reg.counter("federation.subqueries")->Add(result.subqueries);
  reg.counter("federation.branches")->Add(result.branches);
  reg.counter("federation.retries")->Add(result.retries);
  reg.counter("federation.timeouts")->Add(result.timeouts);
  reg.counter("federation.hedged")->Add(result.hedged);
  reg.counter("federation.degraded_peers")
      ->Add(result.degraded_peers.size());
  span.Annotate("branches", result.branches);
  span.Annotate("subqueries", result.subqueries);
  span.Annotate("answers", result.answers.size());
  if (options.use_rewrite_cache) {
    span.Annotate("rewrite_cache_hits", rewrite_cache_.Stats().hits);
  }
  if (options.use_subquery_cache) {
    SubQueryCacheStats sq = subquery_cache_.Stats();
    span.Annotate("subquery_cache_hits", sq.hits);
    span.Annotate("subquery_cache_entries", sq.entries);
  }
  if (injector.active()) {
    span.Annotate("completeness", std::string(ToString(result.completeness)));
    span.Annotate("retries", result.retries);
    span.Annotate("timeouts", result.timeouts);
    span.Annotate("hedged", result.hedged);
    span.Annotate("degraded_peers", result.degraded_peers.size());
    span.Annotate("recovered_peers", result.recovered_peers.size());
  }
  if (options.threads > 1) {
    span.Annotate("threads", static_cast<uint64_t>(options.threads));
  }
  return result;
}

Result<FederatedQueryResult> Federator::ExecuteCentralized(
    const GraphPatternQuery& query, const FederationOptions& options) {
  if (peers_.size() > topology_.NodeCount()) {
    return Status::InvalidArgument(
        "topology has fewer nodes than the system has peers");
  }
  FederatedQueryResult result;
  obs::Registry::Global().counter("federation.centralized_executions")
      ->Increment();
  obs::AutoSpan span("federation.execute_centralized");

  RPS_ASSIGN_OR_RETURN(
      RewriteCache::CachedRewrite shared_rewrite,
      RewriteGraphQueryCached(*system_, query, options.rewrite,
                              options.use_rewrite_cache ? &rewrite_cache_
                                                        : nullptr));
  const RpsRewriteResult& rewritten = *shared_rewrite;
  result.rewrite_stats = rewritten.stats;
  result.branches = rewritten.ucq.size();

  // Ship every peer graph to the coordinator.
  for (size_t p = 0; p < peers_.size(); ++p) {
    ++result.subqueries;
    size_t hops = topology_.HopDistance(options.coordinator, p);
    double payload = static_cast<double>(peers_[p].graph().size()) * 3.0 *
                     options.cost.bytes_per_term;
    result.network.AddExchange(payload, hops, options.cost);
  }

  Graph merged = system_->StoredDatabase();
  if (rewritten.canonical_terms) {
    Graph canonical = closure_.CanonicalizeGraph(merged);
    result.answers =
        closure_.ExpandTuples(EvalUcqOverGraph(canonical, rewritten.ucq));
  } else {
    result.answers = EvalUcqOverGraph(merged, rewritten.ucq);
  }
  return result;
}

}  // namespace rps
