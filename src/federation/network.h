#ifndef RPS_FEDERATION_NETWORK_H_
#define RPS_FEDERATION_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rps {

/// Cost model for the simulated peer network. The paper's prototype (§5,
/// item 4) federates live SPARQL endpoints; we simulate the transport so
/// the federation experiments can report network-shaped metrics
/// deterministically (DESIGN.md §2, substitution table).
struct NetworkCostModel {
  /// One-way propagation delay per hop on the peer topology.
  double latency_ms_per_hop = 5.0;
  /// Serialized size of one RDF term in a result message.
  double bytes_per_term = 16.0;
  /// Fixed request overhead per sub-query message.
  double bytes_per_request = 256.0;
  /// Throughput used to convert payload bytes into transfer time.
  double bandwidth_bytes_per_ms = 10000.0;
};

/// Accumulated traffic statistics of a federated query execution.
struct NetworkStats {
  size_t messages = 0;
  size_t bytes = 0;
  double latency_ms = 0.0;

  /// Records a request/response exchange of `payload_bytes` over a path
  /// of `hops` edges.
  void AddExchange(double payload_bytes, size_t hops,
                   const NetworkCostModel& model);
};

/// An undirected peer topology over node indices 0..n-1.
class Topology {
 public:
  explicit Topology(size_t nodes) : adjacency_(nodes) {}

  size_t NodeCount() const { return adjacency_.size(); }
  size_t EdgeCount() const { return edges_; }

  /// Adds an undirected edge (idempotent; self-loops ignored).
  void AddEdge(size_t a, size_t b);

  const std::vector<size_t>& Neighbors(size_t node) const {
    return adjacency_[node];
  }

  /// BFS hop distance; returns SIZE_MAX if unreachable.
  size_t HopDistance(size_t from, size_t to) const;

  /// Standard shapes used by the experiments.
  static Topology Chain(size_t nodes);
  static Topology Star(size_t nodes);   // node 0 is the hub
  static Topology Ring(size_t nodes);
  static Topology Random(size_t nodes, double edge_prob, uint64_t seed);

  /// One-line description ("chain(8)").
  std::string Describe() const;

 private:
  std::vector<std::vector<size_t>> adjacency_;
  size_t edges_ = 0;
  std::string label_ = "custom";

  friend Topology MakeLabeled(Topology t, std::string label);
};

}  // namespace rps

#endif  // RPS_FEDERATION_NETWORK_H_
