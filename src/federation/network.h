#ifndef RPS_FEDERATION_NETWORK_H_
#define RPS_FEDERATION_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace rps {

/// Cost model for the simulated peer network. The paper's prototype (§5,
/// item 4) federates live SPARQL endpoints; we simulate the transport so
/// the federation experiments can report network-shaped metrics
/// deterministically (DESIGN.md §2, substitution table).
struct NetworkCostModel {
  /// One-way propagation delay per hop on the peer topology.
  double latency_ms_per_hop = 5.0;
  /// Serialized size of one RDF term in a result message.
  double bytes_per_term = 16.0;
  /// Fixed request overhead per sub-query message.
  double bytes_per_request = 256.0;
  /// Throughput used to convert payload bytes into transfer time.
  double bandwidth_bytes_per_ms = 10000.0;
};

/// Accumulated traffic statistics of a federated query execution.
///
/// Not thread-safe: concurrent fan-out tasks each accumulate into their
/// own per-task instance, which the coordinator merges in peer order
/// after the join (`Merge`), so totals are deterministic for every
/// thread count.
struct NetworkStats {
  size_t messages = 0;
  size_t bytes = 0;
  double latency_ms = 0.0;

  /// Records a request/response exchange of `payload_bytes` over a path
  /// of `hops` edges. `latency_scale` multiplies the propagation +
  /// transfer time (slow peers), `extra_latency_ms` is added on top
  /// (fault-injected jitter).
  void AddExchange(double payload_bytes, size_t hops,
                   const NetworkCostModel& model,
                   double latency_scale = 1.0,
                   double extra_latency_ms = 0.0);

  /// Records a request whose response never arrived (dropped message,
  /// crashed peer, or timeout): the request still crosses the network,
  /// and the coordinator waits `waited_ms` before giving up.
  void AddLostExchange(double waited_ms, const NetworkCostModel& model);

  /// Records pure coordinator-side waiting (retry backoff).
  void AddWait(double waited_ms) { latency_ms += waited_ms; }

  /// Accumulates `other` into this (per-task-and-merge pattern).
  void Merge(const NetworkStats& other);
};

/// Deterministic fault model for the simulated transport. All draws are
/// hashes of (seed, request key), not a shared RNG stream, so the fault
/// schedule is a pure function of the configuration: identical seeds
/// produce identical failures regardless of thread count or scheduling.
struct FaultOptions {
  /// Master seed for every per-peer and per-exchange draw.
  uint64_t seed = 1;
  /// Per-exchange probability that a message is lost in transit.
  double drop_rate = 0.0;
  /// Uniform extra latency in [0, latency_jitter_ms) per exchange.
  double latency_jitter_ms = 0.0;
  /// Per-peer probability of being crashed for the whole execution.
  double crash_rate = 0.0;
  /// Peers that are down from the start, by node index.
  std::vector<size_t> crashed_peers;
  /// Crash schedule: peer `first` answers its first `second` primary
  /// sub-queries, then goes down for the rest of the execution.
  std::vector<std::pair<size_t, size_t>> crash_after;
  /// Per-peer probability of being a slow peer.
  double slow_rate = 0.0;
  /// Peers that are slow for the whole execution, by node index.
  std::vector<size_t> slow_peers;
  /// Latency multiplier applied to slow peers' exchanges (large values
  /// push them past the federator's per-sub-query timeout).
  double slow_factor = 10.0;

  /// True when any fault source is configured.
  bool Any() const;
};

/// Evaluates FaultOptions into per-peer state and per-exchange decisions.
/// Default-constructed injectors are inactive (a perfect network); the
/// federator skips the retry pipeline entirely in that case.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultOptions& options, size_t peer_count);

  bool active() const { return active_; }

  /// Deterministic key of one sub-query attempt. `pattern` is the
  /// pattern's index in the branch body, `batch` the bind-join batch
  /// ordinal (0 for extension shipping), `attempt` the retry ordinal —
  /// all independent of thread scheduling.
  static uint64_t RequestKey(uint64_t branch, uint64_t pattern,
                             uint64_t batch, uint64_t peer,
                             uint64_t attempt);

  /// True if the peer responds to its `primary_seq`-th primary sub-query
  /// (crashed peers never respond; scheduled crashes stop at the
  /// configured count). Pass SIZE_MAX for hedged requests: they never
  /// advance a schedule, and a peer with a crash schedule is
  /// conservatively down for them (hedges fire after retries, i.e. late).
  bool PeerUp(size_t peer, size_t primary_seq) const;

  /// Clears the peer's crash state — both an up-front crash and a
  /// scheduled crash-after count — so PeerUp returns true for it from
  /// now on. The federator calls this after restarting the peer from its
  /// on-disk snapshot (Federator::RecoverPeer): the injector models the
  /// fault, the storage layer models the repair. Must not race PeerUp;
  /// the federator only recovers at the serial per-pattern merge point.
  void MarkRecovered(size_t peer);

  /// Latency multiplier for the peer (1.0, or slow_factor when slow).
  double PeerLatencyFactor(size_t peer) const;

  /// True if the exchange identified by `request_key` loses a message.
  bool DropExchange(uint64_t request_key) const;

  /// Fault-injected extra latency for the exchange, in [0, jitter).
  double LatencyJitterMs(uint64_t request_key) const;

  /// Deterministic uniform draw in [0, 1) for the key (backoff jitter).
  double UnitJitter(uint64_t request_key) const;

 private:
  /// Uniform [0,1) from (seed, key, salt).
  double Unit(uint64_t key, uint64_t salt) const;

  bool active_ = false;
  FaultOptions options_;
  std::vector<char> crashed_;
  std::vector<char> slow_;
  /// Per peer: primary sub-queries served before crashing (SIZE_MAX =
  /// no scheduled crash).
  std::vector<size_t> crash_after_;
};

/// Parses a `--faults` specification of comma-separated `key:value`
/// entries into FaultOptions, e.g.
///   "drop:0.3,seed:42,jitter:5,crash:1|3,slow:2,slowf:8"
/// Keys: seed, drop, jitter, crash (|-separated peer indices), crashp
/// (crash_rate), crashafter (peer|count pairs as p=k with | separators),
/// slow (|-separated peer indices), slowp (slow_rate), slowf
/// (slow_factor). Unknown keys or malformed numbers are errors.
Result<FaultOptions> ParseFaultSpec(const std::string& spec);

/// An undirected peer topology over node indices 0..n-1.
class Topology {
 public:
  explicit Topology(size_t nodes) : adjacency_(nodes) {}

  size_t NodeCount() const { return adjacency_.size(); }
  size_t EdgeCount() const { return edges_; }

  /// Adds an undirected edge (idempotent; self-loops ignored).
  void AddEdge(size_t a, size_t b);

  const std::vector<size_t>& Neighbors(size_t node) const {
    return adjacency_[node];
  }

  /// BFS hop distance; returns SIZE_MAX if unreachable.
  size_t HopDistance(size_t from, size_t to) const;

  /// Standard shapes used by the experiments.
  static Topology Chain(size_t nodes);
  static Topology Star(size_t nodes);   // node 0 is the hub
  static Topology Ring(size_t nodes);
  static Topology Random(size_t nodes, double edge_prob, uint64_t seed);

  /// One-line description ("chain(8)").
  std::string Describe() const;

 private:
  std::vector<std::vector<size_t>> adjacency_;
  size_t edges_ = 0;
  std::string label_ = "custom";

  friend Topology MakeLabeled(Topology t, std::string label);
};

}  // namespace rps

#endif  // RPS_FEDERATION_NETWORK_H_
