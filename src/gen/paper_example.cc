#include "gen/paper_example.h"

#include <cassert>

namespace rps {

PaperExample BuildPaperExample() {
  PaperExample ex;
  ex.system = std::make_unique<RpsSystem>();
  RpsSystem& sys = *ex.system;
  Dictionary& dict = *sys.dict();
  VarPool& vars = *sys.vars();

  auto iri = [&](const std::string& ns, const std::string& local) {
    return dict.Intern(Term::Iri(ns + local));
  };
  auto lit = [&](const std::string& lexical) {
    return dict.Intern(Term::Literal(lexical));
  };

  // Vocabulary.
  TermId starring = iri(kVocNs, "starring");
  TermId artist = iri(kVocNs, "artist");
  TermId actor = iri(kVocNs, "actor");
  TermId age = iri(kVocNs, "age");
  TermId same_as = dict.Intern(Term::Iri(std::string(kOwlSameAs)));
  ex.prop_starring = starring;
  ex.prop_artist = artist;
  ex.prop_actor = actor;
  ex.prop_age = age;

  // Entities.
  TermId db1_spiderman = iri(kDb1Ns, "Spiderman");
  TermId db1_toby = iri(kDb1Ns, "Toby_Maguire");
  TermId db1_kirsten = iri(kDb1Ns, "Kirsten_Dunst");
  TermId db2_spiderman = iri(kDb2Ns, "Spiderman2002");
  TermId db2_willem = iri(kDb2Ns, "Willem_Dafoe");
  TermId db2_pleasantville = iri(kDb2Ns, "Pleasantville");
  TermId foaf_toby = iri(kFoafNs, "Toby_Maguire");
  TermId foaf_kirsten = iri(kFoafNs, "Kirsten_Dunst");
  TermId foaf_willem = iri(kFoafNs, "Willem_Dafoe");
  ex.db1_spiderman = db1_spiderman;
  ex.db1_toby = db1_toby;
  ex.foaf_toby = foaf_toby;
  ex.db2_willem = db2_willem;
  ex.age_39 = lit("39");

  // Source 1: starring/artist dialect, with intermediate casting nodes
  // (blank nodes), plus the owl:sameAs links the paper stores here.
  Graph& s1 = sys.AddPeer("source1");
  TermId c1 = dict.InternBlank("cast1");
  TermId c2 = dict.InternBlank("cast2");
  auto add = [](Graph& g, TermId s, TermId p, TermId o) {
    Result<bool> r = g.Insert(Triple{s, p, o});
    assert(r.ok());
    (void)r;
  };
  add(s1, db1_spiderman, starring, c1);
  add(s1, c1, artist, db1_toby);
  add(s1, db1_spiderman, starring, c2);
  add(s1, c2, artist, db1_kirsten);
  add(s1, db1_spiderman, same_as, db2_spiderman);
  add(s1, db1_toby, same_as, foaf_toby);
  add(s1, db1_kirsten, same_as, foaf_kirsten);

  // Source 2: actor dialect.
  Graph& s2 = sys.AddPeer("source2");
  add(s2, db2_spiderman, actor, db2_willem);
  add(s2, db2_pleasantville, actor, db2_willem);

  // Source 3: people with ages, plus its sameAs link.
  Graph& s3 = sys.AddPeer("source3");
  add(s3, foaf_toby, age, lit("39"));
  add(s3, foaf_kirsten, age, lit("32"));
  add(s3, foaf_willem, age, lit("59"));
  add(s3, db2_willem, same_as, foaf_willem);

  // G: the single graph mapping assertion Q2 ⇝ Q1 of Example 2.
  {
    VarId x = vars.Intern("gma_x");
    VarId y = vars.Intern("gma_y");
    VarId z = vars.Intern("gma_z");
    GraphMappingAssertion gma;
    gma.label = "Q2->Q1";
    gma.from.head = {x, y};
    gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                    PatternTerm::Const(actor),
                                    PatternTerm::Var(y)});
    gma.to.head = {x, y};
    gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(starring),
                                  PatternTerm::Var(z)});
    gma.to.body.Add(TriplePattern{PatternTerm::Var(z),
                                  PatternTerm::Const(artist),
                                  PatternTerm::Var(y)});
    Status st = sys.AddGraphMapping(std::move(gma));
    assert(st.ok());
    (void)st;
  }

  // E: one equivalence mapping per stored owl:sameAs triple.
  sys.AddEquivalencesFromSameAs();

  // The Example 1 / Listing 1 query.
  {
    VarId x = vars.Intern("x");
    VarId y = vars.Intern("y");
    VarId z = vars.Intern("z");
    ex.query.head = {x, y};
    ex.query.body.Add(TriplePattern{PatternTerm::Const(db1_spiderman),
                                    PatternTerm::Const(starring),
                                    PatternTerm::Var(z)});
    ex.query.body.Add(TriplePattern{PatternTerm::Var(z),
                                    PatternTerm::Const(artist),
                                    PatternTerm::Var(x)});
    ex.query.body.Add(TriplePattern{PatternTerm::Var(x),
                                    PatternTerm::Const(age),
                                    PatternTerm::Var(y)});
  }

  ex.prefixes = {
      {"DB1", kDb1Ns},
      {"DB2", kDb2Ns},
      {"foaf", kFoafNs},
      {"voc", kVocNs},
      {"owl", "http://www.w3.org/2002/07/owl#"},
  };
  return ex;
}

}  // namespace rps
