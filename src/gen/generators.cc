#include "gen/generators.h"

#include <cassert>

#include "util/rng.h"

namespace rps {

namespace {

std::string PeerNs(size_t i) {
  return "http://peer" + std::to_string(i) + ".example.org/";
}

// Builds the dialect query of peer `i` with the given head variables:
// single dialect:  q(f, x) ← (f, actor_i, x)
// double dialect:  q(f, x) ← (f, starring_i, z) AND (z, artist_i, x)
GraphPatternQuery DialectQuery(Dictionary* dict, VarPool* vars, size_t peer,
                               bool double_dialect, VarId f, VarId x) {
  GraphPatternQuery q;
  q.head = {f, x};
  std::string ns = PeerNs(peer);
  if (!double_dialect) {
    TermId actor = dict->InternIri(ns + "actor");
    q.body.Add(TriplePattern{PatternTerm::Var(f), PatternTerm::Const(actor),
                             PatternTerm::Var(x)});
  } else {
    TermId starring = dict->InternIri(ns + "starring");
    TermId artist = dict->InternIri(ns + "artist");
    VarId z = vars->Fresh("cast_");
    q.body.Add(TriplePattern{PatternTerm::Var(f),
                             PatternTerm::Const(starring),
                             PatternTerm::Var(z)});
    q.body.Add(TriplePattern{PatternTerm::Var(z), PatternTerm::Const(artist),
                             PatternTerm::Var(x)});
  }
  return q;
}

bool UsesDoubleDialect(const LodConfig& config, size_t peer) {
  return !config.single_triple_dialect && (peer % 2 == 1);
}

}  // namespace

Topology LodTopology(const LodConfig& config) {
  switch (config.topology) {
    case LodConfig::MappingTopology::kChain:
      return Topology::Chain(config.num_peers);
    case LodConfig::MappingTopology::kStar:
      return Topology::Star(config.num_peers);
    case LodConfig::MappingTopology::kRing:
      return Topology::Ring(config.num_peers);
    case LodConfig::MappingTopology::kRandom:
      return Topology::Random(config.num_peers, config.random_edge_prob,
                              config.seed);
  }
  return Topology::Chain(config.num_peers);
}

std::unique_ptr<RpsSystem> GenerateLod(
    const LodConfig& config, LodStats* stats,
    std::vector<EquivalenceMapping>* ground_truth) {
  auto system = std::make_unique<RpsSystem>();
  Dictionary* dict = system->dict();
  VarPool* vars = system->vars();
  Rng rng(config.seed);
  LodStats local_stats;

  TermId same_as = dict->Intern(Term::Iri(std::string(kOwlSameAs)));

  // Per-peer data: every peer describes the same logical film universe
  // under its own IRIs.
  for (size_t p = 0; p < config.num_peers; ++p) {
    Graph& g = system->AddPeer("peer" + std::to_string(p));
    std::string ns = PeerNs(p);
    bool double_dialect = UsesDoubleDialect(config, p);
    TermId actor = dict->InternIri(ns + "actor");
    TermId starring = dict->InternIri(ns + "starring");
    TermId artist = dict->InternIri(ns + "artist");
    TermId title = dict->InternIri(ns + "title");
    TermId name = dict->InternIri(ns + "name");
    // Peer-local attribute corruption: an attribute is either the shared
    // global value ("Film 3") or a peer-specific spelling.
    auto attribute = [&](const std::string& base) {
      if (config.attribute_noise > 0.0 && rng.Chance(config.attribute_noise)) {
        return dict->Intern(
            Term::Literal(base + " [peer" + std::to_string(p) + "]"));
      }
      return dict->Intern(Term::Literal(base));
    };
    TermId year = dict->InternIri(ns + "year");
    TermId birth = dict->InternIri(ns + "birth");
    for (size_t f = 0; f < config.films_per_peer; ++f) {
      TermId film = dict->InternIri(ns + "film" + std::to_string(f));
      ++local_stats.films;
      if (config.with_attributes) {
        // Two attributes per entity: under independent corruption the
        // Jaccard of co-referent entities takes intermediate values,
        // giving discovery thresholds something to trade off.
        g.InsertUnchecked(
            Triple{film, title, attribute("Film " + std::to_string(f))});
        g.InsertUnchecked(
            Triple{film, year, attribute("Year " + std::to_string(f))});
        local_stats.triples += 2;
      }
      for (size_t a = 0; a < config.actors_per_film; ++a) {
        size_t person_idx = f * config.actors_per_film + a;
        TermId person =
            dict->InternIri(ns + "person" + std::to_string(person_idx));
        ++local_stats.persons;
        if (config.with_attributes) {
          g.InsertUnchecked(Triple{
              person, name,
              attribute("Person " + std::to_string(person_idx))});
          g.InsertUnchecked(Triple{
              person, birth,
              attribute("Born " + std::to_string(person_idx))});
          local_stats.triples += 2;
        }
        if (!double_dialect) {
          g.InsertUnchecked(Triple{film, actor, person});
          ++local_stats.triples;
        } else {
          TermId cast = dict->InternBlank(
              "cast_p" + std::to_string(p) + "_" + std::to_string(f) + "_" +
              std::to_string(a));
          g.InsertUnchecked(Triple{film, starring, cast});
          g.InsertUnchecked(Triple{cast, artist, person});
          local_stats.triples += 2;
        }
      }
    }
  }

  // Mapping topology: graph mapping assertions (both directions) plus
  // sameAs links for overlapping entities, per edge.
  Topology topo = LodTopology(config);
  for (size_t a = 0; a < topo.NodeCount(); ++a) {
    for (size_t b : topo.Neighbors(a)) {
      if (b < a) continue;  // one pass per undirected edge
      // GMAs in both directions.
      for (auto [src, dst] : {std::pair<size_t, size_t>{a, b},
                              std::pair<size_t, size_t>{b, a}}) {
        VarId f = vars->Fresh("f_");
        VarId x = vars->Fresh("x_");
        GraphMappingAssertion gma;
        gma.label = "peer" + std::to_string(src) + "->peer" +
                    std::to_string(dst);
        gma.from = DialectQuery(dict, vars, src,
                                UsesDoubleDialect(config, src), f, x);
        gma.to = DialectQuery(dict, vars, dst,
                              UsesDoubleDialect(config, dst), f, x);
        Status st = system->AddGraphMapping(std::move(gma));
        assert(st.ok());
        (void)st;
        ++local_stats.graph_mappings;
      }
      // sameAs links between the two peers' IRIs for overlapping films
      // and their actors. Stored in the lower-indexed peer's graph (or
      // only reported as ground truth when emit_sameas is off).
      Graph& store = *system->dataset().Find("peer" + std::to_string(a));
      size_t overlapped = static_cast<size_t>(
          config.overlap_fraction * static_cast<double>(config.films_per_peer));
      auto link = [&](TermId left, TermId right) {
        if (!config.emit_sameas) return;
        store.InsertUnchecked(Triple{left, same_as, right});
        ++local_stats.sameas_links;
        ++local_stats.triples;
      };
      for (size_t f = 0; f < overlapped; ++f) {
        if (!rng.Chance(config.sameas_rate)) continue;
        link(dict->InternIri(PeerNs(a) + "film" + std::to_string(f)),
             dict->InternIri(PeerNs(b) + "film" + std::to_string(f)));
        for (size_t ac = 0; ac < config.actors_per_film; ++ac) {
          size_t person_idx = f * config.actors_per_film + ac;
          link(dict->InternIri(PeerNs(a) + "person" +
                               std::to_string(person_idx)),
               dict->InternIri(PeerNs(b) + "person" +
                               std::to_string(person_idx)));
        }
      }
    }
  }

  if (config.emit_sameas) {
    system->AddEquivalencesFromSameAs();
  }

  // The semantic co-reference relation of the generator's world model:
  // every peer describes the same logical films and persons, so ALL
  // same-index cross-peer pairs are co-referent — not just the subset
  // that got a sameAs link. This is the ground truth the discovery
  // experiments score against.
  if (ground_truth != nullptr) {
    for (size_t a = 0; a < config.num_peers; ++a) {
      for (size_t b = a + 1; b < config.num_peers; ++b) {
        for (size_t f = 0; f < config.films_per_peer; ++f) {
          ground_truth->push_back(EquivalenceMapping{
              dict->InternIri(PeerNs(a) + "film" + std::to_string(f)),
              dict->InternIri(PeerNs(b) + "film" + std::to_string(f))});
          for (size_t ac = 0; ac < config.actors_per_film; ++ac) {
            size_t person_idx = f * config.actors_per_film + ac;
            ground_truth->push_back(EquivalenceMapping{
                dict->InternIri(PeerNs(a) + "person" +
                                std::to_string(person_idx)),
                dict->InternIri(PeerNs(b) + "person" +
                                std::to_string(person_idx))});
          }
        }
      }
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return system;
}

GraphPatternQuery LodDemoQuery(RpsSystem* system, const LodConfig& config) {
  VarId f = system->vars()->Intern("film");
  VarId x = system->vars()->Intern("person");
  return DialectQuery(system->dict(), system->vars(), 0,
                      UsesDoubleDialect(config, 0), f, x);
}

std::unique_ptr<RpsSystem> GenerateTransitiveClosureSystem(
    size_t chain_length) {
  auto system = std::make_unique<RpsSystem>();
  Dictionary* dict = system->dict();
  VarPool* vars = system->vars();

  TermId a_prop = dict->InternIri("http://example.org/voc/A");
  Graph& g = system->AddPeer("peer0");
  for (size_t k = 0; k < chain_length; ++k) {
    TermId from = dict->InternIri("http://example.org/n" + std::to_string(k));
    TermId to =
        dict->InternIri("http://example.org/n" + std::to_string(k + 1));
    g.InsertUnchecked(Triple{from, a_prop, to});
  }

  VarId x = vars->Fresh("tc_x");
  VarId y = vars->Fresh("tc_y");
  VarId z = vars->Fresh("tc_z");
  GraphMappingAssertion gma;
  gma.label = "transitive-closure";
  gma.from.head = {x, y};
  gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(a_prop),
                                  PatternTerm::Var(z)});
  gma.from.body.Add(TriplePattern{PatternTerm::Var(z),
                                  PatternTerm::Const(a_prop),
                                  PatternTerm::Var(y)});
  gma.to.head = {x, y};
  gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                PatternTerm::Const(a_prop),
                                PatternTerm::Var(y)});
  Status st = system->AddGraphMapping(std::move(gma));
  assert(st.ok());
  (void)st;
  return system;
}

GraphPatternQuery TransitiveQuery(RpsSystem* system) {
  Dictionary* dict = system->dict();
  VarPool* vars = system->vars();
  TermId a_prop = dict->InternIri("http://example.org/voc/A");
  VarId x = vars->Intern("x");
  VarId y = vars->Intern("y");
  GraphPatternQuery q;
  q.head = {x, y};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(a_prop),
                           PatternTerm::Var(y)});
  return q;
}

std::unique_ptr<RpsSystem> GenerateSameAsCliques(size_t num_cliques,
                                                 size_t clique_size,
                                                 size_t triples_per_member,
                                                 uint64_t seed) {
  auto system = std::make_unique<RpsSystem>();
  Dictionary* dict = system->dict();
  Rng rng(seed);

  TermId same_as = dict->Intern(Term::Iri(std::string(kOwlSameAs)));
  Graph& g = system->AddPeer("peer0");
  std::string ns = "http://example.org/";
  std::vector<TermId> props;
  for (size_t j = 0; j < 3; ++j) {
    props.push_back(dict->InternIri(ns + "prop" + std::to_string(j)));
  }
  for (size_t c = 0; c < num_cliques; ++c) {
    TermId prev = kInvalidTermId;
    for (size_t m = 0; m < clique_size; ++m) {
      TermId member = dict->InternIri(ns + "e" + std::to_string(c) + "_" +
                                      std::to_string(m));
      if (prev != kInvalidTermId) {
        g.InsertUnchecked(Triple{prev, same_as, member});
      }
      prev = member;
      for (size_t j = 0; j < triples_per_member; ++j) {
        TermId value = dict->Intern(Term::Literal(
            "val" + std::to_string(c) + "_" + std::to_string(m) + "_" +
            std::to_string(j)));
        g.InsertUnchecked(Triple{member, props[rng.Index(props.size())],
                                 value});
      }
    }
  }
  system->AddEquivalencesFromSameAs();
  return system;
}

std::unique_ptr<RpsSystem> GenerateChainRps(size_t num_peers,
                                            size_t facts_per_peer,
                                            uint64_t seed) {
  auto system = std::make_unique<RpsSystem>();
  Dictionary* dict = system->dict();
  VarPool* vars = system->vars();
  Rng rng(seed);

  std::vector<TermId> props;
  for (size_t p = 0; p < num_peers; ++p) {
    props.push_back(dict->InternIri(PeerNs(p) + "p"));
  }
  for (size_t p = 0; p < num_peers; ++p) {
    Graph& g = system->AddPeer("peer" + std::to_string(p));
    std::string ns = PeerNs(p);
    for (size_t k = 0; k < facts_per_peer; ++k) {
      TermId e = dict->InternIri(ns + "e" + std::to_string(rng.Uniform(
                                          0, facts_per_peer * 2)));
      TermId f = dict->InternIri(ns + "f" + std::to_string(k));
      g.InsertUnchecked(Triple{e, props[p], f});
    }
  }
  for (size_t p = 0; p + 1 < num_peers; ++p) {
    VarId x = vars->Fresh("ch_x");
    VarId y = vars->Fresh("ch_y");
    GraphMappingAssertion gma;
    gma.label = "p" + std::to_string(p) + "->p" + std::to_string(p + 1);
    gma.from.head = {x, y};
    gma.from.body.Add(TriplePattern{PatternTerm::Var(x),
                                    PatternTerm::Const(props[p]),
                                    PatternTerm::Var(y)});
    gma.to.head = {x, y};
    gma.to.body.Add(TriplePattern{PatternTerm::Var(x),
                                  PatternTerm::Const(props[p + 1]),
                                  PatternTerm::Var(y)});
    Status st = system->AddGraphMapping(std::move(gma));
    assert(st.ok());
    (void)st;
  }
  return system;
}

GraphPatternQuery ChainQuery(RpsSystem* system, size_t num_peers) {
  Dictionary* dict = system->dict();
  VarPool* vars = system->vars();
  TermId prop = dict->InternIri(PeerNs(num_peers - 1) + "p");
  VarId x = vars->Intern("x");
  VarId y = vars->Intern("y");
  GraphPatternQuery q;
  q.head = {x, y};
  q.body.Add(TriplePattern{PatternTerm::Var(x), PatternTerm::Const(prop),
                           PatternTerm::Var(y)});
  return q;
}

}  // namespace rps
