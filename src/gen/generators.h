#ifndef RPS_GEN_GENERATORS_H_
#define RPS_GEN_GENERATORS_H_

#include <memory>
#include <string>

#include "federation/network.h"
#include "peer/rps_system.h"

namespace rps {

/// Configuration for the synthetic LOD-cloud generator. The generated
/// systems mimic the paper's motivating scenario: several film databases
/// with overlapping content, different vocabularies (dialects), sameAs
/// links between co-referent IRIs, and graph mapping assertions along an
/// arbitrary mapping topology.
struct LodConfig {
  size_t num_peers = 4;
  size_t films_per_peer = 50;
  size_t actors_per_film = 2;
  /// Fraction of a peer's films that are also described (under its own
  /// IRIs) by the topologically adjacent peer.
  double overlap_fraction = 0.3;
  /// Fraction of overlapping entities that get an owl:sameAs link.
  double sameas_rate = 1.0;
  /// Shape of the mapping topology over the peers.
  enum class MappingTopology { kChain, kStar, kRing, kRandom } topology =
      MappingTopology::kChain;
  double random_edge_prob = 0.3;
  /// When true, every peer uses the single-triple (film actor person)
  /// dialect, making all graph mapping assertions linear TGDs
  /// (FO-rewritable, Proposition 2). When false, peers alternate between
  /// the actor dialect and the two-triple starring/artist dialect of the
  /// paper's Example 1, producing existential mappings.
  bool single_triple_dialect = false;
  /// When true, peers attach literal attributes (names/titles) to their
  /// entities; co-referent entities share attribute values across peers —
  /// the evidence the mapping-discovery module (§5 item 3) exploits.
  bool with_attributes = false;
  /// Fraction of attribute values corrupted per peer (peer-specific
  /// spellings): injects discovery false negatives.
  double attribute_noise = 0.0;
  /// When false, the generator neither stores owl:sameAs triples nor
  /// registers equivalence mappings; the ground-truth co-reference pairs
  /// are only reported through GenerateLod's `ground_truth` parameter.
  /// Used to evaluate mapping discovery against a hidden truth.
  bool emit_sameas = true;
  uint64_t seed = 1;
};

/// Size statistics of a generated system.
struct LodStats {
  size_t triples = 0;
  size_t sameas_links = 0;
  size_t graph_mappings = 0;
  size_t films = 0;
  size_t persons = 0;
};

/// Generates a synthetic LOD peer system. The peer graphs, mappings and
/// sameAs links are deterministic in `config.seed`. When `ground_truth`
/// is non-null it receives every co-reference pair the generator created
/// (whether or not sameAs triples were emitted, see
/// LodConfig::emit_sameas).
std::unique_ptr<RpsSystem> GenerateLod(const LodConfig& config,
                                       LodStats* stats = nullptr,
                                       std::vector<EquivalenceMapping>*
                                           ground_truth = nullptr);

/// A benchmark query in peer 0's dialect: all (person, film) pairs, i.e.
/// q(x, f) ← (f, actor0, x) — or the starring/artist equivalent when
/// peer 0 uses the two-triple dialect. Integration through the mappings
/// pulls in answers from every reachable peer.
GraphPatternQuery LodDemoQuery(RpsSystem* system, const LodConfig& config);

/// The Topology matching config.topology (for federation experiments).
Topology LodTopology(const LodConfig& config);

/// A single-peer system whose only mapping is the transitive-closure
/// assertion of Proposition 3:
///   ∀x∀y∃z (x, A, z) AND (z, A, y) ⇝ (x, A, y)
/// over an A-chain x_0 → x_1 → ... → x_{chain_length}. Query answering is
/// still PTIME via the chase, but no FO rewriting exists.
std::unique_ptr<RpsSystem> GenerateTransitiveClosureSystem(
    size_t chain_length);

/// The A-edge query q(x, y) ← (x, A, y) over the transitive system.
GraphPatternQuery TransitiveQuery(RpsSystem* system);

/// A system of `num_cliques` owl:sameAs cliques of `clique_size` IRIs,
/// each member carrying `triples_per_member` property triples — the
/// stress workload for the equivalence-handling ablation (E10).
std::unique_ptr<RpsSystem> GenerateSameAsCliques(size_t num_cliques,
                                                 size_t clique_size,
                                                 size_t triples_per_member,
                                                 uint64_t seed);

/// A chain of `num_peers` peers where peer i stores facts (e_k, p_i, f_k)
/// and maps them to peer i+1's property: (x, p_i, y) ⇝ (x, p_{i+1}, y).
/// All mappings are linear TGDs. Used by the rewriting experiments: a
/// query over p_{n-1} rewrites into a union of n queries.
std::unique_ptr<RpsSystem> GenerateChainRps(size_t num_peers,
                                            size_t facts_per_peer,
                                            uint64_t seed);

/// The query q(x, y) ← (x, p_{last}, y) over a chain system.
GraphPatternQuery ChainQuery(RpsSystem* system, size_t num_peers);

}  // namespace rps

#endif  // RPS_GEN_GENERATORS_H_
