#ifndef RPS_GEN_PAPER_EXAMPLE_H_
#define RPS_GEN_PAPER_EXAMPLE_H_

#include <map>
#include <memory>
#include <string>

#include "peer/rps_system.h"

namespace rps {

/// The paper's running example, reconstructed exactly:
///  * Figure 1 — three sources: Source 1 (films in starring/artist
///    dialect + sameAs links), Source 2 (films in actor dialect),
///    Source 3 (people and ages, foaf naming);
///  * Example 2 — the RPS with one graph mapping assertion Q2 ⇝ Q1 and
///    one equivalence mapping per stored owl:sameAs triple;
///  * the SPARQL query of Example 1 / Listing 1.
struct PaperExample {
  std::unique_ptr<RpsSystem> system;
  /// The Example 1 query: SELECT ?x ?y WHERE { DB1:Spiderman starring ?z .
  /// ?z artist ?x . ?x age ?y }.
  GraphPatternQuery query;
  /// Prefix map for rendering results the way the paper prints them.
  std::map<std::string, std::string> prefixes;

  /// Frequently referenced terms.
  TermId db1_spiderman = kInvalidTermId;
  TermId db1_toby = kInvalidTermId;
  TermId foaf_toby = kInvalidTermId;
  TermId db2_willem = kInvalidTermId;
  TermId age_39 = kInvalidTermId;
  TermId prop_starring = kInvalidTermId;
  TermId prop_artist = kInvalidTermId;
  TermId prop_actor = kInvalidTermId;
  TermId prop_age = kInvalidTermId;
};

/// Namespaces used by the fixture.
inline constexpr const char* kDb1Ns = "http://example.org/db1/";
inline constexpr const char* kDb2Ns = "http://example.org/db2/";
inline constexpr const char* kFoafNs = "http://xmlns.com/foaf/0.1/";
inline constexpr const char* kVocNs = "http://example.org/voc/";

/// Builds the fixture. Never fails (data is static), so plain return.
PaperExample BuildPaperExample();

}  // namespace rps

#endif  // RPS_GEN_PAPER_EXAMPLE_H_
