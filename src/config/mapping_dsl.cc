#include "config/mapping_dsl.h"

#include <fstream>
#include <unordered_map>
#include <sstream>

#include "parser/cursor.h"
#include "parser/ntriples.h"
#include "parser/sparql.h"
#include "parser/turtle.h"
#include "util/string_util.h"

namespace rps {

namespace {

class ConfigParser {
 public:
  ConfigParser(std::string_view text, const RpsConfigOptions& options)
      : cursor_(text), options_(options) {}

  Result<std::unique_ptr<RpsSystem>> Run() {
    auto system = std::make_unique<RpsSystem>();
    system_ = system.get();
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.AtEnd()) break;
      if (cursor_.TryConsumeKeyword("PREFIX")) {
        RPS_RETURN_IF_ERROR(ParsePrefix());
      } else if (cursor_.TryConsumeKeyword("PEER")) {
        RPS_RETURN_IF_ERROR(ParsePeer());
      } else if (cursor_.TryConsumeKeyword("MAPPING")) {
        RPS_RETURN_IF_ERROR(ParseMapping());
      } else if (cursor_.TryConsumeKeyword("EQUIV")) {
        RPS_RETURN_IF_ERROR(ParseEquiv());
      } else if (cursor_.TryConsumeKeyword("SAMEAS")) {
        system_->AddEquivalencesFromSameAs();
      } else {
        return cursor_.Error(
            "expected PREFIX, PEER, MAPPING, EQUIV or SAMEAS");
      }
    }
    return system;
  }

 private:
  Status ParsePrefix() {
    cursor_.SkipWhitespaceAndComments();
    std::string prefix;
    while (!cursor_.AtEnd() && IsPnChar(cursor_.Peek())) {
      prefix.push_back(cursor_.Peek());
      cursor_.Advance();
    }
    if (!cursor_.TryConsume(':')) {
      return cursor_.Error("expected ':' after prefix name");
    }
    cursor_.SkipWhitespaceAndComments();
    RPS_ASSIGN_OR_RETURN(std::string iri, cursor_.ReadIriRef());
    prefixes_[prefix] = std::move(iri);
    return Status::OK();
  }

  // Reads a bare word (peer names, file paths).
  Result<std::string> ReadWord() {
    cursor_.SkipWhitespaceAndComments();
    std::string word;
    while (!cursor_.AtEnd()) {
      char c = cursor_.Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '#') break;
      word.push_back(c);
      cursor_.Advance();
    }
    if (word.empty()) return cursor_.Error("expected a word");
    return word;
  }

  Status ParsePeer() {
    RPS_ASSIGN_OR_RETURN(std::string name, ReadWord());
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsumeKeyword("FROM")) {
      return cursor_.Error("expected FROM after the peer name");
    }
    RPS_ASSIGN_OR_RETURN(std::string path, ReadWord());
    std::string resolved = path;
    if (!options_.base_dir.empty() && !path.empty() && path[0] != '/') {
      resolved = options_.base_dir + "/" + path;
    }
    RPS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(resolved));
    Graph& graph = system_->AddPeer(name);
    if (EndsWith(path, ".nt") || EndsWith(path, ".ntriples")) {
      RPS_ASSIGN_OR_RETURN(size_t n, ParseNTriples(content, &graph));
      (void)n;
    } else {
      RPS_ASSIGN_OR_RETURN(size_t n, ParseTurtle(content, &graph));
      (void)n;
    }
    return Status::OK();
  }

  // Reads `{ ... }` verbatim (braces not nested inside BGPs).
  Result<std::string> ReadBraceBlock() {
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsume('{')) {
      return cursor_.Error("expected '{'");
    }
    std::string body;
    while (!cursor_.AtEnd() && cursor_.Peek() != '}') {
      body.push_back(cursor_.Peek());
      cursor_.Advance();
    }
    if (!cursor_.TryConsume('}')) {
      return cursor_.Error("unterminated '{' block");
    }
    return body;
  }

  Status ParseMapping() {
    cursor_.SkipWhitespaceAndComments();
    std::string label;
    if (cursor_.Peek() == '"') {
      RPS_ASSIGN_OR_RETURN(label, cursor_.ReadQuotedString());
    }
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsumeKeyword("HEAD")) {
      return cursor_.Error("expected HEAD ?vars after MAPPING");
    }
    std::vector<VarId> head;
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.Peek() != '?' && cursor_.Peek() != '$') break;
      RPS_ASSIGN_OR_RETURN(std::string name, cursor_.ReadVarName());
      head.push_back(system_->vars()->Intern(name));
    }
    if (head.empty()) {
      return cursor_.Error("MAPPING HEAD requires at least one variable");
    }
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsumeKeyword("FROM")) {
      return cursor_.Error("expected FROM { pattern }");
    }
    RPS_ASSIGN_OR_RETURN(std::string from_text, ReadBraceBlock());
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsumeKeyword("TO")) {
      return cursor_.Error("expected TO { pattern }");
    }
    RPS_ASSIGN_OR_RETURN(std::string to_text, ReadBraceBlock());

    GraphMappingAssertion gma;
    gma.label = label;
    RPS_ASSIGN_OR_RETURN(
        gma.from.body,
        ParseBgpText(from_text, prefixes_, system_->dict(),
                     system_->vars()));
    RPS_ASSIGN_OR_RETURN(
        gma.to.body,
        ParseBgpText(to_text, prefixes_, system_->dict(), system_->vars()));
    gma.from.head = head;
    gma.to.head = head;
    return system_->AddGraphMapping(std::move(gma));
  }

  // Reads an IRI or prefixed name as a TermId.
  Result<TermId> ReadIriTerm() {
    cursor_.SkipWhitespaceAndComments();
    if (cursor_.Peek() == '<') {
      RPS_ASSIGN_OR_RETURN(std::string iri, cursor_.ReadIriRef());
      return system_->dict()->InternIri(iri);
    }
    RPS_ASSIGN_OR_RETURN(std::string token, cursor_.ReadPrefixedName());
    size_t colon = token.find(':');
    std::string prefix = token.substr(0, colon);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return cursor_.Error("undefined prefix '" + prefix + ":'");
    }
    return system_->dict()->InternIri(it->second + token.substr(colon + 1));
  }

  Status ParseEquiv() {
    RPS_ASSIGN_OR_RETURN(TermId left, ReadIriTerm());
    RPS_ASSIGN_OR_RETURN(TermId right, ReadIriTerm());
    return system_->AddEquivalence(left, right);
  }

  TextCursor cursor_;
  const RpsConfigOptions& options_;
  RpsSystem* system_ = nullptr;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<std::unique_ptr<RpsSystem>> LoadRpsConfig(
    std::string_view text, const RpsConfigOptions& options) {
  ConfigParser parser(text, options);
  return parser.Run();
}

Result<std::string> SaveRpsConfig(
    const RpsSystem& system, const std::string& out_dir,
    const std::map<std::string, std::string>& prefixes) {
  auto write_file = [](const std::string& path,
                       const std::string& content) -> Status {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::NotFound("cannot write file: " + path);
    out << content;
    return Status::OK();
  };

  std::string config;
  for (const auto& [prefix, ns] : prefixes) {
    config += "PREFIX " + prefix + ": <" + ns + ">\n";
  }
  if (!prefixes.empty()) config += "\n";

  for (const auto& [name, graph] : system.dataset().graphs()) {
    std::string file_name = name + ".ttl";
    RPS_RETURN_IF_ERROR(
        write_file(out_dir + "/" + file_name, WriteTurtle(graph, prefixes)));
    config += "PEER " + name + " FROM " + file_name + "\n";
  }
  config += "\n";

  const Dictionary& dict = *system.dict();
  const VarPool& vars = *system.vars();
  for (const GraphMappingAssertion& gma : system.graph_mappings()) {
    config += "MAPPING \"" + gma.label + "\" HEAD";
    for (VarId v : gma.from.head) config += " ?" + vars.name(v);
    config += "\n  FROM { " +
              WriteBgpText(gma.from.body, dict, vars, prefixes) + " }\n";
    // The DSL identifies the two sides' heads by NAME, so rewrite the TO
    // body's head variables to the FROM head variables before printing.
    std::unordered_map<VarId, VarId> renaming;
    for (size_t i = 0; i < gma.to.head.size(); ++i) {
      renaming[gma.to.head[i]] = gma.from.head[i];
    }
    GraphPattern to_body;
    for (const TriplePattern& tp : gma.to.body.patterns()) {
      auto rename = [&](const PatternTerm& pt) {
        if (pt.is_var()) {
          auto it = renaming.find(pt.var());
          if (it != renaming.end()) return PatternTerm::Var(it->second);
        }
        return pt;
      };
      to_body.Add(TriplePattern{rename(tp.s), rename(tp.p), rename(tp.o)});
    }
    config += "  TO   { " + WriteBgpText(to_body, dict, vars, prefixes) +
              " }\n";
  }
  if (!system.graph_mappings().empty()) config += "\n";

  for (const EquivalenceMapping& eq : system.equivalences()) {
    config += "EQUIV " + dict.ToString(eq.left) + " " +
              dict.ToString(eq.right) + "\n";
  }

  std::string config_path = out_dir + "/config.rps";
  RPS_RETURN_IF_ERROR(write_file(config_path, config));
  return config_path;
}

Result<std::unique_ptr<RpsSystem>> LoadRpsConfigFile(
    const std::string& path) {
  RPS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  RpsConfigOptions options;
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    options.base_dir = path.substr(0, slash);
  }
  return LoadRpsConfig(content, options);
}

}  // namespace rps
