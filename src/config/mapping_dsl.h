#ifndef RPS_CONFIG_MAPPING_DSL_H_
#define RPS_CONFIG_MAPPING_DSL_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "peer/rps_system.h"
#include "util/result.h"

namespace rps {

/// Options for loading an RPS configuration.
struct RpsConfigOptions {
  /// Directory against which relative `PEER ... FROM <path>` paths are
  /// resolved. Empty = current working directory.
  std::string base_dir;
};

/// Loads an RDF Peer System from the declarative mapping DSL — the
/// configuration front-end of the §5 prototype. Syntax (one directive per
/// statement, `#` comments):
///
///   PREFIX voc: <http://example.org/voc/>
///   PEER source1 FROM data/source1.ttl      # .ttl or .nt by extension
///   MAPPING "Q2->Q1" HEAD ?x ?y
///     FROM { ?x voc:actor ?y }
///     TO   { ?x voc:starring ?z . ?z voc:artist ?y }
///   EQUIV db1:Spiderman db2:Spiderman2002
///   SAMEAS                                  # register stored owl:sameAs
///
/// `HEAD` lists the shared free variables of the two sides; every other
/// variable is existentially quantified on its side. `EQUIV` takes IRIs
/// or prefixed names. `SAMEAS` scans all loaded peers.
Result<std::unique_ptr<RpsSystem>> LoadRpsConfig(
    std::string_view text, const RpsConfigOptions& options =
                               RpsConfigOptions());

/// Reads `path` and calls LoadRpsConfig with base_dir = dirname(path).
Result<std::unique_ptr<RpsSystem>> LoadRpsConfigFile(const std::string& path);

/// Reads an entire file into a string (shared helper; also used by the
/// CLI for query files).
Result<std::string> ReadFileToString(const std::string& path);

/// Materializes a system as an on-disk workspace: writes one Turtle file
/// per peer into `out_dir` (which must exist) plus `config.rps`
/// referencing them, with every graph mapping assertion and equivalence
/// mapping serialized in the DSL. The result round-trips through
/// LoadRpsConfigFile. `prefixes` compacts IRIs in both the Turtle files
/// and the mapping patterns. Returns the config file's path.
Result<std::string> SaveRpsConfig(
    const RpsSystem& system, const std::string& out_dir,
    const std::map<std::string, std::string>& prefixes = {});

}  // namespace rps

#endif  // RPS_CONFIG_MAPPING_DSL_H_
