#ifndef RPS_STORAGE_STORAGE_H_
#define RPS_STORAGE_STORAGE_H_

#include <string>

#include "rdf/graph.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "util/result.h"

namespace rps::storage {

/// Canonical snapshot filename for a named graph inside a storage
/// directory: `<dir>/<name>.rps`. `/` in the graph name is replaced by
/// `_` so a name never escapes the directory. Save writes `<path>.tmp`
/// transiently; loaders only ever open `<path>` itself, so stray temp
/// files from an interrupted save are inert.
std::string SnapshotPath(const std::string& dir, const std::string& name);

/// Creates `dir` (and any missing parents, mkdir -p style) so SaveGraph
/// has somewhere to write. Existing directories are fine; anything else
/// (permissions, a file in the way) is kInternal.
Status EnsureDir(const std::string& dir);

/// What LoadGraph did (telemetry + tests).
struct LoadReport {
  size_t triples = 0;        // logical size of the loaded graph
  size_t terms = 0;          // dictionary entries decoded from the file
  uint64_t bytes_on_disk = 0;
  bool mapped = false;       // true: snapshot attached as the mmap'd base
};

/// Saves `graph` (and its whole dictionary) to `path` atomically
/// (snapshot_writer.h), recording storage.saves / storage.save_ms /
/// storage.bytes_on_disk.
Status SaveGraph(const std::string& path, const Graph& graph);

/// Loads the snapshot at `path` into `graph`, which must be empty. All
/// terms are interned into the graph's dictionary; when the resulting
/// id mapping is the identity — always the case when the dictionary is
/// fresh or is the same lineage the snapshot was saved from, since ids
/// are append-only-stable — the snapshot is attached as the graph's
/// memory-mapped base and no triple is materialized (O(mmap) open).
/// Otherwise every triple is remapped through the new ids and
/// bulk-inserted. Corrupted files fail with kDataLoss before the graph
/// is touched. Records storage.loads / storage.mapped_loads /
/// storage.load_ms / storage.bytes_on_disk.
Result<LoadReport> LoadGraph(const std::string& path, Graph* graph,
                             const OpenOptions& options = OpenOptions());

}  // namespace rps::storage

#endif  // RPS_STORAGE_STORAGE_H_
