#ifndef RPS_STORAGE_SNAPSHOT_WRITER_H_
#define RPS_STORAGE_SNAPSHOT_WRITER_H_

#include <string>

#include "rdf/graph.h"
#include "util/status.h"

namespace rps::storage {

/// Serializes `graph` (all triples, mapped base and in-memory delta
/// alike) and its entire dictionary into a version-1 snapshot at `path`.
///
/// The write is atomic and restart-safe: the bytes go to `path + ".tmp"`,
/// which is fsync'd, renamed over `path`, and the parent directory
/// fsync'd — a crash at any point leaves either the old snapshot or the
/// new one, never a torn file, and loaders never look at `*.tmp`.
///
/// The writer re-derives the permuted runs and posting lists from the
/// insertion-ordered triple sequence, so saving is indifferent to the
/// graph's current base/delta split — `Save` *is* the fold of the delta
/// into a fresh base.
Status WriteSnapshot(const std::string& path, const Graph& graph);

}  // namespace rps::storage

#endif  // RPS_STORAGE_SNAPSHOT_WRITER_H_
