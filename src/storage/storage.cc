#include "storage/storage.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "rdf/dictionary.h"

namespace rps::storage {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string SnapshotPath(const std::string& dir, const std::string& name) {
  std::string safe = name;
  for (char& c : safe) {
    if (c == '/') c = '_';
  }
  return dir + "/" + safe + ".rps";
}

Status EnsureDir(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("EnsureDir: empty path");
  }
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    std::string prefix = dir.substr(0, i);
    if (prefix.empty() || prefix == "." || prefix == "..") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir(" + prefix + "): " +
                              std::strerror(errno));
    }
  }
  return Status::OK();
}

Status SaveGraph(const std::string& path, const Graph& graph) {
  auto start = std::chrono::steady_clock::now();
  RPS_RETURN_IF_ERROR(WriteSnapshot(path, graph));
  auto& reg = obs::Registry::Global();
  reg.counter("storage.saves")->Increment();
  reg.histogram("storage.save_ms")->Record(ElapsedMs(start));
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    reg.gauge("storage.bytes_on_disk")->Set(st.st_size);
  }
  return Status::OK();
}

Result<LoadReport> LoadGraph(const std::string& path, Graph* graph,
                             const OpenOptions& options) {
  if (!graph->empty()) {
    return Status::FailedPrecondition(
        "LoadGraph requires an empty target graph");
  }
  auto start = std::chrono::steady_clock::now();
  RPS_ASSIGN_OR_RETURN(std::shared_ptr<const MappedSnapshot> snap,
                       MappedSnapshot::Open(path, options));

  // Intern every snapshot term into the target dictionary, in id order.
  // Ids are append-only-stable, so when the dictionary is fresh or is
  // the lineage the snapshot came from, every Intern returns the
  // on-disk id and the remap is the identity.
  Dictionary* dict = graph->dict();
  std::vector<TermId> remap(snap->num_terms());
  bool identity = true;
  Status dict_status =
      snap->ForEachTerm([&](uint32_t id, const Term& term) {
        TermId mapped = dict->Intern(term);
        remap[id] = mapped;
        if (mapped != id) identity = false;
      });
  RPS_RETURN_IF_ERROR(dict_status);
  dict->RestoreNullCounter(snap->next_null());

  LoadReport report;
  report.terms = snap->num_terms();
  report.bytes_on_disk = snap->bytes_on_disk();

  auto& reg = obs::Registry::Global();
  if (identity) {
    graph->AttachMappedBase(snap);
    report.mapped = true;
    reg.counter("storage.mapped_loads")->Increment();
  } else {
    // Cross-lineage load: the dictionary already held other terms, so
    // on-disk ids are stale. Materialize with remapped ids instead.
    const Triple* triples = snap->triples();
    size_t n = snap->num_triples();
    graph->Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Triple& t = triples[i];
      if (t.s >= remap.size() || t.p >= remap.size() || t.o >= remap.size()) {
        return Status::DataLoss("snapshot " + path +
                                ": triple references unknown term id");
      }
      graph->InsertUnchecked(Triple{remap[t.s], remap[t.p], remap[t.o]});
    }
  }
  report.triples = graph->size();
  reg.counter("storage.loads")->Increment();
  reg.histogram("storage.load_ms")->Record(ElapsedMs(start));
  reg.gauge("storage.bytes_on_disk")->Set(
      static_cast<int64_t>(report.bytes_on_disk));
  return report;
}

}  // namespace rps::storage
