#ifndef RPS_STORAGE_SNAPSHOT_READER_H_
#define RPS_STORAGE_SNAPSHOT_READER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "rdf/term.h"
#include "rdf/triple.h"
#include "storage/format.h"
#include "util/function_ref.h"
#include "util/result.h"

namespace rps::storage {

/// Options for opening a snapshot.
struct OpenOptions {
  /// Verify every section's checksum at open (one linear memcmp-speed
  /// pass over the file). Disable only for trusted local snapshots where
  /// pure O(mmap) open matters; decode paths stay bounds-checked either
  /// way, so corrupted payloads can return wrong matches but never read
  /// out of bounds or crash.
  bool verify_checksums = true;
};

/// A memory-mapped, read-only view of one snapshot file. Opening
/// validates the header, the section table, and (by default) the
/// per-section checksums; every accessor afterwards serves straight from
/// the mapping, so the OS pages data in on demand and evicts it under
/// memory pressure — datasets can exceed RAM.
///
/// The view is immutable and internally synchronized-free: any number of
/// threads may read concurrently. `Graph` holds one via shared_ptr as
/// its mapped base tier (rdf/graph.h "Storage layout").
class MappedSnapshot {
 public:
  /// Opens and validates `path`. Structural damage — short file, bad
  /// magic, table rows out of bounds, checksum mismatch — returns
  /// kDataLoss; a future format version returns kUnimplemented; a
  /// big-endian host returns kUnimplemented.
  static Result<std::shared_ptr<const MappedSnapshot>> Open(
      const std::string& path, const OpenOptions& options = OpenOptions());

  ~MappedSnapshot();
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  size_t num_triples() const { return num_triples_; }
  size_t num_terms() const { return num_terms_; }
  uint64_t next_null() const { return next_null_; }
  uint64_t bytes_on_disk() const { return file_len_; }
  uint32_t distinct_subjects() const { return distinct_[0]; }
  uint32_t distinct_predicates() const { return distinct_[1]; }
  uint32_t distinct_objects() const { return distinct_[2]; }

  /// The insertion-ordered triple array, mapped in place (positions are
  /// indexes into it). Valid for the lifetime of the snapshot.
  const Triple* triples() const { return triples_; }

  /// Decodes the dictionary section in id order, invoking `fn` once per
  /// term with its materialized value. Returns kDataLoss on a malformed
  /// stream (only reachable with verify_checksums off).
  Status ForEachTerm(FunctionRef<void(uint32_t id, const Term& term)> fn)
      const;

  /// Streams the insertion positions of every run entry whose (k1, k2)
  /// equals the probe, in ascending position order (the permuted-run
  /// contract BaseRange has in memory). `fn` returns false to stop
  /// early. `perm` indexes {SPO, POS, OSP} as 0/1/2. One block-index
  /// binary search plus decoding of the covering blocks.
  void ScanRun(int perm, uint32_t k1, uint32_t k2,
               FunctionRef<bool(uint32_t pos)> fn) const;

  /// Exact number of run entries whose (k1, k2) equals the probe and
  /// whose position is < `pos_limit`. With an unrestricted limit
  /// (>= num_triples()) only the two boundary blocks are decoded —
  /// interior blocks covered by the probe count arithmetically.
  size_t CountRun(int perm, uint32_t k1, uint32_t k2,
                  uint32_t pos_limit) const;

  /// Streams the posting list of `term` at position role `role` (0 = s,
  /// 1 = p, 2 = o): ascending insertion positions, early-exit on false.
  void ScanPostings(int role, uint32_t term,
                    FunctionRef<bool(uint32_t pos)> fn) const;

  /// Exact number of postings of `term` at `role` with position
  /// < `pos_limit`. O(1) when the limit is unrestricted (the list
  /// length is stored); decodes the list prefix otherwise.
  size_t CountPostings(int role, uint32_t term, uint32_t pos_limit) const;

  /// Insertion position of `t` in the snapshot, or nullopt. One SPO
  /// block-index binary search plus a bounded group scan.
  std::optional<uint32_t> FindTriple(const Triple& t) const;

 private:
  MappedSnapshot() = default;

  struct Section {
    const uint8_t* data = nullptr;
    size_t length = 0;
  };

  struct RunView {
    uint64_t entry_count = 0;
    const RunBlockIndexEntry* index = nullptr;  // [block_count]
    uint64_t block_count = 0;
    const uint8_t* payload = nullptr;
    size_t payload_len = 0;
  };

  struct PostingsView {
    uint64_t num_terms = 0;
    const uint64_t* offsets = nullptr;  // [num_terms + 1], into payload
    const uint32_t* terms = nullptr;    // [num_terms], sorted term ids
    const uint8_t* payload = nullptr;
    size_t payload_len = 0;
  };

  Status ValidateAndIndex(const OpenOptions& options, const std::string& path);
  Result<RunView> IndexRun(const Section& section,
                           const std::string& path) const;
  Result<PostingsView> IndexPostings(const Section& section,
                                     const std::string& path) const;

  void* map_ = nullptr;
  size_t file_len_ = 0;
  size_t num_triples_ = 0;
  size_t num_terms_ = 0;
  uint64_t next_null_ = 0;
  uint32_t distinct_[3] = {0, 0, 0};
  Section sections_[kSectionCount];
  const Triple* triples_ = nullptr;
  RunView runs_[3];
  PostingsView postings_[3];
};

}  // namespace rps::storage

#endif  // RPS_STORAGE_SNAPSHOT_READER_H_
