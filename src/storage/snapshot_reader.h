#ifndef RPS_STORAGE_SNAPSHOT_READER_H_
#define RPS_STORAGE_SNAPSHOT_READER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "rdf/term.h"
#include "rdf/triple.h"
#include "storage/format.h"
#include "util/function_ref.h"
#include "util/result.h"

namespace rps::storage {

/// Options for opening a snapshot.
struct OpenOptions {
  /// Verify every section's checksum at open (one linear memcmp-speed
  /// pass over the file). Disable only for trusted local snapshots where
  /// pure O(mmap) open matters; decode paths stay bounds-checked either
  /// way, so corrupted payloads can return wrong matches but never read
  /// out of bounds or crash.
  bool verify_checksums = true;
};

/// A memory-mapped, read-only view of one snapshot file. Opening
/// validates the header, the section table, and (by default) the
/// per-section checksums; every accessor afterwards serves straight from
/// the mapping, so the OS pages data in on demand and evicts it under
/// memory pressure — datasets can exceed RAM.
///
/// The view is immutable and internally synchronized-free: any number of
/// threads may read concurrently. `Graph` holds one via shared_ptr as
/// its mapped base tier (rdf/graph.h "Storage layout").
class MappedSnapshot {
 public:
  /// Opens and validates `path`. Structural damage — short file, bad
  /// magic, table rows out of bounds, checksum mismatch — returns
  /// kDataLoss; a future format version returns kUnimplemented; a
  /// big-endian host returns kUnimplemented.
  static Result<std::shared_ptr<const MappedSnapshot>> Open(
      const std::string& path, const OpenOptions& options = OpenOptions());

  ~MappedSnapshot();
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  size_t num_triples() const { return num_triples_; }
  size_t num_terms() const { return num_terms_; }
  uint64_t next_null() const { return next_null_; }
  uint64_t bytes_on_disk() const { return file_len_; }
  uint32_t distinct_subjects() const { return distinct_[0]; }
  uint32_t distinct_predicates() const { return distinct_[1]; }
  uint32_t distinct_objects() const { return distinct_[2]; }

  /// The insertion-ordered triple array, mapped in place (positions are
  /// indexes into it). Valid for the lifetime of the snapshot.
  const Triple* triples() const { return triples_; }

  /// Decodes the dictionary section in id order, invoking `fn` once per
  /// term with its materialized value. Returns kDataLoss on a malformed
  /// stream (only reachable with verify_checksums off).
  Status ForEachTerm(FunctionRef<void(uint32_t id, const Term& term)> fn)
      const;

  /// Streams the insertion positions of every run entry whose (k1, k2)
  /// equals the probe, in ascending position order (the permuted-run
  /// contract BaseRange has in memory). `fn` returns false to stop
  /// early. `perm` indexes {SPO, POS, OSP} as 0/1/2. One block-index
  /// binary search plus decoding of the covering blocks.
  void ScanRun(int perm, uint32_t k1, uint32_t k2,
               FunctionRef<bool(uint32_t pos)> fn) const;

  /// Exact number of run entries whose (k1, k2) equals the probe and
  /// whose position is < `pos_limit`. With an unrestricted limit
  /// (>= num_triples()) only the two boundary blocks are decoded —
  /// interior blocks covered by the probe count arithmetically.
  size_t CountRun(int perm, uint32_t k1, uint32_t k2,
                  uint32_t pos_limit) const;

  /// Streams the posting list of `term` at position role `role` (0 = s,
  /// 1 = p, 2 = o): ascending insertion positions, early-exit on false.
  void ScanPostings(int role, uint32_t term,
                    FunctionRef<bool(uint32_t pos)> fn) const;

  /// Exact number of postings of `term` at `role` with position
  /// < `pos_limit`. O(1) when the limit is unrestricted (the list
  /// length is stored); decodes the list prefix otherwise.
  size_t CountPostings(int role, uint32_t term, uint32_t pos_limit) const;

  /// Insertion position of `t` in the snapshot, or nullopt. One SPO
  /// block-index binary search plus a bounded group scan.
  std::optional<uint32_t> FindTriple(const Triple& t) const;

  /// True when the file carries the per-predicate statistics section
  /// (files written before kSectionPredStats existed do not).
  bool has_pred_stats() const { return pred_stats_ != nullptr; }

  /// The statistics row for `pred`, or nullopt when the section is
  /// absent or the predicate never occurs in the snapshot. One binary
  /// search over the mapped, pred-sorted rows.
  std::optional<PredStatsEntry> PredStats(uint32_t pred) const;

  /// All statistics rows (pred-sorted); empty view when absent.
  const PredStatsEntry* pred_stats() const { return pred_stats_; }
  size_t num_pred_stats() const { return num_pred_stats_; }

  /// A forward cursor over the *distinct (k1, k2) groups* of one
  /// permuted run — the second trie level the WCOJ operator walks. The
  /// cursor never materializes a group: it binary searches the
  /// fixed-width block index and decodes at most two delta/varint
  /// blocks per reposition, caching the current block. At a group the
  /// cursor exposes the key pair and the group's *head position* (its
  /// minimum insertion position — run entries of one group are
  /// position-ascending), which is exactly what epoch-visibility checks
  /// need. Seeks must be monotonically usable but the cursor also
  /// supports arbitrary re-seeks (leapfrogging jumps backwards never,
  /// but restarts are cheap: O(log blocks) + <= 2 block decodes).
  class GroupCursor {
   public:
    GroupCursor(const MappedSnapshot* snap, int perm)
        : snap_(snap), perm_(perm) {}

    /// Positions at the first group with key >= (k1, k2). The first run
    /// entry with key >= the probe always heads its group, so this is a
    /// group-level seek. Clears at_end() when such a group exists.
    void SeekKey(uint32_t k1, uint32_t k2);

    /// Advances to the next distinct key group (first entry with key
    /// strictly greater than the current group's). Block-index search,
    /// so a group spanning many blocks is skipped without decoding it.
    void NextKey();

    bool at_end() const { return at_end_; }
    uint32_t k1() const { return cur_.k1; }
    uint32_t k2() const { return cur_.k2; }
    uint32_t head_pos() const { return cur_.pos; }

   private:
    // Positions at the first entry whose key compares >= (strict=false)
    // or > (strict=true) the probe.
    void SeekFirst(uint32_t k1, uint32_t k2, bool strict);
    // Decodes block `b` into buf_ (cached); returns decoded count.
    size_t LoadBlock(uint64_t b);

    const MappedSnapshot* snap_;
    int perm_;
    bool at_end_ = true;
    RunEntry cur_{0, 0, 0};
    uint64_t buf_block_ = ~0ull;  // which block buf_ holds, ~0 = none
    size_t buf_n_ = 0;
    RunEntry buf_[kRunBlockEntries];
  };

 private:
  MappedSnapshot() = default;

  struct Section {
    const uint8_t* data = nullptr;
    size_t length = 0;
  };

  struct RunView {
    uint64_t entry_count = 0;
    const RunBlockIndexEntry* index = nullptr;  // [block_count]
    uint64_t block_count = 0;
    const uint8_t* payload = nullptr;
    size_t payload_len = 0;
  };

  struct PostingsView {
    uint64_t num_terms = 0;
    const uint64_t* offsets = nullptr;  // [num_terms + 1], into payload
    const uint32_t* terms = nullptr;    // [num_terms], sorted term ids
    const uint8_t* payload = nullptr;
    size_t payload_len = 0;
  };

  Status ValidateAndIndex(const OpenOptions& options, const std::string& path);
  Result<RunView> IndexRun(const Section& section,
                           const std::string& path) const;
  Result<PostingsView> IndexPostings(const Section& section,
                                     const std::string& path) const;

  void* map_ = nullptr;
  size_t file_len_ = 0;
  size_t num_triples_ = 0;
  size_t num_terms_ = 0;
  uint64_t next_null_ = 0;
  uint32_t distinct_[3] = {0, 0, 0};
  Section sections_[kSectionCountMax];
  const Triple* triples_ = nullptr;
  RunView runs_[3];
  PostingsView postings_[3];
  const PredStatsEntry* pred_stats_ = nullptr;  // null = section absent
  size_t num_pred_stats_ = 0;
};

}  // namespace rps::storage

#endif  // RPS_STORAGE_SNAPSHOT_READER_H_
