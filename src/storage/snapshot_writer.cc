#include "storage/snapshot_writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "storage/format.h"
#include "storage/varint.h"

namespace rps::storage {

namespace {

static_assert(sizeof(Triple) == 12,
              "the fixed-width triple section assumes a packed 3 x u32 "
              "Triple layout");

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool RunLess(const RunEntry& a, const RunEntry& b) {
  if (a.k1 != b.k1) return a.k1 < b.k1;
  if (a.k2 != b.k2) return a.k2 < b.k2;
  return a.pos < b.pos;
}

// Encodes a sorted run as kRunBlockEntries-sized delta/varint blocks with
// a fixed-width block index (the mmap reader binary searches the index
// and decodes only the covering blocks).
std::string EncodeRun(const std::vector<RunEntry>& run) {
  std::string payload;
  std::string index;
  uint64_t block_count = 0;
  for (size_t start = 0; start < run.size(); start += kRunBlockEntries) {
    const RunEntry& head = run[start];
    index.reserve(index.size() + sizeof(RunBlockIndexEntry));
    PutU32(&index, head.k1);
    PutU32(&index, head.k2);
    PutU64(&index, payload.size());
    ++block_count;
    size_t n = std::min(kRunBlockEntries, run.size() - start);
    PutVarint32(&payload, head.k1);
    PutVarint32(&payload, head.k2);
    PutVarint32(&payload, head.pos);
    for (size_t i = 1; i < n; ++i) {
      const RunEntry& prev = run[start + i - 1];
      const RunEntry& cur = run[start + i];
      PutVarint32(&payload, cur.k1 - prev.k1);
      if (cur.k1 == prev.k1) {
        PutVarint32(&payload, cur.k2 - prev.k2);
        if (cur.k2 == prev.k2) {
          // Same (k1, k2) group: positions are strictly ascending.
          PutVarint32(&payload, cur.pos - prev.pos);
        } else {
          PutVarint32(&payload, cur.pos);
        }
      } else {
        PutVarint32(&payload, cur.k2);
        PutVarint32(&payload, cur.pos);
      }
    }
  }
  std::string out;
  out.reserve(16 + index.size() + payload.size());
  PutU64(&out, run.size());
  PutU64(&out, block_count);
  out += index;
  out += payload;
  return out;
}

// Encodes one role's posting lists: sorted term ids with an offset array
// in front (offsets before ids keeps both naturally aligned), each list
// a stored count followed by delta/varint positions.
std::string EncodePostings(
    const std::unordered_map<uint32_t, std::vector<uint32_t>>& lists) {
  std::vector<uint32_t> terms;
  terms.reserve(lists.size());
  for (const auto& [term, _] : lists) terms.push_back(term);
  std::sort(terms.begin(), terms.end());

  std::string payload;
  std::vector<uint64_t> offsets;
  offsets.reserve(terms.size() + 1);
  for (uint32_t term : terms) {
    offsets.push_back(payload.size());
    const std::vector<uint32_t>& list = lists.at(term);
    PutVarint64(&payload, list.size());
    for (size_t i = 0; i < list.size(); ++i) {
      PutVarint32(&payload, i == 0 ? list[i] : list[i] - list[i - 1]);
    }
  }
  offsets.push_back(payload.size());

  std::string out;
  out.reserve(8 + offsets.size() * 8 + terms.size() * 4 + payload.size());
  PutU64(&out, terms.size());
  for (uint64_t off : offsets) PutU64(&out, off);
  for (uint32_t term : terms) PutU32(&out, term);
  out += payload;
  return out;
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + "(" + path + "): " + std::strerror(errno));
}

// Writes `data` to `path + ".tmp"`, fsyncs it, renames it over `path`,
// and fsyncs the parent directory — the crash-atomicity protocol
// documented in docs/PERSISTENCE.md.
Status AtomicWriteFile(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", tmp);
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return IoError("write", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return IoError("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return IoError("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return IoError("rename", tmp);
  }
  // Persist the rename itself: fsync the containing directory.
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const std::string& path, const Graph& graph) {
  const Dictionary& dict = *graph.dict();
  const size_t n = graph.size();
  const size_t term_count = dict.size();

  // --- Dictionary section: terms in id order, length-prefixed. ---
  std::string dict_section;
  PutVarint64(&dict_section, term_count);
  for (size_t id = 0; id < term_count; ++id) {
    const Term& t = dict.term(static_cast<TermId>(id));
    uint8_t kind;
    if (t.is_iri()) {
      kind = kDictIri;
    } else if (t.is_blank()) {
      kind = kDictBlank;
    } else if (!t.lang().empty()) {
      kind = kDictLangLiteral;
    } else if (!t.datatype().empty()) {
      kind = kDictTypedLiteral;
    } else {
      kind = kDictLiteral;
    }
    dict_section.push_back(static_cast<char>(kind));
    PutVarint32(&dict_section, static_cast<uint32_t>(t.lexical().size()));
    dict_section += t.lexical();
    if (kind == kDictTypedLiteral) {
      PutVarint32(&dict_section, static_cast<uint32_t>(t.datatype().size()));
      dict_section += t.datatype();
    } else if (kind == kDictLangLiteral) {
      PutVarint32(&dict_section, static_cast<uint32_t>(t.lang().size()));
      dict_section += t.lang();
    }
  }

  // --- Triples section: the insertion-ordered fixed-width array. ---
  // One pass also collects the per-role posting lists (positions come
  // out ascending because the pass is in insertion order).
  std::string triples_section;
  triples_section.reserve(n * sizeof(Triple));
  std::unordered_map<uint32_t, std::vector<uint32_t>> post[3];
  std::vector<RunEntry> runs[3];
  for (int i = 0; i < 3; ++i) runs[i].reserve(n);
  uint32_t pos = 0;
  for (const Triple& t : graph.triples()) {
    triples_section.append(reinterpret_cast<const char*>(&t), sizeof(Triple));
    post[0][t.s].push_back(pos);
    post[1][t.p].push_back(pos);
    post[2][t.o].push_back(pos);
    runs[0].push_back(RunEntry{t.s, t.p, pos});  // SPO
    runs[1].push_back(RunEntry{t.p, t.o, pos});  // POS
    runs[2].push_back(RunEntry{t.o, t.s, pos});  // OSP
    ++pos;
  }

  // --- Per-predicate distinct stats: one pass over the sorted POS run
  // (distinct objects per predicate fall out of the grouping) plus a
  // grouped pass over SPO-sorted (p, s) pairs for distinct subjects. ---
  std::string stats_section;
  {
    std::sort(runs[1].begin(), runs[1].end(), RunLess);  // POS order
    std::vector<RunEntry> ps;  // (pred, subj) pairs, then sorted
    ps.reserve(n);
    for (const Triple& t : graph.triples()) {
      ps.push_back(RunEntry{t.p, t.s, 0});
    }
    std::sort(ps.begin(), ps.end(), RunLess);
    std::unordered_map<uint32_t, PredStatsEntry> stats;
    stats.reserve(post[1].size());
    const std::vector<RunEntry>& pos_run = runs[1];
    for (size_t i = 0; i < pos_run.size(); ++i) {
      if (i == 0 || pos_run[i].k1 != pos_run[i - 1].k1 ||
          pos_run[i].k2 != pos_run[i - 1].k2) {
        ++stats[pos_run[i].k1].distinct_o;
      }
    }
    for (size_t i = 0; i < ps.size(); ++i) {
      if (i == 0 || ps[i].k1 != ps[i - 1].k1 || ps[i].k2 != ps[i - 1].k2) {
        ++stats[ps[i].k1].distinct_s;
      }
    }
    std::vector<PredStatsEntry> rows;
    rows.reserve(stats.size());
    for (auto& [pred, row] : stats) {
      row.pred = pred;
      rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const PredStatsEntry& a, const PredStatsEntry& b) {
                return a.pred < b.pred;
              });
    PutU64(&stats_section, rows.size());
    stats_section.append(reinterpret_cast<const char*>(rows.data()),
                         rows.size() * sizeof(PredStatsEntry));
  }

  std::string sections[kSectionCountMax];
  sections[kSectionDict] = std::move(dict_section);
  sections[kSectionTriples] = std::move(triples_section);
  sections[kSectionPredStats] = std::move(stats_section);
  for (int i = 0; i < 3; ++i) {
    std::sort(runs[i].begin(), runs[i].end(), RunLess);
    sections[kSectionRunSpo + i] = EncodeRun(runs[i]);
    runs[i].clear();
    runs[i].shrink_to_fit();
    sections[kSectionPostS + i] = EncodePostings(post[i]);
  }

  // --- Assemble: header | table | 8-aligned sections. ---
  FileHeader hdr;
  std::memset(&hdr, 0, sizeof(hdr));
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.version = kFormatVersion;
  hdr.flags = kFlagLittleEndian;
  hdr.triple_count = n;
  hdr.term_count = term_count;
  hdr.next_null = dict.null_counter();
  hdr.section_count = kSectionCountMax;
  hdr.distinct_s = static_cast<uint32_t>(post[0].size());
  hdr.distinct_p = static_cast<uint32_t>(post[1].size());
  hdr.distinct_o = static_cast<uint32_t>(post[2].size());

  SectionEntry table[kSectionCountMax];
  uint64_t offset = kHeaderBytes + sizeof(table);
  for (uint32_t i = 0; i < kSectionCountMax; ++i) {
    table[i].id = i;
    table[i].reserved = 0;
    table[i].offset = offset;
    table[i].length = sections[i].size();
    table[i].checksum = Fnv1a64(sections[i].data(), sections[i].size());
    offset += (sections[i].size() + 7) & ~uint64_t{7};
  }

  std::string file;
  file.reserve(offset);
  file.append(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  uint64_t header_checksum =
      Fnv1a64(table, sizeof(table), Fnv1a64(&hdr, sizeof(hdr)));
  PutU64(&file, header_checksum);
  file.append(reinterpret_cast<const char*>(table), sizeof(table));
  for (uint32_t i = 0; i < kSectionCountMax; ++i) {
    file += sections[i];
    file.append((8 - file.size() % 8) % 8, '\0');
  }

  return AtomicWriteFile(path, file);
}

}  // namespace rps::storage
