#include "storage/snapshot_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>

#include "storage/varint.h"

namespace rps::storage {

namespace {

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::DataLoss("snapshot " + path + ": " + what);
}

// Reads a little-endian u64 from a possibly unaligned address.
uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Decodes the run block starting at `p` into `out` (at most `count`
// entries). Returns the number decoded — short on a malformed stream,
// which callers treat as end-of-data (only reachable with
// verify_checksums off; positions are clamped by the caller either way).
size_t DecodeRunBlock(const uint8_t* p, const uint8_t* end, size_t count,
                      RunEntry* out) {
  uint32_t k1 = 0, k2 = 0, pos = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i == 0) {
      if (!GetVarint32(&p, end, &k1) || !GetVarint32(&p, end, &k2) ||
          !GetVarint32(&p, end, &pos)) {
        return i;
      }
    } else {
      uint32_t dk1;
      if (!GetVarint32(&p, end, &dk1)) return i;
      if (dk1 == 0) {
        uint32_t dk2;
        if (!GetVarint32(&p, end, &dk2)) return i;
        if (dk2 == 0) {
          uint32_t dpos;
          if (!GetVarint32(&p, end, &dpos)) return i;
          pos += dpos;
        } else {
          k2 += dk2;
          if (!GetVarint32(&p, end, &pos)) return i;
        }
      } else {
        k1 += dk1;
        if (!GetVarint32(&p, end, &k2) || !GetVarint32(&p, end, &pos)) {
          return i;
        }
      }
    }
    out[i] = RunEntry{k1, k2, pos};
  }
  return count;
}

bool KeyLess(uint32_t a1, uint32_t a2, uint32_t b1, uint32_t b2) {
  return a1 != b1 ? a1 < b1 : a2 < b2;
}

}  // namespace

MappedSnapshot::~MappedSnapshot() {
  if (map_ != nullptr) munmap(map_, file_len_);
}

Result<std::shared_ptr<const MappedSnapshot>> MappedSnapshot::Open(
    const std::string& path, const OpenOptions& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Unimplemented(
        "snapshot loading requires a little-endian host");
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("snapshot not found: " + path);
    }
    return Status::Internal("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal("fstat(" + path + "): " + std::strerror(err));
  }
  size_t len = static_cast<size_t>(st.st_size);
  if (len < kHeaderBytes + kSectionCount * sizeof(SectionEntry)) {
    ::close(fd);
    return Corrupt(path, "file truncated (" + std::to_string(len) + " bytes)");
  }
  void* map = mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the inode alive
  if (map == MAP_FAILED) {
    return Status::Internal("mmap(" + path + "): " + std::strerror(errno));
  }

  // shared_ptr<const ...> via a non-const intermediate so Open can fill
  // the members; the private constructor forces this factory path.
  std::shared_ptr<MappedSnapshot> snap(new MappedSnapshot());
  snap->map_ = map;
  snap->file_len_ = len;
  Status s = snap->ValidateAndIndex(options, path);
  if (!s.ok()) return s;
  return std::shared_ptr<const MappedSnapshot>(std::move(snap));
}

Status MappedSnapshot::ValidateAndIndex(const OpenOptions& options,
                                        const std::string& path) {
  const uint8_t* base = static_cast<const uint8_t*>(map_);

  FileHeader hdr;
  std::memcpy(&hdr, base, sizeof(hdr));
  if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  if (hdr.version > kFormatVersion) {
    return Status::Unimplemented(
        "snapshot " + path + ": format version " +
        std::to_string(hdr.version) + " is newer than this build (" +
        std::to_string(kFormatVersion) + ")");
  }
  if (hdr.version != kFormatVersion) {
    return Corrupt(path, "unsupported version " + std::to_string(hdr.version));
  }
  if ((hdr.flags & kFlagLittleEndian) == 0) {
    return Status::Unimplemented("snapshot " + path +
                                 ": big-endian payload not supported");
  }
  // Version-1 files carry either the original eight sections or nine
  // (with the appended per-predicate statistics section); on legacy
  // files the stats are simply absent.
  if (hdr.section_count < kSectionCount ||
      hdr.section_count > kSectionCountMax) {
    return Corrupt(path, "unexpected section count " +
                             std::to_string(hdr.section_count));
  }
  if (file_len_ < kHeaderBytes + hdr.section_count * sizeof(SectionEntry)) {
    return Corrupt(path, "section table truncated");
  }

  const size_t table_bytes = hdr.section_count * sizeof(SectionEntry);
  const uint8_t* table = base + kHeaderBytes;
  uint64_t want = ReadU64(base + sizeof(FileHeader));
  uint64_t got = Fnv1a64(table, table_bytes,
                         Fnv1a64(base, sizeof(FileHeader)));
  if (want != got) return Corrupt(path, "header checksum mismatch");

  num_triples_ = hdr.triple_count;
  num_terms_ = hdr.term_count;
  next_null_ = hdr.next_null;
  distinct_[0] = hdr.distinct_s;
  distinct_[1] = hdr.distinct_p;
  distinct_[2] = hdr.distinct_o;

  for (uint32_t i = 0; i < hdr.section_count; ++i) {
    SectionEntry row;
    std::memcpy(&row, table + i * sizeof(SectionEntry), sizeof(row));
    if (row.id != i) {
      return Corrupt(path, "section table out of order");
    }
    if (row.offset % 8 != 0 || row.offset > file_len_ ||
        row.length > file_len_ - row.offset) {
      return Corrupt(path, "section " + std::to_string(i) + " out of bounds");
    }
    sections_[i].data = base + row.offset;
    sections_[i].length = row.length;
    if (options.verify_checksums &&
        Fnv1a64(sections_[i].data, sections_[i].length) != row.checksum) {
      return Corrupt(path, "section " + std::to_string(i) +
                               " checksum mismatch");
    }
  }

  const Section& triples = sections_[kSectionTriples];
  if (triples.length != num_triples_ * sizeof(Triple)) {
    return Corrupt(path, "triple section size mismatch");
  }
  triples_ = reinterpret_cast<const Triple*>(triples.data);

  for (int perm = 0; perm < 3; ++perm) {
    RPS_ASSIGN_OR_RETURN(
        runs_[perm],
        IndexRun(sections_[kSectionRunSpo + perm], path));
    if (runs_[perm].entry_count != num_triples_) {
      return Corrupt(path, "run entry count mismatch");
    }
  }
  for (int role = 0; role < 3; ++role) {
    RPS_ASSIGN_OR_RETURN(
        postings_[role],
        IndexPostings(sections_[kSectionPostS + role], path));
  }

  if (hdr.section_count > kSectionPredStats) {
    const Section& stats = sections_[kSectionPredStats];
    if (stats.length < 8) return Corrupt(path, "stats section truncated");
    uint64_t rows = ReadU64(stats.data);
    if (stats.length < 8 + rows * sizeof(PredStatsEntry)) {
      return Corrupt(path, "stats section truncated");
    }
    pred_stats_ = reinterpret_cast<const PredStatsEntry*>(stats.data + 8);
    num_pred_stats_ = static_cast<size_t>(rows);
    for (size_t i = 1; i < num_pred_stats_; ++i) {
      if (pred_stats_[i - 1].pred >= pred_stats_[i].pred) {
        return Corrupt(path, "stats section out of order");
      }
    }
  }
  return Status::OK();
}

Result<MappedSnapshot::RunView> MappedSnapshot::IndexRun(
    const Section& section, const std::string& path) const {
  RunView rv;
  if (section.length < 16) return Corrupt(path, "run section truncated");
  rv.entry_count = ReadU64(section.data);
  rv.block_count = ReadU64(section.data + 8);
  uint64_t expect_blocks =
      (rv.entry_count + kRunBlockEntries - 1) / kRunBlockEntries;
  if (rv.block_count != expect_blocks) {
    return Corrupt(path, "run block count mismatch");
  }
  uint64_t index_bytes = rv.block_count * sizeof(RunBlockIndexEntry);
  if (section.length < 16 + index_bytes) {
    return Corrupt(path, "run block index truncated");
  }
  rv.index = reinterpret_cast<const RunBlockIndexEntry*>(section.data + 16);
  rv.payload = section.data + 16 + index_bytes;
  rv.payload_len = section.length - 16 - index_bytes;
  for (uint64_t b = 0; b < rv.block_count; ++b) {
    if (rv.index[b].offset > rv.payload_len) {
      return Corrupt(path, "run block offset out of bounds");
    }
  }
  return rv;
}

Result<MappedSnapshot::PostingsView> MappedSnapshot::IndexPostings(
    const Section& section, const std::string& path) const {
  PostingsView pv;
  if (section.length < 8) return Corrupt(path, "posting section truncated");
  pv.num_terms = ReadU64(section.data);
  // Layout: u64 m | (m + 1) x u64 offsets | m x u32 sorted term ids |
  // payload. Offsets precede ids so both arrays stay naturally aligned
  // off the section's 8-byte start.
  uint64_t fixed = 8 + (pv.num_terms + 1) * 8 + pv.num_terms * 4;
  if (pv.num_terms > section.length || section.length < fixed) {
    return Corrupt(path, "posting index truncated");
  }
  pv.offsets = reinterpret_cast<const uint64_t*>(section.data + 8);
  pv.terms = reinterpret_cast<const uint32_t*>(section.data + 8 +
                                               (pv.num_terms + 1) * 8);
  pv.payload = section.data + fixed;
  pv.payload_len = section.length - fixed;
  for (uint64_t i = 0; i <= pv.num_terms; ++i) {
    if (pv.offsets[i] > pv.payload_len ||
        (i > 0 && pv.offsets[i] < pv.offsets[i - 1])) {
      return Corrupt(path, "posting offsets out of bounds");
    }
  }
  return pv;
}

Status MappedSnapshot::ForEachTerm(
    FunctionRef<void(uint32_t id, const Term& term)> fn) const {
  const Section& dict = sections_[kSectionDict];
  const uint8_t* p = dict.data;
  const uint8_t* end = dict.data + dict.length;
  uint64_t count;
  if (!GetVarint64(&p, end, &count) || count != num_terms_) {
    return Status::DataLoss("snapshot dictionary: term count mismatch");
  }
  auto read_string = [&](std::string* out) {
    uint32_t len;
    if (!GetVarint32(&p, end, &len) ||
        len > static_cast<size_t>(end - p)) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(p), len);
    p += len;
    return true;
  };
  for (uint64_t id = 0; id < count; ++id) {
    if (p >= end) return Status::DataLoss("snapshot dictionary: truncated");
    uint8_t kind = *p++;
    std::string lexical;
    if (!read_string(&lexical)) {
      return Status::DataLoss("snapshot dictionary: truncated term");
    }
    switch (kind) {
      case kDictIri:
        fn(static_cast<uint32_t>(id), Term::Iri(std::move(lexical)));
        break;
      case kDictBlank:
        fn(static_cast<uint32_t>(id), Term::Blank(std::move(lexical)));
        break;
      case kDictLiteral:
        fn(static_cast<uint32_t>(id), Term::Literal(std::move(lexical)));
        break;
      case kDictTypedLiteral: {
        std::string datatype;
        if (!read_string(&datatype)) {
          return Status::DataLoss("snapshot dictionary: truncated datatype");
        }
        fn(static_cast<uint32_t>(id),
           Term::TypedLiteral(std::move(lexical), std::move(datatype)));
        break;
      }
      case kDictLangLiteral: {
        std::string lang;
        if (!read_string(&lang)) {
          return Status::DataLoss("snapshot dictionary: truncated language");
        }
        fn(static_cast<uint32_t>(id),
           Term::LangLiteral(std::move(lexical), std::move(lang)));
        break;
      }
      default:
        return Status::DataLoss("snapshot dictionary: unknown term kind " +
                                std::to_string(kind));
    }
  }
  return Status::OK();
}

void MappedSnapshot::ScanRun(int perm, uint32_t k1, uint32_t k2,
                             FunctionRef<bool(uint32_t pos)> fn) const {
  const RunView& rv = runs_[perm];
  if (rv.block_count == 0) return;
  // First block whose first key is >= the probe. The probe's group may
  // start mid-way through the preceding block, so the scan begins one
  // block earlier; a group spanning many blocks is then walked forward
  // to its end (the first entry past the probe terminates the scan).
  uint64_t lo = 0, hi = rv.block_count;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (KeyLess(rv.index[mid].k1, rv.index[mid].k2, k1, k2)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  uint64_t block = lo > 0 ? lo - 1 : 0;

  RunEntry entries[kRunBlockEntries];
  const uint8_t* end = rv.payload + rv.payload_len;
  for (; block < rv.block_count; ++block) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(kRunBlockEntries,
                           rv.entry_count - block * kRunBlockEntries));
    size_t n = DecodeRunBlock(rv.payload + rv.index[block].offset, end, want,
                              entries);
    for (size_t i = 0; i < n; ++i) {
      const RunEntry& e = entries[i];
      if (KeyLess(k1, k2, e.k1, e.k2)) return;  // past the probe's group
      if (e.k1 == k1 && e.k2 == k2 && e.pos < num_triples_) {
        if (!fn(e.pos)) return;
      }
    }
    if (n < want) return;  // malformed tail: stop cleanly
  }
}

size_t MappedSnapshot::CountRun(int perm, uint32_t k1, uint32_t k2,
                                uint32_t pos_limit) const {
  const RunView& rv = runs_[perm];
  if (rv.block_count == 0) return 0;
  if (pos_limit < num_triples_) {
    // Bounded count (pre-snapshot epoch): entries of one key group are
    // position-ascending, so stop at the first position past the limit.
    size_t count = 0;
    ScanRun(perm, k1, k2, [&](uint32_t pos) {
      if (pos >= pos_limit) return false;
      ++count;
      return true;
    });
    return count;
  }
  // Unrestricted count: binary search the block index for the blocks
  // whose first key equals the probe. Every *interior* such block (one
  // that is followed by another block starting with the probe) is
  // entirely the probe's group — it counts arithmetically; only the two
  // boundary blocks are decoded.
  uint64_t lo = 0, hi = rv.block_count;
  while (lo < hi) {  // first block with first key >= probe
    uint64_t mid = lo + (hi - lo) / 2;
    if (KeyLess(rv.index[mid].k1, rv.index[mid].k2, k1, k2)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  uint64_t first_ge = lo;
  hi = rv.block_count;
  while (lo < hi) {  // first block with first key > probe
    uint64_t mid = lo + (hi - lo) / 2;
    if (KeyLess(k1, k2, rv.index[mid].k1, rv.index[mid].k2)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  uint64_t first_gt = lo;

  RunEntry entries[kRunBlockEntries];
  const uint8_t* end = rv.payload + rv.payload_len;
  auto count_block = [&](uint64_t block) -> size_t {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(kRunBlockEntries,
                           rv.entry_count - block * kRunBlockEntries));
    size_t n = DecodeRunBlock(rv.payload + rv.index[block].offset, end, want,
                              entries);
    size_t c = 0;
    for (size_t i = 0; i < n; ++i) {
      if (entries[i].k1 == k1 && entries[i].k2 == k2) ++c;
    }
    return c;
  };

  size_t count = 0;
  if (first_ge > 0) count += count_block(first_ge - 1);
  if (first_gt > first_ge) {
    // Interior blocks [first_ge, first_gt - 1) are full and all-probe.
    count += static_cast<size_t>(first_gt - 1 - first_ge) * kRunBlockEntries;
    count += count_block(first_gt - 1);
  }
  return count;
}

void MappedSnapshot::ScanPostings(int role, uint32_t term,
                                  FunctionRef<bool(uint32_t pos)> fn) const {
  const PostingsView& pv = postings_[role];
  const uint32_t* it =
      std::lower_bound(pv.terms, pv.terms + pv.num_terms, term);
  if (it == pv.terms + pv.num_terms || *it != term) return;
  size_t idx = static_cast<size_t>(it - pv.terms);
  const uint8_t* p = pv.payload + pv.offsets[idx];
  const uint8_t* end = pv.payload + pv.offsets[idx + 1];
  uint64_t count;
  if (!GetVarint64(&p, end, &count)) return;
  uint32_t pos = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t delta;
    if (!GetVarint32(&p, end, &delta)) return;
    pos = (i == 0) ? delta : pos + delta;
    if (pos < num_triples_ && !fn(pos)) return;
  }
}

size_t MappedSnapshot::CountPostings(int role, uint32_t term,
                                     uint32_t pos_limit) const {
  const PostingsView& pv = postings_[role];
  const uint32_t* it =
      std::lower_bound(pv.terms, pv.terms + pv.num_terms, term);
  if (it == pv.terms + pv.num_terms || *it != term) return 0;
  size_t idx = static_cast<size_t>(it - pv.terms);
  const uint8_t* p = pv.payload + pv.offsets[idx];
  const uint8_t* end = pv.payload + pv.offsets[idx + 1];
  uint64_t count;
  if (!GetVarint64(&p, end, &count)) return 0;
  if (pos_limit >= num_triples_) return static_cast<size_t>(count);
  size_t bounded = 0;
  uint32_t pos = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t delta;
    if (!GetVarint32(&p, end, &delta)) break;
    pos = (i == 0) ? delta : pos + delta;
    if (pos >= pos_limit) break;  // postings are position-ascending
    ++bounded;
  }
  return bounded;
}

std::optional<uint32_t> MappedSnapshot::FindTriple(const Triple& t) const {
  std::optional<uint32_t> found;
  ScanRun(0 /* SPO */, t.s, t.p, [&](uint32_t pos) {
    if (triples_[pos].o == t.o) {
      found = pos;
      return false;
    }
    return true;
  });
  return found;
}

std::optional<PredStatsEntry> MappedSnapshot::PredStats(uint32_t pred) const {
  if (pred_stats_ == nullptr) return std::nullopt;
  const PredStatsEntry* end = pred_stats_ + num_pred_stats_;
  const PredStatsEntry* it = std::lower_bound(
      pred_stats_, end, pred,
      [](const PredStatsEntry& e, uint32_t p) { return e.pred < p; });
  if (it == end || it->pred != pred) return std::nullopt;
  return *it;
}

size_t MappedSnapshot::GroupCursor::LoadBlock(uint64_t b) {
  if (b == buf_block_) return buf_n_;
  const RunView& rv = snap_->runs_[perm_];
  size_t want = static_cast<size_t>(std::min<uint64_t>(
      kRunBlockEntries, rv.entry_count - b * kRunBlockEntries));
  buf_n_ = DecodeRunBlock(rv.payload + rv.index[b].offset,
                          rv.payload + rv.payload_len, want, buf_);
  buf_block_ = b;
  return buf_n_;
}

void MappedSnapshot::GroupCursor::SeekFirst(uint32_t k1, uint32_t k2,
                                            bool strict) {
  const RunView& rv = snap_->runs_[perm_];
  at_end_ = true;
  if (rv.block_count == 0) return;
  // First block whose first key satisfies the probe; the wanted entry
  // may sit mid-way through the preceding block, so start one earlier.
  uint64_t lo = 0, hi = rv.block_count;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    bool before = strict ? !KeyLess(k1, k2, rv.index[mid].k1, rv.index[mid].k2)
                         : KeyLess(rv.index[mid].k1, rv.index[mid].k2, k1, k2);
    if (before) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (uint64_t b = lo > 0 ? lo - 1 : 0; b < rv.block_count; ++b) {
    size_t n = LoadBlock(b);
    auto past = [&](const RunEntry& e) {
      return strict ? KeyLess(k1, k2, e.k1, e.k2)
                    : !KeyLess(e.k1, e.k2, k1, k2);
    };
    const RunEntry* it = std::partition_point(
        buf_, buf_ + n, [&](const RunEntry& e) { return !past(e); });
    if (it != buf_ + n) {
      cur_ = *it;
      at_end_ = false;
      return;
    }
    if (n < kRunBlockEntries) return;  // short/last block: nothing past
    if (b >= lo) return;  // by construction only blocks < lo can all-miss
  }
}

void MappedSnapshot::GroupCursor::SeekKey(uint32_t k1, uint32_t k2) {
  // The first run entry with key >= the probe is its group's head: the
  // run is (k1, k2, pos)-sorted, so same-key entries are contiguous and
  // position-ascending, and taking the *first* one lands on the group's
  // minimum position.
  SeekFirst(k1, k2, /*strict=*/false);
}

void MappedSnapshot::GroupCursor::NextKey() {
  if (at_end_) return;
  SeekFirst(cur_.k1, cur_.k2, /*strict=*/true);
}

}  // namespace rps::storage
