#ifndef RPS_STORAGE_VARINT_H_
#define RPS_STORAGE_VARINT_H_

#include <cstdint>
#include <string>

namespace rps::storage {

/// LEB128 variable-length integers, the unit of the snapshot format's
/// delta-encoded sections (docs/PERSISTENCE.md). Encoders append to a
/// byte buffer; decoders advance a cursor and are bounds-checked — a
/// truncated or corrupted stream makes the decoder return false, never
/// read past `end`.

inline void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline void PutVarint32(std::string* out, uint32_t v) {
  PutVarint64(out, v);
}

inline bool GetVarint64(const uint8_t** p, const uint8_t* end, uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  const uint8_t* cur = *p;
  while (cur < end && shift <= 63) {
    uint8_t byte = *cur++;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *p = cur;
      *out = result;
      return true;
    }
    shift += 7;
  }
  return false;  // ran off the end or overlong encoding
}

inline bool GetVarint32(const uint8_t** p, const uint8_t* end, uint32_t* out) {
  uint64_t wide;
  if (!GetVarint64(p, end, &wide) || wide > UINT32_MAX) return false;
  *out = static_cast<uint32_t>(wide);
  return true;
}

}  // namespace rps::storage

#endif  // RPS_STORAGE_VARINT_H_
