#ifndef RPS_STORAGE_FORMAT_H_
#define RPS_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rps::storage {

/// On-disk snapshot format, version 1 (docs/PERSISTENCE.md has the full
/// layout diagram). All integers are little-endian; the loader refuses
/// big-endian hosts rather than byte-swapping.
///
///   [ header | section table | sections... ]
///
/// The fixed header carries magic/version/epoch and the table carries one
/// (id, offset, length, checksum) row per section, so a loader can mmap
/// the file, validate the table, and address every section without
/// touching the payload bytes. Each section starts 8-byte aligned — the
/// triple section is reinterpreted in place as a `Triple` array.

/// "RPSSNAP1" — 8 bytes of magic at offset 0.
inline constexpr char kMagic[8] = {'R', 'P', 'S', 'S', 'N', 'A', 'P', '1'};

inline constexpr uint32_t kFormatVersion = 1;

/// Header flag bit 0: payload is little-endian (always set by the
/// writer; a loader on a mismatched host fails cleanly).
inline constexpr uint32_t kFlagLittleEndian = 1u << 0;

/// Section identifiers, in file order.
enum SectionId : uint32_t {
  kSectionDict = 0,       // interned terms in id order
  kSectionTriples = 1,    // insertion-ordered Triple array (12 B/triple)
  kSectionRunSpo = 2,     // sorted (s, p, pos) run, delta/varint blocks
  kSectionRunPos = 3,     // sorted (p, o, pos) run
  kSectionRunOsp = 4,     // sorted (o, s, pos) run
  kSectionPostS = 5,      // per-subject posting lists, delta/varint
  kSectionPostP = 6,      // per-predicate posting lists
  kSectionPostO = 7,      // per-object posting lists
  kSectionPredStats = 8,  // per-predicate distinct-subject/object stats
};

/// Sections a version-1 file is required to carry. Files written before
/// the per-predicate statistics section carry exactly these eight; newer
/// writers append kSectionPredStats for a total of kSectionCountMax. The
/// loader accepts either (stats simply absent on legacy files), so the
/// version number stays 1.
inline constexpr uint32_t kSectionCount = 8;
inline constexpr uint32_t kSectionCountMax = 9;

/// One row of the per-predicate statistics section: after a u64 row
/// count, rows sorted by predicate id. distinct_s / distinct_o are the
/// number of distinct subjects / objects appearing with that predicate
/// in the snapshot — planner statistics only, never answer-bearing.
struct PredStatsEntry {
  uint32_t pred;
  uint32_t distinct_s;
  uint32_t distinct_o;
};
static_assert(sizeof(PredStatsEntry) == 12,
              "stats layout is part of the format");

/// Fixed-size file header (64 bytes at offset 0).
struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t flags;
  uint64_t triple_count;
  uint64_t term_count;
  uint64_t next_null;      // dictionary fresh-blank counter at save time
  uint32_t section_count;
  uint32_t distinct_s;     // posting-index sizes (planner statistics)
  uint32_t distinct_p;
  uint32_t distinct_o;
  // followed at offset 56 by a uint64_t checksum over the header bytes
  // [0, 56) concatenated with the raw section table
};
static_assert(sizeof(FileHeader) == 56, "header layout is part of the format");

inline constexpr size_t kHeaderBytes = 64;  // FileHeader + its checksum

/// One row of the section table (directly mapped).
struct SectionEntry {
  uint32_t id;
  uint32_t reserved;
  uint64_t offset;    // absolute file offset, 8-byte aligned
  uint64_t length;    // payload bytes
  uint64_t checksum;  // FNV-1a 64 of the payload
};
static_assert(sizeof(SectionEntry) == 32, "table layout is part of the format");

/// Entries per delta/varint block of a permuted run; each block gets one
/// fixed-width row in the run's block index so a (k1, k2) probe binary
/// searches the index and decodes at most the covering blocks.
inline constexpr size_t kRunBlockEntries = 128;

/// One row of a run's block index: the first entry's key plus the byte
/// offset of the block inside the run payload.
struct RunBlockIndexEntry {
  uint32_t k1;
  uint32_t k2;
  uint64_t offset;
};
static_assert(sizeof(RunBlockIndexEntry) == 16,
              "block index layout is part of the format");

/// One decoded run entry (mirrors Graph::PermEntry): the two permuted
/// key components plus the insertion position of the triple. The unit
/// the delta/varint run blocks encode and decode.
struct RunEntry {
  uint32_t k1;
  uint32_t k2;
  uint32_t pos;
};

/// Term kind tags in the dictionary section.
enum DictKind : uint8_t {
  kDictIri = 0,
  kDictBlank = 1,
  kDictLiteral = 2,        // plain xsd:string literal
  kDictTypedLiteral = 3,   // lexical + datatype IRI
  kDictLangLiteral = 4,    // lexical + language tag
};

/// FNV-1a 64-bit checksum — cheap, dependency-free, and strong enough to
/// catch torn writes and bit rot (crash *consistency* comes from the
/// write-temp-then-rename protocol, not the checksum).
inline uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(const void* data, size_t len) {
  return Fnv1a64(data, len, 0xcbf29ce484222325ULL);
}

}  // namespace rps::storage

#endif  // RPS_STORAGE_FORMAT_H_
