#ifndef RPS_PEER_EQUIVALENCE_H_
#define RPS_PEER_EQUIVALENCE_H_

#include <unordered_map>
#include <vector>

#include "peer/mapping.h"
#include "query/eval.h"
#include "rdf/graph.h"

namespace rps {

/// The reflexive-symmetric-transitive closure of a set of equivalence
/// mappings, with one canonical representative per clique (the term with
/// the lexicographically smallest rendering, so output is deterministic
/// and matches the paper's "result without redundancy" in Listing 1).
///
/// This is the optimized alternative to chasing the six tt-copying TGDs
/// per equivalence mapping (DESIGN.md §5, ablation E10): canonicalize the
/// data and queries upfront, chase only the graph mapping assertions, and
/// expand answers back over the cliques on demand.
class EquivalenceClosure {
 public:
  EquivalenceClosure(const std::vector<EquivalenceMapping>& mappings,
                     const Dictionary& dict);

  /// Canonical representative of `id` (identity for terms that are in no
  /// clique).
  TermId Canon(TermId id) const;

  /// True if `id` is its own representative.
  bool IsCanonical(TermId id) const { return Canon(id) == id; }

  /// All members of `id`'s clique, sorted by term rendering; `{id}` if the
  /// term participates in no equivalence.
  std::vector<TermId> Clique(TermId id) const;

  /// Number of non-trivial cliques (size ≥ 2).
  size_t CliqueCount() const { return cliques_.size(); }

  /// Size of the largest clique (1 if there are none).
  size_t LargestClique() const;

  /// Rewrites every term of `graph` to its canonical representative.
  Graph CanonicalizeGraph(const Graph& graph) const;

  /// Rewrites the constant terms of a query / mapping to canonical form.
  GraphPatternQuery CanonicalizeQuery(const GraphPatternQuery& q) const;
  GraphMappingAssertion CanonicalizeMapping(
      const GraphMappingAssertion& gma) const;

  /// Expands canonical answer tuples to all combinations of clique
  /// members per position — reconstructing the redundant answer set the
  /// full chase would produce (Listing 1 "with redundancy").
  std::vector<Tuple> ExpandTuples(const std::vector<Tuple>& tuples) const;

 private:
  std::unordered_map<TermId, TermId> canon_;
  // canonical representative -> sorted members (only cliques of size ≥ 2)
  std::unordered_map<TermId, std::vector<TermId>> cliques_;
};

}  // namespace rps

#endif  // RPS_PEER_EQUIVALENCE_H_
