#include "peer/schema.h"

namespace rps {

PeerSchema PeerSchema::FromGraph(std::string name, const Graph& graph) {
  PeerSchema schema(std::move(name));
  const Dictionary& dict = *graph.dict();
  for (TermId id : graph.TermsInUse()) {
    schema.Add(id, dict);
  }
  return schema;
}

}  // namespace rps
