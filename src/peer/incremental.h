#ifndef RPS_PEER_INCREMENTAL_H_
#define RPS_PEER_INCREMENTAL_H_

#include <memory>
#include <string>
#include <vector>

#include "chase/rps_chase.h"
#include "peer/certain_answers.h"
#include "query/answer_cache.h"

namespace rps {

/// An incrementally maintained universal solution — §5 item 1 of the
/// paper: "mappings may be subject to change and we might need to compute
/// the information inferred from the TGDs dynamically".
///
/// The restricted chase is monotone and idempotent on a closed instance:
/// once J is a universal solution, inserting new stored triples (or
/// registering new mappings) and re-running the chase fires only the
/// triggers the new information enables — everything else is already
/// satisfied. This class owns a chased J and exposes update operations
/// that propagate deltas instead of rebuilding from scratch.
///
/// The wrapped system is mutated in place (stored triples are appended to
/// the peer graphs; mappings to the mapping lists) so that J stays the
/// universal solution *of the system*.
class IncrementalUniversalSolution {
 public:
  /// Does not take ownership; `system` must outlive this object.
  explicit IncrementalUniversalSolution(
      RpsSystem* system, RpsChaseOptions options = RpsChaseOptions());

  /// Runs the initial full chase. Must be called once before updates.
  Result<RpsChaseStats> Initialize();

  /// Inserts a stored triple into `peer_name`'s graph and propagates its
  /// consequences into J. Returns the statistics of the delta chase.
  Result<RpsChaseStats> AddTriple(const std::string& peer_name,
                                  const Triple& triple);

  /// Batch insert: appends every (fresh) triple of `triples` to
  /// `peer_name`'s graph and closes J under the whole batch with ONE
  /// delta chase, instead of one chase round-trip per triple — the
  /// semi-naive rounds then share their join work across the batch.
  /// Equivalent to calling AddTriple per element (J is confluent), at a
  /// fraction of the cost under churn.
  Result<RpsChaseStats> AddTriples(const std::string& peer_name,
                                   const std::vector<Triple>& triples);

  /// Registers a new graph mapping assertion and closes J under it.
  Result<RpsChaseStats> AddGraphMapping(GraphMappingAssertion assertion);

  /// Registers a new equivalence mapping and closes J under it.
  Result<RpsChaseStats> AddEquivalence(TermId left, TermId right);

  /// The maintained universal solution.
  const Graph& universal() const { return universal_; }

  /// Certain answers over the maintained J (no re-chase). With the
  /// answer cache enabled, repeated queries whose footprint no update
  /// touched are served from the cache — byte-identical to a fresh
  /// evaluation, including the SortTuples order.
  std::vector<Tuple> Answer(const GraphPatternQuery& query) const;

  /// Attaches an epoch-keyed certain-answer cache (answer_cache.h) over
  /// J to Answer(). Updates invalidate by footprint: AddTriple(s) feeds
  /// the triples appended to J (stored + chase-derived) to the cache;
  /// mapping changes do the same after their Reclose, which is sound
  /// because J only ever grows. Call any time after construction;
  /// options.enabled=false detaches.
  void EnableAnswerCache(const AnswerCacheOptions& options);

  /// The attached cache's statistics; zero-valued when detached.
  AnswerCacheStats CacheStats() const {
    return cache_ ? cache_->Stats() : AnswerCacheStats{};
  }

  /// Cumulative number of delta-chase runs (for experiment reporting).
  size_t update_count() const { return update_count_; }

 private:
  Result<RpsChaseStats> Reclose();

  /// Feeds the triples J gained since `old_epoch` (stored inserts and
  /// chase derivations alike) to the attached cache.
  void SyncCacheFrom(size_t old_epoch);

  RpsSystem* system_;
  RpsChaseOptions options_;
  Graph universal_;
  std::unique_ptr<AnswerCache> cache_;
  bool initialized_ = false;
  size_t update_count_ = 0;
};

}  // namespace rps

#endif  // RPS_PEER_INCREMENTAL_H_
