#ifndef RPS_PEER_INCREMENTAL_H_
#define RPS_PEER_INCREMENTAL_H_

#include <string>

#include "chase/rps_chase.h"
#include "peer/certain_answers.h"

namespace rps {

/// An incrementally maintained universal solution — §5 item 1 of the
/// paper: "mappings may be subject to change and we might need to compute
/// the information inferred from the TGDs dynamically".
///
/// The restricted chase is monotone and idempotent on a closed instance:
/// once J is a universal solution, inserting new stored triples (or
/// registering new mappings) and re-running the chase fires only the
/// triggers the new information enables — everything else is already
/// satisfied. This class owns a chased J and exposes update operations
/// that propagate deltas instead of rebuilding from scratch.
///
/// The wrapped system is mutated in place (stored triples are appended to
/// the peer graphs; mappings to the mapping lists) so that J stays the
/// universal solution *of the system*.
class IncrementalUniversalSolution {
 public:
  /// Does not take ownership; `system` must outlive this object.
  explicit IncrementalUniversalSolution(
      RpsSystem* system, RpsChaseOptions options = RpsChaseOptions());

  /// Runs the initial full chase. Must be called once before updates.
  Result<RpsChaseStats> Initialize();

  /// Inserts a stored triple into `peer_name`'s graph and propagates its
  /// consequences into J. Returns the statistics of the delta chase.
  Result<RpsChaseStats> AddTriple(const std::string& peer_name,
                                  const Triple& triple);

  /// Registers a new graph mapping assertion and closes J under it.
  Result<RpsChaseStats> AddGraphMapping(GraphMappingAssertion assertion);

  /// Registers a new equivalence mapping and closes J under it.
  Result<RpsChaseStats> AddEquivalence(TermId left, TermId right);

  /// The maintained universal solution.
  const Graph& universal() const { return universal_; }

  /// Certain answers over the maintained J (no re-chase).
  std::vector<Tuple> Answer(const GraphPatternQuery& query) const;

  /// Cumulative number of delta-chase runs (for experiment reporting).
  size_t update_count() const { return update_count_; }

 private:
  Result<RpsChaseStats> Reclose();

  RpsSystem* system_;
  RpsChaseOptions options_;
  Graph universal_;
  bool initialized_ = false;
  size_t update_count_ = 0;
};

}  // namespace rps

#endif  // RPS_PEER_INCREMENTAL_H_
