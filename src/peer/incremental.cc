#include "peer/incremental.h"

namespace rps {

IncrementalUniversalSolution::IncrementalUniversalSolution(
    RpsSystem* system, RpsChaseOptions options)
    : system_(system), options_(options), universal_(system->dict()) {}

Result<RpsChaseStats> IncrementalUniversalSolution::Initialize() {
  if (initialized_) {
    return Status::FailedPrecondition("already initialized");
  }
  RPS_ASSIGN_OR_RETURN(RpsChaseStats stats,
                       BuildUniversalSolution(*system_, &universal_,
                                              options_));
  initialized_ = true;
  return stats;
}

Result<RpsChaseStats> IncrementalUniversalSolution::Reclose() {
  size_t before = universal_.SnapshotEpoch();
  RPS_ASSIGN_OR_RETURN(
      RpsChaseStats stats,
      ChaseGraph(&universal_, system_->graph_mappings(),
                 system_->equivalences(), options_));
  ++update_count_;
  SyncCacheFrom(before);
  return stats;
}

void IncrementalUniversalSolution::SyncCacheFrom(size_t old_epoch) {
  if (cache_ == nullptr) return;
  size_t now = universal_.SnapshotEpoch();
  std::vector<Triple> delta;
  delta.reserve(now - old_epoch);
  for (size_t pos = old_epoch; pos < now; ++pos) {
    delta.push_back(universal_.TripleAt(pos));
  }
  cache_->ApplyDelta(delta, now);
}

void IncrementalUniversalSolution::EnableAnswerCache(
    const AnswerCacheOptions& options) {
  if (!options.enabled) {
    cache_.reset();
    return;
  }
  cache_ = std::make_unique<AnswerCache>(options, "incremental",
                                         universal_.SnapshotEpoch());
}

Result<RpsChaseStats> IncrementalUniversalSolution::AddTriple(
    const std::string& peer_name, const Triple& triple) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  Graph* peer = system_->dataset().Find(peer_name);
  if (peer == nullptr) {
    return Status::NotFound("unknown peer: " + peer_name);
  }
  RPS_ASSIGN_OR_RETURN(bool fresh, peer->Insert(triple));
  if (!fresh) {
    RpsChaseStats noop;
    noop.completed = true;
    return noop;  // already stored; J unchanged
  }
  size_t before = universal_.SnapshotEpoch();
  bool new_in_j = universal_.InsertUnchecked(triple);
  if (!new_in_j) {
    // J had already derived this triple; it is closed under it.
    RpsChaseStats noop;
    noop.completed = true;
    ++update_count_;
    return noop;
  }
  // Semi-naive propagation: only consequences of the new triple.
  RPS_ASSIGN_OR_RETURN(
      RpsChaseStats stats,
      ChaseGraphDelta(&universal_, {triple}, system_->graph_mappings(),
                      system_->equivalences(), options_));
  ++update_count_;
  SyncCacheFrom(before);
  return stats;
}

Result<RpsChaseStats> IncrementalUniversalSolution::AddTriples(
    const std::string& peer_name, const std::vector<Triple>& triples) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  Graph* peer = system_->dataset().Find(peer_name);
  if (peer == nullptr) {
    return Status::NotFound("unknown peer: " + peer_name);
  }
  size_t before = universal_.SnapshotEpoch();
  // Stage the whole batch, then close under it with one delta chase: the
  // semi-naive rounds join all batch triples at once instead of paying a
  // fixpoint round-trip per triple.
  std::vector<Triple> delta;
  delta.reserve(triples.size());
  for (const Triple& triple : triples) {
    RPS_ASSIGN_OR_RETURN(bool fresh, peer->Insert(triple));
    if (!fresh) continue;  // already stored; J is closed under it
    if (universal_.InsertUnchecked(triple)) delta.push_back(triple);
  }
  if (delta.empty()) {
    RpsChaseStats noop;
    noop.completed = true;
    ++update_count_;
    return noop;
  }
  RPS_ASSIGN_OR_RETURN(
      RpsChaseStats stats,
      ChaseGraphDelta(&universal_, std::move(delta),
                      system_->graph_mappings(), system_->equivalences(),
                      options_));
  ++update_count_;
  SyncCacheFrom(before);
  return stats;
}

Result<RpsChaseStats> IncrementalUniversalSolution::AddGraphMapping(
    GraphMappingAssertion assertion) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  RPS_RETURN_IF_ERROR(system_->AddGraphMapping(std::move(assertion)));
  return Reclose();
}

Result<RpsChaseStats> IncrementalUniversalSolution::AddEquivalence(
    TermId left, TermId right) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  RPS_RETURN_IF_ERROR(system_->AddEquivalence(left, right));
  return Reclose();
}

std::vector<Tuple> IncrementalUniversalSolution::Answer(
    const GraphPatternQuery& query) const {
  std::string key;
  size_t epoch = universal_.SnapshotEpoch();
  if (cache_ != nullptr) {
    key = CanonicalQueryKey(query, QuerySemantics::kDropBlanks);
    if (AnswerCache::Answers hit = cache_->Lookup(key, epoch)) {
      return *hit;
    }
  }
  std::vector<Tuple> answers =
      EvalQuery(universal_, query, QuerySemantics::kDropBlanks,
                options_.eval);
  SortTuples(&answers);
  if (cache_ != nullptr) {
    cache_->Insert(std::move(key), epoch, QueryFootprint(query),
                   std::make_shared<const std::vector<Tuple>>(answers));
  }
  return answers;
}

}  // namespace rps
