#include "peer/incremental.h"

namespace rps {

IncrementalUniversalSolution::IncrementalUniversalSolution(
    RpsSystem* system, RpsChaseOptions options)
    : system_(system), options_(options), universal_(system->dict()) {}

Result<RpsChaseStats> IncrementalUniversalSolution::Initialize() {
  if (initialized_) {
    return Status::FailedPrecondition("already initialized");
  }
  RPS_ASSIGN_OR_RETURN(RpsChaseStats stats,
                       BuildUniversalSolution(*system_, &universal_,
                                              options_));
  initialized_ = true;
  return stats;
}

Result<RpsChaseStats> IncrementalUniversalSolution::Reclose() {
  RPS_ASSIGN_OR_RETURN(
      RpsChaseStats stats,
      ChaseGraph(&universal_, system_->graph_mappings(),
                 system_->equivalences(), options_));
  ++update_count_;
  return stats;
}

Result<RpsChaseStats> IncrementalUniversalSolution::AddTriple(
    const std::string& peer_name, const Triple& triple) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  Graph* peer = system_->dataset().Find(peer_name);
  if (peer == nullptr) {
    return Status::NotFound("unknown peer: " + peer_name);
  }
  RPS_ASSIGN_OR_RETURN(bool fresh, peer->Insert(triple));
  if (!fresh) {
    RpsChaseStats noop;
    noop.completed = true;
    return noop;  // already stored; J unchanged
  }
  bool new_in_j = universal_.InsertUnchecked(triple);
  if (!new_in_j) {
    // J had already derived this triple; it is closed under it.
    RpsChaseStats noop;
    noop.completed = true;
    ++update_count_;
    return noop;
  }
  // Semi-naive propagation: only consequences of the new triple.
  RPS_ASSIGN_OR_RETURN(
      RpsChaseStats stats,
      ChaseGraphDelta(&universal_, {triple}, system_->graph_mappings(),
                      system_->equivalences(), options_));
  ++update_count_;
  return stats;
}

Result<RpsChaseStats> IncrementalUniversalSolution::AddGraphMapping(
    GraphMappingAssertion assertion) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  RPS_RETURN_IF_ERROR(system_->AddGraphMapping(std::move(assertion)));
  return Reclose();
}

Result<RpsChaseStats> IncrementalUniversalSolution::AddEquivalence(
    TermId left, TermId right) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Initialize() first");
  }
  RPS_RETURN_IF_ERROR(system_->AddEquivalence(left, right));
  return Reclose();
}

std::vector<Tuple> IncrementalUniversalSolution::Answer(
    const GraphPatternQuery& query) const {
  std::vector<Tuple> answers =
      EvalQuery(universal_, query, QuerySemantics::kDropBlanks,
                options_.eval);
  SortTuples(&answers);
  return answers;
}

}  // namespace rps
