#include "peer/provenance.h"

#include <unordered_set>

namespace rps {

namespace {

std::string TripleText(const Triple& t, const Dictionary& dict) {
  return dict.ToString(t.s) + " " + dict.ToString(t.p) + " " +
         dict.ToString(t.o);
}

void RenderRec(const Triple& t, const ProvenanceMap& provenance,
               const Dictionary& dict, int depth,
               std::unordered_set<Triple, TripleHash>* seen,
               std::string* out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  *out += indent + TripleText(t, dict);

  if (!seen->insert(t).second) {
    *out += "   (seen above)\n";
    return;
  }
  auto it = provenance.find(t);
  if (it == provenance.end()) {
    *out += "   [no derivation recorded]\n";
    return;
  }
  const TripleDerivation& d = it->second;
  switch (d.kind) {
    case TripleDerivation::Kind::kStored:
      *out += "   [stored by " + d.source + "]\n";
      return;
    case TripleDerivation::Kind::kGma:
      *out += "   [mapping " + d.source + "]\n";
      break;
    case TripleDerivation::Kind::kEquivalence:
      *out += "   [equivalence " + d.source + "]\n";
      break;
  }
  for (const Triple& premise : d.premises) {
    RenderRec(premise, provenance, dict, depth + 1, seen, out);
  }
}

}  // namespace

std::string RenderDerivation(const Triple& triple,
                             const ProvenanceMap& provenance,
                             const Dictionary& dict) {
  std::string out;
  std::unordered_set<Triple, TripleHash> seen;
  RenderRec(triple, provenance, dict, 0, &seen, &out);
  return out;
}

Result<Explanation> ExplainAnswer(const RpsSystem& system,
                                  const GraphPatternQuery& query,
                                  const Tuple& tuple,
                                  const RpsChaseOptions& chase_options) {
  RPS_RETURN_IF_ERROR(query.Validate());
  if (tuple.size() != query.arity()) {
    return Status::InvalidArgument("tuple arity does not match the query");
  }

  ProvenanceMap provenance;
  RpsChaseOptions options = chase_options;
  options.provenance = &provenance;

  Graph universal(system.dict());
  RPS_RETURN_IF_ERROR(
      BuildUniversalSolution(system, &universal, options).status());

  // Locate a witness: bind the head to the tuple and match the body
  // (existential variables may bind blanks).
  GraphPatternQuery bound = BindHead(query, tuple);
  BindingSet witnesses =
      EvalGraphPattern(universal, bound.body, options.eval);
  if (witnesses.empty()) {
    return Status::NotFound(
        "the tuple is not a certain answer of the query");
  }
  const Binding& witness = witnesses.front();

  Explanation explanation;
  explanation.tuple = tuple;
  const Dictionary& dict = *system.dict();

  // Instantiate the bound body under the witness.
  for (const TriplePattern& tp : bound.body.patterns()) {
    auto resolve = [&](const PatternTerm& pt) -> TermId {
      if (pt.is_const()) return pt.term();
      return witness.Get(pt.var()).value_or(kInvalidTermId);
    };
    explanation.witness.push_back(
        Triple{resolve(tp.s), resolve(tp.p), resolve(tp.o)});
  }

  explanation.text = "answer (";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) explanation.text += ", ";
    explanation.text += dict.ToString(tuple[i]);
  }
  explanation.text += ") is certain because:\n";
  for (const Triple& t : explanation.witness) {
    explanation.text += RenderDerivation(t, provenance, dict);
  }
  return explanation;
}

}  // namespace rps
