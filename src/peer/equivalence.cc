#include "peer/equivalence.h"

#include <algorithm>

#include "util/union_find.h"

namespace rps {

EquivalenceClosure::EquivalenceClosure(
    const std::vector<EquivalenceMapping>& mappings, const Dictionary& dict) {
  UnionFind uf;
  for (const EquivalenceMapping& eq : mappings) {
    uf.Union(eq.left, eq.right);
  }

  // Group members by union-find root.
  std::unordered_map<TermId, std::vector<TermId>> groups;
  for (const EquivalenceMapping& eq : mappings) {
    groups[uf.Find(eq.left)];  // ensure the group exists
  }
  // Collect every term mentioned in some mapping into its group.
  std::unordered_map<TermId, bool> seen;
  for (const EquivalenceMapping& eq : mappings) {
    for (TermId id : {eq.left, eq.right}) {
      if (seen[id]) continue;
      seen[id] = true;
      groups[uf.Find(id)].push_back(id);
    }
  }

  for (auto& [root, members] : groups) {
    if (members.size() < 2) continue;
    // Canonical representative: lexicographically smallest term.
    std::sort(members.begin(), members.end(), [&](TermId a, TermId b) {
      return dict.term(a) < dict.term(b);
    });
    TermId canon = members.front();
    for (TermId member : members) {
      canon_[member] = canon;
    }
    cliques_[canon] = members;
  }
}

TermId EquivalenceClosure::Canon(TermId id) const {
  auto it = canon_.find(id);
  if (it == canon_.end()) return id;
  return it->second;
}

std::vector<TermId> EquivalenceClosure::Clique(TermId id) const {
  auto it = cliques_.find(Canon(id));
  if (it == cliques_.end()) return {id};
  return it->second;
}

size_t EquivalenceClosure::LargestClique() const {
  size_t largest = 1;
  for (const auto& [canon, members] : cliques_) {
    largest = std::max(largest, members.size());
  }
  return largest;
}

Graph EquivalenceClosure::CanonicalizeGraph(const Graph& graph) const {
  Graph out(graph.dict());
  for (const Triple& t : graph.triples()) {
    out.InsertUnchecked(Triple{Canon(t.s), Canon(t.p), Canon(t.o)});
  }
  return out;
}

GraphPatternQuery EquivalenceClosure::CanonicalizeQuery(
    const GraphPatternQuery& q) const {
  auto canon_term = [&](const PatternTerm& pt) {
    if (pt.is_var()) return pt;
    return PatternTerm::Const(Canon(pt.term()));
  };
  GraphPatternQuery out;
  out.head = q.head;
  for (const TriplePattern& tp : q.body.patterns()) {
    out.body.Add(TriplePattern{canon_term(tp.s), canon_term(tp.p),
                               canon_term(tp.o)});
  }
  return out;
}

GraphMappingAssertion EquivalenceClosure::CanonicalizeMapping(
    const GraphMappingAssertion& gma) const {
  GraphMappingAssertion out;
  out.label = gma.label;
  out.from = CanonicalizeQuery(gma.from);
  out.to = CanonicalizeQuery(gma.to);
  return out;
}

std::vector<Tuple> EquivalenceClosure::ExpandTuples(
    const std::vector<Tuple>& tuples) const {
  std::vector<Tuple> out;
  for (const Tuple& tuple : tuples) {
    // Cartesian product of the cliques of each position.
    std::vector<std::vector<TermId>> options;
    options.reserve(tuple.size());
    size_t combinations = 1;
    for (TermId id : tuple) {
      options.push_back(Clique(id));
      combinations *= options.back().size();
    }
    Tuple current(tuple.size());
    for (size_t k = 0; k < combinations; ++k) {
      size_t rest = k;
      for (size_t i = 0; i < options.size(); ++i) {
        current[i] = options[i][rest % options[i].size()];
        rest /= options[i].size();
      }
      out.push_back(current);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace rps
