#include "peer/mapping.h"

namespace rps {

Status GraphMappingAssertion::Validate() const {
  if (from.arity() != to.arity()) {
    return Status::InvalidArgument(
        "graph mapping assertion '" + label +
        "': Q and Q' must have the same arity (got " +
        std::to_string(from.arity()) + " and " + std::to_string(to.arity()) +
        ")");
  }
  RPS_RETURN_IF_ERROR(from.Validate());
  RPS_RETURN_IF_ERROR(to.Validate());
  return Status::OK();
}

}  // namespace rps
