#ifndef RPS_PEER_PROVENANCE_H_
#define RPS_PEER_PROVENANCE_H_

#include <string>
#include <vector>

#include "chase/rps_chase.h"
#include "peer/rps_system.h"
#include "query/eval.h"

namespace rps {

/// An explanation of why a tuple is a certain answer: the witness body
/// instantiation in the universal solution, plus each witness triple's
/// derivation chain down to stored facts.
struct Explanation {
  Tuple tuple;
  /// The instantiated query body (one witness homomorphism).
  std::vector<Triple> witness;
  /// Human-readable derivation tree.
  std::string text;
};

/// Explains why `tuple` belongs to ans(q, P, D): materializes the
/// universal solution with provenance recording, locates a witness
/// binding whose head projection equals the tuple, and unfolds every
/// witness triple's derivation back to the peers' stored triples.
///
/// Returns NotFound if the tuple is not a certain answer.
Result<Explanation> ExplainAnswer(const RpsSystem& system,
                                  const GraphPatternQuery& query,
                                  const Tuple& tuple,
                                  const RpsChaseOptions& chase_options =
                                      RpsChaseOptions());

/// Renders one triple's derivation chain from a provenance map (shared by
/// ExplainAnswer and tooling that keeps its own chased graph). Cycles
/// (e.g. mutual equivalence copies) are cut with a "(seen above)" marker.
std::string RenderDerivation(const Triple& triple,
                             const ProvenanceMap& provenance,
                             const Dictionary& dict);

}  // namespace rps

#endif  // RPS_PEER_PROVENANCE_H_
