#ifndef RPS_PEER_MAPPING_H_
#define RPS_PEER_MAPPING_H_

#include <string>

#include "query/query.h"
#include "rdf/dictionary.h"
#include "util/result.h"

namespace rps {

/// A graph mapping assertion Q ⇝ Q' (§2.2): two graph pattern queries of
/// equal arity over the schemas of two (not necessarily distinct) peers.
/// Semantics (Definition 2, item 2): in every solution I, Q_I ⊆ Q'_I.
struct GraphMappingAssertion {
  /// Diagnostic name ("films:Q2->Q1").
  std::string label;
  /// The source query Q.
  GraphPatternQuery from;
  /// The target query Q'.
  GraphPatternQuery to;

  /// Checks equal arity and head-variable validity on both sides.
  Status Validate() const;
};

/// An equivalence mapping c ≡ₑ c' (§2.2) between two schema constants.
/// Semantics (Definition 2, item 3): in every solution, c and c' have
/// identical subject / predicate / object neighbourhoods under the
/// blank-node-preserving semantics Q*.
struct EquivalenceMapping {
  TermId left = kInvalidTermId;
  TermId right = kInvalidTermId;

  friend bool operator==(const EquivalenceMapping& a,
                         const EquivalenceMapping& b) {
    return a.left == b.left && a.right == b.right;
  }
};

}  // namespace rps

#endif  // RPS_PEER_MAPPING_H_
