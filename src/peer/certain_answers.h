#ifndef RPS_PEER_CERTAIN_ANSWERS_H_
#define RPS_PEER_CERTAIN_ANSWERS_H_

#include <vector>

#include "chase/rps_chase.h"
#include "peer/equivalence.h"
#include "peer/rps_system.h"
#include "query/algebra.h"
#include "query/eval.h"

namespace rps {

/// Whether a result set is the full certain-answer set or a sound
/// subset of it. Every engine preserves the paper's soundness guarantee
/// (a returned tuple is always a certain answer — Algorithm 1's
/// blank-dropping is unaffected); this marker makes *incompleteness*
/// explicit instead of silent when a budget was exhausted or, in the
/// federated executor, a peer stayed unreachable after retries.
enum class Completeness {
  /// The result is the complete certain-answer set.
  kComplete,
  /// The result is a sound subset: every returned tuple is a certain
  /// answer, but some certain answers may be missing (degraded peers,
  /// exhausted rewrite budget).
  kPartialSound,
};

/// Short lowercase rendering ("complete" / "partial-sound").
const char* ToString(Completeness completeness);

/// How the certain-answer engine handles equivalence mappings.
enum class EquivalenceMode {
  /// Naive Algorithm 1: the six copying rules per mapping are chased into
  /// the universal solution. Faithful to the paper; the solution grows by
  /// a factor of the clique size per position.
  kChase,
  /// Optimized: terms are canonicalized by their equivalence clique before
  /// the chase (one representative per clique), only the graph mapping
  /// assertions are chased, and answers are expanded back over the
  /// cliques. Produces the same certain answers (ablation E10).
  kUnionFind,
};

/// Options for CertainAnswers.
struct CertainAnswerOptions {
  EquivalenceMode equivalence_mode = EquivalenceMode::kChase;
  /// In kUnionFind mode: expand each answer position over its clique
  /// (matching the redundant answer set of the naive chase, e.g.
  /// Listing 1 "with redundancy"). When false, answers use canonical
  /// representatives only (Listing 1 "without redundancy").
  bool expand_equivalent_answers = true;
  /// Chase budgets and knobs. The parallel engine is enabled through
  /// `chase.threads` (round fan-out) and `chase.eval.threads`
  /// (seed-partitioned joins); both default to serial. Answers are
  /// identical for every thread count.
  RpsChaseOptions chase;
};

/// Output of CertainAnswers.
struct CertainAnswerResult {
  /// Certain answers, sorted lexicographically by TermId for determinism.
  std::vector<Tuple> answers;
  /// Statistics of the chase that built the universal solution.
  RpsChaseStats chase_stats;
  /// Triples in the (possibly canonicalized) universal solution.
  size_t universal_solution_size = 0;
  /// Always kComplete for the chase engines (the chase is local and
  /// lossless); carried so every answering pipeline reports the same
  /// marker shape as the federated executor.
  Completeness completeness = Completeness::kComplete;
};

/// Computes ans(q, P, D) (Definition 3) by Algorithm 1: materializes a
/// universal solution and evaluates `q` over it under the blank-dropping
/// semantics. PTIME in the size of the stored database (Theorem 1).
Result<CertainAnswerResult> CertainAnswers(
    const RpsSystem& system, const GraphPatternQuery& query,
    const CertainAnswerOptions& options = CertainAnswerOptions());

/// Renders answers as tab-separated lines using the dictionary.
std::string FormatAnswers(const std::vector<Tuple>& answers,
                          const Dictionary& dict);

/// Answers of an extended (OPTIONAL/FILTER) query over the universal
/// solution.
struct ExtendedAnswerResult {
  std::vector<PartialTuple> answers;
  RpsChaseStats chase_stats;
  size_t universal_solution_size = 0;
};

/// Evaluates an extended query over the materialized universal solution
/// (naive Algorithm 1 chase). The conjunctive core yields certain
/// answers; OPTIONAL parts and !BOUND filters are evaluated under the
/// universal solution's completion (non-monotone constructs fall outside
/// the paper's certain-answer development — §5 item 2 future work).
Result<ExtendedAnswerResult> ExtendedCertainAnswers(
    const RpsSystem& system, const ExtendedQuery& query,
    const CertainAnswerOptions& options = CertainAnswerOptions());

}  // namespace rps

#endif  // RPS_PEER_CERTAIN_ANSWERS_H_
