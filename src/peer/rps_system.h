#ifndef RPS_PEER_RPS_SYSTEM_H_
#define RPS_PEER_RPS_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "peer/mapping.h"
#include "peer/schema.h"
#include "rdf/dataset.h"
#include "tgd/tgd.h"
#include "util/result.h"

namespace rps {

/// An RDF Peer System P = (S, G, E) (§2.2) together with its stored
/// database D (§2.3):
///  * S — peer schemas, derived from the peers' stored graphs (plus any
///    explicitly registered IRIs);
///  * G — graph mapping assertions Q ⇝ Q';
///  * E — equivalence mappings c ≡ₑ c';
///  * one named graph per peer holding its stored triples.
///
/// The system owns the shared Dictionary and VarPool: every graph,
/// pattern and mapping of the system uses these, so TermIds/VarIds are
/// comparable across peers.
class RpsSystem {
 public:
  RpsSystem();

  RpsSystem(const RpsSystem&) = delete;
  RpsSystem& operator=(const RpsSystem&) = delete;
  RpsSystem(RpsSystem&&) = default;

  /// The shared dictionary / variable pool. Returned non-const even from
  /// a const system: interning terms and minting fresh variables are
  /// shared-state services (the chase and the rewriter both need them),
  /// not logical mutations of the peer system.
  Dictionary* dict() const { return dict_.get(); }
  VarPool* vars() const { return vars_.get(); }

  /// Registers a peer (idempotent) and returns its stored graph.
  Graph& AddPeer(const std::string& name);

  /// Peer stored graphs, by name.
  const Dataset& dataset() const { return *dataset_; }
  Dataset& dataset() { return *dataset_; }

  /// Number of registered peers.
  size_t PeerCount() const { return dataset_->graphs().size(); }

  /// The schema of a peer: the IRIs in use in its stored graph. Recomputed
  /// on call (stored graphs are mutable).
  PeerSchema SchemaOf(const std::string& peer_name) const;

  /// Adds a graph mapping assertion after validation.
  Status AddGraphMapping(GraphMappingAssertion assertion);

  /// Adds an equivalence mapping c ≡ₑ c'. Both must be IRIs.
  Status AddEquivalence(TermId left, TermId right);

  /// Scans every peer graph for owl:sameAs triples and registers an
  /// equivalence mapping per triple (the construction of Example 2).
  /// Returns the number of equivalences added.
  size_t AddEquivalencesFromSameAs();

  const std::vector<GraphMappingAssertion>& graph_mappings() const {
    return graph_mappings_;
  }
  const std::vector<EquivalenceMapping>& equivalences() const {
    return equivalences_;
  }

  /// Monotone version of the mapping set (G, E): bumped by every
  /// successful AddGraphMapping / AddEquivalence (including the
  /// equivalences registered by AddEquivalencesFromSameAs). Rewritings
  /// are pure functions of (query, mapping set, options), so caches key
  /// memoized rewritings by this version — a mapping change shifts every
  /// key instead of requiring explicit invalidation.
  uint64_t mapping_version() const { return mapping_version_; }

  /// The stored database D: the union of all peer graphs.
  Graph StoredDatabase() const { return dataset_->Merged(); }

  /// §2.2 conformance diagnostics: each side of a graph mapping assertion
  /// should be "expressed over the schema of a peer" — its constant IRIs
  /// drawn from one peer's IRI set — and equivalence mappings should
  /// relate IRIs that some peer actually uses. Violations are reported as
  /// human-readable warnings (not errors: peers may grow their schemas
  /// after mappings are declared). Empty result = fully conformant.
  std::vector<std::string> SchemaDiagnostics() const;

  /// The data-exchange encoding of §3. Interns `tt`, `rt`, `ts`, `rs` into
  /// `preds` (outputs in the pointer parameters, each optional):
  ///  * source-to-target: ts(x,y,z) → tt(x,y,z) and rs(x) → rt(x);
  ///  * target: one TGD per graph mapping assertion
  ///      Qbody(x,y) ∧ rt(x1) ∧ ... ∧ rt(xn) → ∃z Q'body(x,z)
  ///    and six tt-copying TGDs per equivalence mapping.
  void CompileToTgds(PredTable* preds, std::vector<Tgd>* source_to_target,
                     std::vector<Tgd>* target) const;

 private:
  std::unique_ptr<Dictionary> dict_;
  std::unique_ptr<VarPool> vars_;
  std::unique_ptr<Dataset> dataset_;
  std::vector<GraphMappingAssertion> graph_mappings_;
  std::vector<EquivalenceMapping> equivalences_;
  uint64_t mapping_version_ = 0;
};

class RelationalInstance;

/// Compiles graph mapping assertions into target TGDs (§3):
///   Qbody(x,y) ∧ rt(x1) ∧ ... ∧ rt(xn) → ∃z Q'body(x,z).
std::vector<Tgd> CompileGmaTgds(
    const std::vector<GraphMappingAssertion>& gmas, PredId tt, PredId rt,
    VarPool* vars);

/// Compiles equivalence mappings into the six tt-copying TGDs each (§3).
std::vector<Tgd> CompileEquivalenceTgds(
    const std::vector<EquivalenceMapping>& equivalences, PredId tt,
    VarPool* vars);

/// Loads the stored database D of `system` into `instance` over {ts, rs}:
/// one ts(s,p,o) fact per stored triple and one rs(x) fact per IRI or
/// literal occurring in D (blank nodes are *not* identified resources).
void EncodeStoredDatabase(const RpsSystem& system, PredId ts, PredId rs,
                          RelationalInstance* instance);

/// Converts a triple pattern into a `tt(s,p,o)` atom (helper shared by the
/// TGD encoding and the rewriting module).
Atom TriplePatternToAtom(const TriplePattern& tp, PredId tt);

/// Converts a `tt(s,p,o)` atom back into a triple pattern. The atom must
/// have exactly three arguments.
TriplePattern AtomToTriplePattern(const Atom& atom);

}  // namespace rps

#endif  // RPS_PEER_RPS_SYSTEM_H_
