#include "peer/certain_answers.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rps {

const char* ToString(Completeness completeness) {
  return completeness == Completeness::kComplete ? "complete"
                                                 : "partial-sound";
}

namespace {

void RecordUniversalSolutionSize(size_t triples) {
  obs::Registry& reg = obs::Registry::Global();
  reg.counter("answers.queries")->Increment();
  reg.histogram("answers.universal_solution_triples")
      ->Record(static_cast<double>(triples));
}

}  // namespace

Result<CertainAnswerResult> CertainAnswers(
    const RpsSystem& system, const GraphPatternQuery& query,
    const CertainAnswerOptions& options) {
  RPS_RETURN_IF_ERROR(query.Validate());
  CertainAnswerResult result;

  // The chase reuses the evaluator many times; the capture slot is
  // per-query-owned and internally locked (so this is no longer a race,
  // just noise), but the plan EXPLAIN wants is the *final*
  // query-over-universal-solution one — don't let chase-step plans churn
  // through the slot.
  RpsChaseOptions chase_run = options.chase;
  chase_run.eval.plan_capture = nullptr;

  if (options.equivalence_mode == EquivalenceMode::kChase) {
    obs::AutoSpan span("answer.chase");
    Graph universal(system.dict());
    RPS_ASSIGN_OR_RETURN(result.chase_stats,
                         BuildUniversalSolution(system, &universal,
                                                chase_run));
    result.universal_solution_size = universal.size();
    RecordUniversalSolutionSize(universal.size());
    obs::AutoSpan eval_span("eval.query_over_universal");
    result.answers =
        EvalQuery(universal, query, QuerySemantics::kDropBlanks,
                  options.chase.eval);
    SortTuples(&result.answers);
    return result;
  }
  obs::AutoSpan span("answer.unionfind");

  // kUnionFind: canonicalize data, mappings and query; chase the graph
  // mapping assertions only; expand answers over the cliques.
  EquivalenceClosure closure(system.equivalences(), *system.dict());

  Graph canonical(system.dict());
  Graph stored = system.StoredDatabase();
  canonical.Reserve(stored.size());
  for (const Triple& t : stored.triples()) {
    canonical.InsertUnchecked(Triple{closure.Canon(t.s), closure.Canon(t.p),
                                     closure.Canon(t.o)});
  }

  std::vector<GraphMappingAssertion> canonical_gmas;
  canonical_gmas.reserve(system.graph_mappings().size());
  for (const GraphMappingAssertion& gma : system.graph_mappings()) {
    canonical_gmas.push_back(closure.CanonicalizeMapping(gma));
  }

  RPS_ASSIGN_OR_RETURN(
      result.chase_stats,
      ChaseGraph(&canonical, canonical_gmas, /*equivalences=*/{},
                 chase_run));
  result.universal_solution_size = canonical.size();
  RecordUniversalSolutionSize(canonical.size());

  GraphPatternQuery canonical_query = closure.CanonicalizeQuery(query);
  std::vector<Tuple> canonical_answers =
      EvalQuery(canonical, canonical_query, QuerySemantics::kDropBlanks,
                options.chase.eval);

  if (options.expand_equivalent_answers) {
    result.answers = closure.ExpandTuples(canonical_answers);
  } else {
    result.answers = std::move(canonical_answers);
    SortTuples(&result.answers);
  }
  return result;
}


Result<ExtendedAnswerResult> ExtendedCertainAnswers(
    const RpsSystem& system, const ExtendedQuery& query,
    const CertainAnswerOptions& options) {
  ExtendedAnswerResult result;
  Graph universal(system.dict());
  RPS_ASSIGN_OR_RETURN(
      result.chase_stats,
      BuildUniversalSolution(system, &universal, options.chase));
  result.universal_solution_size = universal.size();
  result.answers = EvalExtendedQuery(universal, query,
                                     QuerySemantics::kDropBlanks,
                                     options.chase.eval);
  return result;
}

std::string FormatAnswers(const std::vector<Tuple>& answers,
                          const Dictionary& dict) {
  std::string out;
  for (const Tuple& tuple : answers) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) out += "\t";
      out += dict.ToString(tuple[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace rps
