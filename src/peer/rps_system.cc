#include "peer/rps_system.h"

#include <cassert>

#include "chase/relational_chase.h"

namespace rps {

RpsSystem::RpsSystem()
    : dict_(std::make_unique<Dictionary>()),
      vars_(std::make_unique<VarPool>()),
      dataset_(std::make_unique<Dataset>(dict_.get())) {}

Graph& RpsSystem::AddPeer(const std::string& name) {
  return dataset_->GetOrCreate(name);
}

PeerSchema RpsSystem::SchemaOf(const std::string& peer_name) const {
  const Graph* graph = dataset_->Find(peer_name);
  if (graph == nullptr) {
    return PeerSchema(peer_name);
  }
  return PeerSchema::FromGraph(peer_name, *graph);
}

Status RpsSystem::AddGraphMapping(GraphMappingAssertion assertion) {
  RPS_RETURN_IF_ERROR(assertion.Validate());
  graph_mappings_.push_back(std::move(assertion));
  ++mapping_version_;
  return Status::OK();
}

Status RpsSystem::AddEquivalence(TermId left, TermId right) {
  if (!dict_->IsIri(left) || !dict_->IsIri(right)) {
    return Status::InvalidArgument(
        "equivalence mappings relate schema constants (IRIs)");
  }
  if (left == right) return Status::OK();  // trivially satisfied
  equivalences_.push_back(EquivalenceMapping{left, right});
  ++mapping_version_;
  return Status::OK();
}

size_t RpsSystem::AddEquivalencesFromSameAs() {
  std::optional<TermId> same_as =
      dict_->Lookup(Term::Iri(std::string(kOwlSameAs)));
  if (!same_as.has_value()) return 0;
  size_t added = 0;
  for (const auto& [name, graph] : dataset_->graphs()) {
    for (const Triple& t : graph.MatchAll(std::nullopt, *same_as,
                                          std::nullopt)) {
      if (!dict_->IsIri(t.s) || !dict_->IsIri(t.o)) continue;
      if (AddEquivalence(t.s, t.o).ok() && t.s != t.o) ++added;
    }
  }
  return added;
}

std::vector<std::string> RpsSystem::SchemaDiagnostics() const {
  std::vector<std::string> out;

  // Collect schemas once.
  std::vector<PeerSchema> schemas;
  for (const auto& [name, graph] : dataset_->graphs()) {
    schemas.push_back(PeerSchema::FromGraph(name, graph));
  }

  // IRI constants of one query side.
  auto query_iris = [&](const GraphPatternQuery& q) {
    std::vector<TermId> iris;
    for (const TriplePattern& tp : q.body.patterns()) {
      for (const PatternTerm* pt : {&tp.s, &tp.p, &tp.o}) {
        if (pt->is_const() && dict_->IsIri(pt->term())) {
          iris.push_back(pt->term());
        }
      }
    }
    return iris;
  };
  // True if some single peer schema contains every IRI of the list.
  auto covered_by_one_peer = [&](const std::vector<TermId>& iris) {
    if (iris.empty()) return true;
    for (const PeerSchema& schema : schemas) {
      bool all = true;
      for (TermId iri : iris) {
        if (!schema.Contains(iri)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  };

  for (const GraphMappingAssertion& gma : graph_mappings_) {
    if (!covered_by_one_peer(query_iris(gma.from))) {
      out.push_back("mapping '" + gma.label +
                    "': Q uses IRIs not covered by any single peer schema");
    }
    if (!covered_by_one_peer(query_iris(gma.to))) {
      out.push_back("mapping '" + gma.label +
                    "': Q' uses IRIs not covered by any single peer schema");
    }
  }
  for (const EquivalenceMapping& eq : equivalences_) {
    for (TermId side : {eq.left, eq.right}) {
      bool known = false;
      for (const PeerSchema& schema : schemas) {
        if (schema.Contains(side)) {
          known = true;
          break;
        }
      }
      if (!known) {
        out.push_back("equivalence mapping relates unknown IRI " +
                      dict_->ToString(side));
      }
    }
  }
  return out;
}

Atom TriplePatternToAtom(const TriplePattern& tp, PredId tt) {
  Atom atom;
  atom.pred = tt;
  auto convert = [](const PatternTerm& pt) {
    return pt.is_var() ? AtomArg::Var(pt.var()) : AtomArg::Const(pt.term());
  };
  atom.args = {convert(tp.s), convert(tp.p), convert(tp.o)};
  return atom;
}

TriplePattern AtomToTriplePattern(const Atom& atom) {
  assert(atom.args.size() == 3);
  auto convert = [](const AtomArg& arg) {
    return arg.is_var() ? PatternTerm::Var(arg.var())
                        : PatternTerm::Const(arg.term());
  };
  return TriplePattern{convert(atom.args[0]), convert(atom.args[1]),
                       convert(atom.args[2])};
}

void RpsSystem::CompileToTgds(PredTable* preds,
                              std::vector<Tgd>* source_to_target,
                              std::vector<Tgd>* target) const {
  PredId tt = preds->Intern("tt", 3);
  PredId rt = preds->Intern("rt", 1);
  PredId ts = preds->Intern("ts", 3);
  PredId rs = preds->Intern("rs", 1);

  if (source_to_target != nullptr) {
    // ∀x∀y∀z ts(x,y,z) → tt(x,y,z)
    VarId x = vars_->Fresh("st_x");
    VarId y = vars_->Fresh("st_y");
    VarId z = vars_->Fresh("st_z");
    Tgd copy_triples;
    copy_triples.label = "st:triples";
    copy_triples.body = {Atom{
        ts, {AtomArg::Var(x), AtomArg::Var(y), AtomArg::Var(z)}}};
    copy_triples.head = {Atom{
        tt, {AtomArg::Var(x), AtomArg::Var(y), AtomArg::Var(z)}}};
    source_to_target->push_back(std::move(copy_triples));

    // ∀x rs(x) → rt(x)
    VarId r = vars_->Fresh("st_r");
    Tgd copy_resources;
    copy_resources.label = "st:resources";
    copy_resources.body = {Atom{rs, {AtomArg::Var(r)}}};
    copy_resources.head = {Atom{rt, {AtomArg::Var(r)}}};
    source_to_target->push_back(std::move(copy_resources));
  }

  if (target == nullptr) return;
  for (Tgd& tgd : CompileGmaTgds(graph_mappings_, tt, rt, vars_.get())) {
    target->push_back(std::move(tgd));
  }
  for (Tgd& tgd : CompileEquivalenceTgds(equivalences_, tt, vars_.get())) {
    target->push_back(std::move(tgd));
  }
}

std::vector<Tgd> CompileGmaTgds(
    const std::vector<GraphMappingAssertion>& gmas, PredId tt, PredId rt,
    VarPool* vars) {
  std::vector<Tgd> out;
  // Qbody(x,y) ∧ rt(x1) ∧ ... ∧ rt(xn) → ∃z Q'body(x,z), with the head
  // variables of Q' identified with those of Q and the existential
  // variables of Q' renamed fresh.
  for (const GraphMappingAssertion& gma : gmas) {
    Tgd tgd;
    tgd.label = gma.label.empty() ? "gma" : "gma:" + gma.label;
    for (const TriplePattern& tp : gma.from.body.patterns()) {
      tgd.body.push_back(TriplePatternToAtom(tp, tt));
    }
    for (VarId head_var : gma.from.head) {
      tgd.body.push_back(Atom{rt, {AtomArg::Var(head_var)}});
    }
    std::unordered_map<VarId, VarId> renaming;
    for (size_t i = 0; i < gma.to.head.size(); ++i) {
      renaming[gma.to.head[i]] = gma.from.head[i];
    }
    for (const TriplePattern& tp : gma.to.body.patterns()) {
      Atom atom = TriplePatternToAtom(tp, tt);
      for (AtomArg& arg : atom.args) {
        if (!arg.is_var()) continue;
        auto it = renaming.find(arg.var());
        if (it == renaming.end()) {
          VarId fresh = vars->Fresh("z");
          it = renaming.emplace(arg.var(), fresh).first;
        }
        arg = AtomArg::Var(it->second);
      }
      tgd.head.push_back(std::move(atom));
    }
    out.push_back(std::move(tgd));
  }
  return out;
}

std::vector<Tgd> CompileEquivalenceTgds(
    const std::vector<EquivalenceMapping>& equivalences, PredId tt,
    VarPool* vars) {
  std::vector<Tgd> out;
  for (const EquivalenceMapping& eq : equivalences) {
    auto make = [&](const char* label, AtomArg b0, AtomArg b1, AtomArg b2,
                    AtomArg h0, AtomArg h1, AtomArg h2) {
      Tgd tgd;
      tgd.label = label;
      tgd.body = {Atom{tt, {b0, b1, b2}}};
      tgd.head = {Atom{tt, {h0, h1, h2}}};
      out.push_back(std::move(tgd));
    };
    AtomArg c = AtomArg::Const(eq.left);
    AtomArg c2 = AtomArg::Const(eq.right);
    VarId y = vars->Fresh("eq_y");
    VarId z = vars->Fresh("eq_z");
    AtomArg vy = AtomArg::Var(y), vz = AtomArg::Var(z);
    make("eq:subj:l->r", c, vy, vz, c2, vy, vz);
    make("eq:subj:r->l", c2, vy, vz, c, vy, vz);
    make("eq:pred:l->r", vy, c, vz, vy, c2, vz);
    make("eq:pred:r->l", vy, c2, vz, vy, c, vz);
    make("eq:obj:l->r", vy, vz, c, vy, vz, c2);
    make("eq:obj:r->l", vy, vz, c2, vy, vz, c);
  }
  return out;
}

void EncodeStoredDatabase(const RpsSystem& system, PredId ts, PredId rs,
                          RelationalInstance* instance) {
  Graph stored = system.StoredDatabase();
  const Dictionary& dict = *system.dict();
  for (const Triple& t : stored.triples()) {
    instance->Insert(ts, {t.s, t.p, t.o});
  }
  for (TermId id : stored.TermsInUse()) {
    if (!dict.IsBlank(id)) {
      instance->Insert(rs, {id});
    }
  }
}

}  // namespace rps
