#ifndef RPS_PEER_SCHEMA_H_
#define RPS_PEER_SCHEMA_H_

#include <string>
#include <unordered_set>

#include "rdf/graph.h"

namespace rps {

/// A peer schema (§2.2): the set of IRIs a peer uses to model its data.
/// Peer schemas need not be disjoint — Linked Data sources commonly share
/// IRIs.
class PeerSchema {
 public:
  explicit PeerSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds an IRI to the schema. Non-IRI terms are ignored (schemas contain
  /// only constants from I).
  void Add(TermId id, const Dictionary& dict) {
    if (dict.IsIri(id)) iris_.insert(id);
  }

  bool Contains(TermId id) const { return iris_.count(id) > 0; }

  const std::unordered_set<TermId>& iris() const { return iris_; }
  size_t size() const { return iris_.size(); }

  /// Builds a schema from the IRIs occurring in `graph` — the natural
  /// schema of a peer given its stored database.
  static PeerSchema FromGraph(std::string name, const Graph& graph);

 private:
  std::string name_;
  std::unordered_set<TermId> iris_;
};

}  // namespace rps

#endif  // RPS_PEER_SCHEMA_H_
