#ifndef RPS_PARSER_NTRIPLES_H_
#define RPS_PARSER_NTRIPLES_H_

#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/result.h"

namespace rps {

/// Parses an N-Triples document into `graph`, interning terms in the
/// graph's dictionary. Supports comments, \u/\U escapes, language tags and
/// datatyped literals. Returns the number of triples added (duplicates in
/// the input are collapsed).
Result<size_t> ParseNTriples(std::string_view text, Graph* graph);

/// Serializes `graph` as N-Triples. Triples are emitted in lexicographic
/// term-string order so output is deterministic and diff-friendly.
std::string WriteNTriples(const Graph& graph);

/// Parses a single N-Triples term (IRI, blank node or literal) starting at
/// the cursor position of `text`; used by tests and by the Turtle parser's
/// fallback paths.
Result<Term> ParseNTriplesTerm(std::string_view text);

}  // namespace rps

#endif  // RPS_PARSER_NTRIPLES_H_
