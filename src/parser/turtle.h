#ifndef RPS_PARSER_TURTLE_H_
#define RPS_PARSER_TURTLE_H_

#include <map>
#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/result.h"

namespace rps {

/// Parses a Turtle document into `graph`, interning terms in the graph's
/// dictionary. Supported subset (sufficient for Linked-Data-style inputs):
///  * `@prefix` / `@base` directives and their SPARQL-style `PREFIX`/`BASE`
///    forms;
///  * prefixed names, the `a` keyword, IRIREFs (resolved against the base
///    IRI when relative);
///  * predicate-object lists (`;`) and object lists (`,`);
///  * blank node labels `_:x` and anonymous nodes `[]` (no property lists
///    inside brackets);
///  * literals: quoted strings with optional language tag or `^^` datatype,
///    bare integers, decimals, and booleans.
/// Returns the number of distinct triples added.
Result<size_t> ParseTurtle(std::string_view text, Graph* graph);

/// Serializes `graph` as Turtle, using `prefixes` (prefix → namespace IRI)
/// to compact IRIs. Triples are grouped by subject with `;` separators and
/// emitted in deterministic order.
std::string WriteTurtle(const Graph& graph,
                        const std::map<std::string, std::string>& prefixes);

}  // namespace rps

#endif  // RPS_PARSER_TURTLE_H_
