#ifndef RPS_PARSER_CURSOR_H_
#define RPS_PARSER_CURSOR_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace rps {

/// Character cursor shared by the N-Triples, Turtle and SPARQL parsers.
/// Tracks line/column for error messages and provides the token-level
/// primitives the three grammars share (IRIREF, STRING, BLANK_NODE_LABEL,
/// PNAME, numbers, comments).
class TextCursor {
 public:
  explicit TextCursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }
  void Advance();

  size_t pos() const { return pos_; }
  size_t line() const { return line_; }
  size_t column() const { return column_; }

  /// Skips whitespace and '#' line comments.
  void SkipWhitespaceAndComments();

  /// Consumes `expected` if it is next (no whitespace skipping). Returns
  /// false otherwise.
  bool TryConsume(char expected);

  /// Consumes the keyword `word` case-insensitively if it is next and is
  /// followed by a non-name character. Returns false otherwise.
  bool TryConsumeKeyword(std::string_view word);

  /// Reads an IRIREF: `<...>` with \u/\U escapes. The cursor must be on
  /// '<'. Returns the IRI without brackets.
  Result<std::string> ReadIriRef();

  /// Reads a quoted string: `"..."` or `'''...'''`-free subset (single
  /// double-quoted form, with standard escapes). The cursor must be on '"'.
  Result<std::string> ReadQuotedString();

  /// Reads a blank node label `_:label`. The cursor must be on '_'.
  Result<std::string> ReadBlankLabel();

  /// Reads a language tag after '@' (cursor on '@'): `@[a-zA-Z]+(-\w+)*`.
  Result<std::string> ReadLangTag();

  /// Reads a prefixed-name token `prefix:local` (either part may be
  /// empty). Cursor must be on a PN char or ':'. Returns "prefix:local"
  /// verbatim; splitting is the caller's job.
  Result<std::string> ReadPrefixedName();

  /// Reads a variable name after '?' or '$' (cursor on the sigil).
  Result<std::string> ReadVarName();

  /// Reads an unsigned integer token [0-9]+. Cursor must be on a digit.
  std::string ReadDigits();

  /// Builds a parse error annotated with the current line and column.
  Status Error(std::string_view message) const;

 private:
  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

/// True for characters allowed in the local/prefix part of a prefixed name
/// (simplified PN_CHARS: ASCII letters, digits, '_', '-', '.', and any
/// non-ASCII byte).
bool IsPnChar(char c);

}  // namespace rps

#endif  // RPS_PARSER_CURSOR_H_
