#include "parser/sparql.h"

#include <algorithm>
#include <cctype>

#include "parser/cursor.h"
#include "util/string_util.h"

namespace rps {

namespace {

class SparqlParser {
 public:
  SparqlParser(std::string_view text, Dictionary* dict, VarPool* vars)
      : cursor_(text), dict_(dict), vars_(vars) {}

  /// Parses the whole input as one bare BGP under `prefixes`.
  Result<GraphPattern> RunBareBgp(
      const std::map<std::string, std::string>& prefixes) {
    prefixes_ = prefixes;
    RPS_ASSIGN_OR_RETURN(GraphPattern bgp, ParseBgp());
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.AtEnd()) {
      return cursor_.Error("unexpected trailing content after pattern");
    }
    return bgp;
  }

  Result<ParsedQuery> Run() {
    RPS_RETURN_IF_ERROR(ParsePrologue());
    cursor_.SkipWhitespaceAndComments();
    ParsedQuery query;
    if (cursor_.TryConsumeKeyword("SELECT")) {
      query.is_ask = false;
      RPS_RETURN_IF_ERROR(ParseProjection(&query));
      cursor_.SkipWhitespaceAndComments();
      cursor_.TryConsumeKeyword("WHERE");  // optional
    } else if (cursor_.TryConsumeKeyword("ASK")) {
      query.is_ask = true;
    } else {
      return cursor_.Error("expected SELECT or ASK");
    }
    cursor_.SkipWhitespaceAndComments();
    RPS_ASSIGN_OR_RETURN(std::vector<GraphPattern> branches, ParseGroup());
    query.branches = std::move(branches);
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.AtEnd()) {
      return cursor_.Error("unexpected trailing content after query");
    }
    if (query.select_all) {
      RPS_RETURN_IF_ERROR(ResolveSelectAll(&query));
    }
    return query;
  }

  Result<ParsedExtendedQuery> RunExtended() {
    RPS_RETURN_IF_ERROR(ParsePrologue());
    cursor_.SkipWhitespaceAndComments();
    ParsedExtendedQuery out;
    ParsedQuery projection_holder;
    if (cursor_.TryConsumeKeyword("SELECT")) {
      RPS_RETURN_IF_ERROR(ParseProjection(&projection_holder));
      cursor_.SkipWhitespaceAndComments();
      cursor_.TryConsumeKeyword("WHERE");
    } else if (cursor_.TryConsumeKeyword("ASK")) {
      out.is_ask = true;
    } else {
      return cursor_.Error("expected SELECT or ASK");
    }
    out.select_all = projection_holder.select_all;

    cursor_.SkipWhitespaceAndComments();
    RPS_RETURN_IF_ERROR(ParseExtendedGroup(&out.query));
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.AtEnd()) {
      return cursor_.Error("unexpected trailing content after query");
    }
    if (out.query.required.empty()) {
      return cursor_.Error("extended query requires a non-optional pattern");
    }

    if (out.select_all) {
      // SELECT *: the variables of the required part, in appearance order.
      std::vector<VarId> ordered;
      for (const TriplePattern& tp : out.query.required.patterns()) {
        for (VarId v : tp.Vars()) {
          if (std::find(ordered.begin(), ordered.end(), v) == ordered.end()) {
            ordered.push_back(v);
          }
        }
      }
      out.query.head = std::move(ordered);
    } else {
      out.query.head = projection_holder.projection;
      // Projection variables must occur somewhere in the query.
      std::set<VarId> known = out.query.required.Vars();
      for (const GraphPattern& gp : out.query.optionals) {
        for (VarId v : gp.Vars()) known.insert(v);
      }
      for (VarId v : out.query.head) {
        if (known.find(v) == known.end()) {
          return Status::ParseError(
              "projected variable ?" + vars_->name(v) +
              " does not occur in the query");
        }
      }
    }
    return out;
  }

 private:
  Status ParseExtendedGroup(ExtendedQuery* query) {
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsume('{')) {
      return cursor_.Error("expected '{'");
    }
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.TryConsume('}')) break;
      if (cursor_.AtEnd()) return cursor_.Error("unterminated group");
      if (cursor_.TryConsumeKeyword("OPTIONAL")) {
        cursor_.SkipWhitespaceAndComments();
        if (!cursor_.TryConsume('{')) {
          return cursor_.Error("expected '{' after OPTIONAL");
        }
        RPS_ASSIGN_OR_RETURN(GraphPattern bgp, ParseBgp());
        cursor_.SkipWhitespaceAndComments();
        if (!cursor_.TryConsume('}')) {
          return cursor_.Error("expected '}' closing OPTIONAL");
        }
        query->optionals.push_back(std::move(bgp));
        cursor_.SkipWhitespaceAndComments();
        cursor_.TryConsume('.');  // tolerated separator
        continue;
      }
      if (cursor_.TryConsumeKeyword("FILTER")) {
        RPS_ASSIGN_OR_RETURN(FilterCondition filter, ParseFilter());
        query->filters.push_back(filter);
        cursor_.SkipWhitespaceAndComments();
        cursor_.TryConsume('.');
        continue;
      }
      if (cursor_.TryConsumeKeyword("UNION")) {
        return cursor_.Error(
            "UNION cannot be combined with OPTIONAL/FILTER in this parser; "
            "use ParseSparql for unions of conjunctive queries");
      }
      // One triple pattern of the required part.
      TriplePattern tp;
      RPS_ASSIGN_OR_RETURN(tp.s, ParsePatternTerm(/*predicate=*/false));
      cursor_.SkipWhitespaceAndComments();
      RPS_ASSIGN_OR_RETURN(tp.p, ParsePatternTerm(/*predicate=*/true));
      cursor_.SkipWhitespaceAndComments();
      RPS_ASSIGN_OR_RETURN(tp.o, ParsePatternTerm(/*predicate=*/false));
      query->required.Add(tp);
      cursor_.SkipWhitespaceAndComments();
      cursor_.TryConsume('.');
    }
    return Status::OK();
  }

  Result<FilterCondition> ParseFilter() {
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsume('(')) {
      return cursor_.Error("expected '(' after FILTER");
    }
    cursor_.SkipWhitespaceAndComments();
    FilterCondition filter;

    bool negated = cursor_.TryConsume('!');
    cursor_.SkipWhitespaceAndComments();

    auto unary = [&](const char* keyword,
                     FilterCondition::Op op) -> Result<bool> {
      if (!cursor_.TryConsumeKeyword(keyword)) return false;
      cursor_.SkipWhitespaceAndComments();
      if (!cursor_.TryConsume('(')) {
        return cursor_.Error("expected '(' in filter function");
      }
      cursor_.SkipWhitespaceAndComments();
      RPS_ASSIGN_OR_RETURN(std::string name, cursor_.ReadVarName());
      filter.lhs = vars_->Intern(name);
      filter.op = op;
      cursor_.SkipWhitespaceAndComments();
      if (!cursor_.TryConsume(')')) {
        return cursor_.Error("expected ')' in filter function");
      }
      return true;
    };

    RPS_ASSIGN_OR_RETURN(bool is_bound,
                         unary("BOUND", negated
                                            ? FilterCondition::Op::kNotBound
                                            : FilterCondition::Op::kBound));
    bool matched = is_bound;
    if (!matched) {
      RPS_ASSIGN_OR_RETURN(matched,
                           unary("isIRI", FilterCondition::Op::kIsIri));
    }
    if (!matched) {
      RPS_ASSIGN_OR_RETURN(
          matched, unary("isLiteral", FilterCondition::Op::kIsLiteral));
    }
    if (!matched) {
      RPS_ASSIGN_OR_RETURN(matched,
                           unary("isBlank", FilterCondition::Op::kIsBlank));
    }
    if (negated && !is_bound) {
      return cursor_.Error("'!' is only supported before BOUND(...)");
    }
    if (!matched) {
      // Binary comparison: ?x op (term | ?y).
      if (cursor_.Peek() != '?' && cursor_.Peek() != '$') {
        return cursor_.Error(
            "filter must start with a variable or a supported function");
      }
      RPS_ASSIGN_OR_RETURN(std::string name, cursor_.ReadVarName());
      filter.lhs = vars_->Intern(name);
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.TryConsume('!')) {
        if (!cursor_.TryConsume('=')) {
          return cursor_.Error("expected '!=' in filter");
        }
        filter.op = FilterCondition::Op::kNe;
      } else if (cursor_.TryConsume('<')) {
        filter.op = cursor_.TryConsume('=') ? FilterCondition::Op::kLe
                                            : FilterCondition::Op::kLt;
      } else if (cursor_.TryConsume('>')) {
        filter.op = cursor_.TryConsume('=') ? FilterCondition::Op::kGe
                                            : FilterCondition::Op::kGt;
      } else if (cursor_.TryConsume('=')) {
        filter.op = FilterCondition::Op::kEq;
      } else {
        return cursor_.Error("expected a comparison operator in filter");
      }
      cursor_.SkipWhitespaceAndComments();
      RPS_ASSIGN_OR_RETURN(filter.rhs,
                           ParsePatternTerm(/*predicate=*/false));
    }
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsume(')')) {
      return cursor_.Error("expected ')' closing FILTER");
    }
    return filter;
  }

  Status ParsePrologue() {
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (!cursor_.TryConsumeKeyword("PREFIX")) return Status::OK();
      cursor_.SkipWhitespaceAndComments();
      std::string prefix;
      while (!cursor_.AtEnd() && IsPnChar(cursor_.Peek())) {
        prefix.push_back(cursor_.Peek());
        cursor_.Advance();
      }
      if (!cursor_.TryConsume(':')) {
        return cursor_.Error("expected ':' after prefix name");
      }
      cursor_.SkipWhitespaceAndComments();
      RPS_ASSIGN_OR_RETURN(std::string iri, cursor_.ReadIriRef());
      prefixes_[prefix] = std::move(iri);
    }
  }

  Status ParseProjection(ParsedQuery* query) {
    cursor_.SkipWhitespaceAndComments();
    if (cursor_.TryConsume('*')) {
      query->select_all = true;
      return Status::OK();
    }
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.Peek() != '?' && cursor_.Peek() != '$') break;
      RPS_ASSIGN_OR_RETURN(std::string name, cursor_.ReadVarName());
      query->projection.push_back(vars_->Intern(name));
    }
    if (query->projection.empty()) {
      return cursor_.Error("SELECT requires '*' or at least one variable");
    }
    return Status::OK();
  }

  // Parses '{' ... '}' where the contents are either a UNION chain of
  // groups or a basic graph pattern. Returns the UCQ branches.
  Result<std::vector<GraphPattern>> ParseGroup() {
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsume('{')) {
      return cursor_.Error("expected '{'");
    }
    cursor_.SkipWhitespaceAndComments();
    std::vector<GraphPattern> branches;
    if (cursor_.Peek() == '{') {
      // UNION chain of nested groups; nested unions are flattened.
      while (true) {
        RPS_ASSIGN_OR_RETURN(std::vector<GraphPattern> inner, ParseGroup());
        for (GraphPattern& gp : inner) branches.push_back(std::move(gp));
        cursor_.SkipWhitespaceAndComments();
        if (cursor_.TryConsumeKeyword("UNION")) {
          cursor_.SkipWhitespaceAndComments();
          continue;
        }
        break;
      }
    } else {
      RPS_ASSIGN_OR_RETURN(GraphPattern bgp, ParseBgp());
      branches.push_back(std::move(bgp));
    }
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsume('}')) {
      return cursor_.Error("expected '}'");
    }
    return branches;
  }

  Result<GraphPattern> ParseBgp() {
    GraphPattern gp;
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.Peek() == '}' || cursor_.AtEnd()) break;
      TriplePattern tp;
      RPS_ASSIGN_OR_RETURN(tp.s, ParsePatternTerm(/*predicate=*/false));
      cursor_.SkipWhitespaceAndComments();
      RPS_ASSIGN_OR_RETURN(tp.p, ParsePatternTerm(/*predicate=*/true));
      cursor_.SkipWhitespaceAndComments();
      RPS_ASSIGN_OR_RETURN(tp.o, ParsePatternTerm(/*predicate=*/false));
      gp.Add(tp);
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.TryConsume('.')) continue;
      break;
    }
    if (gp.empty()) {
      return cursor_.Error("empty graph pattern");
    }
    return gp;
  }

  Result<PatternTerm> ParsePatternTerm(bool predicate) {
    char c = cursor_.Peek();
    if (c == '?' || c == '$') {
      RPS_ASSIGN_OR_RETURN(std::string name, cursor_.ReadVarName());
      return PatternTerm::Var(vars_->Intern(name));
    }
    if (c == '<') {
      RPS_ASSIGN_OR_RETURN(std::string iri, cursor_.ReadIriRef());
      return PatternTerm::Const(dict_->Intern(Term::Iri(std::move(iri))));
    }
    if (c == '_') {
      return cursor_.Error(
          "blank nodes are not supported in query patterns; use a variable");
    }
    if (c == '"') {
      if (predicate) return cursor_.Error("literal in predicate position");
      RPS_ASSIGN_OR_RETURN(std::string lexical, cursor_.ReadQuotedString());
      if (cursor_.Peek() == '@') {
        RPS_ASSIGN_OR_RETURN(std::string lang, cursor_.ReadLangTag());
        return PatternTerm::Const(dict_->Intern(
            Term::LangLiteral(std::move(lexical), std::move(lang))));
      }
      if (cursor_.Peek() == '^' && cursor_.PeekAt(1) == '^') {
        cursor_.Advance();
        cursor_.Advance();
        if (cursor_.Peek() == '<') {
          RPS_ASSIGN_OR_RETURN(std::string dt, cursor_.ReadIriRef());
          return PatternTerm::Const(dict_->Intern(
              Term::TypedLiteral(std::move(lexical), std::move(dt))));
        }
        RPS_ASSIGN_OR_RETURN(Term dt_term, ParsePrefixedIri());
        return PatternTerm::Const(dict_->Intern(
            Term::TypedLiteral(std::move(lexical), dt_term.lexical())));
      }
      return PatternTerm::Const(
          dict_->Intern(Term::Literal(std::move(lexical))));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-') {
      if (predicate) return cursor_.Error("number in predicate position");
      std::string token;
      if (c == '+' || c == '-') {
        token.push_back(c);
        cursor_.Advance();
      }
      token += cursor_.ReadDigits();
      bool is_decimal = false;
      if (cursor_.Peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(cursor_.PeekAt(1)))) {
        is_decimal = true;
        token.push_back('.');
        cursor_.Advance();
        token += cursor_.ReadDigits();
      }
      return PatternTerm::Const(dict_->Intern(Term::TypedLiteral(
          token, is_decimal ? "http://www.w3.org/2001/XMLSchema#decimal"
                            : std::string(kXsdInteger))));
    }
    if (predicate && c == 'a') {
      char next = cursor_.PeekAt(1);
      if (next == ' ' || next == '\t' || next == '\n' || next == '\r') {
        cursor_.Advance();
        return PatternTerm::Const(
            dict_->Intern(Term::Iri(std::string(kRdfType))));
      }
    }
    RPS_ASSIGN_OR_RETURN(Term term, ParsePrefixedIri());
    return PatternTerm::Const(dict_->Intern(term));
  }

  Result<Term> ParsePrefixedIri() {
    RPS_ASSIGN_OR_RETURN(std::string token, cursor_.ReadPrefixedName());
    size_t colon = token.find(':');
    std::string prefix = token.substr(0, colon);
    std::string local = token.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return cursor_.Error("undefined prefix '" + prefix + ":'");
    }
    return Term::Iri(it->second + local);
  }

  // SELECT *: project the variables of the first branch in order of first
  // appearance; all branches must bind the same variable set.
  Status ResolveSelectAll(ParsedQuery* query) {
    std::vector<VarId> ordered;
    for (const TriplePattern& tp : query->branches[0].patterns()) {
      for (VarId v : tp.Vars()) {
        if (std::find(ordered.begin(), ordered.end(), v) == ordered.end()) {
          ordered.push_back(v);
        }
      }
    }
    std::set<VarId> expected(ordered.begin(), ordered.end());
    for (const GraphPattern& gp : query->branches) {
      if (gp.Vars() != expected) {
        return Status::ParseError(
            "SELECT * requires all UNION branches to bind the same "
            "variables");
      }
    }
    query->projection = std::move(ordered);
    return Status::OK();
  }

  TextCursor cursor_;
  Dictionary* dict_;
  VarPool* vars_;
  std::map<std::string, std::string> prefixes_;
};

// Compacts an IRI with prefixes, or emits <iri>.
std::string SparqlIri(const std::string& iri,
                      const std::map<std::string, std::string>& prefixes) {
  const std::string* best_ns = nullptr;
  const std::string* best_prefix = nullptr;
  for (const auto& [prefix, ns] : prefixes) {
    if (StartsWith(iri, ns) &&
        (best_ns == nullptr || ns.size() > best_ns->size())) {
      best_ns = &ns;
      best_prefix = &prefix;
    }
  }
  if (best_ns != nullptr) {
    std::string local = iri.substr(best_ns->size());
    bool ok = true;
    for (char c : local) {
      if (!IsPnChar(c)) {
        ok = false;
        break;
      }
    }
    if (ok) return *best_prefix + ":" + local;
  }
  return "<" + iri + ">";
}

std::string PatternTermToSparql(
    const PatternTerm& pt, const Dictionary& dict, const VarPool& vars,
    const std::map<std::string, std::string>& prefixes) {
  if (pt.is_var()) return "?" + vars.name(pt.var());
  const Term& t = dict.term(pt.term());
  if (t.is_iri()) return SparqlIri(t.lexical(), prefixes);
  return t.ToString();
}

std::string BgpToSparql(const GraphPattern& gp, const Dictionary& dict,
                        const VarPool& vars,
                        const std::map<std::string, std::string>& prefixes,
                        const std::string& indent) {
  std::string out;
  for (size_t i = 0; i < gp.patterns().size(); ++i) {
    const TriplePattern& tp = gp.patterns()[i];
    out += indent;
    out += PatternTermToSparql(tp.s, dict, vars, prefixes) + " " +
           PatternTermToSparql(tp.p, dict, vars, prefixes) + " " +
           PatternTermToSparql(tp.o, dict, vars, prefixes);
    out += (i + 1 < gp.patterns().size()) ? " .\n" : "\n";
  }
  return out;
}

}  // namespace

Result<std::vector<GraphPatternQuery>> ParsedQuery::ToQueries() const {
  std::vector<GraphPatternQuery> out;
  out.reserve(branches.size());
  for (const GraphPattern& gp : branches) {
    GraphPatternQuery q;
    q.head = projection;
    q.body = gp;
    RPS_RETURN_IF_ERROR(q.Validate());
    out.push_back(std::move(q));
  }
  return out;
}

Result<ParsedQuery> ParseSparql(std::string_view text, Dictionary* dict,
                                VarPool* vars) {
  SparqlParser parser(text, dict, vars);
  return parser.Run();
}

Result<ParsedExtendedQuery> ParseSparqlExtended(std::string_view text,
                                                Dictionary* dict,
                                                VarPool* vars) {
  SparqlParser parser(text, dict, vars);
  return parser.RunExtended();
}

Result<GraphPattern> ParseBgpText(
    std::string_view text, const std::map<std::string, std::string>& prefixes,
    Dictionary* dict, VarPool* vars) {
  SparqlParser parser(text, dict, vars);
  return parser.RunBareBgp(prefixes);
}

std::string WriteBgpText(const GraphPattern& gp, const Dictionary& dict,
                         const VarPool& vars,
                         const std::map<std::string, std::string>& prefixes) {
  std::string out;
  for (size_t i = 0; i < gp.patterns().size(); ++i) {
    const TriplePattern& tp = gp.patterns()[i];
    if (i > 0) out += " . ";
    out += PatternTermToSparql(tp.s, dict, vars, prefixes) + " " +
           PatternTermToSparql(tp.p, dict, vars, prefixes) + " " +
           PatternTermToSparql(tp.o, dict, vars, prefixes);
  }
  return out;
}

std::string WriteSparql(const ParsedQuery& query, const Dictionary& dict,
                        const VarPool& vars,
                        const std::map<std::string, std::string>& prefixes) {
  std::string out;
  for (const auto& [prefix, ns] : prefixes) {
    out += "PREFIX " + prefix + ": <" + ns + ">\n";
  }
  if (query.is_ask) {
    out += "ASK {\n";
  } else {
    out += "SELECT";
    for (VarId v : query.projection) out += " ?" + vars.name(v);
    out += "\nWHERE {\n";
  }
  if (query.branches.size() == 1) {
    out += BgpToSparql(query.branches[0], dict, vars, prefixes, "  ");
  } else {
    for (size_t i = 0; i < query.branches.size(); ++i) {
      if (i > 0) out += "  UNION\n";
      out += "  {\n";
      out += BgpToSparql(query.branches[i], dict, vars, prefixes, "    ");
      out += "  }\n";
    }
  }
  out += "}\n";
  return out;
}

ParsedQuery ToParsedQuery(const GraphPatternQuery& q) {
  ParsedQuery out;
  out.is_ask = q.head.empty();
  out.projection = q.head;
  out.branches.push_back(q.body);
  return out;
}

ParsedQuery ToParsedQuery(const std::vector<GraphPatternQuery>& ucq) {
  ParsedQuery out;
  if (ucq.empty()) return out;
  out.is_ask = ucq[0].head.empty();
  out.projection = ucq[0].head;
  for (const GraphPatternQuery& q : ucq) {
    out.branches.push_back(q.body);
  }
  return out;
}

}  // namespace rps
