#include "parser/turtle.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "parser/cursor.h"
#include "util/string_util.h"

namespace rps {

namespace {

class TurtleParser {
 public:
  TurtleParser(std::string_view text, Graph* graph)
      : cursor_(text), graph_(graph), dict_(graph->dict()) {}

  Result<size_t> Run() {
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.AtEnd()) break;
      RPS_RETURN_IF_ERROR(ParseStatement());
    }
    return added_;
  }

 private:
  Status ParseStatement() {
    if (cursor_.Peek() == '@') {
      return ParseAtDirective();
    }
    if (cursor_.TryConsumeKeyword("PREFIX")) {
      return ParsePrefixBody(/*expect_dot=*/false);
    }
    if (cursor_.TryConsumeKeyword("BASE")) {
      return ParseBaseBody(/*expect_dot=*/false);
    }
    return ParseTriples();
  }

  Status ParseAtDirective() {
    cursor_.Advance();  // '@'
    if (cursor_.TryConsumeKeyword("prefix")) {
      return ParsePrefixBody(/*expect_dot=*/true);
    }
    if (cursor_.TryConsumeKeyword("base")) {
      return ParseBaseBody(/*expect_dot=*/true);
    }
    return cursor_.Error("unknown @directive");
  }

  Status ParsePrefixBody(bool expect_dot) {
    cursor_.SkipWhitespaceAndComments();
    std::string prefix;
    while (!cursor_.AtEnd() && IsPnChar(cursor_.Peek())) {
      prefix.push_back(cursor_.Peek());
      cursor_.Advance();
    }
    if (!cursor_.TryConsume(':')) {
      return cursor_.Error("expected ':' after prefix name");
    }
    cursor_.SkipWhitespaceAndComments();
    RPS_ASSIGN_OR_RETURN(std::string iri, cursor_.ReadIriRef());
    prefixes_[prefix] = Resolve(iri);
    if (expect_dot) {
      cursor_.SkipWhitespaceAndComments();
      if (!cursor_.TryConsume('.')) {
        return cursor_.Error("expected '.' after @prefix directive");
      }
    }
    return Status::OK();
  }

  Status ParseBaseBody(bool expect_dot) {
    cursor_.SkipWhitespaceAndComments();
    RPS_ASSIGN_OR_RETURN(std::string iri, cursor_.ReadIriRef());
    base_ = Resolve(iri);
    if (expect_dot) {
      cursor_.SkipWhitespaceAndComments();
      if (!cursor_.TryConsume('.')) {
        return cursor_.Error("expected '.' after @base directive");
      }
    }
    return Status::OK();
  }

  // Minimal relative-reference resolution: absolute IRIs (with a scheme)
  // pass through; anything else is concatenated onto the base.
  std::string Resolve(const std::string& iri) const {
    if (iri.find("://") != std::string::npos || base_.empty()) return iri;
    // Scheme-only check, e.g. "urn:x" or "mailto:a@b".
    size_t colon = iri.find(':');
    size_t slash = iri.find('/');
    if (colon != std::string::npos &&
        (slash == std::string::npos || colon < slash)) {
      return iri;
    }
    return base_ + iri;
  }

  Status ParseTriples() {
    bool bracketed_subject = cursor_.Peek() == '[';
    RPS_ASSIGN_OR_RETURN(Term subject, ParseSubject());
    TermId s = dict_->Intern(subject);
    cursor_.SkipWhitespaceAndComments();
    // `[ p o ] .` is a complete statement on its own.
    if (!(bracketed_subject && cursor_.Peek() == '.')) {
      RPS_RETURN_IF_ERROR(ParsePredicateObjectList(s));
    }
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsume('.')) {
      return cursor_.Error("expected '.' at end of statement");
    }
    return Status::OK();
  }

  Status ParsePredicateObjectList(TermId s) {
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      RPS_ASSIGN_OR_RETURN(Term predicate, ParsePredicate());
      TermId p = dict_->Intern(predicate);
      while (true) {
        cursor_.SkipWhitespaceAndComments();
        RPS_ASSIGN_OR_RETURN(Term object, ParseObject());
        TermId o = dict_->Intern(object);
        RPS_ASSIGN_OR_RETURN(bool fresh, graph_->Insert(Triple{s, p, o}));
        if (fresh) ++added_;
        cursor_.SkipWhitespaceAndComments();
        if (cursor_.TryConsume(',')) continue;
        break;
      }
      if (cursor_.TryConsume(';')) {
        cursor_.SkipWhitespaceAndComments();
        // Turtle allows a dangling ';' before '.' / ']'.
        if (cursor_.Peek() == '.' || cursor_.Peek() == ']') break;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<Term> ParseSubject() {
    char c = cursor_.Peek();
    if (c == '<') {
      RPS_ASSIGN_OR_RETURN(std::string iri, cursor_.ReadIriRef());
      return Term::Iri(Resolve(iri));
    }
    if (c == '_') {
      RPS_ASSIGN_OR_RETURN(std::string label, cursor_.ReadBlankLabel());
      return Term::Blank(std::move(label));
    }
    if (c == '[') {
      return ParseAnonBlank();
    }
    if (c == '(') {
      return ParseCollection();
    }
    return ParsePrefixedTerm();
  }

  Result<Term> ParsePredicate() {
    if (cursor_.Peek() == '<') {
      RPS_ASSIGN_OR_RETURN(std::string iri, cursor_.ReadIriRef());
      return Term::Iri(Resolve(iri));
    }
    // The `a` keyword.
    if (cursor_.Peek() == 'a') {
      char next = cursor_.PeekAt(1);
      if (next == ' ' || next == '\t' || next == '\n' || next == '\r') {
        cursor_.Advance();
        return Term::Iri(std::string(kRdfType));
      }
    }
    return ParsePrefixedTerm();
  }

  Result<Term> ParseObject() {
    char c = cursor_.Peek();
    if (c == '<') {
      RPS_ASSIGN_OR_RETURN(std::string iri, cursor_.ReadIriRef());
      return Term::Iri(Resolve(iri));
    }
    if (c == '_') {
      RPS_ASSIGN_OR_RETURN(std::string label, cursor_.ReadBlankLabel());
      return Term::Blank(std::move(label));
    }
    if (c == '[') {
      return ParseAnonBlank();
    }
    if (c == '(') {
      return ParseCollection();
    }
    if (c == '"') {
      return ParseLiteral();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-') {
      return ParseNumber();
    }
    if (cursor_.TryConsumeKeyword("true")) {
      return Term::TypedLiteral("true",
                                "http://www.w3.org/2001/XMLSchema#boolean");
    }
    if (cursor_.TryConsumeKeyword("false")) {
      return Term::TypedLiteral("false",
                                "http://www.w3.org/2001/XMLSchema#boolean");
    }
    return ParsePrefixedTerm();
  }

  // `[]` (a fresh blank node) or `[ p o ; ... ]` (a blank node property
  // list — the inner triples are emitted with the fresh blank as subject).
  Result<Term> ParseAnonBlank() {
    cursor_.Advance();  // '['
    cursor_.SkipWhitespaceAndComments();
    TermId blank = dict_->NewBlank();
    if (cursor_.TryConsume(']')) {
      return dict_->term(blank);
    }
    RPS_RETURN_IF_ERROR(ParsePredicateObjectList(blank));
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.TryConsume(']')) {
      return cursor_.Error("expected ']' closing a blank node property list");
    }
    return dict_->term(blank);
  }

  // `( e1 e2 ... )` — an RDF collection, expanded into the standard
  // rdf:first / rdf:rest / rdf:nil list structure. Returns the list head
  // (rdf:nil for the empty collection).
  Result<Term> ParseCollection() {
    cursor_.Advance();  // '('
    const std::string rdf_ns =
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    TermId first = dict_->InternIri(rdf_ns + "first");
    TermId rest = dict_->InternIri(rdf_ns + "rest");
    TermId nil = dict_->InternIri(rdf_ns + "nil");

    std::vector<TermId> elements;
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.TryConsume(')')) break;
      if (cursor_.AtEnd()) return cursor_.Error("unterminated collection");
      RPS_ASSIGN_OR_RETURN(Term element, ParseObject());
      elements.push_back(dict_->Intern(element));
    }
    if (elements.empty()) return dict_->term(nil);

    TermId head = dict_->NewBlank();
    TermId node = head;
    for (size_t i = 0; i < elements.size(); ++i) {
      RPS_ASSIGN_OR_RETURN(bool fresh,
                           graph_->Insert(Triple{node, first, elements[i]}));
      if (fresh) ++added_;
      TermId next = (i + 1 < elements.size()) ? dict_->NewBlank() : nil;
      RPS_ASSIGN_OR_RETURN(bool fresh2,
                           graph_->Insert(Triple{node, rest, next}));
      if (fresh2) ++added_;
      node = next;
    }
    return dict_->term(head);
  }

  Result<Term> ParseLiteral() {
    RPS_ASSIGN_OR_RETURN(std::string lexical, cursor_.ReadQuotedString());
    if (cursor_.Peek() == '@') {
      RPS_ASSIGN_OR_RETURN(std::string lang, cursor_.ReadLangTag());
      return Term::LangLiteral(std::move(lexical), std::move(lang));
    }
    if (cursor_.Peek() == '^' && cursor_.PeekAt(1) == '^') {
      cursor_.Advance();
      cursor_.Advance();
      if (cursor_.Peek() == '<') {
        RPS_ASSIGN_OR_RETURN(std::string datatype, cursor_.ReadIriRef());
        return Term::TypedLiteral(std::move(lexical), Resolve(datatype));
      }
      RPS_ASSIGN_OR_RETURN(Term dt, ParsePrefixedTerm());
      return Term::TypedLiteral(std::move(lexical), dt.lexical());
    }
    return Term::Literal(std::move(lexical));
  }

  Result<Term> ParseNumber() {
    std::string token;
    if (cursor_.Peek() == '+' || cursor_.Peek() == '-') {
      token.push_back(cursor_.Peek());
      cursor_.Advance();
    }
    token += cursor_.ReadDigits();
    bool is_decimal = false;
    if (cursor_.Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(cursor_.PeekAt(1)))) {
      is_decimal = true;
      token.push_back('.');
      cursor_.Advance();
      token += cursor_.ReadDigits();
    }
    if (token.empty() || token == "+" || token == "-") {
      return cursor_.Error("malformed number");
    }
    return Term::TypedLiteral(
        token, is_decimal ? "http://www.w3.org/2001/XMLSchema#decimal"
                          : std::string(kXsdInteger));
  }

  Result<Term> ParsePrefixedTerm() {
    RPS_ASSIGN_OR_RETURN(std::string token, cursor_.ReadPrefixedName());
    size_t colon = token.find(':');
    std::string prefix = token.substr(0, colon);
    std::string local = token.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return cursor_.Error("undefined prefix '" + prefix + ":'");
    }
    return Term::Iri(it->second + local);
  }

  TextCursor cursor_;
  Graph* graph_;
  Dictionary* dict_;
  std::map<std::string, std::string> prefixes_;
  std::string base_;
  size_t added_ = 0;
};

// Compacts `iri` using the longest matching namespace, or falls back to
// `<iri>`.
std::string CompactIri(const std::string& iri,
                       const std::map<std::string, std::string>& prefixes) {
  const std::string* best_ns = nullptr;
  const std::string* best_prefix = nullptr;
  for (const auto& [prefix, ns] : prefixes) {
    if (StartsWith(iri, ns) && (best_ns == nullptr || ns.size() > best_ns->size())) {
      best_ns = &ns;
      best_prefix = &prefix;
    }
  }
  if (best_ns != nullptr) {
    std::string local = iri.substr(best_ns->size());
    // Local part must be a plain name for the compact form to reparse.
    bool ok = !local.empty();
    for (char c : local) {
      if (!IsPnChar(c)) {
        ok = false;
        break;
      }
    }
    if (ok) return *best_prefix + ":" + local;
  }
  return "<" + iri + ">";
}

std::string TermToTurtle(const Term& t,
                         const std::map<std::string, std::string>& prefixes) {
  if (t.is_iri()) return CompactIri(t.lexical(), prefixes);
  return t.ToString();
}

}  // namespace

Result<size_t> ParseTurtle(std::string_view text, Graph* graph) {
  TurtleParser parser(text, graph);
  return parser.Run();
}

std::string WriteTurtle(const Graph& graph,
                        const std::map<std::string, std::string>& prefixes) {
  const Dictionary& dict = *graph.dict();
  std::string out;
  for (const auto& [prefix, ns] : prefixes) {
    out += "@prefix " + prefix + ": <" + ns + "> .\n";
  }
  if (!prefixes.empty()) out += "\n";

  // Group triples by subject, deterministically.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      by_subject;
  for (const Triple& t : graph.triples()) {
    by_subject[TermToTurtle(dict.term(t.s), prefixes)].push_back(
        {TermToTurtle(dict.term(t.p), prefixes),
         TermToTurtle(dict.term(t.o), prefixes)});
  }
  for (auto& [subject, pos] : by_subject) {
    std::sort(pos.begin(), pos.end());
    out += subject;
    for (size_t i = 0; i < pos.size(); ++i) {
      out += (i == 0 ? " " : " ;\n    ");
      out += pos[i].first + " " + pos[i].second;
    }
    out += " .\n";
  }
  return out;
}

}  // namespace rps
