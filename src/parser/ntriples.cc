#include "parser/ntriples.h"

#include <algorithm>

#include "parser/cursor.h"

namespace rps {

namespace {

// Reads one term in N-Triples syntax at the cursor.
Result<Term> ReadTerm(TextCursor* cursor) {
  char c = cursor->Peek();
  if (c == '<') {
    RPS_ASSIGN_OR_RETURN(std::string iri, cursor->ReadIriRef());
    return Term::Iri(std::move(iri));
  }
  if (c == '_') {
    RPS_ASSIGN_OR_RETURN(std::string label, cursor->ReadBlankLabel());
    return Term::Blank(std::move(label));
  }
  if (c == '"') {
    RPS_ASSIGN_OR_RETURN(std::string lexical, cursor->ReadQuotedString());
    if (cursor->Peek() == '@') {
      RPS_ASSIGN_OR_RETURN(std::string lang, cursor->ReadLangTag());
      return Term::LangLiteral(std::move(lexical), std::move(lang));
    }
    if (cursor->Peek() == '^' && cursor->PeekAt(1) == '^') {
      cursor->Advance();
      cursor->Advance();
      RPS_ASSIGN_OR_RETURN(std::string datatype, cursor->ReadIriRef());
      return Term::TypedLiteral(std::move(lexical), std::move(datatype));
    }
    return Term::Literal(std::move(lexical));
  }
  return cursor->Error("expected IRI, blank node or literal");
}

}  // namespace

Result<Term> ParseNTriplesTerm(std::string_view text) {
  TextCursor cursor(text);
  cursor.SkipWhitespaceAndComments();
  return ReadTerm(&cursor);
}

Result<size_t> ParseNTriples(std::string_view text, Graph* graph) {
  TextCursor cursor(text);
  Dictionary* dict = graph->dict();
  size_t added = 0;
  while (true) {
    cursor.SkipWhitespaceAndComments();
    if (cursor.AtEnd()) break;

    RPS_ASSIGN_OR_RETURN(Term subject, ReadTerm(&cursor));
    cursor.SkipWhitespaceAndComments();
    RPS_ASSIGN_OR_RETURN(Term predicate, ReadTerm(&cursor));
    cursor.SkipWhitespaceAndComments();
    RPS_ASSIGN_OR_RETURN(Term object, ReadTerm(&cursor));
    cursor.SkipWhitespaceAndComments();
    if (!cursor.TryConsume('.')) {
      return cursor.Error("expected '.' at end of triple");
    }

    Triple t{dict->Intern(subject), dict->Intern(predicate),
             dict->Intern(object)};
    RPS_ASSIGN_OR_RETURN(bool fresh, graph->Insert(t));
    if (fresh) ++added;
  }
  return added;
}

std::string WriteNTriples(const Graph& graph) {
  const Dictionary& dict = *graph.dict();
  std::vector<std::string> lines;
  lines.reserve(graph.size());
  for (const Triple& t : graph.triples()) {
    lines.push_back(dict.ToString(t.s) + " " + dict.ToString(t.p) + " " +
                    dict.ToString(t.o) + " .\n");
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line;
  return out;
}

}  // namespace rps
