#ifndef RPS_PARSER_SPARQL_H_
#define RPS_PARSER_SPARQL_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "query/algebra.h"
#include "query/query.h"
#include "rdf/dictionary.h"
#include "util/result.h"

namespace rps {

/// A parsed conjunctive SPARQL query: a union of basic graph patterns with
/// a single projection list. This is exactly the query language of the
/// paper (graph pattern queries, §2.1) closed under the UNIONs produced by
/// query rewriting (§4).
struct ParsedQuery {
  /// True for ASK queries (arity 0).
  bool is_ask = false;
  /// Head variables in projection order. Empty for ASK.
  std::vector<VarId> projection;
  /// True if the query was written `SELECT *` (projection was inferred).
  bool select_all = false;
  /// UCQ branches; a plain conjunctive query has exactly one.
  std::vector<GraphPattern> branches;

  /// One GraphPatternQuery per branch, all sharing the projection.
  /// Fails if a projected variable is missing from some branch.
  Result<std::vector<GraphPatternQuery>> ToQueries() const;
};

/// Parses the conjunctive SPARQL subset:
///   PREFIX ns: <iri> ...
///   SELECT (?v... | *) WHERE? { pattern }   |   ASK { pattern }
/// where pattern is either a basic graph pattern (triple patterns joined
/// with '.') or a UNION chain of braced groups. Terms may be IRIs,
/// prefixed names, `a`, literals, numbers, or variables. Variables are
/// interned into `vars`, terms into `dict`.
Result<ParsedQuery> ParseSparql(std::string_view text, Dictionary* dict,
                                VarPool* vars);

/// Serializes a query back to SPARQL text. `prefixes` (prefix → namespace
/// IRI) compacts IRIs; pass an empty map for fully spelled-out IRIs.
std::string WriteSparql(const ParsedQuery& query, const Dictionary& dict,
                        const VarPool& vars,
                        const std::map<std::string, std::string>& prefixes);

/// An extended parsed query: the conjunctive core plus OPTIONAL blocks
/// and FILTER conditions (§5 item 2 of the paper — a larger SPARQL
/// subset). UNION is not combinable with OPTIONAL/FILTER in this parser.
struct ParsedExtendedQuery {
  bool is_ask = false;
  bool select_all = false;
  /// The algebra query; its head equals the resolved projection.
  ExtendedQuery query;
};

/// Parses the extended subset:
///   SELECT (?v... | *) WHERE? { triples (FILTER(...) | OPTIONAL{...})* }
/// FILTER supports ?x (=|!=|<|<=|>|>=) (term|?y), BOUND(?x), !BOUND(?x),
/// isIRI(?x), isLiteral(?x), isBlank(?x). OPTIONAL blocks contain plain
/// BGPs and are left-joined in order.
Result<ParsedExtendedQuery> ParseSparqlExtended(std::string_view text,
                                                Dictionary* dict,
                                                VarPool* vars);

/// Serializes a bare BGP as SPARQL-style triple patterns on one line
/// ("?x voc:actor ?y . ?y voc:age ?a"), compacting IRIs with `prefixes`.
/// Inverse of ParseBgpText.
std::string WriteBgpText(const GraphPattern& gp, const Dictionary& dict,
                         const VarPool& vars,
                         const std::map<std::string, std::string>& prefixes);

/// Parses a bare basic graph pattern ("?x voc:actor ?y . ?y voc:age ?a")
/// with the given prefix map — the building block the mapping DSL uses to
/// express the two sides of a graph mapping assertion.
Result<GraphPattern> ParseBgpText(
    std::string_view text, const std::map<std::string, std::string>& prefixes,
    Dictionary* dict, VarPool* vars);

/// Convenience: wraps a single conjunctive query as a ParsedQuery
/// (SELECT if it has head variables, ASK otherwise).
ParsedQuery ToParsedQuery(const GraphPatternQuery& q);

/// Convenience: wraps a UCQ (all branches must share the head of the
/// first).
ParsedQuery ToParsedQuery(const std::vector<GraphPatternQuery>& ucq);

}  // namespace rps

#endif  // RPS_PARSER_SPARQL_H_
