#include "parser/cursor.h"

#include <cctype>

#include "util/string_util.h"

namespace rps {

bool IsPnChar(char c) {
  unsigned char uc = static_cast<unsigned char>(c);
  return std::isalnum(uc) || c == '_' || c == '-' || c == '.' || uc >= 0x80;
}

void TextCursor::Advance() {
  if (pos_ >= text_.size()) return;
  if (text_[pos_] == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  ++pos_;
}

void TextCursor::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
    } else if (c == '#') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      return;
    }
  }
}

bool TextCursor::TryConsume(char expected) {
  if (Peek() != expected) return false;
  Advance();
  return true;
}

bool TextCursor::TryConsumeKeyword(std::string_view word) {
  if (pos_ + word.size() > text_.size()) return false;
  for (size_t i = 0; i < word.size(); ++i) {
    char a = text_[pos_ + i];
    char b = word[i];
    if (std::toupper(static_cast<unsigned char>(a)) !=
        std::toupper(static_cast<unsigned char>(b))) {
      return false;
    }
  }
  // Keyword must not run into a name character.
  char next = PeekAt(word.size());
  if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
    return false;
  }
  for (size_t i = 0; i < word.size(); ++i) Advance();
  return true;
}

Result<std::string> TextCursor::ReadIriRef() {
  if (Peek() != '<') return Error("expected '<' at start of IRI");
  Advance();
  std::string raw;
  while (!AtEnd() && Peek() != '>') {
    char c = Peek();
    if (c == '\n') return Error("newline inside IRI");
    raw.push_back(c);
    Advance();
  }
  if (AtEnd()) return Error("unterminated IRI");
  Advance();  // '>'
  // Decode \u escapes inside IRIs.
  if (raw.find('\\') != std::string::npos) {
    std::string decoded;
    if (!UnescapeLiteral(raw, &decoded)) {
      return Error("malformed escape in IRI");
    }
    return decoded;
  }
  return raw;
}

Result<std::string> TextCursor::ReadQuotedString() {
  if (Peek() != '"') return Error("expected '\"' at start of literal");
  Advance();
  std::string raw;
  while (!AtEnd()) {
    char c = Peek();
    if (c == '"') {
      Advance();
      std::string decoded;
      if (!UnescapeLiteral(raw, &decoded)) {
        return Error("malformed escape in literal");
      }
      return decoded;
    }
    if (c == '\\') {
      raw.push_back(c);
      Advance();
      if (AtEnd()) return Error("unterminated escape in literal");
      raw.push_back(Peek());
      Advance();
      continue;
    }
    if (c == '\n') return Error("newline inside literal");
    raw.push_back(c);
    Advance();
  }
  return Error("unterminated literal");
}

Result<std::string> TextCursor::ReadBlankLabel() {
  if (Peek() != '_' || PeekAt(1) != ':') {
    return Error("expected '_:' at start of blank node label");
  }
  Advance();
  Advance();
  std::string label;
  while (!AtEnd() && IsPnChar(Peek())) {
    label.push_back(Peek());
    Advance();
  }
  if (label.empty()) return Error("empty blank node label");
  // Trailing '.' belongs to the statement terminator, not the label.
  while (!label.empty() && label.back() == '.') {
    label.pop_back();
    pos_ -= 1;
    column_ -= 1;
  }
  if (label.empty()) return Error("empty blank node label");
  return label;
}

Result<std::string> TextCursor::ReadLangTag() {
  if (Peek() != '@') return Error("expected '@' at start of language tag");
  Advance();
  std::string tag;
  while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '-')) {
    tag.push_back(Peek());
    Advance();
  }
  if (tag.empty()) return Error("empty language tag");
  return tag;
}

Result<std::string> TextCursor::ReadPrefixedName() {
  std::string token;
  while (!AtEnd() && (IsPnChar(Peek()) || Peek() == ':')) {
    token.push_back(Peek());
    Advance();
  }
  if (token.empty()) return Error("expected prefixed name");
  // A trailing '.' is the statement terminator unless followed by a name
  // character (e.g. `ex:v1.0` keeps the dot).
  while (!token.empty() && token.back() == '.') {
    token.pop_back();
    pos_ -= 1;
    column_ -= 1;
  }
  if (token.find(':') == std::string::npos) {
    return Error("prefixed name missing ':': '" + token + "'");
  }
  return token;
}

Result<std::string> TextCursor::ReadVarName() {
  if (Peek() != '?' && Peek() != '$') {
    return Error("expected '?' at start of variable");
  }
  Advance();
  std::string name;
  while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '_')) {
    name.push_back(Peek());
    Advance();
  }
  if (name.empty()) return Error("empty variable name");
  return name;
}

std::string TextCursor::ReadDigits() {
  std::string out;
  while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
    out.push_back(Peek());
    Advance();
  }
  return out;
}

Status TextCursor::Error(std::string_view message) const {
  return Status::ParseError(std::string(message) + " at line " +
                            std::to_string(line_) + ", column " +
                            std::to_string(column_));
}

}  // namespace rps
